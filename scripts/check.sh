#!/usr/bin/env bash
# Repository hygiene driver.
#
#   scripts/check.sh            plain build + unit tests + perf gates
#   scripts/check.sh sanitize   asan / ubsan / tsan build-and-test matrix
#   scripts/check.sh bench      plain build + every bench at smoke scale
#   scripts/check.sh trace      observability matrix: ctest -L trace (zero-
#                               interference gate, schema-4 corpus, golden
#                               artifact, TSan over concurrent span emission)
#                               + the three-mode scripts/profile.sh harness
#   scripts/check.sh serve      online-engine matrix: flow-table/engine/
#                               determinism/stream-fault unit tests, the
#                               bench_serve load ladder + fault matrix at
#                               smoke scale, and the serve concurrency
#                               stress under TSan
#   scripts/check.sh trees      histogram-tree matrix: binned/tree/forest/
#                               gbdt unit tests swept at SUGAR_THREADS=1/2/7
#                               plus the tree_compare perf gate (legacy vs
#                               BinnedMatrix speedup >= 1, digests identical
#                               across pool widths, json_check'd artifact)
#   scripts/check.sh ooc        out-of-core matrix: store/pager/paged-fit
#                               unit tests swept at SUGAR_THREADS=1/2/7,
#                               the pager storm under TSan, and the
#                               ooc_compare gate (resident vs paged fit
#                               digests identical at every width, paged
#                               peak RSS < dataset size, json_check'd)
#   scripts/check.sh scenario   scenario-diversity matrix: the variant/
#                               drift/perturbation property tests swept at
#                               SUGAR_THREADS=1/2/7, the QUIC/DoH fuzz
#                               corpus, both scenario benches at tiny scale
#                               with json_check'd artifacts, the drift
#                               golden replayed at widths 2 and 7, and the
#                               new tests plus both benches under ASan at
#                               SUGAR_THREADS=7
#   scripts/check.sh crash      crash-tolerance matrix: the chaos label
#                               (snapshot kill/restore/replay determinism,
#                               corruption corpus, breaker, watchdog) swept
#                               at SUGAR_THREADS=1/2/7, plus the chaos
#                               smoke under TSan
#   scripts/check.sh all        everything above
#
# Each configuration builds into its own directory (build-check, build-asan,
# build-ubsan, build-tsan) so sanitizer flags never leak into the default
# ./build tree. The perf_smoke label contains the determinism gates
# (seq-vs-threaded digests AND SIMD-vs-scalar identity) — those must pass
# everywhere; throughput is recorded in the artifacts, never gated.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
MODE="${1:-quick}"

run() {
  echo "+ $*" >&2
  "$@"
}

# configure_build <dir> [extra cmake args...]
configure_build() {
  local dir="$1"
  shift
  run cmake -B "$dir" -S . "$@"
  run cmake --build "$dir" -j "$JOBS"
}

plain() {
  configure_build build-check
  # Everything except the slow bench sweep: unit/property tests, the
  # perf_smoke determinism gates, and the sanitizer smoke binaries in
  # their plain-build form.
  run ctest --test-dir build-check --output-on-failure -j "$JOBS" -LE bench_smoke
}

sanitize() {
  configure_build build-asan -DSUGAR_SANITIZE=address
  run ctest --test-dir build-asan --output-on-failure -j "$JOBS" -LE bench_smoke

  configure_build build-ubsan -DSUGAR_SANITIZE=undefined
  # UBSan gets the dedicated vector-kernel sweep plus the perf gates (the
  # identity comparisons execute every SIMD code path under the sanitizer).
  run ctest --test-dir build-ubsan --output-on-failure -j "$JOBS" -L 'ubsan|perf_smoke'

  configure_build build-tsan -DSUGAR_SANITIZE=thread
  run ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -L 'tsan|perf_smoke'
}

bench() {
  configure_build build-check
  run ctest --test-dir build-check --output-on-failure -L bench_smoke
}

trace() {
  configure_build build-check
  # Everything labeled `trace`: the off-vs-spans digest-identity gate, the
  # schema-4 validation corpus, the traced Fig 6 smoke + chrome dump, and
  # the golden-artifact regression compare.
  run ctest --test-dir build-check --output-on-failure -L trace
  # Concurrent span emission under TSan: emitters racing snapshotters and
  # the supervisor's parallel cell crews.
  configure_build build-tsan -DSUGAR_SANITIZE=thread
  run ctest --test-dir build-tsan --output-on-failure -R tsan_stress_trace
  # Three-mode profiling harness: off / summary / spans, each artifact
  # json_check-validated, normalized results diffed for bit-identity.
  run scripts/profile.sh build-check
}

serve() {
  configure_build build-check
  # The serving tier end-to-end: table/engine/determinism unit tests, the
  # streaming fault modes, the overload bench with its json_check'd
  # artifact (latency percentiles + monotone shed/evict snapshots), and
  # the concurrency stress in its plain-build form.
  run ctest --test-dir build-check --output-on-failure -j "$JOBS" \
      -R 'FlowTable|ServeEngine|ServeDeterminism|ServeStress|StreamFaults|serve_stress|bench_serve'
  # Shard workers vs stats snapshotters vs the idle evictor under TSan.
  configure_build build-tsan -DSUGAR_SANITIZE=thread
  run ctest --test-dir build-tsan --output-on-failure -R serve_stress
}

trees() {
  configure_build build-check
  # The histogram-tree substrate's determinism contract: quantization,
  # sibling subtraction, and the forest/GBDT fit digests must be identical
  # at every pool width. The unit tests pin widths internally; the ambient
  # sweep on top catches any width assumption they missed.
  for threads in 1 2 7; do
    SUGAR_THREADS="$threads" run ctest --test-dir build-check \
        --output-on-failure \
        -R 'BinnedMatrix|DecisionTree|RandomForest|Gbdt|ParallelDeterminism'
  done
  # Legacy vs binned engine head-to-head: fit speedup >= 1 and the
  # accuracy delta stamped, enforced by json_check on the artifact.
  run ctest --test-dir build-check --output-on-failure \
      -R 'tree_compare|tree_compare_json'
}

ooc() {
  configure_build build-check
  # The out-of-core substrate's own contract: SUGC round-trip + corruption
  # corpus, page-cache eviction/pin/prefetch semantics, and paged-vs-
  # resident fit bit-identity, swept at several ambient pool widths (the
  # fit tests pin widths internally; the sweep catches leaks around them).
  for threads in 1 2 7; do
    SUGAR_THREADS="$threads" run ctest --test-dir build-check \
        --output-on-failure \
        -R 'StoreTest|PagedFitTest|PageCache|PagerTsan'
  done
  # The streaming gate: paged children fit a store 24x their cache budget
  # with digests identical to the resident fit and peak RSS below the
  # dataset payload, with json_check revalidating the artifact.
  run ctest --test-dir build-check --output-on-failure \
      -R 'ooc_compare|ooc_compare_json'
  # Demand loads racing prefetch, eviction and drop_file under TSan.
  configure_build build-tsan -DSUGAR_SANITIZE=thread
  run ctest --test-dir build-tsan --output-on-failure -R tsan_stress
}

crash() {
  configure_build build-check
  # Crash-recovery determinism is part of the bit-identity contract, so the
  # whole chaos label (kill/restore/replay identity, corruption corpus,
  # breaker state machine, watchdog escalation) runs at several pool
  # widths: the suite pins its own widths internally AND the ambient
  # substrate is varied on top, catching width assumptions either way.
  for threads in 1 2 7; do
    SUGAR_THREADS="$threads" run ctest --test-dir build-check \
        --output-on-failure -L chaos
  done
  # Chaos storm (stalls, classifier faults, disk faults, breaker flips)
  # under TSan: every injection site racing the shard workers.
  configure_build build-tsan -DSUGAR_SANITIZE=thread
  run ctest --test-dir build-tsan --output-on-failure -R chaos_tsan_smoke
}

scenario() {
  configure_build build-check
  # Variant-layer properties (identity-at-default, digest stability,
  # drift monotonicity, imbalance, QUIC/DoH shapes), the header-jitter
  # mutations, the journal-key coverage, and the extended fuzz corpus —
  # swept at several ambient pool widths.
  for threads in 1 2 7; do
    SUGAR_THREADS="$threads" run ctest --test-dir build-check \
        --output-on-failure \
        -R 'Drift|Mutate.Jitter|CellKeys|ChangedPerturbation|FaultInjection.QuicDoh|fuzz_parser_smoke'
  done
  # Both scenario benches end-to-end at tiny scale, artifacts json_check'd,
  # plus the traced schema-4 smokes.
  run ctest --test-dir build-check --output-on-failure -L scenario
  # The drift golden must replay bit-identically at wider pools: rerun the
  # pinned-scale bench at widths 2 and 7 against the checked-in reference.
  for threads in 2 7; do
    SUGAR_SCALE=0.05 SUGAR_EPOCHS=1 SUGAR_SEED=1 SUGAR_THREADS="$threads" \
        run build-check/bench/bench_drift_transfer \
        --json "build-check/bench/golden_drift_w${threads}.json" \
        --cell-timeout-s 300 --drift-epochs 2
    run build-check/bench/json_check --golden \
        "build-check/bench/golden_drift_w${threads}.json" \
        tests/golden/BENCH_drift_normalized.json
  done
  # The whole tier again under ASan at the widest sweep width.
  configure_build build-asan -DSUGAR_SANITIZE=address
  SUGAR_THREADS=7 run ctest --test-dir build-asan --output-on-failure \
      -R 'Drift|Mutate.Jitter|CellKeys|ChangedPerturbation|FaultInjection.QuicDoh'
  SUGAR_THREADS=7 run ctest --test-dir build-asan --output-on-failure -L scenario
}

case "$MODE" in
  quick) plain ;;
  sanitize) sanitize ;;
  bench) bench ;;
  trace) trace ;;
  trees) trees ;;
  serve) serve ;;
  ooc) ooc ;;
  crash) crash ;;
  scenario) scenario ;;
  all)
    plain
    bench
    trace
    trees
    serve
    ooc
    crash
    scenario
    sanitize
    ;;
  *)
    echo "usage: scripts/check.sh [quick|sanitize|bench|trace|trees|serve|ooc|crash|scenario|all]" >&2
    exit 2
    ;;
esac

echo "check.sh: $MODE passed"
