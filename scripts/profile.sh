#!/usr/bin/env bash
# Profiling harness for the observability substrate.
#
#   scripts/profile.sh [build-dir]     (default: build)
#
# Runs bench_fig6_timing at smoke scale under all three SUGAR_TRACE modes
# (off / summary / spans), validates every artifact with json_check, and
# diffs the normalized artifacts across modes — the trace mode may change
# what is recorded, never the results. The spans run also emits a
# chrome://tracing-loadable timeline (kept in the output directory) and a
# per-phase wall/CPU breakdown is printed from the schema-4 trace section.
#
# Knobs (env): SUGAR_SCALE (default 0.05), SUGAR_EPOCHS (default 1),
# SUGAR_SEED (default 1), SUGAR_PROFILE_DIR (default <build>/profile).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
OUT="${SUGAR_PROFILE_DIR:-$BUILD/profile}"
BENCH="$BUILD/bench/bench_fig6_timing"
CHECK="$BUILD/bench/json_check"

if [[ ! -x "$BENCH" || ! -x "$CHECK" ]]; then
  echo "profile.sh: $BENCH or $CHECK missing — build first:" >&2
  echo "  cmake -B $BUILD -S . && cmake --build $BUILD -j" >&2
  exit 2
fi

export SUGAR_SCALE="${SUGAR_SCALE:-0.05}"
export SUGAR_EPOCHS="${SUGAR_EPOCHS:-1}"
export SUGAR_SEED="${SUGAR_SEED:-1}"
mkdir -p "$OUT"

run() {
  echo "+ $*" >&2
  "$@"
}

for mode in off summary spans; do
  artifact="$OUT/BENCH_fig6_$mode.json"
  args=(--json "$artifact" --cell-timeout-s 300)
  if [[ "$mode" == spans ]]; then
    args+=(--trace "$OUT/fig6_chrome_trace.json")
  fi
  echo "=== SUGAR_TRACE=$mode ==="
  SUGAR_TRACE="$mode" run "$BENCH" "${args[@]}"
  run "$CHECK" "$artifact"
  run "$CHECK" --normalize "$artifact" > "$OUT/normalized_$mode.json"
done
run "$CHECK" --chrome "$OUT/fig6_chrome_trace.json"

# The observability contract: results are identical whatever was recorded.
for mode in summary spans; do
  if ! cmp -s "$OUT/normalized_off.json" "$OUT/normalized_$mode.json"; then
    echo "profile.sh: results under SUGAR_TRACE=$mode differ from off:" >&2
    diff "$OUT/normalized_off.json" "$OUT/normalized_$mode.json" >&2 || true
    exit 1
  fi
  echo "normalized artifact identical: off vs $mode"
done

# Per-phase breakdown from the spans artifact (no jq dependency).
python3 - "$OUT/BENCH_fig6_spans.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
trace = doc.get("trace", {})
phases = sorted(trace.get("phases", []), key=lambda p: -p["wall_ms"])
print("\nTop phases by wall time (SUGAR_TRACE=spans):")
print(f"  {'phase':<28} {'count':>7} {'wall ms':>10} {'cpu ms':>10}")
for p in phases[:15]:
    print(f"  {p['name']:<28} {p['count']:>7} {p['wall_ms']:>10.2f} {p['cpu_ms']:>10.2f}")
dropped = trace.get("dropped_events", 0)
if dropped:
    print(f"  (dropped events past retention cap: {dropped})")
EOF

echo
echo "profile.sh: all three trace modes ran, artifacts valid, results identical."
echo "Chrome trace: $OUT/fig6_chrome_trace.json (load via chrome://tracing or Perfetto)"
