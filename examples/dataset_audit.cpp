// Dataset audit walk-through: generate (or load) a trace, persist it as a
// pcap, run the cleaning census (Table 13), and audit both split policies
// for leakage — the paper's "verify data integrity" recommendation as a
// runnable tool.
//
// Usage:  dataset_audit [trace.pcap]
//   With a pcap argument the trace is read from disk (labels unavailable,
//   so only the cleaning census runs). Without it, a synthetic USTC-TFC-like
//   trace is generated, saved to /tmp/sugar_audit.pcap and fully audited.
#include <iostream>

#include "core/report.h"
#include "dataset/audit.h"
#include "dataset/clean.h"
#include "dataset/split.h"
#include "net/pcap.h"
#include "net/parser.h"

using namespace sugar;

namespace {

void census_only(const std::vector<net::Packet>& packets) {
  std::array<std::size_t, static_cast<std::size_t>(net::SpuriousCategory::kCount)>
      hist{};
  std::array<std::size_t, net::kParseErrorCount> malformed{};
  std::size_t n_malformed = 0;
  for (const auto& pkt : packets) {
    auto outcome = net::parse_packet(pkt);
    if (!outcome.ok()) {
      ++n_malformed;
      ++malformed[static_cast<std::size_t>(*outcome.error)];
      continue;
    }
    ++hist[static_cast<std::size_t>(net::classify_spurious(*outcome.parsed))];
  }
  std::cout << "protocol census over " << packets.size() << " packets:\n";
  for (std::size_t c = 0; c < hist.size(); ++c) {
    if (hist[c] == 0) continue;
    std::cout << "  " << net::to_string(static_cast<net::SpuriousCategory>(c))
              << ": " << hist[c] << "\n";
  }
  std::cout << "  malformed: " << n_malformed << "\n";
  for (std::size_t e = 0; e < malformed.size(); ++e)
    if (malformed[e] > 0)
      std::cout << "    " << net::to_string(static_cast<net::ParseError>(e))
                << ": " << malformed[e] << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    // Real captures are routinely damaged; read with forward resync and
    // report what the reader had to skip rather than silently stopping.
    std::cout << "reading " << argv[1] << "\n";
    net::PcapReadStats stats;
    std::vector<net::Packet> packets;
    try {
      packets =
          net::read_pcap_file(argv[1], net::ReadPolicy::SkipAndResync, &stats);
    } catch (const net::PcapError& e) {
      // Unreadable beyond repair (bad magic / unopenable): fail cleanly.
      std::cerr << "dataset_audit: " << e.what() << "\n";
      return 1;
    }
    std::cout << "pcap read: " << stats.records_ok << " ok, "
              << stats.records_truncated << " truncated, " << stats.corrupt_headers
              << " corrupt headers, " << stats.resyncs << " resyncs ("
              << stats.bytes_skipped << " bytes skipped)\n";
    census_only(packets);
    return 0;
  }

  // 1. Generate a labelled trace with 10% spurious traffic.
  trafficgen::GenOptions gopts;
  gopts.seed = 42;
  gopts.flows_per_class = 6;
  gopts.spurious_fraction = 0.10;
  auto trace = trafficgen::generate_ustc_tfc(gopts);
  std::cout << "generated " << trace.size() << " packets, " << trace.num_flows()
            << " flows, " << trace.num_spurious() << " spurious\n";

  // 2. Round-trip through the pcap writer/reader.
  const char* path = "/tmp/sugar_audit.pcap";
  net::write_pcap_file(path, trace.packets);
  auto reread = net::read_pcap_file(path);
  std::cout << "pcap round trip: wrote+read " << reread.size() << " packets to "
            << path << "\n";

  // 3. Clean: the Table 13 census.
  dataset::CleaningOptions copts;
  auto report = dataset::clean_trace(trace, copts);
  std::cout << "\ncleaning census (" << report.dataset_name << "):\n"
            << report.to_markdown();
  std::cout << core::ingest_summary(report) << "\n";

  // 4. Audit the two split policies.
  auto ds = dataset::make_task_dataset(trace, dataset::TaskId::UstcApp);
  for (auto policy : {dataset::SplitPolicy::PerFlow, dataset::SplitPolicy::PerPacket}) {
    dataset::SplitOptions sopts;
    sopts.policy = policy;
    auto split = dataset::split_dataset(ds, sopts);
    auto audit = dataset::audit_split(ds, split);
    std::cout << "\n" << dataset::to_string(policy) << " split audit:\n  "
              << audit.to_string() << "\n";
  }

  std::cout << "\nThe per-packet audit is LEAKY: any result obtained on that "
               "split overstates deployable accuracy.\n";
  return 0;
}
