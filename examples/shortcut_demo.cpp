// Shortcut-learning demonstration (the paper's Table 6 in miniature): an
// unfrozen ET-BERT-analog trained on the flawed per-packet split looks
// great — until the implicit flow identifiers (TCP SeqNo/AckNo and
// timestamps) are randomized at test time, at which point the "learning"
// evaporates. The honest per-flow split never showed the mirage.
#include <iostream>

#include "core/env.h"
#include "core/pipeline.h"

using namespace sugar;

int main() {
  core::EnvConfig cfg = core::EnvConfig::from_env();
  // A compact configuration: this demo favours snappiness over precision.
  cfg.flows_per_class_tls = 6;
  cfg.downstream_epochs = 8;
  cfg.max_train_packets_deep = 3000;
  cfg.max_test_packets_deep = 2000;
  core::BenchmarkEnv env(cfg);

  const auto task = dataset::TaskId::Tls120;
  const auto model = replearn::ModelKind::EtBert;

  std::cout << "== Shortcut learning demo: ET-BERT analog, TLS-120 ==\n\n";

  core::ScenarioOptions leaky;
  leaky.split = dataset::SplitPolicy::PerPacket;
  leaky.frozen = false;
  auto r1 = core::run_packet_scenario(env, task, model, leaky);
  std::cout << "1. per-packet split, unfrozen:            " << r1.metrics.to_string()
            << "\n   audit: " << r1.audit.to_string() << "\n\n";

  core::ScenarioOptions stripped = leaky;
  stripped.test_ablation = dataset::AblationSpec::without_implicit_ids();
  auto r2 = core::run_packet_scenario(env, task, model, stripped);
  std::cout << "2. same model, SeqNo/AckNo/TStamp randomized in the TEST set:\n"
            << "                                           " << r2.metrics.to_string()
            << "\n   -> the accuracy above was riding on implicit flow ids.\n\n";

  core::ScenarioOptions honest;
  honest.split = dataset::SplitPolicy::PerFlow;
  honest.frozen = false;
  auto r3 = core::run_packet_scenario(env, task, model, honest);
  std::cout << "3. honest per-flow split, unfrozen:       " << r3.metrics.to_string()
            << "\n   audit: " << r3.audit.to_string() << "\n\n";

  double drop = r1.metrics.accuracy - r2.metrics.accuracy;
  std::cout << "Shortcut contribution: " << static_cast<int>(100 * drop)
            << " accuracy points vanish when the implicit ids are removed.\n"
            << "Recommendation (paper sec. 1): control for shortcut learning, "
               "verify data integrity,\nstress the frozen representation, and "
               "compare against shallow baselines.\n";
  return 0;
}
