// Deterministic fuzz driver for the ingestion path. Builds a corpus of
// well-formed frames, then pushes seeded FaultInjector mutants through
// parse_packet + classify_spurious and serialized pcap mutants through
// PcapReader (both policies), asserting the ingestion invariants:
//   - parse_packet returns exactly one of {parsed, error}, error in taxonomy
//   - classify_spurious stays inside the Table-13 category enum
//   - header/payload views stay inside the frame bytes
//   - PcapReader never throws past the global header, read_all().size() ==
//     stats().records_ok, and the stats counters sum to records encountered
//
// Usage: fuzz_parser [iterations] [seed]   (exit 1 on invariant violation)
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "net/fault.h"
#include "net/parser.h"
#include "net/pcap.h"
#include "net/serializer.h"
#include "trafficgen/payload.h"

using namespace sugar;

namespace {

std::vector<net::Packet> build_corpus() {
  std::vector<net::Packet> corpus;
  std::uint64_t ts = 1'700'000'000'000'000ull;

  auto ipv4 = [](std::uint8_t last_src, std::uint8_t last_dst) {
    net::Ipv4Header ip;
    ip.src = net::Ipv4Address::from_octets(10, 0, 0, last_src);
    ip.dst = net::Ipv4Address::from_octets(192, 168, 1, last_dst);
    ip.ttl = 64;
    return ip;
  };

  {  // TCP with a full option block (MSS, wscale, SACK, timestamps)
    net::FrameSpec spec;
    spec.ipv4 = ipv4(1, 2);
    net::TcpHeader tcp;
    tcp.src_port = 443;
    tcp.dst_port = 51000;
    tcp.seq = 0x11223344;
    tcp.ack = 0x55667788;
    tcp.options.mss = 1460;
    tcp.options.window_scale = 7;
    tcp.options.sack_permitted = true;
    tcp.options.timestamp = {{0xAABBCCDD, 0x00112233}};
    spec.tcp = tcp;
    spec.payload.assign(64, 0xEE);
    corpus.push_back(net::build_packet(spec, ts));
  }
  {  // bare TCP, no options, short payload
    net::FrameSpec spec;
    spec.ipv4 = ipv4(3, 4);
    net::TcpHeader tcp;
    tcp.src_port = 8080;
    tcp.dst_port = 52000;
    spec.tcp = tcp;
    spec.payload.assign(5, 0xEE);
    corpus.push_back(net::build_packet(spec, ts + 1));
  }
  {  // UDP
    net::FrameSpec spec;
    spec.ipv4 = ipv4(5, 6);
    net::UdpHeader udp;
    udp.src_port = 53;
    udp.dst_port = 40000;
    spec.udp = udp;
    spec.payload.assign(120, 0xEE);
    corpus.push_back(net::build_packet(spec, ts + 2));
  }
  {  // ICMP
    net::FrameSpec spec;
    spec.ipv4 = ipv4(7, 8);
    net::IcmpHeader icmp;
    icmp.type = 8;
    spec.icmp = icmp;
    spec.payload.assign(32, 0xEE);
    corpus.push_back(net::build_packet(spec, ts + 3));
  }
  {  // IPv6 TCP
    net::FrameSpec spec;
    net::Ipv6Header ip;
    ip.src.octets[15] = 1;
    ip.dst.octets[15] = 2;
    ip.hop_limit = 64;
    spec.ipv6 = ip;
    net::TcpHeader tcp;
    tcp.src_port = 443;
    tcp.dst_port = 53111;
    spec.tcp = tcp;
    spec.payload.assign(48, 0xEE);
    corpus.push_back(net::build_packet(spec, ts + 4));
  }
  {  // ARP
    net::FrameSpec spec;
    net::ArpHeader arp;
    arp.opcode = 1;
    arp.sender_ip = net::Ipv4Address::from_octets(10, 0, 0, 9);
    arp.target_ip = net::Ipv4Address::from_octets(10, 0, 0, 10);
    spec.arp = arp;
    corpus.push_back(net::build_packet(spec, ts + 5));
  }
  trafficgen::Rng shape_rng(0xF022);
  {  // QUIC long-header initial over UDP/443
    net::FrameSpec spec;
    spec.ipv4 = ipv4(11, 12);
    net::UdpHeader udp;
    udp.src_port = 55443;
    udp.dst_port = 443;
    spec.udp = udp;
    spec.payload = trafficgen::quic_payload(shape_rng, 1252, true);
    corpus.push_back(net::build_packet(spec, ts + 6));
  }
  {  // QUIC short-header 1-RTT packet
    net::FrameSpec spec;
    spec.ipv4 = ipv4(13, 14);
    net::UdpHeader udp;
    udp.src_port = 443;
    udp.dst_port = 55444;
    spec.udp = udp;
    spec.payload = trafficgen::quic_payload(shape_rng, 180, false);
    corpus.push_back(net::build_packet(spec, ts + 7));
  }
  {  // DoH-shaped TLS application records over TCP/443
    net::FrameSpec spec;
    spec.ipv4 = ipv4(15, 16);
    net::TcpHeader tcp;
    tcp.src_port = 52100;
    tcp.dst_port = 443;
    tcp.seq = 0x99AA0000;
    spec.tcp = tcp;
    spec.payload = trafficgen::doh_payload(shape_rng, 240);
    corpus.push_back(net::build_packet(spec, ts + 8));
  }
  return corpus;
}

std::string serialize_pcap(const std::vector<net::Packet>& pkts) {
  std::stringstream ss;
  net::PcapWriter writer(ss);
  writer.write_all(pkts);
  return ss.str();
}

struct Tally {
  std::size_t frame_mutants = 0;
  std::size_t parse_ok = 0;
  std::size_t parse_err = 0;
  std::size_t stream_mutants = 0;
  std::size_t records_ok = 0;
  std::size_t records_damaged = 0;
  std::size_t resyncs = 0;
  std::size_t violations = 0;
};

void violation(Tally& t, const char* what, const std::string& detail,
               std::size_t iter) {
  ++t.violations;
  std::fprintf(stderr, "VIOLATION at iteration %zu: %s (%s)\n", iter, what,
               detail.c_str());
}

void fuzz_frame(net::FaultInjector& inj, const net::Packet& base, Tally& t,
                std::size_t iter) {
  auto fault = static_cast<net::FrameFault>(
      iter % static_cast<std::size_t>(net::FrameFault::kCount));
  net::Packet mutant = inj.mutate_frame(base, fault);
  ++t.frame_mutants;

  auto outcome = net::parse_packet(mutant);
  if (outcome.parsed.has_value() == outcome.error.has_value()) {
    violation(t, "parse outcome must be exactly one of {parsed, error}",
              net::to_string(fault), iter);
    return;
  }
  if (outcome.error &&
      static_cast<std::size_t>(*outcome.error) >= net::kParseErrorCount) {
    violation(t, "ParseError outside taxonomy", net::to_string(fault), iter);
    return;
  }
  if (!outcome.ok()) {
    ++t.parse_err;
    return;
  }
  ++t.parse_ok;

  const auto& p = *outcome.parsed;
  auto cat = net::classify_spurious(p);
  if (static_cast<std::size_t>(cat) >=
      static_cast<std::size_t>(net::SpuriousCategory::kCount))
    violation(t, "SpuriousCategory outside taxonomy", net::to_string(fault), iter);
  if (p.header_view(mutant).size() > mutant.data.size() ||
      p.payload_view(mutant).size() > mutant.data.size())
    violation(t, "view larger than frame", net::to_string(fault), iter);
}

void fuzz_stream(net::FaultInjector& inj, const std::string& base, Tally& t,
                 std::size_t iter) {
  auto fault = static_cast<net::StreamFault>(
      iter % static_cast<std::size_t>(net::StreamFault::kCount));
  std::string mutant = inj.mutate_stream(base, fault);
  ++t.stream_mutants;

  for (auto policy : {net::ReadPolicy::Strict, net::ReadPolicy::SkipAndResync}) {
    std::stringstream ss(mutant);
    std::vector<net::Packet> pkts;
    net::PcapReadStats stats;
    try {
      net::PcapReader reader(ss, policy);
      pkts = reader.read_all();
      stats = reader.stats();
    } catch (const net::PcapError&) {
      continue;  // malformed global header: rejection is the contract
    }
    if (pkts.size() != stats.records_ok)
      violation(t, "read_all().size() != records_ok", net::to_string(fault), iter);
    if (stats.total_records() !=
        stats.records_ok + stats.records_truncated + stats.corrupt_headers)
      violation(t, "stats counters do not sum", net::to_string(fault), iter);
    if (stats.bytes_skipped > mutant.size())
      violation(t, "skipped more bytes than the stream holds",
                net::to_string(fault), iter);
    for (const auto& p : pkts)
      if (p.data.size() > net::kMaxSnaplen)
        violation(t, "record larger than snaplen cap", net::to_string(fault), iter);
    if (policy == net::ReadPolicy::SkipAndResync) {
      t.records_ok += stats.records_ok;
      t.records_damaged += stats.records_truncated + stats.corrupt_headers;
      t.resyncs += stats.resyncs;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Same strict whole-string parsing the env config uses: "50abc" is an
  // error, not 50 iterations.
  auto parse_u64 = [](const char* s, std::uint64_t& out) {
    const char* end = s + std::strlen(s);
    auto [ptr, ec] = std::from_chars(s, end, out);
    return ec == std::errc() && ptr == end && end != s;
  };
  std::uint64_t iterations = 60000, seed = 1;
  if ((argc > 1 && !parse_u64(argv[1], iterations)) ||
      (argc > 2 && !parse_u64(argv[2], seed)) || argc > 3) {
    std::fprintf(stderr, "usage: fuzz_parser [iterations] [seed]\n");
    return 2;
  }

  auto corpus = build_corpus();
  auto base_blob = serialize_pcap(corpus);
  net::FaultInjector inj(seed);
  Tally t;

  // ~5/6 of the budget fuzzes frames through the parser, the rest fuzzes
  // serialized streams through the reader (each stream carries several
  // records, so reader-side coverage stays comparable).
  for (std::size_t i = 0; i < iterations; ++i) {
    if (i % 6 != 5) {
      fuzz_frame(inj, corpus[i % corpus.size()], t, i);
    } else {
      fuzz_stream(inj, base_blob, t, i);
    }
  }

  std::printf(
      "fuzz_parser: %zu frame mutants (%zu parsed, %zu rejected), "
      "%zu stream mutants (%zu records ok, %zu damaged, %zu resyncs), "
      "%zu violations\n",
      t.frame_mutants, t.parse_ok, t.parse_err, t.stream_mutants, t.records_ok,
      t.records_damaged, t.resyncs, t.violations);
  return t.violations == 0 ? 0 : 1;
}
