// Quickstart: generate a synthetic TLS-120-style trace, clean it, split it
// per-flow, train the Random Forest baseline on header features, and
// evaluate — the shortest path through the library's public API.
#include <iostream>

#include "core/env.h"
#include "core/pipeline.h"
#include "core/report.h"

using namespace sugar;

int main() {
  std::cout << "== Sweet-Danger benchmark quickstart ==\n";

  core::EnvConfig cfg = core::EnvConfig::from_env();
  core::BenchmarkEnv env(cfg);

  // 1. Dataset: generated, cleaned, labelled.
  const auto& ds = env.task_dataset(dataset::TaskId::Tls120);
  std::cout << "task " << ds.task_name << ": " << ds.size() << " packets, "
            << ds.flows().size() << " flows, " << ds.num_classes << " classes\n";

  // 2. The recommended evaluation: per-flow split, shallow baseline.
  core::ScenarioOptions opts;
  opts.split = dataset::SplitPolicy::PerFlow;
  auto rf = core::run_shallow_scenario(env, dataset::TaskId::Tls120,
                                       core::ShallowKind::RandomForest,
                                       /*include_ip=*/true, opts);
  std::cout << "RF  per-flow split:   " << rf.metrics.to_string() << "  (train "
            << core::MarkdownTable::num(rf.train_seconds, 2) << "s)\n";

  // 3. The flawed evaluation most prior work used: per-packet split.
  opts.split = dataset::SplitPolicy::PerPacket;
  auto rf_leaky = core::run_shallow_scenario(env, dataset::TaskId::Tls120,
                                             core::ShallowKind::RandomForest,
                                             /*include_ip=*/true, opts);
  std::cout << "RF  per-packet split: " << rf_leaky.metrics.to_string()
            << "   <-- inflated by flow-id leakage\n";

  // 4. A representation-learning model, frozen, on the honest split.
  opts.split = dataset::SplitPolicy::PerFlow;
  opts.frozen = true;
  auto et = core::run_packet_scenario(env, dataset::TaskId::Tls120,
                                      replearn::ModelKind::EtBert, opts);
  std::cout << "ET-BERT frozen, per-flow split: " << et.metrics.to_string() << "\n";
  std::cout << "split audit: " << et.audit.to_string() << "\n";
  return 0;
}
