// The expert-baseline recipe (Table 8/12): extract hand-crafted header
// features from a trace, train a Random Forest with a proper per-flow
// split, and print the feature-importance ranking — everything a network
// operator needs to beat a 100M-parameter encoder.
//
// Usage: header_features [vpn-app|ustc-app|tls-120]
#include <iostream>
#include <numeric>
#include <string>

#include "dataset/clean.h"
#include "dataset/split.h"
#include "ml/forest.h"
#include "ml/metrics.h"
#include "replearn/featurize.h"

using namespace sugar;

int main(int argc, char** argv) {
  std::string which = argc > 1 ? argv[1] : "ustc-app";

  trafficgen::GenOptions gopts;
  gopts.seed = 7;
  gopts.flows_per_class = 8;
  trafficgen::GeneratedTrace trace;
  dataset::TaskId task;
  if (which == "vpn-app") {
    gopts.spurious_fraction = 0.05;
    trace = trafficgen::generate_iscx_vpn(gopts);
    task = dataset::TaskId::VpnApp;
  } else if (which == "tls-120") {
    gopts.strip_tls_handshake = true;
    trace = trafficgen::generate_cstn_tls120(gopts);
    task = dataset::TaskId::Tls120;
  } else {
    gopts.spurious_fraction = 0.10;
    trace = trafficgen::generate_ustc_tfc(gopts);
    task = dataset::TaskId::UstcApp;
  }

  dataset::CleaningOptions copts;
  auto report = dataset::clean_trace(trace, copts);
  std::cout << "cleaned " << report.removed_spurious_total() << " spurious packets ("
            << static_cast<int>(100 * report.removed_spurious_fraction()) << "%)\n";

  auto ds = dataset::make_task_dataset(trace, task);
  std::cout << "task " << ds.task_name << ": " << ds.size() << " packets, "
            << ds.num_classes << " classes\n";

  dataset::SplitOptions sopts;
  sopts.policy = dataset::SplitPolicy::PerFlow;
  auto split = dataset::split_dataset(ds, sopts);
  auto train_idx = dataset::balance_train(ds, split.train, 2);

  auto dtr = ds.subset(train_idx);
  auto dte = ds.subset(split.test);
  std::vector<std::size_t> itr(dtr.size()), ite(dte.size());
  std::iota(itr.begin(), itr.end(), 0);
  std::iota(ite.begin(), ite.end(), 0);

  replearn::HeaderFeatureSpec spec;
  auto x_train = replearn::header_feature_matrix(dtr, itr, spec);
  auto x_test = replearn::header_feature_matrix(dte, ite, spec);
  auto names = replearn::header_feature_names(spec);
  std::cout << "features: " << names.size() << " header fields (Table 12)\n";

  ml::RandomForest rf;
  rf.fit(x_train, dtr.label, ds.num_classes);
  auto pred = rf.predict(x_test);
  auto metrics = ml::evaluate(dte.label, pred, ds.num_classes);
  std::cout << "\nRandom Forest, per-flow split: " << metrics.to_string() << "\n";

  std::cout << "\ntop-10 feature importances:\n";
  auto ranked = ml::ranked_importance(rf.feature_importance(), names);
  for (std::size_t i = 0; i < std::min<std::size_t>(10, ranked.size()); ++i)
    std::printf("  %-14s %.3f\n", ranked[i].first.c_str(), ranked[i].second);
  return 0;
}
