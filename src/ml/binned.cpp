#include "ml/binned.h"

#include <algorithm>
#include <cstddef>

#include "core/threadpool.h"
#include "core/trace.h"

namespace sugar::ml {
namespace {

using detail::WeightedVal;

/// Compacts a sorted weighted summary down to `cap` points by picking the
/// values at evenly spaced cumulative ranks; each survivor inherits an
/// equal share of the total weight. Pure function of the input order.
void compact(const std::vector<WeightedVal>& in, std::size_t cap,
             std::vector<WeightedVal>& out) {
  out.clear();
  if (in.size() <= cap) {
    out = in;
    return;
  }
  double total = 0;
  for (const auto& e : in) total += e.w;
  const double share = total / static_cast<double>(cap);
  double cum = 0;
  std::size_t i = 0;
  for (std::size_t j = 0; j < cap; ++j) {
    const double target = total * (static_cast<double>(j) + 0.5) /
                          static_cast<double>(cap);
    while (i + 1 < in.size() && cum + in[i].w <= target) cum += in[i++].w;
    out.push_back({in[i].v, share});
  }
}

/// Merges two sorted weighted runs (stable on equal values: `a` first).
void merge_sorted(const std::vector<WeightedVal>& a,
                  const std::vector<WeightedVal>& b,
                  std::vector<WeightedVal>& out) {
  out.clear();
  out.reserve(a.size() + b.size());
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size())
    out.push_back(b[j].v < a[i].v ? b[j++] : a[i++]);
  while (i < a.size()) out.push_back(a[i++]);
  while (j < b.size()) out.push_back(b[j++]);
}

/// Cut points for one column: quantiles of the sketch summary at ranks
/// total*b/bins, deduplicated ascending — the same rank rule the per-tree
/// compute_cuts sampler used, applied to the whole column.
std::vector<float> cuts_from_summary(const std::vector<WeightedVal>& summary,
                                     int bins) {
  std::vector<float> cuts;
  if (summary.empty()) return cuts;
  double total = 0;
  for (const auto& e : summary) total += e.w;
  std::size_t i = 0;
  double cum = 0;
  for (int b = 1; b < bins; ++b) {
    const double target =
        total * static_cast<double>(b) / static_cast<double>(bins);
    while (i + 1 < summary.size() && cum + summary[i].w <= target)
      cum += summary[i++].w;
    const float v = summary[i].v;
    // A cut at the column minimum can never send a row left (strict '<'),
    // so constant columns end up with zero cuts / one bin.
    if (v > summary.front().v && (cuts.empty() || v > cuts.back()))
      cuts.push_back(v);
  }
  return cuts;
}

}  // namespace

int quantize_bin(const std::vector<float>& cuts, float v) {
  return static_cast<int>(std::upper_bound(cuts.begin(), cuts.end(), v) -
                          cuts.begin());
}

ColumnSketch::ColumnSketch(int bins)
    : bins_(std::clamp(bins, 2, BinnedMatrix::kMaxBins)),
      // Summary capacity: columns with <= cap values are summarized exactly
      // (every value survives the merge), larger ones approximately.
      cap_(std::max<std::size_t>(kBlock, 8 * static_cast<std::size_t>(bins_))) {
  block_.reserve(kBlock);
}

void ColumnSketch::add(float v) {
  block_.push_back(v);
  if (block_.size() >= kBlock) flush();
}

void ColumnSketch::flush() {
  if (block_.empty()) return;
  std::sort(block_.begin(), block_.end());
  incoming_.clear();
  for (float v : block_) incoming_.push_back({v, 1.0});
  merge_sorted(summary_, incoming_, merged_);
  compact(merged_, cap_, summary_);
  block_.clear();
}

std::vector<float> ColumnSketch::finalize() {
  flush();
  return cuts_from_summary(summary_, bins_);
}

BinnedMatrix::BinnedMatrix(const Matrix& x, int bins) {
  SUGAR_TRACE_SPAN("ml.binned.quantize");
  rows_ = x.rows();
  cols_ = x.cols();
  bins_ = std::clamp(bins, 2, kMaxBins);
  stride_ = (rows_ + 63) / 64 * 64;
  cuts_.assign(cols_, {});
  codes_.assign(stride_ * cols_, 0);
  SUGAR_TRACE_COUNT("ml.binned.code_bytes", codes_.size());

  // One feature per block: each column's sketch and codes are produced by
  // exactly one worker, sequentially over rows, so the output is a pure
  // function of the data regardless of pool width. ColumnSketch flushes at
  // the same 4096-row block boundaries the original in-place sketch used,
  // so cuts are bit-identical to every earlier release — and to a streamed
  // out-of-core quantization pass feeding the same values in row order.
  core::global_pool().parallel_for(0, cols_, 1, [&](std::size_t f0,
                                                    std::size_t f1) {
    for (std::size_t f = f0; f < f1; ++f) {
      ColumnSketch sketch(bins_);
      for (std::size_t r = 0; r < rows_; ++r) sketch.add(x(r, f));
      cuts_[f] = sketch.finalize();

      const auto& c = cuts_[f];
      std::uint8_t* col = codes_.data() + f * stride_;
      for (std::size_t r = 0; r < rows_; ++r)
        col[r] = static_cast<std::uint8_t>(quantize_bin(c, x(r, f)));
    }
  });
}

}  // namespace sugar::ml
