#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "ml/binned.h"

namespace sugar::ml {

void GradientBoosting::fit(const Matrix& x, const std::vector<int>& y,
                           int num_classes) {
  num_classes_ = num_classes;
  num_outputs_ = num_classes <= 2 ? 1 : num_classes;
  std::mt19937_64 rng(cfg_.seed);

  TreeConfig tree_cfg = cfg_.tree;
  if (cfg_.growth == GbdtGrowth::LeafWise && tree_cfg.max_leaves == 0)
    tree_cfg.max_leaves = 31;

  int rounds = cfg_.rounds;
  if (cfg_.max_total_trees > 0 && rounds * num_outputs_ > cfg_.max_total_trees)
    rounds = std::max(3, cfg_.max_total_trees / num_outputs_);
  rounds_used_ = rounds;

  std::size_t n = x.rows();

  // Quantize once: all rounds × classes share the bin codes. GBDT splits
  // consider every feature, so trees also get sibling-subtraction
  // histograms over the whole-feature slot layout.
  BinnedMatrix binned;
  const BinnedMatrix* bm = nullptr;
  if (cfg_.binned && n > 0) {
    binned = BinnedMatrix(x, tree_cfg.histogram_bins);
    bm = &binned;
  }

  // Current margins F [n×outputs].
  Matrix margins(n, static_cast<std::size_t>(num_outputs_));
  Matrix probs;  // softmax scratch, reused every round
  std::vector<float> grad(n), hess(n);
  trees_.clear();
  trees_.reserve(static_cast<std::size_t>(rounds * num_outputs_));

  for (int r = 0; r < rounds; ++r) {
    throw_if_cancelled(cfg_.cancel, "GradientBoosting::fit");
    if (num_outputs_ == 1) {
      // Binary logistic: y in {0,1}, p = sigmoid(F).
      for (std::size_t i = 0; i < n; ++i) {
        float p = 1.0f / (1.0f + std::exp(-margins(i, 0)));
        grad[i] = p - static_cast<float>(y[i]);
        hess[i] = std::max(p * (1.0f - p), 1e-6f);
      }
      DecisionTree tree;
      tree.fit_regression(x, grad, hess, tree_cfg, rng, nullptr, bm);
      for (std::size_t i = 0; i < n; ++i)
        margins(i, 0) += cfg_.learning_rate * tree.predict_value(x.row(i));
      trees_.push_back(std::move(tree));
    } else {
      // Softmax multi-class: one tree per class per round.
      probs.copy_from(margins);
      softmax_rows(probs);
      for (int k = 0; k < num_outputs_; ++k) {
        for (std::size_t i = 0; i < n; ++i) {
          float p = probs(i, static_cast<std::size_t>(k));
          grad[i] = p - (y[i] == k ? 1.0f : 0.0f);
          hess[i] = std::max(p * (1.0f - p), 1e-6f);
        }
        DecisionTree tree;
        tree.fit_regression(x, grad, hess, tree_cfg, rng, nullptr, bm);
        for (std::size_t i = 0; i < n; ++i)
          margins(i, static_cast<std::size_t>(k)) +=
              cfg_.learning_rate * tree.predict_value(x.row(i));
        trees_.push_back(std::move(tree));
      }
    }
  }
}

void GradientBoosting::fit_binned(const BinnedColumnSource& src,
                                  const std::vector<int>& y, int num_classes) {
  num_classes_ = num_classes;
  num_outputs_ = num_classes <= 2 ? 1 : num_classes;
  std::mt19937_64 rng(cfg_.seed);

  TreeConfig tree_cfg = cfg_.tree;
  if (cfg_.growth == GbdtGrowth::LeafWise && tree_cfg.max_leaves == 0)
    tree_cfg.max_leaves = 31;

  int rounds = cfg_.rounds;
  if (cfg_.max_total_trees > 0 && rounds * num_outputs_ > cfg_.max_total_trees)
    rounds = std::max(3, cfg_.max_total_trees / num_outputs_);
  rounds_used_ = rounds;

  const std::size_t n = src.rows();

  Matrix margins(n, static_cast<std::size_t>(num_outputs_));
  Matrix probs;
  std::vector<float> grad(n), hess(n), values;
  trees_.clear();
  trees_.reserve(static_cast<std::size_t>(rounds * num_outputs_));

  for (int r = 0; r < rounds; ++r) {
    throw_if_cancelled(cfg_.cancel, "GradientBoosting::fit_binned");
    if (num_outputs_ == 1) {
      for (std::size_t i = 0; i < n; ++i) {
        float p = 1.0f / (1.0f + std::exp(-margins(i, 0)));
        grad[i] = p - static_cast<float>(y[i]);
        hess[i] = std::max(p * (1.0f - p), 1e-6f);
      }
      DecisionTree tree;
      tree.fit_regression_binned(src, grad, hess, tree_cfg, rng);
      tree.predict_value_binned(src, values);
      for (std::size_t i = 0; i < n; ++i)
        margins(i, 0) += cfg_.learning_rate * values[i];
      trees_.push_back(std::move(tree));
    } else {
      probs.copy_from(margins);
      softmax_rows(probs);
      for (int k = 0; k < num_outputs_; ++k) {
        for (std::size_t i = 0; i < n; ++i) {
          float p = probs(i, static_cast<std::size_t>(k));
          grad[i] = p - (y[i] == k ? 1.0f : 0.0f);
          hess[i] = std::max(p * (1.0f - p), 1e-6f);
        }
        DecisionTree tree;
        tree.fit_regression_binned(src, grad, hess, tree_cfg, rng);
        tree.predict_value_binned(src, values);
        for (std::size_t i = 0; i < n; ++i)
          margins(i, static_cast<std::size_t>(k)) +=
              cfg_.learning_rate * values[i];
        trees_.push_back(std::move(tree));
      }
    }
  }
}

Matrix GradientBoosting::decision_function(const Matrix& x) const {
  Matrix scores(x.rows(), static_cast<std::size_t>(std::max(num_outputs_, 1)));
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    std::size_t k = t % static_cast<std::size_t>(num_outputs_);
    for (std::size_t i = 0; i < x.rows(); ++i)
      scores(i, k) += cfg_.learning_rate * trees_[t].predict_value(x.row(i));
  }
  return scores;
}

std::vector<int> GradientBoosting::predict(const Matrix& x) const {
  Matrix scores = decision_function(x);
  std::vector<int> out(x.rows(), 0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    if (num_outputs_ == 1) {
      out[i] = scores(i, 0) > 0 ? 1 : 0;
    } else {
      const float* r = scores.row(i);
      out[i] = static_cast<int>(std::max_element(r, r + scores.cols()) - r);
    }
  }
  return out;
}

std::vector<double> GradientBoosting::feature_importance() const {
  if (trees_.empty()) return {};
  std::vector<double> total(trees_.front().feature_importance().size(), 0.0);
  for (const auto& tree : trees_) {
    const auto& imp = tree.feature_importance();
    for (std::size_t i = 0; i < imp.size(); ++i) total[i] += imp[i];
  }
  double sum = 0;
  for (double v : total) sum += v;
  if (sum > 0)
    for (double& v : total) v /= sum;
  return total;
}

}  // namespace sugar::ml
