// Reusable neural-network core: linear layers with explicit forward and
// backward passes and an Adam optimizer. Both the shallow MLP baseline and
// every representation-learning encoder in src/replearn compose these
// layers, which is exactly what makes frozen-vs-unfrozen training a single
// switch: the classification head's input gradient either stops at the
// embedding (frozen) or keeps flowing into the encoder stack (unfrozen).
//
// Memory discipline: a MlpNet owns a MatrixArena of scratch slots for its
// activations, ReLU masks and input gradients. forward()/backward() return
// references into that arena and reuse the same buffers every batch, so a
// training epoch performs zero heap allocations once each shape has been
// seen (asserted in tests via MatrixArena::heap_allocations()). Linear
// caches its forward input by pointer, not by copy; the pointed-to matrix
// must stay alive until the matching backward() — MlpNet guarantees this
// for its own layers (the inputs are arena slots or the caller's batch).
#pragma once

#include <cstdint>
#include <deque>
#include <random>
#include <vector>

#include "ml/matrix.h"

namespace sugar::ml {

/// A pool of reusable Matrix slots addressed by index. acquire() reshapes
/// the slot to the requested shape without ever shrinking its capacity, so
/// steady-state training loops hit warm buffers only. heap_allocations()
/// counts every capacity growth (including first use) — the zero-churn
/// property is `heap_allocations()` staying flat across epochs.
class MatrixArena {
 public:
  Matrix& acquire(std::size_t slot, std::size_t rows, std::size_t cols) {
    while (slots_.size() <= slot) slots_.emplace_back();
    Matrix& m = slots_[slot];
    if (rows * cols > m.capacity()) ++heap_allocations_;
    m.reshape(rows, cols);
    return m;
  }

  [[nodiscard]] std::size_t heap_allocations() const {
    return heap_allocations_;
  }
  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }

 private:
  // deque, not vector: growing the pool must not move existing slots —
  // forward/backward hold references across acquire() calls.
  std::deque<Matrix> slots_;
  std::size_t heap_allocations_ = 0;
};

struct AdamState {
  Matrix m_w, v_w;
  std::vector<float> m_b, v_b;
  int t = 0;
};

/// Fully connected layer y = xW + b with a pointer-cached activation for
/// backprop (no input copy per step).
class Linear {
 public:
  Linear() = default;
  Linear(std::size_t in, std::size_t out, std::mt19937_64& rng);

  /// Forward over a batch [n×in] into `y` [n×out] (reshaped, reused).
  /// When `training`, caches a pointer to `x` for backward_into(); `x`
  /// must outlive that call. A copied Linear carries the original's stale
  /// pointer until its own next forward refreshes it.
  void forward_into(const Matrix& x, Matrix& y, bool training);

  /// Backward: grad wrt output [n×out] -> grad wrt input written into
  /// `grad_in` [n×in]; accumulates weight/bias gradients.
  void backward_into(const Matrix& grad_out, Matrix& grad_in);

  /// Allocating conveniences over the `_into` pair (tests, one-shot use).
  Matrix forward(const Matrix& x, bool training);
  Matrix backward(const Matrix& grad_out);

  void zero_grad();
  void adam_step(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                 float eps = 1e-8f);

  [[nodiscard]] std::size_t in_dim() const { return w_.rows(); }
  [[nodiscard]] std::size_t out_dim() const { return w_.cols(); }
  [[nodiscard]] std::size_t param_count() const { return w_.size() + b_.size(); }

  Matrix& weights() { return w_; }
  std::vector<float>& bias() { return b_; }

 private:
  Matrix w_;  // [in×out]
  std::vector<float> b_;
  Matrix grad_w_;
  std::vector<float> grad_b_;
  const Matrix* cached_input_ = nullptr;
  AdamState adam_;
};

/// A stack of Linear layers with ReLU between them (none after the last).
class MlpNet {
 public:
  MlpNet() = default;
  /// dims = {in, h1, ..., out}.
  MlpNet(const std::vector<std::size_t>& dims, std::uint64_t seed);

  /// Returns the last-layer activation, an arena slot owned by this net —
  /// valid until the next forward() on the same net; copy to keep. `x`
  /// must stay alive until backward() when `training`.
  Matrix& forward(const Matrix& x, bool training);
  /// Returns grad wrt the network input (enables stacking nets); also an
  /// arena slot, valid until the next backward() on the same net.
  Matrix& backward(const Matrix& grad_out);
  void zero_grad();
  void adam_step(float lr);

  [[nodiscard]] std::size_t in_dim() const { return layers_.front().in_dim(); }
  [[nodiscard]] std::size_t out_dim() const { return layers_.back().out_dim(); }
  [[nodiscard]] std::size_t param_count() const;
  [[nodiscard]] std::size_t num_layers() const { return layers_.size(); }
  [[nodiscard]] const MatrixArena& arena() const { return arena_; }

 private:
  // Arena slot map for L layers: activation of layer i at slot i
  // (i = 0..L-1), ReLU mask i at L+i (i = 0..L-2), grad wrt the input of
  // layer li at 2L-1+li (li = 0..L-1). 3L-1 slots total.
  std::vector<Linear> layers_;
  MatrixArena arena_;
};

/// Softmax cross-entropy: fills `grad` (dL/dlogits, already divided by n)
/// and returns mean loss. `logits` is consumed (softmaxed in place);
/// `grad` is reshaped in place, reusing its capacity across batches.
float softmax_cross_entropy(Matrix& logits, const std::vector<int>& labels,
                            Matrix& grad);

/// Mean squared error: fills grad = 2(pred-target)/n and returns mean
/// loss. `grad` is reshaped in place, reusing its capacity across batches.
float mse_loss(const Matrix& pred, const Matrix& target, Matrix& grad);

}  // namespace sugar::ml
