// Reusable neural-network core: linear layers with explicit forward and
// backward passes and an Adam optimizer. Both the shallow MLP baseline and
// every representation-learning encoder in src/replearn compose these
// layers, which is exactly what makes frozen-vs-unfrozen training a single
// switch: the classification head's input gradient either stops at the
// embedding (frozen) or keeps flowing into the encoder stack (unfrozen).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "ml/matrix.h"

namespace sugar::ml {

struct AdamState {
  Matrix m_w, v_w;
  std::vector<float> m_b, v_b;
  int t = 0;
};

/// Fully connected layer y = xW + b with cached activations for backprop.
class Linear {
 public:
  Linear() = default;
  Linear(std::size_t in, std::size_t out, std::mt19937_64& rng);

  /// Forward over a batch [n×in] -> [n×out]; caches the input when
  /// `training` so backward() can compute weight gradients.
  Matrix forward(const Matrix& x, bool training);

  /// Backward: grad wrt output [n×out] -> grad wrt input [n×in];
  /// accumulates weight/bias gradients.
  Matrix backward(const Matrix& grad_out);

  void zero_grad();
  void adam_step(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                 float eps = 1e-8f);

  [[nodiscard]] std::size_t in_dim() const { return w_.rows(); }
  [[nodiscard]] std::size_t out_dim() const { return w_.cols(); }
  [[nodiscard]] std::size_t param_count() const { return w_.size() + b_.size(); }

  Matrix& weights() { return w_; }
  std::vector<float>& bias() { return b_; }

 private:
  Matrix w_;  // [in×out]
  std::vector<float> b_;
  Matrix grad_w_;
  std::vector<float> grad_b_;
  Matrix cached_input_;
  AdamState adam_;
};

/// A stack of Linear layers with ReLU between them (none after the last).
class MlpNet {
 public:
  MlpNet() = default;
  /// dims = {in, h1, ..., out}.
  MlpNet(const std::vector<std::size_t>& dims, std::uint64_t seed);

  Matrix forward(const Matrix& x, bool training);
  /// Returns grad wrt the network input (enables stacking nets).
  Matrix backward(const Matrix& grad_out);
  void zero_grad();
  void adam_step(float lr);

  [[nodiscard]] std::size_t in_dim() const { return layers_.front().in_dim(); }
  [[nodiscard]] std::size_t out_dim() const { return layers_.back().out_dim(); }
  [[nodiscard]] std::size_t param_count() const;
  [[nodiscard]] std::size_t num_layers() const { return layers_.size(); }

 private:
  std::vector<Linear> layers_;
  std::vector<Matrix> relu_masks_;
};

/// Softmax cross-entropy: fills `grad` (dL/dlogits, already divided by n)
/// and returns mean loss. `logits` is consumed (softmaxed in place).
float softmax_cross_entropy(Matrix& logits, const std::vector<int>& labels,
                            Matrix& grad);

/// Mean squared error: fills grad = 2(pred-target)/n and returns mean loss.
float mse_loss(const Matrix& pred, const Matrix& target, Matrix& grad);

}  // namespace sugar::ml
