// Histogram-based CART decision trees, the building block for the Random
// Forest and gradient-boosting baselines of Table 8. One implementation
// supports both Gini classification splits and second-order (XGBoost-style)
// regression splits, plus depth-wise and leaf-wise (LightGBM-style) growth.
//
// Two large-node split engines share the sweep code:
//  - the pre-binned path: a BinnedMatrix quantized once per dataset
//    supplies uint8 bin codes, per-node histograms are accumulated
//    feature-parallel on the thread pool, and siblings reuse the parent's
//    histogram via subtraction (fit with `binned != nullptr`);
//  - the legacy per-tree path: cut points are re-derived per fit and every
//    row is re-binned by binary search at every node (no `binned`). Kept
//    for standalone single-tree fits and as the bench baseline.
// Nodes at or below `exact_split_max` rows always use the exact
// sorted-sweep search on raw floats, and predict() walks raw-float
// thresholds, so serving is identical under either engine.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "ml/matrix.h"

namespace sugar::ml {

class BinnedMatrix;
class BinnedColumnSource;

struct TreeConfig {
  int max_depth = 12;
  std::size_t min_samples_leaf = 2;
  /// 0 = depth-wise growth bounded by max_depth only; > 0 = best-first
  /// leaf-wise growth bounded by this leaf count (LightGBM style).
  int max_leaves = 0;
  /// Number of candidate features per split; 0 = all features.
  int features_per_split = 0;
  /// Histogram resolution for split finding.
  int histogram_bins = 32;
  /// L2 regularization on leaf values (regression mode).
  float lambda = 1.0f;
  /// Minimum gain to accept a split.
  float min_gain = 1e-7f;
  /// Nodes with at most this many samples use exact (sorted-sweep) split
  /// search instead of the shared histogram grid — crucial for composing
  /// fine-grained thresholds (IP octets, sequence ranges) deep in the tree.
  std::size_t exact_split_max = 1024;
  /// Pre-binned path only: derive the larger child's histogram from the
  /// parent's by subtracting the smaller child's (halves accumulation work
  /// per level). Only a test hook — the subtracted counts are exact for
  /// classification, so leaving it on is always correct.
  bool hist_subtraction = true;
};

class DecisionTree {
 public:
  /// Gini-impurity classification fit. `subset` optionally restricts to a
  /// bag of row indices (with repetition allowed, for bootstrap). When
  /// `binned` is set (a BinnedMatrix quantized from the same `x`), large
  /// nodes accumulate histograms from its bin codes instead of re-binning
  /// by binary search, and no per-tree cut points are derived.
  void fit_classifier(const Matrix& x, const std::vector<int>& y, int num_classes,
                      const TreeConfig& cfg, std::mt19937_64& rng,
                      const std::vector<std::uint32_t>* subset = nullptr,
                      const BinnedMatrix* binned = nullptr);

  /// Second-order regression fit on per-sample gradient/hessian (gradient
  /// boosting). Leaf value = -G/(H+lambda). `binned` as in fit_classifier.
  void fit_regression(const Matrix& x, const std::vector<float>& grad,
                      const std::vector<float>& hess, const TreeConfig& cfg,
                      std::mt19937_64& rng,
                      const std::vector<std::uint32_t>* subset = nullptr,
                      const BinnedMatrix* binned = nullptr);

  /// Out-of-core fits: codes come from a BinnedColumnSource (resident or
  /// paged), the raw float matrix is never touched. Every split is a
  /// histogram split (exact_split_max is forced to 0), the partition runs
  /// on bin codes (`code <= split bin` ≡ `value < cuts[bin]`), and it is
  /// STABLE — so a sorted row set stays sorted in every node and paged
  /// column access is monotone down the whole tree. Thresholds are still
  /// the raw-float cut values, so predict() works unchanged.
  void fit_classifier_binned(const BinnedColumnSource& src,
                             const std::vector<int>& y, int num_classes,
                             const TreeConfig& cfg, std::mt19937_64& rng,
                             const std::vector<std::uint32_t>* subset = nullptr);
  void fit_regression_binned(const BinnedColumnSource& src,
                             const std::vector<float>& grad,
                             const std::vector<float>& hess,
                             const TreeConfig& cfg, std::mt19937_64& rng,
                             const std::vector<std::uint32_t>* subset = nullptr);

  [[nodiscard]] int predict_class(const float* row) const;
  [[nodiscard]] float predict_value(const float* row) const;

  /// Regression outputs for every row of `src`, computed by walking the
  /// tree level-by-level on bin codes (only valid for trees whose every
  /// split is a histogram split, i.e. fitted via fit_*_binned). `out` is
  /// resized to src.rows(). The GBDT margin update's out-of-core
  /// replacement for per-row predict_value.
  void predict_value_binned(const BinnedColumnSource& src,
                            std::vector<float>& out) const;

  /// Total split gain attributed to each feature (unnormalized).
  [[nodiscard]] const std::vector<double>& feature_importance() const {
    return importance_;
  }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] int depth() const;

 private:
  struct Node {
    int feature = -1;  // -1 => leaf
    float threshold = 0;
    /// Histogram splits also record the bin the threshold came from
    /// (threshold == cuts[bin]); -1 for exact-search splits. Lets the
    /// out-of-core paths partition and traverse on uint8 codes.
    int bin = -1;
    int left = -1, right = -1;
    float value = 0;  // regression output
    int cls = 0;      // classification output
  };

  struct BuildContext;
  void build(BuildContext& ctx);
  int leaf_index(const float* row) const;

  std::vector<Node> nodes_;
  std::vector<double> importance_;
};

}  // namespace sugar::ml
