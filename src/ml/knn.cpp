#include "ml/knn.h"

#include <algorithm>
#include <numeric>

#include "core/threadpool.h"
#include "core/trace.h"

namespace sugar::ml {
namespace {

// Query rows per parallel block. Fixed so the purity reduction's per-block
// partial sums — and thus the double accumulation order — never depend on
// the thread count.
constexpr std::size_t kQueryGrain = 32;

/// Per-block scratch for the neighbour search: the distance array and the
/// result index list are reused across every query a block handles, so the
/// O(n)-sized buffers allocate once per block instead of once per query.
struct KnnScratch {
  std::vector<std::pair<float, std::size_t>> dist;
  std::vector<std::size_t> nn;
};

/// Indices of the k smallest distances (excluding `self` when >= 0),
/// written into `scratch.nn`. Ties are broken by index (pair comparison),
/// so the neighbour set is deterministic regardless of which thread
/// evaluates the query.
void k_nearest(const Matrix& pool, const float* query, int k,
               std::ptrdiff_t self, KnnScratch& scratch) {
  auto& dist = scratch.dist;
  dist.clear();
  dist.reserve(pool.rows());
  for (std::size_t i = 0; i < pool.rows(); ++i) {
    if (static_cast<std::ptrdiff_t>(i) == self) continue;
    dist.emplace_back(squared_distance(pool.row(i), query, pool.cols()), i);
  }
  std::size_t kk = std::min<std::size_t>(static_cast<std::size_t>(k), dist.size());
  std::partial_sort(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(kk),
                    dist.end());
  scratch.nn.resize(kk);
  for (std::size_t i = 0; i < kk; ++i) scratch.nn[i] = dist[i].second;
}

}  // namespace

void KnnClassifier::fit(Matrix x, std::vector<int> y, int num_classes) {
  train_x_ = std::move(x);
  train_y_ = std::move(y);
  num_classes_ = num_classes;
}

std::vector<int> KnnClassifier::predict(const Matrix& x) const {
  SUGAR_TRACE_SPAN("ml.knn.predict");
  SUGAR_TRACE_COUNT("ml.knn_queries", x.rows());
  std::vector<int> out(x.rows(), 0);
  core::global_pool().parallel_for(
      0, x.rows(), kQueryGrain, [&](std::size_t r0, std::size_t r1) {
        std::vector<int> votes(static_cast<std::size_t>(num_classes_));
        KnnScratch scratch;
        for (std::size_t i = r0; i < r1; ++i) {
          k_nearest(train_x_, x.row(i), k_, -1, scratch);
          const auto& nn = scratch.nn;
          std::fill(votes.begin(), votes.end(), 0);
          for (std::size_t j : nn) ++votes[static_cast<std::size_t>(train_y_[j])];
          out[i] = static_cast<int>(std::max_element(votes.begin(), votes.end()) -
                                    votes.begin());
        }
      });
  return out;
}

PurityHistogram knn_purity(const Matrix& embeddings, const std::vector<int>& labels,
                           int k) {
  SUGAR_TRACE_SPAN("ml.knn.purity");
  SUGAR_TRACE_COUNT("ml.knn_queries", embeddings.rows());
  PurityHistogram result;
  result.histogram.assign(static_cast<std::size_t>(k + 1), 0.0);
  std::size_t n = embeddings.rows();
  if (n < 2) return result;

  struct Partial {
    std::vector<double> histogram;
    double purity_sum = 0;
  };
  const std::size_t blocks = core::ThreadPool::block_count(0, n, kQueryGrain);
  std::vector<Partial> partials(blocks);
  core::global_pool().parallel_for(
      0, n, kQueryGrain, [&](std::size_t r0, std::size_t r1) {
        Partial& p = partials[r0 / kQueryGrain];
        p.histogram.assign(static_cast<std::size_t>(k + 1), 0.0);
        KnnScratch scratch;
        for (std::size_t i = r0; i < r1; ++i) {
          k_nearest(embeddings, embeddings.row(i), k,
                    static_cast<std::ptrdiff_t>(i), scratch);
          const auto& nn = scratch.nn;
          int same = 0;
          for (std::size_t j : nn)
            if (labels[j] == labels[i]) ++same;
          ++p.histogram[static_cast<std::size_t>(same)];
          p.purity_sum += nn.empty() ? 0.0
                                     : static_cast<double>(same) /
                                           static_cast<double>(nn.size());
        }
      });

  // Combine in ascending block order: the double summation is bit-identical
  // at any thread count because the block structure is fixed.
  double purity_sum = 0;
  for (const Partial& p : partials) {
    for (std::size_t j = 0; j < p.histogram.size(); ++j)
      result.histogram[j] += p.histogram[j];
    purity_sum += p.purity_sum;
  }
  for (auto& h : result.histogram) h /= static_cast<double>(n);
  result.mean_purity = purity_sum / static_cast<double>(n);
  return result;
}

}  // namespace sugar::ml
