// Gradient-boosted decision trees with second-order (Newton) boosting and
// softmax multi-class output. Two presets mirror the paper's Table 8
// baselines: XGBoost-style depth-wise trees and LightGBM-style leaf-wise
// trees. Binary tasks use a single logistic tree per round.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/guard.h"
#include "ml/tree.h"

namespace sugar::ml {

enum class GbdtGrowth { DepthWise, LeafWise };

struct GbdtConfig {
  int rounds = 40;
  float learning_rate = 0.2f;
  GbdtGrowth growth = GbdtGrowth::DepthWise;
  TreeConfig tree;
  std::uint64_t seed = 23;
  /// Quantize the feature matrix once per fit (ml::BinnedMatrix), shared
  /// by every round's trees; sibling-subtraction histograms apply since
  /// GBDT splits consider all features. Off = legacy per-tree binning.
  bool binned = true;
  /// Cap on rounds*classes to keep many-class tasks tractable; rounds is
  /// reduced when classes are many (0 = no cap).
  int max_total_trees = 2000;
  /// Polled once per boosting round; fit() throws CancelledError when set.
  const CancelToken* cancel = nullptr;

  GbdtConfig() {
    tree.max_depth = 6;
    tree.min_samples_leaf = 4;
    tree.features_per_split = 0;  // all features
    tree.histogram_bins = 64;
  }

  static GbdtConfig xgboost_style() {
    GbdtConfig c;
    c.growth = GbdtGrowth::DepthWise;
    return c;
  }
  static GbdtConfig lightgbm_style() {
    GbdtConfig c;
    c.growth = GbdtGrowth::LeafWise;
    c.tree.max_depth = 12;
    c.tree.max_leaves = 31;
    return c;
  }
};

class BinnedColumnSource;

class GradientBoosting {
 public:
  explicit GradientBoosting(GbdtConfig cfg = {}) : cfg_(cfg) {}

  void fit(const Matrix& x, const std::vector<int>& y, int num_classes);

  /// Out-of-core fit: the same boosting loop driven entirely by pre-binned
  /// codes — fit_regression_binned per round and predict_value_binned (a
  /// partition walk over the code source) for the margin updates, so the
  /// raw float matrix never materializes. Histogram-only splits
  /// (exact_split_max forced to 0) make this a different estimator from
  /// fit(); it is bit-identical to itself at any cache budget, page size,
  /// or thread count.
  void fit_binned(const BinnedColumnSource& src, const std::vector<int>& y,
                  int num_classes);
  [[nodiscard]] std::vector<int> predict(const Matrix& x) const;
  /// Raw margin scores [n×classes].
  [[nodiscard]] Matrix decision_function(const Matrix& x) const;

  [[nodiscard]] std::vector<double> feature_importance() const;
  [[nodiscard]] int rounds_used() const { return rounds_used_; }

 private:
  GbdtConfig cfg_;
  int num_classes_ = 0;
  int rounds_used_ = 0;
  /// trees_[round * num_outputs + k]
  std::vector<DecisionTree> trees_;
  int num_outputs_ = 0;  // 1 for binary, K for multi-class
};

}  // namespace sugar::ml
