#include "ml/mlp.h"

#include "core/trace.h"

#include <algorithm>
#include <numeric>
#include <random>

namespace sugar::ml {

void MlpClassifier::fit(const Matrix& x, const std::vector<int>& y, int num_classes) {
  num_classes_ = num_classes;
  std::vector<std::size_t> dims;
  dims.push_back(x.cols());
  for (auto h : cfg_.hidden) dims.push_back(h);
  dims.push_back(static_cast<std::size_t>(num_classes));
  net_ = MlpNet(dims, cfg_.seed);

  std::mt19937_64 rng(cfg_.seed ^ 0xB00F);
  std::vector<std::size_t> order(x.rows());
  std::iota(order.begin(), order.end(), 0);

  float best_loss = 1e30f;
  int stall = 0;
  // Batch scratch hoisted out of the loops: with the arena-backed net this
  // makes the steady-state epoch allocation-free.
  std::vector<std::size_t> idx;
  std::vector<int> yb;
  Matrix xb, grad;
  SUGAR_TRACE_SPAN("ml.fit");
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    SUGAR_TRACE_SPAN("ml.fit.epoch");
    const std::size_t allocs_before = net_.arena().heap_allocations();
    std::shuffle(order.begin(), order.end(), rng);
    float epoch_loss = 0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size(); start += cfg_.batch_size) {
      throw_if_cancelled(cfg_.cancel, "MlpClassifier::fit");
      std::size_t end = std::min(order.size(), start + cfg_.batch_size);
      idx.assign(order.begin() + static_cast<std::ptrdiff_t>(start),
                 order.begin() + static_cast<std::ptrdiff_t>(end));
      x.take_rows_into(idx, xb);
      yb.resize(idx.size());
      for (std::size_t i = 0; i < idx.size(); ++i) yb[i] = y[idx[i]];

      net_.zero_grad();
      Matrix& logits = net_.forward(xb, /*training=*/true);
      epoch_loss += softmax_cross_entropy(logits, yb, grad);
      ++batches;
      net_.backward(grad);
      net_.adam_step(cfg_.learning_rate);
    }
    epoch_loss /= static_cast<float>(std::max<std::size_t>(batches, 1));
    SUGAR_TRACE_COUNT("ml.epochs", 1);
    SUGAR_TRACE_COUNT("ml.arena_growths",
                      net_.arena().heap_allocations() - allocs_before);
    check_loss_finite(epoch_loss, "MlpClassifier::fit", epoch);
    if (cfg_.early_stop_delta > 0) {
      if (epoch_loss < best_loss - cfg_.early_stop_delta) {
        best_loss = epoch_loss;
        stall = 0;
      } else if (++stall >= cfg_.patience) {
        break;
      }
    }
  }
}

Matrix MlpClassifier::predict_proba(const Matrix& x) const {
  SUGAR_TRACE_SPAN("ml.predict");
  Matrix logits = const_cast<MlpNet&>(net_).forward(x, /*training=*/false);
  softmax_rows(logits);
  return logits;
}

std::vector<int> MlpClassifier::predict(const Matrix& x) const {
  Matrix probs = predict_proba(x);
  std::vector<int> out(x.rows(), 0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const float* r = probs.row(i);
    out[i] = static_cast<int>(std::max_element(r, r + probs.cols()) - r);
  }
  return out;
}

}  // namespace sugar::ml
