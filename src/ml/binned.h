// Quantize-once feature binning for histogram tree training. A
// BinnedMatrix is built ONCE per dataset (per forest / GBDT fit): every
// feature column is summarized by a deterministic merge-based quantile
// sketch, cut points are extracted at evenly spaced quantile ranks, and
// each (row, feature) value is quantized to a uint8 bin code stored
// column-major. Tree building then accumulates per-node histograms by
// indexing codes directly — no per-node std::upper_bound binary search,
// and no per-tree re-derivation of cut points.
//
// Determinism: the sketch is a pure function of the column values in row
// order (no RNG, no thread-count dependence — features are quantized in
// parallel but each feature's sketch is computed sequentially by one
// block), so the same Matrix always yields the same cuts and codes at any
// SUGAR_THREADS value.
//
// Bin semantics match the tree's strict '<' partition convention: code b
// holds values in [cuts[b-1], cuts[b]); a split "after bin b" uses
// threshold cuts[b], sending exactly the rows with value < cuts[b] (codes
// <= b) to the left child. Values equal to a cut belong to the bin to its
// RIGHT.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/matrix.h"

namespace sugar::ml {

/// Bin index of `v` under the strict '<' convention: the number of cuts
/// <= v (std::upper_bound). cuts must be sorted ascending and distinct.
int quantize_bin(const std::vector<float>& cuts, float v);

class BinnedMatrix {
 public:
  /// Codes can index at most 256 bins (uint8 storage).
  static constexpr int kMaxBins = 256;

  BinnedMatrix() = default;

  /// Quantizes `x` with at most `bins` bins per feature (clamped to
  /// [2, kMaxBins]). Features are processed in parallel on the global
  /// thread pool; the result is identical at any pool width.
  BinnedMatrix(const Matrix& x, int bins);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  /// Configured maximum bin count (the uniform histogram stride).
  [[nodiscard]] int bins() const { return bins_; }

  /// Actual bin count of feature f: cuts(f).size() + 1. Constant columns
  /// have one bin (no cuts) and can never be split.
  [[nodiscard]] int bin_count(std::size_t f) const {
    return static_cast<int>(cuts_[f].size()) + 1;
  }

  /// Ascending distinct cut points of feature f (actual data values, so
  /// split thresholds stay on the raw-float scale and predict() is
  /// untouched).
  [[nodiscard]] const std::vector<float>& cuts(std::size_t f) const {
    return cuts_[f];
  }

  /// Split threshold after bin b of feature f (rows with code <= b go
  /// left under the strict '<' partition).
  [[nodiscard]] float threshold(std::size_t f, int b) const {
    return cuts_[f][static_cast<std::size_t>(b)];
  }

  /// Column of bin codes for feature f, length rows(). Columns start on
  /// 64-byte boundaries (the stride pads rows() up).
  [[nodiscard]] const std::uint8_t* codes(std::size_t f) const {
    return codes_.data() + f * stride_;
  }

  /// Total bytes held by the code store (observability).
  [[nodiscard]] std::size_t code_bytes() const { return codes_.size(); }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::size_t stride_ = 0;  // rows_ rounded up to 64
  int bins_ = 0;
  std::vector<std::vector<float>> cuts_;
  std::vector<std::uint8_t, AlignedAllocator<std::uint8_t>> codes_;
};

}  // namespace sugar::ml
