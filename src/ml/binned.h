// Quantize-once feature binning for histogram tree training. A
// BinnedMatrix is built ONCE per dataset (per forest / GBDT fit): every
// feature column is summarized by a deterministic merge-based quantile
// sketch, cut points are extracted at evenly spaced quantile ranks, and
// each (row, feature) value is quantized to a uint8 bin code stored
// column-major. Tree building then accumulates per-node histograms by
// indexing codes directly — no per-node std::upper_bound binary search,
// and no per-tree re-derivation of cut points.
//
// Determinism: the sketch is a pure function of the column values in row
// order (no RNG, no thread-count dependence — features are quantized in
// parallel but each feature's sketch is computed sequentially by one
// block), so the same Matrix always yields the same cuts and codes at any
// SUGAR_THREADS value.
//
// Bin semantics match the tree's strict '<' partition convention: code b
// holds values in [cuts[b-1], cuts[b]); a split "after bin b" uses
// threshold cuts[b], sending exactly the rows with value < cuts[b] (codes
// <= b) to the left child. Values equal to a cut belong to the bin to its
// RIGHT. The invariant `code <= b  <=>  value < cuts[b]` is what lets the
// out-of-core fit partition and traverse on codes without ever touching
// the raw floats.
//
// BinnedColumnSource abstracts WHERE the codes live: BinnedMatrix serves
// them from its resident buffer, while dataset::PagedCodeSource serves
// 64 KB–1 MB column pages out of a SUGC store through core::PageCache.
// Tree building consumes either through a CodeCursor, so the paged fit is
// bit-identical to the resident one by construction.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/matrix.h"

namespace sugar::ml {

/// Bin index of `v` under the strict '<' convention: the number of cuts
/// <= v (std::upper_bound). cuts must be sorted ascending and distinct.
int quantize_bin(const std::vector<float>& cuts, float v);

namespace detail {
/// One weighted summary point of the merge sketch: `v` is an actual data
/// value, `w` the number of column entries it stands for.
struct WeightedVal {
  float v;
  double w;
};
}  // namespace detail

/// Streaming quantile sketch for ONE feature column: feed values in row
/// order, finalize into cut points. This is exactly the sketch
/// BinnedMatrix runs per column — exposed so out-of-core producers can
/// derive bit-identical cuts from streamed row blocks without a resident
/// Matrix. Pure function of the value sequence.
class ColumnSketch {
 public:
  /// Rows are folded into the sketch in sorted blocks of this size.
  static constexpr std::size_t kBlock = 4096;

  explicit ColumnSketch(int bins);

  void add(float v);
  /// Flushes the partial block and extracts the cuts. Call once.
  [[nodiscard]] std::vector<float> finalize();

 private:
  void flush();

  int bins_ = 0;
  std::size_t cap_ = 0;
  std::vector<float> block_;
  std::vector<detail::WeightedVal> summary_, incoming_, merged_;
};

/// A contiguous run of bin codes for one feature, covering rows
/// [begin, end). `data[r - begin]` is row r's code.
struct CodeChunk {
  const std::uint8_t* data = nullptr;
  std::size_t begin = 0, end = 0;
};

/// Where tree fits read bin codes from: a resident BinnedMatrix or a paged
/// on-disk store. fetch() may be called concurrently from pool workers
/// (one cursor per worker); implementations must be thread-safe.
class BinnedColumnSource {
 public:
  virtual ~BinnedColumnSource() = default;

  [[nodiscard]] virtual std::size_t rows() const = 0;
  [[nodiscard]] virtual std::size_t cols() const = 0;
  /// Configured maximum bin count (the uniform histogram stride).
  [[nodiscard]] virtual int bins() const = 0;
  /// Ascending distinct cut points of feature f.
  [[nodiscard]] virtual const std::vector<float>& cuts(std::size_t f) const = 0;

  /// Actual bin count of feature f: cuts(f).size() + 1.
  [[nodiscard]] int bin_count(std::size_t f) const {
    return static_cast<int>(cuts(f).size()) + 1;
  }
  /// Split threshold after bin b of feature f.
  [[nodiscard]] float threshold(std::size_t f, int b) const {
    return cuts(f)[static_cast<std::size_t>(b)];
  }

  /// The chunk of feature f's codes containing `row`. `keepalive` must be
  /// held for as long as the chunk pointer is used (paged sources park the
  /// page pin there; resident sources leave it empty).
  [[nodiscard]] virtual CodeChunk fetch(std::size_t f, std::size_t row,
                                        std::shared_ptr<const void>& keepalive) const = 0;

  /// Lookahead hint: `row` is about to be fetched for feature f (paged
  /// sources enqueue a prefetch; resident sources ignore it).
  virtual void hint(std::size_t /*f*/, std::size_t /*row*/) const {}
};

/// Sequential-friendly reader over one feature's codes. at(r) is an inline
/// bounds check against the current chunk; crossing a chunk boundary
/// refills through the source (a page pin swap for paged sources) and
/// posts the next-chunk hint. Monotone row access touches each page once.
class CodeCursor {
 public:
  CodeCursor(const BinnedColumnSource& src, std::size_t f)
      : src_(&src), f_(f) {}

  [[nodiscard]] std::uint8_t at(std::size_t r) {
    if (r < lo_ || r >= hi_) refill(r);
    return data_[r - lo_];
  }

 private:
  void refill(std::size_t r) {
    CodeChunk c = src_->fetch(f_, r, keepalive_);
    data_ = c.data;
    lo_ = c.begin;
    hi_ = c.end;
    if (hi_ < src_->rows()) src_->hint(f_, hi_);
  }

  const BinnedColumnSource* src_;
  std::size_t f_;
  const std::uint8_t* data_ = nullptr;
  std::size_t lo_ = 1, hi_ = 0;  // empty interval forces the first refill
  std::shared_ptr<const void> keepalive_;
};

class BinnedMatrix final : public BinnedColumnSource {
 public:
  /// Codes can index at most 256 bins (uint8 storage).
  static constexpr int kMaxBins = 256;

  BinnedMatrix() = default;

  /// Quantizes `x` with at most `bins` bins per feature (clamped to
  /// [2, kMaxBins]). Features are processed in parallel on the global
  /// thread pool; the result is identical at any pool width.
  BinnedMatrix(const Matrix& x, int bins);

  [[nodiscard]] std::size_t rows() const override { return rows_; }
  [[nodiscard]] std::size_t cols() const override { return cols_; }
  [[nodiscard]] int bins() const override { return bins_; }

  [[nodiscard]] const std::vector<float>& cuts(std::size_t f) const override {
    return cuts_[f];
  }

  /// Resident source: one chunk spans the whole column, no pin needed.
  [[nodiscard]] CodeChunk fetch(std::size_t f, std::size_t /*row*/,
                                std::shared_ptr<const void>&) const override {
    return {codes(f), 0, rows_};
  }

  /// Column of bin codes for feature f, length rows(). Columns start on
  /// 64-byte boundaries (the stride pads rows() up).
  [[nodiscard]] const std::uint8_t* codes(std::size_t f) const {
    return codes_.data() + f * stride_;
  }

  /// Total bytes held by the code store (observability).
  [[nodiscard]] std::size_t code_bytes() const { return codes_.size(); }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::size_t stride_ = 0;  // rows_ rounded up to 64
  int bins_ = 0;
  std::vector<std::vector<float>> cuts_;
  std::vector<std::uint8_t, AlignedAllocator<std::uint8_t>> codes_;
};

}  // namespace sugar::ml
