// Feature preprocessing: standard scaling fit on train only (fitting on the
// full dataset would itself be a small leak — the pipeline is strict about
// this).
#pragma once

#include <vector>

#include "ml/matrix.h"

namespace sugar::ml {

class StandardScaler {
 public:
  void fit(const Matrix& x);
  void transform(Matrix& x) const;
  [[nodiscard]] Matrix fit_transform(Matrix x) {
    fit(x);
    transform(x);
    return x;
  }

  [[nodiscard]] const std::vector<float>& mean() const { return mean_; }
  [[nodiscard]] const std::vector<float>& stddev() const { return std_; }

 private:
  std::vector<float> mean_;
  std::vector<float> std_;
};

}  // namespace sugar::ml
