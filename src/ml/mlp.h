// Softmax MLP classifier on top of the MlpNet core — the fourth shallow
// baseline of Table 8 and the classification-head architecture used by
// every representation-learning model in the paper (a two-layer MLP with
// ReLU, §3.4).
#pragma once

#include <cstdint>
#include <vector>

#include "ml/guard.h"
#include "ml/nn.h"

namespace sugar::ml {

struct MlpConfig {
  std::vector<std::size_t> hidden = {128};
  int epochs = 40;
  std::size_t batch_size = 64;
  float learning_rate = 1e-3f;
  std::uint64_t seed = 29;
  /// Stop when training loss improves less than this over `patience` epochs
  /// (0 disables early stopping).
  float early_stop_delta = 0.0f;
  int patience = 5;
  /// Polled at batch granularity; fit() throws CancelledError when set.
  const CancelToken* cancel = nullptr;
};

class MlpClassifier {
 public:
  explicit MlpClassifier(MlpConfig cfg = {}) : cfg_(cfg) {}

  void fit(const Matrix& x, const std::vector<int>& y, int num_classes);
  [[nodiscard]] std::vector<int> predict(const Matrix& x) const;
  [[nodiscard]] Matrix predict_proba(const Matrix& x) const;

  [[nodiscard]] const MlpNet& net() const { return net_; }

 private:
  MlpConfig cfg_;
  MlpNet net_;
  int num_classes_ = 0;
};

}  // namespace sugar::ml
