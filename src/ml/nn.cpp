#include "ml/nn.h"

#include <cmath>

#include "core/simd.h"
#include "ml/guard.h"

namespace sugar::ml {

namespace simd = core::simd;

Linear::Linear(std::size_t in, std::size_t out, std::mt19937_64& rng)
    : w_(in, out), b_(out, 0.0f), grad_w_(in, out), grad_b_(out, 0.0f) {
  // He initialization, appropriate for the ReLU stacks we build.
  float scale = std::sqrt(2.0f / static_cast<float>(in));
  std::normal_distribution<float> dist(0.0f, scale);
  for (auto& v : w_.data()) v = dist(rng);
  adam_.m_w = Matrix(in, out);
  adam_.v_w = Matrix(in, out);
  adam_.m_b.assign(out, 0.0f);
  adam_.v_b.assign(out, 0.0f);
}

void Linear::forward_into(const Matrix& x, Matrix& y, bool training) {
  if (training) cached_input_ = &x;
  matmul_into(x, w_, y);
  add_row_vector(y, b_);
}

Matrix Linear::forward(const Matrix& x, bool training) {
  Matrix y;
  forward_into(x, y, training);
  return y;
}

void Linear::backward_into(const Matrix& grad_out, Matrix& grad_in) {
  check_internal(cached_input_ != nullptr,
                 "Linear::backward: no cached training forward");
  // dW += x^T g ; db += colsum(g) ; dx = g W^T
  matmul_tn_acc(*cached_input_, grad_out, grad_w_);
  for (std::size_t i = 0; i < grad_out.rows(); ++i)
    simd::vadd_inplace(grad_b_.data(), grad_out.row(i), grad_out.cols());
  matmul_nt_into(grad_out, w_, grad_in);
}

Matrix Linear::backward(const Matrix& grad_out) {
  Matrix grad_in;
  backward_into(grad_out, grad_in);
  return grad_in;
}

void Linear::zero_grad() {
  grad_w_.fill(0.0f);
  std::fill(grad_b_.begin(), grad_b_.end(), 0.0f);
}

namespace {

/// One Adam parameter update over n contiguous floats. Pure elementwise —
/// the vector body and the scalar tail evaluate the exact expression
/// shapes of the original scalar loop, so the result is independent of
/// lane width and backend.
void adam_update(float* w, float* m, float* v, const float* g, std::size_t n,
                 float lr, float beta1, float beta2, float eps, float bc1,
                 float bc2) {
  const float c1 = 1 - beta1, c2 = 1 - beta2;
  const simd::f32x8 vb1 = simd::broadcast(beta1), vc1 = simd::broadcast(c1);
  const simd::f32x8 vb2 = simd::broadcast(beta2), vc2 = simd::broadcast(c2);
  const simd::f32x8 vlr = simd::broadcast(lr), veps = simd::broadcast(eps);
  const simd::f32x8 vbc1 = simd::broadcast(bc1), vbc2 = simd::broadcast(bc2);
  std::size_t i = 0;
  for (; i + simd::kLanes <= n; i += simd::kLanes) {
    simd::f32x8 g8 = simd::loadu(g + i);
    simd::f32x8 m8 = simd::add(simd::mul(vb1, simd::loadu(m + i)),
                               simd::mul(vc1, g8));
    // (1-beta2) * g * g associates left-to-right, matching the tail.
    simd::f32x8 v8 = simd::add(simd::mul(vb2, simd::loadu(v + i)),
                               simd::mul(simd::mul(vc2, g8), g8));
    simd::storeu(m + i, m8);
    simd::storeu(v + i, v8);
    simd::f32x8 step =
        simd::div(simd::mul(vlr, simd::div(m8, vbc1)),
                  simd::add(simd::sqrt(simd::div(v8, vbc2)), veps));
    simd::storeu(w + i, simd::sub(simd::loadu(w + i), step));
  }
  for (; i < n; ++i) {
    float gi = g[i];
    float mi = beta1 * m[i] + c1 * gi;
    float vi = beta2 * v[i] + c2 * gi * gi;
    m[i] = mi;
    v[i] = vi;
    w[i] -= lr * (mi / bc1) / (std::sqrt(vi / bc2) + eps);
  }
}

}  // namespace

void Linear::adam_step(float lr, float beta1, float beta2, float eps) {
  ++adam_.t;
  float bc1 = 1.0f - std::pow(beta1, static_cast<float>(adam_.t));
  float bc2 = 1.0f - std::pow(beta2, static_cast<float>(adam_.t));
  adam_update(w_.data().data(), adam_.m_w.data().data(),
              adam_.v_w.data().data(), grad_w_.data().data(), w_.size(), lr,
              beta1, beta2, eps, bc1, bc2);
  adam_update(b_.data(), adam_.m_b.data(), adam_.v_b.data(), grad_b_.data(),
              b_.size(), lr, beta1, beta2, eps, bc1, bc2);
}

MlpNet::MlpNet(const std::vector<std::size_t>& dims, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i + 1 < dims.size(); ++i)
    layers_.emplace_back(dims[i], dims[i + 1], rng);
}

Matrix& MlpNet::forward(const Matrix& x, bool training) {
  check_internal(!layers_.empty(), "MlpNet::forward: no layers");
  const std::size_t L = layers_.size();
  const Matrix* cur = &x;  // layer 0 consumes the caller's batch directly
  Matrix* out = nullptr;
  for (std::size_t i = 0; i < L; ++i) {
    Matrix& y = arena_.acquire(i, cur->rows(), layers_[i].out_dim());
    layers_[i].forward_into(*cur, y, training);
    if (i + 1 < L) {
      if (training) {
        relu_inplace_into(y, arena_.acquire(L + i, y.rows(), y.cols()));
      } else {
        relu_inplace_nomask(y);
      }
    }
    cur = &y;
    out = &y;
  }
  return *out;
}

Matrix& MlpNet::backward(const Matrix& grad_out) {
  check_internal(!layers_.empty(), "MlpNet::backward: no layers");
  const std::size_t L = layers_.size();
  const Matrix* g = &grad_out;
  Matrix* out = nullptr;
  for (std::size_t li = L; li-- > 0;) {
    Matrix& gi =
        arena_.acquire(2 * L - 1 + li, g->rows(), layers_[li].in_dim());
    layers_[li].backward_into(*g, gi);
    if (li > 0) hadamard_inplace(gi, arena_.acquire(L + li - 1, gi.rows(), gi.cols()));
    g = &gi;
    out = &gi;
  }
  return *out;
}

void MlpNet::zero_grad() {
  for (auto& l : layers_) l.zero_grad();
}

void MlpNet::adam_step(float lr) {
  for (auto& l : layers_) l.adam_step(lr);
}

std::size_t MlpNet::param_count() const {
  std::size_t n = 0;
  for (const auto& l : layers_) n += l.param_count();
  return n;
}

float softmax_cross_entropy(Matrix& logits, const std::vector<int>& labels,
                            Matrix& grad) {
  softmax_rows(logits);
  std::size_t n = logits.rows();
  grad.copy_from(logits);
  float loss = 0;
  float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    int y = labels[i];
    float p = std::max(logits(i, static_cast<std::size_t>(y)), 1e-12f);
    loss -= std::log(p);
    grad(i, static_cast<std::size_t>(y)) -= 1.0f;
  }
  simd::vscale_inplace(grad.data().data(), inv_n, grad.size());
  return loss * inv_n;
}

float mse_loss(const Matrix& pred, const Matrix& target, Matrix& grad) {
  check_internal(pred.rows() == target.rows() && pred.cols() == target.cols(),
                 "mse_loss: shape mismatch");
  grad.reshape(pred.rows(), pred.cols());
  const float* p = pred.data().data();
  const float* t = target.data().data();
  float* gr = grad.data().data();
  const std::size_t sz = pred.size();
  const float inv = 1.0f / static_cast<float>(sz);
  // Loss sum uses the shared strided-8 reduction spec; the grad is pure
  // elementwise (2*d then *inv, matching the tail's association).
  const float loss = simd::squared_distance(p, t, sz);
  const simd::f32x8 v2 = simd::broadcast(2.0f), vinv = simd::broadcast(inv);
  std::size_t i = 0;
  for (; i + simd::kLanes <= sz; i += simd::kLanes) {
    simd::f32x8 d = simd::sub(simd::loadu(p + i), simd::loadu(t + i));
    simd::storeu(gr + i, simd::mul(simd::mul(v2, d), vinv));
  }
  for (; i < sz; ++i) {
    float d = p[i] - t[i];
    gr[i] = 2.0f * d * inv;
  }
  return loss * inv;
}

}  // namespace sugar::ml
