#include "ml/nn.h"

#include <cmath>

namespace sugar::ml {

Linear::Linear(std::size_t in, std::size_t out, std::mt19937_64& rng)
    : w_(in, out), b_(out, 0.0f), grad_w_(in, out), grad_b_(out, 0.0f) {
  // He initialization, appropriate for the ReLU stacks we build.
  float scale = std::sqrt(2.0f / static_cast<float>(in));
  std::normal_distribution<float> dist(0.0f, scale);
  for (auto& v : w_.data()) v = dist(rng);
  adam_.m_w = Matrix(in, out);
  adam_.v_w = Matrix(in, out);
  adam_.m_b.assign(out, 0.0f);
  adam_.v_b.assign(out, 0.0f);
}

Matrix Linear::forward(const Matrix& x, bool training) {
  if (training) cached_input_ = x;
  Matrix y = matmul(x, w_);
  add_row_vector(y, b_);
  return y;
}

Matrix Linear::backward(const Matrix& grad_out) {
  // dW += x^T g ; db += colsum(g) ; dx = g W^T
  Matrix gw = matmul_tn(cached_input_, grad_out);
  for (std::size_t i = 0; i < gw.size(); ++i) grad_w_.data()[i] += gw.data()[i];
  for (std::size_t i = 0; i < grad_out.rows(); ++i) {
    const float* r = grad_out.row(i);
    for (std::size_t j = 0; j < grad_out.cols(); ++j) grad_b_[j] += r[j];
  }
  return matmul_nt(grad_out, w_);
}

void Linear::zero_grad() {
  grad_w_.fill(0.0f);
  std::fill(grad_b_.begin(), grad_b_.end(), 0.0f);
}

void Linear::adam_step(float lr, float beta1, float beta2, float eps) {
  ++adam_.t;
  float bc1 = 1.0f - std::pow(beta1, static_cast<float>(adam_.t));
  float bc2 = 1.0f - std::pow(beta2, static_cast<float>(adam_.t));
  for (std::size_t i = 0; i < w_.size(); ++i) {
    float g = grad_w_.data()[i];
    float& m = adam_.m_w.data()[i];
    float& v = adam_.v_w.data()[i];
    m = beta1 * m + (1 - beta1) * g;
    v = beta2 * v + (1 - beta2) * g * g;
    w_.data()[i] -= lr * (m / bc1) / (std::sqrt(v / bc2) + eps);
  }
  for (std::size_t i = 0; i < b_.size(); ++i) {
    float g = grad_b_[i];
    float& m = adam_.m_b[i];
    float& v = adam_.v_b[i];
    m = beta1 * m + (1 - beta1) * g;
    v = beta2 * v + (1 - beta2) * g * g;
    b_[i] -= lr * (m / bc1) / (std::sqrt(v / bc2) + eps);
  }
}

MlpNet::MlpNet(const std::vector<std::size_t>& dims, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i + 1 < dims.size(); ++i)
    layers_.emplace_back(dims[i], dims[i + 1], rng);
}

Matrix MlpNet::forward(const Matrix& x, bool training) {
  relu_masks_.clear();
  Matrix h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].forward(h, training);
    if (i + 1 < layers_.size()) {
      Matrix mask = relu_inplace(h);
      if (training) relu_masks_.push_back(std::move(mask));
    }
  }
  return h;
}

Matrix MlpNet::backward(const Matrix& grad_out) {
  Matrix g = grad_out;
  for (std::size_t li = layers_.size(); li-- > 0;) {
    g = layers_[li].backward(g);
    if (li > 0) {
      const Matrix& mask = relu_masks_[li - 1];
      for (std::size_t i = 0; i < g.size(); ++i) g.data()[i] *= mask.data()[i];
    }
  }
  return g;
}

void MlpNet::zero_grad() {
  for (auto& l : layers_) l.zero_grad();
}

void MlpNet::adam_step(float lr) {
  for (auto& l : layers_) l.adam_step(lr);
}

std::size_t MlpNet::param_count() const {
  std::size_t n = 0;
  for (const auto& l : layers_) n += l.param_count();
  return n;
}

float softmax_cross_entropy(Matrix& logits, const std::vector<int>& labels,
                            Matrix& grad) {
  softmax_rows(logits);
  std::size_t n = logits.rows();
  grad = logits;
  float loss = 0;
  float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    int y = labels[i];
    float p = std::max(logits(i, static_cast<std::size_t>(y)), 1e-12f);
    loss -= std::log(p);
    grad(i, static_cast<std::size_t>(y)) -= 1.0f;
  }
  for (auto& g : grad.data()) g *= inv_n;
  return loss * inv_n;
}

float mse_loss(const Matrix& pred, const Matrix& target, Matrix& grad) {
  grad = Matrix(pred.rows(), pred.cols());
  float loss = 0;
  float inv = 1.0f / static_cast<float>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    float d = pred.data()[i] - target.data()[i];
    loss += d * d;
    grad.data()[i] = 2.0f * d * inv;
  }
  return loss * inv;
}

}  // namespace sugar::ml
