// Minimal dense linear algebra for the from-scratch ML stack: row-major
// float matrices with the handful of operations the classifiers and
// encoders need. No BLAS dependency; the GEMM kernels are cache-blocked
// (row-partitioned ikj with k-panel tiling) and run on the shared
// core::ThreadPool (SUGAR_THREADS), with a fixed block structure so results
// are bit-identical at any thread count.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace sugar::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  float& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// Copies selected rows into a new matrix.
  [[nodiscard]] Matrix take_rows(const std::vector<std::size_t>& idx) const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<float> data_;
};

/// C = A * B. Shapes: [n×k] · [k×m] -> [n×m].
Matrix matmul(const Matrix& a, const Matrix& b);
/// C = A^T * B. Shapes: [k×n]^T · [k×m] -> [n×m].
Matrix matmul_tn(const Matrix& a, const Matrix& b);
/// C = A * B^T. Shapes: [n×k] · [m×k]^T -> [n×m].
Matrix matmul_nt(const Matrix& a, const Matrix& b);

/// Adds a bias row vector to every row in place.
void add_row_vector(Matrix& m, const std::vector<float>& bias);

/// ReLU in place; returns a 0/1 mask matrix for the backward pass.
Matrix relu_inplace(Matrix& m);

/// Row-wise softmax in place (numerically stabilized).
void softmax_rows(Matrix& m);

/// Squared L2 distance between two float vectors of equal length.
float squared_distance(const float* a, const float* b, std::size_t n);

}  // namespace sugar::ml
