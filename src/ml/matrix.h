// Minimal dense linear algebra for the from-scratch ML stack: row-major
// float matrices with the handful of operations the classifiers and
// encoders need. No BLAS dependency; the GEMM kernels are cache-blocked
// (row-partitioned ikj with k-panel tiling), vectorized along the output
// column with core::simd's 8-lane f32x8, and run on the shared
// core::ThreadPool (SUGAR_THREADS), with a fixed block structure so
// results are bit-identical at any thread count and any SIMD backend.
//
// Storage is 64-byte aligned (cache line / AVX-512 friendly) via a
// drop-in allocator; the buffer type is still a std::vector
// specialization, so iteration and pointer access are unchanged.
//
// The `_into` variants write into caller-owned matrices, reshaping
// without ever shrinking capacity — the nn training loops run on a
// MatrixArena of such buffers and perform zero heap allocations after
// the first batch of each shape.
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <vector>

namespace sugar::ml {

/// Minimal C++17 aligned allocator: Matrix rows start on 64-byte
/// boundaries so unaligned SIMD loads never split a cache line.
template <typename T, std::size_t Align = 64>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Align));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };
  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

using FloatBuffer = std::vector<float, AlignedAllocator<float>>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t capacity() const { return data_.capacity(); }

  float& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }

  FloatBuffer& data() { return data_; }
  const FloatBuffer& data() const { return data_; }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// Re-shapes to [rows×cols] without ever shrinking capacity; newly
  /// exposed elements are zero, surviving ones keep their (now
  /// meaningless) values — callers overwrite. The scratch-reuse primitive
  /// behind MatrixArena and every `_into` kernel.
  void reshape(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// Becomes an element-wise copy of `o`, reusing existing capacity.
  void copy_from(const Matrix& o);

  /// Copies selected rows into a new matrix.
  [[nodiscard]] Matrix take_rows(const std::vector<std::size_t>& idx) const;
  /// Same, into a reused buffer (no allocation once `out` has capacity).
  void take_rows_into(const std::vector<std::size_t>& idx, Matrix& out) const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  FloatBuffer data_;
};

/// C = A * B. Shapes: [n×k] · [k×m] -> [n×m].
Matrix matmul(const Matrix& a, const Matrix& b);
void matmul_into(const Matrix& a, const Matrix& b, Matrix& c);
/// C = A^T * B. Shapes: [k×n]^T · [k×m] -> [n×m].
Matrix matmul_tn(const Matrix& a, const Matrix& b);
/// C += A^T * B with C already shaped [n×m] — the weight-gradient
/// accumulation kernel (no scratch matrix, adds straight into the grad).
void matmul_tn_acc(const Matrix& a, const Matrix& b, Matrix& c);
/// C = A * B^T. Shapes: [n×k] · [m×k]^T -> [n×m].
Matrix matmul_nt(const Matrix& a, const Matrix& b);
void matmul_nt_into(const Matrix& a, const Matrix& b, Matrix& c);

/// Adds a bias row vector to every row in place.
void add_row_vector(Matrix& m, const std::vector<float>& bias);

/// ReLU in place; returns a 0/1 mask matrix for the backward pass.
Matrix relu_inplace(Matrix& m);
/// ReLU in place, mask written into a reused buffer.
void relu_inplace_into(Matrix& m, Matrix& mask);
/// ReLU in place without producing a mask (inference path).
void relu_inplace_nomask(Matrix& m);

/// m *= o element-wise (the ReLU-mask backward gate).
void hadamard_inplace(Matrix& m, const Matrix& o);

/// Row-wise softmax in place (numerically stabilized). Row max and sum use
/// the strided-8 reduction order from core/simd.h.
void softmax_rows(Matrix& m);

/// Squared L2 distance between two float vectors of equal length, in the
/// strided-8 reduction order from core/simd.h.
float squared_distance(const float* a, const float* b, std::size_t n);

}  // namespace sugar::ml
