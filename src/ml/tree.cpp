#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

#include "core/simd.h"

namespace sugar::ml {
namespace {

/// Per-feature histogram cut points computed from (a sample of) the data.
std::vector<std::vector<float>> compute_cuts(const Matrix& x,
                                             const std::vector<std::uint32_t>& rows,
                                             int bins, std::mt19937_64& rng) {
  std::size_t d = x.cols();
  std::vector<std::vector<float>> cuts(d);
  // Sample rows to bound quantile cost.
  std::vector<std::uint32_t> sample = rows;
  constexpr std::size_t kMaxSample = 4096;
  if (sample.size() > kMaxSample) {
    std::shuffle(sample.begin(), sample.end(), rng);
    sample.resize(kMaxSample);
  }
  std::vector<float> vals(sample.size());
  for (std::size_t f = 0; f < d; ++f) {
    for (std::size_t i = 0; i < sample.size(); ++i) vals[i] = x(sample[i], f);
    std::sort(vals.begin(), vals.end());
    auto& c = cuts[f];
    for (int b = 1; b < bins; ++b) {
      std::size_t pos = vals.size() * static_cast<std::size_t>(b) /
                        static_cast<std::size_t>(bins);
      float v = vals[std::min(pos, vals.size() - 1)];
      if (c.empty() || v > c.back()) c.push_back(v);
    }
  }
  return cuts;
}

int bin_of(const std::vector<float>& cuts, float v) {
  return static_cast<int>(std::upper_bound(cuts.begin(), cuts.end(), v) -
                          cuts.begin());
}

double gini_from_counts(const std::vector<double>& counts, double total) {
  if (total <= 0) return 0;
  // Strided-8 sum-of-squares (core/simd.h spec): same result on every
  // build, unrolled for the wide-class-count datasets.
  double s = core::simd::sum_squares_f64(counts.data(), counts.size());
  return 1.0 - s / (total * total);
}

}  // namespace

struct DecisionTree::BuildContext {
  const Matrix* x = nullptr;
  // Classification:
  const std::vector<int>* y = nullptr;
  int num_classes = 0;
  // Regression:
  const std::vector<float>* grad = nullptr;
  const std::vector<float>* hess = nullptr;

  TreeConfig cfg;
  std::mt19937_64* rng = nullptr;
  std::vector<std::uint32_t> rows;  // working index buffer (partitioned in place)
  std::vector<std::vector<float>> cuts;

  [[nodiscard]] bool regression() const { return grad != nullptr; }
};

namespace {

struct SplitResult {
  int feature = -1;
  float threshold = 0;
  double gain = 0;
  std::size_t left_count = 0;
};

struct PendingNode {
  int node_index;
  std::size_t begin, end;  // range in ctx.rows
  int depth;
  double gain_bound;  // for leaf-wise priority
};

}  // namespace

void DecisionTree::build(BuildContext& ctx) {
  nodes_.clear();
  importance_.assign(ctx.x->cols(), 0.0);
  const TreeConfig& cfg = ctx.cfg;
  std::size_t d = ctx.x->cols();

  // Candidate feature list (subsampled per split).
  std::vector<std::size_t> all_features(d);
  std::iota(all_features.begin(), all_features.end(), 0);
  std::size_t feats_per_split =
      cfg.features_per_split > 0
          ? std::min<std::size_t>(static_cast<std::size_t>(cfg.features_per_split), d)
          : d;

  // Scratch histograms.
  int bins = cfg.histogram_bins;
  std::vector<double> cls_counts;  // [bins+1][classes] classification
  std::vector<double> bin_g, bin_h;
  std::vector<std::size_t> bin_n;

  auto make_leaf = [&](Node& node, std::size_t begin, std::size_t end) {
    if (ctx.regression()) {
      double g = 0, h = 0;
      for (std::size_t i = begin; i < end; ++i) {
        g += (*ctx.grad)[ctx.rows[i]];
        h += (*ctx.hess)[ctx.rows[i]];
      }
      node.value = static_cast<float>(-g / (h + cfg.lambda));
    } else {
      std::vector<std::size_t> counts(static_cast<std::size_t>(ctx.num_classes), 0);
      for (std::size_t i = begin; i < end; ++i)
        ++counts[static_cast<std::size_t>((*ctx.y)[ctx.rows[i]])];
      node.cls = static_cast<int>(
          std::max_element(counts.begin(), counts.end()) - counts.begin());
    }
    node.feature = -1;
  };

  auto find_split = [&](std::size_t begin, std::size_t end) -> SplitResult {
    SplitResult best;
    std::size_t n = end - begin;
    if (n < 2 * cfg.min_samples_leaf) return best;

    // Feature subset for this split.
    std::vector<std::size_t> feats = all_features;
    if (feats_per_split < d) {
      std::shuffle(feats.begin(), feats.end(), *ctx.rng);
      feats.resize(feats_per_split);
    }

    // Parent statistics.
    double parent_impurity = 0;
    double total_g = 0, total_h = 0;
    std::vector<double> parent_counts;
    if (ctx.regression()) {
      for (std::size_t i = begin; i < end; ++i) {
        total_g += (*ctx.grad)[ctx.rows[i]];
        total_h += (*ctx.hess)[ctx.rows[i]];
      }
    } else {
      parent_counts.assign(static_cast<std::size_t>(ctx.num_classes), 0.0);
      for (std::size_t i = begin; i < end; ++i)
        parent_counts[static_cast<std::size_t>((*ctx.y)[ctx.rows[i]])] += 1.0;
      parent_impurity = gini_from_counts(parent_counts, static_cast<double>(n));
      if (parent_impurity <= 0) return best;  // pure node
    }

    // Exact split search for small nodes: sort samples per feature and
    // sweep all boundaries between distinct values.
    if (n <= cfg.exact_split_max) {
      std::vector<std::uint32_t> sorted(ctx.rows.begin() + static_cast<std::ptrdiff_t>(begin),
                                        ctx.rows.begin() + static_cast<std::ptrdiff_t>(end));
      for (std::size_t f : feats) {
        std::sort(sorted.begin(), sorted.end(), [&](std::uint32_t a, std::uint32_t b) {
          return (*ctx.x)(a, f) < (*ctx.x)(b, f);
        });
        if (ctx.regression()) {
          double gl = 0, hl = 0;
          double parent_score = total_g * total_g / (total_h + cfg.lambda);
          for (std::size_t i = 0; i + 1 < n; ++i) {
            std::uint32_t r = sorted[i];
            gl += (*ctx.grad)[r];
            hl += (*ctx.hess)[r];
            float v = (*ctx.x)(r, f);
            float vn = (*ctx.x)(sorted[i + 1], f);
            if (v == vn) continue;  // not a boundary
            std::size_t nl = i + 1;
            if (nl < cfg.min_samples_leaf || n - nl < cfg.min_samples_leaf) continue;
            double gr = total_g - gl, hr = total_h - hl;
            double gain = gl * gl / (hl + cfg.lambda) + gr * gr / (hr + cfg.lambda) -
                          parent_score;
            if (gain > best.gain)
              best = {.feature = static_cast<int>(f),
                      .threshold = 0.5f * (v + vn),
                      .gain = gain,
                      .left_count = nl};
          }
        } else {
          std::vector<double> left(static_cast<std::size_t>(ctx.num_classes), 0.0);
          double sum_sq_l = 0;
          double sum_sq_r = 0;
          for (double c : parent_counts) sum_sq_r += c * c;
          for (std::size_t i = 0; i + 1 < n; ++i) {
            std::uint32_t r = sorted[i];
            auto y = static_cast<std::size_t>((*ctx.y)[r]);
            // Incremental sum-of-squares update when one sample of class y
            // moves from the right partition to the left.
            double rc = parent_counts[y] - left[y];
            sum_sq_r += -2.0 * rc + 1.0;
            sum_sq_l += 2.0 * left[y] + 1.0;
            left[y] += 1.0;
            float v = (*ctx.x)(r, f);
            float vn = (*ctx.x)(sorted[i + 1], f);
            if (v == vn) continue;
            double nl = static_cast<double>(i + 1);
            double nr = static_cast<double>(n) - nl;
            if (nl < static_cast<double>(cfg.min_samples_leaf) ||
                nr < static_cast<double>(cfg.min_samples_leaf))
              continue;
            double imp_l = 1.0 - sum_sq_l / (nl * nl);
            double imp_r = 1.0 - sum_sq_r / (nr * nr);
            double child = (nl * imp_l + nr * imp_r) / static_cast<double>(n);
            double gain = (parent_impurity - child) * static_cast<double>(n);
            if (gain > best.gain)
              best = {.feature = static_cast<int>(f),
                      .threshold = 0.5f * (v + vn),
                      .gain = gain,
                      .left_count = static_cast<std::size_t>(nl)};
          }
        }
      }
      if (best.gain < cfg.min_gain) best.feature = -1;
      return best;
    }

    for (std::size_t f : feats) {
      const auto& cuts = ctx.cuts[f];
      if (cuts.empty()) continue;
      int nb = static_cast<int>(cuts.size()) + 1;

      if (ctx.regression()) {
        bin_g.assign(static_cast<std::size_t>(nb), 0.0);
        bin_h.assign(static_cast<std::size_t>(nb), 0.0);
        bin_n.assign(static_cast<std::size_t>(nb), 0);
        for (std::size_t i = begin; i < end; ++i) {
          std::uint32_t r = ctx.rows[i];
          int b = bin_of(cuts, (*ctx.x)(r, f));
          bin_g[static_cast<std::size_t>(b)] += (*ctx.grad)[r];
          bin_h[static_cast<std::size_t>(b)] += (*ctx.hess)[r];
          ++bin_n[static_cast<std::size_t>(b)];
        }
        double gl = 0, hl = 0;
        std::size_t nl = 0;
        double parent_score = total_g * total_g / (total_h + cfg.lambda);
        for (int b = 0; b + 1 < nb; ++b) {
          gl += bin_g[static_cast<std::size_t>(b)];
          hl += bin_h[static_cast<std::size_t>(b)];
          nl += bin_n[static_cast<std::size_t>(b)];
          if (nl < cfg.min_samples_leaf || n - nl < cfg.min_samples_leaf) continue;
          double gr = total_g - gl, hr = total_h - hl;
          double gain = gl * gl / (hl + cfg.lambda) + gr * gr / (hr + cfg.lambda) -
                        parent_score;
          if (gain > best.gain) {
            best = {.feature = static_cast<int>(f),
                    .threshold = cuts[static_cast<std::size_t>(b)],
                    .gain = gain,
                    .left_count = nl};
          }
        }
      } else {
        std::size_t k = static_cast<std::size_t>(ctx.num_classes);
        cls_counts.assign(static_cast<std::size_t>(nb) * k, 0.0);
        for (std::size_t i = begin; i < end; ++i) {
          std::uint32_t r = ctx.rows[i];
          int b = bin_of(cuts, (*ctx.x)(r, f));
          cls_counts[static_cast<std::size_t>(b) * k +
                     static_cast<std::size_t>((*ctx.y)[r])] += 1.0;
        }
        std::vector<double> left(k, 0.0);
        double nl = 0;
        for (int b = 0; b + 1 < nb; ++b) {
          const double* bc = &cls_counts[static_cast<std::size_t>(b) * k];
          for (std::size_t c = 0; c < k; ++c) {
            left[c] += bc[c];
            nl += bc[c];
          }
          double nr = static_cast<double>(n) - nl;
          if (nl < static_cast<double>(cfg.min_samples_leaf) ||
              nr < static_cast<double>(cfg.min_samples_leaf))
            continue;
          double gini_l = 0, sum_sq_l = 0, sum_sq_r = 0;
          (void)gini_l;
          for (std::size_t c = 0; c < k; ++c) {
            sum_sq_l += left[c] * left[c];
            double rc = parent_counts[c] - left[c];
            sum_sq_r += rc * rc;
          }
          double imp_l = 1.0 - sum_sq_l / (nl * nl);
          double imp_r = 1.0 - sum_sq_r / (nr * nr);
          double child =
              (nl * imp_l + nr * imp_r) / static_cast<double>(n);
          double gain = (parent_impurity - child) * static_cast<double>(n);
          if (gain > best.gain) {
            best = {.feature = static_cast<int>(f),
                    .threshold = cuts[static_cast<std::size_t>(b)],
                    .gain = gain,
                    .left_count = static_cast<std::size_t>(nl)};
          }
        }
      }
    }
    if (best.gain < cfg.min_gain) best.feature = -1;
    return best;
  };

  auto partition = [&](std::size_t begin, std::size_t end, int feature,
                       float threshold) -> std::size_t {
    auto mid = std::partition(
        ctx.rows.begin() + static_cast<std::ptrdiff_t>(begin),
        ctx.rows.begin() + static_cast<std::ptrdiff_t>(end),
        [&](std::uint32_t r) {
          // Strict '<' matches the histogram convention: bin b holds values
          // in [cuts[b-1], cuts[b]), so a split after bin b sends v <
          // cuts[b] to the left child.
          return (*ctx.x)(r, static_cast<std::size_t>(feature)) < threshold;
        });
    return static_cast<std::size_t>(mid - ctx.rows.begin());
  };

  // Root.
  nodes_.emplace_back();

  if (cfg.max_leaves > 0) {
    // Leaf-wise best-first growth (LightGBM style).
    struct Cand {
      double gain;
      int node_index;
      std::size_t begin, end;
      int depth;
      SplitResult split;
      bool operator<(const Cand& o) const { return gain < o.gain; }
    };
    std::priority_queue<Cand> heap;
    auto push_candidate = [&](int node_index, std::size_t begin, std::size_t end,
                              int depth) {
      make_leaf(nodes_[static_cast<std::size_t>(node_index)], begin, end);
      if (depth >= cfg.max_depth) return;
      SplitResult s = find_split(begin, end);
      if (s.feature >= 0)
        heap.push({s.gain, node_index, begin, end, depth, s});
    };
    push_candidate(0, 0, ctx.rows.size(), 0);
    int leaves = 1;
    while (!heap.empty() && leaves < cfg.max_leaves) {
      Cand c = heap.top();
      heap.pop();
      std::size_t mid = partition(c.begin, c.end, c.split.feature, c.split.threshold);
      if (mid == c.begin || mid == c.end) continue;  // degenerate
      // Re-index after every emplace_back: the vector may reallocate.
      int left = static_cast<int>(nodes_.size());
      nodes_.emplace_back();
      int right = static_cast<int>(nodes_.size());
      nodes_.emplace_back();
      Node& node = nodes_[static_cast<std::size_t>(c.node_index)];
      node.feature = c.split.feature;
      node.threshold = c.split.threshold;
      node.left = left;
      node.right = right;
      importance_[static_cast<std::size_t>(c.split.feature)] += c.split.gain;
      push_candidate(left, c.begin, mid, c.depth + 1);
      push_candidate(right, mid, c.end, c.depth + 1);
      ++leaves;
    }
  } else {
    // Depth-wise recursion via an explicit stack.
    std::vector<PendingNode> stack;
    stack.push_back({0, 0, ctx.rows.size(), 0, 0});
    while (!stack.empty()) {
      PendingNode p = stack.back();
      stack.pop_back();
      make_leaf(nodes_[static_cast<std::size_t>(p.node_index)], p.begin, p.end);
      if (p.depth >= cfg.max_depth) continue;
      SplitResult s = find_split(p.begin, p.end);
      if (s.feature < 0) continue;
      std::size_t mid = partition(p.begin, p.end, s.feature, s.threshold);
      if (mid == p.begin || mid == p.end) continue;
      // Append children first: emplace_back may reallocate nodes_.
      int left = static_cast<int>(nodes_.size());
      nodes_.emplace_back();
      int right = static_cast<int>(nodes_.size());
      nodes_.emplace_back();
      Node& node = nodes_[static_cast<std::size_t>(p.node_index)];
      node.feature = s.feature;
      node.threshold = s.threshold;
      node.left = left;
      node.right = right;
      importance_[static_cast<std::size_t>(s.feature)] += s.gain;
      stack.push_back({left, p.begin, mid, p.depth + 1, 0});
      stack.push_back({right, mid, p.end, p.depth + 1, 0});
    }
  }
}

void DecisionTree::fit_classifier(const Matrix& x, const std::vector<int>& y,
                                  int num_classes, const TreeConfig& cfg,
                                  std::mt19937_64& rng,
                                  const std::vector<std::uint32_t>* subset) {
  BuildContext ctx;
  ctx.x = &x;
  ctx.y = &y;
  ctx.num_classes = num_classes;
  ctx.cfg = cfg;
  ctx.rng = &rng;
  if (subset) {
    ctx.rows = *subset;
  } else {
    ctx.rows.resize(x.rows());
    std::iota(ctx.rows.begin(), ctx.rows.end(), 0);
  }
  ctx.cuts = compute_cuts(x, ctx.rows, cfg.histogram_bins, rng);
  build(ctx);
}

void DecisionTree::fit_regression(const Matrix& x, const std::vector<float>& grad,
                                  const std::vector<float>& hess,
                                  const TreeConfig& cfg, std::mt19937_64& rng,
                                  const std::vector<std::uint32_t>* subset) {
  BuildContext ctx;
  ctx.x = &x;
  ctx.grad = &grad;
  ctx.hess = &hess;
  ctx.cfg = cfg;
  ctx.rng = &rng;
  if (subset) {
    ctx.rows = *subset;
  } else {
    ctx.rows.resize(x.rows());
    std::iota(ctx.rows.begin(), ctx.rows.end(), 0);
  }
  ctx.cuts = compute_cuts(x, ctx.rows, cfg.histogram_bins, rng);
  build(ctx);
}

int DecisionTree::leaf_index(const float* row) const {
  int i = 0;
  while (nodes_[static_cast<std::size_t>(i)].feature >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(i)];
    i = row[n.feature] < n.threshold ? n.left : n.right;
  }
  return i;
}

int DecisionTree::predict_class(const float* row) const {
  return nodes_[static_cast<std::size_t>(leaf_index(row))].cls;
}

float DecisionTree::predict_value(const float* row) const {
  return nodes_[static_cast<std::size_t>(leaf_index(row))].value;
}

int DecisionTree::depth() const {
  // Iterative depth computation over the node array.
  if (nodes_.empty()) return 0;
  std::vector<std::pair<int, int>> stack{{0, 1}};
  int best = 0;
  while (!stack.empty()) {
    auto [i, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    const Node& n = nodes_[static_cast<std::size_t>(i)];
    if (n.feature >= 0) {
      stack.push_back({n.left, d + 1});
      stack.push_back({n.right, d + 1});
    }
  }
  return best;
}

}  // namespace sugar::ml
