#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <numeric>
#include <queue>
#include <unordered_map>

#include "core/simd.h"
#include "core/threadpool.h"
#include "ml/binned.h"

namespace sugar::ml {
namespace {

/// Per-feature histogram cut points computed from (a sample of) the data.
/// Legacy per-tree path only — forest/GBDT fits share a BinnedMatrix and
/// never call this.
std::vector<std::vector<float>> compute_cuts(const Matrix& x,
                                             const std::vector<std::uint32_t>& rows,
                                             int bins, std::mt19937_64& rng) {
  std::size_t d = x.cols();
  std::vector<std::vector<float>> cuts(d);
  // Sample rows to bound quantile cost. std::sample draws kMaxSample
  // indices in one O(n) pass — no copy + full shuffle of the row vector.
  constexpr std::size_t kMaxSample = 4096;
  std::vector<std::uint32_t> sample;
  if (rows.size() > kMaxSample) {
    sample.reserve(kMaxSample);
    std::sample(rows.begin(), rows.end(), std::back_inserter(sample), kMaxSample,
                rng);
  } else {
    sample = rows;
  }
  std::vector<float> vals(sample.size());
  for (std::size_t f = 0; f < d; ++f) {
    for (std::size_t i = 0; i < sample.size(); ++i) vals[i] = x(sample[i], f);
    std::sort(vals.begin(), vals.end());
    auto& c = cuts[f];
    for (int b = 1; b < bins; ++b) {
      std::size_t pos = vals.size() * static_cast<std::size_t>(b) /
                        static_cast<std::size_t>(bins);
      float v = vals[std::min(pos, vals.size() - 1)];
      if (c.empty() || v > c.back()) c.push_back(v);
    }
  }
  return cuts;
}

double gini_from_counts(const std::vector<double>& counts, double total) {
  if (total <= 0) return 0;
  // Strided-8 sum-of-squares (core/simd.h spec): same result on every
  // build, unrolled for the wide-class-count datasets.
  double s = core::simd::sum_squares_f64(counts.data(), counts.size());
  return 1.0 - s / (total * total);
}

/// Flat 64-byte-aligned histogram storage (class counts or g/h/count
/// triples per bin).
using F64Buffer = std::vector<double, AlignedAllocator<double>>;

}  // namespace

struct DecisionTree::BuildContext {
  const Matrix* x = nullptr;
  // Classification:
  const std::vector<int>* y = nullptr;
  int num_classes = 0;
  // Regression:
  const std::vector<float>* grad = nullptr;
  const std::vector<float>* hess = nullptr;

  TreeConfig cfg;
  std::mt19937_64* rng = nullptr;
  std::vector<std::uint32_t> rows;  // working index buffer (partitioned in place)
  std::vector<std::vector<float>> cuts;  // legacy path only (src == nullptr)
  /// Quantize-once codes shared per fit: a resident BinnedMatrix for the
  /// in-memory fits, or any BinnedColumnSource (paged store) for the
  /// out-of-core fits. When `x` is null every split must come from the
  /// histogram sweep and partitioning runs on codes.
  const BinnedColumnSource* src = nullptr;

  [[nodiscard]] bool regression() const { return grad != nullptr; }
};

namespace {

struct SplitResult {
  int feature = -1;
  float threshold = 0;
  double gain = 0;
  std::size_t left_count = 0;
  int bin = -1;  // histogram splits: threshold == cuts[bin]; exact: -1
};

struct PendingNode {
  int node_index;
  std::size_t begin, end;  // range in ctx.rows
  int depth;
  double gain_bound;  // for leaf-wise priority
};

}  // namespace

void DecisionTree::build(BuildContext& ctx) {
  nodes_.clear();
  const TreeConfig& cfg = ctx.cfg;
  std::size_t d = ctx.src ? ctx.src->cols() : ctx.x->cols();
  importance_.assign(d, 0.0);

  // Candidate feature list (subsampled per split).
  std::vector<std::size_t> all_features(d);
  std::iota(all_features.begin(), all_features.end(), 0);
  std::size_t feats_per_split =
      cfg.features_per_split > 0
          ? std::min<std::size_t>(static_cast<std::size_t>(cfg.features_per_split), d)
          : d;

  // Histogram geometry. With a BinnedMatrix every feature slot has a
  // uniform stride (`slot` doubles) so whole-tree buffers stay flat:
  //   classification: hist[(s*bins + code)*k + class]  counts
  //   regression:     hist[(s*bins + code)*3 + {0,1,2}] = {g, h, count}
  const BinnedColumnSource* bm = ctx.src;
  const std::size_t k = static_cast<std::size_t>(std::max(ctx.num_classes, 1));
  const std::size_t slot_vals = ctx.regression() ? 3 : k;
  const std::size_t slot =
      bm ? static_cast<std::size_t>(bm->bins()) * slot_vals : 0;
  // Sibling subtraction needs parent and children to share the same feature
  // set, so it only pays when every split considers all features (GBDT).
  // Feature-sampled fits (forest) accumulate just the sampled slots per
  // node instead, which is cheaper than d-wide histograms they'd mostly
  // never sweep.
  const bool subtract_mode =
      bm != nullptr && cfg.hist_subtraction && feats_per_split >= d;

  // Cached all-feature histograms by node index (subtract mode), plus a
  // free list so buffers recycle instead of reallocating per node.
  std::unordered_map<int, F64Buffer> node_hist;
  std::vector<F64Buffer> hist_pool;
  auto acquire_hist = [&](std::size_t size) -> F64Buffer {
    F64Buffer b;
    if (!hist_pool.empty()) {
      b = std::move(hist_pool.back());
      hist_pool.pop_back();
    }
    b.assign(size, 0.0);
    return b;
  };
  auto release_hist = [&](F64Buffer&& b) { hist_pool.push_back(std::move(b)); };

  // Scratch.
  F64Buffer legacy_hist;   // legacy bin_of path, one feature at a time
  F64Buffer sampled_hist;  // binned path without subtraction (sampled feats)
  std::vector<double> left_counts;
  std::vector<std::uint32_t> part_scratch;  // stable code-partition right side

  // Accumulates [begin, end) of ctx.rows into per-feature histogram slots.
  // One feature per pool block (grain 1): each slot is written by exactly
  // one worker, sequentially in row order, so the result is bit-identical
  // at any SUGAR_THREADS (stronger than the block-ordered reduction
  // contract — writes are disjoint). Re-entrant dispatch (inside the
  // forest's per-tree parallel_for) degrades to inline serial.
  auto accumulate_binned = [&](std::size_t begin, std::size_t end,
                               const std::vector<std::size_t>& feats, double* h) {
    core::global_pool().parallel_for(
        0, feats.size(), 1, [&](std::size_t s0, std::size_t s1) {
          for (std::size_t s = s0; s < s1; ++s) {
            CodeCursor code(*bm, feats[s]);
            double* hf = h + s * slot;
            if (ctx.regression()) {
              const float* gv = ctx.grad->data();
              const float* hv = ctx.hess->data();
              for (std::size_t i = begin; i < end; ++i) {
                const std::uint32_t r = ctx.rows[i];
                double* cell = hf + 3u * code.at(r);
                cell[0] += gv[r];
                cell[1] += hv[r];
                cell[2] += 1.0;
              }
            } else {
              const int* yv = ctx.y->data();
              for (std::size_t i = begin; i < end; ++i) {
                const std::uint32_t r = ctx.rows[i];
                hf[static_cast<std::size_t>(code.at(r)) * k +
                   static_cast<std::size_t>(yv[r])] += 1.0;
              }
            }
          }
        });
  };

  auto make_leaf = [&](Node& node, std::size_t begin, std::size_t end) {
    if (ctx.regression()) {
      double g = 0, h = 0;
      for (std::size_t i = begin; i < end; ++i) {
        g += (*ctx.grad)[ctx.rows[i]];
        h += (*ctx.hess)[ctx.rows[i]];
      }
      node.value = static_cast<float>(-g / (h + cfg.lambda));
    } else {
      std::vector<std::size_t> counts(static_cast<std::size_t>(ctx.num_classes), 0);
      for (std::size_t i = begin; i < end; ++i)
        ++counts[static_cast<std::size_t>((*ctx.y)[ctx.rows[i]])];
      node.cls = static_cast<int>(
          std::max_element(counts.begin(), counts.end()) - counts.begin());
    }
    node.feature = -1;
  };

  auto find_split = [&](int node_index, std::size_t begin,
                        std::size_t end) -> SplitResult {
    SplitResult best;
    std::size_t n = end - begin;
    if (n < 2 * cfg.min_samples_leaf) return best;

    // Feature subset for this split.
    std::vector<std::size_t> feats = all_features;
    if (feats_per_split < d) {
      std::shuffle(feats.begin(), feats.end(), *ctx.rng);
      feats.resize(feats_per_split);
    }

    // Parent statistics.
    double parent_impurity = 0;
    double parent_sum_sq = 0;
    double total_g = 0, total_h = 0;
    std::vector<double> parent_counts;
    if (ctx.regression()) {
      for (std::size_t i = begin; i < end; ++i) {
        total_g += (*ctx.grad)[ctx.rows[i]];
        total_h += (*ctx.hess)[ctx.rows[i]];
      }
    } else {
      parent_counts.assign(static_cast<std::size_t>(ctx.num_classes), 0.0);
      for (std::size_t i = begin; i < end; ++i)
        parent_counts[static_cast<std::size_t>((*ctx.y)[ctx.rows[i]])] += 1.0;
      parent_impurity = gini_from_counts(parent_counts, static_cast<double>(n));
      if (parent_impurity <= 0) return best;  // pure node
      for (double c : parent_counts) parent_sum_sq += c * c;
    }

    // Exact split search for small nodes: sort samples per feature and
    // sweep all boundaries between distinct values. Needs the raw floats,
    // so out-of-core fits (no ctx.x; exact_split_max forced to 0) never
    // take it.
    if (ctx.x && n <= cfg.exact_split_max) {
      std::vector<std::uint32_t> sorted(ctx.rows.begin() + static_cast<std::ptrdiff_t>(begin),
                                        ctx.rows.begin() + static_cast<std::ptrdiff_t>(end));
      for (std::size_t f : feats) {
        std::sort(sorted.begin(), sorted.end(), [&](std::uint32_t a, std::uint32_t b) {
          return (*ctx.x)(a, f) < (*ctx.x)(b, f);
        });
        if (ctx.regression()) {
          double gl = 0, hl = 0;
          double parent_score = total_g * total_g / (total_h + cfg.lambda);
          for (std::size_t i = 0; i + 1 < n; ++i) {
            std::uint32_t r = sorted[i];
            gl += (*ctx.grad)[r];
            hl += (*ctx.hess)[r];
            float v = (*ctx.x)(r, f);
            float vn = (*ctx.x)(sorted[i + 1], f);
            if (v == vn) continue;  // not a boundary
            std::size_t nl = i + 1;
            if (nl < cfg.min_samples_leaf || n - nl < cfg.min_samples_leaf) continue;
            double gr = total_g - gl, hr = total_h - hl;
            double gain = gl * gl / (hl + cfg.lambda) + gr * gr / (hr + cfg.lambda) -
                          parent_score;
            if (gain > best.gain)
              best = {.feature = static_cast<int>(f),
                      .threshold = 0.5f * (v + vn),
                      .gain = gain,
                      .left_count = nl};
          }
        } else {
          std::vector<double> left(static_cast<std::size_t>(ctx.num_classes), 0.0);
          double sum_sq_l = 0;
          double sum_sq_r = parent_sum_sq;
          for (std::size_t i = 0; i + 1 < n; ++i) {
            std::uint32_t r = sorted[i];
            auto y = static_cast<std::size_t>((*ctx.y)[r]);
            // Incremental sum-of-squares update when one sample of class y
            // moves from the right partition to the left.
            double rc = parent_counts[y] - left[y];
            sum_sq_r += -2.0 * rc + 1.0;
            sum_sq_l += 2.0 * left[y] + 1.0;
            left[y] += 1.0;
            float v = (*ctx.x)(r, f);
            float vn = (*ctx.x)(sorted[i + 1], f);
            if (v == vn) continue;
            double nl = static_cast<double>(i + 1);
            double nr = static_cast<double>(n) - nl;
            if (nl < static_cast<double>(cfg.min_samples_leaf) ||
                nr < static_cast<double>(cfg.min_samples_leaf))
              continue;
            double imp_l = 1.0 - sum_sq_l / (nl * nl);
            double imp_r = 1.0 - sum_sq_r / (nr * nr);
            double child = (nl * imp_l + nr * imp_r) / static_cast<double>(n);
            double gain = (parent_impurity - child) * static_cast<double>(n);
            if (gain > best.gain)
              best = {.feature = static_cast<int>(f),
                      .threshold = 0.5f * (v + vn),
                      .gain = gain,
                      .left_count = static_cast<std::size_t>(nl)};
          }
        }
      }
      if (best.gain < cfg.min_gain) best.feature = -1;
      return best;
    }

    // Histogram sweeps shared by all three large-node sources (whole-tree
    // subtract-mode buffer, per-node sampled buffer, legacy per-feature
    // buffer): `hist` holds `cuts.size()+1` bins of class counts or
    // {g, h, count} triples; splitting after bin b uses threshold cuts[b].
    auto sweep_class = [&](const double* hist, const std::vector<float>& cuts,
                           std::size_t f) {
      int nb = static_cast<int>(cuts.size()) + 1;
      left_counts.assign(k, 0.0);
      double nl = 0;
      double sum_sq_l = 0, sum_sq_r = parent_sum_sq;
      for (int b = 0; b + 1 < nb; ++b) {
        const double* bc = hist + static_cast<std::size_t>(b) * k;
        for (std::size_t c = 0; c < k; ++c) {
          const double m = bc[c];
          if (m == 0.0) continue;
          // Incremental sum-of-squares update when m samples of class c
          // move from the right partition to the left (O(1) per class,
          // not O(k) recomputation per bin).
          sum_sq_l += (2.0 * left_counts[c] + m) * m;
          sum_sq_r += (m - 2.0 * (parent_counts[c] - left_counts[c])) * m;
          left_counts[c] += m;
          nl += m;
        }
        double nr = static_cast<double>(n) - nl;
        if (nl < static_cast<double>(cfg.min_samples_leaf) ||
            nr < static_cast<double>(cfg.min_samples_leaf))
          continue;
        double imp_l = 1.0 - sum_sq_l / (nl * nl);
        double imp_r = 1.0 - sum_sq_r / (nr * nr);
        double child = (nl * imp_l + nr * imp_r) / static_cast<double>(n);
        double gain = (parent_impurity - child) * static_cast<double>(n);
        if (gain > best.gain)
          best = {.feature = static_cast<int>(f),
                  .threshold = cuts[static_cast<std::size_t>(b)],
                  .gain = gain,
                  .left_count = static_cast<std::size_t>(nl),
                  .bin = b};
      }
    };
    auto sweep_reg = [&](const double* hist, const std::vector<float>& cuts,
                         std::size_t f) {
      int nb = static_cast<int>(cuts.size()) + 1;
      double gl = 0, hl = 0, cnt_l = 0;
      double parent_score = total_g * total_g / (total_h + cfg.lambda);
      for (int b = 0; b + 1 < nb; ++b) {
        const double* cell = hist + static_cast<std::size_t>(b) * 3;
        gl += cell[0];
        hl += cell[1];
        cnt_l += cell[2];
        if (cnt_l < static_cast<double>(cfg.min_samples_leaf) ||
            static_cast<double>(n) - cnt_l < static_cast<double>(cfg.min_samples_leaf))
          continue;
        double gr = total_g - gl, hr = total_h - hl;
        double gain = gl * gl / (hl + cfg.lambda) + gr * gr / (hr + cfg.lambda) -
                      parent_score;
        if (gain > best.gain)
          best = {.feature = static_cast<int>(f),
                  .threshold = cuts[static_cast<std::size_t>(b)],
                  .gain = gain,
                  .left_count = static_cast<std::size_t>(cnt_l),
                  .bin = b};
      }
    };
    auto sweep = [&](const double* hist, const std::vector<float>& cuts,
                     std::size_t f) {
      if (ctx.regression())
        sweep_reg(hist, cuts, f);
      else
        sweep_class(hist, cuts, f);
    };

    if (bm) {
      if (subtract_mode) {
        // Whole-tree cached histogram: the root (or any node whose parent
        // split on the exact path) accumulates on demand; everyone else
        // inherited theirs from propagate_hists below.
        auto it = node_hist.find(node_index);
        if (it == node_hist.end()) {
          F64Buffer h = acquire_hist(d * slot);
          accumulate_binned(begin, end, all_features, h.data());
          it = node_hist.emplace(node_index, std::move(h)).first;
        }
        const double* h = it->second.data();
        for (std::size_t f : feats) sweep(h + f * slot, bm->cuts(f), f);
      } else {
        // Sampled-feature fit: accumulate only this split's candidate
        // slots into a transient buffer.
        sampled_hist.assign(feats.size() * slot, 0.0);
        accumulate_binned(begin, end, feats, sampled_hist.data());
        for (std::size_t s = 0; s < feats.size(); ++s)
          sweep(sampled_hist.data() + s * slot, bm->cuts(feats[s]), feats[s]);
      }
    } else {
      // Legacy path: re-bin every row by binary search, one feature at a
      // time, against this tree's sampled cut points.
      for (std::size_t f : feats) {
        const auto& cuts = ctx.cuts[f];
        if (cuts.empty()) continue;
        std::size_t nb = cuts.size() + 1;
        if (ctx.regression()) {
          legacy_hist.assign(nb * 3, 0.0);
          for (std::size_t i = begin; i < end; ++i) {
            std::uint32_t r = ctx.rows[i];
            double* cell =
                legacy_hist.data() +
                3u * static_cast<std::size_t>(quantize_bin(cuts, (*ctx.x)(r, f)));
            cell[0] += (*ctx.grad)[r];
            cell[1] += (*ctx.hess)[r];
            cell[2] += 1.0;
          }
        } else {
          legacy_hist.assign(nb * k, 0.0);
          for (std::size_t i = begin; i < end; ++i) {
            std::uint32_t r = ctx.rows[i];
            legacy_hist[static_cast<std::size_t>(quantize_bin(cuts, (*ctx.x)(r, f))) * k +
                        static_cast<std::size_t>((*ctx.y)[r])] += 1.0;
          }
        }
        sweep(legacy_hist.data(), cuts, f);
      }
    }
    if (best.gain < cfg.min_gain) best.feature = -1;
    return best;
  };

  auto partition = [&](std::size_t begin, std::size_t end, int feature,
                       float threshold, int bin) -> std::size_t {
    if (ctx.x) {
      auto mid = std::partition(
          ctx.rows.begin() + static_cast<std::ptrdiff_t>(begin),
          ctx.rows.begin() + static_cast<std::ptrdiff_t>(end),
          [&](std::uint32_t r) {
            // Strict '<' matches the histogram convention: bin b holds
            // values in [cuts[b-1], cuts[b]), so a split after bin b sends
            // v < cuts[b] to the left child.
            return (*ctx.x)(r, static_cast<std::size_t>(feature)) < threshold;
          });
      return static_cast<std::size_t>(mid - ctx.rows.begin());
    }
    // Source-only fit: partition on codes (`code <= bin` ≡ `v < cuts[bin]`,
    // the BinnedMatrix invariant), STABLY — lefts compact in place, rights
    // detour through a reused scratch buffer. Stability keeps every node's
    // row range sorted, so paged column access stays monotone down the
    // whole tree and each page is pulled at most once per (node, feature).
    CodeCursor code(*bm, static_cast<std::size_t>(feature));
    part_scratch.clear();
    std::size_t w = begin;
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t r = ctx.rows[i];
      if (static_cast<int>(code.at(r)) <= bin)
        ctx.rows[w++] = r;
      else
        part_scratch.push_back(r);
    }
    std::copy(part_scratch.begin(), part_scratch.end(),
              ctx.rows.begin() + static_cast<std::ptrdiff_t>(w));
    return w;
  };

  // True when a child node at `child_depth` with `count` rows will take
  // the whole-tree histogram path (and so is worth handing a buffer).
  // find_split accumulates on demand if this ever disagrees — the
  // predicate is a performance contract, not a correctness one.
  auto child_needs_hist = [&](std::size_t count, int child_depth) {
    return subtract_mode && count > cfg.exact_split_max &&
           child_depth < cfg.max_depth && count >= 2 * cfg.min_samples_leaf;
  };

  // After splitting `parent` rows [begin,end) at `mid`: hand histograms to
  // the children that will need them. Accumulate only the smaller side and
  // derive the other from the parent by subtraction — the sibling trick
  // that halves accumulation work per level. Classification counts are
  // integers in doubles, so subtracted histograms are exact.
  auto propagate_hists = [&](int parent, int left, int right, std::size_t begin,
                             std::size_t mid, std::size_t end, int child_depth) {
    if (!subtract_mode) return;
    auto pit = node_hist.find(parent);
    if (pit == node_hist.end()) return;  // parent split on the exact path
    F64Buffer ph = std::move(pit->second);
    node_hist.erase(pit);
    const std::size_t n_l = mid - begin, n_r = end - mid;
    const bool need_l = child_needs_hist(n_l, child_depth);
    const bool need_r = child_needs_hist(n_r, child_depth);
    if (!need_l && !need_r) {
      release_hist(std::move(ph));
      return;
    }
    if (need_l && need_r) {
      const bool left_small = n_l <= n_r;
      F64Buffer small = acquire_hist(ph.size());
      if (left_small)
        accumulate_binned(begin, mid, all_features, small.data());
      else
        accumulate_binned(mid, end, all_features, small.data());
      for (std::size_t i = 0; i < ph.size(); ++i) ph[i] -= small[i];
      node_hist.emplace(left_small ? left : right, std::move(small));
      node_hist.emplace(left_small ? right : left, std::move(ph));
      return;
    }
    // Only one child stays on the histogram path. Still accumulate
    // whichever side is smaller: direct build if that's the needy child,
    // else build the sibling and subtract.
    const bool needed_left = need_l;
    const std::size_t needed_n = needed_left ? n_l : n_r;
    const std::size_t other_n = needed_left ? n_r : n_l;
    F64Buffer buf = acquire_hist(ph.size());
    if (needed_n <= other_n) {
      if (needed_left)
        accumulate_binned(begin, mid, all_features, buf.data());
      else
        accumulate_binned(mid, end, all_features, buf.data());
      node_hist.emplace(needed_left ? left : right, std::move(buf));
      release_hist(std::move(ph));
    } else {
      if (needed_left)
        accumulate_binned(mid, end, all_features, buf.data());
      else
        accumulate_binned(begin, mid, all_features, buf.data());
      for (std::size_t i = 0; i < ph.size(); ++i) ph[i] -= buf[i];
      node_hist.emplace(needed_left ? left : right, std::move(ph));
      release_hist(std::move(buf));
    }
  };

  // Root.
  nodes_.emplace_back();

  if (cfg.max_leaves > 0) {
    // Leaf-wise best-first growth (LightGBM style).
    struct Cand {
      double gain;
      int node_index;
      std::size_t begin, end;
      int depth;
      SplitResult split;
      bool operator<(const Cand& o) const { return gain < o.gain; }
    };
    std::priority_queue<Cand> heap;
    auto push_candidate = [&](int node_index, std::size_t begin, std::size_t end,
                              int depth) {
      make_leaf(nodes_[static_cast<std::size_t>(node_index)], begin, end);
      if (depth >= cfg.max_depth) return;
      SplitResult s = find_split(node_index, begin, end);
      if (s.feature >= 0)
        heap.push({s.gain, node_index, begin, end, depth, s});
    };
    push_candidate(0, 0, ctx.rows.size(), 0);
    int leaves = 1;
    while (!heap.empty() && leaves < cfg.max_leaves) {
      Cand c = heap.top();
      heap.pop();
      std::size_t mid = partition(c.begin, c.end, c.split.feature,
                                  c.split.threshold, c.split.bin);
      if (mid == c.begin || mid == c.end) continue;  // degenerate
      // Re-index after every emplace_back: the vector may reallocate.
      int left = static_cast<int>(nodes_.size());
      nodes_.emplace_back();
      int right = static_cast<int>(nodes_.size());
      nodes_.emplace_back();
      Node& node = nodes_[static_cast<std::size_t>(c.node_index)];
      node.feature = c.split.feature;
      node.threshold = c.split.threshold;
      node.bin = c.split.bin;
      node.left = left;
      node.right = right;
      importance_[static_cast<std::size_t>(c.split.feature)] += c.split.gain;
      propagate_hists(c.node_index, left, right, c.begin, mid, c.end, c.depth + 1);
      push_candidate(left, c.begin, mid, c.depth + 1);
      push_candidate(right, mid, c.end, c.depth + 1);
      ++leaves;
    }
  } else {
    // Depth-wise recursion via an explicit stack.
    std::vector<PendingNode> stack;
    stack.push_back({0, 0, ctx.rows.size(), 0, 0});
    while (!stack.empty()) {
      PendingNode p = stack.back();
      stack.pop_back();
      make_leaf(nodes_[static_cast<std::size_t>(p.node_index)], p.begin, p.end);
      if (p.depth >= cfg.max_depth) continue;
      SplitResult s = find_split(p.node_index, p.begin, p.end);
      if (s.feature < 0) continue;
      std::size_t mid = partition(p.begin, p.end, s.feature, s.threshold, s.bin);
      if (mid == p.begin || mid == p.end) continue;
      // Append children first: emplace_back may reallocate nodes_.
      int left = static_cast<int>(nodes_.size());
      nodes_.emplace_back();
      int right = static_cast<int>(nodes_.size());
      nodes_.emplace_back();
      Node& node = nodes_[static_cast<std::size_t>(p.node_index)];
      node.feature = s.feature;
      node.threshold = s.threshold;
      node.bin = s.bin;
      node.left = left;
      node.right = right;
      importance_[static_cast<std::size_t>(s.feature)] += s.gain;
      propagate_hists(p.node_index, left, right, p.begin, mid, p.end, p.depth + 1);
      stack.push_back({left, p.begin, mid, p.depth + 1, 0});
      stack.push_back({right, mid, p.end, p.depth + 1, 0});
    }
  }
}

void DecisionTree::fit_classifier(const Matrix& x, const std::vector<int>& y,
                                  int num_classes, const TreeConfig& cfg,
                                  std::mt19937_64& rng,
                                  const std::vector<std::uint32_t>* subset,
                                  const BinnedMatrix* binned) {
  BuildContext ctx;
  ctx.x = &x;
  ctx.y = &y;
  ctx.num_classes = num_classes;
  ctx.cfg = cfg;
  ctx.rng = &rng;
  ctx.src = binned;
  if (subset) {
    ctx.rows = *subset;
  } else {
    ctx.rows.resize(x.rows());
    std::iota(ctx.rows.begin(), ctx.rows.end(), 0);
  }
  if (!binned) ctx.cuts = compute_cuts(x, ctx.rows, cfg.histogram_bins, rng);
  build(ctx);
}

void DecisionTree::fit_regression(const Matrix& x, const std::vector<float>& grad,
                                  const std::vector<float>& hess,
                                  const TreeConfig& cfg, std::mt19937_64& rng,
                                  const std::vector<std::uint32_t>* subset,
                                  const BinnedMatrix* binned) {
  BuildContext ctx;
  ctx.x = &x;
  ctx.grad = &grad;
  ctx.hess = &hess;
  ctx.cfg = cfg;
  ctx.rng = &rng;
  ctx.src = binned;
  if (subset) {
    ctx.rows = *subset;
  } else {
    ctx.rows.resize(x.rows());
    std::iota(ctx.rows.begin(), ctx.rows.end(), 0);
  }
  if (!binned) ctx.cuts = compute_cuts(x, ctx.rows, cfg.histogram_bins, rng);
  build(ctx);
}

void DecisionTree::fit_classifier_binned(const BinnedColumnSource& src,
                                         const std::vector<int>& y,
                                         int num_classes, const TreeConfig& cfg,
                                         std::mt19937_64& rng,
                                         const std::vector<std::uint32_t>* subset) {
  BuildContext ctx;
  ctx.y = &y;
  ctx.num_classes = num_classes;
  ctx.cfg = cfg;
  // No raw floats: every split must come from the histogram sweep so the
  // code partition can replicate it exactly.
  ctx.cfg.exact_split_max = 0;
  ctx.rng = &rng;
  ctx.src = &src;
  if (subset) {
    ctx.rows = *subset;
  } else {
    ctx.rows.resize(src.rows());
    std::iota(ctx.rows.begin(), ctx.rows.end(), 0);
  }
  build(ctx);
}

void DecisionTree::fit_regression_binned(const BinnedColumnSource& src,
                                         const std::vector<float>& grad,
                                         const std::vector<float>& hess,
                                         const TreeConfig& cfg,
                                         std::mt19937_64& rng,
                                         const std::vector<std::uint32_t>* subset) {
  BuildContext ctx;
  ctx.grad = &grad;
  ctx.hess = &hess;
  ctx.cfg = cfg;
  ctx.cfg.exact_split_max = 0;
  ctx.rng = &rng;
  ctx.src = &src;
  if (subset) {
    ctx.rows = *subset;
  } else {
    ctx.rows.resize(src.rows());
    std::iota(ctx.rows.begin(), ctx.rows.end(), 0);
  }
  build(ctx);
}

void DecisionTree::predict_value_binned(const BinnedColumnSource& src,
                                        std::vector<float>& out) const {
  const std::size_t n = src.rows();
  out.assign(n, 0.0f);
  if (nodes_.empty()) return;
  if (nodes_[0].feature < 0) {
    out.assign(n, nodes_[0].value);
    return;
  }
  // Partition walk: route the full (sorted) row set down the tree with the
  // same stable code partition the fit used, then stamp each leaf's value.
  // Every internal node must carry a bin (fit_*_binned guarantees it);
  // page access stays monotone per (node, feature) like during the fit.
  std::vector<std::uint32_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0);
  std::vector<std::uint32_t> scratch;
  struct Item {
    int node;
    std::size_t begin, end;
  };
  std::vector<Item> stack{{0, 0, n}};
  while (!stack.empty()) {
    const Item it = stack.back();
    stack.pop_back();
    const Node& nd = nodes_[static_cast<std::size_t>(it.node)];
    if (nd.feature < 0) {
      for (std::size_t i = it.begin; i < it.end; ++i) out[rows[i]] = nd.value;
      continue;
    }
    CodeCursor code(src, static_cast<std::size_t>(nd.feature));
    scratch.clear();
    std::size_t w = it.begin;
    for (std::size_t i = it.begin; i < it.end; ++i) {
      const std::uint32_t r = rows[i];
      if (static_cast<int>(code.at(r)) <= nd.bin)
        rows[w++] = r;
      else
        scratch.push_back(r);
    }
    std::copy(scratch.begin(), scratch.end(),
              rows.begin() + static_cast<std::ptrdiff_t>(w));
    stack.push_back({nd.left, it.begin, w});
    stack.push_back({nd.right, w, it.end});
  }
}

int DecisionTree::leaf_index(const float* row) const {
  int i = 0;
  while (nodes_[static_cast<std::size_t>(i)].feature >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(i)];
    i = row[n.feature] < n.threshold ? n.left : n.right;
  }
  return i;
}

int DecisionTree::predict_class(const float* row) const {
  return nodes_[static_cast<std::size_t>(leaf_index(row))].cls;
}

float DecisionTree::predict_value(const float* row) const {
  return nodes_[static_cast<std::size_t>(leaf_index(row))].value;
}

int DecisionTree::depth() const {
  // Iterative depth computation over the node array.
  if (nodes_.empty()) return 0;
  std::vector<std::pair<int, int>> stack{{0, 1}};
  int best = 0;
  while (!stack.empty()) {
    auto [i, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    const Node& n = nodes_[static_cast<std::size_t>(i)];
    if (n.feature >= 0) {
      stack.push_back({n.left, d + 1});
      stack.push_back({n.right, d + 1});
    }
  }
  return best;
}

}  // namespace sugar::ml
