// Random Forest classifier with Gini feature importances — the shallow
// baseline that, per the paper's Table 8 and Figure 5, beats every
// representation-learning model on hand-crafted header features while being
// orders of magnitude cheaper. Trees are fitted and evaluated in parallel
// on the shared core::ThreadPool; each tree draws from its own seeded RNG
// stream, so the forest is bit-identical at any SUGAR_THREADS value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/guard.h"
#include "ml/tree.h"

namespace sugar::ml {

struct ForestConfig {
  int num_trees = 40;
  TreeConfig tree;
  /// Bootstrap sample fraction per tree.
  double bag_fraction = 1.0;
  std::uint64_t seed = 17;
  /// Quantize the feature matrix once per fit (ml::BinnedMatrix) and let
  /// every tree accumulate histograms from shared bin codes. Off = legacy
  /// per-tree cut derivation + per-node binary-search binning.
  bool binned = true;
  /// Polled once per tree (on whichever pool thread fits it); fit()
  /// rethrows the resulting CancelledError on the calling thread.
  const CancelToken* cancel = nullptr;

  ForestConfig() {
    tree.max_depth = 20;
    tree.min_samples_leaf = 1;
    tree.features_per_split = 10;
    // High-resolution histograms at large nodes; exact sorted-sweep splits
    // below 4096 samples (IP octets and sequence ranges need fine
    // thresholds).
    tree.histogram_bins = 128;
    tree.exact_split_max = 4096;
  }
};

class BinnedColumnSource;

class RandomForest {
 public:
  explicit RandomForest(ForestConfig cfg = {}) : cfg_(cfg) {}

  void fit(const Matrix& x, const std::vector<int>& y, int num_classes);

  /// Out-of-core fit from pre-binned codes (a dataset::PagedCodeSource or
  /// any BinnedColumnSource). Trees are fitted SERIALLY — parallelism moves
  /// inside each tree's feature-wise histogram accumulation — so the paged
  /// working set stays one tree's pages at a time. Each tree draws the
  /// same index-derived bootstrap as fit(), then SORTS its bag: class
  /// counts are integer-valued doubles, so the reordered accumulation is
  /// exact, and sorted bags keep paged column access monotone (each page
  /// pulled once per node sweep). exact_split_max is forced to 0, so fit()
  /// and
  /// fit_binned() are different estimators — fit_binned at any cache
  /// budget / page size / thread count is bit-identical to ITSELF.
  void fit_binned(const BinnedColumnSource& src, const std::vector<int>& y,
                  int num_classes);

  [[nodiscard]] std::vector<int> predict(const Matrix& x) const;

  /// Normalized (sums to 1) mean split-gain importance per feature.
  [[nodiscard]] std::vector<double> feature_importance() const;

  [[nodiscard]] const std::vector<DecisionTree>& trees() const { return trees_; }

 private:
  ForestConfig cfg_;
  int num_classes_ = 0;
  std::vector<DecisionTree> trees_;
};

/// Pairs feature importances with names and sorts descending (Figure 5).
std::vector<std::pair<std::string, double>> ranked_importance(
    const std::vector<double>& importance, const std::vector<std::string>& names);

}  // namespace sugar::ml
