#include "ml/forest.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "core/threadpool.h"
#include "core/trace.h"
#include "ml/binned.h"

namespace sugar::ml {
namespace {

// splitmix64 finalizer over (forest seed, tree index): every tree owns an
// independent, index-derived RNG stream, so the forest is bit-identical no
// matter which thread fits which tree — the parallel fit is exactly the
// sequential fit, reordered.
std::uint64_t tree_seed(std::uint64_t seed, std::uint64_t tree) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (tree + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

void RandomForest::fit(const Matrix& x, const std::vector<int>& y, int num_classes) {
  SUGAR_TRACE_SPAN("ml.forest.fit");
  num_classes_ = num_classes;
  trees_.assign(static_cast<std::size_t>(cfg_.num_trees), {});
  SUGAR_TRACE_COUNT("ml.trees_fit", trees_.size());

  TreeConfig tree_cfg = cfg_.tree;
  if (tree_cfg.features_per_split == 0)
    tree_cfg.features_per_split =
        std::max(1, static_cast<int>(std::sqrt(static_cast<double>(x.cols()))));

  std::size_t n = x.rows();
  std::size_t bag = static_cast<std::size_t>(cfg_.bag_fraction * static_cast<double>(n));

  // Quantize once per fit: every tree shares the same bin codes and cut
  // points, so per-tree compute_cuts (and its row-sample shuffle) is gone.
  // Built before the per-tree loop so quantization itself parallelizes.
  BinnedMatrix binned;
  const BinnedMatrix* bm = nullptr;
  if (cfg_.binned && n > 0) {
    binned = BinnedMatrix(x, tree_cfg.histogram_bins);
    bm = &binned;
  }

  core::global_pool().parallel_for(
      0, trees_.size(), 1, [&](std::size_t t0, std::size_t t1) {
        for (std::size_t t = t0; t < t1; ++t) {
          throw_if_cancelled(cfg_.cancel, "RandomForest::fit");
          std::mt19937_64 rng(tree_seed(cfg_.seed, t));
          std::uniform_int_distribution<std::size_t> pick(0, n == 0 ? 0 : n - 1);
          std::vector<std::uint32_t> rows(bag);
          for (auto& r : rows) r = static_cast<std::uint32_t>(pick(rng));
          trees_[t].fit_classifier(x, y, num_classes, tree_cfg, rng, &rows, bm);
        }
      });
}

void RandomForest::fit_binned(const BinnedColumnSource& src,
                              const std::vector<int>& y, int num_classes) {
  SUGAR_TRACE_SPAN("ml.forest.fit_binned");
  num_classes_ = num_classes;
  trees_.assign(static_cast<std::size_t>(cfg_.num_trees), {});
  SUGAR_TRACE_COUNT("ml.trees_fit", trees_.size());

  TreeConfig tree_cfg = cfg_.tree;
  if (tree_cfg.features_per_split == 0)
    tree_cfg.features_per_split = std::max(
        1, static_cast<int>(std::sqrt(static_cast<double>(src.cols()))));

  const std::size_t n = src.rows();
  const std::size_t bag =
      static_cast<std::size_t>(cfg_.bag_fraction * static_cast<double>(n));

  // Serial over trees: the pool parallelizes INSIDE each tree (feature-wise
  // histogram accumulation), so the page cache only ever holds one tree's
  // working set. Bags draw the exact fit() sequence, then sort — the
  // bootstrap multiset is unchanged, paged access becomes monotone.
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    throw_if_cancelled(cfg_.cancel, "RandomForest::fit_binned");
    std::mt19937_64 rng(tree_seed(cfg_.seed, t));
    std::uniform_int_distribution<std::size_t> pick(0, n == 0 ? 0 : n - 1);
    std::vector<std::uint32_t> rows(bag);
    for (auto& r : rows) r = static_cast<std::uint32_t>(pick(rng));
    std::sort(rows.begin(), rows.end());
    trees_[t].fit_classifier_binned(src, y, num_classes, tree_cfg, rng, &rows);
  }
}

std::vector<int> RandomForest::predict(const Matrix& x) const {
  SUGAR_TRACE_SPAN("ml.forest.predict");
  std::vector<int> out(x.rows(), 0);
  core::global_pool().parallel_for(
      0, x.rows(), 64, [&](std::size_t r0, std::size_t r1) {
        std::vector<int> votes(static_cast<std::size_t>(num_classes_));
        for (std::size_t i = r0; i < r1; ++i) {
          std::fill(votes.begin(), votes.end(), 0);
          for (const auto& tree : trees_)
            ++votes[static_cast<std::size_t>(tree.predict_class(x.row(i)))];
          out[i] = static_cast<int>(std::max_element(votes.begin(), votes.end()) -
                                    votes.begin());
        }
      });
  return out;
}

std::vector<double> RandomForest::feature_importance() const {
  if (trees_.empty()) return {};
  std::vector<double> total(trees_.front().feature_importance().size(), 0.0);
  for (const auto& tree : trees_) {
    const auto& imp = tree.feature_importance();
    for (std::size_t i = 0; i < imp.size(); ++i) total[i] += imp[i];
  }
  double sum = 0;
  for (double v : total) sum += v;
  if (sum > 0)
    for (double& v : total) v /= sum;
  return total;
}

std::vector<std::pair<std::string, double>> ranked_importance(
    const std::vector<double>& importance, const std::vector<std::string>& names) {
  std::vector<std::pair<std::string, double>> out;
  for (std::size_t i = 0; i < importance.size(); ++i)
    out.emplace_back(i < names.size() ? names[i] : "f" + std::to_string(i),
                     importance[i]);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

}  // namespace sugar::ml
