// Brute-force k-nearest-neighbour classifier and the k-NN embedding-purity
// analysis of Figure 4: for each point, how many of its k nearest
// neighbours in the embedding space share its class. High purity means the
// embedding clusters classes; the paper shows frozen encoders have very low
// purity and only unfrozen fine-tuning (on a leaky split) inflates it.
#pragma once

#include <array>
#include <vector>

#include "ml/matrix.h"

namespace sugar::ml {

class KnnClassifier {
 public:
  explicit KnnClassifier(int k = 5) : k_(k) {}

  void fit(Matrix x, std::vector<int> y, int num_classes);
  [[nodiscard]] std::vector<int> predict(const Matrix& x) const;

 private:
  int k_;
  int num_classes_ = 0;
  Matrix train_x_;
  std::vector<int> train_y_;
};

struct PurityHistogram {
  /// histogram[j] = fraction of points with exactly j same-class
  /// neighbours among their k nearest (self excluded).
  std::vector<double> histogram;
  double mean_purity = 0;
};

/// Computes k-NN purity over an embedded set. O(n²) distances; callers
/// subsample to a few thousand points. Query rows run in parallel on the
/// shared core::ThreadPool with a fixed block partition, so the histogram
/// and mean are bit-identical at any SUGAR_THREADS value.
PurityHistogram knn_purity(const Matrix& embeddings, const std::vector<int>& labels,
                           int k = 5);

}  // namespace sugar::ml
