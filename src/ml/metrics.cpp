#include "ml/metrics.h"

#include <cstdio>
#include <numeric>

#include "ml/guard.h"

namespace sugar::ml {

std::size_t ConfusionMatrix::total() const {
  return std::accumulate(counts_.begin(), counts_.end(), std::size_t{0});
}

std::size_t ConfusionMatrix::correct() const {
  std::size_t c = 0;
  for (int i = 0; i < k_; ++i) c += at(i, i);
  return c;
}

std::string Metrics::to_string() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "AC=%.1f F1=%.1f (micro F1=%.1f)", 100 * accuracy,
                100 * macro_f1, 100 * micro_f1);
  return buf;
}

Metrics evaluate(const std::vector<int>& y_true, const std::vector<int>& y_pred,
                 int num_classes) {
  check_internal(y_true.size() == y_pred.size(),
                 "evaluate: truth/prediction size mismatch (" +
                     std::to_string(y_true.size()) + " vs " +
                     std::to_string(y_pred.size()) + ")");
  check_internal(num_classes > 0, "evaluate: num_classes must be positive, got " +
                                      std::to_string(num_classes));
  Metrics m;
  m.confusion = ConfusionMatrix(num_classes);
  // Empty prediction sets are well-defined (all-zero metrics), not UB.
  if (y_true.empty()) return m;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    // Lazy messages: the strings are only built when a check fails, so the
    // per-sample loop does no allocation on the happy path.
    check_internal(y_true[i] >= 0 && y_true[i] < num_classes, [&] {
      return "evaluate: label " + std::to_string(y_true[i]) +
             " out of range at index " + std::to_string(i);
    });
    check_internal(y_pred[i] >= 0 && y_pred[i] < num_classes, [&] {
      return "evaluate: prediction " + std::to_string(y_pred[i]) +
             " out of range at index " + std::to_string(i);
    });
    m.confusion.add(y_true[i], y_pred[i]);
  }

  std::size_t total = m.confusion.total();
  m.accuracy = total ? static_cast<double>(m.confusion.correct()) /
                           static_cast<double>(total)
                     : 0.0;

  // Per-class precision/recall. Classes absent from both truth and
  // prediction are excluded from the macro average (scikit-learn
  // convention); classes present in truth but never predicted contribute 0.
  double f1_sum = 0;
  int f1_classes = 0;
  std::size_t tp_total = 0, fp_total = 0, fn_total = 0;
  for (int c = 0; c < num_classes; ++c) {
    std::size_t tp = m.confusion.at(c, c);
    std::size_t fp = 0, fn = 0;
    for (int o = 0; o < num_classes; ++o) {
      if (o == c) continue;
      fp += m.confusion.at(o, c);
      fn += m.confusion.at(c, o);
    }
    tp_total += tp;
    fp_total += fp;
    fn_total += fn;
    if (tp + fp + fn == 0) continue;  // class absent entirely
    double f1 = tp == 0 ? 0.0
                        : 2.0 * static_cast<double>(tp) /
                              static_cast<double>(2 * tp + fp + fn);
    f1_sum += f1;
    ++f1_classes;
  }
  m.macro_f1 = f1_classes ? f1_sum / f1_classes : 0.0;
  m.micro_f1 = (2 * tp_total + fp_total + fn_total) == 0
                   ? 0.0
                   : 2.0 * static_cast<double>(tp_total) /
                         static_cast<double>(2 * tp_total + fp_total + fn_total);
  return m;
}

}  // namespace sugar::ml
