#include "ml/preprocess.h"

#include <cmath>

namespace sugar::ml {

void StandardScaler::fit(const Matrix& x) {
  std::size_t n = x.rows(), d = x.cols();
  mean_.assign(d, 0.0f);
  std_.assign(d, 1.0f);
  if (n == 0) return;
  for (std::size_t i = 0; i < n; ++i) {
    const float* r = x.row(i);
    for (std::size_t j = 0; j < d; ++j) mean_[j] += r[j];
  }
  for (auto& m : mean_) m /= static_cast<float>(n);
  std::vector<double> var(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const float* r = x.row(i);
    for (std::size_t j = 0; j < d; ++j) {
      double diff = r[j] - mean_[j];
      var[j] += diff * diff;
    }
  }
  for (std::size_t j = 0; j < d; ++j) {
    double s = std::sqrt(var[j] / static_cast<double>(n));
    std_[j] = s < 1e-8 ? 1.0f : static_cast<float>(s);
  }
}

void StandardScaler::transform(Matrix& x) const {
  for (std::size_t i = 0; i < x.rows(); ++i) {
    float* r = x.row(i);
    for (std::size_t j = 0; j < x.cols(); ++j) r[j] = (r[j] - mean_[j]) / std_[j];
  }
}

}  // namespace sugar::ml
