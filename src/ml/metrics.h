// Evaluation metrics, following the paper's recommendation (§4.2): report
// both accuracy and macro-averaged F1. Micro F1 is implemented too because
// the paper calls out prior work for (mis)using it — having all three lets
// the benches show how the choice flatters majority classes.
#pragma once

#include <string>
#include <vector>

namespace sugar::ml {

class ConfusionMatrix {
 public:
  ConfusionMatrix() = default;
  explicit ConfusionMatrix(int num_classes)
      : k_(num_classes),
        counts_(static_cast<std::size_t>(num_classes) * static_cast<std::size_t>(num_classes), 0) {}

  void add(int truth, int pred) {
    counts_[static_cast<std::size_t>(truth) * static_cast<std::size_t>(k_) +
            static_cast<std::size_t>(pred)]++;
  }

  [[nodiscard]] int num_classes() const { return k_; }
  [[nodiscard]] std::size_t at(int truth, int pred) const {
    return counts_[static_cast<std::size_t>(truth) * static_cast<std::size_t>(k_) +
                   static_cast<std::size_t>(pred)];
  }
  [[nodiscard]] std::size_t total() const;
  [[nodiscard]] std::size_t correct() const;

 private:
  int k_ = 0;
  std::vector<std::size_t> counts_;
};

struct Metrics {
  double accuracy = 0;
  double macro_f1 = 0;
  double micro_f1 = 0;
  ConfusionMatrix confusion;

  [[nodiscard]] std::string to_string() const;
};

Metrics evaluate(const std::vector<int>& y_true, const std::vector<int>& y_pred,
                 int num_classes);

}  // namespace sugar::ml
