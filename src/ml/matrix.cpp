#include "ml/matrix.h"

#include <algorithm>
#include <cmath>

#include "core/threadpool.h"
#include "ml/guard.h"

namespace sugar::ml {
namespace {

// Rows of the output matrix per parallel block. Fixed (never derived from
// the thread count) so the block structure — and therefore every
// floating-point accumulation order — is identical at any SUGAR_THREADS.
constexpr std::size_t kRowGrain = 8;
// k-panel width: a panel of B rows (kPanel × cols floats) stays hot in L1/L2
// while it is streamed against every A row of the block.
constexpr std::size_t kPanel = 64;

}  // namespace

Matrix Matrix::take_rows(const std::vector<std::size_t>& idx) const {
  Matrix out(idx.size(), cols_);
  for (std::size_t i = 0; i < idx.size(); ++i)
    std::copy_n(row(idx[i]), cols_, out.row(i));
  return out;
}

// The kernels below are dense: there is deliberately no `aik == 0.0f`
// branch-skip. On the float matrices these see (features, activations,
// gradients) zeros are common but unpredictable, so the branch is a
// mispredict tax on the inner loop, and skipping iterations breaks
// vectorization. bench_micro_substrate carries the legacy branchy kernel
// for comparison.

Matrix matmul(const Matrix& a, const Matrix& b) {
  check_internal(a.cols() == b.rows(), "matmul: inner dimensions disagree");
  Matrix c(a.rows(), b.cols());
  const std::size_t kk = a.cols(), m = b.cols();
  core::global_pool().parallel_for(
      0, a.rows(), kRowGrain, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t k0 = 0; k0 < kk; k0 += kPanel) {
          const std::size_t k1 = std::min(kk, k0 + kPanel);
          for (std::size_t i = r0; i < r1; ++i) {
            const float* __restrict__ ai = a.row(i);
            float* __restrict__ ci = c.row(i);
            for (std::size_t k = k0; k < k1; ++k) {
              const float aik = ai[k];
              const float* __restrict__ bk = b.row(k);
              for (std::size_t j = 0; j < m; ++j) ci[j] += aik * bk[j];
            }
          }
        }
      });
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  check_internal(a.rows() == b.rows(), "matmul_tn: row counts disagree");
  Matrix c(a.cols(), b.cols());
  const std::size_t n = a.rows(), m = b.cols();
  // Output rows are columns of A; each block owns rows [i0, i1) of C, and
  // the k (sample) loop stays outermost so A and B are streamed once per
  // block in row-major order.
  core::global_pool().parallel_for(
      0, a.cols(), kRowGrain, [&](std::size_t i0, std::size_t i1) {
        for (std::size_t k = 0; k < n; ++k) {
          const float* __restrict__ ak = a.row(k);
          const float* __restrict__ bk = b.row(k);
          for (std::size_t i = i0; i < i1; ++i) {
            const float aki = ak[i];
            float* __restrict__ ci = c.row(i);
            for (std::size_t j = 0; j < m; ++j) ci[j] += aki * bk[j];
          }
        }
      });
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  check_internal(a.cols() == b.cols(), "matmul_nt: column counts disagree");
  Matrix c(a.rows(), b.rows());
  const std::size_t kk = a.cols(), m = b.rows();
  core::global_pool().parallel_for(
      0, a.rows(), kRowGrain, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
          const float* __restrict__ ai = a.row(i);
          float* __restrict__ ci = c.row(i);
          for (std::size_t j = 0; j < m; ++j) {
            const float* __restrict__ bj = b.row(j);
            float s = 0;
            for (std::size_t k = 0; k < kk; ++k) s += ai[k] * bj[k];
            ci[j] = s;
          }
        }
      });
  return c;
}

void add_row_vector(Matrix& m, const std::vector<float>& bias) {
  check_internal(bias.size() == m.cols(), "add_row_vector: bias size mismatch");
  for (std::size_t i = 0; i < m.rows(); ++i) {
    float* r = m.row(i);
    for (std::size_t j = 0; j < m.cols(); ++j) r[j] += bias[j];
  }
}

Matrix relu_inplace(Matrix& m) {
  Matrix mask(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (m.data()[i] > 0) {
      mask.data()[i] = 1.0f;
    } else {
      m.data()[i] = 0.0f;
    }
  }
  return mask;
}

void softmax_rows(Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    float* r = m.row(i);
    float mx = *std::max_element(r, r + m.cols());
    float sum = 0;
    for (std::size_t j = 0; j < m.cols(); ++j) {
      r[j] = std::exp(r[j] - mx);
      sum += r[j];
    }
    float inv = 1.0f / sum;
    for (std::size_t j = 0; j < m.cols(); ++j) r[j] *= inv;
  }
}

float squared_distance(const float* a, const float* b, std::size_t n) {
  float s = 0;
  for (std::size_t i = 0; i < n; ++i) {
    float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace sugar::ml
