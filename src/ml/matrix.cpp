#include "ml/matrix.h"

#include <algorithm>
#include <cmath>

#include "ml/guard.h"

namespace sugar::ml {

Matrix Matrix::take_rows(const std::vector<std::size_t>& idx) const {
  Matrix out(idx.size(), cols_);
  for (std::size_t i = 0; i < idx.size(); ++i)
    std::copy_n(row(idx[i]), cols_, out.row(i));
  return out;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  check_internal(a.cols() == b.rows(), "matmul: inner dimensions disagree");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* ai = a.row(i);
    float* ci = c.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      float aik = ai[k];
      if (aik == 0.0f) continue;
      const float* bk = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) ci[j] += aik * bk[j];
    }
  }
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  check_internal(a.rows() == b.rows(), "matmul_tn: row counts disagree");
  Matrix c(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const float* ak = a.row(k);
    const float* bk = b.row(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      float aki = ak[i];
      if (aki == 0.0f) continue;
      float* ci = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) ci[j] += aki * bk[j];
    }
  }
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  check_internal(a.cols() == b.cols(), "matmul_nt: column counts disagree");
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* ai = a.row(i);
    float* ci = c.row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const float* bj = b.row(j);
      float s = 0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += ai[k] * bj[k];
      ci[j] = s;
    }
  }
  return c;
}

void add_row_vector(Matrix& m, const std::vector<float>& bias) {
  check_internal(bias.size() == m.cols(), "add_row_vector: bias size mismatch");
  for (std::size_t i = 0; i < m.rows(); ++i) {
    float* r = m.row(i);
    for (std::size_t j = 0; j < m.cols(); ++j) r[j] += bias[j];
  }
}

Matrix relu_inplace(Matrix& m) {
  Matrix mask(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (m.data()[i] > 0) {
      mask.data()[i] = 1.0f;
    } else {
      m.data()[i] = 0.0f;
    }
  }
  return mask;
}

void softmax_rows(Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    float* r = m.row(i);
    float mx = *std::max_element(r, r + m.cols());
    float sum = 0;
    for (std::size_t j = 0; j < m.cols(); ++j) {
      r[j] = std::exp(r[j] - mx);
      sum += r[j];
    }
    float inv = 1.0f / sum;
    for (std::size_t j = 0; j < m.cols(); ++j) r[j] *= inv;
  }
}

float squared_distance(const float* a, const float* b, std::size_t n) {
  float s = 0;
  for (std::size_t i = 0; i < n; ++i) {
    float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace sugar::ml
