#include "ml/matrix.h"

#include "core/trace.h"

#include <algorithm>
#include <cmath>

#include "core/simd.h"
#include "core/threadpool.h"
#include "core/trace.h"
#include "ml/guard.h"

namespace sugar::ml {
namespace {

namespace simd = core::simd;

// Rows of the output matrix per parallel block. Fixed (never derived from
// the thread count) so the block structure — and therefore every
// floating-point accumulation order — is identical at any SUGAR_THREADS.
constexpr std::size_t kRowGrain = 8;
// k-panel width: a panel of B rows (kPanel × cols floats) stays hot in L1/L2
// while it is streamed against every A row of the block.
constexpr std::size_t kPanel = 64;

}  // namespace

void Matrix::copy_from(const Matrix& o) {
  reshape(o.rows_, o.cols_);
  std::copy(o.data_.begin(), o.data_.end(), data_.begin());
}

Matrix Matrix::take_rows(const std::vector<std::size_t>& idx) const {
  Matrix out;
  take_rows_into(idx, out);
  return out;
}

void Matrix::take_rows_into(const std::vector<std::size_t>& idx,
                            Matrix& out) const {
  check_internal(&out != this, "take_rows_into: output aliases input");
  out.reshape(idx.size(), cols_);
  for (std::size_t i = 0; i < idx.size(); ++i)
    std::copy_n(row(idx[i]), cols_, out.row(i));
}

// The kernels below are dense: there is deliberately no `aik == 0.0f`
// branch-skip. On the float matrices these see (features, activations,
// gradients) zeros are common but unpredictable, so the branch is a
// mispredict tax on the inner loop, and skipping iterations breaks
// vectorization. bench_micro_substrate carries the legacy branchy kernel
// for comparison.
//
// Vectorization runs along the output column j (simd::axpy): every C(i,j)
// keeps its k-ascending accumulation order, so the SIMD kernels are
// bit-equal to the scalar loops they replaced — at any thread count and on
// any core::simd backend. matmul_nt is a dot-product shape instead; its
// per-(i,j) reduction uses the strided-8 order (simd::dot).

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_into(a, b, c);
  return c;
}

void matmul_into(const Matrix& a, const Matrix& b, Matrix& c) {
  check_internal(a.cols() == b.rows(), "matmul: inner dimensions disagree");
  check_internal(&c != &a && &c != &b, "matmul: output aliases an input");
  c.reshape(a.rows(), b.cols());
  c.fill(0.0f);
  const std::size_t kk = a.cols(), m = b.cols();
  SUGAR_TRACE_COUNT("ml.gemm_flops", 2 * a.rows() * kk * m);
  core::global_pool().parallel_for(
      0, a.rows(), kRowGrain, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t k0 = 0; k0 < kk; k0 += kPanel) {
          const std::size_t k1 = std::min(kk, k0 + kPanel);
          for (std::size_t i = r0; i < r1; ++i) {
            const float* __restrict__ ai = a.row(i);
            float* __restrict__ ci = c.row(i);
            for (std::size_t k = k0; k < k1; ++k)
              simd::axpy(ci, b.row(k), ai[k], m);
          }
        }
      });
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  matmul_tn_acc(a, b, c);
  return c;
}

void matmul_tn_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  check_internal(a.rows() == b.rows(), "matmul_tn: row counts disagree");
  check_internal(c.rows() == a.cols() && c.cols() == b.cols(),
                 "matmul_tn_acc: output shape mismatch");
  check_internal(&c != &a && &c != &b, "matmul_tn_acc: output aliases an input");
  const std::size_t n = a.rows(), m = b.cols();
  SUGAR_TRACE_COUNT("ml.gemm_flops", 2 * n * a.cols() * m);
  // Output rows are columns of A; each block owns rows [i0, i1) of C, and
  // the k (sample) loop stays outermost so A and B are streamed once per
  // block in row-major order.
  core::global_pool().parallel_for(
      0, a.cols(), kRowGrain, [&](std::size_t i0, std::size_t i1) {
        for (std::size_t k = 0; k < n; ++k) {
          const float* __restrict__ ak = a.row(k);
          const float* __restrict__ bk = b.row(k);
          for (std::size_t i = i0; i < i1; ++i)
            simd::axpy(c.row(i), bk, ak[i], m);
        }
      });
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_nt_into(a, b, c);
  return c;
}

void matmul_nt_into(const Matrix& a, const Matrix& b, Matrix& c) {
  check_internal(a.cols() == b.cols(), "matmul_nt: column counts disagree");
  check_internal(&c != &a && &c != &b, "matmul_nt: output aliases an input");
  c.reshape(a.rows(), b.rows());
  const std::size_t kk = a.cols(), m = b.rows();
  SUGAR_TRACE_COUNT("ml.gemm_flops", 2 * a.rows() * kk * m);
  core::global_pool().parallel_for(
      0, a.rows(), kRowGrain, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
          const float* __restrict__ ai = a.row(i);
          float* __restrict__ ci = c.row(i);
          for (std::size_t j = 0; j < m; ++j) ci[j] = simd::dot(ai, b.row(j), kk);
        }
      });
}

void add_row_vector(Matrix& m, const std::vector<float>& bias) {
  check_internal(bias.size() == m.cols(), "add_row_vector: bias size mismatch");
  for (std::size_t i = 0; i < m.rows(); ++i)
    simd::vadd_inplace(m.row(i), bias.data(), m.cols());
}

Matrix relu_inplace(Matrix& m) {
  Matrix mask;
  relu_inplace_into(m, mask);
  return mask;
}

void relu_inplace_into(Matrix& m, Matrix& mask) {
  mask.reshape(m.rows(), m.cols());
  float* v = m.data().data();
  float* mk = mask.data().data();
  const std::size_t n = m.size();
  std::size_t i = 0;
  for (; i + simd::kLanes <= n; i += simd::kLanes) {
    simd::f32x8 x = simd::loadu(v + i);
    simd::storeu(mk + i, simd::step01(x));
    simd::storeu(v + i, simd::relu(x));
  }
  for (; i < n; ++i) {
    mk[i] = v[i] > 0.0f ? 1.0f : 0.0f;
    v[i] = v[i] > 0.0f ? v[i] : 0.0f;
  }
}

void relu_inplace_nomask(Matrix& m) {
  float* v = m.data().data();
  const std::size_t n = m.size();
  std::size_t i = 0;
  for (; i + simd::kLanes <= n; i += simd::kLanes)
    simd::storeu(v + i, simd::relu(simd::loadu(v + i)));
  for (; i < n; ++i) v[i] = v[i] > 0.0f ? v[i] : 0.0f;
}

void hadamard_inplace(Matrix& m, const Matrix& o) {
  check_internal(m.rows() == o.rows() && m.cols() == o.cols(),
                 "hadamard_inplace: shape mismatch");
  simd::vmul_inplace(m.data().data(), o.data().data(), m.size());
}

void softmax_rows(Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    float* r = m.row(i);
    const std::size_t n = m.cols();
    float mx = simd::max(r, n);
    // exp stays scalar: libm's std::exp is the per-element spec on every
    // backend (a polynomial vector-exp would change bits).
    for (std::size_t j = 0; j < n; ++j) r[j] = std::exp(r[j] - mx);
    simd::vscale_inplace(r, 1.0f / simd::sum(r, n), n);
  }
}

float squared_distance(const float* a, const float* b, std::size_t n) {
  return simd::squared_distance(a, b, n);
}

}  // namespace sugar::ml
