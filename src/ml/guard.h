// Training-loop guard primitives shared by every iterative fit path:
// cooperative cancellation (the supervisor's per-cell watchdog sets a
// CancelToken; epoch/batch loops poll it), NaN/Inf loss detection (a
// diverged cell aborts early instead of burning its full epoch budget on
// garbage), and always-on internal invariant checks that replace
// Release-compiled-out asserts. The ml layer throws these typed errors;
// core::RunSupervisor maps them onto the RunError taxonomy.
#pragma once

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

namespace sugar::ml {

/// Cooperative cancellation flag. The watchdog thread calls cancel(); the
/// training loop polls cancelled() at batch granularity and unwinds with
/// CancelledError. Polling is relaxed: a cancel may be observed one batch
/// late, which is fine for wall-clock deadlines.
class CancelToken {
 public:
  void cancel() noexcept { flag_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const noexcept {
    return flag_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> flag_{false};
};

/// A training loop observed its CancelToken (watchdog deadline).
class CancelledError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Training loss became NaN/Inf — the cell diverged and further epochs are
/// meaningless. The supervisor retries with a perturbed seed and reduced
/// learning rate.
class DivergenceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An internal invariant (shape mismatch, out-of-range label) was violated.
/// Always on, unlike assert(): a Release-built bench must fail a cell, not
/// read out of bounds.
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

inline void throw_if_cancelled(const CancelToken* token, const char* where) {
  if (token && token->cancelled())
    throw CancelledError(std::string("cancelled in ") + where);
}

/// Epoch-granular divergence check on an accumulated loss.
inline void check_loss_finite(float loss, const char* where, int epoch) {
  if (!std::isfinite(loss))
    throw DivergenceError(std::string(where) + ": non-finite loss at epoch " +
                          std::to_string(epoch));
}

inline void check_internal(bool ok, const std::string& message) {
  if (!ok) throw InternalError(message);
}

/// Zero-cost overload for the hot paths: no std::string is materialized on
/// the happy path (the std::string overload above builds its message even
/// when ok, which shows up in per-sample loops).
inline void check_internal(bool ok, const char* message) {
  if (!ok) throw InternalError(message);
}

/// Lazy-message overload: the callable runs only on failure, so rich
/// formatted messages stay free in tight loops.
template <typename F, typename = std::enable_if_t<std::is_invocable_v<F>>>
inline void check_internal(bool ok, F&& make_message) {
  if (!ok) throw InternalError(std::forward<F>(make_message)());
}

}  // namespace sugar::ml
