// Circuit breaker around the primary flow classifier. Wraps a primary
// (the frozen forest) and a fallback (a cheap heuristic) behind the same
// FlowClassifier interface and degrades between them:
//
//   closed ──consecutive faults >= threshold──▶ open
//   open ──cooldown fallback calls served──▶ half-open
//   half-open ──probe fault──▶ open
//   half-open ──consecutive probe successes──▶ closed
//
// A "fault" is either a latency-budget breach (the primary answered, but
// slower than latency_budget_us — the verdict is still used) or an
// injected classifier failure from core::ChaosInjector (the call is
// answered by the fallback instead). While open, every call is served by
// the fallback; half-open admits exactly one probe call to the primary at
// a time (CAS guard) and routes the rest to the fallback, so a recovering
// primary is never stampeded.
//
// All counters are monotone atomics and every state transition lands in a
// bounded log plus a trace counter, so bench_serve's chaos matrix can emit
// the full closed→open→half-open→closed timeline and json_check can
// assert its legality. With no chaos injector and no latency budget the
// breaker never sees a fault and is a transparent pass-through — it adds
// nothing to the bit-identity contract's surface.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/artifact.h"
#include "core/chaos.h"
#include "serve/classifier.h"

namespace sugar::serve {

enum class BreakerState : std::uint8_t { kClosed = 0, kOpen, kHalfOpen };
const char* to_string(BreakerState state);

struct BreakerConfig {
  /// Primary-call wall-clock budget in microseconds; 0 disables the
  /// latency tripwire (chaos faults can still trip the breaker).
  std::uint64_t latency_budget_us = 0;
  /// Consecutive faults (closed state) that trip the breaker.
  std::uint32_t failure_threshold = 3;
  /// Fallback calls served while open before probing (half-open).
  std::uint32_t open_cooldown_calls = 64;
  /// Consecutive successful probes that close the breaker again.
  std::uint32_t half_open_successes = 2;
  /// Transition log bound; older transitions are dropped from the log
  /// (never from the counters).
  std::size_t max_transitions = 64;

  /// Applies SUGAR_LATENCY_BUDGET_US (strict from_chars; malformed values
  /// are warned about and ignored) on top of `base` (defaults when omitted).
  static BreakerConfig from_env(BreakerConfig base);
  static BreakerConfig from_env();
};

/// Monotone breaker counters (a point-in-time copy of the atomics).
struct BreakerCounters {
  std::uint64_t primary_calls = 0;    // verdicts produced by the primary
  std::uint64_t fallback_calls = 0;   // verdicts produced by the fallback
  std::uint64_t faults_latency = 0;   // budget breaches
  std::uint64_t faults_injected = 0;  // chaos classifier faults
  std::uint64_t trips = 0;            // closed→open and half-open→open
  std::uint64_t probes = 0;           // half-open primary attempts
  std::uint64_t probe_failures = 0;   // probes that faulted
  std::uint64_t recoveries = 0;       // half-open→closed
};

struct BreakerTransition {
  BreakerState from = BreakerState::kClosed;
  BreakerState to = BreakerState::kClosed;
  std::uint64_t at_call = 0;  // classify() ordinal that caused the edge
};

class CircuitBreakerClassifier final : public FlowClassifier {
 public:
  /// Both classifiers must outlive the breaker and agree on feature_dim.
  /// `chaos` may be null (no injected faults).
  CircuitBreakerClassifier(const FlowClassifier& primary,
                           const FlowClassifier& fallback, BreakerConfig cfg,
                           core::ChaosInjector* chaos = nullptr);

  [[nodiscard]] std::size_t feature_dim() const override {
    return primary_.feature_dim();
  }
  [[nodiscard]] int num_classes() const override {
    return primary_.num_classes();
  }
  [[nodiscard]] int classify(const float* features) const override;

  [[nodiscard]] BreakerState state() const {
    return static_cast<BreakerState>(state_.load(std::memory_order_acquire));
  }
  [[nodiscard]] const BreakerConfig& config() const { return cfg_; }
  [[nodiscard]] BreakerCounters counters() const;
  [[nodiscard]] std::vector<BreakerTransition> transitions() const;

  /// {state, counters{...}, transitions: [{from, to, at_call}...]}.
  [[nodiscard]] core::Json to_json() const;

 private:
  /// Runs the primary with chaos + budget accounting. Sets `fault` when the
  /// call breached the budget or was replaced by an injected failure;
  /// `injected` distinguishes the latter (the returned verdict is unusable).
  int call_primary(const float* features, bool& fault, bool& injected) const;
  /// state_ from→to edge under mu_ (false if another thread moved first).
  bool transition(BreakerState from, BreakerState to,
                  std::uint64_t at_call) const;

  const FlowClassifier& primary_;
  const FlowClassifier& fallback_;
  BreakerConfig cfg_;
  core::ChaosInjector* chaos_;

  // classify() is const on the interface; breaker bookkeeping is interior
  // state, hence mutable atomics guarded transitions.
  mutable std::atomic<std::uint8_t> state_{0};
  mutable std::atomic<std::uint64_t> calls_{0};
  mutable std::atomic<std::uint32_t> consecutive_faults_{0};
  mutable std::atomic<std::uint32_t> open_calls_{0};
  mutable std::atomic<std::uint32_t> half_open_streak_{0};
  mutable std::atomic<bool> probe_in_flight_{false};

  mutable std::atomic<std::uint64_t> primary_calls_{0};
  mutable std::atomic<std::uint64_t> fallback_calls_{0};
  mutable std::atomic<std::uint64_t> faults_latency_{0};
  mutable std::atomic<std::uint64_t> faults_injected_{0};
  mutable std::atomic<std::uint64_t> trips_{0};
  mutable std::atomic<std::uint64_t> probes_{0};
  mutable std::atomic<std::uint64_t> probe_failures_{0};
  mutable std::atomic<std::uint64_t> recoveries_{0};

  mutable std::mutex mu_;  // guards state transitions + the log
  mutable std::vector<BreakerTransition> log_;
};

}  // namespace sugar::serve
