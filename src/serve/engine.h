// ServeEngine: the online classification pipeline. Packets enter through a
// bounded ingest queue (offer(), thread-safe, explicit backpressure); pump()
// drains one batch and runs a deterministic round on the shared
// core::ThreadPool — parse + featurize in parallel blocks, partition by
// flow-key hash, then one worker per shard folds its packets into the
// ShardedFlowTable in arrival order, classifying flows at first-N packets
// and on eviction.
//
// Overload control is a three-stage shed ladder evaluated (with hysteresis)
// at every round boundary from queue depth and table occupancy:
//
//   stage 0  accept everything; a full queue still drops at offer()
//            (bounded-memory backpressure, counted packets_rejected)
//   stage 1  drop-newest-flows: packets that would create a new flow are
//            shed; resident flows keep progressing toward first-N
//   stage 2  early-classify: shard workers sweep the LRU tail and evict
//            (classifying) flows that already carry enough packets,
//            pulling occupancy back under the high watermark
//   stage 3  sample-evict: a new flow arriving at a full shard replaces
//            the LRU tail (classified if eligible, dropped otherwise)
//
// Every transition and every shed decision is counted in ServeStats — the
// engine degrades observably, never silently, and its memory is bounded by
// queue_capacity frames + the flow table's preallocated slabs.
//
// Determinism: given the same packet sequence and the same offer()/pump()
// schedule, verdicts and every eviction/shed counter are identical at any
// SUGAR_THREADS value — shard assignment and round partitioning depend
// only on the stream, and eviction time is the stream's own virtual clock
// (max packet timestamp seen), never the wall. Only the latency histogram
// and wall-time gauges are non-deterministic.
//
// Supervision: with watchdog_timeout_s > 0 a RunSupervisor-style watchdog
// thread checks that an in-flight round makes progress (per-shard
// heartbeat) and escalates through a ladder instead of hanging silently:
//
//   1x timeout  flag: counters.watchdog_stalls++ and a stderr diagnostic
//   2x timeout  quarantine: every shard still mid-round is marked; its
//               classifications route to cfg.fallback (when present) until
//               the shard completes two clean rounds
//   4x timeout  abort: round_abort_ asks shard workers to bail; their
//               unprocessed packets are re-queued at the front of the
//               ingest queue in arrival order and re-drained next round
//
// Crash tolerance: save_snapshot()/restore_snapshot() (see snapshot.h)
// checkpoint the full engine state between rounds, so a restored engine
// replaying from the recorded stream position is bit-identical to one that
// never crashed. cfg.chaos (core::ChaosInjector) injects deterministic
// worker stalls, classifier faults and flow-table allocation failures for
// exercising all of the above.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/packet.h"
#include "serve/classifier.h"
#include "serve/flow_features.h"
#include "serve/flow_table.h"
#include "serve/snapshot.h"
#include "serve/stats.h"

namespace sugar::core {
class ChaosInjector;
class Io;
}  // namespace sugar::core

namespace sugar::serve {

enum class ShedStage : std::uint8_t {
  kNone = 0,
  kDropNewFlows = 1,
  kEarlyClassify = 2,
  kSampleEvict = 3,
};
const char* to_string(ShedStage s);

enum class VerdictReason : std::uint8_t {
  kFirstN,        // reached classify_at while resident
  kEvictIdle,     // idle timeout
  kEvictEarly,    // shed ladder stage 2
  kEvictSampled,  // shed ladder stage 3 replacement
  kFlush,         // engine flush()
};
const char* to_string(VerdictReason r);

/// One classified flow.
struct Verdict {
  net::FlowKey key;
  int label = -1;
  std::uint32_t packets = 0;
  std::uint32_t feature_packets = 0;
  VerdictReason reason = VerdictReason::kFirstN;
  std::uint64_t first_ts_usec = 0;
  std::uint64_t last_ts_usec = 0;
};

struct ServeConfig {
  FlowTableConfig table;  // feature_dim is overwritten from the featurizer
  FlowFeatureConfig features;
  /// Bounded ingest queue (packets). Full queue => offer() returns false.
  std::size_t queue_capacity = 8192;
  /// Max packets drained per pump() round.
  std::size_t batch_size = 1024;
  /// Flows evicted with fewer feature packets than this go unclassified.
  std::size_t min_classify_packets = 2;
  /// Flows idle longer than this (stream virtual time) are evicted.
  std::uint64_t idle_timeout_usec = 2'000'000;
  // Shed ladder watermarks (fractions; *_lo gives hysteresis on exit).
  double queue_hi = 0.75;
  double queue_lo = 0.50;
  double table_hi = 0.90;
  double table_lo = 0.75;
  /// LRU entries scanned per shard per round by the stage-2 sweep.
  std::size_t early_evict_scan = 64;
  /// Watchdog deadline for one round; 0 disables the watchdog thread.
  double watchdog_timeout_s = 0;
  /// Record per-flow verdicts for retrieval via take_verdicts(). Off by
  /// default so an unattended engine cannot grow without bound.
  bool record_verdicts = false;
  /// Cap on buffered verdicts (overflow counted verdicts_dropped).
  std::size_t max_recorded_verdicts = 1 << 20;
  /// Test hook invoked inside each shard worker (stall injection).
  std::function<void(std::size_t shard)> shard_hook;
  /// Degradation target: quarantined shards classify through this instead
  /// of the primary (counted fallback_classified). Null disables routing.
  std::shared_ptr<const FlowClassifier> fallback;
  /// Deterministic fault injection (worker stalls, flow-table allocation
  /// failures). Not owned; must outlive the engine. Null injects nothing.
  core::ChaosInjector* chaos = nullptr;
};

class ServeEngine {
 public:
  ServeEngine(ServeConfig cfg, std::shared_ptr<const FlowClassifier> classifier);
  ~ServeEngine();
  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Enqueues one packet. False (with packets_rejected++) when the bounded
  /// queue is full — the explicit backpressure signal. Thread-safe.
  bool offer(const net::Packet& pkt);

  /// Drains and processes one batch. Returns packets processed (0 when the
  /// queue was empty). Concurrent pump() calls serialize. Thread-safe
  /// against offer(), stats(), evict_idle_now() and flush().
  std::size_t pump();

  /// pump() until the queue is empty.
  void drain();

  /// Evicts flows idle at `now_usec` (stream time) across all shards —
  /// the maintenance path a background evictor thread drives. Returns the
  /// number evicted.
  std::size_t evict_idle_now(std::uint64_t now_usec);

  /// Evicts and classifies everything still resident.
  void flush();

  [[nodiscard]] ServeStats stats() const;
  [[nodiscard]] ShedStage stage() const {
    return static_cast<ShedStage>(stage_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] const ServeConfig& config() const { return cfg_; }
  [[nodiscard]] const ShardedFlowTable& table() const { return table_; }

  /// Moves out the recorded verdicts (record_verdicts mode).
  std::vector<Verdict> take_verdicts();

  /// Checkpoints the full engine state (flows + LRU order, accumulators,
  /// counters, queue, verdict buffer, stream position) to `path` via
  /// atomic temp-then-rename. `io` defaults to the real filesystem —
  /// inject core::ChaosIo to exercise disk faults. Quiesces rounds
  /// (takes the pump lock); call it between pumps. Defined in snapshot.cpp.
  SnapshotOutcome save_snapshot(const std::string& path,
                                core::Io* io = nullptr);

  /// Restores a checkpoint into this engine (whose config must match the
  /// snapshot's fingerprint). All-or-nothing: the file is parsed and
  /// validated in full before any state is touched, so a failed restore
  /// leaves the engine exactly as it was (a counted cold start).
  SnapshotOutcome restore_snapshot(const std::string& path,
                                   core::Io* io = nullptr);

  /// Recovery-path bookkeeping (separate from ServeCounters by design).
  [[nodiscard]] RecoveryStats recovery() const;

  /// Opaque replay cursor persisted in snapshots: the harness records how
  /// far into its input stream it has offered packets, and resumes from
  /// here after a restore. The engine itself never interprets it.
  void set_stream_pos(std::uint64_t pos) {
    stream_pos_.store(pos, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t stream_pos() const {
    return stream_pos_.load(std::memory_order_relaxed);
  }

  /// True while shard `s` routes classifications to cfg.fallback.
  [[nodiscard]] bool quarantined(std::size_t s) const {
    return quarantined_[s].load(std::memory_order_relaxed) != 0;
  }

 private:
  struct QueueEntry {
    net::Packet pkt;
    std::uint64_t enq_ns = 0;
  };

  /// Per-shard, per-round accumulation merged serially in shard order.
  struct RoundDelta {
    ServeCounters counters;
    LatencyHistogram latency;
    std::vector<Verdict> verdicts;
    std::vector<std::uint32_t> requeued;  // batch indices an abort skipped
  };

  void process_shard(std::size_t shard, const std::vector<QueueEntry>& batch,
                     const std::vector<std::uint32_t>& order,
                     const std::vector<net::FlowKey>& keys,
                     const std::vector<float>& features,
                     std::uint64_t round_now, ShedStage stage,
                     RoundDelta& delta);
  void classify_into(std::size_t shard, const FlowView& v,
                     VerdictReason reason, RoundDelta& delta);
  ShedStage evaluate_stage(std::size_t queued, std::size_t live);
  void merge_deltas(std::vector<RoundDelta>& deltas);
  void watchdog_loop();

  ServeConfig cfg_;
  std::shared_ptr<const FlowClassifier> classifier_;
  ShardedFlowTable table_;
  std::size_t feature_dim_ = 0;

  // Ingest queue.
  mutable std::mutex queue_mu_;
  std::deque<QueueEntry> queue_;
  std::uint64_t peak_queue_depth_ = 0;

  // offer()-side counters (atomic: hot path, no round context).
  std::atomic<std::uint64_t> offered_{0};
  std::atomic<std::uint64_t> rejected_{0};

  // Round-side state (stats_mu_ guards stats_ and verdicts_).
  mutable std::mutex stats_mu_;
  ServeStats stats_;
  std::vector<Verdict> verdicts_;

  std::mutex pump_mu_;  // serializes pump()/flush() rounds
  std::atomic<std::uint64_t> virtual_now_usec_{0};
  std::atomic<std::uint32_t> stage_{0};
  std::uint64_t peak_flows_ = 0;  // under stats_mu_

  // Watchdog + escalation ladder.
  std::atomic<std::uint64_t> heartbeat_{0};
  std::atomic<bool> round_active_{false};
  std::atomic<bool> stop_watchdog_{false};
  std::condition_variable watchdog_cv_;
  std::mutex watchdog_mu_;
  std::thread watchdog_;
  std::vector<std::atomic<std::uint8_t>> shard_active_;   // mid-round markers
  std::vector<std::atomic<std::uint8_t>> quarantined_;    // fallback routing
  std::vector<std::atomic<std::uint32_t>> clean_rounds_;  // toward recovery
  std::atomic<bool> round_abort_{false};  // cooperative round restart

  // Crash tolerance (snapshot.cpp).
  std::atomic<std::uint64_t> stream_pos_{0};
  mutable std::mutex recovery_mu_;
  RecoveryStats recovery_;
};

}  // namespace sugar::serve
