// Crash-tolerant serving: the snapshot format and error taxonomy for
// ServeEngine::save_snapshot / restore_snapshot.
//
// Format (version 1, little-endian throughout):
//
//   magic "SUGS" | u32 version | section*
//   section := u32 id | u64 payload_len | payload bytes | u32 crc32(payload)
//
// Sections (all required, each appearing exactly once): config fingerprint,
// per-shard flow records in LRU tail→head order, monotone counters, engine
// scalars (virtual stream time, shed stage, offer-side atomics, peaks,
// stream position), latency-histogram buckets, queued packets, and the
// un-taken verdict buffer. Floats are serialized as raw IEEE-754 bits, so a
// restored feature accumulator is bit-identical to the saved one.
//
// The CRC is net::crc32 (IEEE 802.3) per section, so a bit flip pinpoints
// the damaged section instead of invalidating the whole file. Restore
// parses and validates the ENTIRE file into a staging image before touching
// any engine state — a corrupted snapshot is rejected with the right
// SnapshotError and the engine degrades to a counted cold start, never to a
// half-restored table.
//
// Determinism: a snapshot taken between pump() rounds captures everything
// the next round depends on (flows + LRU order, accumulators, stream
// clock, queue contents, shed stage, counters, verdicts). Restoring it
// into a fresh engine with the same config and replaying the stream from
// the recorded position therefore produces bit-identical verdicts and
// counters to the uninterrupted run, at any SUGAR_THREADS. Recovery
// bookkeeping lives in RecoveryStats, NOT ServeCounters, so the
// crashed-and-restored run's counters stay comparable to the baseline's.
#pragma once

#include <cstdint>
#include <string>

#include "core/artifact.h"

namespace sugar::serve {

inline constexpr char kSnapshotMagic[4] = {'S', 'U', 'G', 'S'};
inline constexpr std::uint32_t kSnapshotVersion = 1;

enum class SnapshotError : std::uint8_t {
  kNone = 0,
  kIo,              // file unreadable / unwritable
  kBadMagic,        // not a snapshot file
  kBadVersion,      // format version this build does not speak
  kTruncated,       // file ends mid-structure or lacks a required section
  kBadSection,      // section malformed (unknown id, duplicate, bad payload)
  kSectionCrc,      // payload bytes fail their checksum (bit flip)
  kConfigMismatch,  // snapshot was taken under an incompatible ServeConfig
  kTrailingGarbage, // valid sections followed by extra bytes
};
const char* to_string(SnapshotError e);

struct SnapshotOutcome {
  SnapshotError error = SnapshotError::kNone;
  std::string message;  // human-readable detail (path, section, sizes)

  [[nodiscard]] bool ok() const { return error == SnapshotError::kNone; }
};

/// Recovery-path bookkeeping. Deliberately NOT part of ServeCounters: a
/// restored run must stay bit-identical to an uninterrupted one, so the
/// counters the identity check compares cannot know a crash happened.
struct RecoveryStats {
  std::uint64_t snapshots_saved = 0;
  std::uint64_t save_failures = 0;
  std::uint64_t snapshots_restored = 0;
  std::uint64_t restore_failures = 0;
  std::uint64_t cold_starts = 0;  // failed restores that fell back to empty
  SnapshotError last_error = SnapshotError::kNone;

  [[nodiscard]] core::Json to_json() const;
};

}  // namespace sugar::serve
