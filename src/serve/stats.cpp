#include "serve/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

namespace sugar::serve {

namespace {

std::uint64_t saturating_add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  return a > max - b ? max : a + b;
}

}  // namespace

std::size_t LatencyHistogram::bucket_of(std::uint64_t ns) {
  return std::min<std::size_t>(kBuckets - 1,
                               static_cast<std::size_t>(std::bit_width(ns)));
}

void LatencyHistogram::record(std::uint64_t ns) {
  counts_[bucket_of(ns)] = saturating_add(counts_[bucket_of(ns)], 1);
  total_ = saturating_add(total_, 1);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t b = 0; b < kBuckets; ++b)
    counts_[b] = saturating_add(counts_[b], other.counts_[b]);
  total_ = saturating_add(total_, other.total_);
}

void LatencyHistogram::restore(
    const std::array<std::uint64_t, kBuckets>& counts) {
  counts_ = counts;
  total_ = 0;
  for (std::uint64_t c : counts_) total_ = saturating_add(total_, c);
}

double LatencyHistogram::quantile_ns(double q) const {
  if (total_ == 0) return 0;
  const double target = q * static_cast<double>(total_);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cum += counts_[b];
    if (static_cast<double>(cum) >= target) {
      if (b == 0) return 0.5;
      // Geometric midpoint of [2^(b-1), 2^b).
      return 1.5 * std::ldexp(1.0, static_cast<int>(b) - 1);
    }
  }
  return std::ldexp(1.0, static_cast<int>(kBuckets) - 1);
}

core::Json LatencyHistogram::to_json() const {
  core::Json j = core::Json::object();
  j.set("count", core::Json(static_cast<std::size_t>(total_)));
  j.set("p50_us", core::Json(quantile_ns(0.50) / 1e3));
  j.set("p90_us", core::Json(quantile_ns(0.90) / 1e3));
  j.set("p99_us", core::Json(quantile_ns(0.99) / 1e3));
  j.set("p999_us", core::Json(quantile_ns(0.999) / 1e3));
  return j;
}

namespace {

/// Every counter field, in declaration order. One table drives merge,
/// serialization and the monotonicity check so a newly added counter
/// cannot be forgotten in any of them.
struct CounterField {
  const char* name;
  std::uint64_t ServeCounters::* member;
};

constexpr CounterField kCounterFields[] = {
    {"packets_offered", &ServeCounters::packets_offered},
    {"packets_rejected", &ServeCounters::packets_rejected},
    {"packets_processed", &ServeCounters::packets_processed},
    {"packets_malformed", &ServeCounters::packets_malformed},
    {"packets_keyless", &ServeCounters::packets_keyless},
    {"packets_shed_new_flow", &ServeCounters::packets_shed_new_flow},
    {"flows_created", &ServeCounters::flows_created},
    {"flows_rejected_full", &ServeCounters::flows_rejected_full},
    {"evicted_idle", &ServeCounters::evicted_idle},
    {"evicted_early", &ServeCounters::evicted_early},
    {"evicted_sampled", &ServeCounters::evicted_sampled},
    {"evicted_flush", &ServeCounters::evicted_flush},
    {"classified_at_n", &ServeCounters::classified_at_n},
    {"classified_on_evict", &ServeCounters::classified_on_evict},
    {"evicted_unclassified", &ServeCounters::evicted_unclassified},
    {"verdicts_dropped", &ServeCounters::verdicts_dropped},
    {"shed_stage_enters", &ServeCounters::shed_stage_enters},
    {"shed_stage_exits", &ServeCounters::shed_stage_exits},
    {"rounds", &ServeCounters::rounds},
    {"watchdog_stalls", &ServeCounters::watchdog_stalls},
    {"watchdog_quarantines", &ServeCounters::watchdog_quarantines},
    {"watchdog_recoveries", &ServeCounters::watchdog_recoveries},
    {"watchdog_round_aborts", &ServeCounters::watchdog_round_aborts},
    {"packets_requeued", &ServeCounters::packets_requeued},
    {"fallback_classified", &ServeCounters::fallback_classified},
};

}  // namespace

void ServeCounters::merge(const ServeCounters& other) {
  for (const auto& f : kCounterFields) this->*f.member += other.*f.member;
}

core::Json ServeCounters::to_json() const {
  core::Json j = core::Json::object();
  for (const auto& f : kCounterFields)
    j.set(f.name, core::Json(static_cast<std::size_t>(this->*f.member)));
  return j;
}

bool ServeCounters::monotone_le(const ServeCounters& later) const {
  for (const auto& f : kCounterFields)
    if (later.*f.member < this->*f.member) return false;
  return true;
}

std::vector<std::uint64_t> ServeCounters::to_values() const {
  std::vector<std::uint64_t> out;
  out.reserve(std::size(kCounterFields));
  for (const auto& f : kCounterFields) out.push_back(this->*f.member);
  return out;
}

bool ServeCounters::from_values(const std::vector<std::uint64_t>& values) {
  if (values.size() != std::size(kCounterFields)) return false;
  std::size_t i = 0;
  for (const auto& f : kCounterFields) this->*f.member = values[i++];
  return true;
}

core::Json ServeGauges::to_json() const {
  core::Json j = core::Json::object();
  j.set("current_flows", core::Json(static_cast<std::size_t>(current_flows)));
  j.set("peak_flows", core::Json(static_cast<std::size_t>(peak_flows)));
  j.set("queue_depth", core::Json(static_cast<std::size_t>(queue_depth)));
  j.set("peak_queue_depth",
        core::Json(static_cast<std::size_t>(peak_queue_depth)));
  j.set("table_bytes", core::Json(static_cast<std::size_t>(table_bytes)));
  j.set("table_bytes_cap",
        core::Json(static_cast<std::size_t>(table_bytes_cap)));
  j.set("shed_stage", core::Json(static_cast<std::size_t>(shed_stage)));
  j.set("virtual_now_usec",
        core::Json(static_cast<std::size_t>(virtual_now_usec)));
  return j;
}

core::Json ServeStats::to_json() const {
  core::Json j = core::Json::object();
  j.set("counters", counters.to_json());
  j.set("gauges", gauges.to_json());
  j.set("latency", latency.to_json());
  return j;
}

}  // namespace sugar::serve
