#include "serve/classifier.h"

#include <algorithm>

namespace sugar::serve {

ForestFlowClassifier::ForestFlowClassifier(ml::RandomForest forest,
                                           std::size_t feature_dim,
                                           int num_classes)
    : forest_(std::move(forest)), dim_(feature_dim), classes_(num_classes) {}

int ForestFlowClassifier::classify(const float* features) const {
  // Same majority vote as RandomForest::predict, but single-row and inline:
  // shard workers call this from inside the engine's parallel_for, where a
  // nested pool dispatch would serialize anyway.
  int votes[256] = {};
  const int classes = std::min(classes_, 256);
  for (const auto& tree : forest_.trees()) {
    const int c = tree.predict_class(features);
    if (c >= 0 && c < classes) ++votes[c];
  }
  return static_cast<int>(std::max_element(votes, votes + classes) - votes);
}

std::unique_ptr<ForestFlowClassifier> fit_forest_classifier(
    const ml::Matrix& x, const std::vector<int>& y, int num_classes,
    ml::ForestConfig cfg) {
  ml::RandomForest forest(cfg);
  forest.fit(x, y, num_classes);
  return std::make_unique<ForestFlowClassifier>(std::move(forest), x.cols(),
                                                num_classes);
}

}  // namespace sugar::serve
