// Snapshot serialization for ServeEngine (format documented in snapshot.h).
// Defined here rather than engine.cpp so the whole codec — writer, reader,
// staging image, validation — lives in one translation unit.
#include "serve/snapshot.h"

#include <bit>
#include <chrono>
#include <cstring>
#include <unordered_set>

#include "core/io.h"
#include "core/trace.h"
#include "core/crc32.h"
#include "serve/engine.h"

namespace sugar::serve {

const char* to_string(SnapshotError e) {
  switch (e) {
    case SnapshotError::kNone: return "none";
    case SnapshotError::kIo: return "io";
    case SnapshotError::kBadMagic: return "bad-magic";
    case SnapshotError::kBadVersion: return "bad-version";
    case SnapshotError::kTruncated: return "truncated";
    case SnapshotError::kBadSection: return "bad-section";
    case SnapshotError::kSectionCrc: return "section-crc";
    case SnapshotError::kConfigMismatch: return "config-mismatch";
    case SnapshotError::kTrailingGarbage: return "trailing-garbage";
  }
  return "?";
}

core::Json RecoveryStats::to_json() const {
  core::Json j = core::Json::object();
  j.set("snapshots_saved", core::Json(static_cast<std::size_t>(snapshots_saved)));
  j.set("save_failures", core::Json(static_cast<std::size_t>(save_failures)));
  j.set("snapshots_restored",
        core::Json(static_cast<std::size_t>(snapshots_restored)));
  j.set("restore_failures",
        core::Json(static_cast<std::size_t>(restore_failures)));
  j.set("cold_starts", core::Json(static_cast<std::size_t>(cold_starts)));
  j.set("last_error", core::Json(to_string(last_error)));
  return j;
}

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Section ids, written (and required on read) in strictly ascending order.
enum : std::uint32_t {
  kSecConfig = 1,
  kSecFlows = 2,
  kSecCounters = 3,
  kSecEngine = 4,
  kSecLatency = 5,
  kSecQueue = 6,
  kSecVerdicts = 7,
  kSecCount = 7,
};

// --- little-endian writer -------------------------------------------------

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}
void put_u16(std::string& out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) put_u8(out, static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) put_u8(out, static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) put_u8(out, static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_f32(std::string& out, float v) {
  put_u32(out, std::bit_cast<std::uint32_t>(v));
}
void put_bytes(std::string& out, const std::uint8_t* p, std::size_t n) {
  out.append(reinterpret_cast<const char*>(p), n);
}

void put_key(std::string& out, const net::FlowKey& k) {
  put_u8(out, k.a_ip.is_v6 ? 1 : 0);
  put_bytes(out, k.a_ip.bytes.data(), k.a_ip.bytes.size());
  put_u8(out, k.b_ip.is_v6 ? 1 : 0);
  put_bytes(out, k.b_ip.bytes.data(), k.b_ip.bytes.size());
  put_u16(out, k.a_port);
  put_u16(out, k.b_port);
  put_u8(out, k.proto);
}

// --- bounds-checked reader ------------------------------------------------

struct Reader {
  const std::uint8_t* p = nullptr;
  std::size_t n = 0;
  std::size_t pos = 0;

  [[nodiscard]] std::size_t remaining() const { return n - pos; }

  bool get_u8(std::uint8_t& v) {
    if (remaining() < 1) return false;
    v = p[pos++];
    return true;
  }
  bool get_u16(std::uint16_t& v) {
    if (remaining() < 2) return false;
    v = 0;
    for (int i = 0; i < 2; ++i) v |= static_cast<std::uint16_t>(p[pos++]) << (8 * i);
    return true;
  }
  bool get_u32(std::uint32_t& v) {
    if (remaining() < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[pos++]) << (8 * i);
    return true;
  }
  bool get_u64(std::uint64_t& v) {
    if (remaining() < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[pos++]) << (8 * i);
    return true;
  }
  bool get_f32(float& v) {
    std::uint32_t bits = 0;
    if (!get_u32(bits)) return false;
    v = std::bit_cast<float>(bits);
    return true;
  }
  bool get_bytes(std::uint8_t* out, std::size_t count) {
    if (remaining() < count) return false;
    std::memcpy(out, p + pos, count);
    pos += count;
    return true;
  }
  bool get_key(net::FlowKey& k) {
    std::uint8_t v6 = 0;
    if (!get_u8(v6)) return false;
    k.a_ip.is_v6 = v6 != 0;
    if (!get_bytes(k.a_ip.bytes.data(), k.a_ip.bytes.size())) return false;
    if (!get_u8(v6)) return false;
    k.b_ip.is_v6 = v6 != 0;
    if (!get_bytes(k.b_ip.bytes.data(), k.b_ip.bytes.size())) return false;
    return get_u16(k.a_port) && get_u16(k.b_port) && get_u8(k.proto);
  }
};

void append_section(std::string& out, std::uint32_t id,
                    const std::string& payload) {
  put_u32(out, id);
  put_u64(out, payload.size());
  out.append(payload);
  put_u32(out, core::crc32({reinterpret_cast<const std::uint8_t*>(payload.data()),
                           payload.size()}));
}

SnapshotOutcome fail(SnapshotError e, std::string message) {
  return SnapshotOutcome{e, std::move(message)};
}

}  // namespace

// --- save -----------------------------------------------------------------

SnapshotOutcome ServeEngine::save_snapshot(const std::string& path,
                                           core::Io* io) {
  SUGAR_TRACE_SPAN("serve.snapshot.save");
  SnapshotOutcome outcome;
  {
    // Quiesce: no round in flight while we walk the tables.
    std::lock_guard<std::mutex> pump_lock(pump_mu_);

    std::string body;
    body.append(kSnapshotMagic, sizeof(kSnapshotMagic));
    put_u32(body, kSnapshotVersion);

    // 1. Config fingerprint.
    std::string sec;
    put_u64(sec, table_.shard_count());
    put_u64(sec, table_.config().max_flows);
    put_u64(sec, feature_dim_);
    put_u64(sec, table_.config().classify_at);
    put_u64(sec, cfg_.queue_capacity);
    put_u64(sec, cfg_.batch_size);
    put_u64(sec, cfg_.min_classify_packets);
    put_u64(sec, cfg_.idle_timeout_usec);
    put_u64(sec, ServeCounters{}.to_values().size());
    put_u8(sec, cfg_.record_verdicts ? 1 : 0);
    append_section(body, kSecConfig, sec);

    // 2. Flows, per shard in LRU tail→head order (restore_flow inserts at
    // the head, so replaying in this order rebuilds the identical chain).
    sec.clear();
    put_u64(sec, table_.shard_count());
    for (std::size_t s = 0; s < table_.shard_count(); ++s) {
      std::string flows;
      std::uint64_t count = 0;
      table_.for_each_lru(s, [&](const FlowRecord& rec) {
        ++count;
        put_key(flows, rec.key);
        put_u64(flows, rec.first_ts_usec);
        put_u64(flows, rec.last_ts_usec);
        put_u32(flows, rec.packets);
        put_u32(flows, rec.feature_packets);
        put_u8(flows, rec.classified ? 1 : 0);
        for (float f : rec.feature_sum) put_f32(flows, f);
      });
      put_u64(sec, count);
      sec.append(flows);
    }
    append_section(body, kSecFlows, sec);

    std::uint64_t peak_queue = 0;
    std::uint64_t peak_flows = 0;

    // 3. Counters; 7. verdicts staged now (both under stats_mu_).
    sec.clear();
    std::string verdict_sec;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      const auto values = stats_.counters.to_values();
      put_u64(sec, values.size());
      for (std::uint64_t v : values) put_u64(sec, v);
      peak_flows = peak_flows_;
      put_u64(verdict_sec, verdicts_.size());
      for (const Verdict& v : verdicts_) {
        put_key(verdict_sec, v.key);
        put_u32(verdict_sec, static_cast<std::uint32_t>(v.label));
        put_u32(verdict_sec, v.packets);
        put_u32(verdict_sec, v.feature_packets);
        put_u8(verdict_sec, static_cast<std::uint8_t>(v.reason));
        put_u64(verdict_sec, v.first_ts_usec);
        put_u64(verdict_sec, v.last_ts_usec);
      }
    }
    append_section(body, kSecCounters, sec);

    // 6. Queue staged under queue_mu_ (written after engine + latency).
    std::string queue_sec;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      peak_queue = peak_queue_depth_;
      put_u64(queue_sec, queue_.size());
      for (const QueueEntry& e : queue_) {
        put_u64(queue_sec, e.pkt.ts_usec);
        put_u64(queue_sec, e.pkt.data.size());
        put_bytes(queue_sec, e.pkt.data.data(), e.pkt.data.size());
      }
    }

    // 4. Engine scalars.
    sec.clear();
    put_u64(sec, virtual_now_usec_.load(std::memory_order_relaxed));
    put_u32(sec, stage_.load(std::memory_order_relaxed));
    put_u64(sec, offered_.load(std::memory_order_relaxed));
    put_u64(sec, rejected_.load(std::memory_order_relaxed));
    put_u64(sec, peak_queue);
    put_u64(sec, peak_flows);
    put_u64(sec, stream_pos_.load(std::memory_order_relaxed));
    append_section(body, kSecEngine, sec);

    // 5. Latency buckets (raw; restore recomputes the total).
    sec.clear();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      for (std::uint64_t b : stats_.latency.buckets()) put_u64(sec, b);
    }
    append_section(body, kSecLatency, sec);

    append_section(body, kSecQueue, queue_sec);
    append_section(body, kSecVerdicts, verdict_sec);

    std::string err;
    if (!core::atomic_write_file(path, body, &err, io)) {
      outcome = fail(SnapshotError::kIo, err);
    }
  }

  std::lock_guard<std::mutex> lock(recovery_mu_);
  if (outcome.ok()) {
    ++recovery_.snapshots_saved;
    SUGAR_TRACE_COUNT("serve.snapshot.saved", 1);
  } else {
    ++recovery_.save_failures;
    recovery_.last_error = outcome.error;
    SUGAR_TRACE_COUNT("serve.snapshot.save_failures", 1);
  }
  return outcome;
}

// --- restore --------------------------------------------------------------

namespace {

/// Fully parsed, validated snapshot — built before any engine state is
/// touched so restore is all-or-nothing.
struct StagedSnapshot {
  std::vector<std::vector<FlowRecord>> shards;
  std::vector<std::uint64_t> counters;
  std::array<std::uint64_t, LatencyHistogram::kBuckets> latency{};
  std::uint64_t virtual_now_usec = 0;
  std::uint32_t stage = 0;
  std::uint64_t offered = 0;
  std::uint64_t rejected = 0;
  std::uint64_t peak_queue_depth = 0;
  std::uint64_t peak_flows = 0;
  std::uint64_t stream_pos = 0;
  std::vector<net::Packet> queue;
  std::vector<Verdict> verdicts;
};

}  // namespace

SnapshotOutcome ServeEngine::restore_snapshot(const std::string& path,
                                              core::Io* io) {
  SUGAR_TRACE_SPAN("serve.snapshot.restore");
  core::Io& fs = io ? *io : core::real_io();

  StagedSnapshot staged;
  SnapshotOutcome outcome;
  // Parse phase — no engine state is touched until the whole file checks
  // out, so any failure below leaves this engine exactly as constructed.
  [&]() {
    std::string data;
    std::string err;
    if (!fs.read_file(path, data, &err)) {
      outcome = fail(SnapshotError::kIo, err);
      return;
    }
    Reader r{reinterpret_cast<const std::uint8_t*>(data.data()), data.size(), 0};

    char magic[4] = {};
    if (!r.get_bytes(reinterpret_cast<std::uint8_t*>(magic), 4)) {
      outcome = fail(SnapshotError::kTruncated, "file shorter than header");
      return;
    }
    if (std::memcmp(magic, kSnapshotMagic, 4) != 0) {
      outcome = fail(SnapshotError::kBadMagic, "not a snapshot file: " + path);
      return;
    }
    std::uint32_t version = 0;
    if (!r.get_u32(version)) {
      outcome = fail(SnapshotError::kTruncated, "file shorter than header");
      return;
    }
    if (version != kSnapshotVersion) {
      outcome = fail(SnapshotError::kBadVersion,
                     "snapshot version " + std::to_string(version) +
                         ", this build speaks " +
                         std::to_string(kSnapshotVersion));
      return;
    }

    std::uint32_t last_id = 0;
    bool seen[kSecCount + 1] = {};
    std::size_t feature_dim = 0;
    while (r.remaining() > 0) {
      if (last_id == kSecCount) {
        // Every section is present and ids ascend strictly, so nothing
        // legal can follow the last one.
        outcome = fail(SnapshotError::kTrailingGarbage,
                       std::to_string(r.remaining()) +
                           " extra bytes after the final section");
        return;
      }
      std::uint32_t id = 0;
      std::uint64_t len = 0;
      if (!r.get_u32(id) || !r.get_u64(len)) {
        outcome = fail(SnapshotError::kTruncated, "file ends mid-section-header");
        return;
      }
      if (id < 1 || id > kSecCount || id <= last_id) {
        outcome = fail(SnapshotError::kBadSection,
                       "unexpected section id " + std::to_string(id));
        return;
      }
      if (len > r.remaining() || r.remaining() - len < 4) {
        outcome = fail(SnapshotError::kTruncated,
                       "section " + std::to_string(id) + " claims " +
                           std::to_string(len) + " bytes, " +
                           std::to_string(r.remaining()) + " remain");
        return;
      }
      const std::uint8_t* payload = r.p + r.pos;
      r.pos += len;
      std::uint32_t crc = 0;
      r.get_u32(crc);
      if (core::crc32({payload, len}) != crc) {
        outcome = fail(SnapshotError::kSectionCrc,
                       "section " + std::to_string(id) + " checksum mismatch");
        return;
      }
      seen[id] = true;
      last_id = id;

      Reader sr{payload, static_cast<std::size_t>(len), 0};
      auto bad = [&](const char* what) {
        outcome = fail(SnapshotError::kBadSection,
                       "section " + std::to_string(id) + ": " + what);
      };
      switch (id) {
        case kSecConfig: {
          std::uint64_t shards = 0, max_flows = 0, dim = 0, classify_at = 0;
          std::uint64_t queue_cap = 0, batch = 0, min_classify = 0, idle = 0;
          std::uint64_t arity = 0;
          std::uint8_t record = 0;
          if (!sr.get_u64(shards) || !sr.get_u64(max_flows) ||
              !sr.get_u64(dim) || !sr.get_u64(classify_at) ||
              !sr.get_u64(queue_cap) || !sr.get_u64(batch) ||
              !sr.get_u64(min_classify) || !sr.get_u64(idle) ||
              !sr.get_u64(arity) || !sr.get_u8(record)) {
            bad("payload too short");
            return;
          }
          const bool matches =
              shards == table_.shard_count() &&
              max_flows == table_.config().max_flows &&
              dim == feature_dim_ &&
              classify_at == table_.config().classify_at &&
              queue_cap == cfg_.queue_capacity && batch == cfg_.batch_size &&
              min_classify == cfg_.min_classify_packets &&
              idle == cfg_.idle_timeout_usec &&
              arity == ServeCounters{}.to_values().size() &&
              (record != 0) == cfg_.record_verdicts;
          if (!matches) {
            outcome = fail(SnapshotError::kConfigMismatch,
                           "snapshot taken under a different ServeConfig "
                           "(e.g. shards " + std::to_string(shards) + " vs " +
                               std::to_string(table_.shard_count()) + ")");
            return;
          }
          feature_dim = dim;
          break;
        }
        case kSecFlows: {
          if (!seen[kSecConfig]) {
            bad("flows before config");
            return;
          }
          std::uint64_t shards = 0;
          if (!sr.get_u64(shards) || shards != table_.shard_count()) {
            bad("shard count mismatch");
            return;
          }
          staged.shards.resize(shards);
          for (std::uint64_t s = 0; s < shards; ++s) {
            std::uint64_t count = 0;
            if (!sr.get_u64(count) || count > table_.shard_capacity()) {
              bad("per-shard flow count out of range");
              return;
            }
            std::unordered_set<net::FlowKey, net::FlowKeyHash> keys;
            staged.shards[s].reserve(count);
            for (std::uint64_t f = 0; f < count; ++f) {
              FlowRecord rec;
              std::uint8_t classified = 0;
              rec.feature_sum.resize(feature_dim);
              if (!sr.get_key(rec.key) || !sr.get_u64(rec.first_ts_usec) ||
                  !sr.get_u64(rec.last_ts_usec) || !sr.get_u32(rec.packets) ||
                  !sr.get_u32(rec.feature_packets) ||
                  !sr.get_u8(classified)) {
                bad("flow record truncated");
                return;
              }
              for (std::size_t d = 0; d < feature_dim; ++d)
                if (!sr.get_f32(rec.feature_sum[d])) {
                  bad("flow record truncated");
                  return;
                }
              rec.classified = classified != 0;
              if (table_.shard_of(rec.key) != s || !keys.insert(rec.key).second) {
                bad("flow key in the wrong shard or duplicated");
                return;
              }
              staged.shards[s].push_back(std::move(rec));
            }
          }
          break;
        }
        case kSecCounters: {
          std::uint64_t count = 0;
          if (!sr.get_u64(count) ||
              count != ServeCounters{}.to_values().size()) {
            outcome = fail(SnapshotError::kConfigMismatch,
                           "counter arity " + std::to_string(count) +
                               " from a different build");
            return;
          }
          staged.counters.resize(count);
          for (std::uint64_t i = 0; i < count; ++i)
            if (!sr.get_u64(staged.counters[i])) {
              bad("counter values truncated");
              return;
            }
          break;
        }
        case kSecEngine: {
          if (!sr.get_u64(staged.virtual_now_usec) ||
              !sr.get_u32(staged.stage) || !sr.get_u64(staged.offered) ||
              !sr.get_u64(staged.rejected) ||
              !sr.get_u64(staged.peak_queue_depth) ||
              !sr.get_u64(staged.peak_flows) ||
              !sr.get_u64(staged.stream_pos)) {
            bad("payload too short");
            return;
          }
          if (staged.stage > 3) {
            bad("shed stage out of range");
            return;
          }
          break;
        }
        case kSecLatency: {
          for (std::uint64_t& b : staged.latency)
            if (!sr.get_u64(b)) {
              bad("latency buckets truncated");
              return;
            }
          break;
        }
        case kSecQueue: {
          std::uint64_t count = 0;
          if (!sr.get_u64(count) || count > cfg_.queue_capacity + cfg_.batch_size) {
            bad("queue depth out of range");
            return;
          }
          staged.queue.resize(count);
          for (std::uint64_t i = 0; i < count; ++i) {
            std::uint64_t bytes = 0;
            if (!sr.get_u64(staged.queue[i].ts_usec) || !sr.get_u64(bytes) ||
                bytes > sr.remaining()) {
              bad("queued packet truncated");
              return;
            }
            staged.queue[i].data.resize(bytes);
            sr.get_bytes(staged.queue[i].data.data(), bytes);
          }
          break;
        }
        case kSecVerdicts: {
          std::uint64_t count = 0;
          if (!sr.get_u64(count) || count > cfg_.max_recorded_verdicts) {
            bad("verdict count out of range");
            return;
          }
          staged.verdicts.resize(count);
          for (std::uint64_t i = 0; i < count; ++i) {
            Verdict& v = staged.verdicts[i];
            std::uint32_t label = 0;
            std::uint8_t reason = 0;
            if (!sr.get_key(v.key) || !sr.get_u32(label) ||
                !sr.get_u32(v.packets) || !sr.get_u32(v.feature_packets) ||
                !sr.get_u8(reason) || !sr.get_u64(v.first_ts_usec) ||
                !sr.get_u64(v.last_ts_usec)) {
              bad("verdict record truncated");
              return;
            }
            if (reason > static_cast<std::uint8_t>(VerdictReason::kFlush)) {
              bad("verdict reason out of range");
              return;
            }
            v.label = static_cast<int>(label);
            v.reason = static_cast<VerdictReason>(reason);
          }
          break;
        }
        default:
          bad("unhandled section");
          return;
      }
      if (sr.remaining() != 0) {
        outcome = fail(SnapshotError::kTrailingGarbage,
                       "section " + std::to_string(id) + " has " +
                           std::to_string(sr.remaining()) + " extra bytes");
        return;
      }
    }
    for (std::uint32_t id = 1; id <= kSecCount; ++id)
      if (!seen[id]) {
        outcome = fail(SnapshotError::kTruncated,
                       "section " + std::to_string(id) + " missing");
        return;
      }
  }();

  if (!outcome.ok()) {
    // Counted cold start: the engine stays in its current (fresh) state.
    std::lock_guard<std::mutex> lock(recovery_mu_);
    ++recovery_.restore_failures;
    ++recovery_.cold_starts;
    recovery_.last_error = outcome.error;
    SUGAR_TRACE_COUNT("serve.snapshot.cold_starts", 1);
    return outcome;
  }

  // Apply phase — every input was validated above, so nothing here fails.
  {
    std::lock_guard<std::mutex> pump_lock(pump_mu_);
    for (std::size_t s = 0; s < table_.shard_count(); ++s) {
      table_.evict_all(s, ShardedFlowTable::EvictFn{});
      for (const FlowRecord& rec : staged.shards[s]) table_.restore_flow(s, rec);
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      queue_.clear();
      const std::uint64_t ns = now_ns();
      for (net::Packet& pkt : staged.queue)
        queue_.push_back(QueueEntry{std::move(pkt), ns});
      peak_queue_depth_ = staged.peak_queue_depth;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.counters.from_values(staged.counters);
      stats_.latency.restore(staged.latency);
      verdicts_ = std::move(staged.verdicts);
      peak_flows_ = staged.peak_flows;
    }
    offered_.store(staged.offered, std::memory_order_relaxed);
    rejected_.store(staged.rejected, std::memory_order_relaxed);
    virtual_now_usec_.store(staged.virtual_now_usec, std::memory_order_relaxed);
    stage_.store(staged.stage, std::memory_order_relaxed);
    stream_pos_.store(staged.stream_pos, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(recovery_mu_);
    ++recovery_.snapshots_restored;
  }
  SUGAR_TRACE_COUNT("serve.snapshot.restored", 1);
  return outcome;
}

RecoveryStats ServeEngine::recovery() const {
  std::lock_guard<std::mutex> lock(recovery_mu_);
  return recovery_;
}

}  // namespace sugar::serve
