#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "core/chaos.h"
#include "core/threadpool.h"
#include "core/trace.h"
#include "net/parser.h"

namespace sugar::serve {
namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-thread mean-feature scratch; sized on first use per engine dim.
std::vector<float>& mean_scratch(std::size_t dim) {
  thread_local std::vector<float> scratch;
  if (scratch.size() < dim) scratch.resize(dim);
  return scratch;
}

}  // namespace

const char* to_string(ShedStage s) {
  switch (s) {
    case ShedStage::kNone: return "none";
    case ShedStage::kDropNewFlows: return "drop-new-flows";
    case ShedStage::kEarlyClassify: return "early-classify";
    case ShedStage::kSampleEvict: return "sample-evict";
  }
  return "?";
}

const char* to_string(VerdictReason r) {
  switch (r) {
    case VerdictReason::kFirstN: return "first-n";
    case VerdictReason::kEvictIdle: return "evict-idle";
    case VerdictReason::kEvictEarly: return "evict-early";
    case VerdictReason::kEvictSampled: return "evict-sampled";
    case VerdictReason::kFlush: return "flush";
  }
  return "?";
}

ServeEngine::ServeEngine(ServeConfig cfg,
                         std::shared_ptr<const FlowClassifier> classifier)
    : cfg_(std::move(cfg)),
      classifier_(std::move(classifier)),
      table_([&] {
        FlowTableConfig t = cfg_.table;
        t.feature_dim = flow_feature_dim(cfg_.features);
        t.classify_at = cfg_.features.first_n;
        if (cfg_.chaos) {
          t.alloc_fault = [chaos = cfg_.chaos] {
            return chaos->should_fire(core::ChaosSite::kFlowTableAlloc);
          };
        }
        return t;
      }()) {
  feature_dim_ = table_.config().feature_dim;
  shard_active_ = std::vector<std::atomic<std::uint8_t>>(table_.shard_count());
  quarantined_ = std::vector<std::atomic<std::uint8_t>>(table_.shard_count());
  clean_rounds_ = std::vector<std::atomic<std::uint32_t>>(table_.shard_count());
  if (classifier_ && classifier_->feature_dim() != feature_dim_) {
    std::fprintf(stderr,
                 "serve: classifier dim %zu != featurizer dim %zu — "
                 "verdicts will be garbage\n",
                 classifier_->feature_dim(), feature_dim_);
  }
  stats_.gauges.table_bytes_cap = table_.bytes_cap();
  if (cfg_.watchdog_timeout_s > 0)
    watchdog_ = std::thread([this] { watchdog_loop(); });
}

ServeEngine::~ServeEngine() {
  if (watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watchdog_mu_);
      stop_watchdog_.store(true);
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
  }
}

bool ServeEngine::offer(const net::Packet& pkt) {
  offered_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(queue_mu_);
  if (queue_.size() >= cfg_.queue_capacity) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    SUGAR_TRACE_COUNT("serve.backpressure.rejected", 1);
    return false;
  }
  queue_.push_back(QueueEntry{pkt, now_ns()});
  peak_queue_depth_ = std::max<std::uint64_t>(peak_queue_depth_, queue_.size());
  return true;
}

ShedStage ServeEngine::evaluate_stage(std::size_t queued, std::size_t live) {
  const double queue_frac =
      static_cast<double>(queued) / static_cast<double>(cfg_.queue_capacity);
  const double table_frac = static_cast<double>(live) /
                            static_cast<double>(table_.config().max_flows);
  ShedStage desired = ShedStage::kNone;
  if (queue_frac >= cfg_.queue_hi && table_frac >= cfg_.table_hi)
    desired = ShedStage::kSampleEvict;
  else if (table_frac >= cfg_.table_hi)
    desired = ShedStage::kEarlyClassify;
  else if (queue_frac >= cfg_.queue_hi)
    desired = ShedStage::kDropNewFlows;

  const auto current = static_cast<ShedStage>(stage_.load(std::memory_order_relaxed));
  ShedStage next = desired;
  if (desired < current) {
    // Hysteresis: step down only once both pressures are clearly relieved.
    const bool relieved =
        queue_frac <= cfg_.queue_lo && table_frac <= cfg_.table_lo;
    next = relieved ? desired : current;
  }
  if (next != current) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (next > current) {
      ++stats_.counters.shed_stage_enters;
      SUGAR_TRACE_COUNT("serve.shed.stage_enter", 1);
    } else {
      ++stats_.counters.shed_stage_exits;
    }
    stage_.store(static_cast<std::uint32_t>(next), std::memory_order_relaxed);
  }
  return next;
}

void ServeEngine::classify_into(std::size_t shard, const FlowView& v,
                                VerdictReason reason, RoundDelta& delta) {
  if (v.classified) return;  // labelled at first-N already
  if (v.feature_packets <
      (reason == VerdictReason::kFirstN ? 1u : cfg_.min_classify_packets)) {
    ++delta.counters.evicted_unclassified;
    return;
  }
  // Mean over the packets actually folded in. The 1/n-multiply matches
  // batch_flow_features() exactly, so an at-N verdict is bit-identical to
  // the offline feature of the same prefix.
  auto& mean = mean_scratch(feature_dim_);
  const float inv = 1.0f / static_cast<float>(v.feature_packets);
  for (std::size_t d = 0; d < feature_dim_; ++d)
    mean[d] = v.feature_sum[d] * inv;
  // A quarantined shard's verdicts come from the cheap fallback so a stuck
  // or faulty primary can't stall the whole round again.
  const FlowClassifier* clf = classifier_.get();
  bool via_fallback = false;
  if (cfg_.fallback &&
      quarantined_[shard].load(std::memory_order_relaxed) != 0) {
    clf = cfg_.fallback.get();
    via_fallback = true;
  }
  const int label = clf ? clf->classify(mean.data()) : -1;
  if (via_fallback) ++delta.counters.fallback_classified;
  if (reason == VerdictReason::kFirstN)
    ++delta.counters.classified_at_n;
  else
    ++delta.counters.classified_on_evict;
  if (cfg_.record_verdicts) {
    Verdict verdict;
    verdict.key = v.key;
    verdict.label = label;
    verdict.packets = v.packets;
    verdict.feature_packets = v.feature_packets;
    verdict.reason = reason;
    verdict.first_ts_usec = v.first_ts_usec;
    verdict.last_ts_usec = v.last_ts_usec;
    delta.verdicts.push_back(verdict);
  }
}

void ServeEngine::process_shard(std::size_t shard,
                                const std::vector<QueueEntry>& batch,
                                const std::vector<std::uint32_t>& order,
                                const std::vector<net::FlowKey>& keys,
                                const std::vector<float>& features,
                                std::uint64_t round_now, ShedStage stage,
                                RoundDelta& delta) {
  SUGAR_TRACE_SPAN("serve.shard");
  if (cfg_.shard_hook) cfg_.shard_hook(shard);
  if (cfg_.chaos)
    cfg_.chaos->maybe_stall(core::ChaosSite::kShardStall, &round_abort_);

  // 1. Idle sweep on the stream's virtual clock.
  delta.counters.evicted_idle += table_.evict_idle(
      shard, round_now, cfg_.idle_timeout_usec, [&](const FlowView& v) {
        classify_into(shard, v, VerdictReason::kEvictIdle, delta);
      });

  // 2. Fold this shard's packets in arrival order, polling the abort flag
  // so a watchdog-forced round restart can reclaim the rest of the batch.
  const bool admit_new = stage < ShedStage::kDropNewFlows;
  std::size_t processed = order.size();
  for (std::size_t oi = 0; oi < order.size(); ++oi) {
    if (round_abort_.load(std::memory_order_relaxed)) {
      delta.requeued.insert(delta.requeued.end(), order.begin() + oi,
                            order.end());
      processed = oi;
      break;
    }
    const std::uint32_t idx = order[oi];
    const QueueEntry& entry = batch[idx];
    auto res = table_.touch(shard, keys[idx], entry.pkt.ts_usec,
                            features.data() + std::size_t{idx} * feature_dim_,
                            admit_new);
    switch (res.status) {
      case ShardedFlowTable::TouchStatus::kNotAdmitted:
        ++delta.counters.packets_shed_new_flow;
        continue;
      case ShardedFlowTable::TouchStatus::kFull:
        ++delta.counters.flows_rejected_full;
        continue;
      case ShardedFlowTable::TouchStatus::kCreated:
        ++delta.counters.flows_created;
        break;
      case ShardedFlowTable::TouchStatus::kExisting:
        break;
    }
    if (res.ready) {
      const FlowView v = table_.view(shard, res.slot);
      classify_into(shard, v, VerdictReason::kFirstN, delta);
      table_.mark_classified(shard, res.slot);
    }
  }

  // 3. Shed-ladder sweeps, most aggressive last (skipped by an aborted
  // round — bail fast). Targets pull occupancy back to the low watermark
  // so the ladder can actually step down.
  const auto target = static_cast<std::size_t>(
      cfg_.table_lo * static_cast<double>(table_.shard_capacity()));
  if (delta.requeued.empty() && stage >= ShedStage::kEarlyClassify) {
    delta.counters.evicted_early += table_.evict_ready(
        shard, target, cfg_.min_classify_packets, cfg_.early_evict_scan,
        [&](const FlowView& v) {
          classify_into(shard, v, VerdictReason::kEvictEarly, delta);
        });
  }
  if (delta.requeued.empty() && stage >= ShedStage::kSampleEvict) {
    std::size_t forced = 0;
    while (table_.live(shard) > target && forced < cfg_.early_evict_scan) {
      if (!table_.evict_tail(shard, [&](const FlowView& v) {
            classify_into(shard, v, VerdictReason::kEvictSampled, delta);
          }))
        break;
      ++forced;
    }
    delta.counters.evicted_sampled += forced;
  }

  // 4. Per-packet latency (enqueue -> shard completion) for the packets
  // this round actually consumed. Wall-clock only; never feeds back into
  // any decision.
  const std::uint64_t end_ns = now_ns();
  for (std::size_t oi = 0; oi < processed; ++oi)
    delta.latency.record(end_ns -
                         std::min(end_ns, batch[order[oi]].enq_ns));
}

std::size_t ServeEngine::pump() {
  std::lock_guard<std::mutex> pump_lock(pump_mu_);
  SUGAR_TRACE_SPAN("serve.pump");

  std::vector<QueueEntry> batch;
  std::size_t depth_at_start = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    depth_at_start = queue_.size();
    const std::size_t n = std::min(cfg_.batch_size, queue_.size());
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
  }
  const ShedStage stage = evaluate_stage(depth_at_start, table_.live_total());
  if (batch.empty()) return 0;

  const std::size_t n = batch.size();
  const std::size_t shards = table_.shard_count();

  // Prepare phase: parse, key and featurize every packet in parallel
  // blocks (fixed grain — deterministic at any thread count).
  enum : std::uint8_t { kOk = 0, kKeyless = 1, kMalformed = 2 };
  std::vector<net::FlowKey> keys(n);
  std::vector<std::uint8_t> kind(n, kMalformed);
  std::vector<float> features(n * feature_dim_);
  core::global_pool().parallel_for(0, n, 64, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      auto parsed = net::parse_packet(batch[i].pkt);
      if (!parsed.ok()) {
        kind[i] = kMalformed;
        continue;
      }
      bool forward = false;
      if (!net::FlowKey::from_parsed(*parsed.parsed, keys[i], forward)) {
        kind[i] = kKeyless;
        continue;
      }
      kind[i] = kOk;
      replearn::extract_header_features(batch[i].pkt, *parsed.parsed,
                                        cfg_.features.spec,
                                        features.data() + i * feature_dim_);
    }
  });

  // Partition by flow-key hash (pure function of the key, so the shard a
  // packet lands on never depends on the arrival thread).
  RoundDelta base;
  std::vector<std::vector<std::uint32_t>> order(shards);
  std::uint64_t round_now = virtual_now_usec_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i)
    round_now = std::max(round_now, batch[i].pkt.ts_usec);
  for (std::size_t i = 0; i < n; ++i) {
    if (kind[i] == kMalformed) {
      ++base.counters.packets_malformed;
    } else if (kind[i] == kKeyless) {
      ++base.counters.packets_keyless;
    } else {
      order[table_.shard_of(keys[i])].push_back(static_cast<std::uint32_t>(i));
    }
  }
  virtual_now_usec_.store(round_now, std::memory_order_relaxed);

  // Shard phase: one worker per shard, heartbeat per completed shard so
  // the watchdog can tell a slow round from a stuck one, active markers so
  // it knows WHICH shard to quarantine.
  std::vector<RoundDelta> deltas(shards);
  round_abort_.store(false, std::memory_order_release);
  round_active_.store(true, std::memory_order_release);
  core::global_pool().parallel_for(0, shards, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t s = lo; s < hi; ++s) {
      shard_active_[s].store(1, std::memory_order_release);
      process_shard(s, batch, order[s], keys, features, round_now, stage,
                    deltas[s]);
      shard_active_[s].store(0, std::memory_order_release);
      heartbeat_.fetch_add(1, std::memory_order_relaxed);
    }
  });
  round_active_.store(false, std::memory_order_release);

  // Packets an aborted round skipped go back to the FRONT of the queue in
  // arrival order, so the restarted round sees the same stream.
  std::vector<std::uint32_t> requeued;
  for (RoundDelta& d : deltas)
    requeued.insert(requeued.end(), d.requeued.begin(), d.requeued.end());
  if (!requeued.empty()) {
    std::sort(requeued.begin(), requeued.end());
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (auto it = requeued.rbegin(); it != requeued.rend(); ++it)
      queue_.push_front(std::move(batch[*it]));
    base.counters.packets_requeued += requeued.size();
  }

  // Malformed/keyless packets complete here; give them a latency sample too.
  const std::uint64_t end_ns = now_ns();
  for (std::size_t i = 0; i < n; ++i)
    if (kind[i] != kOk)
      base.latency.record(end_ns - std::min(end_ns, batch[i].enq_ns));
  // Requeued packets will be counted when a later round consumes them.
  base.counters.packets_processed += n - requeued.size();
  ++base.counters.rounds;

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.counters.merge(base.counters);
    stats_.latency.merge(base.latency);
    merge_deltas(deltas);
    peak_flows_ = std::max<std::uint64_t>(peak_flows_, table_.live_total());
  }

  // A completed (non-aborted) round is a clean round for every quarantined
  // shard; two in a row lift the quarantine.
  if (requeued.empty()) {
    for (std::size_t s = 0; s < shards; ++s) {
      if (quarantined_[s].load(std::memory_order_relaxed) == 0) continue;
      const std::uint32_t clean =
          clean_rounds_[s].fetch_add(1, std::memory_order_relaxed) + 1;
      if (clean >= 2) {
        quarantined_[s].store(0, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.counters.watchdog_recoveries;
        }
        SUGAR_TRACE_COUNT("serve.watchdog.recoveries", 1);
        std::fprintf(stderr,
                     "serve: watchdog — shard %zu recovered after %u clean "
                     "rounds; primary classifier restored\n",
                     s, clean);
      }
    }
  }
  SUGAR_TRACE_COUNT("serve.packets.processed", n);
  SUGAR_TRACE_COUNT("serve.rounds", 1);
  return n;
}

void ServeEngine::merge_deltas(std::vector<RoundDelta>& deltas) {
  // Caller holds stats_mu_. Ascending shard order keeps verdict order (and
  // therefore every downstream aggregate) deterministic.
  for (RoundDelta& d : deltas) {
    stats_.counters.merge(d.counters);
    stats_.latency.merge(d.latency);
    for (Verdict& v : d.verdicts) {
      if (verdicts_.size() >= cfg_.max_recorded_verdicts) {
        ++stats_.counters.verdicts_dropped;
        continue;
      }
      verdicts_.push_back(std::move(v));
    }
    SUGAR_TRACE_COUNT("serve.evict.idle", d.counters.evicted_idle);
    SUGAR_TRACE_COUNT("serve.evict.early", d.counters.evicted_early);
    SUGAR_TRACE_COUNT("serve.evict.sampled", d.counters.evicted_sampled);
    SUGAR_TRACE_COUNT("serve.shed.new_flow", d.counters.packets_shed_new_flow);
  }
}

void ServeEngine::drain() {
  while (pump() > 0) {
  }
}

std::size_t ServeEngine::evict_idle_now(std::uint64_t now_usec) {
  std::size_t evicted = 0;
  std::vector<RoundDelta> deltas(table_.shard_count());
  for (std::size_t s = 0; s < table_.shard_count(); ++s) {
    evicted += table_.evict_idle(s, now_usec, cfg_.idle_timeout_usec,
                                 [&](const FlowView& v) {
                                   classify_into(s, v,
                                                 VerdictReason::kEvictIdle,
                                                 deltas[s]);
                                 });
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.counters.evicted_idle += evicted;
  merge_deltas(deltas);
  return evicted;
}

void ServeEngine::flush() {
  std::lock_guard<std::mutex> pump_lock(pump_mu_);
  std::vector<RoundDelta> deltas(table_.shard_count());
  std::size_t evicted = 0;
  for (std::size_t s = 0; s < table_.shard_count(); ++s)
    evicted += table_.evict_all(s, [&](const FlowView& v) {
      classify_into(s, v, VerdictReason::kFlush, deltas[s]);
    });
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.counters.evicted_flush += evicted;
  merge_deltas(deltas);
}

ServeStats ServeEngine::stats() const {
  ServeStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
    out.gauges.peak_flows = peak_flows_;
  }
  out.counters.packets_offered = offered_.load(std::memory_order_relaxed);
  out.counters.packets_rejected = rejected_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    out.gauges.queue_depth = queue_.size();
    out.gauges.peak_queue_depth = peak_queue_depth_;
  }
  out.gauges.current_flows = table_.live_total();
  out.gauges.peak_flows = std::max(out.gauges.peak_flows, out.gauges.current_flows);
  out.gauges.table_bytes = table_.bytes_resident();
  out.gauges.table_bytes_cap = table_.bytes_cap();
  out.gauges.shed_stage = stage_.load(std::memory_order_relaxed);
  out.gauges.virtual_now_usec = virtual_now_usec_.load(std::memory_order_relaxed);
  return out;
}

std::size_t ServeEngine::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return queue_.size();
}

std::vector<Verdict> ServeEngine::take_verdicts() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  std::vector<Verdict> out;
  out.swap(verdicts_);
  return out;
}

void ServeEngine::watchdog_loop() {
  const auto timeout = std::chrono::duration<double>(cfg_.watchdog_timeout_s);
  std::uint64_t last_beat = heartbeat_.load(std::memory_order_relaxed);
  auto last_change = std::chrono::steady_clock::now();
  // Escalation within one stall episode: 0 none, 1 flagged (1x timeout),
  // 2 quarantined (2x), 3 round aborted (4x). Resets when the heartbeat
  // moves again.
  int escalation = 0;
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  while (!stop_watchdog_.load(std::memory_order_relaxed)) {
    watchdog_cv_.wait_for(lock, timeout / 4, [this] {
      return stop_watchdog_.load(std::memory_order_relaxed);
    });
    if (stop_watchdog_.load(std::memory_order_relaxed)) break;
    const std::uint64_t beat = heartbeat_.load(std::memory_order_relaxed);
    const auto now = std::chrono::steady_clock::now();
    if (beat != last_beat || !round_active_.load(std::memory_order_acquire)) {
      last_beat = beat;
      last_change = now;
      escalation = 0;
      continue;
    }
    const auto stalled = now - last_change;
    if (escalation < 1 && stalled >= timeout) {
      escalation = 1;
      {
        std::lock_guard<std::mutex> stats_lock(stats_mu_);
        ++stats_.counters.watchdog_stalls;
      }
      SUGAR_TRACE_COUNT("serve.watchdog.stalls", 1);
      std::fprintf(stderr,
                   "serve: watchdog — round stuck for %.1fs (heartbeat %llu); "
                   "a shard worker is not making progress\n",
                   cfg_.watchdog_timeout_s,
                   static_cast<unsigned long long>(beat));
    }
    if (escalation < 2 && stalled >= 2 * timeout) {
      escalation = 2;
      std::size_t quarantined = 0;
      for (std::size_t s = 0; s < shard_active_.size(); ++s) {
        if (shard_active_[s].load(std::memory_order_acquire) != 0 &&
            quarantined_[s].load(std::memory_order_relaxed) == 0) {
          clean_rounds_[s].store(0, std::memory_order_relaxed);
          quarantined_[s].store(1, std::memory_order_relaxed);
          ++quarantined;
        }
      }
      if (quarantined > 0) {
        {
          std::lock_guard<std::mutex> stats_lock(stats_mu_);
          stats_.counters.watchdog_quarantines += quarantined;
        }
        SUGAR_TRACE_COUNT("serve.watchdog.quarantines", quarantined);
        std::fprintf(stderr,
                     "serve: watchdog — quarantined %zu stuck shard(s); "
                     "their flows route to the fallback classifier\n",
                     quarantined);
      }
    }
    if (escalation < 3 && stalled >= 4 * timeout) {
      escalation = 3;
      round_abort_.store(true, std::memory_order_release);
      {
        std::lock_guard<std::mutex> stats_lock(stats_mu_);
        ++stats_.counters.watchdog_round_aborts;
      }
      SUGAR_TRACE_COUNT("serve.watchdog.round_aborts", 1);
      std::fprintf(stderr,
                   "serve: watchdog — forcing round restart after %.1fs; "
                   "unprocessed packets will be re-queued\n",
                   4 * cfg_.watchdog_timeout_s);
    }
  }
}

}  // namespace sugar::serve
