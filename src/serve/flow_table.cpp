#include "serve/flow_table.h"

#include <algorithm>

namespace sugar::serve {

ShardedFlowTable::ShardedFlowTable(FlowTableConfig cfg) : cfg_(cfg) {
  const std::size_t shards = std::max<std::size_t>(1, cfg_.shards);
  cfg_.shards = shards;
  cfg_.max_flows = std::max<std::size_t>(shards, cfg_.max_flows);
  per_shard_cap_ = (cfg_.max_flows + shards - 1) / shards;
  shards_ = std::vector<Shard>(shards);
  for (Shard& s : shards_) {
    // Reserve the index up front so admission at capacity never rehashes;
    // the slot/feature slabs grow on demand but are capped by touch().
    s.index.reserve(per_shard_cap_);
  }
}

std::size_t ShardedFlowTable::bytes_per_flow() const {
  // One slot, its feature accumulator, and one index entry (key + value +
  // bucket pointer, approximated as 2 pointers of overhead).
  return sizeof(Slot) + cfg_.feature_dim * sizeof(float) +
         sizeof(net::FlowKey) + sizeof(std::uint32_t) + 2 * sizeof(void*);
}

std::size_t ShardedFlowTable::bytes_cap() const {
  return shards_.size() * per_shard_cap_ * bytes_per_flow();
}

std::size_t ShardedFlowTable::bytes_resident() const {
  return live_total() * bytes_per_flow();
}

void ShardedFlowTable::lru_unlink(Shard& s, std::uint32_t i) {
  Slot& slot = s.slots[i];
  if (slot.lru_prev != kNil)
    s.slots[slot.lru_prev].lru_next = slot.lru_next;
  else
    s.lru_head = slot.lru_next;
  if (slot.lru_next != kNil)
    s.slots[slot.lru_next].lru_prev = slot.lru_prev;
  else
    s.lru_tail = slot.lru_prev;
  slot.lru_prev = slot.lru_next = kNil;
}

void ShardedFlowTable::lru_push_head(Shard& s, std::uint32_t i) {
  Slot& slot = s.slots[i];
  slot.lru_prev = kNil;
  slot.lru_next = s.lru_head;
  if (s.lru_head != kNil) s.slots[s.lru_head].lru_prev = i;
  s.lru_head = i;
  if (s.lru_tail == kNil) s.lru_tail = i;
}

ShardedFlowTable::TouchResult ShardedFlowTable::touch(std::size_t shard,
                                                      const net::FlowKey& key,
                                                      std::uint64_t ts_usec,
                                                      const float* features,
                                                      bool admit_new) {
  Shard& s = shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  TouchResult res;

  auto it = s.index.find(key);
  if (it == s.index.end()) {
    if (!admit_new) {
      res.status = TouchStatus::kNotAdmitted;
      return res;
    }
    if (s.live >= per_shard_cap_ || (cfg_.alloc_fault && cfg_.alloc_fault())) {
      res.status = TouchStatus::kFull;
      return res;
    }
    std::uint32_t i;
    if (!s.free.empty()) {
      i = s.free.back();
      s.free.pop_back();
    } else {
      i = static_cast<std::uint32_t>(s.slots.size());
      s.slots.emplace_back();
      s.features.resize(s.slots.size() * cfg_.feature_dim, 0.0f);
    }
    Slot& slot = s.slots[i];
    slot = Slot{};
    slot.key = key;
    slot.first_ts_usec = ts_usec;
    slot.live = true;
    std::fill_n(s.features.data() + std::size_t{i} * cfg_.feature_dim,
                cfg_.feature_dim, 0.0f);
    s.index.emplace(key, i);
    ++s.live;
    lru_push_head(s, i);
    it = s.index.find(key);
    res.status = TouchStatus::kCreated;
  } else {
    res.status = TouchStatus::kExisting;
    lru_unlink(s, it->second);
    lru_push_head(s, it->second);
  }

  const std::uint32_t i = it->second;
  Slot& slot = s.slots[i];
  slot.last_ts_usec = std::max(slot.last_ts_usec, ts_usec);
  ++slot.packets;
  if (slot.feature_packets < cfg_.classify_at && features != nullptr) {
    float* acc = s.features.data() + std::size_t{i} * cfg_.feature_dim;
    for (std::size_t d = 0; d < cfg_.feature_dim; ++d) acc[d] += features[d];
    ++slot.feature_packets;
    if (slot.feature_packets == cfg_.classify_at && !slot.classified)
      res.ready = true;
  }
  res.slot = i;
  return res;
}

void ShardedFlowTable::mark_classified(std::size_t shard, std::uint32_t slot) {
  Shard& s = shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  if (slot < s.slots.size() && s.slots[slot].live)
    s.slots[slot].classified = true;
}

FlowView ShardedFlowTable::view_locked(const Shard& s, std::uint32_t i) const {
  const Slot& slot = s.slots[i];
  FlowView v;
  v.key = slot.key;
  v.first_ts_usec = slot.first_ts_usec;
  v.last_ts_usec = slot.last_ts_usec;
  v.packets = slot.packets;
  v.feature_packets = slot.feature_packets;
  v.classified = slot.classified;
  v.feature_sum = s.features.data() + std::size_t{i} * cfg_.feature_dim;
  return v;
}

FlowView ShardedFlowTable::view(std::size_t shard, std::uint32_t slot) const {
  const Shard& s = shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  return view_locked(s, slot);
}

void ShardedFlowTable::release_locked(Shard& s, std::uint32_t i) {
  lru_unlink(s, i);
  s.index.erase(s.slots[i].key);
  s.slots[i].live = false;
  s.free.push_back(i);
  --s.live;
}

void ShardedFlowTable::evict_locked(Shard& s, std::uint32_t i, const EvictFn& fn) {
  if (fn) fn(view_locked(s, i));
  release_locked(s, i);
}

std::size_t ShardedFlowTable::evict_idle(std::size_t shard, std::uint64_t now_usec,
                                         std::uint64_t idle_usec,
                                         const EvictFn& fn) {
  Shard& s = shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  std::size_t evicted = 0;
  // LRU order is last-touch order, so the tail is the longest-idle flow;
  // the first non-expired tail ends the sweep.
  while (s.lru_tail != kNil) {
    const Slot& tail = s.slots[s.lru_tail];
    if (tail.last_ts_usec + idle_usec > now_usec) break;
    evict_locked(s, s.lru_tail, fn);
    ++evicted;
  }
  return evicted;
}

std::size_t ShardedFlowTable::evict_ready(std::size_t shard, std::size_t target_live,
                                          std::size_t min_packets,
                                          std::size_t max_scan, const EvictFn& fn) {
  Shard& s = shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  std::size_t evicted = 0, scanned = 0;
  std::uint32_t i = s.lru_tail;
  while (i != kNil && s.live > target_live && scanned < max_scan) {
    const std::uint32_t prev = s.slots[i].lru_prev;
    if (s.slots[i].feature_packets >= min_packets) {
      evict_locked(s, i, fn);
      ++evicted;
    }
    i = prev;
    ++scanned;
  }
  return evicted;
}

bool ShardedFlowTable::evict_tail(std::size_t shard, const EvictFn& fn) {
  Shard& s = shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.lru_tail == kNil) return false;
  evict_locked(s, s.lru_tail, fn);
  return true;
}

std::size_t ShardedFlowTable::evict_all(std::size_t shard, const EvictFn& fn) {
  Shard& s = shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  std::size_t evicted = 0;
  while (s.lru_tail != kNil) {
    evict_locked(s, s.lru_tail, fn);
    ++evicted;
  }
  return evicted;
}

void ShardedFlowTable::for_each_lru(
    std::size_t shard, const std::function<void(const FlowRecord&)>& fn) const {
  const Shard& s = shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  FlowRecord rec;
  for (std::uint32_t i = s.lru_tail; i != kNil; i = s.slots[i].lru_prev) {
    const Slot& slot = s.slots[i];
    rec.key = slot.key;
    rec.first_ts_usec = slot.first_ts_usec;
    rec.last_ts_usec = slot.last_ts_usec;
    rec.packets = slot.packets;
    rec.feature_packets = slot.feature_packets;
    rec.classified = slot.classified;
    const float* acc = s.features.data() + std::size_t{i} * cfg_.feature_dim;
    rec.feature_sum.assign(acc, acc + cfg_.feature_dim);
    fn(rec);
  }
}

bool ShardedFlowTable::restore_flow(std::size_t shard, const FlowRecord& record) {
  if (record.feature_sum.size() != cfg_.feature_dim) return false;
  Shard& s = shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.live >= per_shard_cap_) return false;
  if (s.index.count(record.key)) return false;
  std::uint32_t i;
  if (!s.free.empty()) {
    i = s.free.back();
    s.free.pop_back();
  } else {
    i = static_cast<std::uint32_t>(s.slots.size());
    s.slots.emplace_back();
    s.features.resize(s.slots.size() * cfg_.feature_dim, 0.0f);
  }
  Slot& slot = s.slots[i];
  slot = Slot{};
  slot.key = record.key;
  slot.first_ts_usec = record.first_ts_usec;
  slot.last_ts_usec = record.last_ts_usec;
  slot.packets = record.packets;
  slot.feature_packets = record.feature_packets;
  slot.classified = record.classified;
  slot.live = true;
  std::copy(record.feature_sum.begin(), record.feature_sum.end(),
            s.features.data() + std::size_t{i} * cfg_.feature_dim);
  s.index.emplace(record.key, i);
  ++s.live;
  lru_push_head(s, i);
  return true;
}

std::size_t ShardedFlowTable::live(std::size_t shard) const {
  const Shard& s = shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  return s.live;
}

std::size_t ShardedFlowTable::live_total() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) total += live(i);
  return total;
}

}  // namespace sugar::serve
