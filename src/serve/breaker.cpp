#include "serve/breaker.h"

#include <chrono>
#include <cstdlib>

#include "core/envparse.h"
#include "core/trace.h"

namespace sugar::serve {

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "?";
}

BreakerConfig BreakerConfig::from_env() { return from_env(BreakerConfig{}); }

BreakerConfig BreakerConfig::from_env(BreakerConfig base) {
  if (const char* s = std::getenv("SUGAR_LATENCY_BUDGET_US")) {
    std::uint64_t v = 0;
    if (core::parse_env_number("SUGAR_LATENCY_BUDGET_US", s, v))
      base.latency_budget_us = v;
  }
  return base;
}

CircuitBreakerClassifier::CircuitBreakerClassifier(
    const FlowClassifier& primary, const FlowClassifier& fallback,
    BreakerConfig cfg, core::ChaosInjector* chaos)
    : primary_(primary), fallback_(fallback), cfg_(cfg), chaos_(chaos) {
  cfg_.failure_threshold = std::max<std::uint32_t>(1, cfg_.failure_threshold);
  cfg_.open_cooldown_calls =
      std::max<std::uint32_t>(1, cfg_.open_cooldown_calls);
  cfg_.half_open_successes =
      std::max<std::uint32_t>(1, cfg_.half_open_successes);
}

int CircuitBreakerClassifier::call_primary(const float* features, bool& fault,
                                           bool& injected) const {
  fault = injected = false;
  // Stall first, time from before the stall: a chaos latency spike is a
  // real latency-budget breach, not a separate fault class.
  const auto t0 = std::chrono::steady_clock::now();
  if (chaos_) chaos_->maybe_stall(core::ChaosSite::kClassifierDelay);
  if (chaos_ && chaos_->should_fire(core::ChaosSite::kClassifierFault)) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
    fault = injected = true;
    return -1;
  }
  const int verdict = primary_.classify(features);
  primary_calls_.fetch_add(1, std::memory_order_relaxed);
  if (cfg_.latency_budget_us > 0) {
    const auto elapsed_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (static_cast<std::uint64_t>(elapsed_us) > cfg_.latency_budget_us) {
      faults_latency_.fetch_add(1, std::memory_order_relaxed);
      fault = true;
    }
  }
  return verdict;
}

bool CircuitBreakerClassifier::transition(BreakerState from, BreakerState to,
                                          std::uint64_t at_call) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (state() != from) return false;  // another thread moved the edge first
  state_.store(static_cast<std::uint8_t>(to), std::memory_order_release);
  if (log_.size() < cfg_.max_transitions)
    log_.push_back(BreakerTransition{from, to, at_call});
  switch (to) {
    case BreakerState::kOpen:
      open_calls_.store(0, std::memory_order_relaxed);
      trips_.fetch_add(1, std::memory_order_relaxed);
      SUGAR_TRACE_COUNT("serve.breaker.trip", 1);
      break;
    case BreakerState::kHalfOpen:
      half_open_streak_.store(0, std::memory_order_relaxed);
      probe_in_flight_.store(false, std::memory_order_release);
      SUGAR_TRACE_COUNT("serve.breaker.half_open", 1);
      break;
    case BreakerState::kClosed:
      consecutive_faults_.store(0, std::memory_order_relaxed);
      recoveries_.fetch_add(1, std::memory_order_relaxed);
      SUGAR_TRACE_COUNT("serve.breaker.close", 1);
      break;
  }
  return true;
}

int CircuitBreakerClassifier::classify(const float* features) const {
  const std::uint64_t call = calls_.fetch_add(1, std::memory_order_relaxed) + 1;
  const BreakerState st = state();

  if (st == BreakerState::kOpen) {
    const std::uint32_t served =
        open_calls_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (served >= cfg_.open_cooldown_calls)
      transition(BreakerState::kOpen, BreakerState::kHalfOpen, call);
    fallback_calls_.fetch_add(1, std::memory_order_relaxed);
    return fallback_.classify(features);
  }

  if (st == BreakerState::kHalfOpen) {
    bool expected = false;
    if (!probe_in_flight_.compare_exchange_strong(expected, true,
                                                  std::memory_order_acq_rel)) {
      // Someone else holds the probe slot — don't stampede the primary.
      fallback_calls_.fetch_add(1, std::memory_order_relaxed);
      return fallback_.classify(features);
    }
    probes_.fetch_add(1, std::memory_order_relaxed);
    bool fault = false, injected = false;
    const int verdict = call_primary(features, fault, injected);
    if (fault) {
      probe_failures_.fetch_add(1, std::memory_order_relaxed);
      transition(BreakerState::kHalfOpen, BreakerState::kOpen, call);
      probe_in_flight_.store(false, std::memory_order_release);
      if (injected) {
        fallback_calls_.fetch_add(1, std::memory_order_relaxed);
        return fallback_.classify(features);
      }
      return verdict;  // slow but valid
    }
    const std::uint32_t streak =
        half_open_streak_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (streak >= cfg_.half_open_successes)
      transition(BreakerState::kHalfOpen, BreakerState::kClosed, call);
    probe_in_flight_.store(false, std::memory_order_release);
    return verdict;
  }

  // Closed: the primary serves, faults accumulate toward the trip.
  bool fault = false, injected = false;
  const int verdict = call_primary(features, fault, injected);
  if (fault) {
    const std::uint32_t streak =
        consecutive_faults_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (streak >= cfg_.failure_threshold)
      transition(BreakerState::kClosed, BreakerState::kOpen, call);
    if (injected) {
      fallback_calls_.fetch_add(1, std::memory_order_relaxed);
      return fallback_.classify(features);
    }
    return verdict;
  }
  consecutive_faults_.store(0, std::memory_order_relaxed);
  return verdict;
}

BreakerCounters CircuitBreakerClassifier::counters() const {
  BreakerCounters c;
  c.primary_calls = primary_calls_.load(std::memory_order_relaxed);
  c.fallback_calls = fallback_calls_.load(std::memory_order_relaxed);
  c.faults_latency = faults_latency_.load(std::memory_order_relaxed);
  c.faults_injected = faults_injected_.load(std::memory_order_relaxed);
  c.trips = trips_.load(std::memory_order_relaxed);
  c.probes = probes_.load(std::memory_order_relaxed);
  c.probe_failures = probe_failures_.load(std::memory_order_relaxed);
  c.recoveries = recoveries_.load(std::memory_order_relaxed);
  return c;
}

std::vector<BreakerTransition> CircuitBreakerClassifier::transitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

core::Json CircuitBreakerClassifier::to_json() const {
  const BreakerCounters c = counters();
  core::Json j = core::Json::object();
  j.set("state", core::Json(to_string(state())));
  core::Json counters = core::Json::object();
  counters.set("primary_calls",
               core::Json(static_cast<std::size_t>(c.primary_calls)));
  counters.set("fallback_calls",
               core::Json(static_cast<std::size_t>(c.fallback_calls)));
  counters.set("faults_latency",
               core::Json(static_cast<std::size_t>(c.faults_latency)));
  counters.set("faults_injected",
               core::Json(static_cast<std::size_t>(c.faults_injected)));
  counters.set("trips", core::Json(static_cast<std::size_t>(c.trips)));
  counters.set("probes", core::Json(static_cast<std::size_t>(c.probes)));
  counters.set("probe_failures",
               core::Json(static_cast<std::size_t>(c.probe_failures)));
  counters.set("recoveries",
               core::Json(static_cast<std::size_t>(c.recoveries)));
  j.set("counters", std::move(counters));
  core::Json log = core::Json::array();
  for (const BreakerTransition& t : transitions()) {
    core::Json e = core::Json::object();
    e.set("from", core::Json(to_string(t.from)));
    e.set("to", core::Json(to_string(t.to)));
    e.set("at_call", core::Json(static_cast<std::size_t>(t.at_call)));
    log.push(std::move(e));
  }
  j.set("transitions", std::move(log));
  return j;
}

}  // namespace sugar::serve
