#include "serve/flow_features.h"

#include <algorithm>
#include <map>

#include "net/parser.h"

namespace sugar::serve {

std::size_t flow_feature_dim(const FlowFeatureConfig& cfg) {
  return replearn::header_feature_names(cfg.spec).size();
}

LabeledFlowFeatures batch_flow_features(const std::vector<net::Packet>& packets,
                                        const std::vector<int>* packet_labels,
                                        const FlowFeatureConfig& cfg,
                                        std::size_t min_packets) {
  const std::size_t dim = flow_feature_dim(cfg);
  const net::FlowTable table = net::assemble_flows(packets);

  LabeledFlowFeatures out;
  std::vector<float> scratch(dim);
  std::vector<std::vector<float>> rows;
  for (const net::Flow& flow : table.flows()) {
    if (flow.size() < min_packets) continue;
    std::vector<float> sum(dim, 0.0f);
    std::size_t used = 0;
    std::map<int, std::size_t> votes;
    for (const net::FlowPacketRef& ref : flow.packets) {
      const net::Packet& pkt = packets[ref.packet_index];
      if (used < cfg.first_n) {
        auto parsed = net::parse_packet(pkt);
        if (parsed.ok()) {
          replearn::extract_header_features(pkt, *parsed.parsed, cfg.spec,
                                            scratch.data());
          for (std::size_t d = 0; d < dim; ++d) sum[d] += scratch[d];
          ++used;
        }
      }
      if (packet_labels) {
        const int label = (*packet_labels)[ref.packet_index];
        if (label >= 0) ++votes[label];
      }
    }
    if (used == 0) continue;
    const float inv = 1.0f / static_cast<float>(used);
    for (float& v : sum) v *= inv;
    rows.push_back(std::move(sum));
    int label = -1;
    std::size_t best = 0;
    for (const auto& [cls, n] : votes)
      if (n > best) {
        best = n;
        label = cls;
      }
    out.labels.push_back(label);
    out.keys.push_back(flow.key);
  }

  out.x = ml::Matrix(rows.size(), dim);
  for (std::size_t r = 0; r < rows.size(); ++r)
    std::copy(rows[r].begin(), rows[r].end(), out.x.row(r));
  return out;
}

}  // namespace sugar::serve
