// Serve-side health accounting: a fixed-bucket log2 latency histogram and
// the ServeStats snapshot the engine exports. The stats contract is the
// robustness headline — every counter is monotone for the engine's
// lifetime (json_check verifies this over the bench's snapshot timeline),
// gauges are point-in-time, and everything stays finite and well-defined
// under overload and fault injection.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/artifact.h"

namespace sugar::serve {

/// Power-of-two latency buckets: bucket b counts samples with
/// 2^(b-1) <= ns < 2^b (bucket 0 is [0,1)). 64 buckets cover every
/// representable duration, so record() can never overflow or allocate —
/// safe to call on the per-packet hot path. Bucket and total counts
/// accumulate saturating at UINT64_MAX: a chaos-injected latency storm can
/// pin the top of a bucket but can never wrap it around and silently
/// reshape the percentiles.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t ns);
  void merge(const LatencyHistogram& other);

  /// Bucket a sample lands in: bit_width(ns) clamped to the top bucket.
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t ns);

  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t b) const {
    return counts_[b];
  }
  /// Quantile estimate (geometric bucket midpoint); 0 when empty.
  [[nodiscard]] double quantile_ns(double q) const;

  /// Raw bucket array (snapshot serialization).
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const {
    return counts_;
  }
  /// Replaces the whole histogram (snapshot restore); total is recomputed
  /// (saturating) from the buckets so the two can never disagree.
  void restore(const std::array<std::uint64_t, kBuckets>& counts);

  /// {count, p50_us, p90_us, p99_us, p999_us, max_bucket_us}.
  [[nodiscard]] core::Json to_json() const;

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
};

/// Monotone counters. Split from the gauges so consumers (json_check, the
/// bench's snapshot timeline) can assert monotonicity mechanically.
struct ServeCounters {
  // Ingest.
  std::uint64_t packets_offered = 0;       // offer() calls
  std::uint64_t packets_rejected = 0;      // bounded-queue backpressure drops
  std::uint64_t packets_processed = 0;     // drained through a round
  std::uint64_t packets_malformed = 0;     // parser rejected the frame
  std::uint64_t packets_keyless = 0;       // no 5-tuple (ARP, ICMP, ...)
  std::uint64_t packets_shed_new_flow = 0; // ladder stage >= 1 drops
  // Flow table.
  std::uint64_t flows_created = 0;
  std::uint64_t flows_rejected_full = 0;   // shard full below ladder stage 3
  std::uint64_t evicted_idle = 0;
  std::uint64_t evicted_early = 0;         // ladder stage 2 early-classify
  std::uint64_t evicted_sampled = 0;       // ladder stage 3 LRU replacement
  std::uint64_t evicted_flush = 0;
  // Classification.
  std::uint64_t classified_at_n = 0;       // reached first-N while resident
  std::uint64_t classified_on_evict = 0;
  std::uint64_t evicted_unclassified = 0;  // too short to classify
  std::uint64_t verdicts_dropped = 0;      // verdict ring hit its cap
  // Shed ladder / supervision.
  std::uint64_t shed_stage_enters = 0;     // upward stage transitions
  std::uint64_t shed_stage_exits = 0;      // downward stage transitions
  std::uint64_t rounds = 0;                // pump() batches completed
  std::uint64_t watchdog_stalls = 0;
  // Watchdog escalation ladder (zero unless the watchdog is enabled, so
  // they never perturb the bit-identity contract).
  std::uint64_t watchdog_quarantines = 0;  // shards routed to the fallback
  std::uint64_t watchdog_recoveries = 0;   // quarantines lifted
  std::uint64_t watchdog_round_aborts = 0; // forced round restarts
  std::uint64_t packets_requeued = 0;      // re-enqueued by an aborted round
  std::uint64_t fallback_classified = 0;   // verdicts from the fallback path

  void merge(const ServeCounters& other);
  [[nodiscard]] core::Json to_json() const;
  /// True when every counter of `later` is >= the matching one here.
  [[nodiscard]] bool monotone_le(const ServeCounters& later) const;

  /// Counter values in declaration order (snapshot serialization). The
  /// field table in stats.cpp drives this, so a new counter is picked up
  /// automatically.
  [[nodiscard]] std::vector<std::uint64_t> to_values() const;
  /// Inverse of to_values(); false when `values` has the wrong arity (a
  /// snapshot from a different counter-set version).
  bool from_values(const std::vector<std::uint64_t>& values);
};

/// Point-in-time gauges (not monotone).
struct ServeGauges {
  std::uint64_t current_flows = 0;
  std::uint64_t peak_flows = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t peak_queue_depth = 0;
  std::uint64_t table_bytes = 0;       // resident flow-state bound
  std::uint64_t table_bytes_cap = 0;   // hard bound from the config
  std::uint64_t shed_stage = 0;        // current ladder stage (0..3)
  std::uint64_t virtual_now_usec = 0;  // stream time the engine has reached

  [[nodiscard]] core::Json to_json() const;
};

/// One engine snapshot: counters + gauges + latency histogram.
struct ServeStats {
  ServeCounters counters;
  ServeGauges gauges;
  LatencyHistogram latency;

  [[nodiscard]] core::Json to_json() const;
};

}  // namespace sugar::serve
