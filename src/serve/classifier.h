// Classification backends for the serve engine. A FlowClassifier scores one
// flow-feature vector at a time and must be safe to call concurrently from
// every shard worker — implementations are immutable after construction.
// ForestFlowClassifier wraps the paper's winning shallow model (RandomForest
// on header features); HeuristicClassifier is the test double.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ml/forest.h"
#include "ml/matrix.h"

namespace sugar::serve {

class FlowClassifier {
 public:
  virtual ~FlowClassifier() = default;
  [[nodiscard]] virtual std::size_t feature_dim() const = 0;
  [[nodiscard]] virtual int num_classes() const = 0;
  /// Label for one feature vector of feature_dim() floats. Thread-safe.
  [[nodiscard]] virtual int classify(const float* features) const = 0;
};

/// Frozen RandomForest. classify() votes the trees directly on the caller's
/// buffer — no allocation, no thread-pool dispatch — so shard workers can
/// call it from inside the engine's parallel round without nesting.
class ForestFlowClassifier final : public FlowClassifier {
 public:
  ForestFlowClassifier(ml::RandomForest forest, std::size_t feature_dim,
                       int num_classes);

  [[nodiscard]] std::size_t feature_dim() const override { return dim_; }
  [[nodiscard]] int num_classes() const override { return classes_; }
  [[nodiscard]] int classify(const float* features) const override;

  [[nodiscard]] const ml::RandomForest& forest() const { return forest_; }

 private:
  ml::RandomForest forest_;
  std::size_t dim_;
  int classes_;
};

/// Trains a forest on (x, y) and freezes it behind the serve interface.
std::unique_ptr<ForestFlowClassifier> fit_forest_classifier(
    const ml::Matrix& x, const std::vector<int>& y, int num_classes,
    ml::ForestConfig cfg = {});

/// Deterministic stand-in for tests: any pure function of the features.
class HeuristicClassifier final : public FlowClassifier {
 public:
  using Fn = std::function<int(const float*)>;
  HeuristicClassifier(std::size_t feature_dim, int num_classes, Fn fn)
      : dim_(feature_dim), classes_(num_classes), fn_(std::move(fn)) {}

  [[nodiscard]] std::size_t feature_dim() const override { return dim_; }
  [[nodiscard]] int num_classes() const override { return classes_; }
  [[nodiscard]] int classify(const float* features) const override {
    return fn_(features);
  }

 private:
  std::size_t dim_;
  int classes_;
  Fn fn_;
};

}  // namespace sugar::serve
