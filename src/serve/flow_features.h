// First-N-packet flow features — the paper's winning representation, made
// incremental. A flow's feature vector is the running mean of the
// hand-crafted per-packet header features (replearn::extract_header_features)
// over its first `first_n` packets. The online engine accumulates the sum
// packet-by-packet in arrival order; batch_flow_features() computes the same
// quantity offline for training, summing in the same order, so an online
// classification at packet N is bit-identical to the offline feature of the
// same prefix.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/matrix.h"
#include "net/flow.h"
#include "net/packet.h"
#include "replearn/featurize.h"

namespace sugar::serve {

struct FlowFeatureConfig {
  /// Packets accumulated before the feature freezes (the paper's first-N).
  std::size_t first_n = 8;
  /// Header-field selection. IP addresses default OFF: they are the
  /// shortcut feature the paper debunks, and an online classifier keyed on
  /// them would memorize the flow table instead of the traffic.
  replearn::HeaderFeatureSpec spec{.include_ip_addresses = false};
};

[[nodiscard]] std::size_t flow_feature_dim(const FlowFeatureConfig& cfg);

/// Offline mirror of the engine's incremental featurization: assembles
/// bi-flows, averages header features over each flow's first-N packets, and
/// majority-votes a label per flow from `packet_labels` (flows whose packets
/// are all unlabelled get -1). Flows shorter than `min_packets` are skipped.
struct LabeledFlowFeatures {
  ml::Matrix x;                     // one row per kept flow
  std::vector<int> labels;          // parallel to rows
  std::vector<net::FlowKey> keys;   // parallel to rows
};

LabeledFlowFeatures batch_flow_features(const std::vector<net::Packet>& packets,
                                        const std::vector<int>* packet_labels,
                                        const FlowFeatureConfig& cfg,
                                        std::size_t min_packets = 1);

}  // namespace sugar::serve
