// Hash-sharded, hard-bounded flow table for online classification. Flows
// are assigned to shards by a pure function of the canonical bi-flow key
// (FlowKeyHash % shards) — never by arrival thread — so the same packet
// stream produces the same shard contents at any SUGAR_THREADS value.
//
// Memory bound: every shard owns a preallocated slot slab plus a flat
// feature-accumulator slab (feature_dim floats per slot). Once a shard
// reaches its capacity no code path allocates; admission beyond the bound
// is an explicit policy decision (reject, or evict-to-admit at shed ladder
// stage 3), so the table cannot OOM no matter how hostile the stream is.
// bytes_cap() is the arithmetic bound DESIGN.md §13 quotes.
//
// Concurrency: each per-shard operation takes that shard's mutex, so shard
// workers (one shard each inside the engine's parallel round), a
// maintenance evictor and stats snapshotters can overlap freely.
// LRU order is last-touch order; the tail is always the coldest flow.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/flow.h"

namespace sugar::serve {

struct FlowTableConfig {
  std::size_t shards = 8;
  /// Hard bound on resident flows across all shards (split evenly).
  std::size_t max_flows = 4096;
  /// Width of the per-flow feature accumulator.
  std::size_t feature_dim = 0;
  /// Packets accumulated into the feature sum before it freezes.
  std::size_t classify_at = 8;
  /// Chaos hook: when set and returning true, the next slot creation fails
  /// as if the shard were at capacity (TouchStatus::kFull). Consulted only
  /// on the create path, so resident flows are never affected.
  std::function<bool()> alloc_fault;
};

/// Full state of one resident flow (snapshot serialization) — FlowView plus
/// the LRU-order context a restore needs to rebuild the table exactly.
struct FlowRecord {
  net::FlowKey key;
  std::uint64_t first_ts_usec = 0;
  std::uint64_t last_ts_usec = 0;
  std::uint32_t packets = 0;
  std::uint32_t feature_packets = 0;
  bool classified = false;
  std::vector<float> feature_sum;  // feature_dim floats
};

/// Read-only view of one resident or just-evicted flow.
struct FlowView {
  net::FlowKey key;
  std::uint64_t first_ts_usec = 0;
  std::uint64_t last_ts_usec = 0;
  std::uint32_t packets = 0;          // all packets the flow absorbed
  std::uint32_t feature_packets = 0;  // packets folded into the feature sum
  bool classified = false;            // already labelled at first-N
  const float* feature_sum = nullptr; // feature_dim floats; mean = sum/fp
};

class ShardedFlowTable {
 public:
  static constexpr std::uint32_t kNil = 0xFFFFFFFF;

  explicit ShardedFlowTable(FlowTableConfig cfg);

  [[nodiscard]] const FlowTableConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t shard_capacity() const { return per_shard_cap_; }
  /// Bytes per resident flow (slot + feature accumulator).
  [[nodiscard]] std::size_t bytes_per_flow() const;
  /// Hard upper bound on resident flow-state bytes.
  [[nodiscard]] std::size_t bytes_cap() const;
  /// Resident flow-state bytes right now (live slots x bytes_per_flow).
  [[nodiscard]] std::size_t bytes_resident() const;

  /// Shard a key belongs to — a pure function of the key.
  [[nodiscard]] std::size_t shard_of(const net::FlowKey& key) const {
    return net::FlowKeyHash{}(key) % shards_.size();
  }

  enum class TouchStatus : std::uint8_t {
    kExisting,     // packet joined a resident flow
    kCreated,      // new flow admitted
    kNotAdmitted,  // flow absent and admission disabled (shed ladder)
    kFull,         // flow absent and the shard is at capacity
  };

  struct TouchResult {
    TouchStatus status = TouchStatus::kNotAdmitted;
    std::uint32_t slot = kNil;
    /// The feature sum froze with this packet (feature_packets hit
    /// classify_at and the flow was not yet classified).
    bool ready = false;
  };

  /// Folds one packet into its flow: bumps timestamps/counts, accumulates
  /// `features` (feature_dim floats) while under classify_at, moves the
  /// flow to the LRU head. `admit_new` false refuses to create new flows.
  TouchResult touch(std::size_t shard, const net::FlowKey& key,
                    std::uint64_t ts_usec, const float* features,
                    bool admit_new);

  /// Marks a resident flow as classified (it stays resident and keeps
  /// absorbing packets, but will not be re-scored at eviction).
  void mark_classified(std::size_t shard, std::uint32_t slot);

  /// View of a resident slot. Only valid under the guarantee that no other
  /// thread evicts this shard between touch() and the read — the engine
  /// reads inside the same shard-worker step that touched the flow.
  [[nodiscard]] FlowView view(std::size_t shard, std::uint32_t slot) const;

  using EvictFn = std::function<void(const FlowView&)>;

  /// Evicts flows whose last activity is older than `now - idle_usec`,
  /// walking from the LRU tail. Returns the number evicted.
  std::size_t evict_idle(std::size_t shard, std::uint64_t now_usec,
                         std::uint64_t idle_usec, const EvictFn& fn);

  /// Early-classification sweep (shed ladder stage 2): scans up to
  /// `max_scan` entries from the LRU tail and evicts those carrying at
  /// least `min_packets` feature packets, until the shard's live count
  /// drops to `target_live`. Returns the number evicted.
  std::size_t evict_ready(std::size_t shard, std::size_t target_live,
                          std::size_t min_packets, std::size_t max_scan,
                          const EvictFn& fn);

  /// Evicts the LRU tail unconditionally (shed ladder stage 3 replacement).
  /// False when the shard is empty.
  bool evict_tail(std::size_t shard, const EvictFn& fn);

  /// Evicts everything (flush). Returns the number evicted.
  std::size_t evict_all(std::size_t shard, const EvictFn& fn);

  [[nodiscard]] std::size_t live(std::size_t shard) const;
  [[nodiscard]] std::size_t live_total() const;

  /// Visits every resident flow of a shard in LRU tail→head order (coldest
  /// first) under the shard lock. Replaying the records through
  /// restore_flow() in the same order rebuilds the identical LRU chain,
  /// because each restore inserts at the head.
  void for_each_lru(std::size_t shard,
                    const std::function<void(const FlowRecord&)>& fn) const;

  /// Re-inserts a snapshotted flow at the LRU head (so a tail→head replay
  /// reproduces the original order). False when the shard is at capacity,
  /// the key is already resident, or the record's feature width disagrees
  /// with the table's — a config-mismatch restore must fail loudly, not
  /// truncate accumulators.
  bool restore_flow(std::size_t shard, const FlowRecord& record);

 private:
  struct Slot {
    net::FlowKey key;
    std::uint64_t first_ts_usec = 0;
    std::uint64_t last_ts_usec = 0;
    std::uint32_t packets = 0;
    std::uint32_t feature_packets = 0;
    std::uint32_t lru_prev = kNil;
    std::uint32_t lru_next = kNil;
    bool live = false;
    bool classified = false;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<net::FlowKey, std::uint32_t, net::FlowKeyHash> index;
    std::vector<Slot> slots;         // grows to per_shard_cap_, never beyond
    std::vector<float> features;     // per_shard_cap_ x feature_dim slab
    std::vector<std::uint32_t> free; // recycled slot indices
    std::uint32_t lru_head = kNil;   // most recently touched
    std::uint32_t lru_tail = kNil;   // coldest
    std::size_t live = 0;
  };

  void lru_unlink(Shard& s, std::uint32_t i);
  void lru_push_head(Shard& s, std::uint32_t i);
  FlowView view_locked(const Shard& s, std::uint32_t i) const;
  void release_locked(Shard& s, std::uint32_t i);
  /// Evicts slot i through `fn` (caller holds the shard lock).
  void evict_locked(Shard& s, std::uint32_t i, const EvictFn& fn);

  FlowTableConfig cfg_;
  std::size_t per_shard_cap_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace sugar::serve
