// The Encoder abstraction: a pre-trainable embedding model whose downstream
// training can run frozen (head only) or unfrozen (gradients flow back
// through the encoder) — the switch at the centre of the paper's analysis.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "ml/guard.h"
#include "ml/matrix.h"

namespace sugar::replearn {

struct PretrainOptions {
  int epochs = 4;
  std::size_t batch_size = 64;
  float learning_rate = 1e-3f;
  /// Fraction of inputs masked in MAE-style pre-training.
  float mask_fraction = 0.3f;
  std::uint64_t seed = 97;
  /// Polled at batch granularity inside pre-training loops; pretrain()
  /// throws ml::CancelledError when set (watchdog deadline).
  const ml::CancelToken* cancel = nullptr;
};

class Encoder {
 public:
  virtual ~Encoder() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::size_t input_dim() const = 0;
  [[nodiscard]] virtual std::size_t embed_dim() const = 0;
  [[nodiscard]] virtual std::size_t param_count() const = 0;

  /// Self-supervised pre-training on an unlabelled input matrix.
  virtual void pretrain(const ml::Matrix& x, const PretrainOptions& opts) = 0;

  /// Optional supervised pretext phase (Pcap-Encoder Q&A); default no-op.
  virtual void pretrain_supervised(const ml::Matrix& x, const ml::Matrix& targets,
                                   const PretrainOptions& opts) {
    (void)x;
    (void)targets;
    (void)opts;
  }

  /// Embeds a batch. When `training`, activations are cached so
  /// backward_into() can propagate gradients (the unfrozen path).
  virtual ml::Matrix embed(const ml::Matrix& x, bool training) = 0;

  /// Unfrozen fine-tuning: accept dL/d(embedding) from the head.
  virtual void backward_into(const ml::Matrix& grad_embedding) = 0;
  virtual void zero_grad() = 0;
  virtual void adam_step(float lr) = 0;

  /// Fresh deep copy so each scenario fine-tunes from the same pre-trained
  /// weights.
  [[nodiscard]] virtual std::unique_ptr<Encoder> clone() const = 0;

  /// Re-initializes all weights randomly (Table 6 "w/o Pre-training").
  virtual void reinitialize(std::uint64_t seed) = 0;
};

}  // namespace sugar::replearn
