#include "replearn/pcap_encoder.h"

#include "core/trace.h"

#include <algorithm>
#include <numeric>
#include <random>

namespace sugar::replearn {
namespace {

std::vector<std::size_t> enc_dims(const PcapEncoderConfig& cfg) {
  std::vector<std::size_t> d{cfg.input_dim};
  d.insert(d.end(), cfg.hidden.begin(), cfg.hidden.end());
  d.push_back(cfg.embed_dim);
  return d;
}

}  // namespace

PcapEncoder::PcapEncoder(PcapEncoderConfig cfg)
    : cfg_(std::move(cfg)),
      enc_(enc_dims(cfg_), cfg_.seed),
      dec_({cfg_.embed_dim, cfg_.hidden.back(), cfg_.input_dim}, cfg_.seed ^ 0xAE),
      qa_head_({cfg_.embed_dim, 64, cfg_.qa_dim}, cfg_.seed ^ 0x9A) {}

std::size_t PcapEncoder::param_count() const {
  return enc_.param_count() + dec_.param_count() + qa_head_.param_count();
}

void PcapEncoder::pretrain(const ml::Matrix& x, const PretrainOptions& opts) {
  if (!cfg_.enable_autoencoder_phase) return;
  SUGAR_TRACE_SPAN("replearn.pretrain.pcap_ae");
  std::mt19937_64 rng(opts.seed);
  std::uniform_real_distribution<float> unit(0.0f, 1.0f);
  std::vector<std::size_t> order(x.rows());
  std::iota(order.begin(), order.end(), 0);

  // Batch scratch hoisted out of the loops; the nets' activations live in
  // their arenas, so steady-state batches allocate nothing.
  std::vector<std::size_t> idx;
  ml::Matrix target, noisy, grad;
  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    SUGAR_TRACE_SPAN("replearn.pretrain.epoch");
    SUGAR_TRACE_COUNT("ml.pretrain_epochs", 1);
    std::shuffle(order.begin(), order.end(), rng);
    float epoch_loss = 0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size(); start += opts.batch_size) {
      ml::throw_if_cancelled(opts.cancel, "PcapEncoder::pretrain");
      std::size_t end = std::min(order.size(), start + opts.batch_size);
      idx.assign(order.begin() + static_cast<std::ptrdiff_t>(start),
                 order.begin() + static_cast<std::ptrdiff_t>(end));
      x.take_rows_into(idx, target);
      noisy.copy_from(target);
      for (auto& v : noisy.data())
        if (unit(rng) < opts.mask_fraction * 0.5f) v = 0.0f;

      enc_.zero_grad();
      dec_.zero_grad();
      ml::Matrix& emb = enc_.forward(noisy, true);
      ml::Matrix& recon = dec_.forward(emb, true);
      epoch_loss += ml::mse_loss(recon, target, grad);
      ++batches;
      enc_.backward(dec_.backward(grad));
      dec_.adam_step(opts.learning_rate);
      enc_.adam_step(opts.learning_rate);
    }
    ml::check_loss_finite(epoch_loss / static_cast<float>(std::max<std::size_t>(batches, 1)),
                          "PcapEncoder::pretrain", epoch);
  }
}

void PcapEncoder::pretrain_supervised(const ml::Matrix& x, const ml::Matrix& targets,
                                      const PretrainOptions& opts) {
  if (!cfg_.enable_qa_phase) return;
  SUGAR_TRACE_SPAN("replearn.pretrain.pcap_qa");
  std::mt19937_64 rng(opts.seed ^ 0x2222);
  std::vector<std::size_t> order(x.rows());
  std::iota(order.begin(), order.end(), 0);

  // The Q&A phase runs longer than the AE phase: it is the component the
  // paper's ablation (Table 11) finds most crucial.
  int epochs = opts.epochs * 3;
  std::vector<std::size_t> idx;
  ml::Matrix xb, tb, grad;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    SUGAR_TRACE_SPAN("replearn.pretrain.epoch");
    SUGAR_TRACE_COUNT("ml.pretrain_epochs", 1);
    std::shuffle(order.begin(), order.end(), rng);
    float epoch_loss = 0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size(); start += opts.batch_size) {
      ml::throw_if_cancelled(opts.cancel, "PcapEncoder::pretrain_supervised");
      std::size_t end = std::min(order.size(), start + opts.batch_size);
      idx.assign(order.begin() + static_cast<std::ptrdiff_t>(start),
                 order.begin() + static_cast<std::ptrdiff_t>(end));
      x.take_rows_into(idx, xb);
      targets.take_rows_into(idx, tb);

      enc_.zero_grad();
      qa_head_.zero_grad();
      ml::Matrix& emb = enc_.forward(xb, true);
      ml::Matrix& pred = qa_head_.forward(emb, true);
      epoch_loss += ml::mse_loss(pred, tb, grad);
      ++batches;
      enc_.backward(qa_head_.backward(grad));
      qa_head_.adam_step(opts.learning_rate);
      enc_.adam_step(opts.learning_rate);
    }
    ml::check_loss_finite(epoch_loss / static_cast<float>(std::max<std::size_t>(batches, 1)),
                          "PcapEncoder::pretrain_supervised", epoch);
  }
}

ml::Matrix PcapEncoder::embed(const ml::Matrix& x, bool training) {
  return enc_.forward(x, training);
}

void PcapEncoder::backward_into(const ml::Matrix& grad_embedding) {
  enc_.backward(grad_embedding);
}

void PcapEncoder::zero_grad() { enc_.zero_grad(); }

void PcapEncoder::adam_step(float lr) { enc_.adam_step(lr); }

std::unique_ptr<Encoder> PcapEncoder::clone() const {
  return std::make_unique<PcapEncoder>(*this);
}

void PcapEncoder::reinitialize(std::uint64_t seed) {
  PcapEncoderConfig cfg = cfg_;
  cfg.seed = seed;
  enc_ = ml::MlpNet(enc_dims(cfg), cfg.seed);
  dec_ = ml::MlpNet({cfg.embed_dim, cfg.hidden.back(), cfg.input_dim}, cfg.seed ^ 0xAE);
  qa_head_ = ml::MlpNet({cfg.embed_dim, 64, cfg.qa_dim}, cfg.seed ^ 0x9A);
}

float PcapEncoder::qa_error(const ml::Matrix& x, const ml::Matrix& targets) {
  ml::Matrix& emb = enc_.forward(x, false);
  ml::Matrix& pred = qa_head_.forward(emb, false);
  ml::Matrix grad;
  return ml::mse_loss(pred, targets, grad);
}

}  // namespace sugar::replearn
