#include "replearn/head.h"

#include "core/trace.h"

#include <algorithm>
#include <numeric>
#include <random>
#include <unordered_set>

namespace sugar::replearn {

DownstreamModel::DownstreamModel(std::unique_ptr<Encoder> encoder, int num_classes,
                                 DownstreamConfig cfg)
    : encoder_(std::move(encoder)), cfg_(cfg), num_classes_(num_classes) {
  std::vector<std::size_t> dims{encoder_->embed_dim()};
  dims.insert(dims.end(), cfg_.head_hidden.begin(), cfg_.head_hidden.end());
  dims.push_back(static_cast<std::size_t>(num_classes));
  head_ = ml::MlpNet(dims, cfg_.seed);
}

void DownstreamModel::fit(const ml::Matrix& x, const std::vector<int>& y,
                          const std::vector<int>& groups) {
  SUGAR_TRACE_SPAN("replearn.fit");
  std::mt19937_64 rng(cfg_.seed ^ 0x7EAD);

  // --- Hold out a validation share: whole flows (honest) or random samples.
  std::vector<std::size_t> train_idx, val_idx;
  if (cfg_.validation_fraction > 0 && x.rows() > 40) {
    if (cfg_.flow_holdout_validation && groups.size() == x.rows()) {
      std::vector<int> flow_ids(groups);
      std::sort(flow_ids.begin(), flow_ids.end());
      flow_ids.erase(std::unique(flow_ids.begin(), flow_ids.end()), flow_ids.end());
      std::shuffle(flow_ids.begin(), flow_ids.end(), rng);
      std::size_t n_val_flows = std::max<std::size_t>(
          1, static_cast<std::size_t>(cfg_.validation_fraction *
                                      static_cast<double>(flow_ids.size())));
      std::unordered_set<int> val_flows(flow_ids.begin(),
                                        flow_ids.begin() + static_cast<std::ptrdiff_t>(n_val_flows));
      for (std::size_t i = 0; i < x.rows(); ++i)
        (val_flows.count(groups[i]) ? val_idx : train_idx).push_back(i);
    } else {
      std::vector<std::size_t> order(x.rows());
      std::iota(order.begin(), order.end(), 0);
      std::shuffle(order.begin(), order.end(), rng);
      std::size_t n_val = static_cast<std::size_t>(
          cfg_.validation_fraction * static_cast<double>(order.size()));
      val_idx.assign(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(n_val));
      train_idx.assign(order.begin() + static_cast<std::ptrdiff_t>(n_val), order.end());
    }
  }
  if (train_idx.empty()) {
    train_idx.resize(x.rows());
    std::iota(train_idx.begin(), train_idx.end(), 0);
    val_idx.clear();
  }

  ml::Matrix x_val;
  std::vector<int> y_val;
  if (!val_idx.empty()) {
    x_val = x.take_rows(val_idx);
    y_val.reserve(val_idx.size());
    for (std::size_t i : val_idx) y_val.push_back(y[i]);
  }

  // Frozen path: embeddings never change, so compute them once.
  ml::Matrix frozen_emb;
  if (cfg_.frozen) frozen_emb = encoder_->embed(x, /*training=*/false);

  auto validation_accuracy = [&]() -> double {
    if (val_idx.empty()) return 0.0;
    ml::Matrix emb = cfg_.frozen ? frozen_emb.take_rows(val_idx)
                                 : encoder_->embed(x_val, false);
    const ml::Matrix& logits = head_.forward(emb, false);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < logits.rows(); ++i) {
      const float* r = logits.row(i);
      int pred = static_cast<int>(std::max_element(r, r + logits.cols()) - r);
      if (pred == y_val[i]) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(logits.rows());
  };

  double best_val = -1.0;
  int stall = 0;
  ml::MlpNet best_head;
  std::unique_ptr<Encoder> best_encoder;

  // Batch scratch hoisted out of the epoch loop. `xb` and `emb` must
  // outlive each backward pass: the nets cache their training inputs by
  // pointer, so feeding a temporary to embed(..., true) would dangle.
  std::vector<std::size_t> idx;
  std::vector<int> yb;
  ml::Matrix xb, emb, grad;
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    SUGAR_TRACE_SPAN("replearn.fit.epoch");
    const std::size_t allocs_before = head_.arena().heap_allocations();
    std::shuffle(train_idx.begin(), train_idx.end(), rng);
    float epoch_loss = 0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < train_idx.size(); start += cfg_.batch_size) {
      ml::throw_if_cancelled(cfg_.cancel, "DownstreamModel::fit");
      std::size_t end = std::min(train_idx.size(), start + cfg_.batch_size);
      idx.assign(train_idx.begin() + static_cast<std::ptrdiff_t>(start),
                 train_idx.begin() + static_cast<std::ptrdiff_t>(end));
      yb.resize(idx.size());
      for (std::size_t i = 0; i < idx.size(); ++i) yb[i] = y[idx[i]];

      if (cfg_.frozen) {
        frozen_emb.take_rows_into(idx, emb);
      } else {
        x.take_rows_into(idx, xb);
        emb = encoder_->embed(xb, true);
      }
      head_.zero_grad();
      ml::Matrix& logits = head_.forward(emb, true);
      epoch_loss += ml::softmax_cross_entropy(logits, yb, grad);
      ++batches;
      ml::Matrix& grad_emb = head_.backward(grad);
      head_.adam_step(cfg_.lr_head);

      if (!cfg_.frozen) {
        encoder_->zero_grad();
        encoder_->backward_into(grad_emb);
        encoder_->adam_step(cfg_.lr_encoder);
      }
    }
    ml::check_loss_finite(epoch_loss / static_cast<float>(std::max<std::size_t>(batches, 1)),
                          "DownstreamModel::fit", epoch);
    SUGAR_TRACE_COUNT("ml.epochs", 1);
    SUGAR_TRACE_COUNT("ml.arena_growths",
                      head_.arena().heap_allocations() - allocs_before);

    if (!val_idx.empty()) {
      double acc = validation_accuracy();
      if (acc > best_val + 1e-9) {
        best_val = acc;
        stall = 0;
        best_head = head_;
        if (!cfg_.frozen) best_encoder = encoder_->clone();
      } else if (++stall >= cfg_.patience) {
        break;
      }
    }
  }

  // Restore the best validation epoch.
  if (best_val >= 0) {
    head_ = std::move(best_head);
    if (best_encoder) encoder_ = std::move(best_encoder);
  }
}

std::vector<int> DownstreamModel::predict(const ml::Matrix& x) {
  SUGAR_TRACE_SPAN("replearn.predict");
  ml::Matrix emb = encoder_->embed(x, false);
  const ml::Matrix& logits = head_.forward(emb, false);
  std::vector<int> out(x.rows(), 0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const float* r = logits.row(i);
    out[i] = static_cast<int>(std::max_element(r, r + logits.cols()) - r);
  }
  return out;
}

ml::Matrix DownstreamModel::embeddings(const ml::Matrix& x) {
  return encoder_->embed(x, false);
}

}  // namespace sugar::replearn
