// Pcap-Encoder analog (the paper's own proposal, §3.4): a header-only
// encoder trained in two phases — (1) byte auto-encoding of the protocol
// headers, (2) supervised Q&A pretext tasks that force the embedding to
// expose header *semantics* (TTL, addresses, checksum validity, payload
// length, header boundary; Table 10). The payload never enters the input,
// so by construction the model cannot chase encrypted-byte mirages.
#pragma once

#include "ml/nn.h"
#include "replearn/encoder.h"

namespace sugar::replearn {

struct PcapEncoderConfig {
  std::string name = "Pcap-Encoder";
  std::size_t input_dim = 60;  // header bytes only
  std::vector<std::size_t> hidden = {256, 256};
  std::size_t embed_dim = 128;
  std::size_t qa_dim = 95;
  std::uint64_t seed = 13;
  /// Ablation switches (Table 11): run only some pre-training phases.
  bool enable_autoencoder_phase = true;
  bool enable_qa_phase = true;
};

class PcapEncoder : public Encoder {
 public:
  explicit PcapEncoder(PcapEncoderConfig cfg);

  [[nodiscard]] std::string name() const override { return cfg_.name; }
  [[nodiscard]] std::size_t input_dim() const override { return cfg_.input_dim; }
  [[nodiscard]] std::size_t embed_dim() const override { return cfg_.embed_dim; }
  [[nodiscard]] std::size_t param_count() const override;

  /// Phase 1 (T5-AE analog): denoising auto-encoding of header bytes.
  void pretrain(const ml::Matrix& x, const PretrainOptions& opts) override;

  /// Phase 2 (Q&A analog): multi-task regression onto the 8 questions'
  /// normalized answers. Gradients flow into the encoder.
  void pretrain_supervised(const ml::Matrix& x, const ml::Matrix& targets,
                           const PretrainOptions& opts) override;

  ml::Matrix embed(const ml::Matrix& x, bool training) override;
  void backward_into(const ml::Matrix& grad_embedding) override;
  void zero_grad() override;
  void adam_step(float lr) override;
  [[nodiscard]] std::unique_ptr<Encoder> clone() const override;
  void reinitialize(std::uint64_t seed) override;

  /// Mean squared error of the Q&A head on given data (the paper reports
  /// 98.2 % average accuracy on its question set; we report the analogous
  /// regression quality).
  float qa_error(const ml::Matrix& x, const ml::Matrix& targets);

  [[nodiscard]] const PcapEncoderConfig& config() const { return cfg_; }

 private:
  PcapEncoderConfig cfg_;
  ml::MlpNet enc_;
  ml::MlpNet dec_;      // phase-1 reconstruction head
  ml::MlpNet qa_head_;  // phase-2 question head
};

}  // namespace sugar::replearn
