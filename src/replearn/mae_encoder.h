// Masked-autoencoder byte encoder: the laptop-scale analog of the MAE-style
// pre-training shared by ET-BERT, TrafficFormer, YaTC, NetMamba and
// netFound. Random input positions are masked and the encoder/decoder pair
// is trained to reconstruct the original bytes. On encrypted payloads this
// objective is unsatisfiable by design — reproducing the paper's point that
// the resulting embedding carries little task-relevant information.
#pragma once

#include "ml/nn.h"
#include "replearn/encoder.h"

namespace sugar::replearn {

struct MaeEncoderConfig {
  std::string name = "MAE";
  std::size_t input_dim = 200;
  std::vector<std::size_t> hidden = {128};
  std::size_t embed_dim = 64;
  std::uint64_t seed = 11;
};

class MaeEncoder : public Encoder {
 public:
  explicit MaeEncoder(MaeEncoderConfig cfg);

  [[nodiscard]] std::string name() const override { return cfg_.name; }
  [[nodiscard]] std::size_t input_dim() const override { return cfg_.input_dim; }
  [[nodiscard]] std::size_t embed_dim() const override { return cfg_.embed_dim; }
  [[nodiscard]] std::size_t param_count() const override;

  void pretrain(const ml::Matrix& x, const PretrainOptions& opts) override;
  ml::Matrix embed(const ml::Matrix& x, bool training) override;
  void backward_into(const ml::Matrix& grad_embedding) override;
  void zero_grad() override;
  void adam_step(float lr) override;
  [[nodiscard]] std::unique_ptr<Encoder> clone() const override;
  void reinitialize(std::uint64_t seed) override;

  /// Reconstruction MSE on held-out data (diagnostics / tests).
  float reconstruction_error(const ml::Matrix& x);

 protected:
  MaeEncoderConfig cfg_;
  ml::MlpNet enc_;
  ml::MlpNet dec_;
};

}  // namespace sugar::replearn
