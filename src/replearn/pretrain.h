// Pre-training driver: runs a model bundle's self-supervised phase (and,
// for Pcap-Encoder, the supervised Q&A phase) on an unlabelled backbone
// trace — the stand-in for the paper's MAWI/UNSW/campus pre-training mix.
#pragma once

#include "dataset/task.h"
#include "replearn/model_zoo.h"

namespace sugar::replearn {

struct BackbonePretrainOptions {
  PretrainOptions pretrain;
  /// Cap on pre-training samples (packets drawn from the backbone).
  std::size_t max_samples = 8000;
  std::uint64_t seed = 1009;
};

/// Pre-trains `bundle.encoder` in place on the backbone dataset. Packet
/// views follow the bundle's input policy; flow-mode bundles pre-train on
/// single-packet windows tiled to the flow view, mirroring how the surveyed
/// models pre-train on bursts.
void pretrain_on_backbone(ModelBundle& bundle, const dataset::PacketDataset& backbone,
                          const BackbonePretrainOptions& opts);

}  // namespace sugar::replearn
