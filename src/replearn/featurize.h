// Packet featurizers: the byte views each representation-learning model
// consumes (mirroring the per-model input policies of Appendix A.2), the
// hand-crafted header feature vector the shallow baselines use (Table 12),
// and the Q&A pretext targets of Pcap-Encoder (Table 10).
#pragma once

#include <string>
#include <vector>

#include "dataset/task.h"
#include "ml/matrix.h"

namespace sugar::replearn {

/// Byte-view policy: which slice of the packet becomes the model input and
/// which fields are anonymized first. Bytes are scaled to [0,1].
struct ByteViewSpec {
  std::size_t length = 200;       // fixed input size, zero-padded
  bool include_ip_header = true;  // ET-BERT drops it entirely
  bool include_l4_header = true;
  bool include_payload = true;    // Pcap-Encoder drops it entirely
  bool zero_ip_addresses = false; // YaTC/NetMamba/TrafficFormer anonymization
  bool zero_ports = false;
  /// Repeat the view this many times (the paper's "Repeat" strategy that
  /// feeds one packet to a 5-packet flow-embedder).
  int repeat = 1;
  /// Bit encoding: 8 features per byte instead of one byte/255 float. This
  /// mirrors how token-based models treat bytes as categorical symbols —
  /// exact byte patterns (the implicit flow ids!) become linearly
  /// separable, which is what lets an unfrozen model memorize them.
  bool bit_encode = false;

  [[nodiscard]] std::size_t bytes_dim() const { return length * (bit_encode ? 8 : 1); }
  [[nodiscard]] std::size_t dim() const {
    return bytes_dim() * static_cast<std::size_t>(repeat);
  }
};

/// Extracts one packet's byte view into out[0..spec.dim()).
void extract_byte_view(const net::Packet& pkt, const net::ParsedPacket& parsed,
                       const ByteViewSpec& spec, float* out);

/// Byte-view matrix over a dataset subset.
ml::Matrix byte_view_matrix(const dataset::PacketDataset& ds,
                            const std::vector<std::size_t>& indices,
                            const ByteViewSpec& spec);

/// netFound-style multimodal per-packet features: normalized header fields,
/// direction, log inter-arrival, plus the first 12 payload bytes.
struct MultimodalSpec {
  std::size_t payload_bytes = 12;
  [[nodiscard]] std::size_t dim() const { return 14 + payload_bytes; }
};

/// `flow_context`, when provided, carries per-packet (direction,
/// log-inter-arrival) pairs — filled by flow-level featurization so the
/// netFound analog sees its multimodal signals; packet-level callers pass
/// nullptr and get the paper's constant padding.
struct FlowPacketContext {
  float direction = 0.5f;        // 1 = client->server, 0 = reverse
  float log_interarrival = 0.0f; // log1p(usec)/20, clamped to [0,1]
};

ml::Matrix multimodal_matrix(const dataset::PacketDataset& ds,
                             const std::vector<std::size_t>& indices,
                             const MultimodalSpec& spec,
                             const std::vector<FlowPacketContext>* flow_context = nullptr);

/// Hand-crafted header features for the shallow baselines (Table 12 fields:
/// IP addresses/TOS/IHL/ID/checksum/flags/length/proto/version/TTL/frag,
/// ports/timestamp/window/urgent/offset/flags/checksum/seq/ack for TCP, and
/// UDP port/len/checksum). Missing-protocol fields are zero-padded.
struct HeaderFeatureSpec {
  bool include_ip_addresses = true;  // Table 8's "w/o IP addr" toggle
};

std::vector<std::string> header_feature_names(const HeaderFeatureSpec& spec = {});
void extract_header_features(const net::Packet& pkt, const net::ParsedPacket& parsed,
                             const HeaderFeatureSpec& spec, float* out);
ml::Matrix header_feature_matrix(const dataset::PacketDataset& ds,
                                 const std::vector<std::size_t>& indices,
                                 const HeaderFeatureSpec& spec = {});

/// Q&A pretext targets (Pcap-Encoder phase 2, Table 10): normalized values
/// for the 8 retrieval/computational questions.
std::vector<std::string> qa_target_names();
std::size_t qa_target_dim();
void extract_qa_targets(const net::Packet& pkt, const net::ParsedPacket& parsed,
                        float* out);
ml::Matrix qa_target_matrix(const dataset::PacketDataset& ds,
                            const std::vector<std::size_t>& indices);

}  // namespace sugar::replearn
