// Downstream classification: a two-layer MLP head on top of an Encoder,
// trainable with the encoder frozen (head sees fixed embeddings — the
// paper's recommended probe of representation quality) or unfrozen
// (gradients flow through the encoder — the end-to-end regime in which
// prior work unknowingly re-trained their models onto shortcuts).
#pragma once

#include <memory>

#include "ml/metrics.h"
#include "ml/nn.h"
#include "replearn/encoder.h"

namespace sugar::replearn {

struct DownstreamConfig {
  bool frozen = true;
  int epochs = 15;
  std::size_t batch_size = 48;
  /// Frozen training uses a larger head LR (the paper: 2e-3 frozen vs 2e-5
  /// unfrozen for ET-BERT); unfrozen uses a smaller LR on the encoder.
  float lr_head = 2e-3f;
  float lr_encoder = 1e-3f;
  std::vector<std::size_t> head_hidden = {128};
  std::uint64_t seed = 41;

  /// Early stopping (the paper's protocol for TrafficFormer/netFound):
  /// a validation share is held out of the training set, and the weights
  /// of the best validation epoch are restored at the end.
  double validation_fraction = 0.15;
  int patience = 4;
  /// When true, validation holds out whole flows (the honest policy used
  /// with the per-flow split); when false, it holds out random samples
  /// (what per-packet-split pipelines effectively did).
  bool flow_holdout_validation = true;

  /// Polled at batch granularity; fit() throws ml::CancelledError when set
  /// (the supervisor's watchdog deadline).
  const ml::CancelToken* cancel = nullptr;
};

/// Encoder + head pair trained for one downstream task.
class DownstreamModel {
 public:
  DownstreamModel(std::unique_ptr<Encoder> encoder, int num_classes,
                  DownstreamConfig cfg);

  /// `groups` optionally provides a flow id per sample for flow-holdout
  /// validation; pass an empty vector for sample-level holdout.
  void fit(const ml::Matrix& x, const std::vector<int>& y,
           const std::vector<int>& groups = {});
  [[nodiscard]] std::vector<int> predict(const ml::Matrix& x);

  /// Embeddings under the current encoder weights (Figure 4's analysis).
  [[nodiscard]] ml::Matrix embeddings(const ml::Matrix& x);

  [[nodiscard]] Encoder& encoder() { return *encoder_; }
  [[nodiscard]] const DownstreamConfig& config() const { return cfg_; }

 private:
  std::unique_ptr<Encoder> encoder_;
  ml::MlpNet head_;
  DownstreamConfig cfg_;
  int num_classes_;
};

}  // namespace sugar::replearn
