#include "replearn/featurize.h"

#include "core/trace.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "net/checksum.h"

namespace sugar::replearn {
namespace {

/// Copies a header/payload slice into a scratch byte buffer applying the
/// anonymization toggles of the spec.
std::vector<std::uint8_t> view_bytes(const net::Packet& pkt,
                                     const net::ParsedPacket& parsed,
                                     const ByteViewSpec& spec) {
  std::vector<std::uint8_t> bytes;
  const auto& d = pkt.data;
  std::size_t l3 = parsed.l3_offset;
  std::size_t l4 = parsed.l4_offset ? parsed.l4_offset : d.size();
  std::size_t pay = parsed.payload_offset ? parsed.payload_offset : d.size();

  std::size_t ip_begin = bytes.size();
  if (spec.include_ip_header && parsed.has_ip() && l4 > l3)
    bytes.insert(bytes.end(), d.begin() + static_cast<std::ptrdiff_t>(l3),
                 d.begin() + static_cast<std::ptrdiff_t>(std::min(l4, d.size())));
  if (spec.zero_ip_addresses && spec.include_ip_header && parsed.ipv4 &&
      bytes.size() >= ip_begin + 20)
    std::fill(bytes.begin() + static_cast<std::ptrdiff_t>(ip_begin + 12),
              bytes.begin() + static_cast<std::ptrdiff_t>(ip_begin + 20), 0);

  std::size_t l4_begin = bytes.size();
  if (spec.include_l4_header && parsed.has_l4() && pay > l4)
    bytes.insert(bytes.end(), d.begin() + static_cast<std::ptrdiff_t>(l4),
                 d.begin() + static_cast<std::ptrdiff_t>(std::min(pay, d.size())));
  if (spec.zero_ports && spec.include_l4_header && (parsed.tcp || parsed.udp) &&
      bytes.size() >= l4_begin + 4)
    std::fill(bytes.begin() + static_cast<std::ptrdiff_t>(l4_begin),
              bytes.begin() + static_cast<std::ptrdiff_t>(l4_begin + 4), 0);

  if (spec.include_payload && parsed.payload_offset &&
      parsed.payload_offset < d.size()) {
    std::size_t n = std::min(parsed.payload_len, d.size() - parsed.payload_offset);
    bytes.insert(bytes.end(),
                 d.begin() + static_cast<std::ptrdiff_t>(parsed.payload_offset),
                 d.begin() + static_cast<std::ptrdiff_t>(parsed.payload_offset + n));
  }
  return bytes;
}

}  // namespace

void extract_byte_view(const net::Packet& pkt, const net::ParsedPacket& parsed,
                       const ByteViewSpec& spec, float* out) {
  auto bytes = view_bytes(pkt, parsed, spec);
  std::size_t n = std::min(bytes.size(), spec.length);
  std::size_t stride = spec.bytes_dim();
  for (int rep = 0; rep < spec.repeat; ++rep) {
    float* o = out + static_cast<std::ptrdiff_t>(stride) * rep;
    if (spec.bit_encode) {
      for (std::size_t i = 0; i < n; ++i)
        for (int b = 0; b < 8; ++b)
          o[i * 8 + static_cast<std::size_t>(b)] =
              static_cast<float>((bytes[i] >> b) & 1);
      std::fill(o + n * 8, o + stride, 0.0f);
    } else {
      for (std::size_t i = 0; i < n; ++i) o[i] = static_cast<float>(bytes[i]) / 255.0f;
      std::fill(o + n, o + stride, 0.0f);
    }
  }
}

ml::Matrix byte_view_matrix(const dataset::PacketDataset& ds,
                            const std::vector<std::size_t>& indices,
                            const ByteViewSpec& spec) {
  ml::Matrix x(indices.size(), spec.dim());
  for (std::size_t i = 0; i < indices.size(); ++i)
    extract_byte_view(ds.packets[indices[i]], ds.parsed[indices[i]], spec, x.row(i));
  return x;
}

ml::Matrix multimodal_matrix(const dataset::PacketDataset& ds,
                             const std::vector<std::size_t>& indices,
                             const MultimodalSpec& spec,
                             const std::vector<FlowPacketContext>* flow_context) {
  ml::Matrix x(indices.size(), spec.dim());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto& pkt = ds.packets[indices[i]];
    const auto& p = ds.parsed[indices[i]];
    float* o = x.row(i);
    std::size_t j = 0;
    o[j++] = static_cast<float>(pkt.data.size()) / 1600.0f;
    o[j++] = static_cast<float>(p.payload_len) / 1500.0f;
    o[j++] = p.ipv4 ? static_cast<float>(p.ipv4->ttl) / 255.0f : 0.0f;
    o[j++] = p.tcp ? static_cast<float>(p.tcp->window) / 65535.0f : 0.0f;
    o[j++] = p.tcp ? static_cast<float>(p.tcp->flags_byte()) / 255.0f : 0.0f;
    o[j++] = static_cast<float>(p.ip_protocol()) / 255.0f;
    o[j++] = p.tcp ? 1.0f : 0.0f;
    o[j++] = p.udp ? 1.0f : 0.0f;
    o[j++] = p.src_port() ? static_cast<float>(*p.src_port()) / 65535.0f : 0.0f;
    o[j++] = p.dst_port() ? static_cast<float>(*p.dst_port()) / 65535.0f : 0.0f;
    // Direction and inter-arrival are flow-level signals; on the packet
    // task they are padded with constants, per the paper's netFound setup.
    if (flow_context && i < flow_context->size()) {
      o[j++] = (*flow_context)[i].direction;
      o[j++] = (*flow_context)[i].log_interarrival;
    } else {
      o[j++] = 0.5f;                     // direction placeholder
      o[j++] = 0.0f;                     // log inter-arrival placeholder
    }
    o[j++] = p.tcp && p.tcp->options.timestamp ? 1.0f : 0.0f;
    o[j++] = p.ipv4 ? static_cast<float>(p.ipv4->identification) / 65535.0f : 0.0f;
    auto payload = p.payload_view(pkt);
    for (std::size_t b = 0; b < spec.payload_bytes; ++b)
      o[j++] = b < payload.size() ? static_cast<float>(payload[b]) / 255.0f : 0.0f;
  }
  return x;
}

std::vector<std::string> header_feature_names(const HeaderFeatureSpec& spec) {
  std::vector<std::string> names;
  if (spec.include_ip_addresses) {
    for (int i = 0; i < 4; ++i) names.push_back("SRC IP" + std::to_string(i));
    for (int i = 0; i < 4; ++i) names.push_back("DST IP" + std::to_string(i));
  }
  for (const char* n :
       {"IP ToS", "IP IHL", "IP ID", "IP Checksum", "IP DF", "IP MF",
        "IP Length", "IP Proto", "IP Version", "IP TTL", "IP FragOff",
        "SRC Port", "DST Port", "TCP SeqNo", "TCP AckNo", "TCP Window",
        "TCP Urgent", "TCP DataOff", "TCP Flags", "TCP Checksum", "TCP TSval",
        "TCP TSecr", "TCP MSS", "TCP WScale", "TCP SACKok", "UDP Length",
        "UDP Checksum", "Payload Length"})
    names.emplace_back(n);
  return names;
}

void extract_header_features(const net::Packet& pkt, const net::ParsedPacket& p,
                             const HeaderFeatureSpec& spec, float* out) {
  (void)pkt;
  std::size_t j = 0;
  if (spec.include_ip_addresses) {
    for (int i = 0; i < 4; ++i)
      out[j++] = p.ipv4 ? static_cast<float>(p.ipv4->src.octet(i)) : 0.0f;
    for (int i = 0; i < 4; ++i)
      out[j++] = p.ipv4 ? static_cast<float>(p.ipv4->dst.octet(i)) : 0.0f;
  }
  out[j++] = p.ipv4 ? p.ipv4->tos : 0.0f;
  out[j++] = p.ipv4 ? p.ipv4->ihl : 0.0f;
  out[j++] = p.ipv4 ? p.ipv4->identification : 0.0f;
  out[j++] = p.ipv4 ? p.ipv4->header_checksum : 0.0f;
  out[j++] = p.ipv4 && p.ipv4->dont_fragment ? 1.0f : 0.0f;
  out[j++] = p.ipv4 && p.ipv4->more_fragments ? 1.0f : 0.0f;
  out[j++] = p.ipv4 ? p.ipv4->total_length : (p.ipv6 ? p.ipv6->payload_length : 0.0f);
  out[j++] = static_cast<float>(p.ip_protocol());
  out[j++] = p.ipv4 ? 4.0f : (p.ipv6 ? 6.0f : 0.0f);
  out[j++] = p.ipv4 ? p.ipv4->ttl : (p.ipv6 ? p.ipv6->hop_limit : 0.0f);
  out[j++] = p.ipv4 ? p.ipv4->fragment_offset : 0.0f;
  out[j++] = p.src_port() ? static_cast<float>(*p.src_port()) : 0.0f;
  out[j++] = p.dst_port() ? static_cast<float>(*p.dst_port()) : 0.0f;
  out[j++] = p.tcp ? static_cast<float>(p.tcp->seq) : 0.0f;
  out[j++] = p.tcp ? static_cast<float>(p.tcp->ack) : 0.0f;
  out[j++] = p.tcp ? p.tcp->window : 0.0f;
  out[j++] = p.tcp ? p.tcp->urgent_pointer : 0.0f;
  out[j++] = p.tcp ? p.tcp->data_offset : 0.0f;
  out[j++] = p.tcp ? p.tcp->flags_byte() : 0.0f;
  out[j++] = p.tcp ? p.tcp->checksum : 0.0f;
  out[j++] = p.tcp && p.tcp->options.timestamp
                 ? static_cast<float>(p.tcp->options.timestamp->first)
                 : 0.0f;
  out[j++] = p.tcp && p.tcp->options.timestamp
                 ? static_cast<float>(p.tcp->options.timestamp->second)
                 : 0.0f;
  out[j++] = p.tcp && p.tcp->options.mss ? *p.tcp->options.mss : 0.0f;
  out[j++] = p.tcp && p.tcp->options.window_scale ? *p.tcp->options.window_scale : 0.0f;
  out[j++] = p.tcp && p.tcp->options.sack_permitted ? 1.0f : 0.0f;
  out[j++] = p.udp ? p.udp->length : 0.0f;
  out[j++] = p.udp ? p.udp->checksum : 0.0f;
  out[j++] = static_cast<float>(p.payload_len);
}

ml::Matrix header_feature_matrix(const dataset::PacketDataset& ds,
                                 const std::vector<std::size_t>& indices,
                                 const HeaderFeatureSpec& spec) {
  SUGAR_TRACE_SPAN("featurize.header");
  SUGAR_TRACE_COUNT("featurize.packets", indices.size());
  std::size_t d = header_feature_names(spec).size();
  ml::Matrix x(indices.size(), d);
  for (std::size_t i = 0; i < indices.size(); ++i)
    extract_header_features(ds.packets[indices[i]], ds.parsed[indices[i]], spec,
                            x.row(i));
  return x;
}

std::vector<std::string> qa_target_names() {
  std::vector<std::string> names;
  // The paper's T5 answers questions *textually* — digit by digit, i.e.,
  // categorically. The analog here: address/ttl/window answers are encoded
  // bitwise, so the embedding is forced to expose these fields in a form a
  // downstream head can pattern-match, not merely as fuzzy scalars.
  for (const char* field : {"src_ip", "dst_ip"})
    for (int o = 0; o < 4; ++o)
      for (int b = 0; b < 8; ++b)
        names.push_back(std::string(field) + std::to_string(o) + "_bit" +
                        std::to_string(b));
  for (int b = 0; b < 8; ++b) names.push_back("ttl_bit" + std::to_string(b));
  for (int b = 0; b < 16; ++b) names.push_back("window_bit" + std::to_string(b));
  for (const char* n : {"tcp_checksum", "ip_id", "checksum_ok", "header_end",
                        "payload_len", "src_port", "dst_port"})
    names.emplace_back(n);
  return names;
}

std::size_t qa_target_dim() { return qa_target_names().size(); }

void extract_qa_targets(const net::Packet& pkt, const net::ParsedPacket& p,
                        float* out) {
  std::size_t j = 0;
  auto put_bits = [&](std::uint32_t v, int bits) {
    for (int b = 0; b < bits; ++b) out[j++] = static_cast<float>((v >> b) & 1);
  };
  for (int o = 0; o < 4; ++o)
    put_bits(p.ipv4 ? p.ipv4->src.octet(o) : 0, 8);
  for (int o = 0; o < 4; ++o)
    put_bits(p.ipv4 ? p.ipv4->dst.octet(o) : 0, 8);
  put_bits(p.ipv4 ? p.ipv4->ttl : (p.ipv6 ? p.ipv6->hop_limit : 0), 8);
  put_bits(p.tcp ? p.tcp->window : 0, 16);

  out[j++] = p.tcp ? static_cast<float>(p.tcp->checksum) / 65535.0f : 0.0f;
  out[j++] = p.ipv4 ? static_cast<float>(p.ipv4->identification) / 65535.0f : 0.0f;
  // "Is the packet's IP checksum correct?" — verified from the wire bytes.
  float ok = 0.0f;
  if (p.ipv4 && p.l3_offset + p.ipv4->header_len() <= pkt.data.size()) {
    auto hdr = std::span{pkt.data}.subspan(p.l3_offset, p.ipv4->header_len());
    ok = net::checksum(hdr) == 0 ? 1.0f : 0.0f;  // sum incl. stored checksum
  }
  out[j++] = ok;
  // "Which is the last byte of the header in the third layer?"
  out[j++] = p.payload_offset > p.l3_offset
                 ? static_cast<float>(p.payload_offset - p.l3_offset) / 128.0f
                 : 0.0f;
  out[j++] = static_cast<float>(std::min<std::size_t>(p.payload_len, 3000)) / 3000.0f;
  out[j++] = p.src_port() ? static_cast<float>(*p.src_port()) / 65535.0f : 0.0f;
  out[j++] = p.dst_port() ? static_cast<float>(*p.dst_port()) / 65535.0f : 0.0f;
}

ml::Matrix qa_target_matrix(const dataset::PacketDataset& ds,
                            const std::vector<std::size_t>& indices) {
  ml::Matrix t(indices.size(), qa_target_dim());
  for (std::size_t i = 0; i < indices.size(); ++i)
    extract_qa_targets(ds.packets[indices[i]], ds.parsed[indices[i]], t.row(i));
  return t;
}

}  // namespace sugar::replearn
