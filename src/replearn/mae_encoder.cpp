#include "replearn/mae_encoder.h"

#include "core/trace.h"

#include <algorithm>
#include <numeric>
#include <random>

namespace sugar::replearn {
namespace {

std::vector<std::size_t> enc_dims(const MaeEncoderConfig& cfg) {
  std::vector<std::size_t> d{cfg.input_dim};
  d.insert(d.end(), cfg.hidden.begin(), cfg.hidden.end());
  d.push_back(cfg.embed_dim);
  return d;
}

std::vector<std::size_t> dec_dims(const MaeEncoderConfig& cfg) {
  std::vector<std::size_t> d{cfg.embed_dim};
  for (auto it = cfg.hidden.rbegin(); it != cfg.hidden.rend(); ++it) d.push_back(*it);
  d.push_back(cfg.input_dim);
  return d;
}

}  // namespace

MaeEncoder::MaeEncoder(MaeEncoderConfig cfg)
    : cfg_(std::move(cfg)),
      enc_(enc_dims(cfg_), cfg_.seed),
      dec_(dec_dims(cfg_), cfg_.seed ^ 0xDEC0DE) {}

std::size_t MaeEncoder::param_count() const {
  return enc_.param_count() + dec_.param_count();
}

void MaeEncoder::pretrain(const ml::Matrix& x, const PretrainOptions& opts) {
  SUGAR_TRACE_SPAN("replearn.pretrain.mae");
  std::mt19937_64 rng(opts.seed);
  std::uniform_real_distribution<float> unit(0.0f, 1.0f);
  std::vector<std::size_t> order(x.rows());
  std::iota(order.begin(), order.end(), 0);

  // Batch scratch hoisted out of the loops; the nets' activations live in
  // their arenas, so steady-state batches allocate nothing.
  std::vector<std::size_t> idx;
  ml::Matrix target, masked, grad;
  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    SUGAR_TRACE_SPAN("replearn.pretrain.epoch");
    SUGAR_TRACE_COUNT("ml.pretrain_epochs", 1);
    std::shuffle(order.begin(), order.end(), rng);
    float epoch_loss = 0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size(); start += opts.batch_size) {
      ml::throw_if_cancelled(opts.cancel, "MaeEncoder::pretrain");
      std::size_t end = std::min(order.size(), start + opts.batch_size);
      idx.assign(order.begin() + static_cast<std::ptrdiff_t>(start),
                 order.begin() + static_cast<std::ptrdiff_t>(end));
      x.take_rows_into(idx, target);
      masked.copy_from(target);
      for (auto& v : masked.data())
        if (unit(rng) < opts.mask_fraction) v = 0.0f;

      enc_.zero_grad();
      dec_.zero_grad();
      ml::Matrix& emb = enc_.forward(masked, /*training=*/true);
      ml::Matrix& recon = dec_.forward(emb, /*training=*/true);
      epoch_loss += ml::mse_loss(recon, target, grad);
      ++batches;
      ml::Matrix& grad_emb = dec_.backward(grad);
      enc_.backward(grad_emb);
      dec_.adam_step(opts.learning_rate);
      enc_.adam_step(opts.learning_rate);
    }
    ml::check_loss_finite(epoch_loss / static_cast<float>(std::max<std::size_t>(batches, 1)),
                          "MaeEncoder::pretrain", epoch);
  }
}

ml::Matrix MaeEncoder::embed(const ml::Matrix& x, bool training) {
  return enc_.forward(x, training);
}

void MaeEncoder::backward_into(const ml::Matrix& grad_embedding) {
  enc_.backward(grad_embedding);
}

void MaeEncoder::zero_grad() { enc_.zero_grad(); }

void MaeEncoder::adam_step(float lr) { enc_.adam_step(lr); }

std::unique_ptr<Encoder> MaeEncoder::clone() const {
  return std::make_unique<MaeEncoder>(*this);
}

void MaeEncoder::reinitialize(std::uint64_t seed) {
  MaeEncoderConfig cfg = cfg_;
  cfg.seed = seed;
  enc_ = ml::MlpNet(enc_dims(cfg), cfg.seed);
  dec_ = ml::MlpNet(dec_dims(cfg), cfg.seed ^ 0xDEC0DE);
}

float MaeEncoder::reconstruction_error(const ml::Matrix& x) {
  ml::Matrix& emb = enc_.forward(x, false);
  ml::Matrix& recon = dec_.forward(emb, false);
  ml::Matrix grad;
  return ml::mse_loss(recon, x, grad);
}

}  // namespace sugar::replearn
