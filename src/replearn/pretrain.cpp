#include "replearn/pretrain.h"

#include "core/trace.h"

#include <algorithm>
#include <numeric>
#include <random>

namespace sugar::replearn {

void pretrain_on_backbone(ModelBundle& bundle, const dataset::PacketDataset& backbone,
                          const BackbonePretrainOptions& opts) {
  SUGAR_TRACE_SPAN("replearn.pretrain_backbone");
  std::vector<std::size_t> indices(backbone.size());
  std::iota(indices.begin(), indices.end(), 0);
  if (indices.size() > opts.max_samples) {
    std::mt19937_64 rng(opts.seed);
    std::shuffle(indices.begin(), indices.end(), rng);
    indices.resize(opts.max_samples);
  }

  ml::Matrix x;
  if (bundle.mode == TaskMode::Flow) {
    // Pre-train on flow windows assembled from the backbone's flows.
    auto flows = backbone.flows();
    std::vector<std::vector<std::size_t>> windows;
    for (const auto& f : flows)
      if (f.size() >= 2) windows.push_back(f);
    if (windows.size() > opts.max_samples / 4) windows.resize(opts.max_samples / 4);
    x = bundle.featurize_flows(backbone, windows);
  } else {
    x = bundle.featurize_packets(backbone, indices);
  }

  bundle.encoder->pretrain(x, opts.pretrain);

  // Pcap-Encoder phase 2: Q&A pretext tasks on the same data.
  if (bundle.kind == ModelKind::PcapEncoder && bundle.mode == TaskMode::Packet) {
    ml::Matrix targets = qa_target_matrix(backbone, indices);
    bundle.encoder->pretrain_supervised(x, targets, opts.pretrain);
  } else if (bundle.kind == ModelKind::PcapEncoder) {
    // Flow mode still pre-trains at packet level (the paper's §6.2 design).
    ml::Matrix xp = bundle.featurize_packets(backbone, indices);
    ml::Matrix targets = qa_target_matrix(backbone, indices);
    bundle.encoder->pretrain_supervised(xp, targets, opts.pretrain);
  }
}

}  // namespace sugar::replearn
