// The model zoo: laptop-scale analogs of the five surveyed models plus
// Pcap-Encoder, each with the input policy of Appendix A.2 and a network
// size chosen to preserve the paper's efficiency ordering (Figure 6:
// netFound largest/slowest, NetMamba smallest/fastest, Pcap-Encoder second
// slowest).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "replearn/encoder.h"
#include "replearn/featurize.h"

namespace sugar::replearn {

enum class ModelKind {
  EtBert,
  YaTC,
  NetMamba,
  TrafficFormer,
  NetFound,
  PcapEncoder,
  /// Extension: PacRep analog — an off-the-shelf (non-traffic) encoder used
  /// as-is, with no network-specific pretext task (Table 1's "None" row).
  PacRep,
};

/// The six models the paper evaluates (§5); PacRep is available separately.
std::vector<ModelKind> all_model_kinds();
std::string to_string(ModelKind kind);

/// Packet- vs flow-level task mode (changes input views: flow mode consumes
/// the first 5 packets of a flow).
enum class TaskMode { Packet, Flow };

/// A model ready to featurize and train: its view policy plus a fresh
/// (un-pretrained) encoder.
struct ModelBundle {
  ModelKind kind{};
  std::string name;
  TaskMode mode = TaskMode::Packet;

  enum class ViewKind { Byte, Multimodal } view_kind = ViewKind::Byte;
  ByteViewSpec byte_view;
  MultimodalSpec mm_view;
  /// Flow mode: packets per flow consumed (paper: first 5).
  int flow_packets = 5;

  std::unique_ptr<Encoder> encoder;

  /// Featurizes a packet-index subset (packet mode).
  [[nodiscard]] ml::Matrix featurize_packets(
      const dataset::PacketDataset& ds, const std::vector<std::size_t>& indices) const;

  /// Featurizes flows (flow mode): each row concatenates the views of the
  /// flow's first `flow_packets` packets.
  [[nodiscard]] ml::Matrix featurize_flows(
      const dataset::PacketDataset& ds,
      const std::vector<std::vector<std::size_t>>& flows) const;
};

ModelBundle make_model(ModelKind kind, TaskMode mode = TaskMode::Packet);

}  // namespace sugar::replearn
