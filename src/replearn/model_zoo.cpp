#include "replearn/model_zoo.h"
#include <cmath>

#include "replearn/mae_encoder.h"
#include "replearn/pcap_encoder.h"

namespace sugar::replearn {

std::vector<ModelKind> all_model_kinds() {
  return {ModelKind::EtBert,        ModelKind::YaTC,     ModelKind::NetMamba,
          ModelKind::TrafficFormer, ModelKind::NetFound, ModelKind::PcapEncoder};
}

std::string to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::EtBert: return "ET-BERT";
    case ModelKind::YaTC: return "YaTC";
    case ModelKind::NetMamba: return "NetMamba";
    case ModelKind::TrafficFormer: return "TrafficFormer";
    case ModelKind::NetFound: return "netFound";
    case ModelKind::PcapEncoder: return "Pcap-Encoder";
    case ModelKind::PacRep: return "PacRep";
  }
  return "?";
}

ml::Matrix ModelBundle::featurize_packets(const dataset::PacketDataset& ds,
                                          const std::vector<std::size_t>& indices) const {
  if (view_kind == ViewKind::Multimodal) return multimodal_matrix(ds, indices, mm_view);
  return byte_view_matrix(ds, indices, byte_view);
}

ml::Matrix ModelBundle::featurize_flows(
    const dataset::PacketDataset& ds,
    const std::vector<std::vector<std::size_t>>& flows) const {
  std::size_t per =
      view_kind == ViewKind::Multimodal ? mm_view.dim() : byte_view.dim();
  std::size_t total = per * static_cast<std::size_t>(flow_packets);
  ml::Matrix x(flows.size(), total);

  for (std::size_t f = 0; f < flows.size(); ++f) {
    std::size_t n = std::min<std::size_t>(flows[f].size(),
                                          static_cast<std::size_t>(flow_packets));
    std::vector<std::size_t> first(flows[f].begin(),
                                   flows[f].begin() + static_cast<std::ptrdiff_t>(n));
    ml::Matrix sub;
    if (view_kind == ViewKind::Multimodal) {
      // Fill the flow-level modalities: packet direction (relative to the
      // flow's first packet) and log inter-arrival time.
      std::vector<FlowPacketContext> ctx(n);
      const auto& first_parsed = ds.parsed[first[0]];
      auto first_src = first_parsed.ipv4 ? first_parsed.ipv4->src.value : 0;
      for (std::size_t i = 0; i < n; ++i) {
        const auto& p = ds.parsed[first[i]];
        ctx[i].direction = p.ipv4 && p.ipv4->src.value == first_src ? 1.0f : 0.0f;
        if (i > 0) {
          double gap = static_cast<double>(ds.packets[first[i]].ts_usec -
                                           ds.packets[first[i - 1]].ts_usec);
          ctx[i].log_interarrival =
              std::min(1.0f, static_cast<float>(std::log1p(gap) / 20.0));
        }
      }
      sub = multimodal_matrix(ds, first, mm_view, &ctx);
    } else {
      sub = featurize_packets(ds, first);
    }
    for (std::size_t i = 0; i < n; ++i)
      std::copy_n(sub.row(i), per, x.row(f) + per * i);
    // Remaining slots stay zero (padding) when the flow is short.
  }
  return x;
}

ModelBundle make_model(ModelKind kind, TaskMode mode) {
  ModelBundle b;
  b.kind = kind;
  b.name = to_string(kind);
  b.mode = mode;
  int fp = mode == TaskMode::Flow ? b.flow_packets : 1;

  auto mae = [&](std::size_t input, std::vector<std::size_t> hidden,
                 std::size_t emb, std::uint64_t seed) {
    MaeEncoderConfig cfg;
    cfg.name = b.name;
    cfg.input_dim = input * static_cast<std::size_t>(fp);
    cfg.hidden = std::move(hidden);
    cfg.embed_dim = emb;
    cfg.seed = seed;
    b.encoder = std::make_unique<MaeEncoder>(cfg);
  };

  switch (kind) {
    case ModelKind::EtBert:
      // Appendix A.2: Ethernet and IP header removed, TCP ports removed;
      // payload kept (the policy the paper criticizes). Token-style bit
      // encoding on packet tasks.
      b.byte_view = {.length = 96,
                     .include_ip_header = false,
                     .include_l4_header = true,
                     .include_payload = true,
                     .zero_ip_addresses = false,
                     .zero_ports = true,
                     .repeat = 1,
                     .bit_encode = mode == TaskMode::Packet};
      if (mode == TaskMode::Flow) b.byte_view.length = 64;
      mae(b.byte_view.dim(), {192, 192}, 128, 0xE7BE27);
      break;
    case ModelKind::YaTC:
      // Flow-matrix view, IPs and ports anonymized (the paper's Repeat
      // strategy is implicit: one packet fills the matrix on packet tasks).
      b.byte_view = {.length = 80,
                     .include_ip_header = true,
                     .include_l4_header = true,
                     .include_payload = true,
                     .zero_ip_addresses = true,
                     .zero_ports = true,
                     .repeat = 1,
                     .bit_encode = mode == TaskMode::Packet};
      if (mode == TaskMode::Flow) b.byte_view.length = 64;
      mae(b.byte_view.dim(), {128}, 96, 0x9A7C);
      break;
    case ModelKind::NetMamba:
      b.byte_view = {.length = 80,
                     .include_ip_header = true,
                     .include_l4_header = true,
                     .include_payload = true,
                     .zero_ip_addresses = true,
                     .zero_ports = true,
                     .repeat = 1,
                     .bit_encode = mode == TaskMode::Packet};
      if (mode == TaskMode::Flow) b.byte_view.length = 64;
      mae(b.byte_view.dim(), {64}, 48, 0x4E3A);
      break;
    case ModelKind::TrafficFormer:
      // Keeps the full L3+L4 header (minus randomized IPs/ports) plus
      // payload — the richest header view among the surveyed models.
      b.byte_view = {.length = 120,
                     .include_ip_header = true,
                     .include_l4_header = true,
                     .include_payload = true,
                     .zero_ip_addresses = true,
                     .zero_ports = true,
                     .repeat = 1,
                     .bit_encode = mode == TaskMode::Packet};
      if (mode == TaskMode::Flow) b.byte_view.length = 64;
      mae(b.byte_view.dim(), {192, 192}, 128, 0x7F0F);
      break;
    case ModelKind::NetFound:
      // Multimodal: header fields + flow metadata + 12 payload bytes.
      b.view_kind = ModelBundle::ViewKind::Multimodal;
      b.mm_view = {};
      mae(b.mm_view.dim(), {512, 512}, 256, 0x4EF0);
      break;
    case ModelKind::PacRep:
      // Off-the-shelf text encoder pressed into traffic duty: full packet
      // view with IPs/ports zeroed (the paper's PacRep anonymization), and
      // — crucially — no traffic pre-training at all. pretrain_on_backbone
      // still runs the generic MAE objective, standing in for "BERT was
      // pre-trained, just not on packets".
      b.byte_view = {.length = 128,
                     .include_ip_header = true,
                     .include_l4_header = true,
                     .include_payload = true,
                     .zero_ip_addresses = true,
                     .zero_ports = true,
                     .repeat = 1,
                     .bit_encode = mode == TaskMode::Packet};
      if (mode == TaskMode::Flow) b.byte_view.length = 64;
      mae(b.byte_view.dim(), {192, 192}, 128, 0xBAC2E7);
      break;
    case ModelKind::PcapEncoder: {
      // Header bytes only, payload excluded, packet-level always.
      b.byte_view = {.length = 60,
                     .include_ip_header = true,
                     .include_l4_header = true,
                     .include_payload = false,
                     .zero_ip_addresses = false,
                     .zero_ports = false,
                     .repeat = 1,
                     .bit_encode = true};
      PcapEncoderConfig cfg;
      cfg.input_dim = b.byte_view.dim();
      cfg.hidden = {256, 256};
      cfg.embed_dim = 160;
      b.encoder = std::make_unique<PcapEncoder>(cfg);
      break;
    }
  }
  return b;
}

}  // namespace sugar::replearn
