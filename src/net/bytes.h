// Bounds-checked byte-buffer cursors used by every parser and serializer in
// the library. Network byte order (big-endian) is the default for all
// multi-byte reads and writes; little-endian accessors exist for the pcap
// file format only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace sugar::net {

/// Read cursor over an immutable byte span. All accessors check bounds and
/// report failure through ok(); after the first failed read the cursor is
/// poisoned and every subsequent read returns 0.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t offset() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const {
    return pos_ <= data_.size() ? data_.size() - pos_ : 0;
  }

  /// Absolute reposition. Seeking past the end poisons the reader.
  void seek(std::size_t offset);
  /// Relative forward skip.
  void skip(std::size_t n);

  std::uint8_t u8();
  std::uint16_t u16be();
  std::uint32_t u32be();
  std::uint64_t u64be();
  std::uint16_t u16le();
  std::uint32_t u32le();

  /// Copies n bytes into out; poisons and leaves out untouched on underflow.
  bool bytes(std::uint8_t* out, std::size_t n);
  /// Returns a view of n bytes without copying, or an empty span on underflow.
  std::span<const std::uint8_t> view(std::size_t n);

 private:
  bool fail() {
    ok_ = false;
    return false;
  }
  bool need(std::size_t n) {
    if (!ok_) return false;  // stay poisoned after the first failure
    return remaining() >= n ? true : fail();
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Append-only growable byte sink. Writers never fail; the buffer grows.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16be(std::uint16_t v);
  void u32be(std::uint32_t v);
  void u64be(std::uint64_t v);
  void u16le(std::uint16_t v);
  void u32le(std::uint32_t v);
  void bytes(std::span<const std::uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  void zeros(std::size_t n) { buf_.insert(buf_.end(), n, 0); }

  /// In-place patch of an already-written big-endian u16 (checksum fixups).
  void patch_u16be(std::size_t offset, std::uint16_t v);
  void patch_u32be(std::size_t offset, std::uint32_t v);

 private:
  std::vector<std::uint8_t> buf_;
};

/// Hex dump "4500 4000 ..." as used by the paper's Pcap-Encoder tokenizer
/// (2-byte words, space separated). Odd trailing byte is emitted as 2 digits.
std::string hex_words(std::span<const std::uint8_t> data);

}  // namespace sugar::net
