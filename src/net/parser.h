// Frame parser: raw Ethernet bytes -> ParsedPacket. Tolerant of truncated
// frames (parse stops at the deepest complete layer) but strict about
// malformed length fields.
#pragma once

#include <optional>
#include <string>

#include "net/packet.h"

namespace sugar::net {

enum class ParseError : std::uint8_t {
  TruncatedEthernet,
  TruncatedArp,
  TruncatedIpv4,
  BadIpv4Header,
  TruncatedIpv6,
  TruncatedTcp,
  BadTcpHeader,
  TruncatedUdp,
  TruncatedIcmp,
  kCount,
};

constexpr std::size_t kParseErrorCount = static_cast<std::size_t>(ParseError::kCount);

std::string to_string(ParseError e);

struct ParseOutcome {
  std::optional<ParsedPacket> parsed;
  std::optional<ParseError> error;

  [[nodiscard]] bool ok() const { return parsed.has_value(); }
};

/// Parses a full frame starting at the Ethernet header. An unknown EtherType
/// or IP protocol is not an error: parsing simply stops at that layer.
ParseOutcome parse_packet(const Packet& pkt);

/// Classifies a parsed packet into the Table 13 spurious-protocol taxonomy.
/// Task-relevant traffic (TCP/UDP application flows) maps to
/// SpuriousCategory::None.
SpuriousCategory classify_spurious(const ParsedPacket& p);

}  // namespace sugar::net
