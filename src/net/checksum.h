// RFC 1071 Internet checksum, plus the TCP/UDP pseudo-header variants for
// IPv4 and IPv6. Used both when serializing synthetic packets and when the
// Pcap-Encoder pretext task verifies header checksums. Also hosts the
// IEEE 802.3 CRC32 the serve snapshot format uses to seal each section —
// any single-bit flip in a sealed section is guaranteed detected.
#pragma once

#include <cstdint>
#include <span>

#include "net/addr.h"

namespace sugar::net {

/// One's-complement sum over a byte span (odd length allowed; final byte is
/// padded with a zero, per RFC 1071).
std::uint32_t checksum_partial(std::span<const std::uint8_t> data, std::uint32_t acc = 0);

/// Folds a partial sum and complements it into a final checksum value.
std::uint16_t checksum_finish(std::uint32_t acc);

/// Plain checksum over a span (IPv4 header checksum).
std::uint16_t checksum(std::span<const std::uint8_t> data);

/// TCP/UDP/ICMPv6 checksum with the IPv4 pseudo header. `segment` covers the
/// transport header plus payload, with its checksum field zeroed.
std::uint16_t l4_checksum_v4(Ipv4Address src, Ipv4Address dst, std::uint8_t proto,
                             std::span<const std::uint8_t> segment);

/// Same with the IPv6 pseudo header.
std::uint16_t l4_checksum_v6(const Ipv6Address& src, const Ipv6Address& dst,
                             std::uint8_t proto, std::span<const std::uint8_t> segment);

/// IEEE 802.3 (zlib-compatible) CRC32 of a byte span. Thin alias for
/// core::crc32 (core/crc32.h), kept so packet-layer callers don't reach
/// into core. Chain partial spans by feeding the previous result back
/// through `acc`; crc32("123456789") is 0xCBF43926.
std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t acc = 0);

}  // namespace sugar::net
