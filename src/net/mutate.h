// In-place packet mutations implementing the paper's ablations (Table 6/7)
// and the anonymization policies of the surveyed models (Appendix A.2):
// randomizing implicit flow IDs (SeqNo/AckNo, TCP timestamps), zeroing or
// randomizing explicit flow IDs (IP addresses, ports), and stripping headers
// or payload. Every mutation keeps the frame parseable and re-fixes
// checksums so downstream feature extraction sees consistent packets.
#pragma once

#include <cstdint>
#include <random>

#include "net/packet.h"

namespace sugar::net {

/// Overwrites TCP SeqNo and AckNo with fresh random values (Table 6:
/// "w/o SeqNo/AckNo"). Returns false when the packet has no TCP layer.
bool randomize_seq_ack(Packet& pkt, std::mt19937_64& rng);

/// Overwrites the TCP timestamp option TSval/TSecr with random values
/// (Table 6: "w/o Timestamp"). Returns false when no timestamp option.
bool randomize_tcp_timestamp(Packet& pkt, std::mt19937_64& rng);

/// Zeroes both IP addresses (PacRep/NetMamba policy; Table 7 "w/o IP addr").
bool zero_ip_addresses(Packet& pkt);

/// Replaces both IP addresses with random ones (YaTC/TrafficFormer policy).
bool randomize_ip_addresses(Packet& pkt, std::mt19937_64& rng);

/// Zeroes TCP/UDP ports (YaTC policy).
bool zero_ports(Packet& pkt);

/// Replaces the application payload bytes with zeros, keeping the length
/// (Table 7 "w/o payload").
bool zero_payload(Packet& pkt);

/// Truncates the packet right after the transport header, i.e., removes the
/// payload entirely.
bool strip_payload(Packet& pkt);

/// Zeroes every L3+L4 header byte but keeps the payload (Table 7
/// "w/o header"). The frame is no longer parseable afterwards; callers use
/// the raw byte view.
bool zero_headers(Packet& pkt);

/// Recomputes IPv4 header checksum and the TCP/UDP checksum after manual
/// byte edits. No-op for non-IP frames.
void refresh_checksums(Packet& pkt);

/// Test-time adversarial header jitter (scenario-diversity benches). Each
/// function moves one header field by a uniform delta in [-max_delta,
/// +max_delta], clamped to the field's valid range, and re-fixes checksums.
/// Deterministic given the rng state; returns false when the field is absent.

/// IPv4 TTL / IPv6 hop limit.
bool jitter_ttl(Packet& pkt, int max_delta, std::mt19937_64& rng);

/// TCP advertised window.
bool jitter_tcp_window(Packet& pkt, int max_delta, std::mt19937_64& rng);

/// TCP MSS option value (SYN packets carrying option kind 2).
bool jitter_tcp_mss(Packet& pkt, int max_delta, std::mt19937_64& rng);

}  // namespace sugar::net
