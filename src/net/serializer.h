// Frame builders: header structs -> wire bytes, with lengths and checksums
// computed. Used by the synthetic trace generators and by tests that need
// byte-exact round trips against the parser.
#pragma once

#include <span>

#include "net/packet.h"

namespace sugar::net {

/// Specification for one frame. Fill the layers you want; build_frame()
/// computes total_length / payload_length / checksums unless the
/// `keep_*` flags request otherwise (used to synthesize corrupt packets for
/// the checksum-verification pretext task).
struct FrameSpec {
  EthernetHeader eth;
  std::optional<ArpHeader> arp;
  std::optional<Ipv4Header> ipv4;
  std::optional<Ipv6Header> ipv6;
  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  std::optional<IcmpHeader> icmp;
  std::vector<std::uint8_t> payload;

  /// When true, the provided header_checksum / checksum fields are written
  /// verbatim instead of being recomputed.
  bool keep_ip_checksum = false;
  bool keep_l4_checksum = false;
};

/// Serializes the spec into raw frame bytes. EtherType and IP protocol
/// fields are inferred from which layers are present (explicit values in the
/// spec win when nonzero).
std::vector<std::uint8_t> build_frame(const FrameSpec& spec);

/// Convenience: build_frame + timestamp into a Packet.
Packet build_packet(const FrameSpec& spec, std::uint64_t ts_usec);

/// Serializes TCP options (with NOP padding to a 4-byte boundary); exposed
/// for tests.
std::vector<std::uint8_t> encode_tcp_options(const TcpOptions& opts);

}  // namespace sugar::net
