// Value types for link- and network-layer addresses. All types are plain
// aggregates with strong ordering so they can serve as map keys and flow-key
// components.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>

namespace sugar::net {

struct MacAddress {
  std::array<std::uint8_t, 6> octets{};

  auto operator<=>(const MacAddress&) const = default;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] bool is_broadcast() const;
  [[nodiscard]] bool is_multicast() const { return (octets[0] & 0x01) != 0; }

  static std::optional<MacAddress> parse(const std::string& text);
  static MacAddress broadcast();
};

struct Ipv4Address {
  // Host-order value; octet 0 is the most significant byte (a in a.b.c.d).
  std::uint32_t value = 0;

  auto operator<=>(const Ipv4Address&) const = default;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(value >> (8 * (3 - i)));
  }
  [[nodiscard]] bool is_multicast() const { return (value >> 28) == 0xE; }
  [[nodiscard]] bool is_broadcast() const { return value == 0xFFFFFFFFu; }
  [[nodiscard]] bool is_private() const;
  [[nodiscard]] bool in_subnet(Ipv4Address net, int prefix_len) const;

  static Ipv4Address from_octets(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                                 std::uint8_t d) {
    return {static_cast<std::uint32_t>(a) << 24 | static_cast<std::uint32_t>(b) << 16 |
            static_cast<std::uint32_t>(c) << 8 | d};
  }
  static std::optional<Ipv4Address> parse(const std::string& text);
};

struct Ipv6Address {
  std::array<std::uint8_t, 16> octets{};

  auto operator<=>(const Ipv6Address&) const = default;

  /// Full uncompressed form (8 groups of 4 hex digits). Parsing accepts the
  /// compressed "::" form as well.
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] bool is_multicast() const { return octets[0] == 0xFF; }

  static std::optional<Ipv6Address> parse(const std::string& text);
};

/// Either-family IP address used by flow keys. IPv4 is stored v4-mapped in
/// the low 4 bytes to keep the comparison total across families.
struct IpAddress {
  bool is_v6 = false;
  std::array<std::uint8_t, 16> bytes{};

  auto operator<=>(const IpAddress&) const = default;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] Ipv4Address v4() const;
  [[nodiscard]] Ipv6Address v6() const;

  static IpAddress from_v4(Ipv4Address a);
  static IpAddress from_v6(const Ipv6Address& a);
};

}  // namespace sugar::net
