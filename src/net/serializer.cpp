#include "net/serializer.h"

#include "net/bytes.h"
#include "net/checksum.h"

namespace sugar::net {

std::vector<std::uint8_t> encode_tcp_options(const TcpOptions& opts) {
  ByteWriter w;
  if (opts.mss) {
    w.u8(2);
    w.u8(4);
    w.u16be(*opts.mss);
  }
  if (opts.window_scale) {
    w.u8(3);
    w.u8(3);
    w.u8(*opts.window_scale);
  }
  if (opts.sack_permitted) {
    w.u8(4);
    w.u8(2);
  }
  if (opts.timestamp) {
    w.u8(8);
    w.u8(10);
    w.u32be(opts.timestamp->first);
    w.u32be(opts.timestamp->second);
  }
  for (const auto& [kind, raw] : opts.unknown) {
    w.u8(kind);
    w.u8(static_cast<std::uint8_t>(raw.size() + 2));
    w.bytes(raw);
  }
  auto out = w.take();
  while (out.size() % 4 != 0) out.push_back(1);  // NOP padding
  return out;
}

namespace {

void write_tcp(ByteWriter& w, const TcpHeader& tcp,
               const std::vector<std::uint8_t>& options_bytes) {
  w.u16be(tcp.src_port);
  w.u16be(tcp.dst_port);
  w.u32be(tcp.seq);
  w.u32be(tcp.ack);
  std::uint8_t data_offset = static_cast<std::uint8_t>(5 + options_bytes.size() / 4);
  w.u8(static_cast<std::uint8_t>(data_offset << 4));
  w.u8(tcp.flags_byte());
  w.u16be(tcp.window);
  w.u16be(tcp.checksum);  // patched after checksum computation
  w.u16be(tcp.urgent_pointer);
  w.bytes(options_bytes);
}

}  // namespace

std::vector<std::uint8_t> build_frame(const FrameSpec& spec) {
  // --- Build the L4 segment (header+payload) first so L3 lengths are known.
  ByteWriter l4;
  std::size_t l4_checksum_off = 0;
  std::uint8_t ip_proto = 0;

  if (spec.tcp) {
    ip_proto = static_cast<std::uint8_t>(IpProto::Tcp);
    auto opts = encode_tcp_options(spec.tcp->options);
    l4_checksum_off = 16;
    write_tcp(l4, *spec.tcp, opts);
    l4.bytes(spec.payload);
  } else if (spec.udp) {
    ip_proto = static_cast<std::uint8_t>(IpProto::Udp);
    l4_checksum_off = 6;
    UdpHeader u = *spec.udp;
    u.length = static_cast<std::uint16_t>(UdpHeader::kSize + spec.payload.size());
    l4.u16be(u.src_port);
    l4.u16be(u.dst_port);
    l4.u16be(u.length);
    l4.u16be(u.checksum);
    l4.bytes(spec.payload);
  } else if (spec.icmp) {
    ip_proto = spec.ipv6 ? static_cast<std::uint8_t>(IpProto::Icmpv6)
                         : static_cast<std::uint8_t>(IpProto::Icmp);
    l4_checksum_off = 2;
    l4.u8(spec.icmp->type);
    l4.u8(spec.icmp->code);
    l4.u16be(spec.icmp->checksum);
    l4.u32be(spec.icmp->rest);
    l4.bytes(spec.payload);
  } else {
    l4.bytes(spec.payload);
  }

  // --- L4 checksum over pseudo header + segment.
  if (!spec.keep_l4_checksum && (spec.tcp || spec.udp || spec.icmp)) {
    l4.patch_u16be(l4_checksum_off, 0);
    std::uint16_t csum = 0;
    if (spec.ipv4) {
      if (spec.icmp) {
        csum = checksum(l4.data());  // ICMPv4 has no pseudo header
      } else {
        csum = l4_checksum_v4(spec.ipv4->src, spec.ipv4->dst, ip_proto, l4.data());
      }
    } else if (spec.ipv6) {
      csum = l4_checksum_v6(spec.ipv6->src, spec.ipv6->dst, ip_proto, l4.data());
    }
    l4.patch_u16be(l4_checksum_off, csum);
  }

  // --- L3 header.
  ByteWriter frame;
  EthernetHeader eth = spec.eth;
  if (eth.ether_type == 0) {
    if (spec.arp)
      eth.ether_type = static_cast<std::uint16_t>(EtherType::Arp);
    else if (spec.ipv6)
      eth.ether_type = static_cast<std::uint16_t>(EtherType::Ipv6);
    else if (spec.ipv4)
      eth.ether_type = static_cast<std::uint16_t>(EtherType::Ipv4);
  }
  frame.bytes(eth.dst.octets);
  frame.bytes(eth.src.octets);
  frame.u16be(eth.ether_type);

  if (spec.arp) {
    const ArpHeader& a = *spec.arp;
    frame.u16be(a.hw_type);
    frame.u16be(a.proto_type);
    frame.u8(a.hw_len);
    frame.u8(a.proto_len);
    frame.u16be(a.opcode);
    frame.bytes(a.sender_mac.octets);
    frame.u32be(a.sender_ip.value);
    frame.bytes(a.target_mac.octets);
    frame.u32be(a.target_ip.value);
    return frame.take();
  }

  if (spec.ipv4) {
    Ipv4Header ip = *spec.ipv4;
    if (ip.protocol == 0) ip.protocol = ip_proto;
    ip.total_length = static_cast<std::uint16_t>(20 + l4.size());
    std::size_t ip_off = frame.size();
    frame.u8(static_cast<std::uint8_t>(4 << 4 | 5));
    frame.u8(ip.tos);
    frame.u16be(ip.total_length);
    frame.u16be(ip.identification);
    std::uint16_t frag = static_cast<std::uint16_t>(
        (ip.dont_fragment ? 0x4000 : 0) | (ip.more_fragments ? 0x2000 : 0) |
        (ip.fragment_offset & 0x1FFF));
    frame.u16be(frag);
    frame.u8(ip.ttl);
    frame.u8(ip.protocol);
    frame.u16be(spec.keep_ip_checksum ? ip.header_checksum : 0);
    frame.u32be(ip.src.value);
    frame.u32be(ip.dst.value);
    if (!spec.keep_ip_checksum) {
      std::uint16_t csum = checksum(std::span{frame.data()}.subspan(ip_off, 20));
      frame.patch_u16be(ip_off + 10, csum);
    }
  } else if (spec.ipv6) {
    Ipv6Header ip = *spec.ipv6;
    if (ip.next_header == 0) ip.next_header = ip_proto;
    ip.payload_length = static_cast<std::uint16_t>(l4.size());
    frame.u32be(static_cast<std::uint32_t>(6) << 28 |
                static_cast<std::uint32_t>(ip.traffic_class) << 20 |
                (ip.flow_label & 0xFFFFF));
    frame.u16be(ip.payload_length);
    frame.u8(ip.next_header);
    frame.u8(ip.hop_limit);
    frame.bytes(ip.src.octets);
    frame.bytes(ip.dst.octets);
  }

  frame.bytes(l4.data());
  return frame.take();
}

Packet build_packet(const FrameSpec& spec, std::uint64_t ts_usec) {
  return Packet{.ts_usec = ts_usec, .data = build_frame(spec)};
}

}  // namespace sugar::net
