// Classic libpcap file format reader/writer (no external dependency).
// Supports the microsecond (0xA1B2C3D4) and nanosecond (0xA1B23C4D) magics,
// both endiannesses on read, and writes host-independent little-endian
// microsecond files.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/packet.h"

namespace sugar::net {

class PcapError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Upper bound accepted for the global-header snaplen. Larger claimed values
/// (a hostile 0xFFFFFFFF, say) are clamped so per-record allocation bounds
/// never trust the file. 256 KiB comfortably covers jumbo frames.
constexpr std::uint32_t kMaxSnaplen = 256 * 1024;

struct PcapFileInfo {
  std::uint16_t version_major = 2;
  std::uint16_t version_minor = 4;
  std::uint32_t snaplen = 65535;
  std::uint32_t link_type = 1;  // LINKTYPE_ETHERNET
  bool nanosecond = false;
  bool swapped = false;  // file endianness != big-endian encoding in magic
};

/// How the reader reacts to a corrupt record header mid-stream.
enum class ReadPolicy : std::uint8_t {
  /// Stop at the first implausible record header (libpcap-like). The
  /// corruption is still counted in stats(), never silent.
  Strict,
  /// Scan forward byte-by-byte for the next plausible record header and
  /// resume reading there. Recovers the tail of damaged captures.
  SkipAndResync,
};

/// Ingestion census. Every record header the reader encounters lands in
/// exactly one of the first three counters, so
/// records_ok + records_truncated + corrupt_headers == total_records().
struct PcapReadStats {
  std::size_t records_ok = 0;         // fully read records
  std::size_t records_truncated = 0;  // header or data cut short by EOF
  std::size_t corrupt_headers = 0;    // implausible record headers
  std::size_t resyncs = 0;            // successful forward resyncs
  std::size_t bytes_skipped = 0;      // bytes scanned over while resyncing

  [[nodiscard]] std::size_t total_records() const {
    return records_ok + records_truncated + corrupt_headers;
  }
};

/// Streaming reader. Throws PcapError on malformed global headers; damaged
/// records are counted in stats() and handled per the ReadPolicy instead of
/// silently ending the stream.
class PcapReader {
 public:
  explicit PcapReader(std::istream& in, ReadPolicy policy = ReadPolicy::Strict);

  [[nodiscard]] const PcapFileInfo& info() const { return info_; }
  [[nodiscard]] const PcapReadStats& stats() const { return stats_; }
  [[nodiscard]] ReadPolicy policy() const { return policy_; }

  /// Reads the next record into out. Returns false at end of stream.
  bool next(Packet& out);

  /// Drains the remaining records.
  std::vector<Packet> read_all();

 private:
  [[nodiscard]] bool plausible_record(std::uint32_t incl_len,
                                      std::uint32_t orig_len) const;
  /// Scans forward from `from` for a plausible record header; positions the
  /// stream there and returns true, or consumes the rest and returns false.
  bool resync(std::streamoff from);

  std::istream& in_;
  PcapFileInfo info_;
  PcapReadStats stats_;
  ReadPolicy policy_;
  bool done_ = false;
};

/// Streaming writer; emits the global header on construction.
class PcapWriter {
 public:
  explicit PcapWriter(std::ostream& out, std::uint32_t snaplen = 65535,
                      std::uint32_t link_type = 1);

  void write(const Packet& pkt);
  void write_all(const std::vector<Packet>& pkts);

 private:
  std::ostream& out_;
  std::uint32_t snaplen_;
};

/// File-path conveniences.
std::vector<Packet> read_pcap_file(const std::string& path);
/// As above with an explicit policy; fills *stats when non-null.
std::vector<Packet> read_pcap_file(const std::string& path, ReadPolicy policy,
                                   PcapReadStats* stats = nullptr);
void write_pcap_file(const std::string& path, const std::vector<Packet>& pkts);

}  // namespace sugar::net
