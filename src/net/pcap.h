// Classic libpcap file format reader/writer (no external dependency).
// Supports the microsecond (0xA1B2C3D4) and nanosecond (0xA1B23C4D) magics,
// both endiannesses on read, and writes host-independent little-endian
// microsecond files.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/packet.h"

namespace sugar::net {

class PcapError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct PcapFileInfo {
  std::uint16_t version_major = 2;
  std::uint16_t version_minor = 4;
  std::uint32_t snaplen = 65535;
  std::uint32_t link_type = 1;  // LINKTYPE_ETHERNET
  bool nanosecond = false;
  bool swapped = false;  // file endianness != big-endian encoding in magic
};

/// Streaming reader. Throws PcapError on malformed global headers; truncated
/// trailing records end the stream silently (matching libpcap behaviour).
class PcapReader {
 public:
  explicit PcapReader(std::istream& in);

  [[nodiscard]] const PcapFileInfo& info() const { return info_; }

  /// Reads the next record into out. Returns false at end of stream.
  bool next(Packet& out);

  /// Drains the remaining records.
  std::vector<Packet> read_all();

 private:
  std::istream& in_;
  PcapFileInfo info_;
};

/// Streaming writer; emits the global header on construction.
class PcapWriter {
 public:
  explicit PcapWriter(std::ostream& out, std::uint32_t snaplen = 65535,
                      std::uint32_t link_type = 1);

  void write(const Packet& pkt);
  void write_all(const std::vector<Packet>& pkts);

 private:
  std::ostream& out_;
  std::uint32_t snaplen_;
};

/// File-path conveniences.
std::vector<Packet> read_pcap_file(const std::string& path);
void write_pcap_file(const std::string& path, const std::vector<Packet>& pkts);

}  // namespace sugar::net
