// Streaming replay source: turns an in-memory packet list (trafficgen
// output) or a serialized pcap capture into an arrival stream the serve
// engine can ingest. The source can loop the trace to synthesize unbounded
// load and can re-space arrivals onto a fixed offered-load schedule
// (packets/second) while preserving delivery order — the knob bench_serve
// sweeps to find the engine's saturation point.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.h"

namespace sugar::net {

struct ReplayOptions {
  /// How many times the packet list is replayed end-to-end. 0 means loop
  /// forever (next() never returns false); the driver bounds the run.
  std::size_t loops = 1;
  /// > 0: rewrite timestamps to a fixed inter-arrival of 1e6/offered_pps
  /// microseconds (global emission index, monotone across loops). 0 keeps
  /// the captured timestamps, shifting each loop so time never runs
  /// backwards between iterations.
  double offered_pps = 0;
  /// Base timestamp of the rewritten schedule (offered_pps > 0).
  std::uint64_t start_usec = 0;
};

/// Pull-based packet stream over an owned packet vector. Not thread-safe;
/// one driver thread pulls and pushes into the engine's bounded queue.
class ReplaySource {
 public:
  explicit ReplaySource(std::vector<Packet> packets, ReplayOptions opts = {});

  /// Reads a pcap blob (any policy-tolerated capture) into a ReplaySource.
  /// nullopt with `error` set when the capture cannot be opened/parsed.
  static std::optional<ReplaySource> from_pcap(const std::string& path,
                                               ReplayOptions opts,
                                               std::string* error = nullptr);

  /// Next packet in delivery order, with its scheduled arrival timestamp
  /// applied. False when the configured loops are exhausted.
  bool next(Packet& out);

  /// Rewinds to the first packet of the first loop.
  void reset();

  [[nodiscard]] std::size_t size() const { return packets_.size(); }
  /// Total packets this source will emit; 0 when looping forever.
  [[nodiscard]] std::size_t total() const {
    return opts_.loops == 0 ? 0 : packets_.size() * opts_.loops;
  }
  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }
  [[nodiscard]] const ReplayOptions& options() const { return opts_; }

 private:
  std::vector<Packet> packets_;
  ReplayOptions opts_;
  std::uint64_t span_usec_ = 0;  // max - min captured timestamp
  std::uint64_t emitted_ = 0;
  std::size_t pos_ = 0;
  std::size_t loop_ = 0;
};

}  // namespace sugar::net
