#include "net/replay.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "net/pcap.h"

namespace sugar::net {

ReplaySource::ReplaySource(std::vector<Packet> packets, ReplayOptions opts)
    : packets_(std::move(packets)), opts_(opts) {
  if (!packets_.empty()) {
    std::uint64_t lo = packets_.front().ts_usec, hi = packets_.front().ts_usec;
    for (const Packet& p : packets_) {
      lo = std::min(lo, p.ts_usec);
      hi = std::max(hi, p.ts_usec);
    }
    span_usec_ = hi - lo;
  }
}

std::optional<ReplaySource> ReplaySource::from_pcap(const std::string& path,
                                                    ReplayOptions opts,
                                                    std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  try {
    PcapReader reader(in, ReadPolicy::SkipAndResync);
    return ReplaySource(reader.read_all(), opts);
  } catch (const std::exception& e) {
    if (error) *error = e.what();
    return std::nullopt;
  }
}

bool ReplaySource::next(Packet& out) {
  if (packets_.empty()) return false;
  if (pos_ >= packets_.size()) {
    ++loop_;
    if (opts_.loops != 0 && loop_ >= opts_.loops) return false;
    pos_ = 0;
  }
  out = packets_[pos_++];
  if (opts_.offered_pps > 0) {
    out.ts_usec = opts_.start_usec +
                  static_cast<std::uint64_t>(std::llround(
                      static_cast<double>(emitted_) * 1e6 / opts_.offered_pps));
  } else {
    // Shift each loop past the previous one so time never runs backwards
    // at the wrap (the +1 keeps zero-span traces strictly advancing).
    out.ts_usec += static_cast<std::uint64_t>(loop_) * (span_usec_ + 1);
  }
  ++emitted_;
  return true;
}

void ReplaySource::reset() {
  emitted_ = 0;
  pos_ = 0;
  loop_ = 0;
}

}  // namespace sugar::net
