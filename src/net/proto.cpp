#include "net/proto.h"

namespace sugar::net {

std::string to_string(SpuriousCategory c) {
  switch (c) {
    case SpuriousCategory::None: return "none";
    case SpuriousCategory::LinkLocal: return "link-local";
    case SpuriousCategory::NetworkManagement: return "network management";
    case SpuriousCategory::Nat: return "nat";
    case SpuriousCategory::RouteManagement: return "route management";
    case SpuriousCategory::ServiceManagement: return "service management";
    case SpuriousCategory::RealTime: return "real time";
    case SpuriousCategory::NetworkTime: return "network time";
    case SpuriousCategory::LinkManagement: return "link management";
    case SpuriousCategory::Security: return "security";
    case SpuriousCategory::RemoteAccess: return "remote access";
    case SpuriousCategory::IotManagement: return "iot management";
    case SpuriousCategory::Quake: return "quake";
    case SpuriousCategory::Others: return "others";
    case SpuriousCategory::kCount: break;
  }
  return "?";
}

}  // namespace sugar::net
