// Deterministic fault injection for ingestion hardening. A seeded
// FaultInjector mutates well-formed frames (truncation at every layer
// boundary, bit flips, lying IPv4/TCP length fields, hostile options) and
// serialized pcap byte streams (corrupt magics, lying record headers,
// mid-record truncation, garbage tails). The mutations model the corpus of
// damage observed in real capture archives, so the parser and PcapReader can
// be fuzzed and regression-tested against hostile bytes without shipping
// binary fixtures.
#pragma once

#include <cstdint>
#include <random>
#include <string>

#include "net/packet.h"

namespace sugar::net {

/// Frame-level faults. Truncations cut inside the named layer; the "lying"
/// faults leave the frame length intact but falsify the header field that
/// describes it, which is the classic parser-confusion attack surface.
enum class FrameFault : std::uint8_t {
  TruncateEthernet,      // cut inside the 14-byte Ethernet header
  TruncateL3,            // cut inside the IP/ARP header
  TruncateL4,            // cut inside the TCP/UDP/ICMP header
  TruncatePayload,       // cut inside the application payload
  TruncateRandom,        // cut at a uniformly random byte offset
  BitFlip,               // flip 1-8 random bits anywhere in the frame
  LyingIpv4TotalLength,  // random total_length (may undercut the header)
  LyingIpv4Ihl,          // random IHL nibble 0..15
  LyingTcpDataOffset,    // random data-offset nibble 0..15
  ZeroTcpOptionLength,   // option length byte forced to 0 (infinite loop bait)
  OversizedTcpOption,    // option length byte larger than the options region
  GarbageEtherType,      // random EtherType
  kCount,
};

/// Pcap-stream faults applied to a serialized capture file blob.
enum class StreamFault : std::uint8_t {
  CorruptMagic,          // random global-header magic
  TruncateGlobalHeader,  // cut inside the 24-byte global header
  HostileSnaplen,        // global snaplen forced to 0xFFFFFFFF
  CorruptRecordLength,   // one record's incl_len replaced with a huge value
  ZeroLengthRecord,      // a zero-length record inserted mid-stream
  MidRecordTruncate,     // stream cut inside one record's data
  GarbageTail,           // random garbage appended after the valid records
  BitFlipAnywhere,       // flip 1-8 random bits anywhere in the blob
  kCount,
};

/// Streaming delivery faults applied to a whole packet *sequence* — the
/// damage a live capture path (SPAN port, kernel ring, overloaded tap)
/// inflicts on delivery order and completeness rather than on individual
/// frames. The serve engine's fault matrix replays sequences mutated here.
enum class SequenceFault : std::uint8_t {
  ReorderWindow,     // shuffle delivery order inside fixed-size windows
  DuplicateDelivery, // re-deliver a fraction of packets a few slots later
  TruncateMidFlow,   // cut a fraction of flows short mid-stream
  kCount,
};

/// Knobs for mutate_sequence(). Defaults model a moderately hostile tap.
struct SequenceFaultOptions {
  std::size_t reorder_window = 8;       // shuffle span in packets
  double duplicate_fraction = 0.05;     // probability a packet is re-delivered
  std::size_t duplicate_lag_max = 8;    // dup lands within this many slots
  double truncate_flow_fraction = 0.3;  // fraction of flows cut short
  std::size_t truncate_min_kept = 1;    // packets a truncated flow keeps
};

std::string to_string(FrameFault f);
std::string to_string(StreamFault f);
std::string to_string(SequenceFault f);

/// Seeded mutation engine. All choices (fault sites, random values) come
/// from the internal mt19937_64, so a (seed, input) pair always produces the
/// same mutant — failures found by the fuzz harness are replayable.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}

  /// Applies one specific fault to a copy of the frame. Faults that need a
  /// layer the frame lacks (e.g. ZeroTcpOptionLength on UDP) degrade to
  /// BitFlip so every call mutates something.
  Packet mutate_frame(const Packet& src, FrameFault fault);

  /// Applies a uniformly chosen frame fault.
  Packet mutate_frame(const Packet& src);

  /// Applies one specific fault to a copy of a serialized pcap blob.
  std::string mutate_stream(const std::string& wire, StreamFault fault);

  /// Applies a uniformly chosen stream fault.
  std::string mutate_stream(const std::string& wire);

  /// Applies one delivery fault to a copy of a packet sequence. Timestamps
  /// are left untouched, so a reordered sequence is genuinely non-monotone
  /// in time — exactly what an online flow table must absorb. Mid-flow
  /// truncation groups packets by canonical bi-flow key; keyless packets
  /// are never dropped.
  std::vector<Packet> mutate_sequence(const std::vector<Packet>& pkts,
                                      SequenceFault fault,
                                      const SequenceFaultOptions& opt = {});

  /// Applies a uniformly chosen delivery fault.
  std::vector<Packet> mutate_sequence(const std::vector<Packet>& pkts,
                                      const SequenceFaultOptions& opt = {});

  std::mt19937_64& engine() { return rng_; }

 private:
  std::size_t index_below(std::size_t n);  // uniform in [0, n)
  void flip_bits(std::uint8_t* data, std::size_t size);

  std::mt19937_64 rng_;
};

}  // namespace sugar::net
