#include "net/pcap.h"

#include <array>
#include <bit>
#include <cstring>
#include <fstream>

namespace sugar::net {
namespace {

constexpr std::uint32_t kMagicUsec = 0xA1B2C3D4;
constexpr std::uint32_t kMagicNsec = 0xA1B23C4D;
constexpr std::uint32_t kMagicUsecSwapped = 0xD4C3B2A1;
constexpr std::uint32_t kMagicNsecSwapped = 0x4D3CB2A1;

std::uint32_t bswap32(std::uint32_t v) {
  return v << 24 | (v & 0xFF00) << 8 | (v >> 8 & 0xFF00) | v >> 24;
}
std::uint16_t bswap16(std::uint16_t v) {
  return static_cast<std::uint16_t>(v << 8 | v >> 8);
}

struct RawReader {
  std::istream& in;
  bool swap = false;

  bool u32(std::uint32_t& out) {
    std::array<char, 4> b;
    if (!in.read(b.data(), 4)) return false;
    std::uint32_t v;
    std::memcpy(&v, b.data(), 4);
    out = swap ? bswap32(v) : v;
    return true;
  }
  bool u16(std::uint16_t& out) {
    std::array<char, 2> b;
    if (!in.read(b.data(), 2)) return false;
    std::uint16_t v;
    std::memcpy(&v, b.data(), 2);
    out = swap ? bswap16(v) : v;
    return true;
  }
};

void put_u32(std::ostream& out, std::uint32_t v) {
  // Always write little-endian regardless of host.
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out.write(b, 4);
}
void put_u16(std::ostream& out, std::uint16_t v) {
  char b[2] = {static_cast<char>(v), static_cast<char>(v >> 8)};
  out.write(b, 2);
}

}  // namespace

PcapReader::PcapReader(std::istream& in) : in_(in) {
  RawReader r{in_};
  std::uint32_t magic = 0;
  if (!r.u32(magic)) throw PcapError("pcap: empty stream");

  // The magic is stored in the writer's byte order; when read on a host of
  // the opposite order it appears byte-swapped.
  bool host_le = std::endian::native == std::endian::little;
  (void)host_le;
  switch (magic) {
    case kMagicUsec:
      info_.nanosecond = false;
      r.swap = false;
      break;
    case kMagicNsec:
      info_.nanosecond = true;
      r.swap = false;
      break;
    case kMagicUsecSwapped:
      info_.nanosecond = false;
      r.swap = true;
      break;
    case kMagicNsecSwapped:
      info_.nanosecond = true;
      r.swap = true;
      break;
    default:
      throw PcapError("pcap: bad magic");
  }
  info_.swapped = r.swap;

  std::uint32_t tz, sigfigs;
  if (!r.u16(info_.version_major) || !r.u16(info_.version_minor) || !r.u32(tz) ||
      !r.u32(sigfigs) || !r.u32(info_.snaplen) || !r.u32(info_.link_type))
    throw PcapError("pcap: truncated global header");
  if (info_.version_major != 2) throw PcapError("pcap: unsupported version");
}

bool PcapReader::next(Packet& out) {
  RawReader r{in_, info_.swapped};
  std::uint32_t ts_sec, ts_frac, incl_len, orig_len;
  if (!r.u32(ts_sec)) return false;  // clean EOF
  if (!r.u32(ts_frac) || !r.u32(incl_len) || !r.u32(orig_len)) return false;
  if (incl_len > info_.snaplen + 65536) return false;  // corrupt record header

  out.data.resize(incl_len);
  if (!in_.read(reinterpret_cast<char*>(out.data.data()),
                static_cast<std::streamsize>(incl_len)))
    return false;
  std::uint64_t usec = info_.nanosecond ? ts_frac / 1000 : ts_frac;
  out.ts_usec = static_cast<std::uint64_t>(ts_sec) * 1'000'000 + usec;
  return true;
}

std::vector<Packet> PcapReader::read_all() {
  std::vector<Packet> pkts;
  Packet p;
  while (next(p)) pkts.push_back(std::move(p));
  return pkts;
}

PcapWriter::PcapWriter(std::ostream& out, std::uint32_t snaplen, std::uint32_t link_type)
    : out_(out), snaplen_(snaplen) {
  put_u32(out_, kMagicUsec);
  put_u16(out_, 2);
  put_u16(out_, 4);
  put_u32(out_, 0);  // thiszone
  put_u32(out_, 0);  // sigfigs
  put_u32(out_, snaplen);
  put_u32(out_, link_type);
}

void PcapWriter::write(const Packet& pkt) {
  std::uint32_t incl = static_cast<std::uint32_t>(
      std::min<std::size_t>(pkt.data.size(), snaplen_));
  put_u32(out_, static_cast<std::uint32_t>(pkt.ts_usec / 1'000'000));
  put_u32(out_, static_cast<std::uint32_t>(pkt.ts_usec % 1'000'000));
  put_u32(out_, incl);
  put_u32(out_, static_cast<std::uint32_t>(pkt.data.size()));
  out_.write(reinterpret_cast<const char*>(pkt.data.data()), incl);
}

void PcapWriter::write_all(const std::vector<Packet>& pkts) {
  for (const auto& p : pkts) write(p);
}

std::vector<Packet> read_pcap_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw PcapError("pcap: cannot open " + path);
  PcapReader reader(in);
  return reader.read_all();
}

void write_pcap_file(const std::string& path, const std::vector<Packet>& pkts) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw PcapError("pcap: cannot create " + path);
  PcapWriter writer(out);
  writer.write_all(pkts);
}

}  // namespace sugar::net
