#include "net/pcap.h"

#include "core/trace.h"

#include <array>
#include <bit>
#include <cstring>
#include <fstream>

namespace sugar::net {
namespace {

constexpr std::uint32_t kMagicUsec = 0xA1B2C3D4;
constexpr std::uint32_t kMagicNsec = 0xA1B23C4D;
constexpr std::uint32_t kMagicUsecSwapped = 0xD4C3B2A1;
constexpr std::uint32_t kMagicNsecSwapped = 0x4D3CB2A1;

std::uint32_t bswap32(std::uint32_t v) {
  return v << 24 | (v & 0xFF00) << 8 | (v >> 8 & 0xFF00) | v >> 24;
}
std::uint16_t bswap16(std::uint16_t v) {
  return static_cast<std::uint16_t>(v << 8 | v >> 8);
}

struct RawReader {
  std::istream& in;
  bool swap = false;

  bool u32(std::uint32_t& out) {
    std::array<char, 4> b;
    if (!in.read(b.data(), 4)) return false;
    std::uint32_t v;
    std::memcpy(&v, b.data(), 4);
    out = swap ? bswap32(v) : v;
    return true;
  }
  bool u16(std::uint16_t& out) {
    std::array<char, 2> b;
    if (!in.read(b.data(), 2)) return false;
    std::uint16_t v;
    std::memcpy(&v, b.data(), 2);
    out = swap ? bswap16(v) : v;
    return true;
  }
};

void put_u32(std::ostream& out, std::uint32_t v) {
  // Always write little-endian regardless of host.
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out.write(b, 4);
}
void put_u16(std::ostream& out, std::uint16_t v) {
  char b[2] = {static_cast<char>(v), static_cast<char>(v >> 8)};
  out.write(b, 2);
}

}  // namespace

PcapReader::PcapReader(std::istream& in, ReadPolicy policy)
    : in_(in), policy_(policy) {
  RawReader r{in_};
  std::uint32_t magic = 0;
  if (!r.u32(magic)) throw PcapError("pcap: empty stream");

  // The magic is stored in the writer's byte order; when read on a host of
  // the opposite order it appears byte-swapped.
  bool host_le = std::endian::native == std::endian::little;
  (void)host_le;
  switch (magic) {
    case kMagicUsec:
      info_.nanosecond = false;
      r.swap = false;
      break;
    case kMagicNsec:
      info_.nanosecond = true;
      r.swap = false;
      break;
    case kMagicUsecSwapped:
      info_.nanosecond = false;
      r.swap = true;
      break;
    case kMagicNsecSwapped:
      info_.nanosecond = true;
      r.swap = true;
      break;
    default:
      throw PcapError("pcap: bad magic");
  }
  info_.swapped = r.swap;

  std::uint32_t tz, sigfigs;
  if (!r.u16(info_.version_major) || !r.u16(info_.version_minor) || !r.u32(tz) ||
      !r.u32(sigfigs) || !r.u32(info_.snaplen) || !r.u32(info_.link_type))
    throw PcapError("pcap: truncated global header");
  if (info_.version_major != 2) throw PcapError("pcap: unsupported version");
  // Never trust the claimed snaplen for allocation bounds: a hostile
  // 0xFFFFFFFF (or a "no limit" 0) is clamped to kMaxSnaplen.
  if (info_.snaplen == 0 || info_.snaplen > kMaxSnaplen) info_.snaplen = kMaxSnaplen;
}

bool PcapReader::plausible_record(std::uint32_t incl_len,
                                  std::uint32_t orig_len) const {
  // A credible classic-pcap record captures at most snaplen bytes of an
  // original frame at least that long; the original can't be absurd either.
  return incl_len <= info_.snaplen && orig_len >= incl_len &&
         orig_len <= (1u << 26);
}

bool PcapReader::resync(std::streamoff from) {
  constexpr std::streamoff kHdr = 16;
  in_.clear();
  in_.seekg(0, std::ios::end);
  const std::streamoff end = in_.tellg();

  auto header_at = [&](std::streamoff off, std::uint32_t& incl,
                       std::uint32_t& orig) {
    std::array<char, 16> hdr;
    in_.clear();
    in_.seekg(off);
    in_.read(hdr.data(), kHdr);
    if (in_.gcount() < kHdr) return false;
    std::memcpy(&incl, hdr.data() + 8, 4);
    std::memcpy(&orig, hdr.data() + 12, 4);
    if (info_.swapped) {
      incl = bswap32(incl);
      orig = bswap32(orig);
    }
    return true;
  };

  for (std::streamoff off = from; off + kHdr <= end; ++off) {
    std::uint32_t incl, orig;
    if (!header_at(off, incl, orig) || !plausible_record(incl, orig)) continue;
    // Runs of zero bytes (e.g. zeroed MAC addresses in frame data) decode as
    // chains of plausible zero-length records; refuse to lock onto an empty
    // candidate so resync lands on real capture data, not phantoms.
    if (incl == 0) continue;
    // A lone plausible 16-byte window is weak evidence (arbitrary payload
    // bytes qualify). Demand a clean chain: the candidate record must end
    // exactly at EOF or be followed by another plausible header.
    std::streamoff rec_end = off + kHdr + static_cast<std::streamoff>(incl);
    if (rec_end > end) continue;
    if (rec_end != end) {
      std::uint32_t incl2, orig2;
      // The successor must be nonzero too: a window straddling a real record
      // header reads its timestamp as a tiny incl_len, and the zero bytes
      // after it then masquerade as an empty follow-up record.
      if (!header_at(rec_end, incl2, orig2) || incl2 == 0 ||
          !plausible_record(incl2, orig2))
        continue;
    }
    // `from - 1` is where the corrupt header started; everything up to the
    // resync point was skipped.
    stats_.bytes_skipped += static_cast<std::size_t>(off - (from - 1));
    ++stats_.resyncs;
    in_.clear();
    in_.seekg(off);
    return true;
  }
  // No plausible header before EOF: the rest of the stream is skipped.
  in_.clear();
  in_.seekg(0, std::ios::end);
  if (end > from - 1)
    stats_.bytes_skipped += static_cast<std::size_t>(end - (from - 1));
  return false;
}

bool PcapReader::next(Packet& out) {
  if (done_) return false;
  for (;;) {
    std::streamoff rec_start = in_.tellg();
    RawReader r{in_, info_.swapped};
    std::uint32_t ts_sec, ts_frac, incl_len, orig_len;
    if (!r.u32(ts_sec)) {  // clean EOF
      done_ = true;
      return false;
    }
    if (!r.u32(ts_frac) || !r.u32(incl_len) || !r.u32(orig_len)) {
      ++stats_.records_truncated;  // partial trailing record header
      done_ = true;
      return false;
    }
    if (!plausible_record(incl_len, orig_len)) {
      ++stats_.corrupt_headers;
      if (policy_ == ReadPolicy::Strict || rec_start < 0 || !resync(rec_start + 1)) {
        done_ = true;
        return false;
      }
      continue;  // re-read the header at the resynced position
    }

    out.data.resize(incl_len);
    if (incl_len > 0 &&
        !in_.read(reinterpret_cast<char*>(out.data.data()),
                  static_cast<std::streamsize>(incl_len))) {
      out.data.resize(static_cast<std::size_t>(in_.gcount()));
      ++stats_.records_truncated;  // data cut short by EOF
      done_ = true;
      return false;
    }
    std::uint64_t usec = info_.nanosecond ? ts_frac / 1000 : ts_frac;
    out.ts_usec = static_cast<std::uint64_t>(ts_sec) * 1'000'000 + usec;
    ++stats_.records_ok;
    return true;
  }
}

std::vector<Packet> PcapReader::read_all() {
  SUGAR_TRACE_SPAN("pcap.read_all");
  const PcapReadStats before = stats_;
  std::vector<Packet> pkts;
  std::uint64_t bytes = 0;
  Packet p;
  while (next(p)) {
    bytes += p.data.size();
    pkts.push_back(std::move(p));
  }
  SUGAR_TRACE_COUNT("pcap.records_ok", stats_.records_ok - before.records_ok);
  SUGAR_TRACE_COUNT("pcap.records_truncated",
                    stats_.records_truncated - before.records_truncated);
  SUGAR_TRACE_COUNT("pcap.corrupt_headers",
                    stats_.corrupt_headers - before.corrupt_headers);
  SUGAR_TRACE_COUNT("pcap.resyncs", stats_.resyncs - before.resyncs);
  SUGAR_TRACE_COUNT("pcap.bytes_skipped",
                    stats_.bytes_skipped - before.bytes_skipped);
  SUGAR_TRACE_COUNT("pcap.bytes_read", bytes);
  return pkts;
}

PcapWriter::PcapWriter(std::ostream& out, std::uint32_t snaplen, std::uint32_t link_type)
    : out_(out), snaplen_(snaplen) {
  put_u32(out_, kMagicUsec);
  put_u16(out_, 2);
  put_u16(out_, 4);
  put_u32(out_, 0);  // thiszone
  put_u32(out_, 0);  // sigfigs
  put_u32(out_, snaplen);
  put_u32(out_, link_type);
}

void PcapWriter::write(const Packet& pkt) {
  std::uint32_t incl = static_cast<std::uint32_t>(
      std::min<std::size_t>(pkt.data.size(), snaplen_));
  put_u32(out_, static_cast<std::uint32_t>(pkt.ts_usec / 1'000'000));
  put_u32(out_, static_cast<std::uint32_t>(pkt.ts_usec % 1'000'000));
  put_u32(out_, incl);
  put_u32(out_, static_cast<std::uint32_t>(pkt.data.size()));
  out_.write(reinterpret_cast<const char*>(pkt.data.data()), incl);
}

void PcapWriter::write_all(const std::vector<Packet>& pkts) {
  for (const auto& p : pkts) write(p);
}

std::vector<Packet> read_pcap_file(const std::string& path) {
  return read_pcap_file(path, ReadPolicy::Strict);
}

std::vector<Packet> read_pcap_file(const std::string& path, ReadPolicy policy,
                                   PcapReadStats* stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw PcapError("pcap: cannot open " + path);
  PcapReader reader(in, policy);
  auto pkts = reader.read_all();
  if (stats) *stats = reader.stats();
  return pkts;
}

void write_pcap_file(const std::string& path, const std::vector<Packet>& pkts) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw PcapError("pcap: cannot create " + path);
  PcapWriter writer(out);
  writer.write_all(pkts);
}

}  // namespace sugar::net
