#include "net/mutate.h"

#include <algorithm>

#include "net/checksum.h"
#include "net/parser.h"

namespace sugar::net {
namespace {

void put_u32be(std::vector<std::uint8_t>& d, std::size_t off, std::uint32_t v) {
  d[off] = static_cast<std::uint8_t>(v >> 24);
  d[off + 1] = static_cast<std::uint8_t>(v >> 16);
  d[off + 2] = static_cast<std::uint8_t>(v >> 8);
  d[off + 3] = static_cast<std::uint8_t>(v);
}

void put_u16be(std::vector<std::uint8_t>& d, std::size_t off, std::uint16_t v) {
  d[off] = static_cast<std::uint8_t>(v >> 8);
  d[off + 1] = static_cast<std::uint8_t>(v);
}

/// Finds the byte offset of the TCP timestamp option value within the frame,
/// or 0 if absent.
std::size_t tcp_timestamp_offset(const Packet& pkt, const ParsedPacket& p) {
  if (!p.tcp || !p.tcp->options.timestamp) return 0;
  std::size_t off = p.l4_offset + 20;
  std::size_t end = p.l4_offset + p.tcp->header_len();
  while (off < end && off < pkt.data.size()) {
    std::uint8_t kind = pkt.data[off];
    if (kind == 0) break;
    if (kind == 1) {
      ++off;
      continue;
    }
    if (off + 1 >= pkt.data.size()) break;
    std::uint8_t len = pkt.data[off + 1];
    if (len < 2) break;
    if (kind == 8) return off + 2;  // TSval starts after kind+len
    off += len;
  }
  return 0;
}

}  // namespace

void refresh_checksums(Packet& pkt) {
  auto outcome = parse_packet(pkt);
  if (!outcome.ok()) return;
  const ParsedPacket& p = *outcome.parsed;
  auto& d = pkt.data;

  if (p.ipv4) {
    std::size_t ip_off = p.l3_offset;
    std::size_t ihl = p.ipv4->header_len();
    if (ip_off + ihl > d.size()) return;
    put_u16be(d, ip_off + 10, 0);
    std::uint16_t csum = checksum(std::span{d}.subspan(ip_off, ihl));
    put_u16be(d, ip_off + 10, csum);
  }

  if (!p.has_l4() || p.l4_offset == 0) return;
  std::size_t seg_off = p.l4_offset;
  std::size_t seg_len =
      (p.payload_offset > 0 ? p.payload_offset - seg_off : d.size() - seg_off) +
      p.payload_len;
  if (seg_off + seg_len > d.size()) seg_len = d.size() - seg_off;

  std::size_t csum_off = 0;
  if (p.tcp) csum_off = seg_off + 16;
  if (p.udp) csum_off = seg_off + 6;
  if (p.icmp) csum_off = seg_off + 2;
  if (csum_off == 0 || csum_off + 2 > d.size()) return;

  put_u16be(d, csum_off, 0);
  auto segment = std::span{d}.subspan(seg_off, seg_len);
  std::uint16_t csum = 0;
  if (p.ipv4) {
    // Re-read addresses from the (possibly mutated) bytes, not the parse.
    Ipv4Address src{static_cast<std::uint32_t>(d[p.l3_offset + 12]) << 24 |
                    static_cast<std::uint32_t>(d[p.l3_offset + 13]) << 16 |
                    static_cast<std::uint32_t>(d[p.l3_offset + 14]) << 8 |
                    d[p.l3_offset + 15]};
    Ipv4Address dst{static_cast<std::uint32_t>(d[p.l3_offset + 16]) << 24 |
                    static_cast<std::uint32_t>(d[p.l3_offset + 17]) << 16 |
                    static_cast<std::uint32_t>(d[p.l3_offset + 18]) << 8 |
                    d[p.l3_offset + 19]};
    csum = p.icmp ? checksum(segment)
                  : l4_checksum_v4(src, dst, p.ip_protocol(), segment);
  } else if (p.ipv6) {
    Ipv6Address src, dst;
    std::copy_n(d.begin() + static_cast<std::ptrdiff_t>(p.l3_offset + 8), 16,
                src.octets.begin());
    std::copy_n(d.begin() + static_cast<std::ptrdiff_t>(p.l3_offset + 24), 16,
                dst.octets.begin());
    csum = l4_checksum_v6(src, dst, p.ip_protocol(), segment);
  }
  put_u16be(d, csum_off, csum);
}

bool randomize_seq_ack(Packet& pkt, std::mt19937_64& rng) {
  auto outcome = parse_packet(pkt);
  if (!outcome.ok() || !outcome.parsed->tcp) return false;
  std::size_t off = outcome.parsed->l4_offset;
  put_u32be(pkt.data, off + 4, static_cast<std::uint32_t>(rng()));
  put_u32be(pkt.data, off + 8, static_cast<std::uint32_t>(rng()));
  refresh_checksums(pkt);
  return true;
}

bool randomize_tcp_timestamp(Packet& pkt, std::mt19937_64& rng) {
  auto outcome = parse_packet(pkt);
  if (!outcome.ok()) return false;
  std::size_t off = tcp_timestamp_offset(pkt, *outcome.parsed);
  if (off == 0 || off + 8 > pkt.data.size()) return false;
  put_u32be(pkt.data, off, static_cast<std::uint32_t>(rng()));
  put_u32be(pkt.data, off + 4, static_cast<std::uint32_t>(rng()));
  refresh_checksums(pkt);
  return true;
}

namespace {

bool set_ip_addresses(Packet& pkt, std::optional<std::uint64_t> seed_src,
                      std::optional<std::uint64_t> seed_dst, std::mt19937_64* rng) {
  auto outcome = parse_packet(pkt);
  if (!outcome.ok() || !outcome.parsed->has_ip()) return false;
  const ParsedPacket& p = *outcome.parsed;
  auto& d = pkt.data;
  if (p.ipv4) {
    std::uint32_t src = rng ? static_cast<std::uint32_t>((*rng)())
                            : static_cast<std::uint32_t>(seed_src.value_or(0));
    std::uint32_t dst = rng ? static_cast<std::uint32_t>((*rng)())
                            : static_cast<std::uint32_t>(seed_dst.value_or(0));
    put_u32be(d, p.l3_offset + 12, src);
    put_u32be(d, p.l3_offset + 16, dst);
  } else {
    for (std::size_t i = 0; i < 16; ++i) {
      d[p.l3_offset + 8 + i] =
          rng ? static_cast<std::uint8_t>((*rng)()) : static_cast<std::uint8_t>(0);
      d[p.l3_offset + 24 + i] =
          rng ? static_cast<std::uint8_t>((*rng)()) : static_cast<std::uint8_t>(0);
    }
  }
  refresh_checksums(pkt);
  return true;
}

}  // namespace

bool zero_ip_addresses(Packet& pkt) { return set_ip_addresses(pkt, 0, 0, nullptr); }

bool randomize_ip_addresses(Packet& pkt, std::mt19937_64& rng) {
  return set_ip_addresses(pkt, std::nullopt, std::nullopt, &rng);
}

bool zero_ports(Packet& pkt) {
  auto outcome = parse_packet(pkt);
  if (!outcome.ok() || (!outcome.parsed->tcp && !outcome.parsed->udp)) return false;
  std::size_t off = outcome.parsed->l4_offset;
  put_u16be(pkt.data, off, 0);
  put_u16be(pkt.data, off + 2, 0);
  refresh_checksums(pkt);
  return true;
}

bool zero_payload(Packet& pkt) {
  auto outcome = parse_packet(pkt);
  if (!outcome.ok() || outcome.parsed->payload_offset == 0) return false;
  const ParsedPacket& p = *outcome.parsed;
  std::size_t end = std::min(p.payload_offset + p.payload_len, pkt.data.size());
  std::fill(pkt.data.begin() + static_cast<std::ptrdiff_t>(p.payload_offset),
            pkt.data.begin() + static_cast<std::ptrdiff_t>(end), 0);
  refresh_checksums(pkt);
  return true;
}

bool strip_payload(Packet& pkt) {
  auto outcome = parse_packet(pkt);
  if (!outcome.ok() || outcome.parsed->payload_offset == 0) return false;
  const ParsedPacket& p = *outcome.parsed;
  pkt.data.resize(p.payload_offset);
  // Fix L3 length fields to match the truncation.
  auto& d = pkt.data;
  if (p.ipv4) {
    std::uint16_t new_total =
        static_cast<std::uint16_t>(p.payload_offset - p.l3_offset);
    put_u16be(d, p.l3_offset + 2, new_total);
  } else if (p.ipv6) {
    std::uint16_t new_plen =
        static_cast<std::uint16_t>(p.payload_offset - p.l3_offset - Ipv6Header::kSize);
    put_u16be(d, p.l3_offset + 4, new_plen);
  }
  if (p.udp) {
    std::uint16_t new_len = static_cast<std::uint16_t>(p.payload_offset - p.l4_offset);
    put_u16be(d, p.l4_offset + 4, new_len);
  }
  refresh_checksums(pkt);
  return true;
}

namespace {

int draw_delta(int max_delta, std::mt19937_64& rng) {
  if (max_delta <= 0) return 0;
  auto span = static_cast<std::uint64_t>(2 * max_delta + 1);
  return static_cast<int>(rng() % span) - max_delta;
}

/// Byte offset of the TCP MSS option value (kind 2, len 4), or 0 if absent.
std::size_t tcp_mss_offset(const Packet& pkt, const ParsedPacket& p) {
  if (!p.tcp) return 0;
  std::size_t off = p.l4_offset + 20;
  std::size_t end = p.l4_offset + p.tcp->header_len();
  while (off < end && off < pkt.data.size()) {
    std::uint8_t kind = pkt.data[off];
    if (kind == 0) break;
    if (kind == 1) {
      ++off;
      continue;
    }
    if (off + 1 >= pkt.data.size()) break;
    std::uint8_t len = pkt.data[off + 1];
    if (len < 2) break;
    if (kind == 2 && len == 4) return off + 2;
    off += len;
  }
  return 0;
}

}  // namespace

bool jitter_ttl(Packet& pkt, int max_delta, std::mt19937_64& rng) {
  auto outcome = parse_packet(pkt);
  if (!outcome.ok() || !outcome.parsed->has_ip()) return false;
  const ParsedPacket& p = *outcome.parsed;
  std::size_t off = p.ipv4 ? p.l3_offset + 8 : p.l3_offset + 7;
  if (off >= pkt.data.size()) return false;
  int delta = draw_delta(max_delta, rng);
  int ttl = std::clamp(static_cast<int>(pkt.data[off]) + delta, 1, 255);
  pkt.data[off] = static_cast<std::uint8_t>(ttl);
  refresh_checksums(pkt);
  return true;
}

bool jitter_tcp_window(Packet& pkt, int max_delta, std::mt19937_64& rng) {
  auto outcome = parse_packet(pkt);
  if (!outcome.ok() || !outcome.parsed->tcp) return false;
  std::size_t off = outcome.parsed->l4_offset + 14;
  if (off + 2 > pkt.data.size()) return false;
  int win = (pkt.data[off] << 8) | pkt.data[off + 1];
  int delta = draw_delta(max_delta, rng);
  win = std::clamp(win + delta, 1, 65535);
  put_u16be(pkt.data, off, static_cast<std::uint16_t>(win));
  refresh_checksums(pkt);
  return true;
}

bool jitter_tcp_mss(Packet& pkt, int max_delta, std::mt19937_64& rng) {
  auto outcome = parse_packet(pkt);
  if (!outcome.ok()) return false;
  std::size_t off = tcp_mss_offset(pkt, *outcome.parsed);
  if (off == 0 || off + 2 > pkt.data.size()) return false;
  int mss = (pkt.data[off] << 8) | pkt.data[off + 1];
  int delta = draw_delta(max_delta, rng);
  mss = std::clamp(mss + delta, 536, 65495);
  put_u16be(pkt.data, off, static_cast<std::uint16_t>(mss));
  refresh_checksums(pkt);
  return true;
}

bool zero_headers(Packet& pkt) {
  auto outcome = parse_packet(pkt);
  if (!outcome.ok()) return false;
  const ParsedPacket& p = *outcome.parsed;
  std::size_t end = p.payload_offset > 0 ? p.payload_offset : pkt.data.size();
  if (p.l3_offset >= pkt.data.size()) return false;
  std::fill(pkt.data.begin() + static_cast<std::ptrdiff_t>(p.l3_offset),
            pkt.data.begin() + static_cast<std::ptrdiff_t>(std::min(end, pkt.data.size())),
            0);
  return true;
}

}  // namespace sugar::net
