// The Packet and ParsedPacket value types that flow through the whole
// benchmark: raw captured bytes plus, after parsing, decoded layers and the
// offsets needed to slice header vs payload views.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/headers.h"

namespace sugar::net {

/// A captured frame: timestamp plus raw bytes starting at the Ethernet
/// header. This is what the pcap reader/writer and the trace generators
/// exchange.
struct Packet {
  std::uint64_t ts_usec = 0;             // capture time, microseconds
  std::vector<std::uint8_t> data;        // full frame, link layer first

  [[nodiscard]] std::span<const std::uint8_t> bytes() const { return data; }
};

/// Result of parsing a Packet. Layer structs are present when the packet
/// contains them; offsets index into the owning Packet's data so callers can
/// take header-only / payload-only views without copying.
struct ParsedPacket {
  std::optional<EthernetHeader> eth;
  std::optional<ArpHeader> arp;
  std::optional<Ipv4Header> ipv4;
  std::optional<Ipv6Header> ipv6;
  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  std::optional<IcmpHeader> icmp;

  std::size_t l3_offset = 0;        // start of IP/ARP header
  std::size_t l4_offset = 0;        // start of TCP/UDP/ICMP header (0 if none)
  std::size_t payload_offset = 0;   // start of application payload (0 if none)
  std::size_t payload_len = 0;

  [[nodiscard]] bool has_ip() const { return ipv4.has_value() || ipv6.has_value(); }
  [[nodiscard]] bool has_l4() const { return tcp || udp || icmp; }

  /// Transport protocol number (IpProto) or 0 when no IP layer exists.
  [[nodiscard]] std::uint8_t ip_protocol() const {
    if (ipv4) return ipv4->protocol;
    if (ipv6) return ipv6->next_header;
    return 0;
  }

  [[nodiscard]] std::optional<std::uint16_t> src_port() const {
    if (tcp) return tcp->src_port;
    if (udp) return udp->src_port;
    return std::nullopt;
  }
  [[nodiscard]] std::optional<std::uint16_t> dst_port() const {
    if (tcp) return tcp->dst_port;
    if (udp) return udp->dst_port;
    return std::nullopt;
  }

  /// Slice of the original frame covering L3+L4 headers (no payload).
  [[nodiscard]] std::span<const std::uint8_t> header_view(const Packet& pkt) const {
    std::size_t end = payload_offset > 0 ? payload_offset : pkt.data.size();
    if (l3_offset >= pkt.data.size() || end < l3_offset) return {};
    return std::span{pkt.data}.subspan(l3_offset, std::min(end, pkt.data.size()) - l3_offset);
  }
  /// Slice covering the application payload.
  [[nodiscard]] std::span<const std::uint8_t> payload_view(const Packet& pkt) const {
    if (payload_offset == 0 || payload_offset >= pkt.data.size()) return {};
    std::size_t n = std::min(payload_len, pkt.data.size() - payload_offset);
    return std::span{pkt.data}.subspan(payload_offset, n);
  }
};

}  // namespace sugar::net
