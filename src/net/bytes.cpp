#include "net/bytes.h"

#include <algorithm>

namespace sugar::net {

void ByteReader::seek(std::size_t offset) {
  if (offset > data_.size()) {
    fail();
    return;
  }
  pos_ = offset;
}

void ByteReader::skip(std::size_t n) {
  if (!need(n)) return;
  pos_ += n;
}

std::uint8_t ByteReader::u8() {
  if (!need(1)) return 0;
  return data_[pos_++];
}

std::uint16_t ByteReader::u16be() {
  if (!need(2)) return 0;
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32be() {
  if (!need(4)) return 0;
  std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) << 24 |
                    static_cast<std::uint32_t>(data_[pos_ + 1]) << 16 |
                    static_cast<std::uint32_t>(data_[pos_ + 2]) << 8 |
                    static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64be() {
  std::uint64_t hi = u32be();
  std::uint64_t lo = u32be();
  return ok_ ? (hi << 32 | lo) : 0;
}

std::uint16_t ByteReader::u16le() {
  if (!need(2)) return 0;
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] | data_[pos_ + 1] << 8);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32le() {
  if (!need(4)) return 0;
  std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) |
                    static_cast<std::uint32_t>(data_[pos_ + 1]) << 8 |
                    static_cast<std::uint32_t>(data_[pos_ + 2]) << 16 |
                    static_cast<std::uint32_t>(data_[pos_ + 3]) << 24;
  pos_ += 4;
  return v;
}

bool ByteReader::bytes(std::uint8_t* out, std::size_t n) {
  if (!need(n)) return false;
  std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(pos_), n, out);
  pos_ += n;
  return true;
}

std::span<const std::uint8_t> ByteReader::view(std::size_t n) {
  if (!need(n)) return {};
  auto v = data_.subspan(pos_, n);
  pos_ += n;
  return v;
}

void ByteWriter::u16be(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32be(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u64be(std::uint64_t v) {
  u32be(static_cast<std::uint32_t>(v >> 32));
  u32be(static_cast<std::uint32_t>(v));
}

void ByteWriter::u16le(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32le(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
}

void ByteWriter::patch_u16be(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > buf_.size()) return;
  buf_[offset] = static_cast<std::uint8_t>(v >> 8);
  buf_[offset + 1] = static_cast<std::uint8_t>(v);
}

void ByteWriter::patch_u32be(std::size_t offset, std::uint32_t v) {
  if (offset + 4 > buf_.size()) return;
  buf_[offset] = static_cast<std::uint8_t>(v >> 24);
  buf_[offset + 1] = static_cast<std::uint8_t>(v >> 16);
  buf_[offset + 2] = static_cast<std::uint8_t>(v >> 8);
  buf_[offset + 3] = static_cast<std::uint8_t>(v);
}

std::string hex_words(std::span<const std::uint8_t> data) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(data.size() * 5 / 2 + 2);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i > 0 && i % 2 == 0) out.push_back(' ');
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xF]);
  }
  return out;
}

}  // namespace sugar::net
