#include "net/headers.h"

namespace sugar::net {
// Header structs are plain value types; their behaviour lives in the parser
// and serializer. This TU exists to anchor the vtable-free library and host
// any future non-inline helpers.
}  // namespace sugar::net
