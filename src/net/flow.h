// Flow identification: 5-tuple keys with bi-flow canonicalization, and a
// FlowTable that groups a packet stream into bidirectional flows. The
// per-flow train/test split — the paper's core methodological fix — operates
// on the flow ids produced here.
#pragma once

#include <compare>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "net/parser.h"

namespace sugar::net {

/// Canonical bi-flow key: endpoints are ordered so both directions of a
/// connection map to the same key. `a` is the lexicographically smaller
/// (address, port) endpoint.
struct FlowKey {
  IpAddress a_ip;
  IpAddress b_ip;
  std::uint16_t a_port = 0;
  std::uint16_t b_port = 0;
  std::uint8_t proto = 0;

  auto operator<=>(const FlowKey&) const = default;

  [[nodiscard]] std::string to_string() const;

  /// Builds the canonical key from a parsed packet; also reports whether the
  /// packet travels in the a->b direction. Returns false for non-IP or
  /// port-less packets.
  static bool from_parsed(const ParsedPacket& p, FlowKey& key, bool& forward);
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const;
};

/// One packet's membership in a flow.
struct FlowPacketRef {
  std::size_t packet_index = 0;  // index into the originating packet vector
  bool forward = false;          // a->b direction?
};

struct Flow {
  FlowKey key;
  std::vector<FlowPacketRef> packets;
  std::uint64_t first_ts_usec = 0;
  std::uint64_t last_ts_usec = 0;

  [[nodiscard]] std::size_t size() const { return packets.size(); }
};

/// Groups packets into bi-flows, preserving arrival order within each flow.
/// Packets that carry no 5-tuple (ARP, ICMP, LLC) are reported separately.
class FlowTable {
 public:
  /// Adds one packet (by index). Returns the flow id it joined, or -1 when
  /// the packet has no 5-tuple.
  int add(std::size_t packet_index, const Packet& pkt);

  [[nodiscard]] const std::vector<Flow>& flows() const { return flows_; }
  [[nodiscard]] const std::vector<std::size_t>& keyless_packets() const {
    return keyless_;
  }
  /// flow id for each added packet index (parallel to insertion order), -1
  /// for keyless packets.
  [[nodiscard]] const std::vector<int>& flow_of_packet() const { return flow_of_; }

 private:
  std::unordered_map<FlowKey, std::size_t, FlowKeyHash> index_;
  std::vector<Flow> flows_;
  std::vector<std::size_t> keyless_;
  std::vector<int> flow_of_;
};

/// Convenience: assemble a whole packet vector into flows.
FlowTable assemble_flows(const std::vector<Packet>& packets);

}  // namespace sugar::net
