// Decoded header structs for the protocols the benchmark handles. These are
// plain value types produced by the parser (src/net/parser.h) and consumed by
// the serializer (src/net/serializer.h); field layout follows the RFCs.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/addr.h"
#include "net/proto.h"

namespace sugar::net {

struct EthernetHeader {
  MacAddress dst;
  MacAddress src;
  std::uint16_t ether_type = 0;

  static constexpr std::size_t kSize = 14;
};

struct ArpHeader {
  std::uint16_t hw_type = 1;       // Ethernet
  std::uint16_t proto_type = 0x0800;
  std::uint8_t hw_len = 6;
  std::uint8_t proto_len = 4;
  std::uint16_t opcode = 1;        // 1=request 2=reply
  MacAddress sender_mac;
  Ipv4Address sender_ip;
  MacAddress target_mac;
  Ipv4Address target_ip;

  static constexpr std::size_t kSize = 28;
};

struct Ipv4Header {
  std::uint8_t version = 4;
  std::uint8_t ihl = 5;            // 32-bit words; >5 means options present
  std::uint8_t tos = 0;
  std::uint16_t total_length = 0;
  std::uint16_t identification = 0;
  bool dont_fragment = false;
  bool more_fragments = false;
  std::uint16_t fragment_offset = 0;  // in 8-byte units
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  std::uint16_t header_checksum = 0;
  Ipv4Address src;
  Ipv4Address dst;

  [[nodiscard]] std::size_t header_len() const { return std::size_t{ihl} * 4; }
};

struct Ipv6Header {
  std::uint8_t version = 6;
  std::uint8_t traffic_class = 0;
  std::uint32_t flow_label = 0;
  std::uint16_t payload_length = 0;
  std::uint8_t next_header = 0;
  std::uint8_t hop_limit = 64;
  Ipv6Address src;
  Ipv6Address dst;

  static constexpr std::size_t kSize = 40;
};

/// Parsed TCP options. Unknown kinds are preserved raw so serialization can
/// round-trip a packet byte-exactly.
struct TcpOptions {
  std::optional<std::uint16_t> mss;
  std::optional<std::uint8_t> window_scale;
  bool sack_permitted = false;
  /// RFC 7323 timestamp option: (TSval, TSecr). This is one of the implicit
  /// flow identifiers the paper's split analysis targets.
  std::optional<std::pair<std::uint32_t, std::uint32_t>> timestamp;
  /// Raw unknown options as (kind, payload bytes).
  std::vector<std::pair<std::uint8_t, std::vector<std::uint8_t>>> unknown;
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t data_offset = 5;  // 32-bit words
  bool fin = false, syn = false, rst = false, psh = false;
  bool ack_flag = false, urg = false, ece = false, cwr = false;
  std::uint16_t window = 0;
  std::uint16_t checksum = 0;
  std::uint16_t urgent_pointer = 0;
  TcpOptions options;

  [[nodiscard]] std::size_t header_len() const { return std::size_t{data_offset} * 4; }
  [[nodiscard]] std::uint8_t flags_byte() const {
    return static_cast<std::uint8_t>(fin | syn << 1 | rst << 2 | psh << 3 |
                                     ack_flag << 4 | urg << 5 | ece << 6 | cwr << 7);
  }
  void set_flags_byte(std::uint8_t f) {
    fin = f & 1;
    syn = f & 2;
    rst = f & 4;
    psh = f & 8;
    ack_flag = f & 16;
    urg = f & 32;
    ece = f & 64;
    cwr = f & 128;
  }
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;
  std::uint16_t checksum = 0;

  static constexpr std::size_t kSize = 8;
};

struct IcmpHeader {
  std::uint8_t type = 8;  // echo request
  std::uint8_t code = 0;
  std::uint16_t checksum = 0;
  std::uint32_t rest = 0;  // id/seq for echo

  static constexpr std::size_t kSize = 8;
};

}  // namespace sugar::net
