#include "net/checksum.h"

#include "core/crc32.h"

namespace sugar::net {

std::uint32_t checksum_partial(std::span<const std::uint8_t> data, std::uint32_t acc) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2)
    acc += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
  if (i < data.size()) acc += static_cast<std::uint32_t>(data[i]) << 8;
  return acc;
}

std::uint16_t checksum_finish(std::uint32_t acc) {
  while (acc >> 16) acc = (acc & 0xFFFF) + (acc >> 16);
  return static_cast<std::uint16_t>(~acc);
}

std::uint16_t checksum(std::span<const std::uint8_t> data) {
  return checksum_finish(checksum_partial(data));
}

std::uint16_t l4_checksum_v4(Ipv4Address src, Ipv4Address dst, std::uint8_t proto,
                             std::span<const std::uint8_t> segment) {
  std::uint32_t acc = 0;
  acc += src.value >> 16;
  acc += src.value & 0xFFFF;
  acc += dst.value >> 16;
  acc += dst.value & 0xFFFF;
  acc += proto;
  acc += static_cast<std::uint32_t>(segment.size());
  return checksum_finish(checksum_partial(segment, acc));
}

std::uint16_t l4_checksum_v6(const Ipv6Address& src, const Ipv6Address& dst,
                             std::uint8_t proto, std::span<const std::uint8_t> segment) {
  std::uint32_t acc = 0;
  acc = checksum_partial(std::span{src.octets}, acc);
  acc = checksum_partial(std::span{dst.octets}, acc);
  // Pseudo header carries a 32-bit length and next-header fields.
  acc += static_cast<std::uint32_t>(segment.size() >> 16);
  acc += static_cast<std::uint32_t>(segment.size() & 0xFFFF);
  acc += proto;
  return checksum_finish(checksum_partial(segment, acc));
}

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t acc) {
  return core::crc32(data, acc);
}

}  // namespace sugar::net
