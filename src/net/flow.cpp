#include "net/flow.h"

namespace sugar::net {

std::string FlowKey::to_string() const {
  return a_ip.to_string() + ":" + std::to_string(a_port) + " <-> " +
         b_ip.to_string() + ":" + std::to_string(b_port) + " proto " +
         std::to_string(proto);
}

bool FlowKey::from_parsed(const ParsedPacket& p, FlowKey& key, bool& forward) {
  if (!p.has_ip()) return false;
  auto sp = p.src_port();
  auto dp = p.dst_port();
  if (!sp || !dp) return false;

  IpAddress src = p.ipv4 ? IpAddress::from_v4(p.ipv4->src) : IpAddress::from_v6(p.ipv6->src);
  IpAddress dst = p.ipv4 ? IpAddress::from_v4(p.ipv4->dst) : IpAddress::from_v6(p.ipv6->dst);

  key.proto = p.ip_protocol();
  if (std::tie(src, *sp) <= std::tie(dst, *dp)) {
    key.a_ip = src;
    key.a_port = *sp;
    key.b_ip = dst;
    key.b_port = *dp;
    forward = true;
  } else {
    key.a_ip = dst;
    key.a_port = *dp;
    key.b_ip = src;
    key.b_port = *sp;
    forward = false;
  }
  return true;
}

std::size_t FlowKeyHash::operator()(const FlowKey& k) const {
  // FNV-1a over the key bytes.
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  for (auto b : k.a_ip.bytes) mix(b);
  for (auto b : k.b_ip.bytes) mix(b);
  mix(static_cast<std::uint8_t>(k.a_port >> 8));
  mix(static_cast<std::uint8_t>(k.a_port));
  mix(static_cast<std::uint8_t>(k.b_port >> 8));
  mix(static_cast<std::uint8_t>(k.b_port));
  mix(k.proto);
  return static_cast<std::size_t>(h);
}

int FlowTable::add(std::size_t packet_index, const Packet& pkt) {
  auto outcome = parse_packet(pkt);
  FlowKey key;
  bool forward = false;
  if (!outcome.ok() || !FlowKey::from_parsed(*outcome.parsed, key, forward)) {
    keyless_.push_back(packet_index);
    flow_of_.push_back(-1);
    return -1;
  }
  auto [it, inserted] = index_.try_emplace(key, flows_.size());
  if (inserted) {
    Flow f;
    f.key = key;
    f.first_ts_usec = pkt.ts_usec;
    flows_.push_back(std::move(f));
  }
  Flow& f = flows_[it->second];
  f.packets.push_back({.packet_index = packet_index, .forward = forward});
  f.last_ts_usec = pkt.ts_usec;
  flow_of_.push_back(static_cast<int>(it->second));
  return static_cast<int>(it->second);
}

FlowTable assemble_flows(const std::vector<Packet>& packets) {
  FlowTable table;
  for (std::size_t i = 0; i < packets.size(); ++i) table.add(i, packets[i]);
  return table;
}

}  // namespace sugar::net
