#include "net/addr.h"

#include <charconv>
#include <cstdio>
#include <string_view>
#include <vector>

namespace sugar::net {
namespace {

bool parse_u8(std::string_view text, std::uint8_t& out, int base = 10) {
  unsigned v = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v, base);
  if (ec != std::errc{} || ptr != text.data() + text.size() || v > 0xFF) return false;
  out = static_cast<std::uint8_t>(v);
  return true;
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets[0], octets[1],
                octets[2], octets[3], octets[4], octets[5]);
  return buf;
}

bool MacAddress::is_broadcast() const {
  for (auto o : octets)
    if (o != 0xFF) return false;
  return true;
}

std::optional<MacAddress> MacAddress::parse(const std::string& text) {
  auto parts = split(text, ':');
  if (parts.size() != 6) return std::nullopt;
  MacAddress mac;
  for (int i = 0; i < 6; ++i) {
    if (!parse_u8(parts[static_cast<std::size_t>(i)], mac.octets[static_cast<std::size_t>(i)], 16))
      return std::nullopt;
  }
  return mac;
}

MacAddress MacAddress::broadcast() {
  MacAddress m;
  m.octets.fill(0xFF);
  return m;
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", octet(0), octet(1), octet(2), octet(3));
  return buf;
}

bool Ipv4Address::is_private() const {
  return in_subnet(from_octets(10, 0, 0, 0), 8) ||
         in_subnet(from_octets(172, 16, 0, 0), 12) ||
         in_subnet(from_octets(192, 168, 0, 0), 16);
}

bool Ipv4Address::in_subnet(Ipv4Address net, int prefix_len) const {
  if (prefix_len <= 0) return true;
  if (prefix_len >= 32) return value == net.value;
  std::uint32_t mask = ~((1u << (32 - prefix_len)) - 1);
  return (value & mask) == (net.value & mask);
}

std::optional<Ipv4Address> Ipv4Address::parse(const std::string& text) {
  auto parts = split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint8_t o[4];
  for (int i = 0; i < 4; ++i)
    if (!parse_u8(parts[static_cast<std::size_t>(i)], o[i])) return std::nullopt;
  return from_octets(o[0], o[1], o[2], o[3]);
}

std::string Ipv6Address::to_string() const {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%02x%02x:%02x%02x:%02x%02x:%02x%02x:%02x%02x:%02x%02x:%02x%02x:%02x%02x",
                octets[0], octets[1], octets[2], octets[3], octets[4], octets[5], octets[6],
                octets[7], octets[8], octets[9], octets[10], octets[11], octets[12],
                octets[13], octets[14], octets[15]);
  return buf;
}

std::optional<Ipv6Address> Ipv6Address::parse(const std::string& text) {
  // Handle one optional "::" gap; each group is 1-4 hex digits.
  auto gap = text.find("::");
  std::vector<std::string_view> head, tail;
  std::string_view sv{text};
  if (gap != std::string::npos) {
    auto left = sv.substr(0, gap);
    auto right = sv.substr(gap + 2);
    if (!left.empty()) head = split(left, ':');
    if (!right.empty()) tail = split(right, ':');
    if (right.find("::") != std::string_view::npos) return std::nullopt;
  } else {
    head = split(sv, ':');
    if (head.size() != 8) return std::nullopt;
  }
  if (head.size() + tail.size() > 8) return std::nullopt;

  auto groups = [&]() -> std::optional<std::array<std::uint16_t, 8>> {
    std::array<std::uint16_t, 8> g{};
    auto parse_group = [](std::string_view t, std::uint16_t& out) {
      if (t.empty() || t.size() > 4) return false;
      unsigned v = 0;
      auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), v, 16);
      if (ec != std::errc{} || ptr != t.data() + t.size()) return false;
      out = static_cast<std::uint16_t>(v);
      return true;
    };
    for (std::size_t i = 0; i < head.size(); ++i)
      if (!parse_group(head[i], g[i])) return std::nullopt;
    for (std::size_t i = 0; i < tail.size(); ++i)
      if (!parse_group(tail[i], g[8 - tail.size() + i])) return std::nullopt;
    return g;
  }();
  if (!groups) return std::nullopt;

  Ipv6Address a;
  for (int i = 0; i < 8; ++i) {
    a.octets[static_cast<std::size_t>(2 * i)] = static_cast<std::uint8_t>((*groups)[static_cast<std::size_t>(i)] >> 8);
    a.octets[static_cast<std::size_t>(2 * i + 1)] = static_cast<std::uint8_t>((*groups)[static_cast<std::size_t>(i)]);
  }
  return a;
}

std::string IpAddress::to_string() const {
  return is_v6 ? v6().to_string() : v4().to_string();
}

Ipv4Address IpAddress::v4() const {
  return {static_cast<std::uint32_t>(bytes[12]) << 24 |
          static_cast<std::uint32_t>(bytes[13]) << 16 |
          static_cast<std::uint32_t>(bytes[14]) << 8 | bytes[15]};
}

Ipv6Address IpAddress::v6() const {
  Ipv6Address a;
  a.octets = bytes;
  return a;
}

IpAddress IpAddress::from_v4(Ipv4Address v4) {
  IpAddress a;
  a.is_v6 = false;
  a.bytes[12] = static_cast<std::uint8_t>(v4.value >> 24);
  a.bytes[13] = static_cast<std::uint8_t>(v4.value >> 16);
  a.bytes[14] = static_cast<std::uint8_t>(v4.value >> 8);
  a.bytes[15] = static_cast<std::uint8_t>(v4.value);
  return a;
}

IpAddress IpAddress::from_v6(const Ipv6Address& v6) {
  IpAddress a;
  a.is_v6 = true;
  a.bytes = v6.octets;
  return a;
}

}  // namespace sugar::net
