#include "net/fault.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "net/flow.h"
#include "net/parser.h"

namespace sugar::net {
namespace {

constexpr std::size_t kEthSize = 14;
constexpr std::size_t kPcapGlobalHeader = 24;
constexpr std::size_t kPcapRecordHeader = 16;

std::uint32_t load_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}
std::uint32_t bswap32(std::uint32_t v) {
  return v << 24 | (v & 0xFF00) << 8 | (v >> 8 & 0xFF00) | v >> 24;
}

/// Record boundaries of a serialized pcap blob (offsets of record headers).
/// Tolerates truncated tails; stops at the first implausible length so fault
/// sites always land inside the well-formed prefix.
std::vector<std::size_t> record_offsets(const std::string& wire) {
  std::vector<std::size_t> recs;
  if (wire.size() < kPcapGlobalHeader) return recs;
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(wire.data());
  std::uint32_t magic = load_u32le(bytes);
  bool swap = false;
  switch (magic) {
    case 0xA1B2C3D4:
    case 0xA1B23C4D:
      break;
    case 0xD4C3B2A1:
    case 0x4D3CB2A1:
      swap = true;
      break;
    default:
      return recs;
  }
  std::size_t off = kPcapGlobalHeader;
  while (off + kPcapRecordHeader <= wire.size()) {
    std::uint32_t incl = load_u32le(bytes + off + 8);
    if (swap) incl = bswap32(incl);
    if (incl > (1u << 24)) break;  // already-corrupt length; stop walking
    recs.push_back(off);
    off += kPcapRecordHeader + incl;
  }
  return recs;
}

}  // namespace

std::string to_string(FrameFault f) {
  switch (f) {
    case FrameFault::TruncateEthernet: return "truncate-ethernet";
    case FrameFault::TruncateL3: return "truncate-l3";
    case FrameFault::TruncateL4: return "truncate-l4";
    case FrameFault::TruncatePayload: return "truncate-payload";
    case FrameFault::TruncateRandom: return "truncate-random";
    case FrameFault::BitFlip: return "bit-flip";
    case FrameFault::LyingIpv4TotalLength: return "lying-ipv4-total-length";
    case FrameFault::LyingIpv4Ihl: return "lying-ipv4-ihl";
    case FrameFault::LyingTcpDataOffset: return "lying-tcp-data-offset";
    case FrameFault::ZeroTcpOptionLength: return "zero-tcp-option-length";
    case FrameFault::OversizedTcpOption: return "oversized-tcp-option";
    case FrameFault::GarbageEtherType: return "garbage-ethertype";
    case FrameFault::kCount: break;
  }
  return "?";
}

std::string to_string(StreamFault f) {
  switch (f) {
    case StreamFault::CorruptMagic: return "corrupt-magic";
    case StreamFault::TruncateGlobalHeader: return "truncate-global-header";
    case StreamFault::HostileSnaplen: return "hostile-snaplen";
    case StreamFault::CorruptRecordLength: return "corrupt-record-length";
    case StreamFault::ZeroLengthRecord: return "zero-length-record";
    case StreamFault::MidRecordTruncate: return "mid-record-truncate";
    case StreamFault::GarbageTail: return "garbage-tail";
    case StreamFault::BitFlipAnywhere: return "bit-flip-anywhere";
    case StreamFault::kCount: break;
  }
  return "?";
}

std::string to_string(SequenceFault f) {
  switch (f) {
    case SequenceFault::ReorderWindow: return "reorder-window";
    case SequenceFault::DuplicateDelivery: return "duplicate-delivery";
    case SequenceFault::TruncateMidFlow: return "truncate-mid-flow";
    case SequenceFault::kCount: break;
  }
  return "?";
}

std::size_t FaultInjector::index_below(std::size_t n) {
  if (n == 0) return 0;
  return std::uniform_int_distribution<std::size_t>{0, n - 1}(rng_);
}

void FaultInjector::flip_bits(std::uint8_t* data, std::size_t size) {
  if (size == 0) return;
  std::size_t flips = 1 + index_below(8);
  for (std::size_t i = 0; i < flips; ++i)
    data[index_below(size)] ^= static_cast<std::uint8_t>(1u << index_below(8));
}

Packet FaultInjector::mutate_frame(const Packet& src, FrameFault fault) {
  Packet out = src;
  if (out.data.empty()) return out;

  // Layer boundaries of the *well-formed* input frame; the mutations below
  // use them as cut/overwrite sites.
  auto clean = parse_packet(src);
  std::size_t size = out.data.size();
  std::size_t l3 = clean.ok() ? clean.parsed->l3_offset : kEthSize;
  std::size_t l4 = clean.ok() ? clean.parsed->l4_offset : 0;
  std::size_t payload = clean.ok() ? clean.parsed->payload_offset : 0;
  bool has_ipv4 = clean.ok() && clean.parsed->ipv4.has_value();
  bool has_tcp = clean.ok() && clean.parsed->tcp.has_value();
  std::size_t tcp_hdr_len = has_tcp ? clean.parsed->tcp->header_len() : 0;

  auto cut_within = [&](std::size_t lo, std::size_t hi) {
    if (hi > size) hi = size;
    if (lo >= hi) {
      flip_bits(out.data.data(), size);
      return;
    }
    out.data.resize(lo + index_below(hi - lo));
  };

  switch (fault) {
    case FrameFault::TruncateEthernet:
      cut_within(0, std::min(size, kEthSize));
      break;
    case FrameFault::TruncateL3:
      cut_within(l3, l4 > l3 ? l4 : size);
      break;
    case FrameFault::TruncateL4:
      cut_within(l4, payload > l4 ? payload : size);
      break;
    case FrameFault::TruncatePayload:
      cut_within(payload, size);
      break;
    case FrameFault::TruncateRandom:
      cut_within(0, size);
      break;
    case FrameFault::BitFlip:
      flip_bits(out.data.data(), size);
      break;
    case FrameFault::LyingIpv4TotalLength:
      if (has_ipv4 && l3 + 4 <= size) {
        std::uint16_t lie = static_cast<std::uint16_t>(rng_());
        out.data[l3 + 2] = static_cast<std::uint8_t>(lie >> 8);
        out.data[l3 + 3] = static_cast<std::uint8_t>(lie);
      } else {
        flip_bits(out.data.data(), size);
      }
      break;
    case FrameFault::LyingIpv4Ihl:
      if (has_ipv4 && l3 < size) {
        out.data[l3] =
            static_cast<std::uint8_t>(0x40 | (rng_() & 0xF));  // version 4, lying IHL
      } else {
        flip_bits(out.data.data(), size);
      }
      break;
    case FrameFault::LyingTcpDataOffset:
      if (has_tcp && l4 + 13 <= size) {
        out.data[l4 + 12] = static_cast<std::uint8_t>((rng_() & 0xF) << 4);
      } else {
        flip_bits(out.data.data(), size);
      }
      break;
    case FrameFault::ZeroTcpOptionLength:
      if (has_tcp && tcp_hdr_len > 20 && l4 + 22 <= size) {
        out.data[l4 + 20] = static_cast<std::uint8_t>(2 + index_below(254));
        out.data[l4 + 21] = 0;
      } else {
        flip_bits(out.data.data(), size);
      }
      break;
    case FrameFault::OversizedTcpOption:
      if (has_tcp && tcp_hdr_len > 20 && l4 + 22 <= size) {
        out.data[l4 + 20] = static_cast<std::uint8_t>(2 + index_below(254));
        out.data[l4 + 21] = 0xFF;
      } else {
        flip_bits(out.data.data(), size);
      }
      break;
    case FrameFault::GarbageEtherType:
      if (size >= kEthSize) {
        out.data[12] = static_cast<std::uint8_t>(rng_());
        out.data[13] = static_cast<std::uint8_t>(rng_());
      } else {
        flip_bits(out.data.data(), size);
      }
      break;
    case FrameFault::kCount:
      break;
  }
  return out;
}

Packet FaultInjector::mutate_frame(const Packet& src) {
  auto f = static_cast<FrameFault>(
      index_below(static_cast<std::size_t>(FrameFault::kCount)));
  return mutate_frame(src, f);
}

std::string FaultInjector::mutate_stream(const std::string& wire, StreamFault fault) {
  std::string out = wire;
  auto* bytes = reinterpret_cast<std::uint8_t*>(out.data());
  auto recs = record_offsets(out);

  auto fallback_flip = [&] {
    flip_bits(bytes, out.size());
  };

  switch (fault) {
    case StreamFault::CorruptMagic:
      if (out.size() >= 4) {
        for (int i = 0; i < 4; ++i) bytes[i] = static_cast<std::uint8_t>(rng_());
      }
      break;
    case StreamFault::TruncateGlobalHeader:
      out.resize(index_below(std::min(out.size(), kPcapGlobalHeader)));
      break;
    case StreamFault::HostileSnaplen:
      if (out.size() >= 20) {
        for (std::size_t i = 16; i < 20; ++i) bytes[i] = 0xFF;
      }
      break;
    case StreamFault::CorruptRecordLength:
      if (!recs.empty()) {
        // 0xFFFFFFFF is endianness-symmetric, so the lie survives swapped files.
        std::size_t rec = recs[index_below(recs.size())];
        for (std::size_t i = rec + 8; i < rec + 12; ++i) bytes[i] = 0xFF;
      } else {
        fallback_flip();
      }
      break;
    case StreamFault::ZeroLengthRecord:
      if (!recs.empty()) {
        std::size_t rec = recs[index_below(recs.size())];
        out.insert(rec, kPcapRecordHeader, '\0');
      } else {
        fallback_flip();
      }
      break;
    case StreamFault::MidRecordTruncate:
      if (!recs.empty()) {
        std::size_t i = index_below(recs.size());
        std::size_t lo = recs[i] + 1;  // inside the record header or its data
        std::size_t hi = std::min(i + 1 < recs.size() ? recs[i + 1] : out.size(),
                                  out.size());
        if (lo < hi) out.resize(lo + index_below(hi - lo));
      } else if (!out.empty()) {
        out.resize(index_below(out.size()));
      }
      break;
    case StreamFault::GarbageTail: {
      std::size_t n = 16 + index_below(64);
      for (std::size_t i = 0; i < n; ++i)
        out.push_back(static_cast<char>(static_cast<std::uint8_t>(rng_())));
      break;
    }
    case StreamFault::BitFlipAnywhere:
      fallback_flip();
      break;
    case StreamFault::kCount:
      break;
  }
  return out;
}

std::string FaultInjector::mutate_stream(const std::string& wire) {
  auto f = static_cast<StreamFault>(
      index_below(static_cast<std::size_t>(StreamFault::kCount)));
  return mutate_stream(wire, f);
}

std::vector<Packet> FaultInjector::mutate_sequence(const std::vector<Packet>& pkts,
                                                   SequenceFault fault,
                                                   const SequenceFaultOptions& opt) {
  std::vector<Packet> out;
  switch (fault) {
    case SequenceFault::ReorderWindow: {
      out = pkts;
      const std::size_t w = std::max<std::size_t>(2, opt.reorder_window);
      for (std::size_t lo = 0; lo < out.size(); lo += w) {
        const std::size_t hi = std::min(out.size(), lo + w);
        std::shuffle(out.begin() + static_cast<std::ptrdiff_t>(lo),
                     out.begin() + static_cast<std::ptrdiff_t>(hi), rng_);
      }
      break;
    }
    case SequenceFault::DuplicateDelivery: {
      // Pick (source index, landing slot) pairs first so the RNG draw order
      // is position-independent, then emit originals interleaved with any
      // duplicates that have come due.
      std::bernoulli_distribution dup(std::clamp(opt.duplicate_fraction, 0.0, 1.0));
      const std::size_t lag_max = std::max<std::size_t>(1, opt.duplicate_lag_max);
      std::multimap<std::size_t, std::size_t> due;  // landing slot -> source
      for (std::size_t i = 0; i < pkts.size(); ++i)
        if (dup(rng_)) due.emplace(i + 1 + index_below(lag_max), i);
      out.reserve(pkts.size() + due.size());
      for (std::size_t i = 0; i < pkts.size(); ++i) {
        out.push_back(pkts[i]);
        auto range = due.equal_range(i);
        for (auto it = range.first; it != range.second; ++it)
          out.push_back(pkts[it->second]);
      }
      // Duplicates scheduled past the end of the stream land at the tail.
      for (auto it = due.upper_bound(pkts.size() - 1); it != due.end(); ++it)
        if (it->first >= pkts.size()) out.push_back(pkts[it->second]);
      break;
    }
    case SequenceFault::TruncateMidFlow: {
      // Group packets by canonical bi-flow key (first-appearance order) and
      // cut a sampled fraction of flows after a random prefix.
      std::vector<int> flow_of(pkts.size(), -1);
      std::unordered_map<FlowKey, int, FlowKeyHash> ids;
      std::vector<std::size_t> flow_len;
      for (std::size_t i = 0; i < pkts.size(); ++i) {
        auto parsed = parse_packet(pkts[i]);
        FlowKey key;
        bool forward = false;
        if (!parsed.ok() || !FlowKey::from_parsed(*parsed.parsed, key, forward))
          continue;
        auto [it, fresh] = ids.emplace(key, static_cast<int>(flow_len.size()));
        if (fresh) flow_len.push_back(0);
        flow_of[i] = it->second;
        ++flow_len[static_cast<std::size_t>(it->second)];
      }
      std::bernoulli_distribution cut(
          std::clamp(opt.truncate_flow_fraction, 0.0, 1.0));
      std::vector<std::size_t> keep_prefix(flow_len.size());
      for (std::size_t f = 0; f < flow_len.size(); ++f) {
        keep_prefix[f] = flow_len[f];
        if (flow_len[f] > opt.truncate_min_kept && cut(rng_))
          keep_prefix[f] =
              opt.truncate_min_kept + index_below(flow_len[f] - opt.truncate_min_kept);
      }
      std::vector<std::size_t> seen(flow_len.size(), 0);
      out.reserve(pkts.size());
      for (std::size_t i = 0; i < pkts.size(); ++i) {
        const int f = flow_of[i];
        if (f < 0) {
          out.push_back(pkts[i]);  // keyless packets are never dropped
          continue;
        }
        if (seen[static_cast<std::size_t>(f)]++ < keep_prefix[static_cast<std::size_t>(f)])
          out.push_back(pkts[i]);
      }
      break;
    }
    case SequenceFault::kCount:
      out = pkts;
      break;
  }
  return out;
}

std::vector<Packet> FaultInjector::mutate_sequence(const std::vector<Packet>& pkts,
                                                   const SequenceFaultOptions& opt) {
  auto f = static_cast<SequenceFault>(
      index_below(static_cast<std::size_t>(SequenceFault::kCount)));
  return mutate_sequence(pkts, f, opt);
}

}  // namespace sugar::net
