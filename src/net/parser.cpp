#include "net/parser.h"

#include "net/bytes.h"

namespace sugar::net {
namespace {

ParseOutcome fail(ParseError e) { return {.parsed = std::nullopt, .error = e}; }

bool parse_tcp_options(ByteReader& r, std::size_t options_len, TcpOptions& out) {
  std::size_t end = r.offset() + options_len;
  while (r.offset() < end && r.ok()) {
    std::uint8_t kind = r.u8();
    if (kind == 0) break;      // EOL
    if (kind == 1) continue;   // NOP
    std::uint8_t len = r.u8();
    if (!r.ok() || len < 2 || r.offset() + (len - 2) > end) return false;
    switch (kind) {
      case 2:  // MSS
        if (len != 4) return false;
        out.mss = r.u16be();
        break;
      case 3:  // window scale
        if (len != 3) return false;
        out.window_scale = r.u8();
        break;
      case 4:  // SACK permitted
        if (len != 2) return false;
        out.sack_permitted = true;
        break;
      case 8: {  // timestamps
        if (len != 10) return false;
        std::uint32_t val = r.u32be();
        std::uint32_t ecr = r.u32be();
        out.timestamp = {val, ecr};
        break;
      }
      default: {
        std::vector<std::uint8_t> raw(static_cast<std::size_t>(len - 2));
        if (!r.bytes(raw.data(), raw.size())) return false;
        out.unknown.emplace_back(kind, std::move(raw));
        break;
      }
    }
  }
  return r.ok();
}

}  // namespace

std::string to_string(ParseError e) {
  switch (e) {
    case ParseError::TruncatedEthernet: return "truncated-ethernet";
    case ParseError::TruncatedArp: return "truncated-arp";
    case ParseError::TruncatedIpv4: return "truncated-ipv4";
    case ParseError::BadIpv4Header: return "bad-ipv4-header";
    case ParseError::TruncatedIpv6: return "truncated-ipv6";
    case ParseError::TruncatedTcp: return "truncated-tcp";
    case ParseError::BadTcpHeader: return "bad-tcp-header";
    case ParseError::TruncatedUdp: return "truncated-udp";
    case ParseError::TruncatedIcmp: return "truncated-icmp";
    case ParseError::kCount: break;
  }
  return "?";
}

ParseOutcome parse_packet(const Packet& pkt) {
  ByteReader r{pkt.bytes()};
  ParsedPacket out;

  if (r.remaining() < EthernetHeader::kSize) return fail(ParseError::TruncatedEthernet);
  EthernetHeader eth;
  r.bytes(eth.dst.octets.data(), 6);
  r.bytes(eth.src.octets.data(), 6);
  eth.ether_type = r.u16be();
  out.eth = eth;
  out.l3_offset = r.offset();

  if (eth.ether_type == static_cast<std::uint16_t>(EtherType::Arp)) {
    if (r.remaining() < ArpHeader::kSize) return fail(ParseError::TruncatedArp);
    ArpHeader arp;
    arp.hw_type = r.u16be();
    arp.proto_type = r.u16be();
    arp.hw_len = r.u8();
    arp.proto_len = r.u8();
    arp.opcode = r.u16be();
    r.bytes(arp.sender_mac.octets.data(), 6);
    arp.sender_ip.value = r.u32be();
    r.bytes(arp.target_mac.octets.data(), 6);
    arp.target_ip.value = r.u32be();
    out.arp = arp;
    return {.parsed = out, .error = std::nullopt};
  }

  std::uint8_t l4_proto = 0;
  std::size_t l4_len_available = 0;

  if (eth.ether_type == static_cast<std::uint16_t>(EtherType::Ipv4)) {
    if (r.remaining() < 20) return fail(ParseError::TruncatedIpv4);
    Ipv4Header ip;
    std::uint8_t vihl = r.u8();
    ip.version = vihl >> 4;
    ip.ihl = vihl & 0xF;
    if (ip.version != 4 || ip.ihl < 5) return fail(ParseError::BadIpv4Header);
    ip.tos = r.u8();
    ip.total_length = r.u16be();
    ip.identification = r.u16be();
    std::uint16_t frag = r.u16be();
    ip.dont_fragment = (frag & 0x4000) != 0;
    ip.more_fragments = (frag & 0x2000) != 0;
    ip.fragment_offset = frag & 0x1FFF;
    ip.ttl = r.u8();
    ip.protocol = r.u8();
    ip.header_checksum = r.u16be();
    ip.src.value = r.u32be();
    ip.dst.value = r.u32be();
    if (ip.header_len() > 20) {
      if (r.remaining() < ip.header_len() - 20) return fail(ParseError::TruncatedIpv4);
      r.skip(ip.header_len() - 20);  // IPv4 options are skipped, not decoded
    }
    if (ip.total_length < ip.header_len()) return fail(ParseError::BadIpv4Header);
    out.ipv4 = ip;
    out.l4_offset = r.offset();
    l4_proto = ip.protocol;
    // Trust the shorter of the IP total length and the captured bytes.
    std::size_t ip_payload = ip.total_length - ip.header_len();
    l4_len_available = std::min<std::size_t>(ip_payload, r.remaining());
  } else if (eth.ether_type == static_cast<std::uint16_t>(EtherType::Ipv6)) {
    if (r.remaining() < Ipv6Header::kSize) return fail(ParseError::TruncatedIpv6);
    Ipv6Header ip;
    std::uint32_t vtcfl = r.u32be();
    ip.version = static_cast<std::uint8_t>(vtcfl >> 28);
    ip.traffic_class = static_cast<std::uint8_t>(vtcfl >> 20);
    ip.flow_label = vtcfl & 0xFFFFF;
    ip.payload_length = r.u16be();
    ip.next_header = r.u8();
    ip.hop_limit = r.u8();
    r.bytes(ip.src.octets.data(), 16);
    r.bytes(ip.dst.octets.data(), 16);
    out.ipv6 = ip;
    out.l4_offset = r.offset();
    l4_proto = ip.next_header;
    l4_len_available = std::min<std::size_t>(ip.payload_length, r.remaining());
  } else {
    // Unknown L3 (LLC, vendor protocols): stop after Ethernet.
    return {.parsed = out, .error = std::nullopt};
  }

  switch (static_cast<IpProto>(l4_proto)) {
    case IpProto::Tcp: {
      if (l4_len_available < 20) return fail(ParseError::TruncatedTcp);
      TcpHeader tcp;
      tcp.src_port = r.u16be();
      tcp.dst_port = r.u16be();
      tcp.seq = r.u32be();
      tcp.ack = r.u32be();
      std::uint8_t off_rsvd = r.u8();
      tcp.data_offset = off_rsvd >> 4;
      if (tcp.data_offset < 5) return fail(ParseError::BadTcpHeader);
      tcp.set_flags_byte(r.u8());
      tcp.window = r.u16be();
      tcp.checksum = r.u16be();
      tcp.urgent_pointer = r.u16be();
      std::size_t options_len = tcp.header_len() - 20;
      if (options_len > 0) {
        if (l4_len_available < tcp.header_len()) return fail(ParseError::TruncatedTcp);
        if (!parse_tcp_options(r, options_len, tcp.options))
          return fail(ParseError::BadTcpHeader);
        r.seek(out.l4_offset + tcp.header_len());
      }
      out.tcp = tcp;
      out.payload_offset = out.l4_offset + tcp.header_len();
      out.payload_len = l4_len_available - tcp.header_len();
      break;
    }
    case IpProto::Udp: {
      if (l4_len_available < UdpHeader::kSize) return fail(ParseError::TruncatedUdp);
      UdpHeader udp;
      udp.src_port = r.u16be();
      udp.dst_port = r.u16be();
      udp.length = r.u16be();
      udp.checksum = r.u16be();
      out.udp = udp;
      out.payload_offset = out.l4_offset + UdpHeader::kSize;
      out.payload_len = l4_len_available - UdpHeader::kSize;
      break;
    }
    case IpProto::Icmp:
    case IpProto::Icmpv6: {
      if (l4_len_available < IcmpHeader::kSize) return fail(ParseError::TruncatedIcmp);
      IcmpHeader icmp;
      icmp.type = r.u8();
      icmp.code = r.u8();
      icmp.checksum = r.u16be();
      icmp.rest = r.u32be();
      out.icmp = icmp;
      out.payload_offset = out.l4_offset + IcmpHeader::kSize;
      out.payload_len = l4_len_available - IcmpHeader::kSize;
      break;
    }
    default:
      // IGMP and friends: L3 decoded, L4 opaque.
      break;
  }

  return {.parsed = out, .error = std::nullopt};
}

SpuriousCategory classify_spurious(const ParsedPacket& p) {
  if (p.arp) return SpuriousCategory::NetworkManagement;
  if (p.eth && !p.has_ip()) return SpuriousCategory::LinkManagement;  // LLC etc.
  if (p.icmp) return SpuriousCategory::NetworkManagement;
  std::uint8_t proto = p.ip_protocol();
  if (proto == static_cast<std::uint8_t>(IpProto::Igmp))
    return SpuriousCategory::NetworkManagement;

  auto port_is = [&](std::uint16_t port) {
    return (p.src_port() && *p.src_port() == port) ||
           (p.dst_port() && *p.dst_port() == port);
  };

  if (p.udp) {
    if (port_is(ports::kLlmnr) || port_is(ports::kNbns) || port_is(ports::kMdns) ||
        port_is(ports::kBtLsd))
      return SpuriousCategory::LinkLocal;
    if (port_is(ports::kDhcpServer) || port_is(ports::kDhcpClient) ||
        port_is(ports::kDhcpv6Client) || port_is(ports::kDhcpv6Server) ||
        port_is(ports::kSnmp))
      return SpuriousCategory::NetworkManagement;
    if (port_is(ports::kStun) || port_is(ports::kNatPmp)) return SpuriousCategory::Nat;
    if (port_is(ports::kDbLsp)) return SpuriousCategory::RouteManagement;
    if (port_is(ports::kSsdp)) return SpuriousCategory::ServiceManagement;
    if (port_is(ports::kRtcp)) return SpuriousCategory::RealTime;
    if (port_is(ports::kNtp)) return SpuriousCategory::NetworkTime;
    if (port_is(ports::kCoap)) return SpuriousCategory::IotManagement;
    if (port_is(ports::kQuake3)) return SpuriousCategory::Quake;
  }
  if (p.tcp) {
    if (port_is(ports::kBgp)) return SpuriousCategory::RouteManagement;
    if (port_is(ports::kVnc) || port_is(ports::kX11) || port_is(ports::kMsnms))
      return SpuriousCategory::RemoteAccess;
    if (port_is(ports::kMqtt)) return SpuriousCategory::IotManagement;
    if (port_is(ports::kBitcoin)) return SpuriousCategory::Others;
  }
  return SpuriousCategory::None;
}

}  // namespace sugar::net
