// Protocol numbers, well-known ports, and the spurious-protocol taxonomy
// from Table 13 of the paper. The taxonomy drives the cleaning filters in
// src/dataset and the spurious-traffic injector in src/trafficgen.
#pragma once

#include <cstdint>
#include <string>

namespace sugar::net {

enum class EtherType : std::uint16_t {
  Ipv4 = 0x0800,
  Arp = 0x0806,
  Ipv6 = 0x86DD,
  Llc = 0x0000,  // pseudo value: length field instead of type
};

enum class IpProto : std::uint8_t {
  Icmp = 1,
  Igmp = 2,
  Tcp = 6,
  Udp = 17,
  Icmpv6 = 58,
};

/// Well-known ports used by the parser's application-protocol heuristic and
/// by the synthetic trace generators.
namespace ports {
inline constexpr std::uint16_t kDns = 53;
inline constexpr std::uint16_t kDhcpServer = 67;
inline constexpr std::uint16_t kDhcpClient = 68;
inline constexpr std::uint16_t kHttp = 80;
inline constexpr std::uint16_t kNtp = 123;
inline constexpr std::uint16_t kNbns = 137;
inline constexpr std::uint16_t kSnmp = 161;
inline constexpr std::uint16_t kHttps = 443;
inline constexpr std::uint16_t kDhcpv6Client = 546;
inline constexpr std::uint16_t kDhcpv6Server = 547;
inline constexpr std::uint16_t kMdns = 5353;
inline constexpr std::uint16_t kLlmnr = 5355;
inline constexpr std::uint16_t kSsdp = 1900;
inline constexpr std::uint16_t kStun = 3478;
inline constexpr std::uint16_t kNatPmp = 5351;
inline constexpr std::uint16_t kBtLsd = 6771;   // BitTorrent local service discovery
inline constexpr std::uint16_t kDbLsp = 17500;  // Dropbox LAN sync
inline constexpr std::uint16_t kRtcp = 5005;
inline constexpr std::uint16_t kCoap = 5683;
inline constexpr std::uint16_t kMqtt = 1883;
inline constexpr std::uint16_t kBgp = 179;
inline constexpr std::uint16_t kVnc = 5900;
inline constexpr std::uint16_t kX11 = 6000;
inline constexpr std::uint16_t kMsnms = 1863;
inline constexpr std::uint16_t kBitcoin = 8333;
inline constexpr std::uint16_t kQuake3 = 27960;
}  // namespace ports

/// The spurious-protocol categories of Table 13. `None` marks traffic that
/// belongs to the classification task; everything else is removed by the
/// extraneous-protocol cleaning filter.
enum class SpuriousCategory : std::uint8_t {
  None = 0,
  LinkLocal,          // llmnr, nbns, mdns, lsd
  NetworkManagement,  // icmp, icmpv6, dhcp, dhcpv6, igmp, snmp, arp
  Nat,                // nat-pmp, stun
  RouteManagement,    // db-lsp, stp, bgp
  ServiceManagement,  // ssdp, lldp
  RealTime,           // rtcp
  NetworkTime,        // ntp
  LinkManagement,     // llc
  Security,           // ocsp-like
  RemoteAccess,       // vnc, x11, msnms
  IotManagement,      // coap, mqtt
  Quake,              // quake family
  Others,             // bitcoin, tds
  kCount,
};

std::string to_string(SpuriousCategory c);

}  // namespace sugar::net
