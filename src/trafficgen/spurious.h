// Generator for the extraneous ("spurious") traffic of Table 13: ARP, DHCP,
// LLMNR/NBNS/MDNS, ICMP, NTP, STUN, SSDP, ... These packets carry no class
// label; leaving them in a dataset corrupts the classification task, which
// is precisely why the cleaning pipeline must remove them.
#pragma once

#include <vector>

#include "net/packet.h"
#include "net/proto.h"
#include "trafficgen/rng.h"

namespace sugar::trafficgen {

/// One spurious packet of the given category at the given time.
net::Packet make_spurious_packet(net::SpuriousCategory category, Rng& rng,
                                 std::uint64_t ts_usec);

/// A category drawn with weights approximating Table 13's observed mix
/// (link-local and network management dominate).
net::SpuriousCategory random_spurious_category(Rng& rng);

/// Sprinkles `fraction` of spurious packets (relative to the final total)
/// uniformly through an existing, time-ordered trace. Returns the indices at
/// which spurious packets were inserted.
std::vector<std::size_t> inject_spurious(std::vector<net::Packet>& trace,
                                         double fraction, Rng& rng);

}  // namespace sugar::trafficgen
