// TCP and UDP bi-flow synthesizers. A TcpSessionBuilder produces a fully
// consistent connection: random ISNs, correct SEQ/ACK bookkeeping, the
// RFC 7323 timestamp option with per-endpoint clocks, MSS segmentation,
// delayed ACKs, and FIN teardown. The random ISNs and timestamp bases are
// exactly the "implicit flow identifiers" whose leakage across a per-packet
// split the paper exposes.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "net/serializer.h"
#include "trafficgen/rng.h"

namespace sugar::trafficgen {

struct Endpoint {
  net::MacAddress mac;
  net::Ipv4Address ip;
  std::uint16_t port = 0;
  std::uint8_t ttl = 64;
  std::uint8_t tos = 0;
  std::uint16_t window = 0xFFFF;
  /// TCP timestamp clock: random base, 1 kHz tick (per-endpoint implicit id).
  std::uint32_t ts_base = 0;
  /// IPv4 identification counter (per-host, monotonically increasing).
  std::uint16_t ip_id = 0;
};

struct TcpSessionParams {
  Endpoint client;
  Endpoint server;
  std::uint64_t start_usec = 0;
  std::uint16_t mss = 1460;
  bool use_timestamps = true;
  bool use_window_scale = true;
  bool use_sack = true;
  /// Probability that a data segment is followed by a pure ACK from the
  /// peer (delayed-ACK model).
  double ack_probability = 0.7;
};

class TcpSessionBuilder {
 public:
  TcpSessionBuilder(TcpSessionParams params, Rng& rng);

  /// Emits SYN, SYN-ACK, ACK. Must be called first (unless the caller wants
  /// a mid-stream capture, in which case skip it).
  void handshake();

  /// Advances the session clock.
  void wait_usec(std::uint64_t usec) { now_usec_ += usec; }

  /// Sends application bytes in one direction; the payload is segmented at
  /// MSS. Pure ACKs from the peer are interleaved per ack_probability.
  void send(bool from_client, std::vector<std::uint8_t> payload);

  /// Emits a pure ACK from one side.
  void send_ack(bool from_client);

  /// FIN/ACK teardown from the given side.
  void finish(bool client_first = true);

  /// RST abort from the given side.
  void abort(bool from_client);

  [[nodiscard]] std::uint64_t now_usec() const { return now_usec_; }
  [[nodiscard]] const std::vector<net::Packet>& packets() const { return packets_; }
  std::vector<net::Packet> take() { return std::move(packets_); }

  /// Indices (within packets()) of the 3 handshake packets; used by the
  /// CSTNET-style "strip handshake" post-processing.
  [[nodiscard]] const std::vector<std::size_t>& handshake_indices() const {
    return handshake_indices_;
  }

 private:
  struct Side {
    Endpoint ep;
    std::uint32_t seq = 0;     // next byte to send
    std::uint32_t peer_ack = 0;  // highest peer byte seen (our ACK field)
    std::uint32_t last_peer_tsval = 0;
  };

  void emit(bool from_client, bool syn, bool fin, bool rst, bool psh, bool ack,
            std::vector<std::uint8_t> payload);
  std::uint32_t tsval(const Side& s) const;

  TcpSessionParams params_;
  Rng& rng_;
  Side client_;
  Side server_;
  std::uint64_t now_usec_ = 0;
  std::vector<net::Packet> packets_;
  std::vector<std::size_t> handshake_indices_;
  bool handshake_done_ = false;
};

struct UdpSessionParams {
  Endpoint client;
  Endpoint server;
  std::uint64_t start_usec = 0;
};

/// Stateless-transport counterpart: emits datagrams with per-host IP-ID
/// progression.
class UdpSessionBuilder {
 public:
  UdpSessionBuilder(UdpSessionParams params, Rng& rng);

  void wait_usec(std::uint64_t usec) { now_usec_ += usec; }
  void send(bool from_client, std::vector<std::uint8_t> payload);

  [[nodiscard]] std::uint64_t now_usec() const { return now_usec_; }
  std::vector<net::Packet> take() { return std::move(packets_); }

 private:
  UdpSessionParams params_;
  Rng& rng_;
  std::uint64_t now_usec_ = 0;
  std::vector<net::Packet> packets_;
};

}  // namespace sugar::trafficgen
