#include "trafficgen/session.h"

namespace sugar::trafficgen {

TcpSessionBuilder::TcpSessionBuilder(TcpSessionParams params, Rng& rng)
    : params_(params), rng_(rng), now_usec_(params.start_usec) {
  client_.ep = params_.client;
  server_.ep = params_.server;
  // Random initial sequence numbers: the implicit flow id.
  client_.seq = rng_.u32();
  server_.seq = rng_.u32();
}

std::uint32_t TcpSessionBuilder::tsval(const Side& s) const {
  // 1 kHz timestamp clock per RFC 7323 suggestion.
  return s.ep.ts_base + static_cast<std::uint32_t>((now_usec_ - params_.start_usec) / 1000);
}

void TcpSessionBuilder::emit(bool from_client, bool syn, bool fin, bool rst, bool psh,
                             bool ack, std::vector<std::uint8_t> payload) {
  Side& self = from_client ? client_ : server_;
  Side& peer = from_client ? server_ : client_;

  net::FrameSpec spec;
  spec.eth.src = self.ep.mac;
  spec.eth.dst = peer.ep.mac;

  net::Ipv4Header ip;
  ip.src = self.ep.ip;
  ip.dst = peer.ep.ip;
  ip.ttl = self.ep.ttl;
  ip.tos = self.ep.tos;
  ip.identification = self.ep.ip_id++;
  ip.dont_fragment = true;
  spec.ipv4 = ip;

  net::TcpHeader tcp;
  tcp.src_port = self.ep.port;
  tcp.dst_port = peer.ep.port;
  tcp.seq = self.seq;
  tcp.ack = ack ? self.peer_ack : 0;
  tcp.syn = syn;
  tcp.fin = fin;
  tcp.rst = rst;
  tcp.psh = psh;
  tcp.ack_flag = ack;
  tcp.window = self.ep.window;
  if (syn) {
    tcp.options.mss = params_.mss;
    if (params_.use_window_scale) tcp.options.window_scale = 7;
    if (params_.use_sack) tcp.options.sack_permitted = true;
  }
  if (params_.use_timestamps)
    tcp.options.timestamp = {{tsval(self), self.last_peer_tsval}};
  spec.tcp = tcp;
  spec.payload = std::move(payload);

  std::size_t payload_len = spec.payload.size();
  packets_.push_back(net::build_packet(spec, now_usec_));

  // Advance sequence space: SYN and FIN each consume one sequence number.
  self.seq += static_cast<std::uint32_t>(payload_len) + (syn ? 1 : 0) + (fin ? 1 : 0);
  // The peer will acknowledge everything sent so far.
  peer.peer_ack = self.seq;
  peer.last_peer_tsval = params_.use_timestamps ? tsval(self) : 0;
}

void TcpSessionBuilder::handshake() {
  handshake_indices_.push_back(packets_.size());
  emit(true, /*syn=*/true, false, false, false, /*ack=*/false, {});
  wait_usec(static_cast<std::uint64_t>(rng_.exponential(20'000)) + 1'000);  // RTT/2

  handshake_indices_.push_back(packets_.size());
  emit(false, /*syn=*/true, false, false, false, /*ack=*/true, {});
  wait_usec(static_cast<std::uint64_t>(rng_.exponential(20'000)) + 1'000);

  handshake_indices_.push_back(packets_.size());
  emit(true, false, false, false, false, /*ack=*/true, {});
  handshake_done_ = true;
}

void TcpSessionBuilder::send(bool from_client, std::vector<std::uint8_t> payload) {
  // Segment at MSS.
  std::size_t offset = 0;
  std::size_t total = payload.size();
  do {
    std::size_t seg_len = std::min<std::size_t>(params_.mss, total - offset);
    std::vector<std::uint8_t> seg(payload.begin() + static_cast<std::ptrdiff_t>(offset),
                                  payload.begin() + static_cast<std::ptrdiff_t>(offset + seg_len));
    bool last = offset + seg_len >= total;
    emit(from_client, false, false, false, /*psh=*/last, /*ack=*/true, std::move(seg));
    offset += seg_len;
    wait_usec(static_cast<std::uint64_t>(rng_.exponential(300)) + 50);
    if (rng_.chance(params_.ack_probability)) {
      send_ack(!from_client);
      wait_usec(static_cast<std::uint64_t>(rng_.exponential(500)) + 50);
    }
  } while (offset < total);
}

void TcpSessionBuilder::send_ack(bool from_client) {
  emit(from_client, false, false, false, false, /*ack=*/true, {});
}

void TcpSessionBuilder::finish(bool client_first) {
  emit(client_first, false, /*fin=*/true, false, false, /*ack=*/true, {});
  wait_usec(static_cast<std::uint64_t>(rng_.exponential(10'000)) + 500);
  emit(!client_first, false, /*fin=*/true, false, false, /*ack=*/true, {});
  wait_usec(static_cast<std::uint64_t>(rng_.exponential(10'000)) + 500);
  emit(client_first, false, false, false, false, /*ack=*/true, {});
}

void TcpSessionBuilder::abort(bool from_client) {
  emit(from_client, false, false, /*rst=*/true, false, /*ack=*/true, {});
}

UdpSessionBuilder::UdpSessionBuilder(UdpSessionParams params, Rng& rng)
    : params_(params), rng_(rng), now_usec_(params.start_usec) {}

void UdpSessionBuilder::send(bool from_client, std::vector<std::uint8_t> payload) {
  Endpoint& self = from_client ? params_.client : params_.server;
  Endpoint& peer = from_client ? params_.server : params_.client;

  net::FrameSpec spec;
  spec.eth.src = self.mac;
  spec.eth.dst = peer.mac;

  net::Ipv4Header ip;
  ip.src = self.ip;
  ip.dst = peer.ip;
  ip.ttl = self.ttl;
  ip.tos = self.tos;
  ip.identification = self.ip_id++;
  ip.dont_fragment = true;
  spec.ipv4 = ip;

  net::UdpHeader udp;
  udp.src_port = self.port;
  udp.dst_port = peer.port;
  spec.udp = udp;
  spec.payload = std::move(payload);

  packets_.push_back(net::build_packet(spec, now_usec_));
}

}  // namespace sugar::trafficgen
