// Application-payload byte generators. The central design point, taken from
// the paper: encrypted payloads are generated as uniform random bytes, so
// *by construction* no classifier can extract class signal from them — any
// model that appears to is exploiting a shortcut elsewhere. Plaintext-style
// generators exist so the VPN-binary and USTC-binary tasks keep their real
// "easy" structure.
#pragma once

#include <cstdint>
#include <vector>

#include "trafficgen/rng.h"

namespace sugar::trafficgen {

/// Uniform random bytes — the model of robust encryption.
std::vector<std::uint8_t> encrypted_payload(Rng& rng, std::size_t n);

/// TLS 1.2/1.3-style application-data record framing around random bytes:
/// type 0x17, version 0x0303, big-endian length, then ciphertext. Multiple
/// records are emitted when n exceeds the record limit.
std::vector<std::uint8_t> tls_record_payload(Rng& rng, std::size_t n);

/// A TLS ClientHello-shaped handshake record, optionally carrying a
/// plaintext SNI host name (the field the public CSTNET-TLS1.3 dataset
/// removed).
std::vector<std::uint8_t> tls_client_hello(Rng& rng, const std::string& sni);

/// A TLS ServerHello-shaped handshake record.
std::vector<std::uint8_t> tls_server_hello(Rng& rng);

/// HTTP/1.1-style plaintext request (unencrypted traffic in ISCX/USTC).
std::vector<std::uint8_t> http_request_payload(Rng& rng, const std::string& host,
                                               std::size_t body_len);

/// HTTP/1.1-style plaintext response.
std::vector<std::uint8_t> http_response_payload(Rng& rng, std::size_t body_len);

/// OpenVPN-over-UDP-shaped payload: opcode/key-id byte, session id, then
/// ciphertext. Used for the VPN-encapsulated half of ISCX-VPN.
std::vector<std::uint8_t> openvpn_payload(Rng& rng, std::uint64_t session_id,
                                          std::size_t n);

/// Malware C2 beacon payload: short magic prefix + random blob; the magic
/// gives USTC-binary its (legitimately) easy separability.
std::vector<std::uint8_t> c2_beacon_payload(Rng& rng, std::uint32_t family_magic,
                                            std::size_t n);

/// DNS-query-shaped UDP payload (for spurious/background traffic).
std::vector<std::uint8_t> dns_query_payload(Rng& rng, const std::string& qname);

/// QUIC-shaped UDP datagram payload: a v1 long-header packet (Initial-style,
/// random connection ids, padded to at least 1200 bytes) when `long_header`,
/// otherwise a short-header 1-RTT packet. Ciphertext is random bytes.
std::vector<std::uint8_t> quic_payload(Rng& rng, std::size_t n, bool long_header);

/// DoH-style TLS payload: a run of small DNS-message-sized application-data
/// records (type 0x17) around random bytes, totalling at least n bytes.
std::vector<std::uint8_t> doh_payload(Rng& rng, std::size_t n);

}  // namespace sugar::trafficgen
