// Per-class application behaviour profiles. A profile captures everything
// that is *legitimately* class-correlated in a controlled-testbed dataset:
// server addressing, ports, transport, payload framing, message-size and
// session-shape distributions, and server-stack fingerprints (TTL, window,
// MSS). The encrypted payload bytes themselves are always random.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sugar::trafficgen {

enum class PayloadKind : std::uint8_t {
  TlsRecords,   // TLS application-data records around random bytes
  PlainHttp,    // plaintext HTTP request/response
  OpenVpn,      // OpenVPN/UDP encapsulation, fully random inner bytes
  C2Beacon,     // malware command-and-control beacons with a family magic
  RawEncrypted, // bare random bytes (e.g., proprietary VoIP crypto)
  QuicLike,     // QUIC long/short-header framing around random bytes (UDP/443)
  DohLike,      // DoH-style runs of small DNS-sized TLS records
};

/// ISCX-VPN service taxonomy (task VPN-service).
enum class Service : std::uint8_t {
  Web = 0,
  Voip,
  Streaming,
  Chat,
  Email,
  FileTransfer,
  kCount,
};

struct AppProfile {
  std::string name;
  int class_id = 0;    // finest-grained label within its dataset
  int service_id = 0;  // ISCX service / USTC "malicious" flag
  bool malicious = false;

  bool use_tcp = true;
  std::vector<std::uint16_t> server_ports;
  /// Class-specific server subnet a.b.c.0/24.
  std::uint8_t subnet_a = 0, subnet_b = 0, subnet_c = 0;
  /// Probability the server is instead drawn from the shared CDN pool —
  /// this is what keeps IP addresses an *imperfect* class feature.
  double cdn_prob = 0.2;

  /// Lognormal message sizes (bytes) per direction.
  double req_mu = 5.0, req_sigma = 0.6;
  double resp_mu = 6.5, resp_sigma = 0.9;
  /// Request/response rounds per flow (geometric mean).
  double mean_rounds = 3.0;
  /// Mean think time between rounds, milliseconds.
  double gap_ms = 200.0;

  /// Server-stack fingerprint. The observed server TTL is this initial
  /// value minus a per-flow random path length, so TTL is a fuzzy — not
  /// exact — class signal.
  std::uint8_t server_ttl = 64;
  std::uint16_t server_window = 0xFFFF;
  std::uint16_t mss = 1460;
  /// DSCP/ToS marking (some operators mark traffic classes).
  std::uint8_t tos = 0;

  /// Client-population fingerprint (constant within a capture family, so
  /// it carries no class signal; it *differs across families*, which is
  /// what makes cross-family transfer a real distribution shift).
  std::uint8_t client_subnet_a = 192, client_subnet_b = 168;
  std::uint8_t client_ttl_hi = 64, client_ttl_lo = 128;  // chance(0.7) -> hi
  std::uint16_t client_window = 0xFA00;
  /// MTU-derived bound on a single UDP datagram's payload.
  std::uint16_t udp_payload_cap = 1400;

  PayloadKind payload = PayloadKind::TlsRecords;
  std::uint32_t c2_magic = 0;
  /// Emit a ClientHello/ServerHello exchange before app data (TLS apps).
  bool tls_handshake = false;
  std::string sni;
};

/// The 16 ISCX-VPN applications with their service mapping. Flows are
/// generated in both plain and VPN-encapsulated variants by the dataset
/// builder.
std::vector<AppProfile> iscx_vpn_profiles();

/// The 20 USTC-TFC applications: 10 benign, 10 malware families.
std::vector<AppProfile> ustc_tfc_profiles();

/// 120 TLS 1.3 websites (CSTNET-TLS1.3-like): all TCP/443, varying server
/// subnets, page-size distributions and session shapes.
std::vector<AppProfile> cstn_tls120_profiles();

}  // namespace sugar::trafficgen
