#include "trafficgen/payload.h"

#include <algorithm>
#include <string>

namespace sugar::trafficgen {
namespace {

void append(std::vector<std::uint8_t>& out, std::string_view text) {
  out.insert(out.end(), text.begin(), text.end());
}

void append_u16be(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void append_random(std::vector<std::uint8_t>& out, Rng& rng, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out.push_back(rng.u8());
}

}  // namespace

std::vector<std::uint8_t> encrypted_payload(Rng& rng, std::size_t n) {
  return rng.bytes(n);
}

std::vector<std::uint8_t> tls_record_payload(Rng& rng, std::size_t n) {
  constexpr std::size_t kMaxRecord = 16384;
  std::vector<std::uint8_t> out;
  out.reserve(n + 5 * (n / kMaxRecord + 1));
  std::size_t left = n;
  while (left > 0) {
    std::size_t rec = std::min(left, kMaxRecord);
    out.push_back(0x17);  // application data
    out.push_back(0x03);
    out.push_back(0x03);
    append_u16be(out, static_cast<std::uint16_t>(rec));
    append_random(out, rng, rec);
    left -= rec;
  }
  return out;
}

std::vector<std::uint8_t> tls_client_hello(Rng& rng, const std::string& sni) {
  std::vector<std::uint8_t> body;
  body.push_back(0x01);  // handshake type: client hello
  // 3-byte handshake length patched below.
  body.insert(body.end(), {0, 0, 0});
  append_u16be(body, 0x0303);  // legacy version
  append_random(body, rng, 32);  // client random
  body.push_back(32);            // session id length
  append_random(body, rng, 32);
  append_u16be(body, 8);  // cipher suites length
  for (std::uint16_t cs : {0x1301, 0x1302, 0x1303, 0xC02F}) append_u16be(body, cs);
  body.push_back(1);  // compression methods
  body.push_back(0);
  // Extensions: optionally SNI.
  std::vector<std::uint8_t> ext;
  if (!sni.empty()) {
    append_u16be(ext, 0x0000);  // server_name
    append_u16be(ext, static_cast<std::uint16_t>(sni.size() + 5));
    append_u16be(ext, static_cast<std::uint16_t>(sni.size() + 3));
    ext.push_back(0);  // host_name
    append_u16be(ext, static_cast<std::uint16_t>(sni.size()));
    append(ext, sni);
  }
  append_u16be(ext, 0x002B);  // supported_versions
  append_u16be(ext, 3);
  ext.push_back(2);
  append_u16be(ext, 0x0304);
  append_u16be(body, static_cast<std::uint16_t>(ext.size()));
  body.insert(body.end(), ext.begin(), ext.end());
  std::size_t hs_len = body.size() - 4;
  body[1] = static_cast<std::uint8_t>(hs_len >> 16);
  body[2] = static_cast<std::uint8_t>(hs_len >> 8);
  body[3] = static_cast<std::uint8_t>(hs_len);

  std::vector<std::uint8_t> out;
  out.push_back(0x16);  // handshake record
  out.push_back(0x03);
  out.push_back(0x01);
  append_u16be(out, static_cast<std::uint16_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::vector<std::uint8_t> tls_server_hello(Rng& rng) {
  std::vector<std::uint8_t> body;
  body.push_back(0x02);  // server hello
  body.insert(body.end(), {0, 0, 0});
  append_u16be(body, 0x0303);
  append_random(body, rng, 32);
  body.push_back(32);
  append_random(body, rng, 32);
  append_u16be(body, 0x1301);  // chosen cipher
  body.push_back(0);           // compression
  append_u16be(body, 6);       // extensions length
  append_u16be(body, 0x002B);
  append_u16be(body, 2);
  append_u16be(body, 0x0304);
  std::size_t hs_len = body.size() - 4;
  body[1] = static_cast<std::uint8_t>(hs_len >> 16);
  body[2] = static_cast<std::uint8_t>(hs_len >> 8);
  body[3] = static_cast<std::uint8_t>(hs_len);

  std::vector<std::uint8_t> out;
  out.push_back(0x16);
  out.push_back(0x03);
  out.push_back(0x03);
  append_u16be(out, static_cast<std::uint16_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::vector<std::uint8_t> http_request_payload(Rng& rng, const std::string& host,
                                               std::size_t body_len) {
  static const char* kPaths[] = {"/", "/index.html", "/api/v1/sync", "/static/app.js",
                                 "/images/logo.png"};
  static const char* kAgents[] = {"Mozilla/5.0", "curl/7.88", "AppClient/2.3"};
  std::vector<std::uint8_t> out;
  append(out, body_len > 0 ? "POST " : "GET ");
  append(out, kPaths[rng.uniform_int(0, 4)]);
  append(out, " HTTP/1.1\r\nHost: ");
  append(out, host);
  append(out, "\r\nUser-Agent: ");
  append(out, kAgents[rng.uniform_int(0, 2)]);
  append(out, "\r\nAccept: */*\r\n");
  if (body_len > 0) {
    append(out, "Content-Length: " + std::to_string(body_len) + "\r\n\r\n");
    append_random(out, rng, body_len);
  } else {
    append(out, "\r\n");
  }
  return out;
}

std::vector<std::uint8_t> http_response_payload(Rng& rng, std::size_t body_len) {
  std::vector<std::uint8_t> out;
  append(out, "HTTP/1.1 200 OK\r\nServer: nginx/1.22\r\nContent-Type: text/html\r\n");
  append(out, "Content-Length: " + std::to_string(body_len) + "\r\n\r\n");
  // Body: compressible ASCII-ish filler rather than pure random, so
  // plaintext traffic is byte-wise distinguishable from ciphertext.
  for (std::size_t i = 0; i < body_len; ++i)
    out.push_back(static_cast<std::uint8_t>(' ' + rng.uniform_int(0, 94)));
  return out;
}

std::vector<std::uint8_t> openvpn_payload(Rng& rng, std::uint64_t session_id,
                                          std::size_t n) {
  std::vector<std::uint8_t> out;
  out.push_back(0x30);  // P_DATA_V2 opcode/key id
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(session_id >> (8 * (7 - i))));
  append_random(out, rng, n);
  return out;
}

std::vector<std::uint8_t> c2_beacon_payload(Rng& rng, std::uint32_t family_magic,
                                            std::size_t n) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(family_magic >> 24));
  out.push_back(static_cast<std::uint8_t>(family_magic >> 16));
  out.push_back(static_cast<std::uint8_t>(family_magic >> 8));
  out.push_back(static_cast<std::uint8_t>(family_magic));
  append_random(out, rng, n > 4 ? n - 4 : 0);
  return out;
}

std::vector<std::uint8_t> dns_query_payload(Rng& rng, const std::string& qname) {
  std::vector<std::uint8_t> out;
  append_u16be(out, rng.u16());  // transaction id
  append_u16be(out, 0x0100);     // standard query, RD
  append_u16be(out, 1);          // QDCOUNT
  append_u16be(out, 0);
  append_u16be(out, 0);
  append_u16be(out, 0);
  // QNAME label encoding.
  std::size_t start = 0;
  while (start <= qname.size()) {
    std::size_t dot = qname.find('.', start);
    std::size_t end = dot == std::string::npos ? qname.size() : dot;
    out.push_back(static_cast<std::uint8_t>(end - start));
    for (std::size_t i = start; i < end; ++i)
      out.push_back(static_cast<std::uint8_t>(qname[i]));
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  out.push_back(0);
  append_u16be(out, 1);  // QTYPE A
  append_u16be(out, 1);  // QCLASS IN
  return out;
}

std::vector<std::uint8_t> quic_payload(Rng& rng, std::size_t n, bool long_header) {
  std::vector<std::uint8_t> out;
  if (long_header) {
    // v1 long header, Initial-style: fixed bit + long-header bit, random
    // reserved/packet-number-length bits.
    out.push_back(static_cast<std::uint8_t>(0xC0 | (rng.u8() & 0x0F)));
    out.insert(out.end(), {0x00, 0x00, 0x00, 0x01});  // version 1
    out.push_back(8);  // DCID length
    append_random(out, rng, 8);
    out.push_back(8);  // SCID length
    append_random(out, rng, 8);
    out.push_back(0);  // token length varint: no token
    std::size_t target = std::max<std::size_t>(n, 1200);
    std::size_t body = std::min<std::size_t>(target - out.size() - 2, 16383);
    // 2-byte varint length (prefix 0b01) covering packet number + payload.
    out.push_back(static_cast<std::uint8_t>(0x40 | (body >> 8)));
    out.push_back(static_cast<std::uint8_t>(body));
    append_random(out, rng, body);
  } else {
    // Short header 1-RTT packet: fixed bit + random spin/key-phase bits,
    // then an 8-byte DCID and ciphertext.
    out.push_back(static_cast<std::uint8_t>(0x40 | (rng.u8() & 0x3F)));
    append_random(out, rng, 8);
    append_random(out, rng, n > 9 ? n - 9 : 1);
  }
  return out;
}

std::vector<std::uint8_t> doh_payload(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> out;
  std::size_t left = std::max<std::size_t>(n, 20);
  while (left > 0) {
    // DNS messages are tens-to-low-hundreds of bytes; each rides in its
    // own application-data record, giving DoH its many-small-records shape.
    std::size_t rec = std::min<std::size_t>(
        left, 30 + static_cast<std::size_t>(rng.uniform_int(0, 110)));
    out.push_back(0x17);
    out.push_back(0x03);
    out.push_back(0x03);
    append_u16be(out, static_cast<std::uint16_t>(rec));
    append_random(out, rng, rec);
    left -= rec;
  }
  return out;
}

}  // namespace sugar::trafficgen
