// Scenario-diversity knobs layered over the base dataset builders: epoch-
// parameterized distribution drift, a second capture "family" with different
// addressing/MTU/stack fingerprints, QUIC/UDP-encrypted and DoH-shaped flow
// reshaping, and a heavy class-imbalance knob. A default-constructed
// TraceVariant is the identity: generation draws the exact same random
// stream and produces byte-identical traces, so every existing digest and
// golden artifact is unaffected.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trafficgen/profiles.h"

namespace sugar::trafficgen {

/// Per-epoch shifts applied to the class profiles' header statistics. The
/// steps compound: epoch N applies each shift N times, so the TTL/window/
/// MSS/IAT distributions move monotonically over simulated time.
struct DriftSpec {
  double ttl_step = -6.0;      // additive on server_ttl per epoch
  double window_scale = 1.18;  // multiplicative on server_window per epoch
  double mss_step = -24.0;     // additive on mss per epoch
  double gap_scale = 1.35;     // multiplicative on gap_ms (IAT) per epoch
  double resp_mu_step = 0.12;  // additive on resp_mu (lognormal) per epoch
};

/// A parameterized variant of one of the synthetic datasets. Family 0 is
/// the native testbed; family 1 re-hosts the same applications on a second
/// capture network (different server subnets, a PPPoE-sized MTU, a swapped
/// client/server OS mix, operator DSCP marking). Drift epoch 0 is "capture
/// time"; epoch N shifts every profile's header statistics N steps.
struct TraceVariant {
  int drift_epoch = 0;
  DriftSpec drift;
  int family = 0;               // 0 = native testbed, 1 = re-hosted capture
  double quic_fraction = 0.0;   // share of flows carried over QUIC-like UDP/443
  double doh_fraction = 0.0;    // share of flows reshaped as DoH resolver sessions
  double imbalance_gamma = 1.0; // class k keeps ~gamma^k of its flows

  /// True iff this variant is the identity transform (legacy generation).
  [[nodiscard]] bool is_default() const;

  /// Canonical short string for cache/journal keys; "default" for the
  /// identity so default fingerprints are stable across versions.
  [[nodiscard]] std::string tag() const;
};

inline bool operator==(const TraceVariant& a, const TraceVariant& b) {
  return a.tag() == b.tag();
}

/// Profile after `epoch` compounded drift steps (identity at epoch <= 0).
AppProfile drift_profile(const AppProfile& base, const DriftSpec& drift, int epoch);

/// Profile re-hosted on the given family's capture network (identity at
/// family 0). Deterministic pure function of the base profile.
AppProfile family_profile(const AppProfile& base, int family);

/// Profile reshaped as a QUIC-like UDP/443 flow: same session dynamics,
/// UDP transport with long/short-header QUIC framing instead of TLS/TCP.
AppProfile quic_profile(const AppProfile& base);

/// Profile reshaped as a DoH-style resolver session: TCP/443 to a shared
/// resolver pool, many small DNS-sized TLS records, more rounds.
AppProfile doh_profile(const AppProfile& base);

/// Applies family + drift to every profile (identity for the default
/// variant — the vector is returned untouched).
std::vector<AppProfile> apply_variant(std::vector<AppProfile> profiles,
                                      const TraceVariant& v);

/// Flows generated for class `class_id` under the imbalance knob:
/// max(1, round(base * gamma^class_id)); `base` unchanged at gamma 1.
std::size_t variant_class_flows(std::size_t base, int class_id, double gamma);

}  // namespace sugar::trafficgen
