// Dataset builders emulating the three public benchmarks used by the paper:
// ISCX-VPN, USTC-TFC and CSTNET-TLS1.3, plus the heterogeneous backbone
// trace used for pre-training (the paper's MAWI/UNSW/campus mix). Every
// builder returns a time-ordered packet trace with ground-truth labels.
#pragma once

#include <string>
#include <vector>

#include "net/packet.h"
#include "trafficgen/profiles.h"
#include "trafficgen/rng.h"
#include "trafficgen/variant.h"

namespace sugar::trafficgen {

/// Ground-truth annotation for one packet. Spurious (extraneous-protocol)
/// packets carry -1 everywhere.
struct PacketLabel {
  int cls = -1;      // finest class (app id / site id)
  int service = -1;  // ISCX service id; -1 elsewhere
  int binary = -1;   // ISCX: VPN?; USTC: malware?; -1 for CSTN
};

struct GeneratedTrace {
  std::string dataset_name;
  std::vector<net::Packet> packets;
  std::vector<PacketLabel> labels;   // parallel to packets
  std::vector<int> flow_of;          // generator-truth flow id; -1 spurious
  std::vector<std::string> class_names;
  std::vector<std::string> service_names;  // ISCX only

  [[nodiscard]] std::size_t size() const { return packets.size(); }
  [[nodiscard]] std::size_t num_flows() const;
  [[nodiscard]] std::size_t num_spurious() const;
};

struct GenOptions {
  std::uint64_t seed = 1;
  std::size_t flows_per_class = 20;
  /// Fraction of the final trace made of Table-13 spurious packets
  /// (ISCX ~5 %, USTC ~10 %, CSTN 0 %).
  double spurious_fraction = 0.0;
  /// ISCX: fraction of each app's flows captured through the VPN tunnel.
  double vpn_fraction = 0.5;
  /// CSTN public-dataset behaviour: drop the TCP three-way handshake and
  /// the initial ClientHello, leaving an everything-encrypted trace.
  bool strip_tls_handshake = false;
  /// Scenario-diversity knobs (drift epoch, capture family, QUIC/DoH
  /// reshaping, imbalance). The default is the identity transform:
  /// generation is byte-identical to a pre-variant build.
  TraceVariant variant;
};

GeneratedTrace generate_iscx_vpn(const GenOptions& opts);
GeneratedTrace generate_ustc_tfc(const GenOptions& opts);
GeneratedTrace generate_cstn_tls120(const GenOptions& opts);

/// Pre-training mix: flows sampled across all profiles of all datasets plus
/// spurious/background packets. Unlabelled by design (labels are all -1)
/// to mirror self-supervised pre-training data.
GeneratedTrace generate_backbone(std::uint64_t seed, std::size_t n_flows);

/// Generates the packets of a single flow for a profile (exposed for tests
/// and micro-benchmarks). `vpn` wraps the flow in OpenVPN/UDP encapsulation.
std::vector<net::Packet> generate_flow(const AppProfile& profile, bool vpn, Rng& rng,
                                       std::uint64_t start_usec,
                                       std::vector<std::size_t>* strip_indices = nullptr);

}  // namespace sugar::trafficgen
