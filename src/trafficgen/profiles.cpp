#include "trafficgen/profiles.h"

namespace sugar::trafficgen {
namespace {

AppProfile app(std::string name, int id, Service svc, bool tcp,
               std::vector<std::uint16_t> ports, std::uint8_t sub_a, std::uint8_t sub_b,
               double req_mu, double resp_mu, double rounds, double gap_ms,
               PayloadKind payload) {
  AppProfile p;
  p.name = std::move(name);
  p.class_id = id;
  p.service_id = static_cast<int>(svc);
  p.use_tcp = tcp;
  p.server_ports = std::move(ports);
  p.subnet_a = sub_a;
  p.subnet_b = sub_b;
  p.subnet_c = static_cast<std::uint8_t>(id * 7 + 1);
  p.req_mu = req_mu;
  p.resp_mu = resp_mu;
  p.mean_rounds = rounds;
  p.gap_ms = gap_ms;
  p.payload = payload;
  // Server stack fingerprints vary by operator, weakly class-correlated.
  p.server_ttl = (id % 3 == 0) ? 64 : (id % 3 == 1) ? 128 : 255;
  p.server_window = static_cast<std::uint16_t>(0x2000 + (id % 8) * 0x1800);
  p.mss = (id % 4 == 0) ? 1380 : 1460;
  return p;
}

}  // namespace

std::vector<AppProfile> iscx_vpn_profiles() {
  using S = Service;
  using PK = PayloadKind;
  std::vector<AppProfile> v;
  // name, id, service, tcp?, ports, subnet, req_mu, resp_mu, rounds, gap, payload
  v.push_back(app("aim-chat", 0, S::Chat, true, {443}, 64, 12, 4.2, 4.6, 6, 1500, PK::TlsRecords));
  v.push_back(app("email", 1, S::Email, true, {465, 587}, 17, 22, 5.8, 5.4, 2, 800, PK::TlsRecords));
  v.push_back(app("facebook", 2, S::Web, true, {443}, 31, 13, 5.0, 7.2, 4, 400, PK::TlsRecords));
  v.push_back(app("ftps", 3, S::FileTransfer, true, {990}, 92, 5, 5.2, 9.3, 3, 150, PK::TlsRecords));
  v.push_back(app("gmail", 4, S::Email, true, {443}, 74, 125, 5.5, 6.4, 3, 900, PK::TlsRecords));
  v.push_back(app("hangouts", 5, S::Voip, false, {19302}, 74, 126, 5.1, 5.1, 30, 20, PK::RawEncrypted));
  v.push_back(app("icq-chat", 6, S::Chat, true, {443}, 94, 100, 4.0, 4.4, 7, 1800, PK::TlsRecords));
  v.push_back(app("netflix", 7, S::Streaming, true, {443}, 45, 57, 4.8, 9.8, 8, 250, PK::TlsRecords));
  v.push_back(app("scp", 8, S::FileTransfer, true, {22}, 130, 89, 5.0, 9.0, 3, 100, PK::RawEncrypted));
  v.push_back(app("sftp", 9, S::FileTransfer, true, {22}, 130, 90, 5.3, 9.1, 3, 120, PK::RawEncrypted));
  v.push_back(app("skype", 10, S::Voip, false, {3479}, 13, 107, 5.0, 5.0, 40, 20, PK::RawEncrypted));
  v.push_back(app("spotify", 11, S::Streaming, true, {4070, 443}, 35, 186, 4.6, 8.8, 6, 300, PK::TlsRecords));
  v.push_back(app("torrent", 12, S::FileTransfer, false, {6881}, 98, 76, 6.2, 8.5, 10, 60, PK::RawEncrypted));
  v.push_back(app("vimeo", 13, S::Streaming, true, {443}, 151, 101, 4.9, 9.5, 7, 280, PK::TlsRecords));
  v.push_back(app("voipbuster", 14, S::Voip, false, {5060}, 77, 72, 5.0, 5.0, 35, 20, PK::RawEncrypted));
  v.push_back(app("youtube", 15, S::Streaming, true, {443}, 208, 65, 4.7, 10.0, 9, 220, PK::TlsRecords));
  for (auto& p : v) {
    p.tls_handshake = p.payload == PayloadKind::TlsRecords;
    p.sni = p.name + ".example.com";
  }
  return v;
}

std::vector<AppProfile> ustc_tfc_profiles() {
  using S = Service;
  using PK = PayloadKind;
  std::vector<AppProfile> v;
  // --- 10 benign applications.
  v.push_back(app("bittorrent", 0, S::FileTransfer, false, {6881}, 98, 30, 6.0, 8.4, 12, 80, PK::RawEncrypted));
  v.push_back(app("facetime", 1, S::Voip, false, {16402}, 17, 110, 5.2, 5.2, 40, 20, PK::RawEncrypted));
  v.push_back(app("ftp", 2, S::FileTransfer, true, {21}, 92, 6, 4.1, 8.8, 4, 200, PK::PlainHttp));
  v.push_back(app("gmail", 3, S::Email, true, {443}, 74, 125, 5.5, 6.4, 3, 900, PK::TlsRecords));
  v.push_back(app("mysql", 4, S::Web, true, {3306}, 10, 20, 4.8, 6.0, 8, 120, PK::RawEncrypted));
  v.push_back(app("outlook", 5, S::Email, true, {443}, 40, 96, 5.6, 6.2, 3, 1000, PK::TlsRecords));
  v.push_back(app("skype", 6, S::Voip, false, {3479}, 13, 107, 5.0, 5.0, 40, 20, PK::RawEncrypted));
  v.push_back(app("smb", 7, S::FileTransfer, true, {445}, 192, 168, 5.4, 8.0, 6, 90, PK::RawEncrypted));
  v.push_back(app("weibo", 8, S::Web, true, {443}, 114, 134, 5.1, 7.0, 5, 350, PK::TlsRecords));
  v.push_back(app("wow", 9, S::Web, true, {3724}, 12, 129, 4.4, 5.6, 20, 150, PK::RawEncrypted));
  // --- 10 malware families: characteristic C2 beacons, odd ports, regular
  // timing — the structure that makes USTC-binary (legitimately) easy.
  struct Mal {
    const char* name;
    std::uint16_t port;
    std::uint32_t magic;
    double beat_ms;
  };
  const Mal mal[] = {
      {"cridex", 8080, 0xC41D3201u, 5000},  {"geodo", 8443, 0x6E0D0901u, 4000},
      {"htbot", 80, 0x48B07A01u, 3000},     {"miuref", 443, 0x3141F701u, 6000},
      {"neris", 6667, 0x4E331501u, 2500},   {"nsis-ay", 9001, 0x5A15AF01u, 7000},
      {"shifu", 443, 0x5F1FA201u, 4500},    {"tinba", 80, 0x7B1A2D01u, 3500},
      {"virut", 65500, 0x61C07901u, 2000},  {"zeus", 8081, 0x2E052201u, 5500},
  };
  for (int i = 0; i < 10; ++i) {
    auto p = app(mal[i].name, 10 + i, S::Web, true, {mal[i].port},
                 static_cast<std::uint8_t>(185 + i % 4),
                 static_cast<std::uint8_t>(20 + i * 11), 4.3, 4.9, 5, mal[i].beat_ms,
                 PK::C2Beacon);
    p.malicious = true;
    p.c2_magic = mal[i].magic;
    // Malware VMs in the USTC testbed share an OS image: constant fingerprint.
    p.server_ttl = 128;
    p.server_window = 0x4000;
    v.push_back(std::move(p));
  }
  return v;
}

std::vector<AppProfile> cstn_tls120_profiles() {
  std::vector<AppProfile> v;
  v.reserve(120);
  for (int i = 0; i < 120; ++i) {
    AppProfile p;
    p.name = "site" + std::to_string(i);
    p.class_id = i;
    p.service_id = 0;
    p.use_tcp = true;
    p.server_ports = {443};
    // Sites are spread over hosting providers; ~1/3 sit behind shared CDNs.
    p.subnet_a = static_cast<std::uint8_t>(101 + (i * 13) % 100);
    p.subnet_b = static_cast<std::uint8_t>((i * 37) % 256);
    p.subnet_c = static_cast<std::uint8_t>((i * 91) % 256);
    p.cdn_prob = 0.12;
    // Page-weight and session-shape distributions are site-specific but
    // overlapping: the header-only signal is real yet far from perfect, as
    // in the paper (shallow w/o IP lands mid-range, not near-perfect).
    p.req_mu = 4.2 + 0.040 * (i % 40);
    p.req_sigma = 0.45;
    p.resp_mu = 5.6 + 0.030 * i;
    p.resp_sigma = 0.60;
    p.mean_rounds = 2.0 + (i % 7) * 0.8;
    p.gap_ms = 120 + (i % 11) * 40;
    p.server_ttl = (i % 4 == 0) ? 128 : 64;
    p.server_window = static_cast<std::uint16_t>(0x2000 + (i % 32) * 0x600);
    p.mss = (i % 5 == 0) ? 1380 : 1460;
    p.tos = (i % 3 == 0) ? static_cast<std::uint8_t>((i % 8) * 4) : 0;
    p.payload = PayloadKind::TlsRecords;
    p.tls_handshake = true;
    p.sni = p.name + ".example.org";
    v.push_back(std::move(p));
  }
  return v;
}

}  // namespace sugar::trafficgen
