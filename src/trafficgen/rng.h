// Deterministic randomness utilities for the trace generators. Every
// generator takes an explicit seed; nothing in the library touches global
// RNG state, so traces are reproducible bit-for-bit across runs.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace sugar::trafficgen {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  std::mt19937_64& engine() { return engine_; }

  std::uint64_t u64() { return engine_(); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(engine_()); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(engine_()); }
  std::uint8_t u8() { return static_cast<std::uint8_t>(engine_()); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }

  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }

  bool chance(double p) { return uniform() < p; }

  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>{mu, sigma}(engine_);
  }

  double exponential(double mean) {
    return mean <= 0 ? 0 : std::exponential_distribution<double>{1.0 / mean}(engine_);
  }

  /// Geometric count >= 1 with the given mean.
  std::size_t geometric_count(double mean) {
    if (mean <= 1.0) return 1;
    double p = 1.0 / mean;
    return 1 + static_cast<std::size_t>(
                   std::geometric_distribution<int>{p}(engine_));
  }

  /// Index drawn from unnormalized weights.
  std::size_t weighted_choice(const std::vector<double>& weights) {
    return std::discrete_distribution<std::size_t>{weights.begin(), weights.end()}(
        engine_);
  }

  /// Random bytes (the "encrypted payload": carries no signal by
  /// construction).
  std::vector<std::uint8_t> bytes(std::size_t n) {
    std::vector<std::uint8_t> out(n);
    for (auto& b : out) b = u8();
    return out;
  }

  /// Child RNG with an independent stream derived from this one plus a salt;
  /// used to give each flow its own deterministic stream.
  Rng fork(std::uint64_t salt) {
    std::uint64_t s = u64() ^ (salt * 0x9E3779B97F4A7C15ull);
    return Rng{s};
  }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sugar::trafficgen
