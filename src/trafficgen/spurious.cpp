#include "trafficgen/spurious.h"

#include <algorithm>

#include "net/serializer.h"
#include "trafficgen/payload.h"

namespace sugar::trafficgen {
namespace {

using net::SpuriousCategory;

net::MacAddress random_mac(Rng& rng) {
  net::MacAddress m;
  for (auto& o : m.octets) o = rng.u8();
  m.octets[0] &= 0xFE;  // unicast
  return m;
}

net::Ipv4Address lan_ip(Rng& rng) {
  return net::Ipv4Address::from_octets(192, 168, static_cast<std::uint8_t>(rng.uniform_int(0, 3)),
                                       static_cast<std::uint8_t>(rng.uniform_int(2, 254)));
}

net::Packet udp_spurious(Rng& rng, std::uint64_t ts, std::uint16_t src_port,
                         std::uint16_t dst_port, net::Ipv4Address dst,
                         std::vector<std::uint8_t> payload, bool multicast_mac = false) {
  net::FrameSpec spec;
  spec.eth.src = random_mac(rng);
  spec.eth.dst = multicast_mac ? net::MacAddress{{0x01, 0x00, 0x5E, 0, 0, 1}}
                               : random_mac(rng);
  net::Ipv4Header ip;
  ip.src = lan_ip(rng);
  ip.dst = dst;
  ip.ttl = multicast_mac ? 1 : 64;
  ip.identification = rng.u16();
  spec.ipv4 = ip;
  net::UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  spec.udp = udp;
  spec.payload = std::move(payload);
  return net::build_packet(spec, ts);
}

}  // namespace

net::SpuriousCategory random_spurious_category(Rng& rng) {
  // Weights follow the relative magnitudes in Table 13 (ISCX column):
  // link-local >> network management > nat >> the long tail.
  static const std::vector<double> kWeights = {
      0,     // None (never)
      55.0,  // LinkLocal
      27.0,  // NetworkManagement
      12.0,  // Nat
      1.5,   // RouteManagement
      0.6,   // ServiceManagement
      0.2,   // RealTime
      0.2,   // NetworkTime
      0.1,   // LinkManagement
      0.1,   // Security
      0.1,   // RemoteAccess
      0.1,   // IotManagement
      0.05,  // Quake
      0.05,  // Others
  };
  return static_cast<SpuriousCategory>(rng.weighted_choice(kWeights));
}

net::Packet make_spurious_packet(SpuriousCategory category, Rng& rng,
                                 std::uint64_t ts) {
  switch (category) {
    case SpuriousCategory::LinkLocal: {
      int pick = static_cast<int>(rng.uniform_int(0, 2));
      std::string name = "host-" + std::to_string(rng.uniform_int(1, 99)) + ".local";
      if (pick == 0)
        return udp_spurious(rng, ts, 5355, net::ports::kLlmnr,
                            net::Ipv4Address::from_octets(224, 0, 0, 252),
                            dns_query_payload(rng, name), true);
      if (pick == 1)
        return udp_spurious(rng, ts, 137, net::ports::kNbns,
                            net::Ipv4Address::from_octets(192, 168, 0, 255),
                            rng.bytes(50));
      return udp_spurious(rng, ts, 5353, net::ports::kMdns,
                          net::Ipv4Address::from_octets(224, 0, 0, 251),
                          dns_query_payload(rng, name), true);
    }
    case SpuriousCategory::NetworkManagement: {
      int pick = static_cast<int>(rng.uniform_int(0, 2));
      if (pick == 0) {  // ARP request
        net::FrameSpec spec;
        spec.eth.src = random_mac(rng);
        spec.eth.dst = net::MacAddress::broadcast();
        net::ArpHeader arp;
        arp.opcode = 1;
        arp.sender_mac = spec.eth.src;
        arp.sender_ip = lan_ip(rng);
        arp.target_ip = lan_ip(rng);
        spec.arp = arp;
        return net::build_packet(spec, ts);
      }
      if (pick == 1) {  // DHCP discover
        return udp_spurious(rng, ts, net::ports::kDhcpClient, net::ports::kDhcpServer,
                            net::Ipv4Address::from_octets(255, 255, 255, 255),
                            rng.bytes(240));
      }
      // ICMP echo request
      net::FrameSpec spec;
      spec.eth.src = random_mac(rng);
      spec.eth.dst = random_mac(rng);
      net::Ipv4Header ip;
      ip.src = lan_ip(rng);
      ip.dst = lan_ip(rng);
      ip.identification = rng.u16();
      spec.ipv4 = ip;
      net::IcmpHeader icmp;
      icmp.type = 8;
      icmp.rest = rng.u32();
      spec.icmp = icmp;
      spec.payload = rng.bytes(32);
      return net::build_packet(spec, ts);
    }
    case SpuriousCategory::Nat:
      return udp_spurious(rng, ts, static_cast<std::uint16_t>(rng.uniform_int(40000, 65000)),
                          net::ports::kStun,
                          net::Ipv4Address::from_octets(74, 125, 250, 129),
                          rng.bytes(20));
    case SpuriousCategory::RouteManagement:
      return udp_spurious(rng, ts, net::ports::kDbLsp, net::ports::kDbLsp,
                          net::Ipv4Address::from_octets(192, 168, 0, 255),
                          rng.bytes(120));
    case SpuriousCategory::ServiceManagement:
      return udp_spurious(rng, ts, static_cast<std::uint16_t>(rng.uniform_int(40000, 65000)),
                          net::ports::kSsdp,
                          net::Ipv4Address::from_octets(239, 255, 255, 250),
                          http_request_payload(rng, "239.255.255.250:1900", 0), true);
    case SpuriousCategory::RealTime:
      return udp_spurious(rng, ts, net::ports::kRtcp, net::ports::kRtcp, lan_ip(rng),
                          rng.bytes(64));
    case SpuriousCategory::NetworkTime:
      return udp_spurious(rng, ts, net::ports::kNtp, net::ports::kNtp,
                          net::Ipv4Address::from_octets(129, 6, 15, 28), rng.bytes(48));
    case SpuriousCategory::LinkManagement: {
      // LLC frame: EtherType field carries a length (< 0x0600).
      net::Packet pkt;
      pkt.ts_usec = ts;
      auto src = random_mac(rng);
      pkt.data.insert(pkt.data.end(), {0x01, 0x80, 0xC2, 0x00, 0x00, 0x00});
      pkt.data.insert(pkt.data.end(), src.octets.begin(), src.octets.end());
      pkt.data.push_back(0x00);
      pkt.data.push_back(0x26);  // length 38
      auto body = rng.bytes(38);
      pkt.data.insert(pkt.data.end(), body.begin(), body.end());
      return pkt;
    }
    case SpuriousCategory::Security:
      return udp_spurious(rng, ts, static_cast<std::uint16_t>(rng.uniform_int(40000, 65000)),
                          19 /*chargen*/, lan_ip(rng), rng.bytes(72));
    case SpuriousCategory::RemoteAccess: {
      // VNC-ish TCP packet.
      net::FrameSpec spec;
      spec.eth.src = random_mac(rng);
      spec.eth.dst = random_mac(rng);
      net::Ipv4Header ip;
      ip.src = lan_ip(rng);
      ip.dst = lan_ip(rng);
      ip.identification = rng.u16();
      spec.ipv4 = ip;
      net::TcpHeader tcp;
      tcp.src_port = static_cast<std::uint16_t>(rng.uniform_int(40000, 65000));
      tcp.dst_port = net::ports::kVnc;
      tcp.seq = rng.u32();
      tcp.ack = rng.u32();
      tcp.ack_flag = true;
      tcp.psh = true;
      tcp.window = 0xFFFF;
      spec.tcp = tcp;
      spec.payload = rng.bytes(24);
      return net::build_packet(spec, ts);
    }
    case SpuriousCategory::IotManagement:
      return udp_spurious(rng, ts, static_cast<std::uint16_t>(rng.uniform_int(40000, 65000)),
                          net::ports::kCoap, lan_ip(rng), rng.bytes(16));
    case SpuriousCategory::Quake:
      return udp_spurious(rng, ts, static_cast<std::uint16_t>(rng.uniform_int(27960, 27970)),
                          net::ports::kQuake3, lan_ip(rng), rng.bytes(40));
    case SpuriousCategory::Others: {
      net::FrameSpec spec;
      spec.eth.src = random_mac(rng);
      spec.eth.dst = random_mac(rng);
      net::Ipv4Header ip;
      ip.src = lan_ip(rng);
      ip.dst = net::Ipv4Address::from_octets(34, 65, 12, 9);
      ip.identification = rng.u16();
      spec.ipv4 = ip;
      net::TcpHeader tcp;
      tcp.src_port = static_cast<std::uint16_t>(rng.uniform_int(40000, 65000));
      tcp.dst_port = net::ports::kBitcoin;
      tcp.seq = rng.u32();
      tcp.ack_flag = true;
      tcp.window = 0xFFFF;
      spec.tcp = tcp;
      spec.payload = rng.bytes(80);
      return net::build_packet(spec, ts);
    }
    case SpuriousCategory::None:
    case SpuriousCategory::kCount:
      break;
  }
  // Fallback: ARP.
  return make_spurious_packet(SpuriousCategory::NetworkManagement, rng, ts);
}

std::vector<std::size_t> inject_spurious(std::vector<net::Packet>& trace,
                                         double fraction, Rng& rng) {
  if (trace.empty() || fraction <= 0) return {};
  std::size_t n_spurious = static_cast<std::size_t>(
      fraction / (1.0 - fraction) * static_cast<double>(trace.size()));
  std::vector<std::size_t> positions;
  positions.reserve(n_spurious);
  for (std::size_t i = 0; i < n_spurious; ++i)
    positions.push_back(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(trace.size()) - 1)));
  std::sort(positions.rbegin(), positions.rend());

  std::vector<std::size_t> inserted;
  for (std::size_t pos : positions) {
    std::uint64_t ts = trace[pos].ts_usec;
    auto cat = random_spurious_category(rng);
    trace.insert(trace.begin() + static_cast<std::ptrdiff_t>(pos),
                 make_spurious_packet(cat, rng, ts));
    inserted.push_back(pos);
  }
  return inserted;
}

}  // namespace sugar::trafficgen
