#include "trafficgen/datasets.h"

#include <algorithm>
#include <numeric>

#include "trafficgen/payload.h"
#include "trafficgen/session.h"
#include "trafficgen/spurious.h"

namespace sugar::trafficgen {
namespace {

net::MacAddress client_mac(Rng& rng) {
  net::MacAddress m{{0x02, 0x1A, 0x4B, 0, 0, 0}};
  m.octets[3] = rng.u8();
  m.octets[4] = rng.u8();
  m.octets[5] = rng.u8();
  return m;
}

const net::MacAddress kGatewayMac{{0x02, 0x00, 0x5E, 0x10, 0x01, 0x01}};

Endpoint make_client(const AppProfile& p, Rng& rng) {
  Endpoint ep;
  ep.mac = client_mac(rng);
  ep.ip = net::Ipv4Address::from_octets(
      p.client_subnet_a, p.client_subnet_b,
      static_cast<std::uint8_t>(rng.uniform_int(0, 7)),
      static_cast<std::uint8_t>(rng.uniform_int(2, 250)));
  ep.port = static_cast<std::uint16_t>(rng.uniform_int(32768, 60999));
  ep.ttl = rng.chance(0.7) ? p.client_ttl_hi : p.client_ttl_lo;
  ep.window = p.client_window;
  ep.ts_base = rng.u32();
  ep.ip_id = rng.u16();
  return ep;
}

/// Shared CDN pool: a handful of /24s that many classes' servers live in.
net::Ipv4Address cdn_server_ip(Rng& rng) {
  static constexpr struct {
    std::uint8_t a, b, c;
  } kCdn[] = {{23, 54, 7},   {23, 199, 120}, {104, 16, 8},  {104, 18, 26},
              {151, 101, 1}, {151, 101, 65}, {13, 107, 21}, {142, 250, 64},
              {172, 217, 16}, {99, 84, 210}};
  auto pick = kCdn[rng.uniform_int(0, std::size(kCdn) - 1)];
  return net::Ipv4Address::from_octets(pick.a, pick.b, pick.c,
                                       static_cast<std::uint8_t>(rng.uniform_int(1, 254)));
}

/// VPN gateways: one small pool shared by all applications — the reason the
/// VPN half of ISCX carries almost no address signal.
net::Ipv4Address vpn_gateway_ip(Rng& rng) {
  return net::Ipv4Address::from_octets(
      131, 202, 240, static_cast<std::uint8_t>(rng.uniform_int(10, 13)));
}

Endpoint make_server(const AppProfile& p, bool vpn, Rng& rng) {
  Endpoint ep;
  ep.mac = kGatewayMac;
  if (vpn) {
    ep.ip = vpn_gateway_ip(rng);
    ep.port = 1194;
    ep.ttl = 64;
    ep.window = 0xFFFF;
  } else {
    ep.ip = rng.chance(p.cdn_prob)
                ? cdn_server_ip(rng)
                : net::Ipv4Address::from_octets(
                      p.subnet_a, p.subnet_b, p.subnet_c,
                      static_cast<std::uint8_t>(rng.uniform_int(1, 254)));
    ep.port = p.server_ports[rng.uniform_int(
        0, static_cast<std::int64_t>(p.server_ports.size()) - 1)];
    // Observed TTL = initial TTL minus the (per-flow random) path length,
    // so TTL carries a fuzzy operator fingerprint, not an exact class id.
    int hops = static_cast<int>(rng.uniform_int(5, 24));
    ep.ttl = static_cast<std::uint8_t>(std::max<int>(2, p.server_ttl - hops));
    ep.tos = p.tos;
    ep.window = p.server_window;
  }
  ep.ts_base = rng.u32();
  ep.ip_id = rng.u16();
  return ep;
}

std::vector<std::uint8_t> make_message(const AppProfile& p, bool from_client, Rng& rng) {
  double mu = from_client ? p.req_mu : p.resp_mu;
  double sigma = from_client ? p.req_sigma : p.resp_sigma;
  std::size_t n = static_cast<std::size_t>(
      std::clamp(rng.lognormal(mu, sigma), 8.0, 60000.0));
  switch (p.payload) {
    case PayloadKind::TlsRecords:
      return tls_record_payload(rng, n);
    case PayloadKind::PlainHttp:
      return from_client ? http_request_payload(rng, p.name + ".example.com",
                                                n > 400 ? n - 200 : 0)
                         : http_response_payload(rng, n);
    case PayloadKind::C2Beacon:
      return from_client ? c2_beacon_payload(rng, p.c2_magic, n)
                         : encrypted_payload(rng, n);
    case PayloadKind::OpenVpn:
    case PayloadKind::RawEncrypted:
      return encrypted_payload(rng, n);
    case PayloadKind::QuicLike:
      // Large client messages pad out to Initial-style long-header packets;
      // everything else rides in short-header 1-RTT datagrams.
      return quic_payload(rng, n, from_client && n >= 600);
    case PayloadKind::DohLike:
      return doh_payload(rng, n);
  }
  return encrypted_payload(rng, n);
}

}  // namespace

std::vector<net::Packet> generate_flow(const AppProfile& p, bool vpn, Rng& rng,
                                       std::uint64_t start_usec,
                                       std::vector<std::size_t>* strip_indices) {
  Endpoint client = make_client(p, rng);
  Endpoint server = make_server(p, vpn, rng);
  std::size_t rounds = rng.geometric_count(p.mean_rounds);

  if (vpn || !p.use_tcp) {
    // UDP transport (native UDP apps, or the OpenVPN tunnel).
    UdpSessionParams params{.client = client, .server = server,
                            .start_usec = start_usec};
    UdpSessionBuilder s(params, rng);
    std::uint64_t session_id = rng.u64();
    for (std::size_t r = 0; r < rounds; ++r) {
      auto req = make_message(p, true, rng);
      if (vpn) req = openvpn_payload(rng, session_id, req.size());
      s.send(true, std::move(req));
      s.wait_usec(static_cast<std::uint64_t>(rng.exponential(p.gap_ms * 1000 / 4)) + 200);
      auto resp = make_message(p, false, rng);
      if (vpn) resp = openvpn_payload(rng, session_id, resp.size());
      // UDP datagrams are bounded by the MTU: fragment large messages.
      std::size_t off = 0;
      while (off < resp.size()) {
        std::size_t seg = std::min<std::size_t>(resp.size() - off, p.udp_payload_cap);
        s.send(false, std::vector<std::uint8_t>(
                          resp.begin() + static_cast<std::ptrdiff_t>(off),
                          resp.begin() + static_cast<std::ptrdiff_t>(off + seg)));
        off += seg;
        s.wait_usec(static_cast<std::uint64_t>(rng.exponential(400)) + 50);
      }
      s.wait_usec(static_cast<std::uint64_t>(rng.exponential(p.gap_ms * 1000)) + 500);
    }
    return s.take();
  }

  // TCP transport.
  TcpSessionParams params{.client = client, .server = server,
                          .start_usec = start_usec, .mss = p.mss};
  TcpSessionBuilder s(params, rng);
  s.handshake();
  s.wait_usec(static_cast<std::uint64_t>(rng.exponential(5'000)) + 500);

  std::size_t first_client_data = s.packets().size();
  if (p.tls_handshake) {
    s.send(true, tls_client_hello(rng, p.sni));
    s.wait_usec(static_cast<std::uint64_t>(rng.exponential(15'000)) + 1'000);
    s.send(false, tls_server_hello(rng));
    s.wait_usec(static_cast<std::uint64_t>(rng.exponential(10'000)) + 1'000);
  }

  for (std::size_t r = 0; r < rounds; ++r) {
    s.send(true, make_message(p, true, rng));
    s.wait_usec(static_cast<std::uint64_t>(rng.exponential(p.gap_ms * 1000 / 4)) + 300);
    s.send(false, make_message(p, false, rng));
    s.wait_usec(static_cast<std::uint64_t>(rng.exponential(p.gap_ms * 1000)) + 500);
  }
  s.finish(rng.chance(0.8));

  if (strip_indices) {
    *strip_indices = s.handshake_indices();
    if (p.tls_handshake) strip_indices->push_back(first_client_data);
  }
  return s.take();
}

namespace {

/// Per-flow transport/framing reshaping drawn from the variant's
/// quic/doh fractions; Plain keeps the profile's native shape.
enum class FlowShape : std::uint8_t { Plain, Quic, Doh };

struct FlowJob {
  int cls;
  int service;
  int binary;
  bool vpn;
  const AppProfile* profile;
  FlowShape shape = FlowShape::Plain;
};

/// Draws the flow's shape. Draws from `rng` ONLY when a reshaping fraction
/// is set, so default-variant generation consumes the exact legacy stream.
FlowShape draw_shape(const TraceVariant& v, Rng& rng) {
  if (v.quic_fraction <= 0 && v.doh_fraction <= 0) return FlowShape::Plain;
  double u = rng.uniform();
  if (u < v.quic_fraction) return FlowShape::Quic;
  if (u < v.quic_fraction + v.doh_fraction) return FlowShape::Doh;
  return FlowShape::Plain;
}

GeneratedTrace assemble(const std::string& name,
                        const std::vector<AppProfile>& profiles,
                        const std::vector<FlowJob>& jobs, const GenOptions& opts,
                        bool strip_handshake) {
  Rng rng(opts.seed);

  struct FlowPackets {
    std::vector<net::Packet> pkts;
    PacketLabel label;
    int flow_id;
  };
  std::vector<FlowPackets> flows;
  flows.reserve(jobs.size());

  // Flow start times spread over a capture window proportional to the count,
  // so flows interleave like a real trace.
  std::uint64_t window_usec = static_cast<std::uint64_t>(jobs.size()) * 400'000 + 1;
  int flow_id = 0;
  for (const auto& job : jobs) {
    Rng flow_rng = rng.fork(static_cast<std::uint64_t>(flow_id) + 1);
    std::uint64_t start =
        static_cast<std::uint64_t>(flow_rng.uniform(0, static_cast<double>(window_usec)));
    std::vector<std::size_t> strip;
    const AppProfile* prof = job.profile;
    AppProfile shaped;
    if (job.shape == FlowShape::Quic) {
      shaped = quic_profile(*prof);
      prof = &shaped;
    } else if (job.shape == FlowShape::Doh) {
      shaped = doh_profile(*prof);
      prof = &shaped;
    }
    auto pkts = generate_flow(*prof, job.vpn, flow_rng, start,
                              strip_handshake ? &strip : nullptr);
    if (strip_handshake && !strip.empty()) {
      std::sort(strip.rbegin(), strip.rend());
      for (std::size_t idx : strip)
        if (idx < pkts.size()) pkts.erase(pkts.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    FlowPackets fp;
    fp.pkts = std::move(pkts);
    fp.label = {.cls = job.cls, .service = job.service, .binary = job.binary};
    fp.flow_id = flow_id++;
    flows.push_back(std::move(fp));
  }

  // Merge all flows into one time-ordered trace.
  GeneratedTrace trace;
  trace.dataset_name = name;
  for (const auto& p : profiles) trace.class_names.push_back(p.name);
  std::size_t total = 0;
  for (const auto& f : flows) total += f.pkts.size();
  struct Tagged {
    net::Packet pkt;
    PacketLabel label;
    int flow_id;
  };
  std::vector<Tagged> all;
  all.reserve(total);
  for (auto& f : flows)
    for (auto& pkt : f.pkts)
      all.push_back({std::move(pkt), f.label, f.flow_id});
  std::stable_sort(all.begin(), all.end(),
                   [](const Tagged& x, const Tagged& y) { return x.pkt.ts_usec < y.pkt.ts_usec; });

  trace.packets.reserve(all.size());
  for (auto& t : all) {
    trace.packets.push_back(std::move(t.pkt));
    trace.labels.push_back(t.label);
    trace.flow_of.push_back(t.flow_id);
  }

  // Spurious traffic, inserted after ordering so timestamps line up.
  if (opts.spurious_fraction > 0) {
    Rng spur_rng = rng.fork(0x5915u);
    auto positions = inject_spurious(trace.packets, opts.spurious_fraction, spur_rng);
    for (std::size_t pos : positions) {
      trace.labels.insert(trace.labels.begin() + static_cast<std::ptrdiff_t>(pos),
                          PacketLabel{});
      trace.flow_of.insert(trace.flow_of.begin() + static_cast<std::ptrdiff_t>(pos), -1);
    }
  }
  return trace;
}

}  // namespace

std::size_t GeneratedTrace::num_flows() const {
  int max_id = -1;
  for (int f : flow_of) max_id = std::max(max_id, f);
  return static_cast<std::size_t>(max_id + 1);
}

std::size_t GeneratedTrace::num_spurious() const {
  return static_cast<std::size_t>(std::count(flow_of.begin(), flow_of.end(), -1));
}

GeneratedTrace generate_iscx_vpn(const GenOptions& opts) {
  auto profiles = apply_variant(iscx_vpn_profiles(), opts.variant);
  Rng rng(opts.seed ^ 0x15C9);
  std::vector<FlowJob> jobs;
  for (const auto& p : profiles) {
    std::size_t n = variant_class_flows(opts.flows_per_class, p.class_id,
                                        opts.variant.imbalance_gamma);
    for (std::size_t i = 0; i < n; ++i) {
      bool vpn = rng.chance(opts.vpn_fraction);
      FlowShape shape = draw_shape(opts.variant, rng);
      if (shape != FlowShape::Plain) vpn = false;  // reshaped flows aren't tunnelled
      jobs.push_back({.cls = p.class_id, .service = p.service_id,
                      .binary = vpn ? 1 : 0, .vpn = vpn, .profile = &p,
                      .shape = shape});
    }
  }
  auto trace = assemble("ISCX-VPN", profiles, jobs, opts, /*strip=*/false);
  for (auto s :
       {"Web", "VoIP", "Streaming", "Chat", "Email", "FileTransfer"})
    trace.service_names.emplace_back(s);
  return trace;
}

GeneratedTrace generate_ustc_tfc(const GenOptions& opts) {
  auto profiles = apply_variant(ustc_tfc_profiles(), opts.variant);
  Rng shape_rng(opts.seed ^ 0xD1F7);  // draws only when reshaping is enabled
  std::vector<FlowJob> jobs;
  for (const auto& p : profiles) {
    std::size_t n = variant_class_flows(opts.flows_per_class, p.class_id,
                                        opts.variant.imbalance_gamma);
    for (std::size_t i = 0; i < n; ++i)
      jobs.push_back({.cls = p.class_id, .service = -1,
                      .binary = p.malicious ? 1 : 0, .vpn = false, .profile = &p,
                      .shape = draw_shape(opts.variant, shape_rng)});
  }
  return assemble("USTC-TFC", profiles, jobs, opts, /*strip=*/false);
}

GeneratedTrace generate_cstn_tls120(const GenOptions& opts) {
  auto profiles = apply_variant(cstn_tls120_profiles(), opts.variant);
  Rng shape_rng(opts.seed ^ 0xD1F7);  // draws only when reshaping is enabled
  std::vector<FlowJob> jobs;
  for (const auto& p : profiles) {
    std::size_t n = variant_class_flows(opts.flows_per_class, p.class_id,
                                        opts.variant.imbalance_gamma);
    for (std::size_t i = 0; i < n; ++i)
      jobs.push_back({.cls = p.class_id, .service = -1, .binary = -1, .vpn = false,
                      .profile = &p, .shape = draw_shape(opts.variant, shape_rng)});
  }
  return assemble("CSTN-TLS1.3", profiles, jobs, opts, opts.strip_tls_handshake);
}

GeneratedTrace generate_backbone(std::uint64_t seed, std::size_t n_flows) {
  // A diverse unlabelled mix for pre-training, standing in for the paper's
  // MAWI + UNSW-NB15 + campus traces.
  std::vector<AppProfile> pool;
  for (auto& p : iscx_vpn_profiles()) pool.push_back(std::move(p));
  for (auto& p : ustc_tfc_profiles()) pool.push_back(std::move(p));
  {
    auto sites = cstn_tls120_profiles();
    for (std::size_t i = 0; i < sites.size(); i += 4) pool.push_back(sites[i]);
  }

  Rng rng(seed);
  std::vector<FlowJob> jobs;
  jobs.reserve(n_flows);
  for (std::size_t i = 0; i < n_flows; ++i) {
    const auto& p = pool[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
    jobs.push_back({.cls = -1, .service = -1, .binary = -1,
                    .vpn = rng.chance(0.1), .profile = &p});
  }
  GenOptions opts;
  opts.seed = seed;
  opts.spurious_fraction = 0.06;
  auto trace = assemble("backbone", pool, jobs, opts, /*strip=*/false);
  trace.class_names.clear();  // unlabelled by design
  return trace;
}

}  // namespace sugar::trafficgen
