#include "trafficgen/variant.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace sugar::trafficgen {
namespace {

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

template <typename T>
T clamp_round(double v, T lo, T hi) {
  double r = std::llround(std::clamp(v, static_cast<double>(lo), static_cast<double>(hi)));
  return static_cast<T>(r);
}

}  // namespace

bool TraceVariant::is_default() const {
  return family == 0 && drift_epoch == 0 && quic_fraction <= 0 &&
         doh_fraction <= 0 && imbalance_gamma == 1.0;
}

std::string TraceVariant::tag() const {
  if (is_default()) return "default";
  std::string out = "fam" + std::to_string(family) + ".e" + std::to_string(drift_epoch);
  if (drift_epoch > 0) {
    out += ".d" + fmt_double(drift.ttl_step) + "_" + fmt_double(drift.window_scale) +
           "_" + fmt_double(drift.mss_step) + "_" + fmt_double(drift.gap_scale) + "_" +
           fmt_double(drift.resp_mu_step);
  }
  out += ".q" + fmt_double(quic_fraction) + ".h" + fmt_double(doh_fraction) + ".g" +
         fmt_double(imbalance_gamma);
  return out;
}

AppProfile drift_profile(const AppProfile& base, const DriftSpec& drift, int epoch) {
  if (epoch <= 0) return base;
  AppProfile p = base;
  double e = epoch;
  p.server_ttl = clamp_round<std::uint8_t>(base.server_ttl + drift.ttl_step * e, 8, 255);
  p.server_window = clamp_round<std::uint16_t>(
      base.server_window * std::pow(drift.window_scale, e), 1024, 65535);
  p.mss = clamp_round<std::uint16_t>(base.mss + drift.mss_step * e, 536, 1460);
  p.gap_ms = base.gap_ms * std::pow(drift.gap_scale, e);
  p.resp_mu = base.resp_mu + drift.resp_mu_step * e;
  return p;
}

AppProfile family_profile(const AppProfile& base, int family) {
  if (family == 0) return base;
  AppProfile p = base;
  // Same applications, re-hosted: the server /24 moves to a disjoint
  // provider range (deterministic remap of the class subnet), the
  // operator marks everything AF11, and CDN offload is heavier.
  p.subnet_a = static_cast<std::uint8_t>(
      52 + (base.subnet_a * 31 + base.subnet_c * 7 + base.class_id) % 140);
  p.subnet_b = static_cast<std::uint8_t>((base.subnet_b * 17 + 3) % 250);
  p.tos = static_cast<std::uint8_t>(base.tos | 0x28);
  p.cdn_prob = std::min(1.0, base.cdn_prob + 0.15);
  // Swapped server-stack fingerprint pools: Linux-heavy becomes
  // BSD/Windows-heavy and vice versa.
  p.server_ttl = base.server_ttl == 64 ? 255 : base.server_ttl == 128 ? 64 : 128;
  p.server_window = static_cast<std::uint16_t>(
      0x8000 + (base.server_window >> 2));
  // PPPoE access network: 1492-byte MTU caps MSS and UDP datagrams.
  p.mss = static_cast<std::uint16_t>(std::min<int>(base.mss, 1452));
  p.udp_payload_cap = 1392;
  // Windows-heavy client population on a 172.20/16 enterprise net.
  p.client_subnet_a = 172;
  p.client_subnet_b = 20;
  p.client_ttl_hi = 128;
  p.client_ttl_lo = 64;
  p.client_window = 0xFFFF;
  return p;
}

AppProfile quic_profile(const AppProfile& base) {
  AppProfile p = base;
  p.use_tcp = false;
  p.server_ports = {443};
  p.payload = PayloadKind::QuicLike;
  p.tls_handshake = false;
  // Keep datagrams below the QUIC-typical 1350-byte ceiling.
  p.udp_payload_cap = std::min<std::uint16_t>(p.udp_payload_cap, 1350);
  return p;
}

AppProfile doh_profile(const AppProfile& base) {
  AppProfile p = base;
  p.use_tcp = true;
  p.server_ports = {443};
  p.payload = PayloadKind::DohLike;
  p.tls_handshake = true;
  p.sni = "doh.resolver.example";
  // Shared public-resolver pool: addressing carries no class signal.
  p.subnet_a = 9;
  p.subnet_b = 9;
  p.subnet_c = 9;
  p.cdn_prob = 0.0;
  // DNS-sized messages, chatty sessions.
  p.req_mu = 4.0;
  p.req_sigma = 0.3;
  p.resp_mu = 4.8;
  p.resp_sigma = 0.5;
  p.mean_rounds = std::max(4.0, base.mean_rounds);
  p.gap_ms = std::min(base.gap_ms, 120.0);
  return p;
}

std::vector<AppProfile> apply_variant(std::vector<AppProfile> profiles,
                                      const TraceVariant& v) {
  if (v.family == 0 && v.drift_epoch <= 0) return profiles;
  for (auto& p : profiles) {
    if (v.family != 0) p = family_profile(p, v.family);
    if (v.drift_epoch > 0) p = drift_profile(p, v.drift, v.drift_epoch);
  }
  return profiles;
}

std::size_t variant_class_flows(std::size_t base, int class_id, double gamma) {
  if (gamma == 1.0) return base;
  double n = static_cast<double>(base) * std::pow(gamma, class_id);
  return static_cast<std::size_t>(std::max<long long>(1, std::llround(n)));
}

}  // namespace sugar::trafficgen
