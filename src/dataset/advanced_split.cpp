#include "dataset/advanced_split.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <random>

namespace sugar::dataset {

std::string to_string(AdvancedSplitPolicy p) {
  switch (p) {
    case AdvancedSplitPolicy::PerClient: return "per-client";
    case AdvancedSplitPolicy::PerTime: return "per-time";
    case AdvancedSplitPolicy::PerSession: return "per-session";
  }
  return "?";
}

net::IpAddress flow_client(const PacketDataset& ds,
                           const std::vector<std::size_t>& flow) {
  if (flow.empty()) return {};
  const auto& p = ds.parsed[flow.front()];
  if (p.ipv4) {
    auto is_client = [](net::Ipv4Address a) { return a.is_private(); };
    if (is_client(p.ipv4->src)) return net::IpAddress::from_v4(p.ipv4->src);
    if (is_client(p.ipv4->dst)) return net::IpAddress::from_v4(p.ipv4->dst);
    return net::IpAddress::from_v4(std::min(p.ipv4->src, p.ipv4->dst));
  }
  if (p.ipv6) {
    return net::IpAddress::from_v6(std::min(p.ipv6->src, p.ipv6->dst));
  }
  return {};
}

SplitIndices advanced_split(const PacketDataset& ds,
                            const AdvancedSplitOptions& opts) {
  auto flows = ds.flows();
  std::mt19937_64 rng(opts.seed);
  SplitIndices out;

  auto assign_flow = [&](std::size_t f, bool to_train) {
    for (std::size_t i : flows[f]) (to_train ? out.train : out.test).push_back(i);
  };

  switch (opts.policy) {
    case AdvancedSplitPolicy::PerClient: {
      // Group flows by client endpoint; split the *clients*.
      std::map<net::IpAddress, std::vector<std::size_t>> by_client;
      for (std::size_t f = 0; f < flows.size(); ++f)
        if (!flows[f].empty()) by_client[flow_client(ds, flows[f])].push_back(f);

      std::vector<net::IpAddress> clients;
      clients.reserve(by_client.size());
      for (const auto& [ip, _] : by_client) clients.push_back(ip);
      std::shuffle(clients.begin(), clients.end(), rng);
      std::size_t n_train = static_cast<std::size_t>(
          opts.train_fraction * static_cast<double>(clients.size()));
      for (std::size_t c = 0; c < clients.size(); ++c)
        for (std::size_t f : by_client[clients[c]]) assign_flow(f, c < n_train);
      break;
    }
    case AdvancedSplitPolicy::PerTime: {
      // Order flows by start time and cut once: earliest -> train.
      std::vector<std::pair<std::uint64_t, std::size_t>> order;
      for (std::size_t f = 0; f < flows.size(); ++f) {
        if (flows[f].empty()) continue;
        std::uint64_t start = ds.packets[flows[f].front()].ts_usec;
        for (std::size_t i : flows[f]) start = std::min(start, ds.packets[i].ts_usec);
        order.emplace_back(start, f);
      }
      std::sort(order.begin(), order.end());
      std::size_t n_train = static_cast<std::size_t>(
          opts.train_fraction * static_cast<double>(order.size()));
      for (std::size_t k = 0; k < order.size(); ++k)
        assign_flow(order[k].second, k < n_train);
      break;
    }
    case AdvancedSplitPolicy::PerSession: {
      // Cut the capture into contiguous windows by flow start time; assign
      // whole windows. Each window models one collection session.
      std::vector<std::pair<std::uint64_t, std::size_t>> order;
      for (std::size_t f = 0; f < flows.size(); ++f) {
        if (flows[f].empty()) continue;
        order.emplace_back(ds.packets[flows[f].front()].ts_usec, f);
      }
      std::sort(order.begin(), order.end());
      int sessions = std::max(2, opts.sessions);
      std::vector<int> session_ids(static_cast<std::size_t>(sessions));
      std::iota(session_ids.begin(), session_ids.end(), 0);
      std::shuffle(session_ids.begin(), session_ids.end(), rng);
      std::size_t n_train_sessions = std::max<std::size_t>(
          1, static_cast<std::size_t>(opts.train_fraction *
                                      static_cast<double>(sessions)));
      std::vector<bool> session_in_train(static_cast<std::size_t>(sessions), false);
      for (std::size_t s = 0; s < n_train_sessions; ++s)
        session_in_train[static_cast<std::size_t>(session_ids[s])] = true;

      for (std::size_t k = 0; k < order.size(); ++k) {
        int session = static_cast<int>(k * static_cast<std::size_t>(sessions) /
                                       order.size());
        assign_flow(order[k].second, session_in_train[static_cast<std::size_t>(session)]);
      }
      break;
    }
  }
  std::sort(out.train.begin(), out.train.end());
  std::sort(out.test.begin(), out.test.end());
  return out;
}

}  // namespace sugar::dataset
