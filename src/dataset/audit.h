// Leakage auditor: given a train/test split, quantifies the information
// leaks the paper identifies — flows straddling the boundary (explicit
// 5-tuple leak) and near-identical implicit flow ids (SeqNo/AckNo ranges,
// TCP timestamp bases) shared across the boundary. The benchmark's
// recommended pipeline asserts a zero-leak audit before training.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataset/split.h"
#include "dataset/task.h"

namespace sugar::dataset {

struct LeakageReport {
  /// Flows with packets on both sides of the boundary.
  std::size_t straddling_flows = 0;
  std::size_t total_flows = 0;
  /// Test packets whose flow also appears in train.
  std::size_t leaked_test_packets = 0;
  std::size_t total_test_packets = 0;
  /// Test TCP packets whose (SeqNo, AckNo) lies within `window` of a train
  /// packet of the same class — the implicit-id shortcut surface.
  std::size_t implicit_id_matches = 0;

  [[nodiscard]] bool clean() const {
    return straddling_flows == 0 && implicit_id_matches == 0;
  }
  [[nodiscard]] std::string to_string() const;
};

struct AuditOptions {
  /// SeqNo/AckNo proximity window: all packets of one flow live within a
  /// few rounds' worth of bytes of each other.
  std::uint32_t seq_window = 1u << 20;
  /// Subsample cap on pair comparisons, keeps the audit O(n·k).
  std::size_t max_test_probe = 20000;
};

LeakageReport audit_split(const PacketDataset& ds, const SplitIndices& split,
                          const AuditOptions& opts = {});

}  // namespace sugar::dataset
