#include "dataset/store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

#include "core/crc32.h"
#include "core/runerror.h"
#include "core/trace.h"

namespace sugar::dataset {
namespace {

constexpr char kFileMagic[4] = {'S', 'U', 'G', 'C'};
constexpr char kPageMagic[4] = {'S', 'G', 'P', 'G'};
constexpr char kTrailerMagic[4] = {'S', 'U', 'G', 'F'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 64;
constexpr std::size_t kPageHeaderBytes = 64;  // 32 header + 32 pad
constexpr std::size_t kTrailerBytes = 16;
// Structural sanity ceilings: corrupt footers must fail fast, not drive
// multi-gigabyte allocations.
constexpr std::uint64_t kMaxCols = 1u << 20;
constexpr std::uint64_t kMaxPages = 1u << 30;

template <typename T>
void put(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

void pad_to(std::string& out, std::size_t align) {
  while (out.size() % align != 0) out.push_back('\0');
}

/// Bounds-checked forward reader over the footer bytes; any overrun flips
/// `ok` and every later get returns zero, so parsing a truncated footer is
/// a clean kBadFooter, never a read past the buffer.
struct ByteReader {
  const std::uint8_t* p;
  std::size_t len;
  std::size_t pos = 0;
  bool ok = true;

  template <typename T>
  T get() {
    T v{};
    if (pos + sizeof(T) > len) {
      ok = false;
      return v;
    }
    std::memcpy(&v, p + pos, sizeof(T));
    pos += sizeof(T);
    return v;
  }
  std::string get_string(std::size_t n) {
    if (pos + n > len) {
      ok = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(p + pos), n);
    pos += n;
    return s;
  }
};

void set_error(StoreError* err, StoreErrorKind kind, std::string message) {
  if (err) *err = {kind, std::move(message)};
}

std::uint32_t page_crc(std::span<const std::uint8_t> payload) {
  return core::crc32(payload);
}

bool pread_all(int fd, std::uint8_t* out, std::size_t n, std::uint64_t off) {
  std::size_t done = 0;
  while (done < n) {
    ssize_t r = ::pread(fd, out + done, n - done,
                        static_cast<off_t>(off + done));
    if (r <= 0) return false;  // 0 = EOF short of n = truncated
    done += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

namespace detail {
struct FileHandle {
  int fd = -1;
  ~FileHandle() {
    if (fd >= 0) ::close(fd);
  }
};
}  // namespace detail
using detail::FileHandle;

std::size_t column_elem_size(ColumnType t) {
  switch (t) {
    case ColumnType::U8: return 1;
    case ColumnType::I32: return 4;
    case ColumnType::F32: return 4;
    case ColumnType::U64: return 8;
    case ColumnType::Bytes: return 0;
  }
  return 0;
}

const char* to_string(StoreErrorKind kind) {
  switch (kind) {
    case StoreErrorKind::kNone: return "none";
    case StoreErrorKind::kIo: return "io";
    case StoreErrorKind::kBadMagic: return "bad-magic";
    case StoreErrorKind::kBadVersion: return "bad-version";
    case StoreErrorKind::kTruncated: return "truncated";
    case StoreErrorKind::kBadFooter: return "bad-footer";
    case StoreErrorKind::kFooterCrc: return "footer-crc";
    case StoreErrorKind::kPageCrc: return "page-crc";
    case StoreErrorKind::kBadSchema: return "bad-schema";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// StoreWriter

struct StoreWriter::ColumnBuf {
  std::vector<std::uint8_t> fixed;   // fixed-width payload bytes
  std::vector<std::uint32_t> ends;   // Bytes: cumulative end offsets
  std::vector<std::uint8_t> blob;    // Bytes: concatenated values
  std::size_t count = 0;             // values received in the open group
};

StoreWriter::StoreWriter(std::string path, std::vector<ColumnSpec> schema,
                         Options opts)
    : path_(std::move(path)),
      schema_(std::move(schema)),
      opts_(opts),
      io_(opts.io ? opts.io : &core::real_io()),
      bufs_(schema_.size()) {
  if (opts_.group_rows == 0) opts_.group_rows = 1;
  // A stale temp from a crashed writer must not prepend garbage.
  io_->remove_file(path_ + ".tmp");
}

StoreWriter::~StoreWriter() {
  if (!finalized_) io_->remove_file(path_ + ".tmp");
}

void StoreWriter::add_u8(std::size_t col, std::uint8_t v) {
  auto& b = bufs_[col];
  b.fixed.push_back(v);
  ++b.count;
}

void StoreWriter::add_i32(std::size_t col, std::int32_t v) {
  auto& b = bufs_[col];
  const std::size_t n = b.fixed.size();
  b.fixed.resize(n + 4);
  std::memcpy(b.fixed.data() + n, &v, 4);
  ++b.count;
}

void StoreWriter::add_f32(std::size_t col, float v) {
  auto& b = bufs_[col];
  const std::size_t n = b.fixed.size();
  b.fixed.resize(n + 4);
  std::memcpy(b.fixed.data() + n, &v, 4);
  ++b.count;
}

void StoreWriter::add_u64(std::size_t col, std::uint64_t v) {
  auto& b = bufs_[col];
  const std::size_t n = b.fixed.size();
  b.fixed.resize(n + 8);
  std::memcpy(b.fixed.data() + n, &v, 8);
  ++b.count;
}

void StoreWriter::add_bytes(std::size_t col, std::span<const std::uint8_t> v) {
  auto& b = bufs_[col];
  b.blob.insert(b.blob.end(), v.begin(), v.end());
  b.ends.push_back(static_cast<std::uint32_t>(b.blob.size()));
  ++b.count;
}

bool StoreWriter::append(std::string_view bytes, StoreError* err) {
  if (dead_) {
    set_error(err, StoreErrorKind::kIo, "store writer poisoned by earlier failure");
    return false;
  }
  std::string io_err;
  if (offset_ == 0) {
    // First bytes: the 64-byte file header leads the temp.
    std::string header;
    header.append(kFileMagic, 4);
    put<std::uint32_t>(header, kVersion);
    pad_to(header, kHeaderBytes);
    if (!io_->append_file(path_ + ".tmp", header, &io_err)) {
      dead_ = true;
      set_error(err, StoreErrorKind::kIo, io_err);
      return false;
    }
    offset_ = kHeaderBytes;
  }
  if (!io_->append_file(path_ + ".tmp", bytes, &io_err)) {
    dead_ = true;
    set_error(err, StoreErrorKind::kIo, io_err);
    return false;
  }
  offset_ += bytes.size();
  return true;
}

bool StoreWriter::flush_group(StoreError* err) {
  if (group_count_ == 0) return true;
  SUGAR_TRACE_SPAN("dataset.store.flush_group");
  const std::uint64_t first_row = rows_ - group_count_;
  std::string out;
  for (std::size_t c = 0; c < schema_.size(); ++c) {
    ColumnBuf& b = bufs_[c];
    // Assemble payload. Bytes columns: cumulative ends then the blob.
    std::span<const std::uint8_t> payload;
    std::vector<std::uint8_t> bytes_payload;
    if (schema_[c].type == ColumnType::Bytes) {
      bytes_payload.resize(4 * b.ends.size() + b.blob.size());
      std::memcpy(bytes_payload.data(), b.ends.data(), 4 * b.ends.size());
      std::memcpy(bytes_payload.data() + 4 * b.ends.size(), b.blob.data(),
                  b.blob.size());
      payload = bytes_payload;
    } else {
      payload = b.fixed;
    }
    const std::uint32_t crc = page_crc(payload);
    // 32-byte page header + 32 bytes pad: payload starts 64-byte aligned
    // because every page starts on a 64-byte boundary.
    const std::size_t page_start = out.size();
    out.append(kPageMagic, 4);
    put<std::uint32_t>(out, static_cast<std::uint32_t>(c));
    put<std::uint64_t>(out, first_row);
    put<std::uint32_t>(out, static_cast<std::uint32_t>(group_count_));
    put<std::uint32_t>(out, static_cast<std::uint32_t>(payload.size()));
    put<std::uint32_t>(out, crc);
    pad_to(out, page_start + kPageHeaderBytes);
    index_.push_back({static_cast<std::uint32_t>(c), first_row,
                      static_cast<std::uint32_t>(group_count_),
                      offset_ == 0 ? kHeaderBytes + page_start + kPageHeaderBytes
                                   : offset_ + page_start + kPageHeaderBytes,
                      static_cast<std::uint32_t>(payload.size()), crc});
    out.append(reinterpret_cast<const char*>(payload.data()), payload.size());
    pad_to(out, 64);
    b.fixed.clear();
    b.ends.clear();
    b.blob.clear();
    b.count = 0;
  }
  group_count_ = 0;
  return append(out, err);
}

bool StoreWriter::end_row(StoreError* err) {
  for (std::size_t c = 0; c < schema_.size(); ++c) {
    if (bufs_[c].count != group_count_ + 1) {
      set_error(err, StoreErrorKind::kBadSchema,
                "column '" + schema_[c].name + "' has " +
                    std::to_string(bufs_[c].count) + " values at row " +
                    std::to_string(rows_));
      dead_ = true;
      return false;
    }
  }
  ++rows_;
  ++group_count_;
  if (group_count_ >= opts_.group_rows) return flush_group(err);
  return true;
}

bool StoreWriter::finalize(StoreError* err) {
  if (finalized_) {
    set_error(err, StoreErrorKind::kIo, "store already finalized");
    return false;
  }
  if (!flush_group(err)) return false;

  std::string footer;
  put<std::uint32_t>(footer, static_cast<std::uint32_t>(schema_.size()));
  for (const auto& c : schema_) {
    put<std::uint16_t>(footer, static_cast<std::uint16_t>(c.name.size()));
    footer.append(c.name);
    put<std::uint8_t>(footer, static_cast<std::uint8_t>(c.type));
    put<std::uint32_t>(footer, static_cast<std::uint32_t>(c.cuts.size()));
    for (float v : c.cuts) put<float>(footer, v);
  }
  put<std::uint32_t>(footer, static_cast<std::uint32_t>(opts_.bins));
  put<std::uint64_t>(footer, rows_);
  put<std::uint64_t>(footer, static_cast<std::uint64_t>(opts_.group_rows));
  put<std::uint64_t>(footer, static_cast<std::uint64_t>(index_.size()));
  for (const auto& p : index_) {
    put<std::uint32_t>(footer, p.col);
    put<std::uint64_t>(footer, p.first_row);
    put<std::uint32_t>(footer, p.nrows);
    put<std::uint64_t>(footer, p.payload_offset);
    put<std::uint32_t>(footer, p.payload_bytes);
    put<std::uint32_t>(footer, p.crc);
  }

  // Rows == 0 writes header + footer only; append() lazily emits the
  // header, so force it by appending the footer through the same path.
  const std::uint64_t footer_offset = offset_ == 0 ? kHeaderBytes : offset_;
  std::string tail = footer;
  put<std::uint64_t>(tail, footer_offset);
  put<std::uint32_t>(
      tail, core::crc32({reinterpret_cast<const std::uint8_t*>(footer.data()),
                         footer.size()}));
  tail.append(kTrailerMagic, 4);
  if (!append(tail, err)) return false;

  std::string io_err;
  if (!io_->commit_temp(path_, &io_err)) {
    dead_ = true;
    set_error(err, StoreErrorKind::kIo, io_err);
    return false;
  }
  finalized_ = true;
  SUGAR_TRACE_COUNT("dataset.store.finalized_bytes", offset_);
  return true;
}

// ---------------------------------------------------------------------------
// StoreReader

StoreReader::~StoreReader() {
  if (file_id_ != 0) core::PageCache::global().drop_file(file_id_);
  // fd_ is owned by the FileHandle shared with loaders; nothing to close.
}

std::size_t StoreReader::groups() const {
  if (rows_ == 0) return 0;
  return static_cast<std::size_t>((rows_ + group_rows_ - 1) / group_rows_);
}

int StoreReader::column(const std::string& name) const {
  for (std::size_t i = 0; i < schema_.size(); ++i)
    if (schema_[i].name == name) return static_cast<int>(i);
  return -1;
}

std::unique_ptr<StoreReader> StoreReader::open(const std::string& path,
                                               StoreError* err) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    set_error(err, StoreErrorKind::kIo, "open failed: " + path);
    return nullptr;
  }
  auto fh = std::make_shared<FileHandle>();
  fh->fd = fd;

  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    set_error(err, StoreErrorKind::kIo, "fstat failed: " + path);
    return nullptr;
  }
  const std::uint64_t size = static_cast<std::uint64_t>(st.st_size);
  if (size < kHeaderBytes + kTrailerBytes) {
    set_error(err, StoreErrorKind::kTruncated,
              "file smaller than header+trailer (" + std::to_string(size) + " bytes)");
    return nullptr;
  }

  std::uint8_t head[kHeaderBytes];
  std::uint8_t trail[kTrailerBytes];
  if (!pread_all(fd, head, kHeaderBytes, 0) ||
      !pread_all(fd, trail, kTrailerBytes, size - kTrailerBytes)) {
    set_error(err, StoreErrorKind::kIo, "read header/trailer failed");
    return nullptr;
  }
  if (std::memcmp(head, kFileMagic, 4) != 0) {
    set_error(err, StoreErrorKind::kBadMagic, "bad file magic");
    return nullptr;
  }
  std::uint32_t version = 0;
  std::memcpy(&version, head + 4, 4);
  if (version != kVersion) {
    set_error(err, StoreErrorKind::kBadVersion,
              "format version " + std::to_string(version));
    return nullptr;
  }
  if (std::memcmp(trail + 12, kTrailerMagic, 4) != 0) {
    set_error(err, StoreErrorKind::kBadMagic, "bad trailer magic");
    return nullptr;
  }
  std::uint64_t footer_offset = 0;
  std::uint32_t footer_crc = 0;
  std::memcpy(&footer_offset, trail, 8);
  std::memcpy(&footer_crc, trail + 8, 4);
  if (footer_offset < kHeaderBytes || footer_offset > size - kTrailerBytes) {
    set_error(err, StoreErrorKind::kBadFooter,
              "footer offset " + std::to_string(footer_offset) + " out of range");
    return nullptr;
  }

  const std::size_t footer_len =
      static_cast<std::size_t>(size - kTrailerBytes - footer_offset);
  std::vector<std::uint8_t> footer(footer_len);
  if (!pread_all(fd, footer.data(), footer_len, footer_offset)) {
    set_error(err, StoreErrorKind::kIo, "read footer failed");
    return nullptr;
  }
  if (core::crc32(footer) != footer_crc) {
    set_error(err, StoreErrorKind::kFooterCrc, "footer CRC mismatch");
    return nullptr;
  }

  ByteReader br{footer.data(), footer.size()};
  auto r = std::unique_ptr<StoreReader>(new StoreReader());
  const std::uint64_t ncols = br.get<std::uint32_t>();
  if (!br.ok || ncols > kMaxCols) {
    set_error(err, StoreErrorKind::kBadFooter, "column count out of range");
    return nullptr;
  }
  r->schema_.reserve(ncols);
  for (std::uint64_t c = 0; c < ncols && br.ok; ++c) {
    ColumnSpec spec;
    const std::size_t name_len = br.get<std::uint16_t>();
    spec.name = br.get_string(name_len);
    const std::uint8_t t = br.get<std::uint8_t>();
    if (t > static_cast<std::uint8_t>(ColumnType::Bytes)) {
      set_error(err, StoreErrorKind::kBadSchema,
                "unknown column type " + std::to_string(t));
      return nullptr;
    }
    spec.type = static_cast<ColumnType>(t);
    const std::uint64_t ncuts = br.get<std::uint32_t>();
    if (ncuts > 1u << 16) {
      set_error(err, StoreErrorKind::kBadFooter, "cut count out of range");
      return nullptr;
    }
    spec.cuts.reserve(ncuts);
    for (std::uint64_t i = 0; i < ncuts && br.ok; ++i)
      spec.cuts.push_back(br.get<float>());
    r->schema_.push_back(std::move(spec));
  }
  r->bins_ = static_cast<int>(br.get<std::uint32_t>());
  r->rows_ = br.get<std::uint64_t>();
  const std::uint64_t group_rows = br.get<std::uint64_t>();
  const std::uint64_t npages = br.get<std::uint64_t>();
  if (!br.ok || group_rows == 0 || npages > kMaxPages) {
    set_error(err, StoreErrorKind::kBadFooter, "footer truncated or counts invalid");
    return nullptr;
  }
  r->group_rows_ = static_cast<std::size_t>(group_rows);

  const std::size_t groups = r->groups();
  if (npages != ncols * groups) {
    set_error(err, StoreErrorKind::kBadFooter,
              "page count " + std::to_string(npages) + " != cols*groups");
    return nullptr;
  }
  r->index_.reserve(npages);
  r->pages_.assign(ncols * groups, UINT32_MAX);
  for (std::uint64_t i = 0; i < npages && br.ok; ++i) {
    PageEntry p;
    p.col = br.get<std::uint32_t>();
    p.first_row = br.get<std::uint64_t>();
    p.nrows = br.get<std::uint32_t>();
    p.payload_offset = br.get<std::uint64_t>();
    p.payload_bytes = br.get<std::uint32_t>();
    p.crc = br.get<std::uint32_t>();
    if (!br.ok) break;
    if (p.col >= ncols || p.first_row % group_rows != 0 ||
        p.first_row >= r->rows_ ||
        p.nrows != std::min<std::uint64_t>(group_rows, r->rows_ - p.first_row)) {
      set_error(err, StoreErrorKind::kBadFooter, "page geometry invalid");
      return nullptr;
    }
    if (p.payload_offset < kHeaderBytes ||
        p.payload_offset + p.payload_bytes > footer_offset) {
      set_error(err, StoreErrorKind::kBadFooter, "page extent out of range");
      return nullptr;
    }
    const ColumnSpec& spec = r->schema_[p.col];
    const std::size_t elem = column_elem_size(spec.type);
    if (elem != 0 && p.payload_bytes != elem * p.nrows) {
      set_error(err, StoreErrorKind::kBadSchema, "page size != nrows*elem");
      return nullptr;
    }
    if (elem == 0 && p.payload_bytes < 4u * p.nrows) {
      set_error(err, StoreErrorKind::kBadSchema, "bytes page too small");
      return nullptr;
    }
    const std::size_t slot =
        static_cast<std::size_t>(p.col) * groups +
        static_cast<std::size_t>(p.first_row / group_rows);
    if (r->pages_[slot] != UINT32_MAX) {
      set_error(err, StoreErrorKind::kBadFooter, "duplicate page entry");
      return nullptr;
    }
    r->pages_[slot] = static_cast<std::uint32_t>(i);
    r->payload_bytes_ += p.payload_bytes;
    r->index_.push_back(p);
  }
  if (!br.ok) {
    set_error(err, StoreErrorKind::kBadFooter, "footer truncated");
    return nullptr;
  }

  r->path_ = path;
  r->fd_ = fd;
  r->fh_ = std::move(fh);
  r->file_id_ = core::next_page_file_id();
  return r;
}

core::PageCache::Loader StoreReader::make_loader(std::size_t page) const {
  // Captures the shared fd handle and the page entry BY VALUE: a prefetch
  // job may run after this reader is gone. Validation beyond the CRC (the
  // Bytes offsets check) also rides in the capture.
  const PageEntry p = index_[page];
  std::shared_ptr<FileHandle> fh = fh_;
  const bool is_bytes = schema_[p.col].type == ColumnType::Bytes;
  return [fh, p, is_bytes](std::vector<std::uint8_t>& out, std::string& error) {
    out.resize(p.payload_bytes);
    if (!pread_all(fh->fd, out.data(), out.size(), p.payload_offset)) {
      error = "[truncated] page read short at offset " +
              std::to_string(p.payload_offset);
      return false;
    }
    if (core::crc32(out) != p.crc) {
      error = "[crc] page CRC mismatch at offset " +
              std::to_string(p.payload_offset);
      return false;
    }
    if (is_bytes) {
      // CRC-valid but structurally hostile offsets would turn bytes_at
      // into an out-of-bounds read; verify monotone ends within the blob.
      const auto* ends = reinterpret_cast<const std::uint32_t*>(out.data());
      const std::uint32_t blob = p.payload_bytes - 4u * p.nrows;
      std::uint32_t prev = 0;
      for (std::uint32_t i = 0; i < p.nrows; ++i) {
        if (ends[i] < prev || ends[i] > blob) {
          error = "[schema] bytes offsets not monotone/in range";
          return false;
        }
        prev = ends[i];
      }
    }
    return true;
  };
}

bool StoreReader::pin(std::size_t col, std::size_t group,
                      core::PageCache::Pin& pin, ColumnBlock& block,
                      StoreError* err) const {
  if (col >= schema_.size() || group >= groups()) {
    set_error(err, StoreErrorKind::kBadSchema, "pin out of range");
    return false;
  }
  const std::size_t page = pages_[col * groups() + group];
  std::string load_err;
  core::PageCache::Pin p = core::PageCache::global().get(
      {file_id_, page}, make_loader(page), &load_err);
  if (!p) {
    StoreErrorKind kind = StoreErrorKind::kIo;
    if (load_err.rfind("[crc]", 0) == 0) kind = StoreErrorKind::kPageCrc;
    else if (load_err.rfind("[truncated]", 0) == 0) kind = StoreErrorKind::kTruncated;
    else if (load_err.rfind("[schema]", 0) == 0) kind = StoreErrorKind::kBadSchema;
    set_error(err, kind, load_err);
    return false;
  }
  const PageEntry& e = index_[page];
  block = {p.data(), e.first_row, e.nrows};
  pin = std::move(p);
  return true;
}

void StoreReader::prefetch(std::size_t col, std::size_t group) const {
  if (col >= schema_.size() || group >= groups()) return;
  const std::size_t page = pages_[col * groups() + group];
  core::PageCache::global().prefetch({file_id_, page}, make_loader(page));
}

// ---------------------------------------------------------------------------
// Cursors

bool ColumnCursor::next(ColumnBlock& out, StoreError* err) {
  if (group_ >= r_->groups()) return false;
  if (!r_->pin(col_, group_, pin_, out, err)) return false;
  ++group_;
  if (group_ < r_->groups()) r_->prefetch(col_, group_);
  return true;
}

bool RowBlockCursor::next(std::vector<ColumnBlock>& out, StoreError* err) {
  if (group_ >= r_->groups()) return false;
  out.resize(cols_.size());
  for (std::size_t i = 0; i < cols_.size(); ++i)
    if (!r_->pin(cols_[i], group_, pins_[i], out[i], err)) return false;
  ++group_;
  if (group_ < r_->groups())
    for (std::size_t c : cols_) r_->prefetch(c, group_);
  return true;
}

// ---------------------------------------------------------------------------
// PagedCodeSource

PagedCodeSource::PagedCodeSource(const StoreReader& r,
                                 std::vector<std::size_t> code_cols)
    : r_(&r), code_cols_(std::move(code_cols)) {
  for (std::size_t c : code_cols_)
    if (c >= r.schema().size() || r.schema()[c].type != ColumnType::U8)
      throw core::RunError(core::RunErrorKind::kInternal,
                           "PagedCodeSource column " + std::to_string(c) +
                               " is not a U8 code column");
}

std::size_t PagedCodeSource::rows() const {
  return static_cast<std::size_t>(r_->rows());
}

int PagedCodeSource::bins() const { return r_->bins(); }

const std::vector<float>& PagedCodeSource::cuts(std::size_t f) const {
  return r_->schema()[code_cols_[f]].cuts;
}

ml::CodeChunk PagedCodeSource::fetch(std::size_t f, std::size_t row,
                                     std::shared_ptr<const void>& keepalive) const {
  core::PageCache::Pin pin;
  ColumnBlock block;
  StoreError err;
  if (!r_->pin(code_cols_[f], r_->group_of(row), pin, block, &err))
    throw core::RunError(core::RunErrorKind::kInternal,
                         std::string("page load failed (") +
                             to_string(err.kind) + "): " + err.message);
  auto holder = std::make_shared<core::PageCache::Pin>(std::move(pin));
  keepalive = holder;
  return {block.data, static_cast<std::size_t>(block.first_row),
          static_cast<std::size_t>(block.first_row) + block.nrows};
}

void PagedCodeSource::hint(std::size_t f, std::size_t row) const {
  r_->prefetch(code_cols_[f], r_->group_of(row));
}

}  // namespace sugar::dataset
