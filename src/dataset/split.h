// Train/test splitting — the heart of the paper's critique. Per-packet
// splitting scatters packets of one flow across train and test (leaking
// implicit flow ids); per-flow splitting keeps each flow whole on one side.
// Both are implemented here, along with balanced/stratified sampling and
// per-flow K-fold cross-validation.
#pragma once

#include <cstdint>
#include <vector>

#include "dataset/task.h"

namespace sugar::dataset {

enum class SplitPolicy {
  PerPacket,  // random over packets — the flawed policy most prior work used
  PerFlow,    // random over flows — the paper's recommended policy
};

std::string to_string(SplitPolicy p);

struct SplitIndices {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

struct SplitOptions {
  SplitPolicy policy = SplitPolicy::PerFlow;
  /// Fraction of packets (per-packet) or flows (per-flow) put in train.
  double train_fraction = 0.875;  // the paper's 7:1
  std::uint64_t seed = 7;
  /// Per-flow split: spread long flows evenly across partitions (paper §5:
  /// "we make sure that long flows are evenly distributed").
  bool balance_long_flows = true;
};

/// Splits a dataset into train/test packet-index sets.
SplitIndices split_dataset(const PacketDataset& ds, const SplitOptions& opts);

/// Balanced undersampling of the training set: each class is reduced to the
/// size of its minority class (the paper's few-shot-stressing train policy).
std::vector<std::size_t> balance_train(const PacketDataset& ds,
                                       const std::vector<std::size_t>& train,
                                       std::uint64_t seed);

/// Stratified subsample of a packet-index set that preserves class
/// proportions (the paper's recommended way to shrink a test set).
std::vector<std::size_t> stratified_sample(const PacketDataset& ds,
                                           const std::vector<std::size_t>& indices,
                                           double fraction, std::uint64_t seed);

/// Caps the number of packets retained per flow (paper: flows longer than
/// 1000 packets are subsampled to 1000).
std::vector<std::size_t> cap_flow_length(const PacketDataset& ds,
                                         const std::vector<std::size_t>& indices,
                                         std::size_t max_per_flow, std::uint64_t seed);

/// K folds over the *training* partition, flow-consistent when the policy is
/// PerFlow: fold k uses folds != k for training and fold k for validation.
std::vector<SplitIndices> kfold(const PacketDataset& ds,
                                const std::vector<std::size_t>& train, int k,
                                SplitPolicy policy, std::uint64_t seed);

}  // namespace sugar::dataset
