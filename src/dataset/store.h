// SUGC v1: the packed on-disk columnar store behind the out-of-core
// pipeline (trafficgen → clean → split → featurize → fit at dataset sizes
// 10–100× RAM). One file holds a table of typed columns; each column is
// chopped into fixed-row-count pages (one page per column per row group),
// every page payload starts on a 64-byte boundary and carries its own
// CRC32, and a footer indexes all pages so readers open in O(footer).
//
// Layout (all integers little-endian native, x86-64 target):
//
//   [file header, 64 B]   magic "SUGC", u32 version=1, zero pad
//   [page]*                64-B-aligned: 32-B page header (magic "SGPG",
//                          u32 col, u64 first_row, u32 nrows,
//                          u32 payload_bytes, u32 payload_crc, u32 pad)
//                          + 32 B zero pad, then the payload, then pad to
//                          the next 64-B boundary
//   [footer]               schema (names, types, per-column cuts), store
//                          bins, total rows, group_rows, page index
//                          (col, first_row, nrows, offset, bytes, crc)
//   [trailer, 16 B]        u64 footer_offset, u32 footer_crc, magic "SUGF"
//
// Writers stream: rows are buffered column-wise for one group, flushed as
// pages through core::Io::append_file onto `<path>.tmp`, and finalize()
// commits with Io::commit_temp — so a producer's resident footprint is one
// row group regardless of dataset size, and a crash mid-write never leaves
// a half-visible store. Readers pread() pages on demand through
// core::PageCache (budgeted by SUGAR_PAGE_CACHE_MB), verifying each page's
// CRC on load; datasets that fit in one group degrade to a single resident
// page per column, so tiny (bench_smoke) scales never touch the cache
// machinery beyond one miss per column.
//
// Every structural failure (bad magic, truncation, CRC mismatch, absurd
// counts) surfaces as a typed StoreError — corrupt input is an error
// return, never UB.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/io.h"
#include "core/pager.h"
#include "ml/binned.h"

namespace sugar::dataset {

namespace detail {
/// Shared fd ownership between a StoreReader and its in-flight page
/// loaders (prefetch jobs can outlive the reader). Defined in store.cpp.
struct FileHandle;
}  // namespace detail

enum class ColumnType : std::uint8_t { U8 = 0, I32 = 1, F32 = 2, U64 = 3, Bytes = 4 };

/// Bytes of one element for fixed-width types; 0 for Bytes columns.
std::size_t column_elem_size(ColumnType t);

struct ColumnSpec {
  std::string name;
  ColumnType type = ColumnType::F32;
  /// Pre-binned code columns (U8) record the quantization cuts they were
  /// coded against, so a fit can rebuild thresholds without the raw floats.
  std::vector<float> cuts;
};

enum class StoreErrorKind {
  kNone = 0,
  kIo,         // open/read/write/rename failure
  kBadMagic,   // header or trailer magic mismatch
  kBadVersion, // format version this build does not speak
  kTruncated,  // file shorter than its own structures claim
  kBadFooter,  // footer fails structural validation
  kFooterCrc,  // footer bytes fail their CRC
  kPageCrc,    // page payload fails its CRC
  kBadSchema,  // column/type/usage mismatch
};

const char* to_string(StoreErrorKind kind);

struct StoreError {
  StoreErrorKind kind = StoreErrorKind::kNone;
  std::string message;

  [[nodiscard]] explicit operator bool() const {
    return kind != StoreErrorKind::kNone;
  }
};

/// Streaming writer. Append one value per column, then end_row(); groups
/// flush automatically. finalize() writes the footer and atomically
/// commits `<path>` (temp-then-rename through the injected Io, so the
/// chaos harness covers every byte of the path to disk).
class StoreWriter {
 public:
  struct Options {
    /// Rows per page group — the page-size knob (a U8 column's page is
    /// group_rows bytes, an F32 column's 4× that).
    std::size_t group_rows = 65536;
    /// Histogram resolution code columns were quantized at (metadata for
    /// PagedCodeSource::bins()); 0 when the store carries no codes.
    int bins = 0;
    core::Io* io = nullptr;  // default: real_io()
  };

  StoreWriter(std::string path, std::vector<ColumnSpec> schema, Options opts);
  StoreWriter(std::string path, std::vector<ColumnSpec> schema)
      : StoreWriter(std::move(path), std::move(schema), Options()) {}
  ~StoreWriter();
  StoreWriter(const StoreWriter&) = delete;
  StoreWriter& operator=(const StoreWriter&) = delete;

  void add_u8(std::size_t col, std::uint8_t v);
  void add_i32(std::size_t col, std::int32_t v);
  void add_f32(std::size_t col, float v);
  void add_u64(std::size_t col, std::uint64_t v);
  void add_bytes(std::size_t col, std::span<const std::uint8_t> v);

  /// Closes the current row; every column must have received exactly one
  /// value since the previous end_row. Flushes a full group to disk.
  bool end_row(StoreError* err = nullptr);

  /// Flushes the tail group, writes footer + trailer, renames the temp
  /// over `path`. The writer is dead afterwards.
  bool finalize(StoreError* err = nullptr);

  [[nodiscard]] std::uint64_t rows() const { return rows_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  struct ColumnBuf;
  bool flush_group(StoreError* err);
  bool append(std::string_view bytes, StoreError* err);

  std::string path_;
  std::vector<ColumnSpec> schema_;
  Options opts_;
  core::Io* io_ = nullptr;
  std::vector<ColumnBuf> bufs_;
  std::uint64_t rows_ = 0;        // rows fully ended
  std::size_t group_count_ = 0;   // rows buffered in the open group
  std::uint64_t offset_ = 0;      // bytes appended to the temp so far
  struct PageEntry {
    std::uint32_t col = 0;
    std::uint64_t first_row = 0;
    std::uint32_t nrows = 0;
    std::uint64_t payload_offset = 0;
    std::uint32_t payload_bytes = 0;
    std::uint32_t crc = 0;
  };
  std::vector<PageEntry> index_;
  bool finalized_ = false;
  bool dead_ = false;  // a failed append poisons the writer
};

/// One column's pinned page, exposed as raw payload bytes. Fixed-width
/// columns: `data` is nrows elements of the column type. Bytes columns:
/// u32 cumulative end offsets[nrows], then the concatenated blob.
struct ColumnBlock {
  const std::uint8_t* data = nullptr;
  std::uint64_t first_row = 0;
  std::uint32_t nrows = 0;

  template <typename T>
  [[nodiscard]] const T* as() const {
    return reinterpret_cast<const T*>(data);
  }
  /// Bytes columns: row `i` (block-relative) of the blob.
  [[nodiscard]] std::span<const std::uint8_t> bytes_at(std::size_t i) const {
    const auto* ends = reinterpret_cast<const std::uint32_t*>(data);
    const std::uint8_t* blob = data + 4u * nrows;
    const std::uint32_t b = i == 0 ? 0 : ends[i - 1];
    return {blob + b, ends[i] - b};
  }
};

/// Random-access reader over a committed store. Page loads go through
/// core::PageCache::global(): each open store draws a process-unique
/// file id, loads verify the page CRC, and close drops the file's pages.
/// Thread-safe for concurrent pins (immutable index + pread).
class StoreReader {
 public:
  ~StoreReader();
  StoreReader(const StoreReader&) = delete;
  StoreReader& operator=(const StoreReader&) = delete;

  /// Opens and fully validates header, trailer, footer and page-index
  /// bounds. Null + `err` on any structural problem.
  static std::unique_ptr<StoreReader> open(const std::string& path,
                                           StoreError* err);

  [[nodiscard]] std::uint64_t rows() const { return rows_; }
  [[nodiscard]] std::size_t group_rows() const { return group_rows_; }
  [[nodiscard]] std::size_t groups() const;
  [[nodiscard]] int bins() const { return bins_; }
  [[nodiscard]] const std::vector<ColumnSpec>& schema() const { return schema_; }
  /// Column index by name; -1 when absent.
  [[nodiscard]] int column(const std::string& name) const;

  /// Pins the page of `col` covering row group `group`. The block stays
  /// valid while `pin` lives. CRC is verified on the load that faults the
  /// page in (hits skip it — the cache holds verified bytes).
  bool pin(std::size_t col, std::size_t group, core::PageCache::Pin& pin,
           ColumnBlock& block, StoreError* err) const;

  /// Lookahead: enqueue an async load of (col, group). Never fails.
  void prefetch(std::size_t col, std::size_t group) const;

  [[nodiscard]] std::size_t group_of(std::uint64_t row) const {
    return static_cast<std::size_t>(row / group_rows_);
  }
  /// Total payload bytes across all pages (the "dataset size" the RSS
  /// gates compare against).
  [[nodiscard]] std::uint64_t payload_bytes() const { return payload_bytes_; }

 private:
  StoreReader() = default;
  /// Builds a PageCache loader for page-index position `page`. Captures
  /// the shared fd handle and entry by value so prefetch jobs stay valid
  /// after the reader is destroyed.
  [[nodiscard]] core::PageCache::Loader make_loader(std::size_t page) const;

  std::string path_;
  std::shared_ptr<detail::FileHandle> fh_;
  int fd_ = -1;
  std::uint64_t file_id_ = 0;
  std::uint64_t rows_ = 0;
  std::size_t group_rows_ = 1;
  int bins_ = 0;
  std::vector<ColumnSpec> schema_;
  struct PageEntry {
    std::uint32_t col = 0;
    std::uint64_t first_row = 0;
    std::uint32_t nrows = 0;
    std::uint64_t payload_offset = 0;
    std::uint32_t payload_bytes = 0;
    std::uint32_t crc = 0;
  };
  std::vector<PageEntry> index_;
  /// index_ position of (col, group): pages_[col * groups() + group].
  std::vector<std::uint32_t> pages_;
  std::uint64_t payload_bytes_ = 0;
};

/// Sequential reader over one column, group by group, prefetching the next
/// page as each is returned.
class ColumnCursor {
 public:
  ColumnCursor(const StoreReader& r, std::size_t col) : r_(&r), col_(col) {}

  /// False at end of column (or on error — check `err`).
  bool next(ColumnBlock& out, StoreError* err = nullptr);

 private:
  const StoreReader* r_;
  std::size_t col_;
  std::size_t group_ = 0;
  core::PageCache::Pin pin_;
};

/// Row-aligned streaming over several columns at once: next() pins the
/// same row group across all requested columns, the unit of work for
/// streamed featurize / label scans.
class RowBlockCursor {
 public:
  RowBlockCursor(const StoreReader& r, std::vector<std::size_t> cols)
      : r_(&r), cols_(std::move(cols)), pins_(cols_.size()) {}

  /// Blocks come back in `cols` order, all covering the same rows.
  bool next(std::vector<ColumnBlock>& out, StoreError* err = nullptr);

 private:
  const StoreReader* r_;
  std::vector<std::size_t> cols_;
  std::vector<core::PageCache::Pin> pins_;
  std::size_t group_ = 0;
};

/// ml::BinnedColumnSource over a store's U8 code columns: the out-of-core
/// fit input. fetch() pins the covering page (the pin rides in the
/// cursor's keepalive), hint() prefetches the next one. A page load
/// failure throws — the tree fit has no partial-data mode.
class PagedCodeSource final : public ml::BinnedColumnSource {
 public:
  /// `code_cols[f]` is the store column holding feature f's codes (must
  /// be U8 with recorded cuts).
  PagedCodeSource(const StoreReader& r, std::vector<std::size_t> code_cols);

  [[nodiscard]] std::size_t rows() const override;
  [[nodiscard]] std::size_t cols() const override { return code_cols_.size(); }
  [[nodiscard]] int bins() const override;
  [[nodiscard]] const std::vector<float>& cuts(std::size_t f) const override;
  [[nodiscard]] ml::CodeChunk fetch(
      std::size_t f, std::size_t row,
      std::shared_ptr<const void>& keepalive) const override;
  void hint(std::size_t f, std::size_t row) const override;

 private:
  const StoreReader* r_;
  std::vector<std::size_t> code_cols_;
};

/// Fully resident BinnedColumnSource: one owned code vector per feature.
/// The in-memory comparator arm of --ooc-compare, and the degraded form
/// tiny datasets use when paging buys nothing.
class ResidentCodeSource final : public ml::BinnedColumnSource {
 public:
  ResidentCodeSource(std::vector<std::vector<std::uint8_t>> codes,
                     std::vector<std::vector<float>> cuts, int bins)
      : codes_(std::move(codes)), cuts_(std::move(cuts)), bins_(bins) {}

  [[nodiscard]] std::size_t rows() const override {
    return codes_.empty() ? 0 : codes_.front().size();
  }
  [[nodiscard]] std::size_t cols() const override { return codes_.size(); }
  [[nodiscard]] int bins() const override { return bins_; }
  [[nodiscard]] const std::vector<float>& cuts(std::size_t f) const override {
    return cuts_[f];
  }
  [[nodiscard]] ml::CodeChunk fetch(
      std::size_t f, std::size_t /*row*/,
      std::shared_ptr<const void>&) const override {
    return {codes_[f].data(), 0, codes_[f].size()};
  }

 private:
  std::vector<std::vector<std::uint8_t>> codes_;
  std::vector<std::vector<float>> cuts_;
  int bins_ = 0;
};

}  // namespace sugar::dataset
