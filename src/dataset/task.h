// Task definitions (Table 2) and the canonical labelled-packet container the
// benchmark pipeline operates on. A PacketDataset is what remains after
// cleaning: packets, per-packet task labels, and flow membership re-derived
// from the wire bytes (not generator ground truth).
#pragma once

#include <string>
#include <vector>

#include "net/flow.h"
#include "net/packet.h"
#include "trafficgen/datasets.h"

namespace sugar::dataset {

/// The six downstream tasks of the paper (Table 2).
enum class TaskId {
  VpnBinary,
  VpnService,
  VpnApp,
  UstcBinary,
  UstcApp,
  Tls120,
};

std::string to_string(TaskId t);

/// Which source dataset a task is defined on.
enum class SourceDataset { IscxVpn, UstcTfc, CstnTls };
SourceDataset source_of(TaskId t);

struct PacketDataset {
  std::string task_name;
  std::vector<net::Packet> packets;
  std::vector<net::ParsedPacket> parsed;  // parallel cache of parse results
  std::vector<int> label;                 // task label per packet
  std::vector<int> flow_id;               // canonical bi-flow id (>= 0)
  int num_classes = 0;
  std::vector<std::string> class_names;

  [[nodiscard]] std::size_t size() const { return packets.size(); }

  /// Packet indices per flow id.
  [[nodiscard]] std::vector<std::vector<std::size_t>> flows() const;

  /// The label of a flow (all packets of a flow share the label).
  [[nodiscard]] std::vector<int> flow_labels() const;

  /// Subset by packet indices (copies packets).
  [[nodiscard]] PacketDataset subset(const std::vector<std::size_t>& indices) const;
};

/// Extracts the task view from a (cleaned) trace: selects the per-packet
/// label for the task, drops unlabeled packets, parses each packet, and
/// assigns canonical flow ids via FlowTable.
PacketDataset make_task_dataset(const trafficgen::GeneratedTrace& trace, TaskId task);

/// Wraps a trace with all labels set to 0 — the unlabelled container used
/// for self-supervised pre-training. Keyless packets (ARP, ICMP, LLC) are
/// kept with flow id reused from the generator so parsers still see the
/// full protocol mix.
PacketDataset make_unlabeled_dataset(const trafficgen::GeneratedTrace& trace);

}  // namespace sugar::dataset
