// Dataset-level ablation transforms (Tables 6 and 7, Appendix A.2). Each
// transform rewrites packet bytes via src/net/mutate and re-parses, so every
// downstream featurizer sees the ablated view.
#pragma once

#include <cstdint>
#include <string>

#include "dataset/task.h"

namespace sugar::dataset {

struct AblationSpec {
  bool randomize_seq_ack = false;   // Table 6: w/o SeqNo/AckNo
  bool randomize_tstamp = false;    // Table 6: w/o TCP Timestamp
  bool zero_ip = false;             // Table 7 / PacRep-NetMamba policy
  bool randomize_ip = false;        // YaTC/TrafficFormer policy
  bool zero_ports = false;          // YaTC policy
  bool zero_payload = false;        // Table 7: w/o payload
  bool strip_payload = false;       // remove payload bytes entirely
  bool zero_header = false;         // Table 7: w/o header

  [[nodiscard]] bool any() const {
    return randomize_seq_ack || randomize_tstamp || zero_ip || randomize_ip ||
           zero_ports || zero_payload || strip_payload || zero_header;
  }

  /// Table 6's "w/o SeqNo/AckNo, w/o Timestamp" combination.
  static AblationSpec without_implicit_ids() {
    return {.randomize_seq_ack = true, .randomize_tstamp = true};
  }
};

/// Applies the spec to every packet of the (sub)dataset in place, refreshing
/// the parse cache.
void apply_ablation(PacketDataset& ds, const AblationSpec& spec, std::uint64_t seed);

/// Test-time adversarial header perturbation: bounded random jitter on TTL /
/// TCP window / TCP MSS. Applied to the *held-out* partition only — it
/// models a deployment stack whose header fingerprints moved after training.
/// Seeded and deterministic: the same (dataset, spec, seed) always produces
/// the same perturbed bytes.
struct PerturbSpec {
  int ttl_jitter = 0;     // TTL moves by at most this many hops
  int window_jitter = 0;  // window moves by at most this many bytes
  int mss_jitter = 0;     // MSS option moves by at most this many bytes

  [[nodiscard]] bool any() const {
    return ttl_jitter > 0 || window_jitter > 0 || mss_jitter > 0;
  }

  /// Canonical short string for cache/journal keys ("none" when inactive,
  /// so default fingerprints stay stable across versions).
  [[nodiscard]] std::string tag() const;
};

/// Applies the spec to every packet of the (sub)dataset in place, refreshing
/// the parse cache. No-op (zero RNG draws) when !spec.any().
void apply_perturbation(PacketDataset& ds, const PerturbSpec& spec,
                        std::uint64_t seed);

}  // namespace sugar::dataset
