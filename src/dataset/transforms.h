// Dataset-level ablation transforms (Tables 6 and 7, Appendix A.2). Each
// transform rewrites packet bytes via src/net/mutate and re-parses, so every
// downstream featurizer sees the ablated view.
#pragma once

#include <cstdint>

#include "dataset/task.h"

namespace sugar::dataset {

struct AblationSpec {
  bool randomize_seq_ack = false;   // Table 6: w/o SeqNo/AckNo
  bool randomize_tstamp = false;    // Table 6: w/o TCP Timestamp
  bool zero_ip = false;             // Table 7 / PacRep-NetMamba policy
  bool randomize_ip = false;        // YaTC/TrafficFormer policy
  bool zero_ports = false;          // YaTC policy
  bool zero_payload = false;        // Table 7: w/o payload
  bool strip_payload = false;       // remove payload bytes entirely
  bool zero_header = false;         // Table 7: w/o header

  [[nodiscard]] bool any() const {
    return randomize_seq_ack || randomize_tstamp || zero_ip || randomize_ip ||
           zero_ports || zero_payload || strip_payload || zero_header;
  }

  /// Table 6's "w/o SeqNo/AckNo, w/o Timestamp" combination.
  static AblationSpec without_implicit_ids() {
    return {.randomize_seq_ack = true, .randomize_tstamp = true};
  }
};

/// Applies the spec to every packet of the (sub)dataset in place, refreshing
/// the parse cache.
void apply_ablation(PacketDataset& ds, const AblationSpec& spec, std::uint64_t seed);

}  // namespace sugar::dataset
