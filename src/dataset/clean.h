// The cleaning pipeline of Section 4.1. The extraneous-protocol filter is
// the one the paper endorses; minimum-size and class-support filters are
// implemented faithfully to the surveyed papers *so the benchmark can show
// what they distort* — the pipeline reports exactly what each filter
// removed (Table 13).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "net/parser.h"
#include "net/proto.h"
#include "trafficgen/datasets.h"

namespace sugar::dataset {

/// Per-category removal census (Table 13) plus totals. Malformed frames —
/// bytes the parser rejects outright — are counted separately from the
/// spurious-protocol taxonomy so ingestion damage is never silently folded
/// into a protocol category.
struct CleaningReport {
  std::string dataset_name;
  std::size_t total_packets = 0;
  std::array<std::size_t, static_cast<std::size_t>(net::SpuriousCategory::kCount)>
      removed_by_category{};
  std::size_t removed_min_packet_size = 0;
  std::size_t removed_short_flows = 0;
  std::size_t removed_class_support = 0;
  /// Frames parse_packet rejected, bucketed by ParseError.
  std::size_t removed_malformed = 0;
  std::array<std::size_t, net::kParseErrorCount> malformed_by_error{};

  [[nodiscard]] std::size_t removed_spurious_total() const;
  [[nodiscard]] double removed_spurious_fraction() const;
  [[nodiscard]] double malformed_fraction() const;
  [[nodiscard]] std::string to_markdown() const;
};

struct CleaningOptions {
  /// The paper's recommended filter: drop all Table-13 protocols.
  bool filter_extraneous = true;

  /// ET-BERT-style: drop packets shorter than this many bytes (0 = off).
  /// Kept for ablation; the paper recommends NOT using it.
  std::size_t min_packet_bytes = 0;

  /// TrafficFormer/netFound-style: drop flows with fewer packets than this
  /// (0 = off). Kept for ablation; the paper recommends NOT using it.
  std::size_t min_flow_packets = 0;

  /// ET-BERT-style class-support caps (0 = off). Kept for ablation.
  std::size_t max_packets_per_class = 0;
  std::size_t min_flows_per_class = 0;
};

/// Applies the filters in place on a generated trace (packets, labels and
/// flow ids stay parallel) and returns the census of removals.
CleaningReport clean_trace(trafficgen::GeneratedTrace& trace,
                           const CleaningOptions& opts);

}  // namespace sugar::dataset
