#include "dataset/transforms.h"

#include <random>

#include "net/mutate.h"

namespace sugar::dataset {

void apply_ablation(PacketDataset& ds, const AblationSpec& spec, std::uint64_t seed) {
  if (!spec.any()) return;
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < ds.packets.size(); ++i) {
    net::Packet& pkt = ds.packets[i];
    if (spec.randomize_seq_ack) net::randomize_seq_ack(pkt, rng);
    if (spec.randomize_tstamp) net::randomize_tcp_timestamp(pkt, rng);
    if (spec.zero_ip) net::zero_ip_addresses(pkt);
    if (spec.randomize_ip) net::randomize_ip_addresses(pkt, rng);
    if (spec.zero_ports) net::zero_ports(pkt);
    if (spec.zero_payload) net::zero_payload(pkt);
    if (spec.strip_payload) net::strip_payload(pkt);
    if (spec.zero_header) net::zero_headers(pkt);

    auto outcome = net::parse_packet(pkt);
    if (outcome.ok()) ds.parsed[i] = *outcome.parsed;
  }
}

}  // namespace sugar::dataset
