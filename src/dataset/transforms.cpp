#include "dataset/transforms.h"

#include <random>

#include "net/mutate.h"

namespace sugar::dataset {

void apply_ablation(PacketDataset& ds, const AblationSpec& spec, std::uint64_t seed) {
  if (!spec.any()) return;
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < ds.packets.size(); ++i) {
    net::Packet& pkt = ds.packets[i];
    if (spec.randomize_seq_ack) net::randomize_seq_ack(pkt, rng);
    if (spec.randomize_tstamp) net::randomize_tcp_timestamp(pkt, rng);
    if (spec.zero_ip) net::zero_ip_addresses(pkt);
    if (spec.randomize_ip) net::randomize_ip_addresses(pkt, rng);
    if (spec.zero_ports) net::zero_ports(pkt);
    if (spec.zero_payload) net::zero_payload(pkt);
    if (spec.strip_payload) net::strip_payload(pkt);
    if (spec.zero_header) net::zero_headers(pkt);

    auto outcome = net::parse_packet(pkt);
    if (outcome.ok()) ds.parsed[i] = *outcome.parsed;
  }
}

std::string PerturbSpec::tag() const {
  if (!any()) return "none";
  return "ttl" + std::to_string(ttl_jitter) + ".win" + std::to_string(window_jitter) +
         ".mss" + std::to_string(mss_jitter);
}

void apply_perturbation(PacketDataset& ds, const PerturbSpec& spec,
                        std::uint64_t seed) {
  if (!spec.any()) return;
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < ds.packets.size(); ++i) {
    net::Packet& pkt = ds.packets[i];
    if (spec.ttl_jitter > 0) net::jitter_ttl(pkt, spec.ttl_jitter, rng);
    if (spec.window_jitter > 0) net::jitter_tcp_window(pkt, spec.window_jitter, rng);
    if (spec.mss_jitter > 0) net::jitter_tcp_mss(pkt, spec.mss_jitter, rng);

    auto outcome = net::parse_packet(pkt);
    if (outcome.ok()) ds.parsed[i] = *outcome.parsed;
  }
}

}  // namespace sugar::dataset
