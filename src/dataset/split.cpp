#include "dataset/split.h"

#include "core/trace.h"

#include <algorithm>
#include <numeric>
#include <random>
#include <unordered_map>

namespace sugar::dataset {

std::string to_string(SplitPolicy p) {
  return p == SplitPolicy::PerPacket ? "per-packet" : "per-flow";
}

SplitIndices split_dataset(const PacketDataset& ds, const SplitOptions& opts) {
  SUGAR_TRACE_SPAN("dataset.split");
  std::mt19937_64 rng(opts.seed);
  SplitIndices out;

  if (opts.policy == SplitPolicy::PerPacket) {
    // Random split of each class's packets — flows straddle the boundary.
    std::unordered_map<int, std::vector<std::size_t>> by_class;
    for (std::size_t i = 0; i < ds.size(); ++i) by_class[ds.label[i]].push_back(i);
    for (auto& [cls, idx] : by_class) {
      std::shuffle(idx.begin(), idx.end(), rng);
      std::size_t n_train =
          static_cast<std::size_t>(opts.train_fraction * static_cast<double>(idx.size()));
      for (std::size_t i = 0; i < idx.size(); ++i)
        (i < n_train ? out.train : out.test).push_back(idx[i]);
    }
  } else {
    // Per-flow: assign whole flows. When balance_long_flows is set, flows
    // are dealt largest-first in a round-robin-ish greedy that keeps the
    // packet mass of each side near the target fraction.
    auto flows = ds.flows();
    auto flow_labels = ds.flow_labels();
    std::unordered_map<int, std::vector<std::size_t>> flows_by_class;
    for (std::size_t f = 0; f < flows.size(); ++f)
      if (!flows[f].empty()) flows_by_class[flow_labels[f]].push_back(f);

    for (auto& [cls, fidx] : flows_by_class) {
      std::shuffle(fidx.begin(), fidx.end(), rng);
      if (opts.balance_long_flows) {
        std::stable_sort(fidx.begin(), fidx.end(),
                         [&](std::size_t a, std::size_t b) {
                           return flows[a].size() > flows[b].size();
                         });
        std::size_t total = 0;
        for (std::size_t f : fidx) total += flows[f].size();
        double target_train = opts.train_fraction * static_cast<double>(total);
        std::size_t in_train = 0, assigned = 0;
        for (std::size_t f : fidx) {
          // Greedy: put the flow where the deficit is largest.
          double want_train = target_train - static_cast<double>(in_train);
          double want_test = (static_cast<double>(total) - target_train) -
                             static_cast<double>(assigned - in_train);
          bool to_train = want_train >= want_test;
          for (std::size_t i : flows[f]) (to_train ? out.train : out.test).push_back(i);
          if (to_train) in_train += flows[f].size();
          assigned += flows[f].size();
        }
      } else {
        std::size_t n_train = static_cast<std::size_t>(
            opts.train_fraction * static_cast<double>(fidx.size()));
        for (std::size_t i = 0; i < fidx.size(); ++i)
          for (std::size_t p : flows[fidx[i]])
            (i < n_train ? out.train : out.test).push_back(p);
      }
    }
  }
  std::sort(out.train.begin(), out.train.end());
  std::sort(out.test.begin(), out.test.end());
  return out;
}

std::vector<std::size_t> balance_train(const PacketDataset& ds,
                                       const std::vector<std::size_t>& train,
                                       std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::unordered_map<int, std::vector<std::size_t>> by_class;
  for (std::size_t i : train) by_class[ds.label[i]].push_back(i);
  if (by_class.empty()) return {};
  std::size_t minority = SIZE_MAX;
  for (const auto& [cls, idx] : by_class) minority = std::min(minority, idx.size());

  std::vector<std::size_t> out;
  out.reserve(minority * by_class.size());
  for (auto& [cls, idx] : by_class) {
    std::shuffle(idx.begin(), idx.end(), rng);
    out.insert(out.end(), idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(minority));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::size_t> stratified_sample(const PacketDataset& ds,
                                           const std::vector<std::size_t>& indices,
                                           double fraction, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::unordered_map<int, std::vector<std::size_t>> by_class;
  for (std::size_t i : indices) by_class[ds.label[i]].push_back(i);
  std::vector<std::size_t> out;
  for (auto& [cls, idx] : by_class) {
    std::shuffle(idx.begin(), idx.end(), rng);
    std::size_t n = std::max<std::size_t>(
        1, static_cast<std::size_t>(fraction * static_cast<double>(idx.size())));
    out.insert(out.end(), idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(std::min(n, idx.size())));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::size_t> cap_flow_length(const PacketDataset& ds,
                                         const std::vector<std::size_t>& indices,
                                         std::size_t max_per_flow, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::unordered_map<int, std::vector<std::size_t>> by_flow;
  for (std::size_t i : indices) by_flow[ds.flow_id[i]].push_back(i);
  std::vector<std::size_t> out;
  for (auto& [f, idx] : by_flow) {
    if (idx.size() > max_per_flow) {
      std::shuffle(idx.begin(), idx.end(), rng);
      idx.resize(max_per_flow);
    }
    out.insert(out.end(), idx.begin(), idx.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<SplitIndices> kfold(const PacketDataset& ds,
                                const std::vector<std::size_t>& train, int k,
                                SplitPolicy policy, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<int> fold_of_packet(ds.size(), -1);

  if (policy == SplitPolicy::PerPacket) {
    std::vector<std::size_t> shuffled = train;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    for (std::size_t i = 0; i < shuffled.size(); ++i)
      fold_of_packet[shuffled[i]] = static_cast<int>(i % static_cast<std::size_t>(k));
  } else {
    // Flow-consistent folds.
    std::unordered_map<int, int> fold_of_flow;
    std::vector<int> flow_ids;
    for (std::size_t i : train)
      if (fold_of_flow.emplace(ds.flow_id[i], -1).second)
        flow_ids.push_back(ds.flow_id[i]);
    std::shuffle(flow_ids.begin(), flow_ids.end(), rng);
    for (std::size_t i = 0; i < flow_ids.size(); ++i)
      fold_of_flow[flow_ids[i]] = static_cast<int>(i % static_cast<std::size_t>(k));
    for (std::size_t i : train) fold_of_packet[i] = fold_of_flow[ds.flow_id[i]];
  }

  std::vector<SplitIndices> folds(static_cast<std::size_t>(k));
  for (std::size_t i : train) {
    int f = fold_of_packet[i];
    for (int j = 0; j < k; ++j)
      (j == f ? folds[static_cast<std::size_t>(j)].test
              : folds[static_cast<std::size_t>(j)].train)
          .push_back(i);
  }
  return folds;
}

}  // namespace sugar::dataset
