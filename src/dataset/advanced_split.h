// Advanced splitting policies the paper names but leaves as future work
// (§4.1): per-client, per-time and per-session splits. Each stresses a
// different generalization axis — to unseen hosts, to later traffic, and to
// whole capture sessions. All are flow-consistent (they subsume the
// per-flow guarantee) and are therefore drop-in upgrades of the honest
// split.
#pragma once

#include "dataset/split.h"

namespace sugar::dataset {

enum class AdvancedSplitPolicy {
  PerClient,   // all flows of one client IP land on one side
  PerTime,     // train on the earliest traffic, test on the latest
  PerSession,  // contiguous capture windows assigned as blocks
};

std::string to_string(AdvancedSplitPolicy p);

struct AdvancedSplitOptions {
  AdvancedSplitPolicy policy = AdvancedSplitPolicy::PerClient;
  double train_fraction = 0.875;
  std::uint64_t seed = 7;
  /// PerSession: number of contiguous time windows the capture is cut into.
  int sessions = 8;
};

/// Splits a dataset under the chosen advanced policy. All policies keep
/// flows whole; PerTime additionally guarantees max(train ts) <= min(test
/// ts) at flow granularity (by flow start time).
SplitIndices advanced_split(const PacketDataset& ds,
                            const AdvancedSplitOptions& opts);

/// Client identity of a flow: the endpoint inside the capture's client
/// subnets (192.168/16 or 10/8); falls back to the lexicographically
/// smaller endpoint when neither side is private.
net::IpAddress flow_client(const PacketDataset& ds, const std::vector<std::size_t>& flow);

}  // namespace sugar::dataset
