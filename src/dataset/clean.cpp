#include "dataset/clean.h"

#include "core/trace.h"

#include <map>
#include <sstream>
#include <unordered_map>

#include "net/parser.h"

namespace sugar::dataset {

std::size_t CleaningReport::removed_spurious_total() const {
  std::size_t n = 0;
  for (std::size_t i = 1; i < removed_by_category.size(); ++i)
    n += removed_by_category[i];
  return n;
}

double CleaningReport::removed_spurious_fraction() const {
  return total_packets == 0
             ? 0.0
             : static_cast<double>(removed_spurious_total()) /
                   static_cast<double>(total_packets);
}

double CleaningReport::malformed_fraction() const {
  return total_packets == 0 ? 0.0
                            : static_cast<double>(removed_malformed) /
                                  static_cast<double>(total_packets);
}

std::string CleaningReport::to_markdown() const {
  std::ostringstream os;
  os << "| Category | Removed | % |\n|---|---|---|\n";
  for (std::size_t i = 1; i < removed_by_category.size(); ++i) {
    if (removed_by_category[i] == 0) continue;
    double pct = total_packets
                     ? 100.0 * static_cast<double>(removed_by_category[i]) /
                           static_cast<double>(total_packets)
                     : 0.0;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f%%", pct);
    os << "| " << net::to_string(static_cast<net::SpuriousCategory>(i)) << " | "
       << removed_by_category[i] << " | " << buf << " |\n";
  }
  if (removed_malformed > 0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f%%", 100.0 * malformed_fraction());
    os << "| malformed | " << removed_malformed << " | " << buf << " |\n";
    for (std::size_t i = 0; i < malformed_by_error.size(); ++i) {
      if (malformed_by_error[i] == 0) continue;
      os << "| &nbsp;&nbsp;" << net::to_string(static_cast<net::ParseError>(i))
         << " | " << malformed_by_error[i] << " | |\n";
    }
  }
  return os.str();
}

CleaningReport clean_trace(trafficgen::GeneratedTrace& trace,
                           const CleaningOptions& opts) {
  SUGAR_TRACE_SPAN("dataset.clean_trace");
  CleaningReport report;
  report.dataset_name = trace.dataset_name;
  report.total_packets = trace.packets.size();
  SUGAR_TRACE_COUNT("clean.packets_in", trace.packets.size());
  if (core::trace::enabled()) {
    std::uint64_t bytes_in = 0;
    for (const auto& p : trace.packets) bytes_in += p.data.size();
    SUGAR_TRACE_COUNT("clean.bytes_parsed", bytes_in);
  }

  std::vector<bool> keep(trace.packets.size(), true);

  // --- Malformed-frame filter (always on: unparseable bytes can't be
  // featurized, and hiding them inside a protocol category would make
  // ingestion damage invisible in the census) and the extraneous-protocol
  // filter (the recommended one).
  for (std::size_t i = 0; i < trace.packets.size(); ++i) {
    auto outcome = net::parse_packet(trace.packets[i]);
    if (!outcome.ok()) {
      keep[i] = false;
      ++report.removed_malformed;
      ++report.malformed_by_error[static_cast<std::size_t>(*outcome.error)];
      continue;
    }
    if (!opts.filter_extraneous) continue;
    net::SpuriousCategory cat = net::classify_spurious(*outcome.parsed);
    if (cat != net::SpuriousCategory::None) {
      keep[i] = false;
      ++report.removed_by_category[static_cast<std::size_t>(cat)];
    }
  }

  // --- Minimum packet size (ET-BERT-style; discouraged).
  if (opts.min_packet_bytes > 0) {
    for (std::size_t i = 0; i < trace.packets.size(); ++i) {
      if (keep[i] && trace.packets[i].data.size() < opts.min_packet_bytes) {
        keep[i] = false;
        ++report.removed_min_packet_size;
      }
    }
  }

  // --- Minimum flow length (TrafficFormer/netFound-style; discouraged).
  if (opts.min_flow_packets > 0) {
    std::unordered_map<int, std::size_t> flow_size;
    for (std::size_t i = 0; i < trace.packets.size(); ++i)
      if (keep[i] && trace.flow_of[i] >= 0) ++flow_size[trace.flow_of[i]];
    for (std::size_t i = 0; i < trace.packets.size(); ++i) {
      if (keep[i] && trace.flow_of[i] >= 0 &&
          flow_size[trace.flow_of[i]] < opts.min_flow_packets) {
        keep[i] = false;
        ++report.removed_short_flows;
      }
    }
  }

  // --- Class-support caps (ET-BERT-style; discouraged).
  if (opts.max_packets_per_class > 0 || opts.min_flows_per_class > 0) {
    std::unordered_map<int, std::size_t> class_count;
    std::map<std::pair<int, int>, bool> class_flows;  // (class, flow)
    for (std::size_t i = 0; i < trace.packets.size(); ++i) {
      if (!keep[i] || trace.labels[i].cls < 0) continue;
      class_flows[{trace.labels[i].cls, trace.flow_of[i]}] = true;
    }
    std::unordered_map<int, std::size_t> flows_per_class;
    for (const auto& [key, _] : class_flows) ++flows_per_class[key.first];

    for (std::size_t i = 0; i < trace.packets.size(); ++i) {
      if (!keep[i] || trace.labels[i].cls < 0) continue;
      int cls = trace.labels[i].cls;
      if (opts.min_flows_per_class > 0 &&
          flows_per_class[cls] < opts.min_flows_per_class) {
        keep[i] = false;
        ++report.removed_class_support;
        continue;
      }
      if (opts.max_packets_per_class > 0) {
        if (class_count[cls] >= opts.max_packets_per_class) {
          keep[i] = false;
          ++report.removed_class_support;
          continue;
        }
        ++class_count[cls];
      }
    }
  }

  SUGAR_TRACE_COUNT("clean.malformed_frames", report.removed_malformed);
  SUGAR_TRACE_COUNT("clean.spurious_removed", report.removed_spurious_total());

  // --- Compact in place.
  std::size_t w = 0;
  for (std::size_t i = 0; i < trace.packets.size(); ++i) {
    if (!keep[i]) continue;
    if (w != i) {
      trace.packets[w] = std::move(trace.packets[i]);
      trace.labels[w] = trace.labels[i];
      trace.flow_of[w] = trace.flow_of[i];
    }
    ++w;
  }
  trace.packets.resize(w);
  trace.labels.resize(w);
  trace.flow_of.resize(w);
  return report;
}

}  // namespace sugar::dataset
