#include "dataset/task.h"

#include <unordered_map>

namespace sugar::dataset {

std::string to_string(TaskId t) {
  switch (t) {
    case TaskId::VpnBinary: return "VPN-binary";
    case TaskId::VpnService: return "VPN-service";
    case TaskId::VpnApp: return "VPN-app";
    case TaskId::UstcBinary: return "USTC-binary";
    case TaskId::UstcApp: return "USTC-app";
    case TaskId::Tls120: return "TLS-120";
  }
  return "?";
}

SourceDataset source_of(TaskId t) {
  switch (t) {
    case TaskId::VpnBinary:
    case TaskId::VpnService:
    case TaskId::VpnApp:
      return SourceDataset::IscxVpn;
    case TaskId::UstcBinary:
    case TaskId::UstcApp:
      return SourceDataset::UstcTfc;
    case TaskId::Tls120:
      return SourceDataset::CstnTls;
  }
  return SourceDataset::CstnTls;
}

std::vector<std::vector<std::size_t>> PacketDataset::flows() const {
  int max_id = -1;
  for (int f : flow_id) max_id = std::max(max_id, f);
  std::vector<std::vector<std::size_t>> out(static_cast<std::size_t>(max_id + 1));
  for (std::size_t i = 0; i < flow_id.size(); ++i)
    out[static_cast<std::size_t>(flow_id[i])].push_back(i);
  return out;
}

std::vector<int> PacketDataset::flow_labels() const {
  auto fl = flows();
  std::vector<int> out(fl.size(), -1);
  for (std::size_t f = 0; f < fl.size(); ++f)
    if (!fl[f].empty()) out[f] = label[fl[f].front()];
  return out;
}

PacketDataset PacketDataset::subset(const std::vector<std::size_t>& indices) const {
  PacketDataset out;
  out.task_name = task_name;
  out.num_classes = num_classes;
  out.class_names = class_names;
  out.packets.reserve(indices.size());
  for (std::size_t i : indices) {
    out.packets.push_back(packets[i]);
    out.parsed.push_back(parsed[i]);
    out.label.push_back(label[i]);
    out.flow_id.push_back(flow_id[i]);
  }
  return out;
}

PacketDataset make_task_dataset(const trafficgen::GeneratedTrace& trace, TaskId task) {
  PacketDataset out;
  out.task_name = to_string(task);

  auto label_of = [&](std::size_t i) -> int {
    const auto& l = trace.labels[i];
    switch (task) {
      case TaskId::VpnBinary: return l.binary;
      case TaskId::VpnService: return l.service;
      case TaskId::VpnApp: return l.cls;
      case TaskId::UstcBinary: return l.binary;
      case TaskId::UstcApp: return l.cls;
      case TaskId::Tls120: return l.cls;
    }
    return -1;
  };

  switch (task) {
    case TaskId::VpnBinary:
      out.class_names = {"non-VPN", "VPN"};
      break;
    case TaskId::VpnService:
      out.class_names = trace.service_names;
      break;
    case TaskId::UstcBinary:
      out.class_names = {"benign", "malware"};
      break;
    case TaskId::VpnApp:
    case TaskId::UstcApp:
    case TaskId::Tls120:
      out.class_names = trace.class_names;
      break;
  }

  net::FlowTable table;
  std::vector<int> raw_flow;
  for (std::size_t i = 0; i < trace.packets.size(); ++i) {
    int lbl = label_of(i);
    if (lbl < 0) continue;  // unlabeled / spurious packet: not part of the task
    auto outcome = net::parse_packet(trace.packets[i]);
    if (!outcome.ok()) continue;
    int fid = table.add(out.packets.size(), trace.packets[i]);
    if (fid < 0) continue;  // keyless packets cannot join a flow task
    out.packets.push_back(trace.packets[i]);
    out.parsed.push_back(*outcome.parsed);
    out.label.push_back(lbl);
    raw_flow.push_back(fid);
  }
  out.flow_id = std::move(raw_flow);

  int max_label = -1;
  for (int l : out.label) max_label = std::max(max_label, l);
  out.num_classes = std::max<int>(max_label + 1, static_cast<int>(out.class_names.size()));
  return out;
}

PacketDataset make_unlabeled_dataset(const trafficgen::GeneratedTrace& trace) {
  PacketDataset out;
  out.task_name = "unlabeled:" + trace.dataset_name;
  out.num_classes = 1;
  out.class_names = {"unlabeled"};
  net::FlowTable table;
  for (const auto& pkt : trace.packets) {
    auto outcome = net::parse_packet(pkt);
    if (!outcome.ok()) continue;
    int fid = table.add(out.packets.size(), pkt);
    out.packets.push_back(pkt);
    out.parsed.push_back(*outcome.parsed);
    out.label.push_back(0);
    out.flow_id.push_back(fid < 0 ? 0 : fid);
  }
  return out;
}

}  // namespace sugar::dataset
