#include "dataset/audit.h"

#include "core/trace.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace sugar::dataset {

std::string LeakageReport::to_string() const {
  std::ostringstream os;
  os << "flows straddling train/test: " << straddling_flows << "/" << total_flows
     << "; leaked test packets: " << leaked_test_packets << "/" << total_test_packets
     << "; implicit-id matches: " << implicit_id_matches
     << (clean() ? " [CLEAN]" : " [LEAKY]");
  return os.str();
}

LeakageReport audit_split(const PacketDataset& ds, const SplitIndices& split,
                          const AuditOptions& opts) {
  SUGAR_TRACE_SPAN("dataset.audit_split");
  LeakageReport report;

  // --- Explicit leak: flow membership across the boundary.
  std::unordered_set<int> train_flows, test_flows;
  for (std::size_t i : split.train) train_flows.insert(ds.flow_id[i]);
  for (std::size_t i : split.test) test_flows.insert(ds.flow_id[i]);

  std::unordered_set<int> all_flows = train_flows;
  all_flows.insert(test_flows.begin(), test_flows.end());
  report.total_flows = all_flows.size();
  for (int f : test_flows)
    if (train_flows.count(f)) ++report.straddling_flows;

  report.total_test_packets = split.test.size();
  for (std::size_t i : split.test)
    if (train_flows.count(ds.flow_id[i])) ++report.leaked_test_packets;

  // --- Implicit leak: joint (SeqNo, AckNo) proximity across the boundary.
  // Both numbers are drawn at random per flow and advance slowly, so two
  // packets agreeing on *both* within the window almost surely share a
  // flow: the two-dimensional match keeps the coincidence rate near zero
  // while catching exactly the shortcut the per-packet split exposes.
  // The audit deliberately does not consult ds.flow_id — it detects the
  // leak from wire bytes alone, as a deployed model would see it.
  // SYN packets (ack == 0) are excluded: every flow's SYN shares ack 0, so
  // two random SYNs would "match" whenever their seqs collide within the
  // window — a false positive unrelated to flow identity.
  std::unordered_map<std::uint32_t, std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      train_seq_buckets;
  for (std::size_t i : split.train) {
    const auto& p = ds.parsed[i];
    if (!p.tcp || p.tcp->seq == 0 || p.tcp->ack == 0) continue;
    train_seq_buckets[p.tcp->seq / opts.seq_window].emplace_back(p.tcp->seq,
                                                                 p.tcp->ack);
  }

  auto close = [&](std::uint32_t a, std::uint32_t b) {
    std::uint32_t d = a > b ? a - b : b - a;
    return d < opts.seq_window;
  };

  std::size_t probed = 0;
  for (std::size_t i : split.test) {
    if (probed >= opts.max_test_probe) break;
    const auto& p = ds.parsed[i];
    if (!p.tcp || p.tcp->seq == 0 || p.tcp->ack == 0) continue;
    ++probed;
    std::uint32_t b = p.tcp->seq / opts.seq_window;
    bool hit = false;
    for (std::uint32_t nb : {b == 0 ? b : b - 1, b, b + 1}) {
      auto it = train_seq_buckets.find(nb);
      if (it == train_seq_buckets.end()) continue;
      for (auto [s, a] : it->second) {
        if (close(s, p.tcp->seq) && close(a, p.tcp->ack)) {
          hit = true;
          break;
        }
      }
      if (hit) break;
    }
    if (hit) ++report.implicit_id_matches;
  }
  SUGAR_TRACE_COUNT("audit.test_probes", probed);
  SUGAR_TRACE_COUNT("audit.implicit_matches", report.implicit_id_matches);
  SUGAR_TRACE_COUNT("audit.straddling_flows", report.straddling_flows);
  return report;
}

}  // namespace sugar::dataset
