#include "core/ooc.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "core/io.h"
#include "core/pager.h"
#include "core/runerror.h"
#include "core/trace.h"
#include "dataset/store.h"
#include "ml/binned.h"
#include "ml/forest.h"
#include "ml/metrics.h"
#include "net/parser.h"
#include "net/proto.h"
#include "replearn/featurize.h"
#include "trafficgen/datasets.h"

namespace sugar::core {
namespace {

using dataset::ColumnBlock;
using dataset::ColumnSpec;
using dataset::ColumnType;
using dataset::RowBlockCursor;
using dataset::StoreError;
using dataset::StoreReader;
using dataset::StoreWriter;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

[[noreturn]] void die(const StoreError& err, const std::string& stage) {
  throw RunError(RunErrorKind::kInternal,
                 "ooc " + stage + ": " + dataset::to_string(err.kind) + ": " +
                     err.message);
}

std::unique_ptr<StoreReader> open_or_die(const std::string& path,
                                         const std::string& stage) {
  StoreError err;
  auto r = StoreReader::open(path, &err);
  if (!r) die(err, stage);
  return r;
}

std::uint64_t splitmix(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

OocResult run_ooc_scale(const OocOptions& opts) {
  SUGAR_TRACE_SPAN("core.ooc.run");
  const std::string packets_path = opts.dir + "/ooc_packets.sugc";
  const std::string keep_path = opts.dir + "/ooc_keep.sugc";
  const std::string split_path = opts.dir + "/ooc_split.sugc";
  const std::string train_path = opts.dir + "/ooc_train.sugc";
  const std::string test_path = opts.dir + "/ooc_test.sugc";
  const std::string codes_path = opts.dir + "/ooc_codes.sugc";

  StoreError serr;
  Json timings = Json::object();
  int num_classes = 0;

  // -- Stage 1: generate, chunk by chunk, into the packet store. Each
  // chunk is an independent seeded trace; flow ids get a per-chunk stride
  // so the flow-hash split never merges flows across chunks.
  auto t0 = std::chrono::steady_clock::now();
  std::uint64_t total_bytes = 0;
  {
    StoreWriter w(packets_path,
                  {{"bytes", ColumnType::Bytes, {}},
                   {"ts", ColumnType::U64, {}},
                   {"cls", ColumnType::I32, {}},
                   {"flow", ColumnType::I32, {}}},
                  {.group_rows = opts.group_rows});
    constexpr std::int32_t kFlowStride = 1 << 20;
    for (std::int32_t chunk = 0; w.rows() < opts.target_packets; ++chunk) {
      trafficgen::GenOptions gen;
      gen.seed = splitmix(opts.seed * 0x10001ull + static_cast<std::uint64_t>(chunk));
      gen.flows_per_class = 8;
      gen.spurious_fraction = 0.05;
      trafficgen::GeneratedTrace trace = trafficgen::generate_iscx_vpn(gen);
      num_classes = static_cast<int>(trace.class_names.size());
      for (std::size_t i = 0; i < trace.size(); ++i) {
        w.add_bytes(0, trace.packets[i].data);
        w.add_u64(1, trace.packets[i].ts_usec);
        w.add_i32(2, trace.labels[i].cls);
        w.add_i32(3, trace.flow_of[i] < 0
                         ? -1
                         : trace.flow_of[i] + chunk * kFlowStride);
        total_bytes += trace.packets[i].data.size();
        if (!w.end_row(&serr)) die(serr, "generate");
      }
    }
    if (!w.finalize(&serr)) die(serr, "generate");
  }
  timings.set("generate_s", Json(seconds_since(t0)));

  auto packets = open_or_die(packets_path, "open packets");
  const std::uint64_t rows_generated = packets->rows();

  // -- Stage 2: clean as a selection pass — parse every frame, keep only
  // labelled, non-spurious traffic (the paper's recommended filter). The
  // packet store is never rewritten; survivors are a U8 vector store.
  t0 = std::chrono::steady_clock::now();
  std::uint64_t rows_kept = 0;
  {
    StoreWriter w(keep_path, {{"keep", ColumnType::U8, {}}},
                  {.group_rows = opts.group_rows});
    RowBlockCursor cur(*packets, {0, 2});  // bytes, cls
    std::vector<ColumnBlock> blocks;
    net::Packet pkt;
    while (cur.next(blocks, &serr)) {
      const ColumnBlock& bytes = blocks[0];
      const std::int32_t* cls = blocks[1].as<std::int32_t>();
      for (std::uint32_t i = 0; i < bytes.nrows; ++i) {
        std::uint8_t keep = 0;
        if (cls[i] >= 0) {
          auto span = bytes.bytes_at(i);
          pkt.data.assign(span.begin(), span.end());
          net::ParseOutcome out = net::parse_packet(pkt);
          if (out.ok() &&
              net::classify_spurious(*out.parsed) == net::SpuriousCategory::None)
            keep = 1;
        }
        rows_kept += keep;
        w.add_u8(0, keep);
        if (!w.end_row(&serr)) die(serr, "clean");
      }
    }
    if (serr) die(serr, "clean");
    if (!w.finalize(&serr)) die(serr, "clean");
  }
  timings.set("clean_s", Json(seconds_since(t0)));

  // -- Stage 3: split as a second selection pass — per-flow hash so all of
  // a flow's packets land on one side (the paper's leakage-free protocol).
  t0 = std::chrono::steady_clock::now();
  {
    auto keep = open_or_die(keep_path, "open keep");
    StoreWriter w(split_path, {{"split", ColumnType::U8, {}}},
                  {.group_rows = opts.group_rows});
    RowBlockCursor pcur(*packets, {3});  // flow
    dataset::ColumnCursor kcur(*keep, 0);
    std::vector<ColumnBlock> blocks;
    ColumnBlock kb;
    const auto threshold =
        static_cast<std::uint64_t>(opts.train_fraction * 100.0);
    while (pcur.next(blocks, &serr)) {
      if (!kcur.next(kb, &serr)) break;
      const std::int32_t* flow = blocks[0].as<std::int32_t>();
      for (std::uint32_t i = 0; i < blocks[0].nrows; ++i) {
        std::uint8_t split = 2;  // dropped
        if (kb.data[i] != 0) {
          const std::uint64_t h =
              splitmix(static_cast<std::uint64_t>(flow[i]) ^ (opts.seed << 32));
          split = (h % 100) < threshold ? 0 : 1;
        }
        w.add_u8(0, split);
        if (!w.end_row(&serr)) die(serr, "split");
      }
    }
    if (serr) die(serr, "split");
    if (!w.finalize(&serr)) die(serr, "split");
  }
  timings.set("split_s", Json(seconds_since(t0)));

  // -- Stage 4: featurize kept rows into train/test F32 stores (header
  // features + label column).
  t0 = std::chrono::steady_clock::now();
  const replearn::HeaderFeatureSpec fspec;
  const std::vector<std::string> fnames = replearn::header_feature_names(fspec);
  const std::size_t nfeat = fnames.size();
  std::uint64_t train_rows = 0, test_rows = 0;
  {
    std::vector<ColumnSpec> fschema;
    for (const auto& name : fnames) fschema.push_back({name, ColumnType::F32, {}});
    fschema.push_back({"y", ColumnType::I32, {}});
    StoreWriter wtrain(train_path, fschema, {.group_rows = opts.group_rows});
    StoreWriter wtest(test_path, fschema, {.group_rows = opts.group_rows});

    auto split = open_or_die(split_path, "open split");
    RowBlockCursor pcur(*packets, {0, 1, 2});  // bytes, ts, cls
    dataset::ColumnCursor scur(*split, 0);
    std::vector<ColumnBlock> blocks;
    ColumnBlock sb;
    std::vector<float> feat(nfeat);
    net::Packet pkt;
    while (pcur.next(blocks, &serr)) {
      if (!scur.next(sb, &serr)) break;
      const ColumnBlock& bytes = blocks[0];
      const std::uint64_t* ts = blocks[1].as<std::uint64_t>();
      const std::int32_t* cls = blocks[2].as<std::int32_t>();
      for (std::uint32_t i = 0; i < bytes.nrows; ++i) {
        if (sb.data[i] > 1) continue;
        auto span = bytes.bytes_at(i);
        pkt.data.assign(span.begin(), span.end());
        pkt.ts_usec = ts[i];
        net::ParseOutcome out = net::parse_packet(pkt);
        if (!out.ok()) continue;  // clean already vetted; belt and braces
        replearn::extract_header_features(pkt, *out.parsed, fspec, feat.data());
        StoreWriter& w = sb.data[i] == 0 ? wtrain : wtest;
        for (std::size_t f = 0; f < nfeat; ++f)
          w.add_f32(f, feat[f]);
        w.add_i32(nfeat, cls[i]);
        if (!w.end_row(&serr)) die(serr, "featurize");
        (sb.data[i] == 0 ? train_rows : test_rows) += 1;
      }
    }
    if (serr) die(serr, "featurize");
    if (!wtrain.finalize(&serr)) die(serr, "featurize");
    if (!wtest.finalize(&serr)) die(serr, "featurize");
  }
  timings.set("featurize_s", Json(seconds_since(t0)));
  if (train_rows == 0 || test_rows == 0)
    throw RunError(RunErrorKind::kEmptyPartition,
                   "ooc split left train=" + std::to_string(train_rows) +
                       " test=" + std::to_string(test_rows));

  // -- Stage 5: quantize the train features. Pass 1 streams every column
  // through the SAME ColumnSketch BinnedMatrix uses (bit-identical cuts),
  // pass 2 rewrites rows as uint8 codes.
  t0 = std::chrono::steady_clock::now();
  auto train = open_or_die(train_path, "open train");
  std::vector<std::vector<float>> cuts(nfeat);
  {
    std::vector<ml::ColumnSketch> sketches;
    sketches.reserve(nfeat);
    for (std::size_t f = 0; f < nfeat; ++f) sketches.emplace_back(opts.bins);
    std::vector<std::size_t> fcols(nfeat);
    for (std::size_t f = 0; f < nfeat; ++f) fcols[f] = f;
    RowBlockCursor cur(*train, fcols);
    std::vector<ColumnBlock> blocks;
    while (cur.next(blocks, &serr)) {
      for (std::size_t f = 0; f < nfeat; ++f) {
        const float* v = blocks[f].as<float>();
        for (std::uint32_t i = 0; i < blocks[f].nrows; ++i)
          sketches[f].add(v[i]);
      }
    }
    if (serr) die(serr, "quantize");
    for (std::size_t f = 0; f < nfeat; ++f) cuts[f] = sketches[f].finalize();

    std::vector<ColumnSpec> cschema;
    for (std::size_t f = 0; f < nfeat; ++f)
      cschema.push_back({fnames[f], ColumnType::U8, cuts[f]});
    StoreWriter w(codes_path, cschema,
                  {.group_rows = opts.group_rows, .bins = opts.bins});
    RowBlockCursor cur2(*train, fcols);
    while (cur2.next(blocks, &serr)) {
      for (std::uint32_t i = 0; i < blocks[0].nrows; ++i) {
        for (std::size_t f = 0; f < nfeat; ++f)
          w.add_u8(f, static_cast<std::uint8_t>(
                          ml::quantize_bin(cuts[f], blocks[f].as<float>()[i])));
        if (!w.end_row(&serr)) die(serr, "quantize");
      }
    }
    if (serr) die(serr, "quantize");
    if (!w.finalize(&serr)) die(serr, "quantize");
  }
  timings.set("quantize_s", Json(seconds_since(t0)));

  // Labels are the one resident array (4 bytes/row — tiny next to the
  // packet/feature stores the pipeline refuses to materialize).
  std::vector<int> y_train;
  y_train.reserve(train_rows);
  {
    dataset::ColumnCursor ycur(*train, nfeat);
    ColumnBlock yb;
    while (ycur.next(yb, &serr))
      for (std::uint32_t i = 0; i < yb.nrows; ++i)
        y_train.push_back(yb.as<std::int32_t>()[i]);
    if (serr) die(serr, "labels");
  }

  // -- Stage 6: fit over the paged code source. Serial trees, feature-
  // parallel accumulation; working set = page cache budget.
  t0 = std::chrono::steady_clock::now();
  auto codes = open_or_die(codes_path, "open codes");
  std::vector<std::size_t> code_cols(nfeat);
  for (std::size_t f = 0; f < nfeat; ++f) code_cols[f] = f;
  dataset::PagedCodeSource src(*codes, code_cols);
  ml::ForestConfig fcfg;
  fcfg.num_trees = opts.forest_trees;
  fcfg.tree.max_depth = opts.max_depth;
  fcfg.tree.features_per_split = opts.features_per_split;
  fcfg.tree.histogram_bins = opts.bins;
  fcfg.seed = opts.seed;
  ml::RandomForest forest(fcfg);
  forest.fit_binned(src, y_train, num_classes);
  const double fit_s = seconds_since(t0);
  timings.set("fit_s", Json(fit_s));

  // -- Stage 7: streamed evaluation — one float row at a time off the
  // test store, majority vote over the trees.
  t0 = std::chrono::steady_clock::now();
  auto test = open_or_die(test_path, "open test");
  std::vector<int> y_test, y_pred;
  y_test.reserve(test_rows);
  y_pred.reserve(test_rows);
  {
    std::vector<std::size_t> tcols(nfeat + 1);
    for (std::size_t f = 0; f <= nfeat; ++f) tcols[f] = f;
    RowBlockCursor cur(*test, tcols);
    std::vector<ColumnBlock> blocks;
    std::vector<float> row(nfeat);
    std::vector<int> votes(static_cast<std::size_t>(num_classes));
    while (cur.next(blocks, &serr)) {
      for (std::uint32_t i = 0; i < blocks[0].nrows; ++i) {
        for (std::size_t f = 0; f < nfeat; ++f)
          row[f] = blocks[f].as<float>()[i];
        std::fill(votes.begin(), votes.end(), 0);
        for (const auto& tree : forest.trees())
          ++votes[static_cast<std::size_t>(tree.predict_class(row.data()))];
        y_pred.push_back(static_cast<int>(
            std::max_element(votes.begin(), votes.end()) - votes.begin()));
        y_test.push_back(blocks[nfeat].as<std::int32_t>()[i]);
      }
    }
    if (serr) die(serr, "evaluate");
  }
  timings.set("evaluate_s", Json(seconds_since(t0)));
  ml::Metrics metrics = ml::evaluate(y_test, y_pred, num_classes);

  // Digest: the predictions are a pure function of (scale, seed) — any
  // thread count, page size or cache budget must reproduce them exactly.
  std::string pred_bytes(reinterpret_cast<const char*>(y_pred.data()),
                         y_pred.size() * sizeof(int));
  const std::uint64_t digest = fnv1a64(pred_bytes);

  const std::uint64_t store_bytes = packets->payload_bytes() +
                                    train->payload_bytes() +
                                    test->payload_bytes() +
                                    codes->payload_bytes();
  const PageCache::Stats cache = PageCache::global().stats();
  const double total_s = [&] {
    double s = 0;
    for (const auto& [k, v] : timings.members()) s += v.number_or(0);
    return s;
  }();

  OocResult res;
  res.digest = digest;
  res.json.set("scale", Json(static_cast<double>(opts.target_packets)))
      .set("rows_generated", Json(static_cast<double>(rows_generated)))
      .set("rows_kept", Json(static_cast<double>(rows_kept)))
      .set("train_rows", Json(static_cast<double>(train_rows)))
      .set("test_rows", Json(static_cast<double>(test_rows)))
      .set("num_classes", Json(num_classes))
      .set("accuracy", Json(metrics.accuracy))
      .set("macro_f1", Json(metrics.macro_f1))
      .set("digest", Json(hex64(digest)))
      .set("rows_per_sec",
           Json(total_s > 0 ? static_cast<double>(rows_generated) / total_s : 0.0))
      .set("fit_rows_per_sec",
           Json(fit_s > 0 ? static_cast<double>(train_rows) / fit_s : 0.0))
      .set("store_bytes", Json(static_cast<double>(store_bytes)))
      .set("packet_bytes", Json(static_cast<double>(total_bytes)))
      .set("page_cache_budget_bytes",
           Json(static_cast<double>(PageCache::global().budget_bytes())))
      .set("page_cache_hit_rate", Json(cache.hit_rate()))
      .set("page_cache_evictions", Json(static_cast<double>(cache.evictions)))
      .set("page_cache_prefetch_issued",
           Json(static_cast<double>(cache.prefetch_issued)))
      .set("peak_rss_bytes", Json(static_cast<double>(peak_rss_bytes())))
      .set("timings", timings);

  if (!opts.keep_files) {
    Io& io = real_io();
    for (const auto& p : {packets_path, keep_path, split_path, train_path,
                          test_path, codes_path})
      io.remove_file(p);
  }
  return res;
}

}  // namespace sugar::core
