// Injectable filesystem shim. Everything that persists state through a
// crash boundary — the supervisor's artifacts and journal, the serve
// engine's snapshots — goes through an Io instance instead of raw stdio, so
// the chaos harness can interpose disk-full, short-write and rename faults
// without touching a real filesystem limit. The default implementation is
// the real filesystem; real_io() is the process-wide instance used when a
// caller passes no override.
#pragma once

#include <string>
#include <string_view>

namespace sugar::core {

/// Filesystem operations behind the crash-safety paths. The base class IS
/// the real implementation; fault-injecting shims subclass and wrap it.
class Io {
 public:
  virtual ~Io() = default;

  /// Writes `content` to `path`, truncating. False (with `error` set when
  /// non-null) on open failure or short write; a short write may leave a
  /// partial file behind — exactly why callers write temp-then-rename.
  virtual bool write_file(const std::string& path, std::string_view content,
                          std::string* error);

  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual bool rename_file(const std::string& from, const std::string& to,
                           std::string* error);

  /// Removes a file; missing files are not an error.
  virtual void remove_file(const std::string& path);

  /// Reads the whole file into `out`. False (with `error`) when unreadable.
  virtual bool read_file(const std::string& path, std::string& out,
                         std::string* error);

  /// Appends `content` to `path` (creating it when absent) — the streaming
  /// primitive behind the SUGC store writer, which emits pages one group at
  /// a time so bounded-memory producers never hold a whole file in RAM.
  /// Same failure semantics as write_file.
  virtual bool append_file(const std::string& path, std::string_view content,
                           std::string* error);

  /// The one temp-then-rename discipline every crash-safe writer shares
  /// (artifacts, serve snapshots, SUGC stores): writes `<path>.tmp`,
  /// renames over `path`. Non-virtual — composed from the virtuals above,
  /// so a fault-injecting subclass (ChaosIo) covers it automatically. On
  /// failure the target is untouched and the temp file removed.
  bool atomic_write(const std::string& path, std::string_view content,
                    std::string* error);

  /// Commit step for streaming writers that built `<path>.tmp` themselves
  /// via append_file: renames it over `path`, removing the temp on failure.
  bool commit_temp(const std::string& path, std::string* error);
};

/// The process-wide real-filesystem instance.
Io& real_io();

}  // namespace sugar::core
