#include "core/pager.h"

#include <sys/resource.h>

#include <algorithm>
#include <cstdlib>
#include <unordered_map>

#include "core/envparse.h"
#include "core/trace.h"

namespace sugar::core {

struct PageCache::Pin::Entry {
  PageKey key;
  std::vector<std::uint8_t> bytes;
  bool ready = false;
  bool failed = false;
  std::string error;
};

const std::uint8_t* PageCache::Pin::data() const {
  return entry_ ? entry_->bytes.data() : nullptr;
}

std::size_t PageCache::Pin::size() const {
  return entry_ ? entry_->bytes.size() : 0;
}

namespace {

std::uint64_t key_hash(PageKey k) {
  // splitmix64 over the packed key — shard assignment and map hashing.
  std::uint64_t z = k.file_id * 0x9E3779B97F4A7C15ull + k.page_no + 1;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

struct KeyHasher {
  std::size_t operator()(PageKey k) const {
    return static_cast<std::size_t>(key_hash(k));
  }
};

}  // namespace

struct PageCache::Shard {
  std::mutex mu;
  std::condition_variable cv;  // wakes waiters on a concurrent load
  std::unordered_map<PageKey, std::shared_ptr<Pin::Entry>, KeyHasher> map;
  /// Most-recent-first LRU order of resident keys.
  std::list<PageKey> lru;
  std::unordered_map<PageKey, std::list<PageKey>::iterator, KeyHasher> lru_pos;
  std::size_t bytes = 0;
  std::size_t budget = 0;
};

PageCache::PageCache(std::size_t budget_bytes, std::size_t shards)
    : budget_(budget_bytes) {
  shards = std::max<std::size_t>(1, shards);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    auto s = std::make_unique<Shard>();
    s->budget = std::max<std::size_t>(1, budget_bytes / shards);
    shards_.push_back(std::move(s));
  }
}

PageCache::~PageCache() {
  {
    std::lock_guard<std::mutex> lock(pf_mu_);
    pf_stop_ = true;
  }
  pf_cv_.notify_all();
  if (pf_thread_.joinable()) pf_thread_.join();
}

PageCache::Shard& PageCache::shard_of(PageKey key) {
  return *shards_[key_hash(key) % shards_.size()];
}

void PageCache::evict_to_budget(Shard& s) {
  // Walk from the LRU tail; entries with live pins (shared_ptr held
  // outside the map) are skipped, everything else is dropped until the
  // shard is back under budget.
  auto it = s.lru.end();
  while (s.bytes > s.budget && it != s.lru.begin()) {
    --it;
    auto mit = s.map.find(*it);
    if (mit == s.map.end()) {
      it = s.lru.erase(it);
      continue;
    }
    if (mit->second.use_count() > 1) continue;  // pinned
    s.bytes -= mit->second->bytes.size();
    s.map.erase(mit);
    s.lru_pos.erase(*it);
    it = s.lru.erase(it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    SUGAR_TRACE_COUNT("pager.evict", 1);
  }
}

bool PageCache::load_into(PageKey key, const Loader& loader, std::string* error,
                          Pin* out_pin) {
  Shard& s = shard_of(key);
  std::unique_lock<std::mutex> lock(s.mu);
  auto it = s.map.find(key);
  if (it != s.map.end()) {
    auto entry = it->second;
    // Another thread is loading this key: wait for its outcome rather than
    // loading twice.
    s.cv.wait(lock, [&] { return entry->ready || entry->failed; });
    if (entry->failed) {
      if (error) *error = entry->error;
      return false;
    }
    auto pos = s.lru_pos.find(key);
    if (pos != s.lru_pos.end())
      s.lru.splice(s.lru.begin(), s.lru, pos->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    SUGAR_TRACE_COUNT("pager.hit", 1);
    if (out_pin) *out_pin = Pin(std::move(entry));
    return true;
  }

  // Miss: reserve the slot, load outside the lock.
  auto entry = std::make_shared<Pin::Entry>();
  entry->key = key;
  s.map.emplace(key, entry);
  misses_.fetch_add(1, std::memory_order_relaxed);
  SUGAR_TRACE_COUNT("pager.miss", 1);
  lock.unlock();

  std::string err;
  const bool ok = loader(entry->bytes, err);

  lock.lock();
  if (!ok) {
    entry->failed = true;
    entry->error = err;
    s.map.erase(key);  // later gets retry
    lock.unlock();
    s.cv.notify_all();
    if (error) *error = err;
    return false;
  }
  entry->ready = true;
  s.bytes += entry->bytes.size();
  s.lru.push_front(key);
  s.lru_pos[key] = s.lru.begin();
  if (out_pin) *out_pin = Pin(entry);
  evict_to_budget(s);
  lock.unlock();
  s.cv.notify_all();
  return true;
}

PageCache::Pin PageCache::get(PageKey key, const Loader& loader,
                              std::string* error) {
  Pin pin;
  load_into(key, loader, error, &pin);
  return pin;
}

void PageCache::prefetch(PageKey key, Loader loader) {
  {
    Shard& s = shard_of(key);
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.map.count(key) != 0) {
      prefetch_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;  // resident or already loading
    }
  }
  {
    std::lock_guard<std::mutex> lock(pf_mu_);
    if (pf_queue_.size() >= kMaxPrefetchQueue) {
      prefetch_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    for (const auto& q : pf_queue_)
      if (q.first == key) {
        prefetch_dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    pf_queue_.emplace_back(key, std::move(loader));
    prefetch_issued_.fetch_add(1, std::memory_order_relaxed);
    inflight_.fetch_add(1, std::memory_order_relaxed);
    SUGAR_TRACE_COUNT("pager.prefetch_issued", 1);
    if (!pf_started_) {
      pf_started_ = true;
      pf_thread_ = std::thread([this] { prefetch_loop(); });
    }
  }
  pf_cv_.notify_one();
}

void PageCache::prefetch_loop() {
  for (;;) {
    std::pair<PageKey, Loader> job;
    {
      std::unique_lock<std::mutex> lock(pf_mu_);
      pf_cv_.wait(lock, [&] { return pf_stop_ || !pf_queue_.empty(); });
      if (pf_stop_ && pf_queue_.empty()) return;
      job = std::move(pf_queue_.front());
      pf_queue_.pop_front();
    }
    // Load through the regular path (dedup + budget accounting); the pin
    // is dropped immediately so the page sits unpinned awaiting its get().
    std::string err;
    if (load_into(job.first, job.second, &err, nullptr))
      prefetch_loaded_.fetch_add(1, std::memory_order_relaxed);
    inflight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void PageCache::drop_file(std::uint64_t file_id) {
  for (auto& sp : shards_) {
    Shard& s = *sp;
    std::lock_guard<std::mutex> lock(s.mu);
    for (auto it = s.map.begin(); it != s.map.end();) {
      if (it->first.file_id == file_id && it->second->ready) {
        s.bytes -= it->second->bytes.size();
        auto pos = s.lru_pos.find(it->first);
        if (pos != s.lru_pos.end()) {
          s.lru.erase(pos->second);
          s.lru_pos.erase(pos);
        }
        it = s.map.erase(it);
      } else {
        ++it;
      }
    }
  }
}

PageCache::Stats PageCache::stats() const {
  Stats st;
  st.hits = hits_.load(std::memory_order_relaxed);
  st.misses = misses_.load(std::memory_order_relaxed);
  st.evictions = evictions_.load(std::memory_order_relaxed);
  st.prefetch_issued = prefetch_issued_.load(std::memory_order_relaxed);
  st.prefetch_loaded = prefetch_loaded_.load(std::memory_order_relaxed);
  st.prefetch_dropped = prefetch_dropped_.load(std::memory_order_relaxed);
  st.inflight = inflight_.load(std::memory_order_relaxed);
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lock(sp->mu);
    st.resident_bytes += sp->bytes;
    st.resident_pages += sp->map.size();
  }
  return st;
}

PageCache& PageCache::global() {
  static PageCache* cache = [] {
    std::size_t mb = 64;
    if (const char* env = std::getenv("SUGAR_PAGE_CACHE_MB")) {
      std::size_t v = 0;
      if (parse_env_number("SUGAR_PAGE_CACHE_MB", env, v) && v > 0) mb = v;
    }
    return new PageCache(mb * 1024 * 1024);
  }();
  return *cache;
}

std::uint64_t next_page_file_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::size_t peak_rss_bytes() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<std::size_t>(ru.ru_maxrss) * 1024;
}

}  // namespace sugar::core
