// Bounded-budget page cache for the out-of-core dataset substrate. Pages
// are opaque byte blobs keyed by (file id, page number); a miss runs the
// caller-supplied loader (pread + CRC verify at the store layer), a hit
// returns the resident bytes. Eviction is sharded LRU under a global byte
// budget (SUGAR_PAGE_CACHE_MB, strict envparse discipline); pinned pages
// are never evicted, so a cursor can hold its current page across a
// compute loop while the rest of the working set turns over.
//
// A single prefetch thread services lookahead hints from iterators: a hint
// enqueues (key, loader); the thread loads the page into the cache
// unpinned so the next sequential get() hits. The thread is started
// lazily on the first hint and joins in the destructor. Hit/miss/evict/
// prefetch counters are kept as internal atomics (always on, cheap) and
// mirrored into core::trace counters when tracing is enabled.
//
// Determinism: the cache only affects WHERE bytes are read from (disk vs
// memory), never their values — loaders must be pure functions of the key.
// Consumers therefore keep the bit-identity contract at any budget, any
// page size and any thread count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace sugar::core {

struct PageKey {
  std::uint64_t file_id = 0;
  std::uint64_t page_no = 0;

  friend bool operator==(const PageKey& a, const PageKey& b) {
    return a.file_id == b.file_id && a.page_no == b.page_no;
  }
};

class PageCache {
 public:
  /// Loader: fill `out` with the page bytes; false + `error` on failure
  /// (I/O error, CRC mismatch). Must be a pure function of the key.
  using Loader = std::function<bool(std::vector<std::uint8_t>& out,
                                    std::string& error)>;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t prefetch_issued = 0;   // hints accepted onto the queue
    std::uint64_t prefetch_loaded = 0;   // pages the prefetch thread loaded
    std::uint64_t prefetch_dropped = 0;  // hints dropped (full queue / dup)
    std::uint64_t inflight = 0;          // prefetches queued or loading now
    std::uint64_t resident_bytes = 0;
    std::uint64_t resident_pages = 0;

    [[nodiscard]] double hit_rate() const {
      const double total = static_cast<double>(hits + misses);
      return total == 0 ? 1.0 : static_cast<double>(hits) / total;
    }
  };

  /// `budget_bytes` bounds resident unpinned bytes across all shards;
  /// pinned pages can push residency above it (counted, never evicted).
  explicit PageCache(std::size_t budget_bytes, std::size_t shards = 8);
  ~PageCache();
  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  /// Pin handle: keeps the page resident while alive. Copyable (shared
  /// refcount); the last copy's destruction unpins.
  class Pin {
   public:
    Pin() = default;
    [[nodiscard]] const std::uint8_t* data() const;  // null when empty
    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] explicit operator bool() const { return entry_ != nullptr; }
    void reset() { entry_.reset(); }

   private:
    friend class PageCache;
    struct Entry;
    explicit Pin(std::shared_ptr<Entry> e) : entry_(std::move(e)) {}
    std::shared_ptr<Entry> entry_;
  };

  /// Hit: pins and returns the resident page. Miss: runs `loader` (outside
  /// the shard lock), inserts, pins. Concurrent misses on one key load
  /// once — latecomers wait. Null Pin + `error` when the loader fails.
  Pin get(PageKey key, const Loader& loader, std::string* error = nullptr);

  /// Lookahead hint: enqueue an async load of `key` so a later get() hits.
  /// Drops silently when the page is resident, already queued, or the
  /// queue is full — hints are an optimization, never a correctness need.
  void prefetch(PageKey key, Loader loader);

  /// Drops every unpinned page of `file_id` (store close).
  void drop_file(std::uint64_t file_id);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t budget_bytes() const { return budget_; }

  /// Process-wide cache sized from SUGAR_PAGE_CACHE_MB (default 64 MB;
  /// strict whole-string parsing, malformed values warn and keep the
  /// default). Built lazily on first use.
  static PageCache& global();

 private:
  struct Shard;

  Shard& shard_of(PageKey key);
  void evict_to_budget(Shard& s);  // caller holds s.mu
  void prefetch_loop();
  bool load_into(PageKey key, const Loader& loader, std::string* error,
                 Pin* out_pin);

  std::size_t budget_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Counters (relaxed; exact totals matter only at stats() time).
  std::atomic<std::uint64_t> hits_{0}, misses_{0}, evictions_{0};
  std::atomic<std::uint64_t> prefetch_issued_{0}, prefetch_loaded_{0},
      prefetch_dropped_{0}, inflight_{0};

  // Prefetch thread (lazy start, joined on destruction).
  std::mutex pf_mu_;
  std::condition_variable pf_cv_;
  std::deque<std::pair<PageKey, Loader>> pf_queue_;
  std::thread pf_thread_;
  bool pf_started_ = false;
  bool pf_stop_ = false;
  static constexpr std::size_t kMaxPrefetchQueue = 64;
};

/// Registry for PageKey::file_id values — every open store file draws a
/// process-unique id so cache keys never collide across files (including a
/// re-opened path: a fresh id means stale pages of the old generation can
/// never serve the new one; they age out via LRU or drop_file).
std::uint64_t next_page_file_id();

/// Peak resident set size of this process in bytes (ru_maxrss), the
/// evidence the out-of-core gates record. Monotone over process life.
std::size_t peak_rss_bytes();

}  // namespace sugar::core
