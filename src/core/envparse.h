// Strict whole-string parsing for SUGAR_* environment knobs, shared by
// every layer (header-only so the bottom-most sugar_parallel target can use
// it too). The PR 1 convention: "12x" or "" is malformed, not "12" —
// malformed values warn on stderr and leave the caller's default untouched,
// so a typo'd knob never silently reconfigures a run.
#pragma once

#include <charconv>
#include <cstdio>
#include <string_view>

namespace sugar::core {

/// Parses the whole of `s` as a number into `out`. On any leftover
/// character, empty string, or out-of-range value, warns (naming the knob)
/// and returns false with `out` untouched.
template <typename T>
bool parse_env_number(const char* name, const char* s, T& out) {
  std::string_view sv{s};
  T value{};
  auto [ptr, ec] = std::from_chars(sv.data(), sv.data() + sv.size(), value);
  if (ec != std::errc{} || ptr != sv.data() + sv.size()) {
    std::fprintf(stderr, "sugar: ignoring malformed %s='%s'\n", name, s);
    return false;
  }
  out = value;
  return true;
}

}  // namespace sugar::core
