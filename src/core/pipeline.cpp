#include "core/pipeline.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <random>
#include <unordered_map>

#include "core/trace.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/mlp.h"
#include "ml/preprocess.h"
#include "replearn/head.h"

namespace sugar::core {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<std::size_t> iota_indices(std::size_t n) {
  std::vector<std::size_t> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

/// Builds the train/test PacketDataset pair for a scenario: split, balance
/// the training side, cap sizes, apply ablations.
struct Partitions {
  dataset::PacketDataset train;
  dataset::PacketDataset test;
  dataset::LeakageReport audit;
};

/// `ds` is the training-side dataset; `test_ds` supplies the held-out
/// partition and may be a different generation (drift epoch, capture
/// family). When both refer to the same object the legacy single-dataset
/// path runs unchanged; otherwise `test_ds` is split with the same
/// policy/seed and only its held-out half is used, so a cross-variant cell
/// never tests on packets whose flows were trained on in either world.
Partitions make_partitions(const dataset::PacketDataset& ds,
                           const dataset::PacketDataset& test_ds,
                           std::size_t max_train, std::size_t max_test,
                           const ScenarioOptions& opts) {
  SUGAR_TRACE_SPAN("pipeline.partition");
  dataset::SplitOptions sopts;
  sopts.policy = opts.split;
  sopts.seed = opts.seed;
  auto split = dataset::split_dataset(ds, sopts);
  const bool cross = &test_ds != &ds;

  auto train_idx = dataset::cap_flow_length(ds, split.train, 1000, opts.seed ^ 1);
  train_idx = dataset::balance_train(ds, train_idx, opts.seed ^ 2);
  if (train_idx.size() > max_train) {
    double frac = static_cast<double>(max_train) / static_cast<double>(train_idx.size());
    train_idx = dataset::stratified_sample(ds, train_idx, frac, opts.seed ^ 3);
  }
  auto test_idx = cross ? dataset::split_dataset(test_ds, sopts).test : split.test;
  if (test_idx.size() > max_test) {
    double frac = static_cast<double>(max_test) / static_cast<double>(test_idx.size());
    test_idx = dataset::stratified_sample(test_ds, test_idx, frac, opts.seed ^ 4);
  }

  if (train_idx.empty() || test_idx.empty())
    throw RunError(RunErrorKind::kEmptyPartition,
                   "split policy '" + dataset::to_string(opts.split) +
                       "' left an empty partition (train=" +
                       std::to_string(train_idx.size()) +
                       ", test=" + std::to_string(test_idx.size()) +
                       " of " + std::to_string(ds.size()) + " packets)");

  Partitions parts;
  // The leakage audit covers the training dataset's own split; a cross-
  // variant held-out side is a distinct generation and cannot share flows
  // with the training partition by construction.
  parts.audit = dataset::audit_split(
      ds, {.train = train_idx, .test = cross ? split.test : test_idx});
  parts.train = ds.subset(train_idx);
  parts.test = test_ds.subset(test_idx);
  dataset::apply_ablation(parts.train, opts.train_ablation, opts.seed ^ 5);
  dataset::apply_ablation(parts.test, opts.test_ablation, opts.seed ^ 6);
  // Adversarial jitter is strictly test-time: the training partition never
  // sees it, mirroring a deployment stack that changed after training.
  dataset::apply_perturbation(parts.test, opts.perturb, opts.seed ^ 0xAD7);
  return parts;
}

Partitions make_partitions(const dataset::PacketDataset& ds, std::size_t max_train,
                           std::size_t max_test, const ScenarioOptions& opts) {
  return make_partitions(ds, ds, max_train, max_test, opts);
}

IngestHealth ingest_health(BenchmarkEnv& env, dataset::TaskId task,
                           const trafficgen::TraceVariant& variant) {
  const auto& census = env.cleaning_report(dataset::source_of(task), variant);
  return {.source_packets = census.total_packets,
          .malformed_frames = census.removed_malformed,
          .spurious_removed = census.removed_spurious_total()};
}

/// The held-out dataset for a scenario: the training dataset itself unless
/// the test variant differs (drift / cross-family cells).
const dataset::PacketDataset& test_dataset_for(BenchmarkEnv& env,
                                               dataset::TaskId task,
                                               const dataset::PacketDataset& train_ds,
                                               const ScenarioOptions& opts) {
  if (opts.test_variant == opts.train_variant) return train_ds;
  return env.task_dataset(task, opts.test_variant);
}

replearn::DownstreamConfig downstream_config(const EnvConfig& env_cfg,
                                             const ScenarioOptions& opts) {
  replearn::DownstreamConfig cfg;
  cfg.frozen = opts.frozen;
  // The paper trains frozen heads ~3x longer than unfrozen fine-tuning
  // (60 vs 20 epochs for ET-BERT); frozen epochs are cheap because the
  // embeddings are computed once. Early stopping bounds the effective
  // epoch count either way.
  cfg.epochs = opts.frozen ? env_cfg.downstream_epochs * 3
                           : env_cfg.downstream_epochs * 3 / 2;
  // Validation policy follows the split policy: per-flow pipelines hold out
  // whole flows; per-packet pipelines (the flawed prior-work protocol)
  // validate on leaked samples and therefore never notice the overfit.
  cfg.flow_holdout_validation = opts.split == dataset::SplitPolicy::PerFlow;
  cfg.seed = opts.seed ^ 0xD0;
  // Supervisor knobs: divergence retries shrink the learning rates; the
  // watchdog's cancel token is polled inside the epoch loops.
  cfg.lr_head *= static_cast<float>(opts.lr_scale);
  cfg.lr_encoder *= static_cast<float>(opts.lr_scale);
  cfg.cancel = opts.cancel;
  return cfg;
}

}  // namespace

std::string to_string(ShallowKind k) {
  switch (k) {
    case ShallowKind::RandomForest: return "RF";
    case ShallowKind::XgboostStyle: return "XGBoost";
    case ShallowKind::LightGbmStyle: return "LightGBM";
    case ShallowKind::Mlp: return "MLP";
  }
  return "?";
}

ScenarioResult run_packet_scenario(BenchmarkEnv& env, dataset::TaskId task,
                                   replearn::ModelKind model,
                                   const ScenarioOptions& opts) {
  return run_packet_scenario_with_bundle(
      env, task, env.pretrained(model, replearn::TaskMode::Packet, opts.cancel),
      opts);
}

ScenarioResult run_packet_scenario_with_bundle(BenchmarkEnv& env,
                                               dataset::TaskId task,
                                               replearn::ModelBundle bundle,
                                               const ScenarioOptions& opts) {
  const auto& ds = env.task_dataset(task, opts.train_variant);
  const auto& test_ds = test_dataset_for(env, task, ds, opts);
  const auto& ec = env.config();
  Partitions parts = make_partitions(ds, test_ds, ec.max_train_packets_deep,
                                     ec.max_test_packets_deep, opts);

  if (opts.discard_pretraining) bundle.encoder->reinitialize(opts.seed ^ 0xF00D);

  ml::Matrix x_train, x_test;
  {
    SUGAR_TRACE_SPAN("pipeline.featurize");
    x_train =
        bundle.featurize_packets(parts.train, iota_indices(parts.train.size()));
    x_test =
        bundle.featurize_packets(parts.test, iota_indices(parts.test.size()));
  }

  replearn::DownstreamModel dm(std::move(bundle.encoder), ds.num_classes,
                               downstream_config(env.config(), opts));

  ScenarioResult result;
  result.audit = parts.audit;
  result.n_train = parts.train.size();
  result.n_test = parts.test.size();
  result.ingest = ingest_health(env, task, opts.train_variant);

  auto t0 = Clock::now();
  {
    SUGAR_TRACE_SPAN("pipeline.fit");
    dm.fit(x_train, parts.train.label, parts.train.flow_id);
  }
  result.train_seconds = seconds_since(t0);

  t0 = Clock::now();
  std::vector<int> pred;
  {
    SUGAR_TRACE_SPAN("pipeline.predict");
    pred = dm.predict(x_test);
  }
  result.test_seconds = seconds_since(t0);
  result.metrics = ml::evaluate(parts.test.label, pred, ds.num_classes);

  if (opts.export_embeddings > 0) {
    std::size_t n = std::min<std::size_t>(opts.export_embeddings, parts.test.size());
    auto idx = iota_indices(parts.test.size());
    std::mt19937_64 rng(opts.seed ^ 0xE0B);
    std::shuffle(idx.begin(), idx.end(), rng);
    idx.resize(n);
    result.embeddings = dm.embeddings(x_test.take_rows(idx));
    result.embedding_labels.reserve(n);
    for (std::size_t i : idx) result.embedding_labels.push_back(parts.test.label[i]);
  }
  return result;
}

ScenarioResult run_flow_scenario(BenchmarkEnv& env, dataset::TaskId task,
                                 replearn::ModelKind model,
                                 const ScenarioOptions& opts,
                                 std::size_t min_flow_len) {
  const auto& ds = env.task_dataset(task, opts.train_variant);
  const auto& test_ds = test_dataset_for(env, task, ds, opts);
  // Only per-flow split is meaningful here (the paper: "Only per-flow split
  // is viable in this case").
  ScenarioOptions flow_opts = opts;
  flow_opts.split = dataset::SplitPolicy::PerFlow;
  const auto& ec = env.config();
  Partitions parts = make_partitions(ds, test_ds, ec.max_train_packets_deep,
                                     ec.max_test_packets_deep, flow_opts);

  auto collect_flows = [&](const dataset::PacketDataset& part) {
    std::vector<std::vector<std::size_t>> flows;
    std::vector<int> labels;
    std::unordered_map<int, std::vector<std::size_t>> by_flow;
    for (std::size_t i = 0; i < part.size(); ++i) by_flow[part.flow_id[i]].push_back(i);
    for (auto& [fid, idx] : by_flow) {
      if (idx.size() < min_flow_len) continue;
      std::sort(idx.begin(), idx.end());
      flows.push_back(idx);
      labels.push_back(part.label[idx.front()]);
    }
    return std::make_pair(flows, labels);
  };
  auto [train_flows, y_train] = collect_flows(parts.train);
  auto [test_flows, y_test] = collect_flows(parts.test);

  ScenarioResult result;
  result.audit = parts.audit;
  result.n_train = train_flows.size();
  result.n_test = test_flows.size();
  result.ingest = ingest_health(env, task, opts.train_variant);
  if (train_flows.empty() || test_flows.empty())
    throw RunError(RunErrorKind::kEmptyPartition,
                   "no flows with >= " + std::to_string(min_flow_len) +
                       " packets survived the split (train=" +
                       std::to_string(train_flows.size()) +
                       " flows, test=" + std::to_string(test_flows.size()) +
                       " flows)");

  if (model == replearn::ModelKind::PcapEncoder) {
    // Paper §6.2: frozen packet-level classification of the first 5
    // packets, then majority vote. No flow-level training.
    auto bundle = env.pretrained(model, replearn::TaskMode::Packet, opts.cancel);
    ml::Matrix x_train =
        bundle.featurize_packets(parts.train, iota_indices(parts.train.size()));
    replearn::DownstreamConfig cfg = downstream_config(env.config(), opts);
    cfg.frozen = true;
    replearn::DownstreamModel dm(std::move(bundle.encoder), ds.num_classes, cfg);

    auto t0 = Clock::now();
    dm.fit(x_train, parts.train.label, parts.train.flow_id);
    result.train_seconds = seconds_since(t0);

    t0 = Clock::now();
    auto vote_bundle = env.pretrained(model, replearn::TaskMode::Packet, opts.cancel);
    std::vector<int> pred;
    pred.reserve(test_flows.size());
    for (const auto& flow : test_flows) {
      std::vector<std::size_t> first(flow.begin(),
                                     flow.begin() + static_cast<std::ptrdiff_t>(std::min<std::size_t>(
                                         flow.size(), 5)));
      ml::Matrix xf = vote_bundle.featurize_packets(parts.test, first);
      auto votes = dm.predict(xf);
      std::unordered_map<int, int> counts;
      for (int v : votes) ++counts[v];
      int best = votes.front(), best_n = 0;
      for (auto [cls, n] : counts)
        if (n > best_n) {
          best = cls;
          best_n = n;
        }
      pred.push_back(best);
    }
    result.test_seconds = seconds_since(t0);
    result.metrics = ml::evaluate(y_test, pred, ds.num_classes);
    return result;
  }

  auto bundle = env.pretrained(model, replearn::TaskMode::Flow, opts.cancel);
  if (opts.discard_pretraining) bundle.encoder->reinitialize(opts.seed ^ 0xF00D);

  ml::Matrix x_train, x_test;
  {
    SUGAR_TRACE_SPAN("pipeline.featurize");
    x_train = bundle.featurize_flows(parts.train, train_flows);
    x_test = bundle.featurize_flows(parts.test, test_flows);
  }

  replearn::DownstreamModel dm(std::move(bundle.encoder), ds.num_classes,
                               downstream_config(env.config(), opts));
  auto t0 = Clock::now();
  {
    SUGAR_TRACE_SPAN("pipeline.fit");
    dm.fit(x_train, y_train);  // one row per flow: sample holdout is flow holdout
  }
  result.train_seconds = seconds_since(t0);

  t0 = Clock::now();
  std::vector<int> pred;
  {
    SUGAR_TRACE_SPAN("pipeline.predict");
    pred = dm.predict(x_test);
  }
  result.test_seconds = seconds_since(t0);
  result.metrics = ml::evaluate(y_test, pred, ds.num_classes);
  return result;
}

ShallowResult run_shallow_scenario(BenchmarkEnv& env, dataset::TaskId task,
                                   ShallowKind kind, bool include_ip,
                                   const ScenarioOptions& opts) {
  const auto& ds = env.task_dataset(task, opts.train_variant);
  const auto& test_ds = test_dataset_for(env, task, ds, opts);
  const auto& ec = env.config();
  Partitions parts = make_partitions(ds, test_ds, ec.max_train_packets,
                                     ec.max_test_packets, opts);

  replearn::HeaderFeatureSpec spec{.include_ip_addresses = include_ip};
  ml::Matrix x_train, x_test;
  {
    SUGAR_TRACE_SPAN("pipeline.featurize");
    x_train = replearn::header_feature_matrix(
        parts.train, iota_indices(parts.train.size()), spec);
    x_test = replearn::header_feature_matrix(
        parts.test, iota_indices(parts.test.size()), spec);
  }

  ShallowResult result;
  result.ingest = ingest_health(env, task, opts.train_variant);
  result.feature_names = replearn::header_feature_names(spec);

  std::vector<int> pred;
  // One span over the whole switch: each case interleaves its fit and
  // predict timing, so they share a train_eval phase here while the ml
  // layer's own ml.*.fit / ml.*.predict spans keep them separable.
  SUGAR_TRACE_SPAN("pipeline.train_eval");
  auto t0 = Clock::now();
  switch (kind) {
    case ShallowKind::RandomForest: {
      ml::ForestConfig cfg;
      cfg.cancel = opts.cancel;
      if (opts.forest_trees > 0) cfg.num_trees = opts.forest_trees;
      ml::RandomForest rf(cfg);
      rf.fit(x_train, parts.train.label, ds.num_classes);
      result.train_seconds = seconds_since(t0);
      t0 = Clock::now();
      pred = rf.predict(x_test);
      result.feature_importance = rf.feature_importance();
      break;
    }
    case ShallowKind::XgboostStyle: {
      auto cfg = ml::GbdtConfig::xgboost_style();
      cfg.learning_rate *= static_cast<float>(opts.lr_scale);
      cfg.cancel = opts.cancel;
      ml::GradientBoosting gb(cfg);
      gb.fit(x_train, parts.train.label, ds.num_classes);
      result.train_seconds = seconds_since(t0);
      t0 = Clock::now();
      pred = gb.predict(x_test);
      result.feature_importance = gb.feature_importance();
      break;
    }
    case ShallowKind::LightGbmStyle: {
      auto cfg = ml::GbdtConfig::lightgbm_style();
      cfg.learning_rate *= static_cast<float>(opts.lr_scale);
      cfg.cancel = opts.cancel;
      ml::GradientBoosting gb(cfg);
      gb.fit(x_train, parts.train.label, ds.num_classes);
      result.train_seconds = seconds_since(t0);
      t0 = Clock::now();
      pred = gb.predict(x_test);
      result.feature_importance = gb.feature_importance();
      break;
    }
    case ShallowKind::Mlp: {
      ml::StandardScaler scaler;
      scaler.fit(x_train);
      scaler.transform(x_train);
      scaler.transform(x_test);
      ml::MlpConfig cfg;
      cfg.epochs = env.config().downstream_epochs * 2;
      cfg.learning_rate *= static_cast<float>(opts.lr_scale);
      cfg.seed = opts.seed ^ 0x5A;
      cfg.cancel = opts.cancel;
      ml::MlpClassifier mlp(cfg);
      mlp.fit(x_train, parts.train.label, ds.num_classes);
      result.train_seconds = seconds_since(t0);
      t0 = Clock::now();
      pred = mlp.predict(x_test);
      break;
    }
  }
  result.test_seconds = seconds_since(t0);
  result.metrics = ml::evaluate(parts.test.label, pred, ds.num_classes);
  return result;
}

ml::PurityHistogram purity_of(const ScenarioResult& result, int k) {
  if (!result.embeddings) return {};
  return ml::knn_purity(*result.embeddings, result.embedding_labels, k);
}

}  // namespace sugar::core
