#include "core/trace.h"

#include <time.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace sugar::core::trace {
namespace {

// Retained-event cap per thread; beyond it events are counted as dropped
// so a pathological span storm cannot exhaust memory. 64k events cover a
// full bench sweep at cell/epoch granularity with two orders of margin.
constexpr std::size_t kMaxEventsPerThread = 65536;

std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t thread_cpu_now_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
#endif
  return 0;
}

struct Agg {
  std::uint64_t count = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t cpu_ns = 0;
};

struct RawEvent {
  std::uint32_t name_id = 0;
  std::uint32_t depth = 0;
  std::uint64_t begin_abs_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t cpu_ns = 0;
};

struct ThreadState {
  std::mutex mu;
  std::uint64_t ordinal = 0;
  std::string label;
  std::vector<std::uint32_t> open_stack;     // name ids, LIFO per RAII
  std::vector<RawEvent> retained;            // kSpans mode only
  std::map<std::uint32_t, Agg> aggregates;   // keyed by interned name id
};

}  // namespace

struct Counter::Impl {
  std::atomic<std::uint64_t> value{0};
};

struct Registry {
  std::mutex mu;
  std::uint64_t epoch_abs_ns = wall_now_ns();
  std::vector<std::shared_ptr<ThreadState>> threads;
  std::unordered_map<std::string, std::uint32_t> name_ids;
  std::vector<std::string> names;
  // std::map: node-based, so Counter addresses handed out by counter()
  // stay valid forever; reset() zeroes values but never erases.
  std::map<std::string, Counter> counters;
  std::atomic<std::uint64_t> dropped{0};

  static Registry& get() {
    static Registry* r = new Registry();  // leaked: usable during exit
    return *r;
  }

  std::uint32_t intern(const char* name) {
    std::lock_guard<std::mutex> lk(mu);
    auto it = name_ids.find(name);
    if (it != name_ids.end()) return it->second;
    auto id = static_cast<std::uint32_t>(names.size());
    names.emplace_back(name);
    name_ids.emplace(names.back(), id);
    return id;
  }

  std::shared_ptr<ThreadState> register_thread() {
    auto ts = std::make_shared<ThreadState>();
    std::lock_guard<std::mutex> lk(mu);
    ts->ordinal = threads.size();
    threads.push_back(ts);
    return ts;
  }
};

namespace {

ThreadState& thread_state() {
  thread_local std::shared_ptr<ThreadState> tl_state =
      Registry::get().register_thread();
  return *tl_state;
}

constexpr int kModeUninit = -1;
std::atomic<int> g_mode{kModeUninit};

Mode init_mode_from_env() {
  Mode m = Mode::kOff;
  if (const char* s = std::getenv("SUGAR_TRACE")) {
    if (auto parsed = parse_mode(s)) {
      m = *parsed;
    } else {
      std::cerr << "sugar: ignoring malformed SUGAR_TRACE='" << s << "'\n";
    }
  }
  int expected = kModeUninit;
  g_mode.compare_exchange_strong(expected, static_cast<int>(m));
  return static_cast<Mode>(g_mode.load(std::memory_order_relaxed));
}

}  // namespace

std::optional<Mode> parse_mode(std::string_view text) {
  if (text == "off") return Mode::kOff;
  if (text == "summary") return Mode::kSummary;
  if (text == "spans") return Mode::kSpans;
  return std::nullopt;
}

Mode mode() {
  int m = g_mode.load(std::memory_order_relaxed);
  if (m == kModeUninit) return init_mode_from_env();
  return static_cast<Mode>(m);
}

void set_mode(Mode m) {
  g_mode.store(static_cast<int>(m), std::memory_order_relaxed);
}

bool enabled() {
  int m = g_mode.load(std::memory_order_relaxed);
  if (m == kModeUninit) return init_mode_from_env() != Mode::kOff;
  return static_cast<Mode>(m) != Mode::kOff;
}

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kOff: return "off";
    case Mode::kSummary: return "summary";
    case Mode::kSpans: return "spans";
  }
  return "off";
}

// ---------------------------------------------------------------------------
// Counters

void Counter::add(std::uint64_t delta) {
  impl_->value.fetch_add(delta, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  return impl_->value.load(std::memory_order_relaxed);
}

Counter& counter(const std::string& name) {
  Registry& r = Registry::get();
  std::lock_guard<std::mutex> lk(r.mu);
  auto it = r.counters.find(name);
  if (it == r.counters.end()) {
    Counter c;
    c.impl_ = new Counter::Impl();  // leaked with the registry: stable forever
    it = r.counters.emplace(name, c).first;
  }
  return it->second;
}

std::vector<CounterValue> counters_snapshot() {
  Registry& r = Registry::get();
  std::lock_guard<std::mutex> lk(r.mu);
  std::vector<CounterValue> out;
  out.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters)  // std::map: already name-sorted
    out.push_back({name, c.value()});
  return out;
}

// ---------------------------------------------------------------------------
// Spans

ScopedSpan::ScopedSpan(const char* name) { open(name); }
ScopedSpan::ScopedSpan(const std::string& name) { open(name.c_str()); }

void ScopedSpan::open(const char* name) {
  if (!enabled()) return;
  active_ = true;
  name_id_ = Registry::get().intern(name);
  ThreadState& ts = thread_state();
  {
    std::lock_guard<std::mutex> lk(ts.mu);
    ts.open_stack.push_back(name_id_);
  }
  cpu_begin_ns_ = thread_cpu_now_ns();
  begin_ns_ = wall_now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const std::uint64_t end_ns = wall_now_ns();
  const std::uint64_t cpu_end_ns = thread_cpu_now_ns();
  const std::uint64_t dur = end_ns >= begin_ns_ ? end_ns - begin_ns_ : 0;
  const std::uint64_t cpu =
      cpu_end_ns >= cpu_begin_ns_ ? cpu_end_ns - cpu_begin_ns_ : 0;
  ThreadState& ts = thread_state();
  Registry& r = Registry::get();
  std::lock_guard<std::mutex> lk(ts.mu);
  std::uint32_t depth = 0;
  if (!ts.open_stack.empty()) {
    depth = static_cast<std::uint32_t>(ts.open_stack.size() - 1);
    ts.open_stack.pop_back();  // RAII guarantees LIFO per thread
  }
  Agg& a = ts.aggregates[name_id_];
  a.count += 1;
  a.wall_ns += dur;
  a.cpu_ns += cpu;
  if (mode() == Mode::kSpans) {
    if (ts.retained.size() < kMaxEventsPerThread)
      ts.retained.push_back({name_id_, depth, begin_ns_, dur, cpu});
    else
      r.dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

namespace {

// Snapshot helper: copy the thread list (and anything name-indexed) under
// the registry lock, then visit each thread under its own lock so
// emission on other threads is only briefly blocked.
struct Snapshot {
  std::vector<std::shared_ptr<ThreadState>> threads;
  std::vector<std::string> names;
  std::uint64_t epoch_abs_ns = 0;
};

Snapshot snapshot_threads() {
  Registry& r = Registry::get();
  std::lock_guard<std::mutex> lk(r.mu);
  return {r.threads, r.names, r.epoch_abs_ns};
}

}  // namespace

std::vector<PhaseStat> phase_stats() {
  Snapshot snap = snapshot_threads();
  std::map<std::string, PhaseStat> merged;
  for (const auto& ts : snap.threads) {
    std::lock_guard<std::mutex> lk(ts->mu);
    for (const auto& [name_id, agg] : ts->aggregates) {
      // A concurrent emitter may have interned this name after our name
      // snapshot; it will show up in the next snapshot.
      if (name_id >= snap.names.size()) continue;
      PhaseStat& p = merged[snap.names[name_id]];
      p.count += agg.count;
      p.wall_ns += agg.wall_ns;
      p.cpu_ns += agg.cpu_ns;
    }
  }
  std::vector<PhaseStat> out;
  out.reserve(merged.size());
  for (auto& [name, stat] : merged) {
    stat.name = name;
    out.push_back(std::move(stat));
  }
  return out;
}

std::vector<SpanEvent> events() {
  Snapshot snap = snapshot_threads();
  std::vector<SpanEvent> out;
  for (const auto& ts : snap.threads) {
    std::lock_guard<std::mutex> lk(ts->mu);
    for (const RawEvent& e : ts->retained) {
      if (e.name_id >= snap.names.size()) continue;  // interned post-snapshot
      SpanEvent ev;
      ev.name = snap.names[e.name_id];
      ev.thread = ts->ordinal;
      ev.thread_label = ts->label;
      ev.begin_ns = e.begin_abs_ns >= snap.epoch_abs_ns
                        ? e.begin_abs_ns - snap.epoch_abs_ns
                        : 0;
      ev.dur_ns = e.dur_ns;
      ev.cpu_ns = e.cpu_ns;
      ev.depth = e.depth;
      out.push_back(std::move(ev));
    }
  }
  std::sort(out.begin(), out.end(), [](const SpanEvent& a, const SpanEvent& b) {
    if (a.thread != b.thread) return a.thread < b.thread;
    if (a.begin_ns != b.begin_ns) return a.begin_ns < b.begin_ns;
    return a.depth < b.depth;
  });
  return out;
}

std::uint64_t dropped_events() {
  return Registry::get().dropped.load(std::memory_order_relaxed);
}

std::size_t open_span_count() {
  Snapshot snap = snapshot_threads();
  std::size_t open = 0;
  for (const auto& ts : snap.threads) {
    std::lock_guard<std::mutex> lk(ts->mu);
    open += ts->open_stack.size();
  }
  return open;
}

void set_thread_label(const std::string& label) {
  ThreadState& ts = thread_state();
  std::lock_guard<std::mutex> lk(ts.mu);
  ts.label = label;
}

void reset() {
  Registry& r = Registry::get();
  std::vector<std::shared_ptr<ThreadState>> threads;
  {
    std::lock_guard<std::mutex> lk(r.mu);
    r.epoch_abs_ns = wall_now_ns();
    for (auto& [name, c] : r.counters)
      c.impl_->value.store(0, std::memory_order_relaxed);
    r.dropped.store(0, std::memory_order_relaxed);
    threads = r.threads;
  }
  for (const auto& ts : threads) {
    std::lock_guard<std::mutex> lk(ts->mu);
    ts->retained.clear();
    ts->aggregates.clear();
    // open_stack deliberately survives: spans still open will close
    // normally and record against the new epoch.
  }
}

}  // namespace sugar::core::trace
