// Scenario runners — each (task, model, split, frozen/unfrozen, ablation)
// cell of the paper's result tables maps to one call here. The runners
// enforce the recommended methodology: clean data, split, balance the
// training set by undersampling, keep the test distribution natural, audit
// the split, train, and report accuracy + macro F1.
#pragma once

#include <functional>
#include <optional>

#include "core/env.h"
#include "core/runerror.h"
#include "dataset/audit.h"
#include "dataset/split.h"
#include "dataset/transforms.h"
#include "ml/guard.h"
#include "ml/knn.h"
#include "ml/metrics.h"

namespace sugar::core {

struct ScenarioOptions {
  dataset::SplitPolicy split = dataset::SplitPolicy::PerFlow;
  bool frozen = true;
  /// Applied to the training partition before featurization.
  dataset::AblationSpec train_ablation;
  /// Applied to the test partition before featurization.
  dataset::AblationSpec test_ablation;
  /// Table 6 "w/o Pre-training": reinitialize encoder weights at random.
  bool discard_pretraining = false;
  std::uint64_t seed = 5;
  /// When set, test embeddings (subsampled) are exported for Fig-4-style
  /// purity analysis.
  std::size_t export_embeddings = 0;
  /// Random-forest tree count override for scaling ladders (0 = the
  /// ForestConfig default). Cells varying this must put it in their key.
  int forest_trees = 0;
  /// Scenario diversity: the dataset variant the training partition is
  /// generated from, and the (possibly different) variant the held-out
  /// partition comes from — train-on-epoch-0/test-on-epoch-N drift cells
  /// and train-on-family-A/test-on-family-B transfer cells.
  trafficgen::TraceVariant train_variant;
  trafficgen::TraceVariant test_variant;
  /// Adversarial header jitter applied to the held-out partition only,
  /// after test ablations. Seeded and deterministic.
  dataset::PerturbSpec perturb;

  // --- Runtime knobs set by the supervisor, excluded from journal keys. ---
  /// Learning-rate multiplier; the divergence retry halves it per attempt.
  double lr_scale = 1.0;
  /// Cooperative cancellation polled inside every training loop (the
  /// per-cell watchdog). Null disables.
  const ml::CancelToken* cancel = nullptr;
};

/// Ingestion health of the source trace a scenario ran on, copied from the
/// cleaning census so every result row can surface malformed-frame counts
/// instead of silently training on a degraded capture.
struct IngestHealth {
  std::size_t source_packets = 0;    // trace size before cleaning
  std::size_t malformed_frames = 0;  // frames the parser rejected
  std::size_t spurious_removed = 0;  // Table-13 extraneous removals

  [[nodiscard]] double malformed_fraction() const {
    return source_packets == 0 ? 0.0
                               : static_cast<double>(malformed_frames) /
                                     static_cast<double>(source_packets);
  }
};

struct ScenarioResult {
  ml::Metrics metrics;
  double train_seconds = 0;
  double test_seconds = 0;
  std::size_t n_train = 0;
  std::size_t n_test = 0;
  IngestHealth ingest;
  dataset::LeakageReport audit;
  /// Present when options.export_embeddings > 0.
  std::optional<ml::Matrix> embeddings;
  std::vector<int> embedding_labels;
};

/// Packet-level classification (Tables 3-6, Fig 1/4).
///
/// All runners throw RunError(kEmptyPartition) when the split/cleaning
/// combination leaves the train or test partition empty, and propagate the
/// ml layer's typed errors (divergence, cancellation, internal) — the
/// supervisor maps them onto the RunError taxonomy per cell.
ScenarioResult run_packet_scenario(BenchmarkEnv& env, dataset::TaskId task,
                                   replearn::ModelKind model,
                                   const ScenarioOptions& opts);

/// Same, but with a caller-supplied (already pre-trained) bundle — used by
/// the pre-training ablation (Table 11), which needs Pcap-Encoder variants
/// with individual pre-training phases disabled.
ScenarioResult run_packet_scenario_with_bundle(BenchmarkEnv& env,
                                               dataset::TaskId task,
                                               replearn::ModelBundle bundle,
                                               const ScenarioOptions& opts);

/// Flow-level classification (Table 9). Flows shorter than `min_flow_len`
/// packets are dropped; Pcap-Encoder uses frozen packet-level majority
/// voting per the paper's §6.2.
ScenarioResult run_flow_scenario(BenchmarkEnv& env, dataset::TaskId task,
                                 replearn::ModelKind model,
                                 const ScenarioOptions& opts,
                                 std::size_t min_flow_len = 5);

enum class ShallowKind { RandomForest, XgboostStyle, LightGbmStyle, Mlp };
std::string to_string(ShallowKind k);

struct ShallowResult {
  ml::Metrics metrics;
  double train_seconds = 0;
  double test_seconds = 0;
  IngestHealth ingest;
  std::vector<double> feature_importance;  // trees only
  std::vector<std::string> feature_names;
};

/// Shallow baselines on hand-crafted header features (Table 8, Fig 5/6).
ShallowResult run_shallow_scenario(BenchmarkEnv& env, dataset::TaskId task,
                                   ShallowKind kind, bool include_ip,
                                   const ScenarioOptions& opts);

/// Fig 4: 5-NN purity of a scenario's exported embeddings.
ml::PurityHistogram purity_of(const ScenarioResult& result, int k = 5);

}  // namespace sugar::core
