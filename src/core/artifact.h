// Crash-safe benchmark artifacts: a small ordered JSON value (builder,
// serializer and parser — no external dependency), temp-file-then-rename
// atomic writes, and a JSONL loader that tolerates a torn final line. The
// supervisor uses these for its resume journal and the per-bench
// BENCH_<table>.json result files; a crash mid-write can never leave a
// truncated artifact in place of a good one.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sugar::core {

/// A JSON document node. Objects preserve insertion order so dumped
/// artifacts are stable across runs (diffable).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Json() = default;
  explicit Json(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Json(double n) : type_(Type::kNumber), num_(n) {}
  explicit Json(int n) : Json(static_cast<double>(n)) {}
  explicit Json(std::size_t n) : Json(static_cast<double>(n)) {}
  explicit Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  explicit Json(const char* s) : Json(std::string(s)) {}

  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }

  /// Object insert-or-replace; returns *this for chaining.
  Json& set(std::string key, Json value);
  /// Array append.
  Json& push(Json value);

  /// Object lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const;

  [[nodiscard]] double number_or(double fallback) const {
    return type_ == Type::kNumber ? num_ : fallback;
  }
  [[nodiscard]] bool bool_or(bool fallback) const {
    return type_ == Type::kBool ? bool_ : fallback;
  }
  [[nodiscard]] const std::string& string_or(const std::string& fallback) const {
    return type_ == Type::kString ? str_ : fallback;
  }
  [[nodiscard]] const std::vector<Json>& items() const { return arr_; }
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members() const {
    return obj_;
  }

  /// Compact single-line serialization (indent < 0) or pretty-printed.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Strict-ish recursive-descent parse; nullopt on any syntax error or
  /// trailing garbage.
  static std::optional<Json> parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<std::pair<std::string, Json>> obj_;
  std::vector<Json> arr_;
};

class Io;

/// Writes `content` to `path` via a sibling temp file + rename, so readers
/// only ever observe the old or the new complete content. On failure the
/// target is left untouched, the temp file is removed, and `error` (when
/// non-null) receives a description. `io` overrides the filesystem (fault
/// injection); null means the real one.
bool atomic_write_file(const std::string& path, std::string_view content,
                       std::string* error = nullptr, Io* io = nullptr);

/// Loads a JSONL file, one Json per parseable line. Unparsable lines — in
/// particular a torn final line from a crashed writer — are counted in
/// `*skipped` (when non-null) and dropped, never fatal.
std::vector<Json> load_jsonl(const std::string& path, std::size_t* skipped = nullptr);

/// FNV-1a 64-bit — the journal's scenario-fingerprint hash.
std::uint64_t fnv1a64(std::string_view s);

/// Lower-case 16-digit hex of a 64-bit hash.
std::string hex64(std::uint64_t v);

}  // namespace sugar::core
