// IEEE 802.3 (zlib-compatible) CRC32, hoisted to the bottom-most layer so
// both the serve snapshot format and the SUGC on-disk page format can seal
// their sections without dragging in the packet-parsing library.
// net::crc32 remains as a thin alias for existing callers.
//
// Header-only: the 256-entry table is constexpr and the loop is small
// enough that every user inlines it.
#pragma once

#include <cstdint>
#include <span>

namespace sugar::core {

namespace detail {

struct Crc32Table {
  std::uint32_t entries[256];
  constexpr Crc32Table() : entries{} {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      entries[i] = c;
    }
  }
};

inline constexpr Crc32Table kCrc32Table{};

}  // namespace detail

/// CRC32 of a byte span. Chain partial spans by feeding the previous result
/// back through `acc`; crc32("123456789") is 0xCBF43926.
inline std::uint32_t crc32(std::span<const std::uint8_t> data,
                           std::uint32_t acc = 0) {
  std::uint32_t c = acc ^ 0xFFFFFFFFu;
  for (std::uint8_t byte : data)
    c = detail::kCrc32Table.entries[(c ^ byte) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace sugar::core
