// Portable fixed-width SIMD substrate for the ML hot paths: an 8-lane
// float vector (`f32x8`) compiled to AVX2 (one 256-bit register), SSE2 or
// NEON (two 128-bit registers), or a plain scalar array — selected at
// build time from the target ISA (`-DSUGAR_NATIVE=ON` adds -march=native;
// the default build uses the portable baseline, SSE2 on x86-64).
//
// Determinism contract (DESIGN.md §11): every backend executes the SAME
// sequence of IEEE-754 single-precision operations per lane —
// add/sub/mul/div/sqrt are correctly rounded and elementwise on every
// backend, mul_add is ALWAYS a separate multiply then add (never an FMA,
// which would skip the intermediate rounding), and the whole project
// builds with -ffp-contract=off so the compiler cannot re-introduce
// contraction behind our back. Reductions never reassociate freely:
// the helpers below accumulate into 8 strided partial sums
// (partial[l] = op over elements with index ≡ l mod 8, tail included)
// and combine them with the fixed `reduce8` tree. A kernel written
// against this header is therefore bit-identical on AVX2, SSE2, NEON and
// the scalar fallback — SIMD changes wall-clock, never output.
//
// Lane max uses the x86 MAXPS rule `a > b ? a : b` (returns b on equal or
// unordered); inputs are assumed non-NaN, which the training-loop
// divergence guards enforce upstream.
#pragma once

#include <cstddef>

#if defined(SUGAR_SIMD_FORCE_SCALAR)
// Testing hook: build the scalar emulation even where intrinsics exist.
#elif defined(__AVX2__)
#define SUGAR_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#define SUGAR_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#define SUGAR_SIMD_NEON 1
#include <arm_neon.h>
#endif

#if !defined(SUGAR_SIMD_AVX2) && !defined(SUGAR_SIMD_SSE2) && \
    !defined(SUGAR_SIMD_NEON)
#define SUGAR_SIMD_SCALAR 1
#endif

#include <cmath>

namespace sugar::core::simd {

inline constexpr std::size_t kLanes = 8;

constexpr const char* backend_name() {
#if defined(SUGAR_SIMD_AVX2)
  return "avx2";
#elif defined(SUGAR_SIMD_SSE2)
  return "sse2";
#elif defined(SUGAR_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

// ---- f32x8: 8 IEEE-754 floats, one op per lane ---------------------------

#if defined(SUGAR_SIMD_AVX2)

struct f32x8 {
  __m256 v;
};

inline f32x8 zeros() { return {_mm256_setzero_ps()}; }
inline f32x8 broadcast(float x) { return {_mm256_set1_ps(x)}; }
inline f32x8 loadu(const float* p) { return {_mm256_loadu_ps(p)}; }
inline void storeu(float* p, f32x8 a) { _mm256_storeu_ps(p, a.v); }
inline f32x8 add(f32x8 a, f32x8 b) { return {_mm256_add_ps(a.v, b.v)}; }
inline f32x8 sub(f32x8 a, f32x8 b) { return {_mm256_sub_ps(a.v, b.v)}; }
inline f32x8 mul(f32x8 a, f32x8 b) { return {_mm256_mul_ps(a.v, b.v)}; }
inline f32x8 div(f32x8 a, f32x8 b) { return {_mm256_div_ps(a.v, b.v)}; }
inline f32x8 sqrt(f32x8 a) { return {_mm256_sqrt_ps(a.v)}; }
inline f32x8 vmax(f32x8 a, f32x8 b) { return {_mm256_max_ps(a.v, b.v)}; }
/// Lanes > 0 keep their value, the rest become +0.0f.
inline f32x8 relu(f32x8 a) {
  __m256 gt = _mm256_cmp_ps(a.v, _mm256_setzero_ps(), _CMP_GT_OQ);
  return {_mm256_and_ps(a.v, gt)};
}
/// 1.0f where the lane is > 0, else 0.0f.
inline f32x8 step01(f32x8 a) {
  __m256 gt = _mm256_cmp_ps(a.v, _mm256_setzero_ps(), _CMP_GT_OQ);
  return {_mm256_and_ps(_mm256_set1_ps(1.0f), gt)};
}

#elif defined(SUGAR_SIMD_SSE2)

struct f32x8 {
  __m128 lo, hi;
};

inline f32x8 zeros() { return {_mm_setzero_ps(), _mm_setzero_ps()}; }
inline f32x8 broadcast(float x) { return {_mm_set1_ps(x), _mm_set1_ps(x)}; }
inline f32x8 loadu(const float* p) {
  return {_mm_loadu_ps(p), _mm_loadu_ps(p + 4)};
}
inline void storeu(float* p, f32x8 a) {
  _mm_storeu_ps(p, a.lo);
  _mm_storeu_ps(p + 4, a.hi);
}
inline f32x8 add(f32x8 a, f32x8 b) {
  return {_mm_add_ps(a.lo, b.lo), _mm_add_ps(a.hi, b.hi)};
}
inline f32x8 sub(f32x8 a, f32x8 b) {
  return {_mm_sub_ps(a.lo, b.lo), _mm_sub_ps(a.hi, b.hi)};
}
inline f32x8 mul(f32x8 a, f32x8 b) {
  return {_mm_mul_ps(a.lo, b.lo), _mm_mul_ps(a.hi, b.hi)};
}
inline f32x8 div(f32x8 a, f32x8 b) {
  return {_mm_div_ps(a.lo, b.lo), _mm_div_ps(a.hi, b.hi)};
}
inline f32x8 sqrt(f32x8 a) { return {_mm_sqrt_ps(a.lo), _mm_sqrt_ps(a.hi)}; }
inline f32x8 vmax(f32x8 a, f32x8 b) {
  // _mm_max_ps(a, b): lane rule a > b ? a : b (returns b on equal).
  return {_mm_max_ps(a.lo, b.lo), _mm_max_ps(a.hi, b.hi)};
}
inline f32x8 relu(f32x8 a) {
  __m128 z = _mm_setzero_ps();
  return {_mm_and_ps(a.lo, _mm_cmpgt_ps(a.lo, z)),
          _mm_and_ps(a.hi, _mm_cmpgt_ps(a.hi, z))};
}
inline f32x8 step01(f32x8 a) {
  __m128 z = _mm_setzero_ps();
  __m128 one = _mm_set1_ps(1.0f);
  return {_mm_and_ps(one, _mm_cmpgt_ps(a.lo, z)),
          _mm_and_ps(one, _mm_cmpgt_ps(a.hi, z))};
}

#elif defined(SUGAR_SIMD_NEON)

struct f32x8 {
  float32x4_t lo, hi;
};

inline f32x8 zeros() { return {vdupq_n_f32(0.0f), vdupq_n_f32(0.0f)}; }
inline f32x8 broadcast(float x) { return {vdupq_n_f32(x), vdupq_n_f32(x)}; }
inline f32x8 loadu(const float* p) { return {vld1q_f32(p), vld1q_f32(p + 4)}; }
inline void storeu(float* p, f32x8 a) {
  vst1q_f32(p, a.lo);
  vst1q_f32(p + 4, a.hi);
}
inline f32x8 add(f32x8 a, f32x8 b) {
  return {vaddq_f32(a.lo, b.lo), vaddq_f32(a.hi, b.hi)};
}
inline f32x8 sub(f32x8 a, f32x8 b) {
  return {vsubq_f32(a.lo, b.lo), vsubq_f32(a.hi, b.hi)};
}
inline f32x8 mul(f32x8 a, f32x8 b) {
  return {vmulq_f32(a.lo, b.lo), vmulq_f32(a.hi, b.hi)};
}
inline f32x8 div(f32x8 a, f32x8 b) {
#if defined(__aarch64__)
  return {vdivq_f32(a.lo, b.lo), vdivq_f32(a.hi, b.hi)};
#else
  float ta[8], tb[8];
  storeu(ta, a);
  storeu(tb, b);
  for (int i = 0; i < 8; ++i) ta[i] /= tb[i];
  return loadu(ta);
#endif
}
inline f32x8 sqrt(f32x8 a) {
#if defined(__aarch64__)
  return {vsqrtq_f32(a.lo), vsqrtq_f32(a.hi)};
#else
  float t[8];
  storeu(t, a);
  for (int i = 0; i < 8; ++i) t[i] = std::sqrt(t[i]);
  return loadu(t);
#endif
}
inline f32x8 vmax(f32x8 a, f32x8 b) {
  return {vmaxq_f32(a.lo, b.lo), vmaxq_f32(a.hi, b.hi)};
}
inline f32x8 relu(f32x8 a) {
  float32x4_t z = vdupq_n_f32(0.0f);
  return {vreinterpretq_f32_u32(
              vandq_u32(vreinterpretq_u32_f32(a.lo), vcgtq_f32(a.lo, z))),
          vreinterpretq_f32_u32(
              vandq_u32(vreinterpretq_u32_f32(a.hi), vcgtq_f32(a.hi, z)))};
}
inline f32x8 step01(f32x8 a) {
  float32x4_t z = vdupq_n_f32(0.0f);
  float32x4_t one = vdupq_n_f32(1.0f);
  return {vreinterpretq_f32_u32(
              vandq_u32(vreinterpretq_u32_f32(one), vcgtq_f32(a.lo, z))),
          vreinterpretq_f32_u32(
              vandq_u32(vreinterpretq_u32_f32(one), vcgtq_f32(a.hi, z)))};
}

#else  // scalar fallback: the same ops, one lane at a time

struct f32x8 {
  float v[8];
};

inline f32x8 zeros() { return {{0, 0, 0, 0, 0, 0, 0, 0}}; }
inline f32x8 broadcast(float x) { return {{x, x, x, x, x, x, x, x}}; }
inline f32x8 loadu(const float* p) {
  f32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = p[i];
  return r;
}
inline void storeu(float* p, f32x8 a) {
  for (int i = 0; i < 8; ++i) p[i] = a.v[i];
}
inline f32x8 add(f32x8 a, f32x8 b) {
  f32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}
inline f32x8 sub(f32x8 a, f32x8 b) {
  f32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = a.v[i] - b.v[i];
  return r;
}
inline f32x8 mul(f32x8 a, f32x8 b) {
  f32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = a.v[i] * b.v[i];
  return r;
}
inline f32x8 div(f32x8 a, f32x8 b) {
  f32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = a.v[i] / b.v[i];
  return r;
}
inline f32x8 sqrt(f32x8 a) {
  f32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = std::sqrt(a.v[i]);
  return r;
}
inline f32x8 vmax(f32x8 a, f32x8 b) {
  f32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
  return r;
}
inline f32x8 relu(f32x8 a) {
  f32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = a.v[i] > 0.0f ? a.v[i] : 0.0f;
  return r;
}
inline f32x8 step01(f32x8 a) {
  f32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = a.v[i] > 0.0f ? 1.0f : 0.0f;
  return r;
}

#endif

/// Separate multiply then add — NEVER an FMA. The intermediate rounding is
/// part of the determinism contract: an FMA would make SIMD builds drift
/// from the scalar fallback by up to one ulp per accumulation step.
inline f32x8 mul_add(f32x8 a, f32x8 b, f32x8 c) { return add(mul(a, b), c); }

// ---- Fixed-order reductions ---------------------------------------------
//
// The strided-8 reduction spec: partial[l] accumulates the elements whose
// index ≡ l (mod 8) — the vector loop handles whole blocks of 8, the tail
// elements n8..n-1 land in lanes 0..(n%8)-1 — and the partials combine with
// the fixed `reduce8` tree below. Every consumer (dot products, squared
// distances, softmax row sums/maxima, loss sums) uses this exact order, so
// the result is a pure function of the input, not of the ISA.

/// The fixed combine tree: ((p0+p4)+(p2+p6)) + ((p1+p5)+(p3+p7)).
inline float reduce8(const float p[8]) {
  return ((p[0] + p[4]) + (p[2] + p[6])) + ((p[1] + p[5]) + (p[3] + p[7]));
}

/// Same tree with the lane-max rule instead of +.
inline float reduce8_max(const float p[8]) {
  auto mx = [](float a, float b) { return a > b ? a : b; };
  return mx(mx(mx(p[0], p[4]), mx(p[2], p[6])), mx(mx(p[1], p[5]), mx(p[3], p[7])));
}

/// dst[i] += a * src[i] — the GEMM microkernel row update. Elementwise, so
/// each dst[i] keeps its accumulation order no matter the lane width.
inline void axpy(float* dst, const float* src, float a, std::size_t n) {
  const f32x8 va = broadcast(a);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes)
    storeu(dst + i, mul_add(va, loadu(src + i), loadu(dst + i)));
  for (; i < n; ++i) dst[i] += a * src[i];
}

/// dst[i] += src[i].
inline void vadd_inplace(float* dst, const float* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes)
    storeu(dst + i, add(loadu(dst + i), loadu(src + i)));
  for (; i < n; ++i) dst[i] += src[i];
}

/// dst[i] *= src[i].
inline void vmul_inplace(float* dst, const float* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes)
    storeu(dst + i, mul(loadu(dst + i), loadu(src + i)));
  for (; i < n; ++i) dst[i] *= src[i];
}

/// dst[i] *= s.
inline void vscale_inplace(float* dst, float s, std::size_t n) {
  const f32x8 vs = broadcast(s);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes)
    storeu(dst + i, mul(loadu(dst + i), vs));
  for (; i < n; ++i) dst[i] *= s;
}

/// sum(a[i] * b[i]) in strided-8 order.
inline float dot(const float* a, const float* b, std::size_t n) {
  f32x8 acc = zeros();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes)
    acc = mul_add(loadu(a + i), loadu(b + i), acc);
  float lanes[kLanes];
  storeu(lanes, acc);
  for (std::size_t t = i; t < n; ++t) lanes[t - i] += a[t] * b[t];
  return reduce8(lanes);
}

/// sum((a[i]-b[i])^2) in strided-8 order.
inline float squared_distance(const float* a, const float* b, std::size_t n) {
  f32x8 acc = zeros();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    f32x8 d = sub(loadu(a + i), loadu(b + i));
    acc = mul_add(d, d, acc);
  }
  float lanes[kLanes];
  storeu(lanes, acc);
  for (std::size_t t = i; t < n; ++t) {
    float d = a[t] - b[t];
    lanes[t - i] += d * d;
  }
  return reduce8(lanes);
}

/// sum(a[i]) in strided-8 order.
inline float sum(const float* a, std::size_t n) {
  f32x8 acc = zeros();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) acc = add(acc, loadu(a + i));
  float lanes[kLanes];
  storeu(lanes, acc);
  for (std::size_t t = i; t < n; ++t) lanes[t - i] += a[t];
  return reduce8(lanes);
}

/// max over a[0..n): strided-8 lanes + reduce8_max for n >= 8, a plain
/// forward scan below that. Requires n >= 1 and non-NaN input.
inline float max(const float* a, std::size_t n) {
  if (n < kLanes) {
    float m = a[0];
    for (std::size_t i = 1; i < n; ++i) m = a[i] > m ? a[i] : m;
    return m;
  }
  f32x8 acc = loadu(a);
  std::size_t i = kLanes;
  for (; i + kLanes <= n; i += kLanes) acc = vmax(loadu(a + i), acc);
  float lanes[kLanes];
  storeu(lanes, acc);
  for (std::size_t t = i; t < n; ++t) {
    std::size_t l = t - i;
    lanes[l] = a[t] > lanes[l] ? a[t] : lanes[l];
  }
  return reduce8_max(lanes);
}

/// sum(a[i]^2) over doubles in the same strided-8 order (tree histogram /
/// Gini sums are double-precision; the unrolled scalar form IS the spec —
/// there is no wide-double backend, so every build runs this exact code).
inline double sum_squares_f64(const double* a, std::size_t n) {
  double p[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    for (std::size_t l = 0; l < 8; ++l) p[l] += a[i + l] * a[i + l];
  for (std::size_t t = i; t < n; ++t) p[t - i] += a[t] * a[t];
  return ((p[0] + p[4]) + (p[2] + p[6])) + ((p[1] + p[5]) + (p[3] + p[7]));
}

}  // namespace sugar::core::simd
