#include "core/artifact.h"

#include "core/io.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace sugar::core {
namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double n) {
  if (!std::isfinite(n)) {
    // JSON has no NaN/Inf; a diverged metric serializes as null.
    out += "null";
    return;
  }
  double integral;
  if (std::modf(n, &integral) == 0.0 && std::fabs(n) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(n));
    out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", n);
    out += buf;
  }
}

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) == word) {
      pos += word.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos >= text.size()) return std::nullopt;
        char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return std::nullopt;
            }
            // Artifacts are ASCII-producing; decode BMP code points as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> parse_value(int depth) {
    if (depth > 64) return std::nullopt;
    skip_ws();
    if (pos >= text.size()) return std::nullopt;
    char c = text[pos];
    if (c == '{') {
      ++pos;
      Json obj = Json::object();
      skip_ws();
      if (consume('}')) return obj;
      while (true) {
        skip_ws();
        auto key = parse_string();
        if (!key) return std::nullopt;
        skip_ws();
        if (!consume(':')) return std::nullopt;
        auto value = parse_value(depth + 1);
        if (!value) return std::nullopt;
        obj.set(std::move(*key), std::move(*value));
        skip_ws();
        if (consume(',')) continue;
        if (consume('}')) return obj;
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos;
      Json arr = Json::array();
      skip_ws();
      if (consume(']')) return arr;
      while (true) {
        auto value = parse_value(depth + 1);
        if (!value) return std::nullopt;
        arr.push(std::move(*value));
        skip_ws();
        if (consume(',')) continue;
        if (consume(']')) return arr;
        return std::nullopt;
      }
    }
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      return Json(std::move(*s));
    }
    if (literal("true")) return Json(true);
    if (literal("false")) return Json(false);
    if (literal("null")) return Json();
    // Number.
    std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    bool digits = false;
    while (pos < text.size() &&
           ((text[pos] >= '0' && text[pos] <= '9') || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == '-' ||
            text[pos] == '+')) {
      digits = digits || (text[pos] >= '0' && text[pos] <= '9');
      ++pos;
    }
    if (!digits) return std::nullopt;
    std::string num(text.substr(start, pos - start));
    char* end = nullptr;
    double v = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return std::nullopt;
    return Json(v);
  }
};

}  // namespace

Json& Json::set(std::string key, Json value) {
  type_ = Type::kObject;
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  type_ = Type::kArray;
  arr_.push_back(std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: append_number(out, num_); break;
    case Type::kString: append_escaped(out, str_); break;
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        append_escaped(out, k);
        out += indent < 0 ? ":" : ": ";
        v.dump_to(out, indent, depth + 1);
      }
      if (!first) newline(depth);
      out += '}';
      break;
    }
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const auto& v : arr_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      if (!first) newline(depth);
      out += ']';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

std::optional<Json> Json::parse(std::string_view text) {
  Parser p{text};
  auto value = p.parse_value(0);
  if (!value) return std::nullopt;
  p.skip_ws();
  if (p.pos != text.size()) return std::nullopt;  // trailing garbage
  return value;
}

bool atomic_write_file(const std::string& path, std::string_view content,
                       std::string* error, Io* io) {
  Io& fs = io ? *io : real_io();
  return fs.atomic_write(path, content, error);
}

std::vector<Json> load_jsonl(const std::string& path, std::size_t* skipped) {
  std::vector<Json> out;
  if (skipped) *skipped = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in) return out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto value = Json::parse(line);
    if (value) {
      out.push_back(std::move(*value));
    } else if (skipped) {
      ++*skipped;  // torn line from a crashed writer: skip, never fatal
    }
  }
  return out;
}

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a 64 offset basis
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace sugar::core
