#include "core/report.h"

#include <cstdio>
#include <iostream>
#include <sstream>

namespace sugar::core {

MarkdownTable::MarkdownTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

MarkdownTable& MarkdownTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string MarkdownTable::to_string() const {
  std::ostringstream os;
  os << "|";
  for (const auto& h : header_) os << " " << h << " |";
  os << "\n|";
  for (std::size_t i = 0; i < header_.size(); ++i) os << "---|";
  os << "\n";
  for (const auto& row : rows_) {
    os << "|";
    for (const auto& c : row) os << " " << c << " |";
    os << "\n";
  }
  return os.str();
}

std::string MarkdownTable::pct(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, 100.0 * fraction);
  return buf;
}

std::string MarkdownTable::num(double value, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

void print_table(const std::string& title, const MarkdownTable& table) {
  std::cout << "\n### " << title << "\n\n" << table.to_string() << std::flush;
}

}  // namespace sugar::core
