#include "core/report.h"

#include <cstdio>
#include <iostream>
#include <sstream>

namespace sugar::core {

MarkdownTable::MarkdownTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

MarkdownTable& MarkdownTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string MarkdownTable::to_string() const {
  std::ostringstream os;
  os << "|";
  for (const auto& h : header_) os << " " << h << " |";
  os << "\n|";
  for (std::size_t i = 0; i < header_.size(); ++i) os << "---|";
  os << "\n";
  for (const auto& row : rows_) {
    os << "|";
    for (const auto& c : row) os << " " << c << " |";
    os << "\n";
  }
  return os.str();
}

std::string MarkdownTable::pct(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, 100.0 * fraction);
  return buf;
}

std::string MarkdownTable::num(double value, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

void print_table(const std::string& title, const MarkdownTable& table) {
  std::cout << "\n### " << title << "\n\n" << table.to_string() << std::flush;
}

std::string ingest_summary(const dataset::CleaningReport& census) {
  std::ostringstream os;
  os << "ingest " << census.dataset_name << ": " << census.total_packets
     << " frames, " << census.removed_malformed << " malformed ("
     << MarkdownTable::pct(census.malformed_fraction(), 2) << "%), "
     << census.removed_spurious_total() << " spurious removed ("
     << MarkdownTable::pct(census.removed_spurious_fraction(), 2) << "%)";
  if (census.removed_malformed > 0) {
    os << " [";
    bool first = true;
    for (std::size_t i = 0; i < census.malformed_by_error.size(); ++i) {
      if (census.malformed_by_error[i] == 0) continue;
      if (!first) os << ", ";
      os << net::to_string(static_cast<net::ParseError>(i)) << "="
         << census.malformed_by_error[i];
      first = false;
    }
    os << "]";
  }
  return os.str();
}

void print_ingest_summaries(
    const std::vector<const dataset::CleaningReport*>& censuses) {
  for (const auto* c : censuses)
    if (c) std::cout << "- " << ingest_summary(*c) << "\n";
  std::cout << std::flush;
}

}  // namespace sugar::core
