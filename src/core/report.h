// Result-table formatting: the bench binaries print their tables as
// markdown that mirrors the layout of the paper's tables, so paper-vs-
// measured comparison (EXPERIMENTS.md) is a visual diff.
#pragma once

#include <string>
#include <vector>

#include "dataset/clean.h"

namespace sugar::core {

class MarkdownTable {
 public:
  explicit MarkdownTable(std::vector<std::string> header);

  MarkdownTable& add_row(std::vector<std::string> cells);
  [[nodiscard]] std::string to_string() const;

  static std::string pct(double fraction, int decimals = 1);
  static std::string num(double value, int decimals = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a titled table to stdout.
void print_table(const std::string& title, const MarkdownTable& table);

/// One-line ingestion-health summary of a cleaning census: totals, malformed
/// frames (bucketed by ParseError when any exist) and spurious removals.
/// Every scenario report prints this so capture damage is never invisible.
std::string ingest_summary(const dataset::CleaningReport& census);

/// Prints the ingest summaries of the given censuses to stdout.
void print_ingest_summaries(
    const std::vector<const dataset::CleaningReport*>& censuses);

}  // namespace sugar::core
