// Deterministic chaos injection for the serving plane. A ChaosInjector
// owns one seeded decision stream PER SITE: the n-th draw at a site fires
// iff splitmix64(seed, site, n) falls below that site's probability, so a
// (seed, site, draw-index) triple always decides the same way — chaos runs
// are replayable the same way net::FaultInjector's frame mutations are, and
// firing at one site never perturbs another site's stream. Draw indices are
// per-site atomic counters; under a multi-threaded round the *assignment*
// of draws to packets can vary with scheduling, so chaos-enabled runs are
// outside the bit-identity contract (chaos-off runs are unaffected: every
// injection point is a single branch on a null pointer).
//
// Sites cover the fault classes the crash-tolerance arc needs: worker
// stalls, classifier latency spikes and hard faults, flow-table allocation
// failure, and disk-full / short-write / rename faults behind the core::Io
// shim (ChaosIo) used by snapshot writes and core::artifact.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "core/artifact.h"
#include "core/io.h"

namespace sugar::core {

enum class ChaosSite : std::uint8_t {
  kShardStall = 0,      // shard worker sleeps mid-round
  kClassifierDelay,     // classify() latency spike
  kClassifierFault,     // classify() hard failure (simulated exception)
  kFlowTableAlloc,      // flow-table slot allocation fails
  kIoWriteFail,         // write_file refuses outright (disk full)
  kIoShortWrite,        // write_file persists a prefix, then fails
  kIoRenameFail,        // rename_file fails (commit step)
  kCount,
};
constexpr std::size_t kChaosSiteCount = static_cast<std::size_t>(ChaosSite::kCount);
const char* to_string(ChaosSite site);

struct ChaosConfig {
  bool enabled = false;
  std::uint64_t seed = 0;
  /// Per-site fire probability in [0, 1]; default 0 everywhere, so a
  /// default-constructed config injects nothing even when enabled.
  std::array<double, kChaosSiteCount> probability{};
  /// Sleep applied when kShardStall fires.
  std::uint64_t stall_usec = 20'000;
  /// Sleep applied when kClassifierDelay fires.
  std::uint64_t classifier_delay_usec = 2'000;

  ChaosConfig& with(ChaosSite site, double p) {
    probability[static_cast<std::size_t>(site)] = p;
    return *this;
  }

  /// SUGAR_CHAOS=<seed> (strict from_chars; absent, malformed or 0 leaves
  /// chaos off). A valid non-zero seed enables every site at a moderate
  /// ambient probability — the chaos-smoke configuration.
  static ChaosConfig from_env();
};

class ChaosInjector {
 public:
  explicit ChaosInjector(ChaosConfig cfg);

  [[nodiscard]] const ChaosConfig& config() const { return cfg_; }
  [[nodiscard]] bool enabled() const { return cfg_.enabled; }

  /// Draws the site's next decision (advances its draw counter). Always
  /// false when disabled or the site probability is 0.
  bool should_fire(ChaosSite site);

  /// should_fire + the site's configured sleep (kShardStall /
  /// kClassifierDelay), dozing in 1ms slices while polling `cancel` so a
  /// cooperative round abort can cut a stall short. Returns whether the
  /// site fired.
  bool maybe_stall(ChaosSite site, const std::atomic<bool>* cancel = nullptr);

  [[nodiscard]] std::uint64_t draws(ChaosSite site) const {
    return draws_[static_cast<std::size_t>(site)].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t fired(ChaosSite site) const {
    return fired_[static_cast<std::size_t>(site)].load(std::memory_order_relaxed);
  }

  /// {seed, sites: [{site, probability, draws, fired}...]} — the chaos
  /// section of a bench artifact.
  [[nodiscard]] Json to_json() const;

 private:
  ChaosConfig cfg_;
  std::array<std::atomic<std::uint64_t>, kChaosSiteCount> draws_{};
  std::array<std::atomic<std::uint64_t>, kChaosSiteCount> fired_{};
};

/// Io shim that injects disk-full, short-write and rename faults into an
/// underlying Io (the real filesystem by default). Reads pass through
/// untouched — restore-side robustness is exercised with corrupted bytes,
/// not phantom read errors.
class ChaosIo final : public Io {
 public:
  explicit ChaosIo(ChaosInjector& chaos, Io* base = nullptr)
      : chaos_(chaos), base_(base ? *base : real_io()) {}

  bool write_file(const std::string& path, std::string_view content,
                  std::string* error) override;
  bool rename_file(const std::string& from, const std::string& to,
                   std::string* error) override;
  void remove_file(const std::string& path) override;
  bool read_file(const std::string& path, std::string& out,
                 std::string* error) override;
  bool append_file(const std::string& path, std::string_view content,
                   std::string* error) override;

 private:
  ChaosInjector& chaos_;
  Io& base_;
};

}  // namespace sugar::core
