// Out-of-core scenario runner: the full trafficgen → clean → split →
// featurize → quantize → fit → evaluate pipeline executed entirely through
// SUGC stores, so the working set is one row group per stage plus the
// bounded page cache — never the dataset. This is the engine behind
// `bench_table8_shallow --scale <packets>`: the same shallow-baseline
// claim as Table 8, demonstrated at dataset sizes 10–100× the cache
// budget with flat peak RSS.
//
// Stages (each a streaming pass over stores on disk):
//   1. generate  — trafficgen chunks appended to a packet store
//                  (bytes, ts, cls, flow columns)
//   2. clean     — parse + Table-13 spurious filter, written as a
//                  selection vector (keep store), packets never rewritten
//   3. split     — per-flow splitmix hash 80/20, a second selection pass
//   4. featurize — header features (Table 12) for kept rows, routed to
//                  train/test F32 feature stores
//   5. quantize  — two-pass ColumnSketch over the train store (pass 1
//                  cuts, pass 2 codes) into a U8 code store — bit-identical
//                  to what BinnedMatrix would produce on the resident data
//   6. fit       — RandomForest::fit_binned over a PagedCodeSource
//   7. evaluate  — streamed per-row prediction on the test store
//
// Determinism: every stage is sequential in row order or delegates to the
// one-feature-per-worker parallel contracts, so the result digest is a
// pure function of (scale, seed) at any SUGAR_THREADS, page-cache budget
// or group size.
#pragma once

#include <cstdint>
#include <string>

#include "core/artifact.h"

namespace sugar::core {

struct OocOptions {
  /// Directory for the intermediate store files (created by the caller).
  std::string dir;
  /// Stop generating once the packet store holds at least this many rows.
  std::uint64_t target_packets = 200000;
  std::uint64_t seed = 5;
  /// Rows per store page group — the page-size knob.
  std::size_t group_rows = 65536;
  int bins = 64;
  int forest_trees = 8;
  int max_depth = 12;
  int features_per_split = 6;
  double train_fraction = 0.8;
  /// Leave the store files on disk after the run (debugging).
  bool keep_files = false;
};

struct OocResult {
  /// Deterministic fingerprint of the test-set predictions.
  std::uint64_t digest = 0;
  /// Artifact payload: rows per stage, accuracy/macro-F1, rows/s, cache
  /// hit rate, peak RSS, total store bytes, per-stage seconds.
  Json json = Json::object();
};

/// Runs the pipeline. Throws core::RunError on store I/O failures or an
/// empty train/test partition.
OocResult run_ooc_scale(const OocOptions& opts);

}  // namespace sugar::core
