// Observability substrate: low-overhead, thread-aware tracing spans and
// hot-path counters. Lives in sugar_parallel (beside the thread pool) so
// every layer — net, dataset, ml, replearn, core — can emit without a
// dependency cycle; JSON assembly sits one layer up in core/trace_json.h.
//
// Three runtime modes, selected by SUGAR_TRACE (strict whole-string parse,
// same discipline as SUGAR_THREADS):
//
//   off      (default) nothing is recorded. The macro guard is a single
//            relaxed atomic load; spans and counters are observational
//            only, so kernel outputs are bit-identical to a build without
//            any instrumentation (gated by bench_micro_substrate
//            --trace-compare). Compiling with -DSUGAR_TRACE_DISABLED
//            removes even the atomic load.
//   summary  per-phase aggregates (call count, wall ns, thread-CPU ns)
//            and counters are kept; individual span events are not.
//   spans    everything in summary, plus a retained per-thread event
//            timeline (begin/duration/depth) suitable for a Chrome
//            trace_event dump (chrome://tracing, Perfetto).
//
// Threading: each thread owns a ThreadState behind its own mutex; spans
// never touch another thread's state, so emission is contention-free.
// Snapshot functions (phase_stats / counters_snapshot / events) lock each
// thread's state briefly and may run concurrently with emission — they are
// exercised under TSan by the tsan_stress TraceConcurrent tests.
//
// Determinism: nothing here feeds back into computation. Counters are
// plain monotonic accumulators; reset() zeroes values but never erases
// registry nodes, so `static Counter&` references cached by the
// SUGAR_TRACE_COUNT macro stay valid for the process lifetime.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sugar::core::trace {

enum class Mode { kOff, kSummary, kSpans };

/// Strict parse of a SUGAR_TRACE value: "off" | "summary" | "spans".
/// Anything else -> nullopt (caller warns and keeps the default).
std::optional<Mode> parse_mode(std::string_view text);

/// Current mode. Lazily initialized from SUGAR_TRACE on first query;
/// absent or malformed values fall back to kOff (with a stderr warning
/// for malformed ones, mirroring threads_from_env()).
Mode mode();

/// Override the mode at runtime (tests, --trace CLI). Safe at quiescent
/// points; spans already open keep recording under the old decision.
void set_mode(Mode m);

/// True when any recording is active. One relaxed atomic load — this is
/// the only cost the hot path pays in the default off mode.
bool enabled();

const char* mode_name(Mode m);

// ---------------------------------------------------------------------------
// Counters

/// A named monotonic counter. Stable address for the process lifetime;
/// add() is a relaxed fetch_add, so concurrent emitters never block.
class Counter {
 public:
  void add(std::uint64_t delta);
  [[nodiscard]] std::uint64_t value() const;

 private:
  friend struct Registry;
  friend Counter& counter(const std::string& name);
  friend void reset();
  Counter() = default;
  struct Impl;
  Impl* impl_ = nullptr;
};

/// Intern a counter by name. The first call creates it at zero; later
/// calls return the same object. Never invalidated (see reset()).
Counter& counter(const std::string& name);

struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

/// All counters, sorted by name, with their current values. Includes
/// counters currently at zero once they have been interned.
std::vector<CounterValue> counters_snapshot();

// ---------------------------------------------------------------------------
// Spans

/// RAII scoped span. Construction is a no-op when !enabled(); otherwise
/// the destructor records wall + thread-CPU time into the per-phase
/// aggregate for `name`, and in kSpans mode appends a timeline event.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  explicit ScopedSpan(const std::string& name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void open(const char* name);
  bool active_ = false;
  std::uint32_t name_id_ = 0;
  std::uint64_t begin_ns_ = 0;
  std::uint64_t cpu_begin_ns_ = 0;
};

/// Per-phase aggregate: every span with the same name, across threads.
struct PhaseStat {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t cpu_ns = 0;
};

/// One retained timeline event (kSpans mode only).
struct SpanEvent {
  std::string name;
  std::uint64_t thread = 0;    ///< stable per-thread ordinal (0 = first seen)
  std::string thread_label;    ///< "" or e.g. "pool-worker-3", "cell-crew-0"
  std::uint64_t begin_ns = 0;  ///< relative to the registry epoch
  std::uint64_t dur_ns = 0;
  std::uint64_t cpu_ns = 0;
  std::uint32_t depth = 0;     ///< nesting depth at emission (0 = top level)
};

/// Aggregates per span name, sorted by name.
std::vector<PhaseStat> phase_stats();

/// Retained events from every thread, sorted by (thread, begin_ns).
/// Empty unless mode was kSpans while the spans closed.
std::vector<SpanEvent> events();

/// Events discarded after a thread hit its retention cap.
std::uint64_t dropped_events();

/// Spans currently open across all threads (0 after balanced RAII use).
std::size_t open_span_count();

/// Label the calling thread in the merged timeline ("pool-worker-2", ...).
void set_thread_label(const std::string& label);

/// Zero all counters and aggregates, drop retained events, and restart
/// the epoch clock. Counter addresses and interned names survive. Spans
/// still open keep their begin timestamps against the OLD epoch — call
/// only at quiescent points (cell boundaries, test SetUp).
void reset();

}  // namespace sugar::core::trace

// ---------------------------------------------------------------------------
// Emission macros. SUGAR_TRACE_SPAN declares a block-scoped RAII span;
// SUGAR_TRACE_COUNT bumps a counter, interning it once per call site via a
// function-local static (std::map nodes are never erased, so the reference
// cannot dangle). Both compile to nothing under -DSUGAR_TRACE_DISABLED and
// cost one relaxed load when tracing is off.
#if defined(SUGAR_TRACE_DISABLED)
#define SUGAR_TRACE_SPAN(name) \
  do {                         \
  } while (false)
#define SUGAR_TRACE_COUNT(name, delta) \
  do {                                 \
  } while (false)
#else
#define SUGAR_TRACE_CAT2(a, b) a##b
#define SUGAR_TRACE_CAT(a, b) SUGAR_TRACE_CAT2(a, b)
#define SUGAR_TRACE_SPAN(name)                                    \
  ::sugar::core::trace::ScopedSpan SUGAR_TRACE_CAT(sugar_trace_,  \
                                                   __LINE__) {    \
    name                                                          \
  }
#define SUGAR_TRACE_COUNT(name, delta)                                    \
  do {                                                                    \
    if (::sugar::core::trace::enabled()) {                                \
      static ::sugar::core::trace::Counter& SUGAR_TRACE_CAT(              \
          sugar_trace_ctr_, __LINE__) = ::sugar::core::trace::counter(    \
          name);                                                          \
      SUGAR_TRACE_CAT(sugar_trace_ctr_, __LINE__)                         \
          .add(static_cast<std::uint64_t>(delta));                        \
    }                                                                     \
  } while (false)
#endif
