#include "core/threadpool.h"

#include "core/envparse.h"
#include "core/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <string_view>

namespace sugar::core {
namespace {

// Set inside pool workers so a nested parallel_for degrades to an inline
// serial run instead of deadlocking on the pool it is already inside.
thread_local bool tl_in_pool_worker = false;

}  // namespace

// One in-flight parallel_for. Blocks are claimed via an atomic ticket
// (`next`); `done` counts finished blocks so the submitting thread knows
// when the range is fully covered. Heap-allocated and shared with the
// workers so a late-waking worker can observe an already-finished job
// without touching freed stack memory.
struct ThreadPool::Job {
  std::size_t begin = 0, end = 0, grain = 1, blocks = 0;
  const BlockFn* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex err_mu;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = threads_from_env();
  if (threads < 1) threads = 1;
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::work_on(Job& job) {
  for (;;) {
    std::size_t b = job.next.fetch_add(1, std::memory_order_relaxed);
    if (b >= job.blocks) return;
    std::size_t lo = job.begin + b * job.grain;
    std::size_t hi = std::min(job.end, lo + job.grain);
    try {
      (*job.fn)(lo, hi);
    } catch (...) {
      std::lock_guard<std::mutex> lk(job.err_mu);
      if (!job.error) job.error = std::current_exception();
    }
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.blocks) {
      std::lock_guard<std::mutex> lk(mu_);
      cv_done_.notify_all();
    }
  }
}

void ThreadPool::worker_loop(std::size_t index) {
  tl_in_pool_worker = true;
  // Unconditional: the pool is often built before --trace flips the mode
  // on, and one registration per worker thread is not a hot path.
  trace::set_thread_label("pool-worker-" + std::to_string(index + 1));
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_work_.wait(lk, [&] {
      return stop_ || (job_ && job_->next.load(std::memory_order_relaxed) <
                                   job_->blocks);
    });
    if (stop_) return;
    std::shared_ptr<Job> job = job_;
    lk.unlock();
    work_on(*job);
    lk.lock();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              std::size_t grain, const BlockFn& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const std::size_t blocks = block_count(begin, end, grain);
  auto run_serial = [&] {
    for (std::size_t b = 0; b < blocks; ++b) {
      std::size_t lo = begin + b * grain;
      fn(lo, std::min(end, lo + grain));
    }
  };
  if (workers_.empty() || blocks <= 1 || tl_in_pool_worker) {
    run_serial();
    return;
  }
  // Another thread already has the pool (concurrent supervisor cells):
  // run this call's blocks inline — identical results, no queueing.
  std::unique_lock<std::mutex> submit(submit_mu_, std::try_to_lock);
  if (!submit.owns_lock()) {
    run_serial();
    return;
  }

  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->blocks = blocks;
  job->fn = &fn;
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = job;
  }
  cv_work_.notify_all();
  work_on(*job);  // the submitting thread is worker #0
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] {
      return job->done.load(std::memory_order_acquire) == job->blocks;
    });
    job_.reset();
  }
  if (job->error) std::rethrow_exception(job->error);
}

std::size_t threads_from_env() {
  std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const char* s = std::getenv("SUGAR_THREADS");
  if (!s) return hw;
  std::size_t value = 0;
  if (!core::parse_env_number("SUGAR_THREADS", s, value)) return hw;
  if (value == 0) return hw;  // 0 = auto
  constexpr std::size_t kMaxThreads = 512;
  if (value > kMaxThreads) {
    std::cerr << "sugar: clamping SUGAR_THREADS=" << value << " to "
              << kMaxThreads << "\n";
    value = kMaxThreads;
  }
  return value;
}

namespace {
std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;
}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(threads_from_env());
  return *g_pool;
}

std::size_t global_thread_count() { return global_pool().thread_count(); }

void set_global_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  g_pool = std::make_unique<ThreadPool>(threads == 0 ? threads_from_env()
                                                     : threads);
}

}  // namespace sugar::core
