#include "core/trace_json.h"

#include <map>
#include <set>
#include <string>
#include <utility>

namespace sugar::core {
namespace {

double ns_to_ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }
double ns_to_us(std::uint64_t ns) { return static_cast<double>(ns) / 1e3; }

}  // namespace

Json trace_section_json() {
  Json section = Json::object();
  section.set("mode", Json(trace::mode_name(trace::mode())));
  Json phases = Json::array();
  for (const trace::PhaseStat& p : trace::phase_stats()) {
    Json row = Json::object();
    row.set("name", Json(p.name));
    row.set("count", Json(static_cast<double>(p.count)));
    row.set("wall_ms", Json(ns_to_ms(p.wall_ns)));
    row.set("cpu_ms", Json(ns_to_ms(p.cpu_ns)));
    phases.push(std::move(row));
  }
  section.set("phases", std::move(phases));
  Json counters = Json::array();
  for (const trace::CounterValue& c : trace::counters_snapshot()) {
    Json row = Json::object();
    row.set("name", Json(c.name));
    row.set("value", Json(static_cast<double>(c.value)));
    counters.push(std::move(row));
  }
  section.set("counters", std::move(counters));
  section.set("dropped_events",
              Json(static_cast<double>(trace::dropped_events())));
  return section;
}

Json counter_delta_json(const std::vector<trace::CounterValue>& before,
                        const std::vector<trace::CounterValue>& after) {
  std::map<std::string, std::uint64_t> base;
  for (const auto& c : before) base[c.name] = c.value;
  Json deltas = Json::array();
  for (const auto& c : after) {
    auto it = base.find(c.name);
    const std::uint64_t prev = it == base.end() ? 0 : it->second;
    if (c.value <= prev) continue;  // counters are monotone; 0-delta omitted
    Json row = Json::object();
    row.set("name", Json(c.name));
    row.set("delta", Json(static_cast<double>(c.value - prev)));
    deltas.push(std::move(row));
  }
  return deltas;
}

Json chrome_trace_json() {
  Json doc = Json::object();
  Json evs = Json::array();
  std::map<std::uint64_t, std::string> labels;
  for (const trace::SpanEvent& e : trace::events()) {
    if (!e.thread_label.empty()) labels.emplace(e.thread, e.thread_label);
    Json ev = Json::object();
    ev.set("name", Json(e.name));
    ev.set("ph", Json("X"));
    ev.set("ts", Json(ns_to_us(e.begin_ns)));
    ev.set("dur", Json(ns_to_us(e.dur_ns)));
    ev.set("pid", Json(1));
    ev.set("tid", Json(static_cast<double>(e.thread)));
    Json args = Json::object();
    args.set("cpu_ms", Json(ns_to_ms(e.cpu_ns)));
    args.set("depth", Json(static_cast<double>(e.depth)));
    ev.set("args", std::move(args));
    evs.push(std::move(ev));
  }
  for (const auto& [tid, label] : labels) {
    Json meta = Json::object();
    meta.set("name", Json("thread_name"));
    meta.set("ph", Json("M"));
    meta.set("pid", Json(1));
    meta.set("tid", Json(static_cast<double>(tid)));
    Json args = Json::object();
    args.set("name", Json(label));
    meta.set("args", std::move(args));
    evs.push(std::move(meta));
  }
  doc.set("traceEvents", std::move(evs));
  doc.set("displayTimeUnit", Json("ms"));
  return doc;
}

}  // namespace sugar::core
