#include "core/supervisor.h"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>

#include "core/threadpool.h"
#include "core/trace.h"
#include "core/trace_json.h"

namespace sugar::core {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Strict whole-string numeric parsing (same discipline as core/env).
template <typename T>
bool parse_number(std::string_view sv, T& out) {
  T value{};
  auto [ptr, ec] = std::from_chars(sv.data(), sv.data() + sv.size(), value);
  if (ec != std::errc{} || ptr != sv.data() + sv.size()) return false;
  out = value;
  return true;
}

std::string ablation_bits(const dataset::AblationSpec& spec) {
  std::string bits;
  for (bool b : {spec.randomize_seq_ack, spec.randomize_tstamp, spec.zero_ip,
                 spec.randomize_ip, spec.zero_ports, spec.zero_payload,
                 spec.strip_payload, spec.zero_header})
    bits += b ? '1' : '0';
  return bits;
}

Json summary_to_json(const CellSummary& s) {
  Json j = Json::object();
  j.set("accuracy", Json(s.accuracy));
  j.set("macro_f1", Json(s.macro_f1));
  j.set("micro_f1", Json(s.micro_f1));
  j.set("train_seconds", Json(s.train_seconds));
  j.set("test_seconds", Json(s.test_seconds));
  j.set("n_train", Json(s.n_train));
  j.set("n_test", Json(s.n_test));
  j.set("extra", s.extra);
  return j;
}

CellSummary summary_from_json(const Json& j) {
  CellSummary s;
  auto num = [&](const char* key) {
    const Json* v = j.find(key);
    return v ? v->number_or(0) : 0.0;
  };
  s.accuracy = num("accuracy");
  s.macro_f1 = num("macro_f1");
  s.micro_f1 = num("micro_f1");
  s.train_seconds = num("train_seconds");
  s.test_seconds = num("test_seconds");
  s.n_train = static_cast<std::size_t>(num("n_train"));
  s.n_test = static_cast<std::size_t>(num("n_test"));
  if (const Json* e = j.find("extra")) s.extra = *e;
  return s;
}

}  // namespace

CellSummary summarize(const ml::Metrics& metrics) {
  CellSummary s;
  s.accuracy = metrics.accuracy;
  s.macro_f1 = metrics.macro_f1;
  s.micro_f1 = metrics.micro_f1;
  return s;
}

CellSummary summarize(const ScenarioResult& result) {
  CellSummary s = summarize(result.metrics);
  s.train_seconds = result.train_seconds;
  s.test_seconds = result.test_seconds;
  s.n_train = result.n_train;
  s.n_test = result.n_test;
  s.extra.set("audit_clean", Json(result.audit.clean()));
  return s;
}

CellSummary summarize(const ShallowResult& result) {
  CellSummary s = summarize(result.metrics);
  s.train_seconds = result.train_seconds;
  s.test_seconds = result.test_seconds;
  return s;
}

std::string scenario_cell_key(dataset::TaskId task, std::string_view model,
                              const ScenarioOptions& opts) {
  std::string canon;
  canon += "task=" + dataset::to_string(task);
  canon += ";model=" + std::string(model);
  canon += ";split=" + dataset::to_string(opts.split);
  canon += ";frozen=" + std::string(opts.frozen ? "1" : "0");
  canon += ";abl_train=" + ablation_bits(opts.train_ablation);
  canon += ";abl_test=" + ablation_bits(opts.test_ablation);
  canon += ";nopre=" + std::string(opts.discard_pretraining ? "1" : "0");
  canon += ";seed=" + std::to_string(opts.seed);
  canon += ";emb=" + std::to_string(opts.export_embeddings);
  // Scenario-diversity parameters join the fingerprint only when active, so
  // pre-existing journals and golden artifacts keep their keys while any
  // drift-epoch / family / perturbation change invalidates stale cells.
  if (opts.forest_trees > 0)
    canon += ";trees=" + std::to_string(opts.forest_trees);
  if (!opts.train_variant.is_default() || !opts.test_variant.is_default()) {
    canon += ";var_train=" + opts.train_variant.tag();
    canon += ";var_test=" + opts.test_variant.tag();
  }
  if (opts.perturb.any()) canon += ";perturb=" + opts.perturb.tag();
  return hex64(fnv1a64(canon));
}

std::string generic_cell_key(std::initializer_list<std::string_view> parts) {
  std::string canon;
  for (auto part : parts) {
    canon += part;
    canon += '\x1f';
  }
  return hex64(fnv1a64(canon));
}

std::string bench_usage(std::string_view bench_name) {
  std::string u;
  u += "usage: bench_" + std::string(bench_name) + " [options]\n";
  u += "  --json <path>            write BENCH json artifact to <path>\n";
  u += "  --resume <journal>       resume from a JSONL journal, skipping ok cells\n";
  u += "  --cell-timeout-s <n>     wall-clock watchdog deadline per cell (n > 0)\n";
  u += "  --max-retries <n>        divergence retries per cell (n >= 0)\n";
  u += "  --parallel-cells <n>     run up to n independent cells concurrently (n >= 1)\n";
  u += "  --trace <path>           force SUGAR_TRACE=spans and write a chrome://tracing\n";
  u += "                           trace_event JSON to <path> on finalize\n";
  return u;
}

std::optional<SupervisorConfig> parse_bench_cli(std::string_view bench_name,
                                                int argc, const char* const* argv,
                                                std::string& error,
                                                std::vector<std::string>* extra_args) {
  SupervisorConfig cfg;
  cfg.bench_name = std::string(bench_name);
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto value = [&]() -> std::optional<std::string_view> {
      if (i + 1 >= argc) {
        error = "missing value for " + std::string(arg);
        return std::nullopt;
      }
      return std::string_view(argv[++i]);
    };
    if (arg == "--json") {
      auto v = value();
      if (!v) return std::nullopt;
      cfg.json_path = std::string(*v);
    } else if (arg == "--resume") {
      auto v = value();
      if (!v) return std::nullopt;
      cfg.journal_path = std::string(*v);
      cfg.resume = true;
    } else if (arg == "--cell-timeout-s") {
      auto v = value();
      if (!v) return std::nullopt;
      double n = 0;
      if (!parse_number(*v, n) || n <= 0) {
        error = "malformed --cell-timeout-s '" + std::string(*v) +
                "' (want a positive number)";
        return std::nullopt;
      }
      cfg.cell_timeout_s = n;
    } else if (arg == "--max-retries") {
      auto v = value();
      if (!v) return std::nullopt;
      int n = 0;
      if (!parse_number(*v, n) || n < 0) {
        error = "malformed --max-retries '" + std::string(*v) +
                "' (want a non-negative integer)";
        return std::nullopt;
      }
      cfg.max_retries = n;
    } else if (arg == "--parallel-cells") {
      auto v = value();
      if (!v) return std::nullopt;
      int n = 0;
      if (!parse_number(*v, n) || n < 1) {
        error = "malformed --parallel-cells '" + std::string(*v) +
                "' (want a positive integer)";
        return std::nullopt;
      }
      cfg.max_parallel_cells = n;
    } else if (arg == "--trace") {
      auto v = value();
      if (!v) return std::nullopt;
      if (v->empty()) {
        error = "malformed --trace '' (want a file path)";
        return std::nullopt;
      }
      cfg.trace_path = std::string(*v);
    } else if (extra_args != nullptr) {
      extra_args->push_back(std::string(arg));
    } else {
      error = "unknown flag '" + std::string(arg) + "'";
      return std::nullopt;
    }
  }
  if (cfg.json_path.empty()) cfg.json_path = "BENCH_" + cfg.bench_name + ".json";
  if (cfg.journal_path.empty()) cfg.journal_path = cfg.json_path + ".journal.jsonl";
  return cfg;
}

RunSupervisor::RunSupervisor(SupervisorConfig cfg)
    : cfg_(std::move(cfg)), start_(Clock::now()) {
  // --trace implies the full span timeline regardless of SUGAR_TRACE.
  if (!cfg_.trace_path.empty()) trace::set_mode(trace::Mode::kSpans);
  if (cfg_.json_path.empty()) cfg_.json_path = "BENCH_" + cfg_.bench_name + ".json";
  if (cfg_.journal_path.empty())
    cfg_.journal_path = cfg_.json_path + ".journal.jsonl";
  if (cfg_.resume) {
    std::size_t torn = 0;
    for (Json& entry : load_jsonl(cfg_.journal_path, &torn)) {
      const Json* key = entry.find("key");
      if (!key) continue;
      journal_lines_.push_back(entry.dump());
      journal_[key->string_or("")] = std::move(entry);  // latest occurrence wins
    }
    if (!cfg_.quiet)
      std::fprintf(stderr,
                   "[supervisor:%s] resume: %zu journal entr%s loaded from %s%s\n",
                   cfg_.bench_name.c_str(), journal_.size(),
                   journal_.size() == 1 ? "y" : "ies", cfg_.journal_path.c_str(),
                   torn ? " (torn trailing line dropped)" : "");
  }
}

RunSupervisor::AttemptResult RunSupervisor::run_guarded(const CellFn& fn,
                                                        CellContext& ctx) {
  AttemptResult result;
  try {
    result.summary = fn(ctx);
    result.ok = true;
  } catch (const ml::DivergenceError& e) {
    result.error = RunErrorKind::kDivergence;
    result.message = e.what();
  } catch (const ml::CancelledError& e) {
    result.error = RunErrorKind::kTimeout;
    result.message = e.what();
  } catch (const RunError& e) {
    result.error = e.kind();
    result.message = e.what();
  } catch (const ml::InternalError& e) {
    result.error = RunErrorKind::kInternal;
    result.message = e.what();
  } catch (const std::exception& e) {
    result.error = RunErrorKind::kInternal;
    result.message = e.what();
  } catch (...) {
    result.error = RunErrorKind::kInternal;
    result.message = "unknown exception";
  }
  return result;
}

RunSupervisor::AttemptResult RunSupervisor::run_attempt(
    const CellFn& fn, CellContext& ctx, ml::CancelToken& token) const {
  if (cfg_.cell_timeout_s <= 0) return run_guarded(fn, ctx);

  AttemptResult result;
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  std::thread worker([&] {
    AttemptResult r = run_guarded(fn, ctx);
    {
      std::lock_guard<std::mutex> lock(m);
      result = std::move(r);
      done = true;
    }
    cv.notify_all();
  });

  bool timed_out = false;
  {
    std::unique_lock<std::mutex> lock(m);
    if (!cv.wait_for(lock, std::chrono::duration<double>(cfg_.cell_timeout_s),
                     [&] { return done; })) {
      timed_out = true;
      token.cancel();
      // Cancellation is cooperative: the worker observes the token at its
      // next batch boundary and unwinds with CancelledError.
      cv.wait(lock, [&] { return done; });
    }
  }
  worker.join();
  if (timed_out && !result.ok) {
    // Whatever the unwind surfaced as, the root cause is the deadline.
    result.error = RunErrorKind::kTimeout;
    result.message = "cell exceeded " + std::to_string(cfg_.cell_timeout_s) +
                     "s deadline (" + result.message + ")";
  }
  return result;
}

CellOutcome RunSupervisor::run_cell(const CellSpec& spec, const CellFn& fn) {
  const std::string key =
      spec.key.empty() ? generic_cell_key({spec.table, spec.row, spec.col})
                       : spec.key;
  double wall = 0;
  CellOutcome outcome = process_cell(spec, key, fn, wall);
  std::lock_guard<std::mutex> lock(mu_);
  record(spec, key, outcome, wall);
  return outcome;
}

std::vector<CellOutcome> RunSupervisor::run_cells(
    const std::vector<CellSpec>& specs, const std::vector<CellFn>& fns) {
  ml::check_internal(specs.size() == fns.size(),
                     "run_cells: specs/fns size mismatch");
  const std::size_t n = specs.size();
  std::vector<std::string> keys(n);
  for (std::size_t i = 0; i < n; ++i)
    keys[i] = specs[i].key.empty()
                  ? generic_cell_key({specs[i].table, specs[i].row, specs[i].col})
                  : specs[i].key;

  std::vector<CellOutcome> outcomes(n);
  std::vector<double> walls(n, 0.0);
  const std::size_t crew_size =
      std::min<std::size_t>(std::max(cfg_.max_parallel_cells, 1), n);
  if (crew_size <= 1) {
    for (std::size_t i = 0; i < n; ++i)
      outcomes[i] = process_cell(specs[i], keys[i], fns[i], walls[i]);
  } else {
    // Dedicated threads (not the compute pool): cells block on training
    // loops that themselves dispatch parallel_for to the global pool, and
    // pool workers must never be occupied by blocking cell bodies.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> crew;
    crew.reserve(crew_size);
    for (std::size_t t = 0; t < crew_size; ++t)
      crew.emplace_back([&, t] {
        trace::set_thread_label("cell-crew-" + std::to_string(t));
        for (;;) {
          std::size_t i = next.fetch_add(1);
          if (i >= n) return;
          outcomes[i] = process_cell(specs[i], keys[i], fns[i], walls[i]);
        }
      });
    for (auto& t : crew) t.join();
  }

  // Commit artifact records in submission order regardless of completion
  // order, so cells[] — and therefore the whole artifact — is deterministic.
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < n; ++i)
    record(specs[i], keys[i], outcomes[i], walls[i]);
  return outcomes;
}

CellOutcome RunSupervisor::process_cell(const CellSpec& spec,
                                        const std::string& key, const CellFn& fn,
                                        double& wall) {
  // Checkpoint/resume: a cell already completed ok in the journal is not
  // recomputed; its recorded summary (and original wall-clock) feeds the
  // table as-is.
  if (cfg_.resume) {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = journal_.find(key);
    if (it != journal_.end()) {
      const Json* status = it->second.find("status");
      if (status && status->string_or("") == "ok") {
        CellOutcome outcome;
        outcome.status = CellStatus::kOkFromJournal;
        const Json* attempts = it->second.find("attempts");
        outcome.attempts = attempts ? static_cast<int>(attempts->number_or(1)) : 1;
        if (const Json* summary = it->second.find("summary"))
          outcome.summary = summary_from_json(*summary);
        const Json* recorded_wall = it->second.find("wall_seconds");
        wall = recorded_wall ? recorded_wall->number_or(0) : 0;
        ++health_.cells;
        ++health_.ok;
        ++health_.from_journal;
        lock.unlock();
        SUGAR_TRACE_COUNT("supervisor.cells_from_journal", 1);
        if (!cfg_.quiet)
          std::fprintf(stderr, "[supervisor:%s] %s / %s: from journal\n",
                       cfg_.bench_name.c_str(), spec.row.c_str(), spec.col.c_str());
        return outcome;
      }
    }
  }

  CellOutcome outcome;
  auto t0 = Clock::now();
  // Cell lifecycle observability: one span over all attempts of this cell
  // plus counter deltas across them (global counters — overlapping under
  // --parallel-cells; see CellOutcome::trace_counters).
  const bool tracing = trace::enabled();
  std::vector<trace::CounterValue> counters_before;
  if (tracing) counters_before = trace::counters_snapshot();
  SUGAR_TRACE_COUNT("supervisor.cells_started", 1);
  SUGAR_TRACE_SPAN("supervisor.cell");
  for (int attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    if (attempt > 0) SUGAR_TRACE_COUNT("supervisor.retry_attempts", 1);
    if (attempt > 0 && cfg_.backoff_base_s > 0) {
      double delay = cfg_.backoff_base_s * std::pow(2.0, attempt - 1);
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    }
    ml::CancelToken token;
    CellContext ctx;
    ctx.tweak.attempt = attempt;
    // Golden-ratio seed bump decorrelates the retry from the diverged run;
    // halving the learning rate attacks the usual divergence cause.
    ctx.tweak.seed_bump = 0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(attempt);
    ctx.tweak.lr_scale = std::pow(0.5, attempt);
    ctx.cancel = &token;

    AttemptResult r = run_attempt(fn, ctx, token);
    outcome.attempts = attempt + 1;
    if (r.ok) {
      outcome.status = CellStatus::kOk;
      outcome.summary = std::move(r.summary);
      break;
    }
    outcome.status = CellStatus::kFailed;
    outcome.error = r.error;
    outcome.message = r.message;
    // Only divergence is worth retrying: empty partitions and internal
    // errors are deterministic, and a timed-out cell would time out again.
    if (r.error != RunErrorKind::kDivergence) break;
  }
  wall = seconds_since(t0);
  SUGAR_TRACE_COUNT(outcome.ok() ? "supervisor.cells_ok"
                                 : "supervisor.cells_failed",
                    1);
  if (tracing)
    outcome.trace_counters =
        counter_delta_json(counters_before, trace::counters_snapshot());

  // Journal the cell (ok or failed) with an atomic rewrite.
  Json entry = Json::object();
  entry.set("key", Json(key));
  entry.set("table", Json(spec.table));
  entry.set("row", Json(spec.row));
  entry.set("col", Json(spec.col));
  entry.set("status", Json(outcome.ok() ? "ok" : "failed"));
  entry.set("attempts", Json(outcome.attempts));
  entry.set("wall_seconds", Json(wall));
  if (outcome.ok()) {
    entry.set("summary", summary_to_json(outcome.summary));
  } else {
    entry.set("error", Json(to_string(outcome.error)));
    entry.set("message", Json(outcome.message));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++health_.cells;
    if (outcome.ok()) {
      ++health_.ok;
    } else {
      ++health_.failed;
    }
    if (outcome.attempts > 1) ++health_.retried;
    journal_[key] = entry;
    append_journal(entry);
  }

  if (!cfg_.quiet) {
    if (outcome.ok())
      std::fprintf(stderr, "[supervisor:%s] %s / %s: ok (%d attempt%s, %.1fs)\n",
                   cfg_.bench_name.c_str(), spec.row.c_str(), spec.col.c_str(),
                   outcome.attempts, outcome.attempts == 1 ? "" : "s", wall);
    else
      std::fprintf(stderr, "[supervisor:%s] %s / %s: FAILED(%s) after %d attempt%s: %s\n",
                   cfg_.bench_name.c_str(), spec.row.c_str(), spec.col.c_str(),
                   to_string(outcome.error), outcome.attempts,
                   outcome.attempts == 1 ? "" : "s", outcome.message.c_str());
  }
  return outcome;
}

void RunSupervisor::append_journal(const Json& entry) {
  journal_lines_.push_back(entry.dump());
  std::string content;
  for (const auto& line : journal_lines_) {
    content += line;
    content += '\n';
  }
  std::string err;
  if (!atomic_write_file(cfg_.journal_path, content, &err) && !cfg_.quiet)
    std::fprintf(stderr, "[supervisor:%s] journal write failed: %s\n",
                 cfg_.bench_name.c_str(), err.c_str());
}

void RunSupervisor::record(const CellSpec& spec, const std::string& key,
                           const CellOutcome& outcome, double wall_seconds) {
  Json cell = Json::object();
  cell.set("key", Json(key));
  cell.set("table", Json(spec.table));
  cell.set("row", Json(spec.row));
  cell.set("col", Json(spec.col));
  cell.set("status", Json(outcome.ok() ? "ok" : "failed"));
  cell.set("from_journal", Json(outcome.status == CellStatus::kOkFromJournal));
  cell.set("attempts", Json(outcome.attempts));
  cell.set("wall_seconds", Json(wall_seconds));
  if (outcome.ok()) {
    cell.set("summary", summary_to_json(outcome.summary));
  } else {
    cell.set("error", Json(to_string(outcome.error)));
    cell.set("message", Json(outcome.message));
  }
  // Schema 4 only: per-cell counter attribution. Off-mode artifacts stay
  // bit-identical to schema 2.
  if (trace::enabled()) {
    Json cell_trace = Json::object();
    cell_trace.set("counters", outcome.trace_counters);
    cell.set("trace", std::move(cell_trace));
  }
  records_.push_back(std::move(cell));
}

std::string RunSupervisor::format_cell(const CellOutcome& outcome) {
  if (!outcome.ok())
    return std::string("FAILED(") + to_string(outcome.error) + ")";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f / %.1f", 100 * outcome.summary.accuracy,
                100 * outcome.summary.macro_f1);
  return buf;
}

std::string RunSupervisor::format_cell(const CellOutcome& outcome,
                                       const std::string& ok_text) {
  if (!outcome.ok())
    return std::string("FAILED(") + to_string(outcome.error) + ")";
  return ok_text;
}

bool RunSupervisor::finalize() {
  // Observability contract: with tracing off the artifact is byte-identical
  // to the schema-2 form (no new fields anywhere); any active trace mode
  // upgrades it to schema 4 with a top-level `trace` section.
  const bool tracing = trace::enabled();
  Json doc = Json::object();
  doc.set("schema_version", Json(tracing ? 4 : 2));
  doc.set("bench", Json(cfg_.bench_name));

  Json config = Json::object();
  config.set("cell_timeout_s", Json(cfg_.cell_timeout_s));
  config.set("max_retries", Json(cfg_.max_retries));
  config.set("resume", Json(cfg_.resume));
  // Perf-trajectory attribution: the compute-pool width and cell-level
  // concurrency this run actually used.
  config.set("threads", Json(global_thread_count()));
  config.set("parallel_cells", Json(cfg_.max_parallel_cells));
  doc.set("config", config);

  Json health = Json::object();
  health.set("cells", Json(health_.cells));
  health.set("ok", Json(health_.ok));
  health.set("failed", Json(health_.failed));
  health.set("from_journal", Json(health_.from_journal));
  health.set("retried", Json(health_.retried));
  health.set("wall_seconds", Json(seconds_since(start_)));
  doc.set("health", health);

  Json cells = Json::array();
  for (const auto& cell : records_) cells.push(cell);
  doc.set("cells", cells);

  if (tracing) doc.set("trace", trace_section_json());

  std::string err;
  bool written = atomic_write_file(cfg_.json_path, doc.dump(2) + "\n", &err);

  bool chrome_written = true;
  if (!cfg_.trace_path.empty()) {
    std::string chrome_err;
    chrome_written = atomic_write_file(
        cfg_.trace_path, chrome_trace_json().dump(2) + "\n", &chrome_err);
    if (!chrome_written && !cfg_.quiet)
      std::printf("TRACE WRITE FAILED: %s\n", chrome_err.c_str());
    else if (!cfg_.quiet)
      std::printf("Chrome trace: %s (load via chrome://tracing or Perfetto)\n",
                  cfg_.trace_path.c_str());
  }
  written = written && chrome_written;

  if (!cfg_.quiet) {
    std::printf(
        "\nRun health: %d/%d cells ok (%d failed, %d from journal, %d retried)\n",
        health_.ok, health_.cells, health_.failed, health_.from_journal,
        health_.retried);
    for (const auto& cell : records_) {
      const Json* status = cell.find("status");
      if (status && status->string_or("") == "failed") {
        const Json* row = cell.find("row");
        const Json* col = cell.find("col");
        const Json* error = cell.find("error");
        const Json* message = cell.find("message");
        std::printf("  FAILED(%s) %s / %s: %s\n",
                    error ? error->string_or("?").c_str() : "?",
                    row ? row->string_or("?").c_str() : "?",
                    col ? col->string_or("?").c_str() : "?",
                    message ? message->string_or("").c_str() : "");
      }
    }
    if (written)
      std::printf("Artifacts: %s (journal: %s)\n", cfg_.json_path.c_str(),
                  cfg_.journal_path.c_str());
    else
      std::printf("ARTIFACT WRITE FAILED: %s\n", err.c_str());
  }
  return written;
}

}  // namespace sugar::core
