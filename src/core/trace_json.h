// JSON views over the core::trace registry. Kept out of trace.{h,cpp}
// (sugar_parallel) because core::Json lives in sugar_core — this is the
// one-way bridge: trace records raw data, this file renders it.
#pragma once

#include <vector>

#include "core/artifact.h"
#include "core/trace.h"

namespace sugar::core {

/// The `trace` section embedded in schema_version-4 BENCH_*.json
/// artifacts: {mode, phases: [{name, count, wall_ms, cpu_ms}...],
/// counters: [{name, value}...], dropped_events}. Phases and counters are
/// name-sorted; times are milliseconds (double).
Json trace_section_json();

/// Counter deltas between two snapshots taken with
/// trace::counters_snapshot(), as [{name, delta}...] for counters whose
/// value moved. Used for the per-cell `trace.counters` attribution.
Json counter_delta_json(const std::vector<trace::CounterValue>& before,
                        const std::vector<trace::CounterValue>& after);

/// Full retained timeline as a Chrome trace_event document (the
/// chrome://tracing / Perfetto "JSON Array Format" wrapped in an object):
/// {"traceEvents": [...]} with one "X" complete event per span (ts/dur in
/// microseconds, pid 1, tid = stable thread ordinal) plus one "M"
/// thread_name metadata event per labelled thread.
Json chrome_trace_json();

}  // namespace sugar::core
