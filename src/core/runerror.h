// The typed failure taxonomy of a scenario cell. Every way a cell can die
// is mapped onto one of these kinds so bench tables can render
// `FAILED(<reason>)` and the journal can record machine-readable causes:
//
//   kEmptyPartition — a split/cleaning combination left train or test empty
//   kDivergence     — training loss went NaN/Inf (retryable)
//   kTimeout        — the cell blew its wall-clock deadline (watchdog)
//   kInternal       — invariant violation or any other thrown exception
//
// The ml layer throws its own low-level types (ml::DivergenceError,
// ml::CancelledError, ml::InternalError — see ml/guard.h) so it stays
// independent of core; RunSupervisor maps them onto this taxonomy.
#pragma once

#include <stdexcept>
#include <string>

namespace sugar::core {

enum class RunErrorKind { kEmptyPartition, kDivergence, kTimeout, kInternal };

inline const char* to_string(RunErrorKind kind) {
  switch (kind) {
    case RunErrorKind::kEmptyPartition: return "empty-partition";
    case RunErrorKind::kDivergence: return "divergence";
    case RunErrorKind::kTimeout: return "timeout";
    case RunErrorKind::kInternal: return "internal";
  }
  return "unknown";
}

class RunError : public std::runtime_error {
 public:
  RunError(RunErrorKind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}

  [[nodiscard]] RunErrorKind kind() const { return kind_; }

 private:
  RunErrorKind kind_;
};

}  // namespace sugar::core
