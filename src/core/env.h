// BenchmarkEnv: owns the generated datasets, the cleaning step, and the
// pre-trained encoder cache, so each bench binary pays dataset generation
// and pre-training once. Scale is controlled by environment variables
// (SUGAR_SCALE multiplies flow counts; SUGAR_EPOCHS overrides downstream
// epochs) so the same binaries run as a quick smoke or a full evaluation.
// Accessors are thread-safe so concurrent supervisor cells can share one
// env; each lazily-built cache is populated exactly once under a lock.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "dataset/clean.h"
#include "dataset/task.h"
#include "ml/guard.h"
#include "replearn/model_zoo.h"
#include "replearn/pretrain.h"

namespace sugar::core {

struct EnvConfig {
  std::uint64_t seed = 1;
  std::size_t flows_per_class_iscx = 30;
  std::size_t flows_per_class_ustc = 24;
  std::size_t flows_per_class_tls = 14;
  std::size_t backbone_flows = 320;
  double iscx_spurious = 0.05;
  double ustc_spurious = 0.10;

  // Downstream training budget. Shallow models are cheap and get the large
  // caps; the deep (encoder) scenarios use the *_deep caps so unfrozen
  // fine-tuning stays tractable on one core.
  int downstream_epochs = 12;
  std::size_t max_train_packets = 16000;
  std::size_t max_test_packets = 6000;
  std::size_t max_train_packets_deep = 6000;
  std::size_t max_test_packets_deep = 4000;

  // Pre-training budget.
  int pretrain_epochs = 6;
  std::size_t pretrain_max_samples = 6000;

  /// Reads SUGAR_SCALE / SUGAR_EPOCHS / SUGAR_SEED from the environment.
  static EnvConfig from_env();
};

class BenchmarkEnv {
 public:
  explicit BenchmarkEnv(EnvConfig cfg = EnvConfig::from_env());

  [[nodiscard]] const EnvConfig& config() const { return cfg_; }

  /// Cleaned task dataset (cached per task).
  const dataset::PacketDataset& task_dataset(dataset::TaskId task);

  /// Variant-parameterized view of a task (scenario-diversity cells): the
  /// source trace is regenerated with the drift/family/reshaping knobs
  /// applied, cleaned with the same pipeline, and cached per
  /// (task, variant.tag()). The default variant aliases the base cache.
  const dataset::PacketDataset& task_dataset(dataset::TaskId task,
                                             const trafficgen::TraceVariant& variant);

  /// Cleaning census per source dataset (available after the first access,
  /// or via force_clean()).
  const dataset::CleaningReport& cleaning_report(dataset::SourceDataset src);

  /// Cleaning census of a variant-parameterized source.
  const dataset::CleaningReport& cleaning_report(dataset::SourceDataset src,
                                                 const trafficgen::TraceVariant& variant);

  /// Unlabelled backbone pre-training dataset (cached).
  const dataset::PacketDataset& backbone();

  /// A fresh copy of the pre-trained bundle for a model (pre-training runs
  /// once per (kind, mode) and is cached). `cancel` is the supervisor's
  /// watchdog token; a cancelled pre-training unwinds before the cache is
  /// populated, so a later attempt re-runs it cleanly.
  replearn::ModelBundle pretrained(replearn::ModelKind kind,
                                   replearn::TaskMode mode,
                                   const ml::CancelToken* cancel = nullptr);

 private:
  void ensure_source(dataset::SourceDataset src);
  void ensure_source(dataset::SourceDataset src,
                     const trafficgen::TraceVariant& variant);

  EnvConfig cfg_;
  /// Guards every lazily-built cache so concurrent supervisor cells
  /// (--parallel-cells) can share one env. Recursive because pretrained()
  /// reaches backbone() and task_dataset() reaches ensure_source(). The
  /// first accessor pays generation/pre-training under the lock; later
  /// concurrent readers get the cached object.
  mutable std::recursive_mutex mu_;
  std::map<dataset::SourceDataset, trafficgen::GeneratedTrace> traces_;
  std::map<dataset::SourceDataset, dataset::CleaningReport> cleaning_;
  std::map<dataset::TaskId, dataset::PacketDataset> tasks_;
  /// Non-default variants, keyed by the variant's canonical tag.
  std::map<std::pair<dataset::SourceDataset, std::string>, trafficgen::GeneratedTrace>
      variant_traces_;
  std::map<std::pair<dataset::SourceDataset, std::string>, dataset::CleaningReport>
      variant_cleaning_;
  std::map<std::pair<dataset::TaskId, std::string>, dataset::PacketDataset>
      variant_tasks_;
  std::optional<dataset::PacketDataset> backbone_;
  std::map<std::pair<replearn::ModelKind, replearn::TaskMode>, replearn::ModelBundle>
      pretrained_;
};

}  // namespace sugar::core
