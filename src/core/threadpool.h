// Shared parallel-execution substrate: a deterministic, work-stealing-free
// thread pool with parallel_for / parallel_reduce helpers, used by the ml
// hot paths (blocked GEMM, per-tree forest fitting, k-NN query rows) and by
// the run supervisor's concurrent bench cells.
//
// Determinism contract: the iteration range is partitioned into fixed-size
// blocks derived ONLY from (range, grain) — never from the thread count —
// and parallel_reduce combines per-block partials in ascending block order
// on the calling thread. A kernel whose blocks are independent therefore
// produces bit-identical output at any SUGAR_THREADS value, including 1
// (where everything runs inline on the caller with zero pool overhead).
//
// Re-entrancy: a parallel_for issued from inside a pool worker, or while
// another thread holds the pool, degrades to an inline serial run of the
// same blocks in the same order — same results, no deadlock.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace sugar::core {

class ThreadPool {
 public:
  /// `threads` is the total worker count including the calling thread;
  /// 0 means threads_from_env(). threads <= 1 spawns no workers and every
  /// parallel_for runs inline.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size() + 1; }

  /// fn(lo, hi) over disjoint blocks covering [begin, end). Blocks are
  /// [begin + b*grain, min(end, begin + (b+1)*grain)). The first exception
  /// thrown by any block is rethrown on the caller after all blocks finish.
  using BlockFn = std::function<void(std::size_t, std::size_t)>;
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const BlockFn& fn);

  /// Number of blocks parallel_for will create — a pure function of the
  /// range and grain, independent of the thread count.
  static std::size_t block_count(std::size_t begin, std::size_t end,
                                 std::size_t grain) {
    if (end <= begin) return 0;
    if (grain == 0) grain = 1;
    return (end - begin + grain - 1) / grain;
  }

  /// map(lo, hi) -> partial per block; partials combined with
  /// combine(acc, partial) in ascending block order on the caller, so
  /// floating-point reductions are bit-identical at any thread count.
  template <typename T, typename MapFn, typename CombineFn>
  T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                    T init, MapFn&& map, CombineFn&& combine) {
    if (grain == 0) grain = 1;
    const std::size_t blocks = block_count(begin, end, grain);
    if (blocks == 0) return init;
    std::vector<T> partials(blocks, init);
    parallel_for(begin, end, grain, [&](std::size_t lo, std::size_t hi) {
      partials[(lo - begin) / grain] = map(lo, hi);
    });
    T acc = std::move(init);
    for (auto& p : partials) acc = combine(std::move(acc), std::move(p));
    return acc;
  }

 private:
  struct Job;

  void worker_loop(std::size_t index);
  void work_on(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mu_;                    // guards job_ / stop_
  std::mutex submit_mu_;             // serializes parallel_for callers
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::shared_ptr<Job> job_;
  bool stop_ = false;
};

/// SUGAR_THREADS with the strict whole-string from_chars discipline of the
/// other SUGAR_* knobs; absent, malformed or 0 falls back to
/// hardware_concurrency (min 1).
std::size_t threads_from_env();

/// Process-wide pool the ml kernels dispatch to; built lazily from
/// threads_from_env() on first use.
ThreadPool& global_pool();
std::size_t global_thread_count();

/// Rebuilds the global pool with `threads` workers (0 = re-read the env).
/// Only call at a quiescent point — never while kernels are in flight.
void set_global_threads(std::size_t threads);

}  // namespace sugar::core
