#include "core/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace sugar::core {

bool Io::write_file(const std::string& path, std::string_view content,
                    std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) {
    if (error) *error = "short write to " + path;
    return false;
  }
  return true;
}

bool Io::rename_file(const std::string& from, const std::string& to,
                     std::string* error) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    if (error) *error = "rename " + from + " -> " + to + " failed";
    return false;
  }
  return true;
}

void Io::remove_file(const std::string& path) { std::remove(path.c_str()); }

bool Io::read_file(const std::string& path, std::string& out,
                   std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

Io& real_io() {
  static Io io;
  return io;
}

}  // namespace sugar::core
