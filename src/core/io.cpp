#include "core/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace sugar::core {

bool Io::write_file(const std::string& path, std::string_view content,
                    std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) {
    if (error) *error = "short write to " + path;
    return false;
  }
  return true;
}

bool Io::rename_file(const std::string& from, const std::string& to,
                     std::string* error) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    if (error) *error = "rename " + from + " -> " + to + " failed";
    return false;
  }
  return true;
}

void Io::remove_file(const std::string& path) { std::remove(path.c_str()); }

bool Io::read_file(const std::string& path, std::string& out,
                   std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

bool Io::append_file(const std::string& path, std::string_view content,
                     std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) {
    if (error) *error = "short write to " + path;
    return false;
  }
  return true;
}

bool Io::atomic_write(const std::string& path, std::string_view content,
                      std::string* error) {
  const std::string tmp = path + ".tmp";
  if (!write_file(tmp, content, error)) {
    remove_file(tmp);  // a short write may have left a partial temp file
    return false;
  }
  return commit_temp(path, error);
}

bool Io::commit_temp(const std::string& path, std::string* error) {
  const std::string tmp = path + ".tmp";
  if (!rename_file(tmp, path, error)) {
    remove_file(tmp);
    return false;
  }
  return true;
}

Io& real_io() {
  static Io io;
  return io;
}

}  // namespace sugar::core
