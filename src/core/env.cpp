#include "core/env.h"

#include "core/envparse.h"
#include "core/trace.h"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string_view>

namespace sugar::core {

EnvConfig EnvConfig::from_env() {
  EnvConfig cfg;
  if (const char* s = std::getenv("SUGAR_SCALE")) {
    double scale = 0;
    if (parse_env_number("SUGAR_SCALE", s, scale)) {
      if (scale > 0) {
        auto mul = [scale](std::size_t v) {
          return std::max<std::size_t>(2, static_cast<std::size_t>(scale * static_cast<double>(v)));
        };
        cfg.flows_per_class_iscx = mul(cfg.flows_per_class_iscx);
        cfg.flows_per_class_ustc = mul(cfg.flows_per_class_ustc);
        cfg.flows_per_class_tls = mul(cfg.flows_per_class_tls);
        cfg.backbone_flows = mul(cfg.backbone_flows);
        cfg.max_train_packets = mul(cfg.max_train_packets);
        cfg.max_test_packets = mul(cfg.max_test_packets);
        cfg.pretrain_max_samples = mul(cfg.pretrain_max_samples);
      } else {
        std::cerr << "sugar: ignoring non-positive SUGAR_SCALE='" << s << "'\n";
      }
    }
  }
  if (const char* s = std::getenv("SUGAR_EPOCHS")) {
    int e = 0;
    if (parse_env_number("SUGAR_EPOCHS", s, e)) {
      if (e > 0)
        cfg.downstream_epochs = e;
      else
        std::cerr << "sugar: ignoring non-positive SUGAR_EPOCHS='" << s << "'\n";
    }
  }
  if (const char* s = std::getenv("SUGAR_SEED")) {
    std::uint64_t seed = 0;
    if (parse_env_number("SUGAR_SEED", s, seed)) cfg.seed = seed;
  }
  return cfg;
}

BenchmarkEnv::BenchmarkEnv(EnvConfig cfg) : cfg_(cfg) {}

namespace {

trafficgen::GeneratedTrace generate_source(const EnvConfig& cfg,
                                           dataset::SourceDataset src,
                                           const trafficgen::TraceVariant& variant) {
  trafficgen::GenOptions opts;
  opts.seed = cfg.seed;
  opts.variant = variant;
  switch (src) {
    case dataset::SourceDataset::IscxVpn:
      opts.flows_per_class = cfg.flows_per_class_iscx;
      opts.spurious_fraction = cfg.iscx_spurious;
      return trafficgen::generate_iscx_vpn(opts);
    case dataset::SourceDataset::UstcTfc:
      opts.flows_per_class = cfg.flows_per_class_ustc;
      opts.spurious_fraction = cfg.ustc_spurious;
      return trafficgen::generate_ustc_tfc(opts);
    case dataset::SourceDataset::CstnTls:
      opts.flows_per_class = cfg.flows_per_class_tls;
      opts.spurious_fraction = 0.0;  // CSTN is shared pre-cleaned
      opts.strip_tls_handshake = true;
      return trafficgen::generate_cstn_tls120(opts);
  }
  return {};
}

}  // namespace

void BenchmarkEnv::ensure_source(dataset::SourceDataset src) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (traces_.count(src)) return;
  SUGAR_TRACE_SPAN("env.generate_dataset");
  auto trace = generate_source(cfg_, src, trafficgen::TraceVariant{});
  dataset::CleaningOptions copts;  // recommended pipeline: extraneous only
  cleaning_[src] = dataset::clean_trace(trace, copts);
  traces_[src] = std::move(trace);
}

void BenchmarkEnv::ensure_source(dataset::SourceDataset src,
                                 const trafficgen::TraceVariant& variant) {
  if (variant.is_default()) return ensure_source(src);
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto key = std::make_pair(src, variant.tag());
  if (variant_traces_.count(key)) return;
  SUGAR_TRACE_SPAN("env.generate_dataset");
  auto trace = generate_source(cfg_, src, variant);
  dataset::CleaningOptions copts;  // same pipeline as the base datasets
  variant_cleaning_[key] = dataset::clean_trace(trace, copts);
  variant_traces_[key] = std::move(trace);
}

const dataset::PacketDataset& BenchmarkEnv::task_dataset(dataset::TaskId task) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = tasks_.find(task);
  if (it != tasks_.end()) return it->second;
  auto src = dataset::source_of(task);
  ensure_source(src);
  auto [jt, _] = tasks_.emplace(task, dataset::make_task_dataset(traces_[src], task));
  return jt->second;
}

const dataset::PacketDataset& BenchmarkEnv::task_dataset(
    dataset::TaskId task, const trafficgen::TraceVariant& variant) {
  if (variant.is_default()) return task_dataset(task);
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto key = std::make_pair(task, variant.tag());
  auto it = variant_tasks_.find(key);
  if (it != variant_tasks_.end()) return it->second;
  auto src = dataset::source_of(task);
  ensure_source(src, variant);
  auto [jt, _] = variant_tasks_.emplace(
      key, dataset::make_task_dataset(
               variant_traces_[std::make_pair(src, variant.tag())], task));
  return jt->second;
}

const dataset::CleaningReport& BenchmarkEnv::cleaning_report(
    dataset::SourceDataset src) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  ensure_source(src);
  return cleaning_[src];
}

const dataset::CleaningReport& BenchmarkEnv::cleaning_report(
    dataset::SourceDataset src, const trafficgen::TraceVariant& variant) {
  if (variant.is_default()) return cleaning_report(src);
  std::lock_guard<std::recursive_mutex> lock(mu_);
  ensure_source(src, variant);
  return variant_cleaning_[std::make_pair(src, variant.tag())];
}

const dataset::PacketDataset& BenchmarkEnv::backbone() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!backbone_) {
    SUGAR_TRACE_SPAN("env.generate_backbone");
    auto trace = trafficgen::generate_backbone(cfg_.seed ^ 0xBACB, cfg_.backbone_flows);
    backbone_ = dataset::make_unlabeled_dataset(trace);
  }
  return *backbone_;
}

replearn::ModelBundle BenchmarkEnv::pretrained(replearn::ModelKind kind,
                                               replearn::TaskMode mode,
                                               const ml::CancelToken* cancel) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto key = std::make_pair(kind, mode);
  auto it = pretrained_.find(key);
  if (it == pretrained_.end()) {
    SUGAR_TRACE_SPAN("env.pretrain_cache_fill");
    replearn::ModelBundle bundle = replearn::make_model(kind, mode);
    replearn::BackbonePretrainOptions opts;
    opts.pretrain.epochs = cfg_.pretrain_epochs;
    opts.pretrain.cancel = cancel;
    opts.max_samples = cfg_.pretrain_max_samples;
    opts.seed = cfg_.seed ^ 0x11E;
    pretrain_on_backbone(bundle, backbone(), opts);
    it = pretrained_.emplace(key, std::move(bundle)).first;
  }
  // Hand out an independent copy with a cloned encoder.
  replearn::ModelBundle copy;
  copy.kind = it->second.kind;
  copy.name = it->second.name;
  copy.mode = it->second.mode;
  copy.view_kind = it->second.view_kind;
  copy.byte_view = it->second.byte_view;
  copy.mm_view = it->second.mm_view;
  copy.flow_packets = it->second.flow_packets;
  copy.encoder = it->second.encoder->clone();
  return copy;
}

}  // namespace sugar::core
