// RunSupervisor: the fault-tolerant execution boundary around every
// benchmark scenario cell. The paper's evidence is a grid of ~100
// (task × model × split × ablation) cells; a production-scale run must
// survive any one of them throwing, diverging or hanging. Each cell runs
// guarded with:
//
//   * a typed RunError taxonomy (runerror.h) mapped from the ml layer's
//     low-level errors,
//   * a wall-clock watchdog (worker thread + deadline + cooperative
//     ml::CancelToken polled inside the epoch loops),
//   * divergence-aware retry — NaN/Inf loss aborts the cell early and
//     re-runs it with a perturbed seed and halved learning rate under
//     bounded exponential backoff,
//   * graceful degradation — failed cells render as FAILED(<reason>) while
//     the rest of the table and an end-of-run health summary still emit,
//   * checkpoint/resume — a JSONL journal keyed by a fingerprint of
//     (task, model, ScenarioOptions) lets an interrupted bench skip
//     completed cells on rerun; journal and BENCH_<table>.json artifact
//     writes are temp-file-then-rename so a crash never truncates them,
//   * opt-in concurrency — run_cells() executes independent cells on up to
//     max_parallel_cells threads (--parallel-cells) while journal, health
//     and artifact state stay mutex-guarded and the artifact cells[] array
//     is committed in deterministic submission order.
#pragma once

#include <chrono>
#include <functional>
#include <initializer_list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/artifact.h"
#include "core/pipeline.h"
#include "core/runerror.h"
#include "ml/guard.h"

namespace sugar::core {

/// Per-attempt perturbation applied on divergence retry.
struct RetryTweak {
  int attempt = 0;              // 0 on the first attempt
  std::uint64_t seed_bump = 0;  // added to ScenarioOptions::seed
  double lr_scale = 1.0;        // multiplies learning rates
};

/// Handed to the cell function: the retry tweak plus the watchdog's cancel
/// token. apply() folds both into a ScenarioOptions.
struct CellContext {
  RetryTweak tweak;
  ml::CancelToken* cancel = nullptr;

  void apply(ScenarioOptions& opts) const {
    opts.seed += tweak.seed_bump;
    opts.lr_scale *= tweak.lr_scale;
    opts.cancel = cancel;
  }
};

/// The journaled result of a successful cell: the common metric/timing
/// scalars plus a free-form `extra` object for bench-specific values
/// (purity histograms, feature importances, parameter counts, ...).
struct CellSummary {
  double accuracy = 0;
  double macro_f1 = 0;
  double micro_f1 = 0;
  double train_seconds = 0;
  double test_seconds = 0;
  std::size_t n_train = 0;
  std::size_t n_test = 0;
  Json extra = Json::object();
};

CellSummary summarize(const ml::Metrics& metrics);
CellSummary summarize(const ScenarioResult& result);
CellSummary summarize(const ShallowResult& result);

enum class CellStatus { kOk, kOkFromJournal, kFailed };

struct CellOutcome {
  CellStatus status = CellStatus::kFailed;
  RunErrorKind error = RunErrorKind::kInternal;  // valid when kFailed
  std::string message;
  int attempts = 0;
  CellSummary summary;  // valid when not kFailed
  /// Counter deltas observed across this cell's attempts
  /// ([{name, delta}...]); only populated when tracing is enabled. With
  /// concurrent cells the deltas overlap (counters are process-global), so
  /// they attribute cost, not exact per-cell accounting.
  Json trace_counters = Json::array();

  [[nodiscard]] bool ok() const { return status != CellStatus::kFailed; }
};

/// Identity of a cell inside a bench table. `key` is the journal
/// fingerprint; when empty it is derived from table/row/col (only stable
/// for cells whose identity is fully captured by their labels).
struct CellSpec {
  std::string table;
  std::string row;
  std::string col;
  std::string key;
};

/// Stable fingerprint of a scenario cell for the resume journal: hashes the
/// task, the model name and every result-affecting field of
/// ScenarioOptions (runtime knobs — cancel, lr_scale — excluded).
std::string scenario_cell_key(dataset::TaskId task, std::string_view model,
                              const ScenarioOptions& opts);

/// Fingerprint for non-scenario cells from free-form identity parts.
std::string generic_cell_key(std::initializer_list<std::string_view> parts);

struct SupervisorConfig {
  std::string bench_name = "bench";
  /// Wall-clock deadline per cell attempt in seconds; 0 disables the
  /// watchdog (cells run inline on the calling thread).
  double cell_timeout_s = 0;
  /// Divergence retries per cell (attempts = max_retries + 1).
  int max_retries = 2;
  /// Exponential backoff base between divergence retries.
  double backoff_base_s = 0.05;
  /// Result artifact path; empty → "BENCH_<bench_name>.json".
  std::string json_path;
  /// Resume journal path; empty → "<json_path>.journal.jsonl".
  std::string journal_path;
  /// Load the journal and skip cells already completed there.
  bool resume = false;
  /// Suppress per-cell stderr progress lines (tests).
  bool quiet = false;
  /// Opt-in concurrency for run_cells(): up to this many independent cells
  /// execute at once (each with its own watchdog, CancelToken and retry
  /// loop; journal appends and health counters are mutex-guarded). 1 keeps
  /// the fully sequential behaviour. The artifact cells[] array is always
  /// committed in submission order, so results are byte-identical to a
  /// sequential run of the same cells.
  int max_parallel_cells = 1;
  /// When non-empty (--trace <path>): force trace mode to `spans` and have
  /// finalize() write a chrome://tracing-loadable trace_event JSON here in
  /// addition to the BENCH artifact.
  std::string trace_path;
};

/// Parses the strict bench CLI: --json <path>, --resume <journal>,
/// --cell-timeout-s <n>, --max-retries <n>, --parallel-cells <n>,
/// --trace <path>. Numeric values use whole-string
/// from_chars discipline (same as core/env); any malformed or unknown flag
/// yields nullopt with a diagnostic in `error`.
///
/// With a non-null `extra_args`, unknown flags are collected there verbatim
/// (in order, values included) instead of being an error, so a bench can
/// layer its own strict flags on top of the common set.
std::optional<SupervisorConfig> parse_bench_cli(std::string_view bench_name,
                                                int argc, const char* const* argv,
                                                std::string& error,
                                                std::vector<std::string>* extra_args = nullptr);
std::string bench_usage(std::string_view bench_name);

class RunSupervisor {
 public:
  using CellFn = std::function<CellSummary(CellContext&)>;

  explicit RunSupervisor(SupervisorConfig cfg);

  /// Runs one cell through the guarded boundary (journal lookup, watchdog,
  /// retry, journal append). Never throws on cell failure — the outcome
  /// carries the taxonomy instead.
  CellOutcome run_cell(const CellSpec& spec, const CellFn& fn);

  /// Runs a batch of independent cells, up to max_parallel_cells at a time.
  /// Each cell keeps the full per-cell boundary (watchdog, retry, journal
  /// append as it completes); artifact records are committed in submission
  /// order after the batch, so cells[] is deterministic regardless of
  /// completion order. With max_parallel_cells == 1 this is exactly a loop
  /// of run_cell.
  std::vector<CellOutcome> run_cells(const std::vector<CellSpec>& specs,
                                     const std::vector<CellFn>& fns);

  /// "AC / F1" (as percentages) for ok cells, "FAILED(<reason>)" otherwise.
  static std::string format_cell(const CellOutcome& outcome);
  /// `ok_text` for ok cells, "FAILED(<reason>)" otherwise.
  static std::string format_cell(const CellOutcome& outcome,
                                 const std::string& ok_text);

  struct Health {
    int cells = 0;
    int ok = 0;
    int failed = 0;
    int from_journal = 0;
    int retried = 0;  // cells that needed >1 attempt
  };
  [[nodiscard]] const Health& health() const { return health_; }
  [[nodiscard]] const SupervisorConfig& config() const { return cfg_; }

  /// Writes the BENCH_<table>.json artifact (atomically), prints the
  /// end-of-run health summary to stdout, and returns false only when the
  /// artifact could not be written.
  bool finalize();

 private:
  struct AttemptResult {
    bool ok = false;
    CellSummary summary;
    RunErrorKind error = RunErrorKind::kInternal;
    std::string message;
  };

  AttemptResult run_attempt(const CellFn& fn, CellContext& ctx,
                            ml::CancelToken& token) const;
  static AttemptResult run_guarded(const CellFn& fn, CellContext& ctx);
  /// Everything run_cell does except committing the artifact record:
  /// journal lookup, attempts, journal append, health. Thread-safe — shared
  /// state is touched under mu_ — so run_cells can call it concurrently.
  CellOutcome process_cell(const CellSpec& spec, const std::string& key,
                           const CellFn& fn, double& wall);
  void record(const CellSpec& spec, const std::string& key,
              const CellOutcome& outcome, double wall_seconds);
  void append_journal(const Json& entry);

  SupervisorConfig cfg_;
  std::mutex mu_;  // guards journal_, journal_lines_, records_, health_
  std::map<std::string, Json> journal_;  // key → latest journal entry
  std::vector<std::string> journal_lines_;
  std::vector<Json> records_;
  Health health_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sugar::core
