#include "core/chaos.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "core/envparse.h"

namespace sugar::core {
namespace {

/// splitmix64 — the same mixer the forest's per-tree RNG streams use; one
/// application per (seed, site, draw) triple gives an independent uniform
/// 64-bit value per decision.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double unit_interval(std::uint64_t h) {
  // Top 53 bits -> [0, 1) with full double resolution.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* to_string(ChaosSite site) {
  switch (site) {
    case ChaosSite::kShardStall: return "shard-stall";
    case ChaosSite::kClassifierDelay: return "classifier-delay";
    case ChaosSite::kClassifierFault: return "classifier-fault";
    case ChaosSite::kFlowTableAlloc: return "flow-table-alloc";
    case ChaosSite::kIoWriteFail: return "io-write-fail";
    case ChaosSite::kIoShortWrite: return "io-short-write";
    case ChaosSite::kIoRenameFail: return "io-rename-fail";
    case ChaosSite::kCount: break;
  }
  return "?";
}

ChaosConfig ChaosConfig::from_env() {
  ChaosConfig cfg;
  const char* s = std::getenv("SUGAR_CHAOS");
  if (!s) return cfg;
  std::uint64_t seed = 0;
  if (!parse_env_number("SUGAR_CHAOS", s, seed) || seed == 0) return cfg;
  cfg.enabled = true;
  cfg.seed = seed;
  // Ambient smoke probabilities: frequent enough that a short run exercises
  // every site, rare enough that the engine keeps making progress.
  cfg.with(ChaosSite::kShardStall, 0.01)
      .with(ChaosSite::kClassifierDelay, 0.02)
      .with(ChaosSite::kClassifierFault, 0.02)
      .with(ChaosSite::kFlowTableAlloc, 0.02)
      .with(ChaosSite::kIoWriteFail, 0.10)
      .with(ChaosSite::kIoShortWrite, 0.10)
      .with(ChaosSite::kIoRenameFail, 0.05);
  cfg.stall_usec = 2'000;  // keep ambient stalls short of any watchdog
  return cfg;
}

ChaosInjector::ChaosInjector(ChaosConfig cfg) : cfg_(cfg) {}

bool ChaosInjector::should_fire(ChaosSite site) {
  const auto s = static_cast<std::size_t>(site);
  if (!cfg_.enabled || cfg_.probability[s] <= 0.0) return false;
  const std::uint64_t n = draws_[s].fetch_add(1, std::memory_order_relaxed);
  // Site salt: spread sites far apart in the seed space so adjacent seeds
  // never alias two sites' streams.
  const std::uint64_t h =
      mix64(cfg_.seed ^ mix64((s + 1) * 0x9E3779B97F4A7C15ull) ^ mix64(n));
  const bool fire = unit_interval(h) < cfg_.probability[s];
  if (fire) fired_[s].fetch_add(1, std::memory_order_relaxed);
  return fire;
}

bool ChaosInjector::maybe_stall(ChaosSite site, const std::atomic<bool>* cancel) {
  if (!should_fire(site)) return false;
  const std::uint64_t usec = site == ChaosSite::kShardStall
                                 ? cfg_.stall_usec
                                 : cfg_.classifier_delay_usec;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(usec);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cancel && cancel->load(std::memory_order_relaxed)) break;
    std::this_thread::sleep_for(std::chrono::microseconds(
        std::min<std::uint64_t>(1000, std::max<std::uint64_t>(1, usec / 4))));
  }
  return true;
}

Json ChaosInjector::to_json() const {
  Json j = Json::object();
  j.set("enabled", Json(cfg_.enabled));
  j.set("seed", Json(static_cast<std::size_t>(cfg_.seed)));
  Json sites = Json::array();
  for (std::size_t s = 0; s < kChaosSiteCount; ++s) {
    Json site = Json::object();
    site.set("site", Json(to_string(static_cast<ChaosSite>(s))));
    site.set("probability", Json(cfg_.probability[s]));
    site.set("draws", Json(static_cast<std::size_t>(
                          draws_[s].load(std::memory_order_relaxed))));
    site.set("fired", Json(static_cast<std::size_t>(
                          fired_[s].load(std::memory_order_relaxed))));
    sites.push(std::move(site));
  }
  j.set("sites", std::move(sites));
  return j;
}

bool ChaosIo::write_file(const std::string& path, std::string_view content,
                         std::string* error) {
  if (chaos_.should_fire(ChaosSite::kIoWriteFail)) {
    if (error) *error = "chaos: disk full writing " + path;
    return false;
  }
  if (chaos_.should_fire(ChaosSite::kIoShortWrite)) {
    // Persist a prefix, then fail — the torn-temp-file case the atomic
    // temp-then-rename discipline must absorb.
    base_.write_file(path, content.substr(0, content.size() / 2), error);
    if (error) *error = "chaos: short write to " + path;
    return false;
  }
  return base_.write_file(path, content, error);
}

bool ChaosIo::rename_file(const std::string& from, const std::string& to,
                          std::string* error) {
  if (chaos_.should_fire(ChaosSite::kIoRenameFail)) {
    if (error) *error = "chaos: rename " + from + " -> " + to + " failed";
    return false;
  }
  return base_.rename_file(from, to, error);
}

void ChaosIo::remove_file(const std::string& path) { base_.remove_file(path); }

bool ChaosIo::read_file(const std::string& path, std::string& out,
                        std::string* error) {
  return base_.read_file(path, out, error);
}

bool ChaosIo::append_file(const std::string& path, std::string_view content,
                          std::string* error) {
  if (chaos_.should_fire(ChaosSite::kIoWriteFail)) {
    if (error) *error = "chaos: disk full appending " + path;
    return false;
  }
  if (chaos_.should_fire(ChaosSite::kIoShortWrite)) {
    // Persist a prefix, then fail — a streaming writer's temp file is torn
    // mid-append; the commit rename must never happen.
    base_.append_file(path, content.substr(0, content.size() / 2), error);
    if (error) *error = "chaos: short append to " + path;
    return false;
  }
  return base_.append_file(path, content, error);
}

}  // namespace sugar::core
