# Empty dependencies file for sugar_tests.
# This may be replaced when dependencies are built.
