
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_env.cpp" "tests/CMakeFiles/sugar_tests.dir/core/test_env.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/core/test_env.cpp.o.d"
  "/root/repo/tests/core/test_pipeline.cpp" "tests/CMakeFiles/sugar_tests.dir/core/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/core/test_pipeline.cpp.o.d"
  "/root/repo/tests/dataset/test_advanced_split.cpp" "tests/CMakeFiles/sugar_tests.dir/dataset/test_advanced_split.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/dataset/test_advanced_split.cpp.o.d"
  "/root/repo/tests/dataset/test_audit.cpp" "tests/CMakeFiles/sugar_tests.dir/dataset/test_audit.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/dataset/test_audit.cpp.o.d"
  "/root/repo/tests/dataset/test_clean.cpp" "tests/CMakeFiles/sugar_tests.dir/dataset/test_clean.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/dataset/test_clean.cpp.o.d"
  "/root/repo/tests/dataset/test_split.cpp" "tests/CMakeFiles/sugar_tests.dir/dataset/test_split.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/dataset/test_split.cpp.o.d"
  "/root/repo/tests/dataset/test_task.cpp" "tests/CMakeFiles/sugar_tests.dir/dataset/test_task.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/dataset/test_task.cpp.o.d"
  "/root/repo/tests/dataset/test_transforms.cpp" "tests/CMakeFiles/sugar_tests.dir/dataset/test_transforms.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/dataset/test_transforms.cpp.o.d"
  "/root/repo/tests/ml/test_knn_mlp.cpp" "tests/CMakeFiles/sugar_tests.dir/ml/test_knn_mlp.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/ml/test_knn_mlp.cpp.o.d"
  "/root/repo/tests/ml/test_matrix.cpp" "tests/CMakeFiles/sugar_tests.dir/ml/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/ml/test_matrix.cpp.o.d"
  "/root/repo/tests/ml/test_metrics.cpp" "tests/CMakeFiles/sugar_tests.dir/ml/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/ml/test_metrics.cpp.o.d"
  "/root/repo/tests/ml/test_nn.cpp" "tests/CMakeFiles/sugar_tests.dir/ml/test_nn.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/ml/test_nn.cpp.o.d"
  "/root/repo/tests/ml/test_tree.cpp" "tests/CMakeFiles/sugar_tests.dir/ml/test_tree.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/ml/test_tree.cpp.o.d"
  "/root/repo/tests/net/test_addr.cpp" "tests/CMakeFiles/sugar_tests.dir/net/test_addr.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/net/test_addr.cpp.o.d"
  "/root/repo/tests/net/test_bytes.cpp" "tests/CMakeFiles/sugar_tests.dir/net/test_bytes.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/net/test_bytes.cpp.o.d"
  "/root/repo/tests/net/test_checksum.cpp" "tests/CMakeFiles/sugar_tests.dir/net/test_checksum.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/net/test_checksum.cpp.o.d"
  "/root/repo/tests/net/test_flow.cpp" "tests/CMakeFiles/sugar_tests.dir/net/test_flow.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/net/test_flow.cpp.o.d"
  "/root/repo/tests/net/test_mutate.cpp" "tests/CMakeFiles/sugar_tests.dir/net/test_mutate.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/net/test_mutate.cpp.o.d"
  "/root/repo/tests/net/test_parser_serializer.cpp" "tests/CMakeFiles/sugar_tests.dir/net/test_parser_serializer.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/net/test_parser_serializer.cpp.o.d"
  "/root/repo/tests/net/test_pcap.cpp" "tests/CMakeFiles/sugar_tests.dir/net/test_pcap.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/net/test_pcap.cpp.o.d"
  "/root/repo/tests/replearn/test_encoders.cpp" "tests/CMakeFiles/sugar_tests.dir/replearn/test_encoders.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/replearn/test_encoders.cpp.o.d"
  "/root/repo/tests/replearn/test_featurize.cpp" "tests/CMakeFiles/sugar_tests.dir/replearn/test_featurize.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/replearn/test_featurize.cpp.o.d"
  "/root/repo/tests/replearn/test_head_zoo.cpp" "tests/CMakeFiles/sugar_tests.dir/replearn/test_head_zoo.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/replearn/test_head_zoo.cpp.o.d"
  "/root/repo/tests/replearn/test_pretrain.cpp" "tests/CMakeFiles/sugar_tests.dir/replearn/test_pretrain.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/replearn/test_pretrain.cpp.o.d"
  "/root/repo/tests/trafficgen/test_datasets.cpp" "tests/CMakeFiles/sugar_tests.dir/trafficgen/test_datasets.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/trafficgen/test_datasets.cpp.o.d"
  "/root/repo/tests/trafficgen/test_payload.cpp" "tests/CMakeFiles/sugar_tests.dir/trafficgen/test_payload.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/trafficgen/test_payload.cpp.o.d"
  "/root/repo/tests/trafficgen/test_profiles.cpp" "tests/CMakeFiles/sugar_tests.dir/trafficgen/test_profiles.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/trafficgen/test_profiles.cpp.o.d"
  "/root/repo/tests/trafficgen/test_session.cpp" "tests/CMakeFiles/sugar_tests.dir/trafficgen/test_session.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/trafficgen/test_session.cpp.o.d"
  "/root/repo/tests/trafficgen/test_spurious.cpp" "tests/CMakeFiles/sugar_tests.dir/trafficgen/test_spurious.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/trafficgen/test_spurious.cpp.o.d"
  "/root/repo/tests/trafficgen/test_trace_invariants.cpp" "tests/CMakeFiles/sugar_tests.dir/trafficgen/test_trace_invariants.cpp.o" "gcc" "tests/CMakeFiles/sugar_tests.dir/trafficgen/test_trace_invariants.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sugar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/replearn/CMakeFiles/sugar_replearn.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/sugar_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/sugar_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/trafficgen/CMakeFiles/sugar_trafficgen.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sugar_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
