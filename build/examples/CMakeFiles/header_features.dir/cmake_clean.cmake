file(REMOVE_RECURSE
  "CMakeFiles/header_features.dir/header_features.cpp.o"
  "CMakeFiles/header_features.dir/header_features.cpp.o.d"
  "header_features"
  "header_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/header_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
