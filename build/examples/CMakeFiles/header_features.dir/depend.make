# Empty dependencies file for header_features.
# This may be replaced when dependencies are built.
