# Empty compiler generated dependencies file for shortcut_demo.
# This may be replaced when dependencies are built.
