file(REMOVE_RECURSE
  "CMakeFiles/shortcut_demo.dir/shortcut_demo.cpp.o"
  "CMakeFiles/shortcut_demo.dir/shortcut_demo.cpp.o.d"
  "shortcut_demo"
  "shortcut_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shortcut_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
