# Empty compiler generated dependencies file for dataset_audit.
# This may be replaced when dependencies are built.
