file(REMOVE_RECURSE
  "CMakeFiles/dataset_audit.dir/dataset_audit.cpp.o"
  "CMakeFiles/dataset_audit.dir/dataset_audit.cpp.o.d"
  "dataset_audit"
  "dataset_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
