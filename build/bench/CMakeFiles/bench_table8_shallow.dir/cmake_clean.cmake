file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_shallow.dir/bench_table8_shallow.cpp.o"
  "CMakeFiles/bench_table8_shallow.dir/bench_table8_shallow.cpp.o.d"
  "bench_table8_shallow"
  "bench_table8_shallow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_shallow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
