# Empty dependencies file for bench_table8_shallow.
# This may be replaced when dependencies are built.
