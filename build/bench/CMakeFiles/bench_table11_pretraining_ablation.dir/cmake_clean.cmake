file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_pretraining_ablation.dir/bench_table11_pretraining_ablation.cpp.o"
  "CMakeFiles/bench_table11_pretraining_ablation.dir/bench_table11_pretraining_ablation.cpp.o.d"
  "bench_table11_pretraining_ablation"
  "bench_table11_pretraining_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_pretraining_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
