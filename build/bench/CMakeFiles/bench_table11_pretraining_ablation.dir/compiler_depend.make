# Empty compiler generated dependencies file for bench_table11_pretraining_ablation.
# This may be replaced when dependencies are built.
