file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_flowlevel.dir/bench_table9_flowlevel.cpp.o"
  "CMakeFiles/bench_table9_flowlevel.dir/bench_table9_flowlevel.cpp.o.d"
  "bench_table9_flowlevel"
  "bench_table9_flowlevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_flowlevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
