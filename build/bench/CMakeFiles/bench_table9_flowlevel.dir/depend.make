# Empty dependencies file for bench_table9_flowlevel.
# This may be replaced when dependencies are built.
