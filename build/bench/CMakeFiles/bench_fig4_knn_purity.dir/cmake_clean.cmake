file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_knn_purity.dir/bench_fig4_knn_purity.cpp.o"
  "CMakeFiles/bench_fig4_knn_purity.dir/bench_fig4_knn_purity.cpp.o.d"
  "bench_fig4_knn_purity"
  "bench_fig4_knn_purity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_knn_purity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
