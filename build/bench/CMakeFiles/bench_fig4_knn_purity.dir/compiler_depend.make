# Empty compiler generated dependencies file for bench_fig4_knn_purity.
# This may be replaced when dependencies are built.
