file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_headline.dir/bench_fig1_headline.cpp.o"
  "CMakeFiles/bench_fig1_headline.dir/bench_fig1_headline.cpp.o.d"
  "bench_fig1_headline"
  "bench_fig1_headline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_headline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
