
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_timing.cpp" "bench/CMakeFiles/bench_fig6_timing.dir/bench_fig6_timing.cpp.o" "gcc" "bench/CMakeFiles/bench_fig6_timing.dir/bench_fig6_timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sugar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/replearn/CMakeFiles/sugar_replearn.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/sugar_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/sugar_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/trafficgen/CMakeFiles/sugar_trafficgen.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sugar_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
