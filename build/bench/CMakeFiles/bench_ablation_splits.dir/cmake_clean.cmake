file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_splits.dir/bench_ablation_splits.cpp.o"
  "CMakeFiles/bench_ablation_splits.dir/bench_ablation_splits.cpp.o.d"
  "bench_ablation_splits"
  "bench_ablation_splits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_splits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
