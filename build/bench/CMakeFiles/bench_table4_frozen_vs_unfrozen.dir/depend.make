# Empty dependencies file for bench_table4_frozen_vs_unfrozen.
# This may be replaced when dependencies are built.
