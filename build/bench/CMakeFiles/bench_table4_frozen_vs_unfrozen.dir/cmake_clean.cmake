file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_frozen_vs_unfrozen.dir/bench_table4_frozen_vs_unfrozen.cpp.o"
  "CMakeFiles/bench_table4_frozen_vs_unfrozen.dir/bench_table4_frozen_vs_unfrozen.cpp.o.d"
  "bench_table4_frozen_vs_unfrozen"
  "bench_table4_frozen_vs_unfrozen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_frozen_vs_unfrozen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
