file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_pcapencoder_ablation.dir/bench_table7_pcapencoder_ablation.cpp.o"
  "CMakeFiles/bench_table7_pcapencoder_ablation.dir/bench_table7_pcapencoder_ablation.cpp.o.d"
  "bench_table7_pcapencoder_ablation"
  "bench_table7_pcapencoder_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_pcapencoder_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
