file(REMOVE_RECURSE
  "CMakeFiles/bench_table13_cleaning.dir/bench_table13_cleaning.cpp.o"
  "CMakeFiles/bench_table13_cleaning.dir/bench_table13_cleaning.cpp.o.d"
  "bench_table13_cleaning"
  "bench_table13_cleaning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table13_cleaning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
