file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_perpacket.dir/bench_table5_perpacket.cpp.o"
  "CMakeFiles/bench_table5_perpacket.dir/bench_table5_perpacket.cpp.o.d"
  "bench_table5_perpacket"
  "bench_table5_perpacket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_perpacket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
