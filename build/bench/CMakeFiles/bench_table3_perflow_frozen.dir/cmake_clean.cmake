file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_perflow_frozen.dir/bench_table3_perflow_frozen.cpp.o"
  "CMakeFiles/bench_table3_perflow_frozen.dir/bench_table3_perflow_frozen.cpp.o.d"
  "bench_table3_perflow_frozen"
  "bench_table3_perflow_frozen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_perflow_frozen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
