# Empty dependencies file for bench_table3_perflow_frozen.
# This may be replaced when dependencies are built.
