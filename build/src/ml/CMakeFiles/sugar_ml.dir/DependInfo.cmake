
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/forest.cpp" "src/ml/CMakeFiles/sugar_ml.dir/forest.cpp.o" "gcc" "src/ml/CMakeFiles/sugar_ml.dir/forest.cpp.o.d"
  "/root/repo/src/ml/gbdt.cpp" "src/ml/CMakeFiles/sugar_ml.dir/gbdt.cpp.o" "gcc" "src/ml/CMakeFiles/sugar_ml.dir/gbdt.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/sugar_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/sugar_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/matrix.cpp" "src/ml/CMakeFiles/sugar_ml.dir/matrix.cpp.o" "gcc" "src/ml/CMakeFiles/sugar_ml.dir/matrix.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/sugar_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/sugar_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/mlp.cpp" "src/ml/CMakeFiles/sugar_ml.dir/mlp.cpp.o" "gcc" "src/ml/CMakeFiles/sugar_ml.dir/mlp.cpp.o.d"
  "/root/repo/src/ml/nn.cpp" "src/ml/CMakeFiles/sugar_ml.dir/nn.cpp.o" "gcc" "src/ml/CMakeFiles/sugar_ml.dir/nn.cpp.o.d"
  "/root/repo/src/ml/preprocess.cpp" "src/ml/CMakeFiles/sugar_ml.dir/preprocess.cpp.o" "gcc" "src/ml/CMakeFiles/sugar_ml.dir/preprocess.cpp.o.d"
  "/root/repo/src/ml/tree.cpp" "src/ml/CMakeFiles/sugar_ml.dir/tree.cpp.o" "gcc" "src/ml/CMakeFiles/sugar_ml.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
