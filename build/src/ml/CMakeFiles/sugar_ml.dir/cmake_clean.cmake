file(REMOVE_RECURSE
  "CMakeFiles/sugar_ml.dir/forest.cpp.o"
  "CMakeFiles/sugar_ml.dir/forest.cpp.o.d"
  "CMakeFiles/sugar_ml.dir/gbdt.cpp.o"
  "CMakeFiles/sugar_ml.dir/gbdt.cpp.o.d"
  "CMakeFiles/sugar_ml.dir/knn.cpp.o"
  "CMakeFiles/sugar_ml.dir/knn.cpp.o.d"
  "CMakeFiles/sugar_ml.dir/matrix.cpp.o"
  "CMakeFiles/sugar_ml.dir/matrix.cpp.o.d"
  "CMakeFiles/sugar_ml.dir/metrics.cpp.o"
  "CMakeFiles/sugar_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/sugar_ml.dir/mlp.cpp.o"
  "CMakeFiles/sugar_ml.dir/mlp.cpp.o.d"
  "CMakeFiles/sugar_ml.dir/nn.cpp.o"
  "CMakeFiles/sugar_ml.dir/nn.cpp.o.d"
  "CMakeFiles/sugar_ml.dir/preprocess.cpp.o"
  "CMakeFiles/sugar_ml.dir/preprocess.cpp.o.d"
  "CMakeFiles/sugar_ml.dir/tree.cpp.o"
  "CMakeFiles/sugar_ml.dir/tree.cpp.o.d"
  "libsugar_ml.a"
  "libsugar_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sugar_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
