file(REMOVE_RECURSE
  "libsugar_ml.a"
)
