# Empty compiler generated dependencies file for sugar_ml.
# This may be replaced when dependencies are built.
