file(REMOVE_RECURSE
  "CMakeFiles/sugar_replearn.dir/featurize.cpp.o"
  "CMakeFiles/sugar_replearn.dir/featurize.cpp.o.d"
  "CMakeFiles/sugar_replearn.dir/head.cpp.o"
  "CMakeFiles/sugar_replearn.dir/head.cpp.o.d"
  "CMakeFiles/sugar_replearn.dir/mae_encoder.cpp.o"
  "CMakeFiles/sugar_replearn.dir/mae_encoder.cpp.o.d"
  "CMakeFiles/sugar_replearn.dir/model_zoo.cpp.o"
  "CMakeFiles/sugar_replearn.dir/model_zoo.cpp.o.d"
  "CMakeFiles/sugar_replearn.dir/pcap_encoder.cpp.o"
  "CMakeFiles/sugar_replearn.dir/pcap_encoder.cpp.o.d"
  "CMakeFiles/sugar_replearn.dir/pretrain.cpp.o"
  "CMakeFiles/sugar_replearn.dir/pretrain.cpp.o.d"
  "libsugar_replearn.a"
  "libsugar_replearn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sugar_replearn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
