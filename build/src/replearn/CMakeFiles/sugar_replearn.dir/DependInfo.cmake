
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/replearn/featurize.cpp" "src/replearn/CMakeFiles/sugar_replearn.dir/featurize.cpp.o" "gcc" "src/replearn/CMakeFiles/sugar_replearn.dir/featurize.cpp.o.d"
  "/root/repo/src/replearn/head.cpp" "src/replearn/CMakeFiles/sugar_replearn.dir/head.cpp.o" "gcc" "src/replearn/CMakeFiles/sugar_replearn.dir/head.cpp.o.d"
  "/root/repo/src/replearn/mae_encoder.cpp" "src/replearn/CMakeFiles/sugar_replearn.dir/mae_encoder.cpp.o" "gcc" "src/replearn/CMakeFiles/sugar_replearn.dir/mae_encoder.cpp.o.d"
  "/root/repo/src/replearn/model_zoo.cpp" "src/replearn/CMakeFiles/sugar_replearn.dir/model_zoo.cpp.o" "gcc" "src/replearn/CMakeFiles/sugar_replearn.dir/model_zoo.cpp.o.d"
  "/root/repo/src/replearn/pcap_encoder.cpp" "src/replearn/CMakeFiles/sugar_replearn.dir/pcap_encoder.cpp.o" "gcc" "src/replearn/CMakeFiles/sugar_replearn.dir/pcap_encoder.cpp.o.d"
  "/root/repo/src/replearn/pretrain.cpp" "src/replearn/CMakeFiles/sugar_replearn.dir/pretrain.cpp.o" "gcc" "src/replearn/CMakeFiles/sugar_replearn.dir/pretrain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/sugar_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/sugar_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/trafficgen/CMakeFiles/sugar_trafficgen.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sugar_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
