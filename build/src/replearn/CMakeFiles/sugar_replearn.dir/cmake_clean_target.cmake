file(REMOVE_RECURSE
  "libsugar_replearn.a"
)
