# Empty dependencies file for sugar_replearn.
# This may be replaced when dependencies are built.
