file(REMOVE_RECURSE
  "CMakeFiles/sugar_core.dir/env.cpp.o"
  "CMakeFiles/sugar_core.dir/env.cpp.o.d"
  "CMakeFiles/sugar_core.dir/pipeline.cpp.o"
  "CMakeFiles/sugar_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/sugar_core.dir/report.cpp.o"
  "CMakeFiles/sugar_core.dir/report.cpp.o.d"
  "libsugar_core.a"
  "libsugar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sugar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
