# Empty dependencies file for sugar_core.
# This may be replaced when dependencies are built.
