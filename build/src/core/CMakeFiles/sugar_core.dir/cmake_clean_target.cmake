file(REMOVE_RECURSE
  "libsugar_core.a"
)
