file(REMOVE_RECURSE
  "libsugar_dataset.a"
)
