# Empty compiler generated dependencies file for sugar_dataset.
# This may be replaced when dependencies are built.
