
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataset/advanced_split.cpp" "src/dataset/CMakeFiles/sugar_dataset.dir/advanced_split.cpp.o" "gcc" "src/dataset/CMakeFiles/sugar_dataset.dir/advanced_split.cpp.o.d"
  "/root/repo/src/dataset/audit.cpp" "src/dataset/CMakeFiles/sugar_dataset.dir/audit.cpp.o" "gcc" "src/dataset/CMakeFiles/sugar_dataset.dir/audit.cpp.o.d"
  "/root/repo/src/dataset/clean.cpp" "src/dataset/CMakeFiles/sugar_dataset.dir/clean.cpp.o" "gcc" "src/dataset/CMakeFiles/sugar_dataset.dir/clean.cpp.o.d"
  "/root/repo/src/dataset/split.cpp" "src/dataset/CMakeFiles/sugar_dataset.dir/split.cpp.o" "gcc" "src/dataset/CMakeFiles/sugar_dataset.dir/split.cpp.o.d"
  "/root/repo/src/dataset/task.cpp" "src/dataset/CMakeFiles/sugar_dataset.dir/task.cpp.o" "gcc" "src/dataset/CMakeFiles/sugar_dataset.dir/task.cpp.o.d"
  "/root/repo/src/dataset/transforms.cpp" "src/dataset/CMakeFiles/sugar_dataset.dir/transforms.cpp.o" "gcc" "src/dataset/CMakeFiles/sugar_dataset.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/sugar_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trafficgen/CMakeFiles/sugar_trafficgen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
