file(REMOVE_RECURSE
  "CMakeFiles/sugar_dataset.dir/advanced_split.cpp.o"
  "CMakeFiles/sugar_dataset.dir/advanced_split.cpp.o.d"
  "CMakeFiles/sugar_dataset.dir/audit.cpp.o"
  "CMakeFiles/sugar_dataset.dir/audit.cpp.o.d"
  "CMakeFiles/sugar_dataset.dir/clean.cpp.o"
  "CMakeFiles/sugar_dataset.dir/clean.cpp.o.d"
  "CMakeFiles/sugar_dataset.dir/split.cpp.o"
  "CMakeFiles/sugar_dataset.dir/split.cpp.o.d"
  "CMakeFiles/sugar_dataset.dir/task.cpp.o"
  "CMakeFiles/sugar_dataset.dir/task.cpp.o.d"
  "CMakeFiles/sugar_dataset.dir/transforms.cpp.o"
  "CMakeFiles/sugar_dataset.dir/transforms.cpp.o.d"
  "libsugar_dataset.a"
  "libsugar_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sugar_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
