file(REMOVE_RECURSE
  "libsugar_net.a"
)
