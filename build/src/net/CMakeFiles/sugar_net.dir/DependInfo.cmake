
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/addr.cpp" "src/net/CMakeFiles/sugar_net.dir/addr.cpp.o" "gcc" "src/net/CMakeFiles/sugar_net.dir/addr.cpp.o.d"
  "/root/repo/src/net/bytes.cpp" "src/net/CMakeFiles/sugar_net.dir/bytes.cpp.o" "gcc" "src/net/CMakeFiles/sugar_net.dir/bytes.cpp.o.d"
  "/root/repo/src/net/checksum.cpp" "src/net/CMakeFiles/sugar_net.dir/checksum.cpp.o" "gcc" "src/net/CMakeFiles/sugar_net.dir/checksum.cpp.o.d"
  "/root/repo/src/net/flow.cpp" "src/net/CMakeFiles/sugar_net.dir/flow.cpp.o" "gcc" "src/net/CMakeFiles/sugar_net.dir/flow.cpp.o.d"
  "/root/repo/src/net/headers.cpp" "src/net/CMakeFiles/sugar_net.dir/headers.cpp.o" "gcc" "src/net/CMakeFiles/sugar_net.dir/headers.cpp.o.d"
  "/root/repo/src/net/mutate.cpp" "src/net/CMakeFiles/sugar_net.dir/mutate.cpp.o" "gcc" "src/net/CMakeFiles/sugar_net.dir/mutate.cpp.o.d"
  "/root/repo/src/net/parser.cpp" "src/net/CMakeFiles/sugar_net.dir/parser.cpp.o" "gcc" "src/net/CMakeFiles/sugar_net.dir/parser.cpp.o.d"
  "/root/repo/src/net/pcap.cpp" "src/net/CMakeFiles/sugar_net.dir/pcap.cpp.o" "gcc" "src/net/CMakeFiles/sugar_net.dir/pcap.cpp.o.d"
  "/root/repo/src/net/proto.cpp" "src/net/CMakeFiles/sugar_net.dir/proto.cpp.o" "gcc" "src/net/CMakeFiles/sugar_net.dir/proto.cpp.o.d"
  "/root/repo/src/net/serializer.cpp" "src/net/CMakeFiles/sugar_net.dir/serializer.cpp.o" "gcc" "src/net/CMakeFiles/sugar_net.dir/serializer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
