# Empty dependencies file for sugar_net.
# This may be replaced when dependencies are built.
