file(REMOVE_RECURSE
  "CMakeFiles/sugar_net.dir/addr.cpp.o"
  "CMakeFiles/sugar_net.dir/addr.cpp.o.d"
  "CMakeFiles/sugar_net.dir/bytes.cpp.o"
  "CMakeFiles/sugar_net.dir/bytes.cpp.o.d"
  "CMakeFiles/sugar_net.dir/checksum.cpp.o"
  "CMakeFiles/sugar_net.dir/checksum.cpp.o.d"
  "CMakeFiles/sugar_net.dir/flow.cpp.o"
  "CMakeFiles/sugar_net.dir/flow.cpp.o.d"
  "CMakeFiles/sugar_net.dir/headers.cpp.o"
  "CMakeFiles/sugar_net.dir/headers.cpp.o.d"
  "CMakeFiles/sugar_net.dir/mutate.cpp.o"
  "CMakeFiles/sugar_net.dir/mutate.cpp.o.d"
  "CMakeFiles/sugar_net.dir/parser.cpp.o"
  "CMakeFiles/sugar_net.dir/parser.cpp.o.d"
  "CMakeFiles/sugar_net.dir/pcap.cpp.o"
  "CMakeFiles/sugar_net.dir/pcap.cpp.o.d"
  "CMakeFiles/sugar_net.dir/proto.cpp.o"
  "CMakeFiles/sugar_net.dir/proto.cpp.o.d"
  "CMakeFiles/sugar_net.dir/serializer.cpp.o"
  "CMakeFiles/sugar_net.dir/serializer.cpp.o.d"
  "libsugar_net.a"
  "libsugar_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sugar_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
