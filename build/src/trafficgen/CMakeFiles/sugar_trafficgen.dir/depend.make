# Empty dependencies file for sugar_trafficgen.
# This may be replaced when dependencies are built.
