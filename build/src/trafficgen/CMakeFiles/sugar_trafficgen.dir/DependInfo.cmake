
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trafficgen/datasets.cpp" "src/trafficgen/CMakeFiles/sugar_trafficgen.dir/datasets.cpp.o" "gcc" "src/trafficgen/CMakeFiles/sugar_trafficgen.dir/datasets.cpp.o.d"
  "/root/repo/src/trafficgen/payload.cpp" "src/trafficgen/CMakeFiles/sugar_trafficgen.dir/payload.cpp.o" "gcc" "src/trafficgen/CMakeFiles/sugar_trafficgen.dir/payload.cpp.o.d"
  "/root/repo/src/trafficgen/profiles.cpp" "src/trafficgen/CMakeFiles/sugar_trafficgen.dir/profiles.cpp.o" "gcc" "src/trafficgen/CMakeFiles/sugar_trafficgen.dir/profiles.cpp.o.d"
  "/root/repo/src/trafficgen/session.cpp" "src/trafficgen/CMakeFiles/sugar_trafficgen.dir/session.cpp.o" "gcc" "src/trafficgen/CMakeFiles/sugar_trafficgen.dir/session.cpp.o.d"
  "/root/repo/src/trafficgen/spurious.cpp" "src/trafficgen/CMakeFiles/sugar_trafficgen.dir/spurious.cpp.o" "gcc" "src/trafficgen/CMakeFiles/sugar_trafficgen.dir/spurious.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/sugar_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
