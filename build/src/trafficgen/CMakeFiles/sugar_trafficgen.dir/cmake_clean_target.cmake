file(REMOVE_RECURSE
  "libsugar_trafficgen.a"
)
