file(REMOVE_RECURSE
  "CMakeFiles/sugar_trafficgen.dir/datasets.cpp.o"
  "CMakeFiles/sugar_trafficgen.dir/datasets.cpp.o.d"
  "CMakeFiles/sugar_trafficgen.dir/payload.cpp.o"
  "CMakeFiles/sugar_trafficgen.dir/payload.cpp.o.d"
  "CMakeFiles/sugar_trafficgen.dir/profiles.cpp.o"
  "CMakeFiles/sugar_trafficgen.dir/profiles.cpp.o.d"
  "CMakeFiles/sugar_trafficgen.dir/session.cpp.o"
  "CMakeFiles/sugar_trafficgen.dir/session.cpp.o.d"
  "CMakeFiles/sugar_trafficgen.dir/spurious.cpp.o"
  "CMakeFiles/sugar_trafficgen.dir/spurious.cpp.o.d"
  "libsugar_trafficgen.a"
  "libsugar_trafficgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sugar_trafficgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
