#include <gtest/gtest.h>

#include "ml/guard.h"
#include "ml/metrics.h"

namespace sugar::ml {
namespace {

TEST(Metrics, PerfectPrediction) {
  std::vector<int> y{0, 1, 2, 0, 1, 2};
  auto m = evaluate(y, y, 3);
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(m.macro_f1, 1.0);
  EXPECT_DOUBLE_EQ(m.micro_f1, 1.0);
}

TEST(Metrics, KnownConfusion) {
  // truth:  0 0 0 0 1 1
  // pred:   0 0 1 1 1 0
  std::vector<int> yt{0, 0, 0, 0, 1, 1};
  std::vector<int> yp{0, 0, 1, 1, 1, 0};
  auto m = evaluate(yt, yp, 2);
  EXPECT_NEAR(m.accuracy, 3.0 / 6, 1e-12);
  // class 0: tp=2 fp=1 fn=2 -> f1 = 4/7; class 1: tp=1 fp=2 fn=1 -> f1=2/5.
  EXPECT_NEAR(m.macro_f1, (4.0 / 7 + 2.0 / 5) / 2, 1e-12);
  // micro: tp=3, fp=3, fn=3 -> 6/12.
  EXPECT_NEAR(m.micro_f1, 0.5, 1e-12);
  EXPECT_EQ(m.confusion.at(0, 1), 2u);
  EXPECT_EQ(m.confusion.at(1, 0), 1u);
  EXPECT_EQ(m.confusion.total(), 6u);
  EXPECT_EQ(m.confusion.correct(), 3u);
}

TEST(Metrics, MacroVsMicroOnImbalance) {
  // 90 samples of class 0 all correct; 10 of class 1 all wrong.
  std::vector<int> yt, yp;
  for (int i = 0; i < 90; ++i) {
    yt.push_back(0);
    yp.push_back(0);
  }
  for (int i = 0; i < 10; ++i) {
    yt.push_back(1);
    yp.push_back(0);
  }
  auto m = evaluate(yt, yp, 2);
  EXPECT_NEAR(m.accuracy, 0.9, 1e-12);
  // Micro F1 flatters the majority class; macro F1 exposes the failure —
  // the distinction §4.2 of the paper insists on.
  EXPECT_GT(m.micro_f1, 0.89);
  EXPECT_LT(m.macro_f1, 0.5);
}

TEST(Metrics, AbsentClassesExcludedFromMacro) {
  // num_classes=4 but classes 2,3 never appear: macro averages over 2.
  std::vector<int> yt{0, 1, 0, 1};
  std::vector<int> yp{0, 1, 0, 1};
  auto m = evaluate(yt, yp, 4);
  EXPECT_DOUBLE_EQ(m.macro_f1, 1.0);
}

TEST(Metrics, ClassInTruthNeverPredictedCountsAsZero) {
  std::vector<int> yt{0, 1};
  std::vector<int> yp{0, 0};
  auto m = evaluate(yt, yp, 2);
  // class 1: f1=0; class 0: tp=1 fp=1 fn=0 -> 2/3.
  EXPECT_NEAR(m.macro_f1, (2.0 / 3 + 0) / 2, 1e-12);
}

TEST(Metrics, ToStringFormatsPercentages) {
  std::vector<int> y{0, 1};
  auto m = evaluate(y, y, 2);
  EXPECT_EQ(m.to_string(), "AC=100.0 F1=100.0 (micro F1=100.0)");
}

// The invariant checks replace Release-no-op asserts: a malformed call must
// fail the cell with a typed error, not read out of bounds.
TEST(Metrics, SizeMismatchThrowsInternalError) {
  std::vector<int> yt{0, 1, 0};
  std::vector<int> yp{0, 1};
  EXPECT_THROW(evaluate(yt, yp, 2), InternalError);
}

TEST(Metrics, NonPositiveClassCountThrowsInternalError) {
  std::vector<int> y{0};
  EXPECT_THROW(evaluate(y, y, 0), InternalError);
  EXPECT_THROW(evaluate(y, y, -1), InternalError);
}

TEST(Metrics, OutOfRangeLabelsThrowInternalError) {
  std::vector<int> yt{0, 2};  // class 2 out of range for num_classes=2
  std::vector<int> yp{0, 1};
  EXPECT_THROW(evaluate(yt, yp, 2), InternalError);
  std::vector<int> yt2{0, 1};
  std::vector<int> yp2{0, -1};
  EXPECT_THROW(evaluate(yt2, yp2, 2), InternalError);
}

TEST(Metrics, EmptyPredictionSetYieldsZeroMetricsNotUb) {
  std::vector<int> empty;
  auto m = evaluate(empty, empty, 3);
  EXPECT_DOUBLE_EQ(m.accuracy, 0.0);
  EXPECT_DOUBLE_EQ(m.macro_f1, 0.0);
  EXPECT_DOUBLE_EQ(m.micro_f1, 0.0);
}

}  // namespace
}  // namespace sugar::ml
