#include <gtest/gtest.h>

#include <random>

#include "ml/knn.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/preprocess.h"

namespace sugar::ml {
namespace {

std::pair<Matrix, std::vector<int>> two_clusters(std::size_t per_class,
                                                 std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> noise(0.0f, 0.4f);
  Matrix x(per_class * 2, 2);
  std::vector<int> y;
  for (std::size_t i = 0; i < per_class * 2; ++i) {
    int cls = i < per_class ? 0 : 1;
    x(i, 0) = static_cast<float>(cls * 4) + noise(rng);
    x(i, 1) = static_cast<float>(cls * 4) + noise(rng);
    y.push_back(cls);
  }
  return {std::move(x), std::move(y)};
}

TEST(Knn, ClassifiesClusters) {
  auto [x, y] = two_clusters(50, 1);
  auto [xt, yt] = two_clusters(20, 2);
  KnnClassifier knn(5);
  knn.fit(x, y, 2);
  auto pred = knn.predict(xt);
  EXPECT_GT(evaluate(yt, pred, 2).accuracy, 0.97);
}

TEST(KnnPurity, SeparatedClustersAreFullyPure) {
  auto [x, y] = two_clusters(30, 3);
  auto purity = knn_purity(x, y, 5);
  EXPECT_NEAR(purity.mean_purity, 1.0, 0.02);
  EXPECT_NEAR(purity.histogram[5], 1.0, 0.05);
}

TEST(KnnPurity, RandomLabelsAreImpure) {
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<float> unif(0, 1);
  Matrix x(200, 3);
  for (auto& v : x.data()) v = unif(rng);
  std::vector<int> y;
  for (int i = 0; i < 200; ++i) y.push_back(static_cast<int>(rng() % 10));
  auto purity = knn_purity(x, y, 5);
  EXPECT_LT(purity.mean_purity, 0.25);
  EXPECT_GT(purity.histogram[0], 0.4);  // most points: zero same-class nbrs
}

TEST(KnnPurity, HistogramSumsToOne) {
  auto [x, y] = two_clusters(25, 5);
  auto purity = knn_purity(x, y, 5);
  double sum = 0;
  for (double h : purity.histogram) sum += h;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_EQ(purity.histogram.size(), 6u);
}

TEST(KnnPurity, DegenerateInputs) {
  Matrix one(1, 2, 0.0f);
  auto p = knn_purity(one, {0}, 5);
  EXPECT_EQ(p.mean_purity, 0.0);
}

TEST(Mlp, ClassifiesClusters) {
  auto [x, y] = two_clusters(80, 6);
  auto [xt, yt] = two_clusters(30, 7);
  MlpConfig cfg;
  cfg.epochs = 60;
  cfg.hidden = {16};
  MlpClassifier mlp(cfg);
  mlp.fit(x, y, 2);
  auto pred = mlp.predict(xt);
  EXPECT_GT(evaluate(yt, pred, 2).accuracy, 0.95);

  auto proba = mlp.predict_proba(xt);
  for (std::size_t i = 0; i < proba.rows(); ++i)
    EXPECT_NEAR(proba(i, 0) + proba(i, 1), 1.0f, 1e-4f);
}

TEST(Mlp, EarlyStopTerminates) {
  auto [x, y] = two_clusters(50, 8);
  MlpConfig cfg;
  cfg.epochs = 500;
  cfg.early_stop_delta = 1e-4f;
  cfg.patience = 10;
  MlpClassifier mlp(cfg);
  mlp.fit(x, y, 2);  // must finish quickly despite 500-epoch budget
  auto pred = mlp.predict(x);
  EXPECT_GT(evaluate(y, pred, 2).accuracy, 0.9);
}

TEST(Scaler, NormalizesTrainStatistics) {
  Matrix x(4, 2);
  x(0, 0) = 1; x(1, 0) = 2; x(2, 0) = 3; x(3, 0) = 4;
  x(0, 1) = 10; x(1, 1) = 10; x(2, 1) = 10; x(3, 1) = 10;
  StandardScaler scaler;
  scaler.fit(x);
  EXPECT_NEAR(scaler.mean()[0], 2.5f, 1e-6f);
  EXPECT_NEAR(scaler.mean()[1], 10.0f, 1e-6f);
  // Constant column: stddev guarded to 1.
  EXPECT_NEAR(scaler.stddev()[1], 1.0f, 1e-6f);

  scaler.transform(x);
  float mean0 = (x(0, 0) + x(1, 0) + x(2, 0) + x(3, 0)) / 4;
  EXPECT_NEAR(mean0, 0.0f, 1e-6f);
  EXPECT_NEAR(x(0, 1), 0.0f, 1e-6f);
}

TEST(Scaler, TransformUsesTrainStats) {
  Matrix train(2, 1);
  train(0, 0) = 0;
  train(1, 0) = 2;
  StandardScaler scaler;
  scaler.fit(train);
  Matrix test(1, 1);
  test(0, 0) = 4;
  scaler.transform(test);
  EXPECT_NEAR(test(0, 0), 3.0f, 1e-5f);  // (4-1)/1
}

}  // namespace
}  // namespace sugar::ml
