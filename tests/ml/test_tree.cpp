#include <gtest/gtest.h>

#include <random>

#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/metrics.h"
#include "ml/tree.h"

namespace sugar::ml {
namespace {

/// Gaussian blobs: one cluster per class.
std::pair<Matrix, std::vector<int>> make_blobs(int classes, std::size_t per_class,
                                               std::size_t dims, double spread,
                                               std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> noise(0.0f, static_cast<float>(spread));
  Matrix x(static_cast<std::size_t>(classes) * per_class, dims);
  std::vector<int> y;
  std::size_t row = 0;
  for (int c = 0; c < classes; ++c) {
    for (std::size_t i = 0; i < per_class; ++i, ++row) {
      for (std::size_t d = 0; d < dims; ++d)
        x(row, d) = static_cast<float>(c * 3 + (d % 2 ? 1 : -1)) + noise(rng);
      y.push_back(c);
    }
  }
  return {std::move(x), std::move(y)};
}

TEST(DecisionTree, SeparatesCleanBlobs) {
  auto [x, y] = make_blobs(3, 60, 4, 0.3, 1);
  DecisionTree tree;
  TreeConfig cfg;
  std::mt19937_64 rng(2);
  tree.fit_classifier(x, y, 3, cfg, rng);
  std::vector<int> pred;
  for (std::size_t i = 0; i < x.rows(); ++i) pred.push_back(tree.predict_class(x.row(i)));
  EXPECT_GT(evaluate(y, pred, 3).accuracy, 0.98);
  EXPECT_GT(tree.node_count(), 1u);
}

TEST(DecisionTree, MaxDepthBoundsTree) {
  auto [x, y] = make_blobs(4, 80, 3, 1.5, 3);
  DecisionTree tree;
  TreeConfig cfg;
  cfg.max_depth = 2;
  std::mt19937_64 rng(4);
  tree.fit_classifier(x, y, 4, cfg, rng);
  EXPECT_LE(tree.depth(), 3);  // depth counts nodes; 2 split levels -> <= 3
}

TEST(DecisionTree, PureNodeBecomesLeaf) {
  Matrix x(10, 2, 1.0f);
  std::vector<int> y(10, 0);
  DecisionTree tree;
  TreeConfig cfg;
  std::mt19937_64 rng(5);
  tree.fit_classifier(x, y, 2, cfg, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.predict_class(x.row(0)), 0);
}

TEST(DecisionTree, ImportanceIdentifiesInformativeFeature) {
  // Feature 0 carries all the signal, features 1-3 are noise.
  std::mt19937_64 data_rng(6);
  std::uniform_real_distribution<float> unif(0, 1);
  Matrix x(400, 4);
  std::vector<int> y;
  for (std::size_t i = 0; i < 400; ++i) {
    int cls = static_cast<int>(i % 2);
    x(i, 0) = static_cast<float>(cls) + 0.2f * unif(data_rng);
    for (std::size_t d = 1; d < 4; ++d) x(i, d) = unif(data_rng);
    y.push_back(cls);
  }
  DecisionTree tree;
  TreeConfig cfg;
  std::mt19937_64 rng(7);
  tree.fit_classifier(x, y, 2, cfg, rng);
  const auto& imp = tree.feature_importance();
  EXPECT_GT(imp[0], imp[1] + imp[2] + imp[3]);
}

TEST(DecisionTree, RegressionFitsResiduals) {
  // Gradients of a step function of feature 0; the tree's leaf values must
  // approach -g/h on each side.
  Matrix x(100, 1);
  std::vector<float> grad(100), hess(100, 1.0f);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = static_cast<float>(i);
    grad[i] = i < 50 ? -2.0f : 4.0f;
  }
  DecisionTree tree;
  TreeConfig cfg;
  cfg.max_depth = 2;
  cfg.lambda = 0.0f;
  std::mt19937_64 rng(8);
  tree.fit_regression(x, grad, hess, cfg, rng);
  EXPECT_NEAR(tree.predict_value(x.row(10)), 2.0f, 0.2f);
  EXPECT_NEAR(tree.predict_value(x.row(90)), -4.0f, 0.2f);
}

TEST(DecisionTree, LeafWiseGrowthRespectsLeafBudget) {
  auto [x, y] = make_blobs(6, 60, 4, 1.0, 9);
  DecisionTree tree;
  TreeConfig cfg;
  cfg.max_leaves = 4;
  cfg.max_depth = 20;
  std::mt19937_64 rng(10);
  tree.fit_classifier(x, y, 6, cfg, rng);
  // max_leaves=4 -> at most 3 internal splits -> 7 nodes.
  EXPECT_LE(tree.node_count(), 7u);
}

TEST(DecisionTree, ExactAndHistogramSplitsAgreeOnEasyData) {
  auto [x, y] = make_blobs(2, 200, 3, 0.2, 11);
  std::mt19937_64 rng(12);
  DecisionTree exact, histo;
  TreeConfig ce;
  ce.exact_split_max = 100000;
  TreeConfig ch;
  ch.exact_split_max = 0;
  exact.fit_classifier(x, y, 2, ce, rng);
  histo.fit_classifier(x, y, 2, ch, rng);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < x.rows(); ++i)
    if (exact.predict_class(x.row(i)) == histo.predict_class(x.row(i))) ++agree;
  EXPECT_GT(agree, x.rows() * 95 / 100);
}

TEST(RandomForest, BeatsSingleTreeOnNoisyData) {
  auto [x, y] = make_blobs(5, 100, 6, 2.5, 13);
  auto [xt, yt] = make_blobs(5, 40, 6, 2.5, 14);

  std::mt19937_64 rng(15);
  DecisionTree tree;
  TreeConfig cfg;
  cfg.features_per_split = 2;
  tree.fit_classifier(x, y, 5, cfg, rng);
  std::vector<int> tree_pred;
  for (std::size_t i = 0; i < xt.rows(); ++i)
    tree_pred.push_back(tree.predict_class(xt.row(i)));

  ForestConfig fc;
  fc.num_trees = 25;
  RandomForest rf(fc);
  rf.fit(x, y, 5);
  auto rf_pred = rf.predict(xt);

  double tree_acc = evaluate(yt, tree_pred, 5).accuracy;
  double rf_acc = evaluate(yt, rf_pred, 5).accuracy;
  EXPECT_GE(rf_acc, tree_acc - 0.02);
  EXPECT_GT(rf_acc, 0.8);
}

TEST(RandomForest, ImportanceNormalized) {
  auto [x, y] = make_blobs(3, 50, 5, 1.0, 16);
  RandomForest rf;
  rf.fit(x, y, 3);
  auto imp = rf.feature_importance();
  ASSERT_EQ(imp.size(), 5u);
  double sum = 0;
  for (double v : imp) {
    EXPECT_GE(v, 0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);

  auto ranked = ranked_importance(imp, {"a", "b", "c", "d", "e"});
  EXPECT_GE(ranked.front().second, ranked.back().second);
}

TEST(Gbdt, BinaryClassification) {
  auto [x, y] = make_blobs(2, 150, 4, 1.2, 17);
  GradientBoosting gb(GbdtConfig::xgboost_style());
  gb.fit(x, y, 2);
  auto pred = gb.predict(x);
  EXPECT_GT(evaluate(y, pred, 2).accuracy, 0.95);
}

TEST(Gbdt, MulticlassSoftmax) {
  auto [x, y] = make_blobs(4, 100, 4, 1.0, 18);
  GradientBoosting gb(GbdtConfig::lightgbm_style());
  gb.fit(x, y, 4);
  auto pred = gb.predict(x);
  EXPECT_GT(evaluate(y, pred, 4).accuracy, 0.95);
  EXPECT_GT(gb.rounds_used(), 0);
}

TEST(Gbdt, TreeBudgetCapsRounds) {
  auto [x, y] = make_blobs(10, 30, 3, 1.0, 19);
  GbdtConfig cfg;
  cfg.rounds = 100;
  cfg.max_total_trees = 50;
  GradientBoosting gb(cfg);
  gb.fit(x, y, 10);
  EXPECT_LE(gb.rounds_used() * 10, 50);
  EXPECT_GE(gb.rounds_used(), 3);
}

TEST(Gbdt, DecisionFunctionShape) {
  auto [x, y] = make_blobs(3, 40, 3, 1.0, 20);
  GradientBoosting gb;
  gb.fit(x, y, 3);
  auto scores = gb.decision_function(x);
  EXPECT_EQ(scores.rows(), x.rows());
  EXPECT_EQ(scores.cols(), 3u);
}

}  // namespace
}  // namespace sugar::ml
