#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "ml/nn.h"

namespace sugar::ml {
namespace {

/// Numerical gradient check for a Linear layer through an MSE loss.
TEST(Linear, GradientsMatchNumerical) {
  std::mt19937_64 rng(1);
  Linear layer(4, 3, rng);
  Matrix x(2, 4);
  Matrix target(2, 3);
  std::uniform_real_distribution<float> dist(-1, 1);
  for (auto& v : x.data()) v = dist(rng);
  for (auto& v : target.data()) v = dist(rng);

  auto loss_fn = [&]() {
    Matrix out = layer.forward(x, true);
    Matrix grad;
    return mse_loss(out, target, grad);
  };

  // Analytical gradient.
  layer.zero_grad();
  Matrix out = layer.forward(x, true);
  Matrix grad;
  mse_loss(out, target, grad);
  Matrix grad_in = layer.backward(grad);

  // Numerical gradient wrt a few weights.
  const float eps = 1e-3f;
  // Reach into weights via public accessor.
  for (std::size_t idx : {0u, 5u, 11u}) {
    float& w = layer.weights().data()[idx];
    float orig = w;
    w = orig + eps;
    float lp = loss_fn();
    w = orig - eps;
    float lm = loss_fn();
    w = orig;
    float numeric = (lp - lm) / (2 * eps);
    // Recompute analytical grad for this weight (already accumulated above).
    // We reconstruct it by fresh zero_grad + backward since loss_fn calls
    // disturbed the cached input? forward(x) caches again, safe.
    layer.zero_grad();
    Matrix o2 = layer.forward(x, true);
    Matrix g2;
    mse_loss(o2, target, g2);
    layer.backward(g2);
    // grad_w_ is private; instead verify via the input gradient invariant:
    // skip direct check and compare loss decrease along -numeric direction.
    w = orig - 0.1f * numeric;
    float after = loss_fn();
    w = orig;
    float before = loss_fn();
    EXPECT_LE(after, before + 1e-6f) << "gradient direction must not increase loss";
  }

  // Numerical gradient wrt inputs vs analytical grad_in.
  for (std::size_t idx : {0u, 3u, 7u}) {
    float orig = x.data()[idx];
    x.data()[idx] = orig + eps;
    float lp = loss_fn();
    x.data()[idx] = orig - eps;
    float lm = loss_fn();
    x.data()[idx] = orig;
    float numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(grad_in.data()[idx], numeric, 5e-3f) << "input grad at " << idx;
  }
}

TEST(MlpNet, InputGradientMatchesNumerical) {
  MlpNet net({5, 8, 3}, 7);
  std::mt19937_64 rng(2);
  std::uniform_real_distribution<float> dist(-1, 1);
  Matrix x(3, 5);
  for (auto& v : x.data()) v = dist(rng);
  std::vector<int> y{0, 2, 1};

  auto loss_fn = [&]() {
    Matrix logits = net.forward(x, true);
    Matrix grad;
    return softmax_cross_entropy(logits, y, grad);
  };

  net.zero_grad();
  Matrix logits = net.forward(x, true);
  Matrix grad;
  softmax_cross_entropy(logits, y, grad);
  Matrix grad_in = net.backward(grad);

  const float eps = 1e-3f;
  for (std::size_t idx : {0u, 4u, 9u, 14u}) {
    float orig = x.data()[idx];
    x.data()[idx] = orig + eps;
    float lp = loss_fn();
    x.data()[idx] = orig - eps;
    float lm = loss_fn();
    x.data()[idx] = orig;
    float numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(grad_in.data()[idx], numeric, 5e-3f) << "at " << idx;
  }
}

TEST(MlpNet, LearnsXor) {
  MlpNet net({2, 16, 2}, 11);
  Matrix x(4, 2);
  x(0, 0) = 0; x(0, 1) = 0;
  x(1, 0) = 0; x(1, 1) = 1;
  x(2, 0) = 1; x(2, 1) = 0;
  x(3, 0) = 1; x(3, 1) = 1;
  std::vector<int> y{0, 1, 1, 0};

  float last_loss = 1e9;
  for (int epoch = 0; epoch < 600; ++epoch) {
    net.zero_grad();
    Matrix logits = net.forward(x, true);
    Matrix grad;
    last_loss = softmax_cross_entropy(logits, y, grad);
    net.backward(grad);
    net.adam_step(0.01f);
  }
  EXPECT_LT(last_loss, 0.05f);

  Matrix logits = net.forward(x, false);
  for (std::size_t i = 0; i < 4; ++i) {
    int pred = logits(i, 1) > logits(i, 0) ? 1 : 0;
    EXPECT_EQ(pred, y[i]) << "sample " << i;
  }
}

TEST(SoftmaxCrossEntropy, KnownValues) {
  Matrix logits(1, 2);
  logits(0, 0) = 0;
  logits(0, 1) = 0;
  Matrix grad;
  float loss = softmax_cross_entropy(logits, {0}, grad);
  EXPECT_NEAR(loss, std::log(2.0f), 1e-5f);
  EXPECT_NEAR(grad(0, 0), -0.5f, 1e-5f);
  EXPECT_NEAR(grad(0, 1), 0.5f, 1e-5f);
}

TEST(MseLoss, KnownValues) {
  Matrix pred(1, 2), target(1, 2);
  pred(0, 0) = 1;
  pred(0, 1) = 2;
  target(0, 0) = 0;
  target(0, 1) = 0;
  Matrix grad;
  float loss = mse_loss(pred, target, grad);
  EXPECT_NEAR(loss, (1.0f + 4.0f) / 2, 1e-6f);
  EXPECT_NEAR(grad(0, 0), 2.0f * 1 / 2, 1e-6f);
  EXPECT_NEAR(grad(0, 1), 2.0f * 2 / 2, 1e-6f);
}

TEST(MatrixArena, CountsOnlyCapacityGrowth) {
  MatrixArena arena;
  Matrix& m0 = arena.acquire(0, 4, 4);
  EXPECT_EQ(arena.heap_allocations(), 1u);
  // Shrinking and re-growing within capacity is free.
  arena.acquire(0, 2, 2);
  Matrix& again = arena.acquire(0, 4, 4);
  EXPECT_EQ(&again, &m0) << "slots must be reference-stable";
  EXPECT_EQ(arena.heap_allocations(), 1u);
  // Growing past capacity counts.
  arena.acquire(0, 8, 8);
  EXPECT_EQ(arena.heap_allocations(), 2u);
  // A new slot counts once.
  arena.acquire(3, 3, 3);
  EXPECT_EQ(arena.heap_allocations(), 3u);
  EXPECT_EQ(arena.slot_count(), 4u);
}

/// The acceptance gate for the scratch arena: once every batch shape has
/// been seen, further training epochs must not touch the heap at all (as
/// observed by the arena's capacity-growth counter).
TEST(MlpNet, ZeroHeapAllocationsAfterWarmup) {
  MlpNet net({12, 16, 8, 4}, 5);
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<float> dist(-1, 1);
  Matrix x(10, 12);
  for (auto& v : x.data()) v = dist(rng);
  std::vector<int> y(10);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 4);

  // Two batch shapes per epoch (full batch of 6, remainder of 4) so the
  // warm-up epoch exercises every reshape the steady state will see.
  std::vector<std::size_t> idx;
  std::vector<int> yb;
  Matrix xb;
  Matrix grad;
  auto train_epoch = [&]() {
    for (std::size_t start = 0; start < x.rows(); start += 6) {
      std::size_t end = std::min<std::size_t>(x.rows(), start + 6);
      idx.clear();
      for (std::size_t i = start; i < end; ++i) idx.push_back(i);
      yb.resize(idx.size());
      for (std::size_t i = 0; i < idx.size(); ++i) yb[i] = y[idx[i]];
      x.take_rows_into(idx, xb);
      net.zero_grad();
      Matrix& logits = net.forward(xb, true);
      softmax_cross_entropy(logits, yb, grad);
      net.backward(grad);
      net.adam_step(0.01f);
    }
  };

  train_epoch();  // warm-up: allocations happen here, once per shape
  const std::size_t after_warmup = net.arena().heap_allocations();
  EXPECT_GT(after_warmup, 0u);
  for (int epoch = 0; epoch < 3; ++epoch) train_epoch();
  EXPECT_EQ(net.arena().heap_allocations(), after_warmup)
      << "training epochs after warm-up must not grow any arena buffer";
}

TEST(MlpNet, ParamCount) {
  MlpNet net({10, 20, 5}, 3);
  EXPECT_EQ(net.param_count(), 10u * 20 + 20 + 20 * 5 + 5);
  EXPECT_EQ(net.num_layers(), 2u);
  EXPECT_EQ(net.in_dim(), 10u);
  EXPECT_EQ(net.out_dim(), 5u);
}

}  // namespace
}  // namespace sugar::ml
