#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "ml/matrix.h"

namespace sugar::ml {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Matrix m(r, c);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-1, 1);
  for (auto& v : m.data()) v = dist(rng);
  return m;
}

Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float s = 0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += a(i, k) * b(k, j);
      c(i, j) = s;
    }
  return c;
}

void expect_near(const Matrix& a, const Matrix& b, float tol = 1e-4f) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(a.data()[i], b.data()[i], tol) << "at " << i;
}

TEST(Matrix, MatmulMatchesNaive) {
  auto a = random_matrix(7, 5, 1);
  auto b = random_matrix(5, 9, 2);
  expect_near(matmul(a, b), naive_matmul(a, b));
}

TEST(Matrix, MatmulTnMatchesTransposedNaive) {
  auto a = random_matrix(6, 4, 3);  // interpret as [6x4], use a^T
  auto b = random_matrix(6, 3, 4);
  Matrix at(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) at(j, i) = a(i, j);
  expect_near(matmul_tn(a, b), naive_matmul(at, b));
}

TEST(Matrix, MatmulNtMatchesTransposedNaive) {
  auto a = random_matrix(6, 4, 5);
  auto b = random_matrix(8, 4, 6);
  Matrix bt(b.cols(), b.rows());
  for (std::size_t i = 0; i < b.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) bt(j, i) = b(i, j);
  expect_near(matmul_nt(a, b), naive_matmul(a, bt));
}

TEST(Matrix, TakeRows) {
  auto a = random_matrix(5, 3, 7);
  auto sub = a.take_rows({4, 0, 2});
  ASSERT_EQ(sub.rows(), 3u);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(sub(0, j), a(4, j));
    EXPECT_EQ(sub(1, j), a(0, j));
    EXPECT_EQ(sub(2, j), a(2, j));
  }
}

TEST(Matrix, AddRowVector) {
  Matrix m(2, 3, 1.0f);
  add_row_vector(m, {1, 2, 3});
  EXPECT_EQ(m(0, 0), 2);
  EXPECT_EQ(m(1, 2), 4);
}

TEST(Matrix, ReluAndMask) {
  Matrix m(1, 4);
  m(0, 0) = -1;
  m(0, 1) = 2;
  m(0, 2) = 0;
  m(0, 3) = 0.5f;
  auto mask = relu_inplace(m);
  EXPECT_EQ(m(0, 0), 0);
  EXPECT_EQ(m(0, 1), 2);
  EXPECT_EQ(mask(0, 0), 0);
  EXPECT_EQ(mask(0, 1), 1);
  EXPECT_EQ(mask(0, 2), 0);
  EXPECT_EQ(mask(0, 3), 1);
}

TEST(Matrix, SoftmaxRows) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(0, 2) = 3;
  m(1, 0) = 1000;  // numerical stability check
  m(1, 1) = 1000;
  m(1, 2) = 1000;
  softmax_rows(m);
  float sum0 = m(0, 0) + m(0, 1) + m(0, 2);
  EXPECT_NEAR(sum0, 1.0f, 1e-5f);
  EXPECT_GT(m(0, 2), m(0, 1));
  EXPECT_NEAR(m(1, 0), 1.0f / 3, 1e-5f);
}

TEST(Matrix, SquaredDistance) {
  float a[] = {0, 0, 0};
  float b[] = {1, 2, 2};
  EXPECT_FLOAT_EQ(squared_distance(a, b, 3), 9.0f);
}

}  // namespace
}  // namespace sugar::ml
