// Vector-kernel smoke for sanitizer builds. Built as its own binary so a
// UBSan configuration (-DSUGAR_SANITIZE=undefined) can run just this under
// `ctest -L ubsan`; it also runs (and must pass) in plain builds.
//
// The point is coverage, not pinning: hammer every core::simd helper and
// every vectorized ml kernel across lengths that hit all lane/tail code
// paths and across unaligned base pointers, so misaligned loads, heap
// overruns on 8-wide tails, or UB in the intrinsics wrappers trip the
// sanitizer. Correctness is checked loosely against naive references —
// the bitwise pins live in test_simd.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "core/simd.h"
#include "ml/matrix.h"
#include "ml/nn.h"

namespace sugar::ml {
namespace {

namespace simd = core::simd;

std::vector<float> random_vec(std::size_t n, std::mt19937_64& rng) {
  std::uniform_real_distribution<float> dist(-3.0f, 3.0f);
  std::vector<float> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

TEST(SimdStress, HelpersAcrossLengthsAndOffsets) {
  std::mt19937_64 rng(99);
  // Over-allocate so every offset keeps the tail in bounds; offsets walk
  // through every alignment mod 32 bytes.
  for (std::size_t n : {0u, 1u, 3u, 7u, 8u, 9u, 15u, 16u, 31u, 33u, 257u}) {
    for (std::size_t off : {0u, 1u, 3u, 5u, 7u}) {
      auto a = random_vec(n + off, rng);
      auto b = random_vec(n + off, rng);
      const float* pa = a.data() + off;
      const float* pb = b.data() + off;

      double ref_dot = 0, ref_sum = 0, ref_sq = 0;
      for (std::size_t i = 0; i < n; ++i) {
        ref_dot += static_cast<double>(pa[i]) * pb[i];
        ref_sum += pa[i];
        double d = static_cast<double>(pa[i]) - pb[i];
        ref_sq += d * d;
      }
      // Loose relative tolerance: the reference accumulates in double.
      auto tol = [](double ref) { return 1e-3 * (1.0 + std::abs(ref)); };
      EXPECT_NEAR(simd::dot(pa, pb, n), ref_dot, tol(ref_dot)) << "n=" << n;
      EXPECT_NEAR(simd::sum(pa, n), ref_sum, tol(ref_sum)) << "n=" << n;
      EXPECT_NEAR(simd::squared_distance(pa, pb, n), ref_sq, tol(ref_sq))
          << "n=" << n;
      if (n >= 1) {
        float mx = pa[0];
        for (std::size_t i = 1; i < n; ++i) mx = std::max(mx, pa[i]);
        EXPECT_EQ(simd::max(pa, n), mx) << "n=" << n;
      }

      auto dst = random_vec(n + off, rng);
      auto ref = dst;
      simd::axpy(dst.data() + off, pb, 0.75f, n);
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(dst[off + i], ref[off + i] + 0.75f * pb[i], 1e-4);

      simd::vscale_inplace(dst.data() + off, 0.5f, n);
      simd::vadd_inplace(dst.data() + off, pa, n);
      simd::vmul_inplace(dst.data() + off, pb, n);
    }
  }
}

TEST(SimdStress, MatrixKernelsAcrossShapes) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
  // Odd shapes force tails in every kernel; 64+ forces full panels.
  const std::size_t shapes[][3] = {
      {1, 1, 1}, {2, 3, 5}, {7, 9, 11}, {8, 8, 8}, {17, 65, 13}, {33, 70, 21}};
  for (const auto& s : shapes) {
    Matrix a(s[0], s[1]), b(s[1], s[2]), bt(s[2], s[1]);
    for (auto& v : a.data()) v = dist(rng);
    for (auto& v : b.data()) v = dist(rng);
    for (auto& v : bt.data()) v = dist(rng);

    Matrix c = matmul(a, b);
    ASSERT_EQ(c.rows(), s[0]);
    ASSERT_EQ(c.cols(), s[2]);
    double ref00 = 0;
    for (std::size_t k = 0; k < s[1]; ++k)
      ref00 += static_cast<double>(a(0, k)) * b(k, 0);
    EXPECT_NEAR(c(0, 0), ref00, 1e-3);

    Matrix cnt = matmul_nt(a, bt);
    ASSERT_EQ(cnt.rows(), s[0]);
    ASSERT_EQ(cnt.cols(), s[2]);

    Matrix acc(s[1], s[2]);
    matmul_tn_acc(a, c, acc);  // [m×k]^T·[m×n]: just exercise the kernel

    Matrix relu = a;
    Matrix mask = relu_inplace(relu);
    for (std::size_t i = 0; i < relu.size(); ++i) {
      EXPECT_GE(relu.data()[i], 0.0f);
      EXPECT_TRUE(mask.data()[i] == 0.0f || mask.data()[i] == 1.0f);
    }

    Matrix soft = a;
    softmax_rows(soft);
    for (std::size_t i = 0; i < soft.rows(); ++i) {
      float rs = 0;
      for (std::size_t j = 0; j < soft.cols(); ++j) rs += soft(i, j);
      EXPECT_NEAR(rs, 1.0f, 1e-4f);
    }
  }
}

TEST(SimdStress, TrainingStepEndToEnd) {
  // One full arena-backed train/infer cycle: forward, CE + MSE losses,
  // backward, Adam — every vectorized path under the sanitizer.
  MlpNet net({11, 13, 5}, 3);
  std::mt19937_64 rng(21);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  Matrix x(9, 11);
  for (auto& v : x.data()) v = dist(rng);
  std::vector<int> y(9);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 5);

  Matrix grad;
  for (int step = 0; step < 5; ++step) {
    net.zero_grad();
    Matrix& logits = net.forward(x, true);
    float loss = softmax_cross_entropy(logits, y, grad);
    EXPECT_TRUE(std::isfinite(loss));
    net.backward(grad);
    net.adam_step(0.01f);
  }

  Matrix& out = net.forward(x, false);
  Matrix target(out.rows(), out.cols(), 0.25f);
  float mse = mse_loss(out, target, grad);
  EXPECT_TRUE(std::isfinite(mse));
}

}  // namespace
}  // namespace sugar::ml
