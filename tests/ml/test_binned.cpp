// Tests for the quantize-once binned training substrate (ml/binned.h):
// bin-code semantics pinned against the strict '<' partition convention,
// sketch determinism across pool widths, sibling-subtraction histogram
// identity vs direct accumulation, and binned-vs-legacy model quality.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "core/threadpool.h"
#include "ml/binned.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/metrics.h"
#include "ml/tree.h"

namespace sugar::ml {
namespace {

/// Rebuilds the global pool at a given width for the test body, then
/// restores the env-derived width so later tests see the default substrate.
class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n) { core::set_global_threads(n); }
  ~ScopedThreads() { core::set_global_threads(0); }
};

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
  for (auto& v : m.data()) v = dist(rng);
  return m;
}

/// Gaussian blobs: one cluster per class.
std::pair<Matrix, std::vector<int>> make_blobs(int classes, std::size_t per_class,
                                               std::size_t dims, double spread,
                                               std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> noise(0.0f, static_cast<float>(spread));
  Matrix x(static_cast<std::size_t>(classes) * per_class, dims);
  std::vector<int> y;
  std::size_t row = 0;
  for (int c = 0; c < classes; ++c) {
    for (std::size_t i = 0; i < per_class; ++i, ++row) {
      for (std::size_t d = 0; d < dims; ++d)
        x(row, d) = static_cast<float>(c * 3 + (d % 2 ? 1 : -1)) + noise(rng);
      y.push_back(c);
    }
  }
  return {std::move(x), std::move(y)};
}

TEST(QuantizeBin, StrictLessConventionValueOnCutGoesRight) {
  const std::vector<float> cuts{1.0f, 2.0f, 3.0f};
  EXPECT_EQ(quantize_bin(cuts, 0.5f), 0);
  EXPECT_EQ(quantize_bin(cuts, 0.999f), 0);
  // A value equal to a cut belongs to the bin on the cut's RIGHT: the
  // partition predicate is strict '<', so v == threshold goes right.
  EXPECT_EQ(quantize_bin(cuts, 1.0f), 1);
  EXPECT_EQ(quantize_bin(cuts, 1.5f), 1);
  EXPECT_EQ(quantize_bin(cuts, 2.0f), 2);
  EXPECT_EQ(quantize_bin(cuts, 3.0f), 3);
  EXPECT_EQ(quantize_bin(cuts, 99.0f), 3);
}

TEST(BinnedMatrix, CodesMatchStrictPartitionConvention) {
  const Matrix x = random_matrix(400, 7, 101);
  const BinnedMatrix bm(x, 16);
  ASSERT_EQ(bm.rows(), x.rows());
  ASSERT_EQ(bm.cols(), x.cols());
  for (std::size_t f = 0; f < x.cols(); ++f) {
    const auto& cuts = bm.cuts(f);
    ASSERT_LT(static_cast<int>(cuts.size()), bm.bins());
    for (std::size_t i = 1; i < cuts.size(); ++i)
      ASSERT_LT(cuts[i - 1], cuts[i]) << "cuts not strictly ascending";
    const std::uint8_t* code = bm.codes(f);
    for (std::size_t r = 0; r < x.rows(); ++r) {
      const float v = x(r, f);
      const int b = code[r];
      ASSERT_EQ(b, quantize_bin(cuts, v));
      // Bin b holds [cuts[b-1], cuts[b]): splitting after bin b with
      // threshold cuts[b] must send exactly codes <= b to the left.
      if (b > 0) ASSERT_GE(v, cuts[static_cast<std::size_t>(b - 1)]);
      if (b < static_cast<int>(cuts.size()))
        ASSERT_LT(v, cuts[static_cast<std::size_t>(b)]);
    }
  }
}

TEST(BinnedMatrix, FewDistinctValuesGetDistinctCodes) {
  // A 4-valued column with plenty of bins must keep the values separable:
  // every distinct value maps to its own code.
  Matrix x(256, 1);
  for (std::size_t r = 0; r < x.rows(); ++r)
    x(r, 0) = static_cast<float>(r % 4);
  const BinnedMatrix bm(x, 8);
  const std::uint8_t* code = bm.codes(0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t s = 0; s < x.rows(); ++s) {
      if (x(r, 0) == x(s, 0))
        ASSERT_EQ(code[r], code[s]);
      else if (x(r, 0) < x(s, 0))
        ASSERT_LT(code[r], code[s]);
    }
    if (r >= 8) break;  // all residues seen twice; the rest repeats
  }
}

TEST(BinnedMatrix, ConstantColumnHasOneBin) {
  Matrix x(64, 2, 1.5f);
  const BinnedMatrix bm(x, 32);
  EXPECT_EQ(bm.bin_count(0), 1);
  EXPECT_TRUE(bm.cuts(0).empty());
  const std::uint8_t* code = bm.codes(0);
  for (std::size_t r = 0; r < x.rows(); ++r) EXPECT_EQ(code[r], 0);
}

TEST(BinnedMatrix, DeterministicAcrossPoolWidths) {
  const Matrix x = random_matrix(3000, 9, 77);
  std::vector<std::vector<float>> ref_cuts;
  std::vector<std::uint8_t> ref_codes;
  for (std::size_t w : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    ScopedThreads threads(w);
    const BinnedMatrix bm(x, 64);
    std::vector<std::vector<float>> cuts;
    for (std::size_t f = 0; f < bm.cols(); ++f) cuts.push_back(bm.cuts(f));
    std::vector<std::uint8_t> codes;
    for (std::size_t f = 0; f < bm.cols(); ++f)
      codes.insert(codes.end(), bm.codes(f), bm.codes(f) + bm.rows());
    if (ref_cuts.empty()) {
      ref_cuts = std::move(cuts);
      ref_codes = std::move(codes);
      continue;
    }
    EXPECT_EQ(cuts, ref_cuts) << "threads " << w;
    EXPECT_EQ(codes, ref_codes) << "threads " << w;
  }
}

TEST(HistogramTree, SiblingSubtractionIdenticalToDirectAccumulation) {
  // Classification histograms hold integer counts in doubles, so the
  // subtracted sibling histogram is exact — the trees must be identical,
  // not merely close. All features per split => subtract mode engages;
  // tiny exact_split_max keeps nodes on the histogram path deep down.
  auto [x, y] = make_blobs(4, 300, 6, 1.2, 5);
  const BinnedMatrix bm(x, 32);
  TreeConfig cfg;
  cfg.max_depth = 9;
  cfg.histogram_bins = 32;
  cfg.exact_split_max = 16;
  cfg.features_per_split = 0;  // all features: subtraction eligible

  DecisionTree direct, subtracted;
  {
    TreeConfig c = cfg;
    c.hist_subtraction = false;
    std::mt19937_64 rng(9);
    direct.fit_classifier(x, y, 4, c, rng, nullptr, &bm);
  }
  {
    TreeConfig c = cfg;
    c.hist_subtraction = true;
    std::mt19937_64 rng(9);
    subtracted.fit_classifier(x, y, 4, c, rng, nullptr, &bm);
  }
  ASSERT_EQ(direct.node_count(), subtracted.node_count());
  ASSERT_GT(direct.node_count(), 16u) << "histogram path not exercised";
  for (std::size_t i = 0; i < x.rows(); ++i)
    ASSERT_EQ(direct.predict_class(x.row(i)), subtracted.predict_class(x.row(i)))
        << "row " << i;
  const auto& ia = direct.feature_importance();
  const auto& ib = subtracted.feature_importance();
  ASSERT_EQ(ia.size(), ib.size());
  for (std::size_t f = 0; f < ia.size(); ++f)
    EXPECT_EQ(ia[f], ib[f]) << "feature " << f;
}

TEST(HistogramTree, BinnedForestMatchesLegacyQuality) {
  auto [x, y] = make_blobs(3, 250, 5, 1.0, 13);
  ForestConfig cfg;
  cfg.num_trees = 12;
  cfg.seed = 3;
  cfg.tree.exact_split_max = 32;  // force the histogram path

  cfg.binned = true;
  RandomForest binned_rf(cfg);
  binned_rf.fit(x, y, 3);
  cfg.binned = false;
  RandomForest legacy_rf(cfg);
  legacy_rf.fit(x, y, 3);

  const double acc_binned = evaluate(y, binned_rf.predict(x), 3).accuracy;
  const double acc_legacy = evaluate(y, legacy_rf.predict(x), 3).accuracy;
  EXPECT_GT(acc_binned, 0.95);
  EXPECT_GT(acc_legacy, 0.95);
  EXPECT_NEAR(acc_binned, acc_legacy, 0.03);
}

TEST(HistogramTree, GbdtSubtractionPreservesQuality) {
  // Regression histograms accumulate float g/h into doubles, so the
  // subtracted sibling can differ in the last ulp from direct
  // accumulation — we require quality parity rather than bit identity.
  auto [x, y] = make_blobs(3, 200, 5, 1.0, 21);
  GbdtConfig cfg = GbdtConfig::lightgbm_style();
  cfg.rounds = 10;
  cfg.tree.exact_split_max = 16;

  cfg.tree.hist_subtraction = true;
  GradientBoosting with_sub(cfg);
  with_sub.fit(x, y, 3);
  cfg.tree.hist_subtraction = false;
  GradientBoosting without_sub(cfg);
  without_sub.fit(x, y, 3);

  const double acc_sub = evaluate(y, with_sub.predict(x), 3).accuracy;
  const double acc_direct = evaluate(y, without_sub.predict(x), 3).accuracy;
  EXPECT_GT(acc_sub, 0.95);
  EXPECT_GT(acc_direct, 0.95);
  EXPECT_NEAR(acc_sub, acc_direct, 0.03);
}

TEST(HistogramTree, ForestFitDigestIdenticalAcrossPoolWidths) {
  // The shared-BinnedMatrix forest fit must be bit-identical at any
  // SUGAR_THREADS: quantization is per-feature deterministic, per-node
  // accumulation writes disjoint feature slots, and trees own seeded RNG
  // streams.
  auto [x, y] = make_blobs(4, 200, 6, 1.3, 31);
  ForestConfig cfg;
  cfg.num_trees = 9;
  cfg.seed = 55;
  cfg.tree.exact_split_max = 32;
  cfg.binned = true;

  std::vector<int> ref_pred;
  std::vector<double> ref_imp;
  for (std::size_t w : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    ScopedThreads threads(w);
    RandomForest rf(cfg);
    rf.fit(x, y, 4);
    auto pred = rf.predict(x);
    auto imp = rf.feature_importance();
    if (ref_pred.empty()) {
      ref_pred = std::move(pred);
      ref_imp = std::move(imp);
      continue;
    }
    EXPECT_EQ(pred, ref_pred) << "threads " << w;
    ASSERT_EQ(imp.size(), ref_imp.size());
    for (std::size_t f = 0; f < imp.size(); ++f)
      EXPECT_EQ(imp[f], ref_imp[f]) << "feature " << f << " threads " << w;
  }
}

TEST(HistogramTree, GbdtFitDigestIdenticalAcrossPoolWidths) {
  // GBDT is where feature-parallel accumulation really runs concurrently
  // (single-tree fits dispatch from the top level, not from inside a
  // per-tree parallel_for), so margins must still be bitwise stable.
  auto [x, y] = make_blobs(3, 180, 6, 1.2, 41);
  for (bool leafwise : {false, true}) {
    GbdtConfig cfg =
        leafwise ? GbdtConfig::lightgbm_style() : GbdtConfig::xgboost_style();
    cfg.rounds = 6;
    cfg.tree.exact_split_max = 16;

    Matrix ref_scores;
    for (std::size_t w : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
      ScopedThreads threads(w);
      GradientBoosting gbdt(cfg);
      gbdt.fit(x, y, 3);
      Matrix scores = gbdt.decision_function(x);
      if (ref_scores.size() == 0) {
        ref_scores = std::move(scores);
        continue;
      }
      ASSERT_EQ(scores.rows(), ref_scores.rows());
      ASSERT_EQ(scores.cols(), ref_scores.cols());
      EXPECT_EQ(std::memcmp(scores.data().data(), ref_scores.data().data(),
                            scores.size() * sizeof(float)),
                0)
          << "leafwise " << leafwise << " threads " << w;
    }
  }
}

}  // namespace
}  // namespace sugar::ml
