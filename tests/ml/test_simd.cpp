// core::simd kernel tests: every vector kernel is pinned bit-for-bit
// against a hand-written scalar implementation of the determinism spec
// (k-ascending elementwise accumulation, strided-8 blocked reductions).
// The references here are deliberately independent code — plain loops, no
// core::simd calls except the shared reduce8 trees — so a backend that
// drifts from the spec fails even when both sides share a bug-free header.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>

#include "core/simd.h"
#include "core/threadpool.h"
#include "ml/matrix.h"

namespace sugar::ml {
namespace {

namespace simd = core::simd;

bool bits_equal(float a, float b) {
  return std::memcmp(&a, &b, sizeof(float)) == 0;
}

bool bits_equal(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return a.size() == 0 ||
         std::memcmp(a.data().data(), b.data().data(),
                     a.size() * sizeof(float)) == 0;
}

std::vector<float> random_vec(std::size_t n, std::uint64_t seed,
                              float lo = -2.0f, float hi = 2.0f) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(lo, hi);
  std::vector<float> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
  for (auto& v : m.data()) v = dist(rng);
  return m;
}

// ---- Scalar spec references (strided-8 blocked reductions) ---------------

float ref_sum(const float* a, std::size_t n) {
  float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    for (std::size_t l = 0; l < 8; ++l) lanes[l] += a[i + l];
  for (std::size_t t = i; t < n; ++t) lanes[t - i] += a[t];
  return simd::reduce8(lanes);
}

float ref_dot(const float* a, const float* b, std::size_t n) {
  float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    for (std::size_t l = 0; l < 8; ++l) lanes[l] += a[i + l] * b[i + l];
  for (std::size_t t = i; t < n; ++t) lanes[t - i] += a[t] * b[t];
  return simd::reduce8(lanes);
}

float ref_sqdist(const float* a, const float* b, std::size_t n) {
  float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    for (std::size_t l = 0; l < 8; ++l) {
      float d = a[i + l] - b[i + l];
      lanes[l] += d * d;
    }
  for (std::size_t t = i; t < n; ++t) {
    float d = a[t] - b[t];
    lanes[t - i] += d * d;
  }
  return simd::reduce8(lanes);
}

float ref_max(const float* a, std::size_t n) {
  if (n < 8) {
    float m = a[0];
    for (std::size_t i = 1; i < n; ++i) m = a[i] > m ? a[i] : m;
    return m;
  }
  float lanes[8];
  for (std::size_t l = 0; l < 8; ++l) lanes[l] = a[l];
  std::size_t i = 8;
  for (; i + 8 <= n; i += 8)
    for (std::size_t l = 0; l < 8; ++l)
      lanes[l] = a[i + l] > lanes[l] ? a[i + l] : lanes[l];
  for (std::size_t t = i; t < n; ++t)
    lanes[t - i] = a[t] > lanes[t - i] ? a[t] : lanes[t - i];
  return simd::reduce8_max(lanes);
}

void ref_softmax(Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    float* r = m.row(i);
    const std::size_t n = m.cols();
    float mx = ref_max(r, n);
    for (std::size_t j = 0; j < n; ++j) r[j] = std::exp(r[j] - mx);
    float inv = 1.0f / ref_sum(r, n);
    for (std::size_t j = 0; j < n; ++j) r[j] *= inv;
  }
}

// Lengths that cross every code path: empty, sub-lane, exact lane
// multiples, and every non-multiple-of-8 tail size.
const std::size_t kLengths[] = {0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 64, 100};

TEST(SimdReductions, MatchScalarSpecAtEveryLength) {
  for (std::size_t n : kLengths) {
    auto a = random_vec(n, 1000 + n);
    auto b = random_vec(n, 2000 + n);
    EXPECT_TRUE(bits_equal(simd::sum(a.data(), n), ref_sum(a.data(), n)))
        << "sum n=" << n;
    EXPECT_TRUE(bits_equal(simd::dot(a.data(), b.data(), n),
                           ref_dot(a.data(), b.data(), n)))
        << "dot n=" << n;
    EXPECT_TRUE(bits_equal(simd::squared_distance(a.data(), b.data(), n),
                           ref_sqdist(a.data(), b.data(), n)))
        << "sqdist n=" << n;
    if (n >= 1) {
      EXPECT_TRUE(bits_equal(simd::max(a.data(), n), ref_max(a.data(), n)))
          << "max n=" << n;
    }
  }
}

TEST(SimdElementwise, AxpyMatchesScalarAtEveryLength) {
  for (std::size_t n : kLengths) {
    auto dst = random_vec(n, 3000 + n);
    auto src = random_vec(n, 4000 + n);
    auto ref = dst;
    for (std::size_t i = 0; i < n; ++i) ref[i] += 1.5f * src[i];
    simd::axpy(dst.data(), src.data(), 1.5f, n);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_TRUE(bits_equal(dst[i], ref[i])) << "axpy n=" << n << " i=" << i;
  }
}

TEST(SquaredDistance, EdgeCases) {
  // Length 0: empty sum is exactly zero.
  EXPECT_TRUE(bits_equal(squared_distance(nullptr, nullptr, 0), 0.0f));
  // Length 1: a single scalar difference.
  float a1 = 3.0f, b1 = -1.0f;
  EXPECT_FLOAT_EQ(squared_distance(&a1, &b1, 1), 16.0f);
  // Identical vectors at a tail-heavy length.
  auto v = random_vec(13, 7);
  EXPECT_TRUE(bits_equal(squared_distance(v.data(), v.data(), 13), 0.0f));
  // ml::squared_distance is the simd kernel.
  auto a = random_vec(23, 8);
  auto b = random_vec(23, 9);
  EXPECT_TRUE(bits_equal(squared_distance(a.data(), b.data(), 23),
                         ref_sqdist(a.data(), b.data(), 23)));
}

TEST(ReluInplace, EdgeCases) {
  // 0x0 matrix: no-op, empty mask.
  Matrix empty;
  Matrix mask = relu_inplace(empty);
  EXPECT_EQ(mask.size(), 0u);

  // 1x1: positive keeps value, mask 1; zero and negative give 0/0.
  for (float v : {2.5f, 0.0f, -0.0f, -3.0f}) {
    Matrix m(1, 1);
    m(0, 0) = v;
    Matrix mk = relu_inplace(m);
    float expect_v = v > 0.0f ? v : 0.0f;
    float expect_m = v > 0.0f ? 1.0f : 0.0f;
    EXPECT_TRUE(bits_equal(m(0, 0), expect_v)) << "value for input " << v;
    EXPECT_TRUE(bits_equal(mk(0, 0), expect_m)) << "mask for input " << v;
  }

  // All-negative row with a non-multiple-of-8 width: everything zeroed,
  // and -0.0f inputs normalize to +0.0f on every backend.
  Matrix neg(1, 13);
  for (std::size_t j = 0; j < 13; ++j)
    neg(0, j) = j % 3 == 0 ? -0.0f : -1.0f * static_cast<float>(j + 1);
  Matrix neg_mask = relu_inplace(neg);
  for (std::size_t j = 0; j < 13; ++j) {
    EXPECT_TRUE(bits_equal(neg(0, j), 0.0f)) << "col " << j;
    EXPECT_TRUE(bits_equal(neg_mask(0, j), 0.0f)) << "col " << j;
  }

  // Mixed signs across lanes and tail, pinned against the scalar rule.
  Matrix m = random_matrix(3, 21, 11);
  Matrix ref_m = m;
  Matrix ref_mask(3, 21);
  for (std::size_t i = 0; i < ref_m.size(); ++i) {
    float v = ref_m.data()[i];
    ref_mask.data()[i] = v > 0.0f ? 1.0f : 0.0f;
    ref_m.data()[i] = v > 0.0f ? v : 0.0f;
  }
  Matrix got_mask = relu_inplace(m);
  EXPECT_TRUE(bits_equal(m, ref_m));
  EXPECT_TRUE(bits_equal(got_mask, ref_mask));

  // relu_inplace_nomask produces the same values.
  Matrix m2 = random_matrix(3, 21, 11);
  relu_inplace_nomask(m2);
  EXPECT_TRUE(bits_equal(m2, ref_m));
}

TEST(SoftmaxRows, EdgeCases) {
  // Single column: probability is exactly 1.
  Matrix one(2, 1);
  one(0, 0) = -50.0f;
  one(1, 0) = 1e4f;
  softmax_rows(one);
  EXPECT_TRUE(bits_equal(one(0, 0), 1.0f));
  EXPECT_TRUE(bits_equal(one(1, 0), 1.0f));

  // All-negative rows: the max subtraction keeps exp() in range and rows
  // still sum to ~1.
  Matrix neg(1, 11);
  for (std::size_t j = 0; j < 11; ++j)
    neg(0, j) = -100.0f - static_cast<float>(j);
  softmax_rows(neg);
  float s = 0;
  for (std::size_t j = 0; j < 11; ++j) {
    EXPECT_TRUE(std::isfinite(neg(0, j)));
    s += neg(0, j);
  }
  EXPECT_NEAR(s, 1.0f, 1e-5f);

  // Large-magnitude logits: exp(x - max) never overflows.
  Matrix big(1, 9);
  for (std::size_t j = 0; j < 9; ++j)
    big(0, j) = 1e4f + 10.0f * static_cast<float>(j);
  softmax_rows(big);
  for (std::size_t j = 0; j < 9; ++j) EXPECT_TRUE(std::isfinite(big(0, j)));
  EXPECT_GT(big(0, 8), 0.9f);  // the largest logit dominates

  // Tail-heavy width pinned bitwise against the scalar spec softmax.
  for (std::size_t cols : {1u, 5u, 8u, 13u, 24u}) {
    Matrix m = random_matrix(4, cols, 100 + cols);
    Matrix ref = m;
    softmax_rows(m);
    ref_softmax(ref);
    EXPECT_TRUE(bits_equal(m, ref)) << "cols=" << cols;
  }
}

/// The vector kernels are single-threaded per element but run inside the
/// pool's fixed block structure — their outputs must not move across
/// SUGAR_THREADS widths, and must stay equal to the scalar spec at each.
TEST(SimdDeterminism, KernelsBitStableAcrossThreadWidths) {
  const Matrix a = random_matrix(33, 29, 50);
  const Matrix b = random_matrix(29, 21, 51);
  const Matrix logits0 = random_matrix(9, 13, 52);

  Matrix ref_soft = logits0;
  ref_softmax(ref_soft);

  Matrix mm_ref, soft_ref, relu_ref, mask_ref;
  bool first = true;
  for (std::size_t threads : {1u, 2u, 7u}) {
    core::set_global_threads(threads);
    Matrix mm = matmul(a, b);
    Matrix soft = logits0;
    softmax_rows(soft);
    Matrix rl = a;
    Matrix mask = relu_inplace(rl);
    float sd = squared_distance(a.row(0), a.row(1), a.cols());
    EXPECT_TRUE(bits_equal(sd, ref_sqdist(a.row(0), a.row(1), a.cols())))
        << "threads=" << threads;
    EXPECT_TRUE(bits_equal(soft, ref_soft)) << "threads=" << threads;
    if (first) {
      mm_ref = mm;
      soft_ref = soft;
      relu_ref = rl;
      mask_ref = mask;
      first = false;
    } else {
      EXPECT_TRUE(bits_equal(mm, mm_ref)) << "threads=" << threads;
      EXPECT_TRUE(bits_equal(soft, soft_ref)) << "threads=" << threads;
      EXPECT_TRUE(bits_equal(rl, relu_ref)) << "threads=" << threads;
      EXPECT_TRUE(bits_equal(mask, mask_ref)) << "threads=" << threads;
    }
  }
  core::set_global_threads(0);
}

TEST(AlignedStorage, MatrixBuffersAre64ByteAligned) {
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    Matrix m(n, 3);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data().data()) % 64, 0u)
        << "rows=" << n;
  }
}

}  // namespace
}  // namespace sugar::ml
