// Determinism contract of the parallel ml kernels: GEMM, forest, and k-NN
// must produce bit-identical results at SUGAR_THREADS = 1, 2 and 7 (an odd
// width catches remainder-partition bugs), and the blocked GEMM must match
// a naive triple-loop reference exactly (same k-ascending accumulation
// order, so equality is bitwise, not approximate).
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "core/threadpool.h"
#include "ml/forest.h"
#include "ml/knn.h"
#include "ml/matrix.h"

namespace sugar::ml {
namespace {

/// Rebuilds the global pool at a given width for the test body, then
/// restores the env-derived width so later tests see the default substrate.
class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n) { core::set_global_threads(n); }
  ~ScopedThreads() { core::set_global_threads(0); }
};

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
  for (auto& v : m.data()) v = dist(rng);
  return m;
}

bool bit_equal(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data().data(), b.data().data(),
                     a.size() * sizeof(float)) == 0;
}

/// Naive ikj reference with the same k-ascending accumulation order as the
/// blocked kernel.
Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t k = 0; k < a.cols(); ++k)
      for (std::size_t j = 0; j < b.cols(); ++j)
        c(i, j) += a(i, k) * b(k, j);
  return c;
}

const std::size_t kWidths[] = {1, 2, 7};

TEST(ParallelDeterminism, MatmulMatchesNaiveAndAllWidths) {
  // Odd shapes so both the row grain (8) and the k panel (64) leave
  // remainders.
  const Matrix a = random_matrix(67, 129, 11);
  const Matrix b = random_matrix(129, 43, 12);
  const Matrix ref = naive_matmul(a, b);
  for (std::size_t w : kWidths) {
    ScopedThreads threads(w);
    EXPECT_TRUE(bit_equal(matmul(a, b), ref)) << "threads " << w;
  }
}

TEST(ParallelDeterminism, MatmulTnAllWidths) {
  const Matrix a = random_matrix(129, 67, 21);  // [k×n]^T
  const Matrix b = random_matrix(129, 43, 22);
  Matrix ref;
  {
    ScopedThreads threads(1);
    ref = matmul_tn(a, b);
  }
  ASSERT_EQ(ref.rows(), 67u);
  ASSERT_EQ(ref.cols(), 43u);
  for (std::size_t w : kWidths) {
    ScopedThreads threads(w);
    EXPECT_TRUE(bit_equal(matmul_tn(a, b), ref)) << "threads " << w;
  }
}

TEST(ParallelDeterminism, MatmulNtAllWidths) {
  const Matrix a = random_matrix(67, 129, 31);
  const Matrix b = random_matrix(43, 129, 32);  // [m×k], used transposed
  Matrix ref;
  {
    ScopedThreads threads(1);
    ref = matmul_nt(a, b);
  }
  ASSERT_EQ(ref.rows(), 67u);
  ASSERT_EQ(ref.cols(), 43u);
  for (std::size_t w : kWidths) {
    ScopedThreads threads(w);
    EXPECT_TRUE(bit_equal(matmul_nt(a, b), ref)) << "threads " << w;
  }
}

TEST(ParallelDeterminism, ForestFitPredictImportanceAllWidths) {
  const Matrix x = random_matrix(300, 12, 41);
  std::vector<int> y(x.rows());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 4);
  const Matrix q = random_matrix(57, 12, 42);

  ForestConfig cfg;
  cfg.num_trees = 15;  // odd count: uneven final tree block
  cfg.seed = 99;

  std::vector<int> ref_pred;
  std::vector<double> ref_imp;
  for (std::size_t w : kWidths) {
    ScopedThreads threads(w);
    RandomForest rf(cfg);
    rf.fit(x, y, 4);
    auto pred = rf.predict(q);
    auto imp = rf.feature_importance();
    if (ref_pred.empty()) {
      ref_pred = pred;
      ref_imp = imp;
      continue;
    }
    EXPECT_EQ(pred, ref_pred) << "threads " << w;
    ASSERT_EQ(imp.size(), ref_imp.size());
    for (std::size_t f = 0; f < imp.size(); ++f)
      EXPECT_EQ(imp[f], ref_imp[f]) << "feature " << f << " threads " << w;
  }
}

TEST(ParallelDeterminism, KnnPredictAndPurityAllWidths) {
  const Matrix train = random_matrix(200, 8, 51);
  std::vector<int> labels(train.rows());
  for (std::size_t i = 0; i < labels.size(); ++i)
    labels[i] = static_cast<int>(i % 3);
  const Matrix query = random_matrix(77, 8, 52);

  std::vector<int> ref_pred;
  PurityHistogram ref_purity;
  for (std::size_t w : kWidths) {
    ScopedThreads threads(w);
    KnnClassifier knn(5);
    knn.fit(train, labels, 3);
    auto pred = knn.predict(query);
    auto purity = knn_purity(train, labels, 5);
    if (ref_pred.empty()) {
      ref_pred = pred;
      ref_purity = purity;
      continue;
    }
    EXPECT_EQ(pred, ref_pred) << "threads " << w;
    EXPECT_EQ(purity.mean_purity, ref_purity.mean_purity) << "threads " << w;
    ASSERT_EQ(purity.histogram.size(), ref_purity.histogram.size());
    for (std::size_t j = 0; j < purity.histogram.size(); ++j)
      EXPECT_EQ(purity.histogram[j], ref_purity.histogram[j])
          << "bin " << j << " threads " << w;
  }
}

}  // namespace
}  // namespace sugar::ml
