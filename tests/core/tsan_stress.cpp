// Contention stress for the parallel substrate, intended for a TSan build
// (-DSUGAR_SANITIZE=thread; `ctest -L tsan`) but also correct — and run —
// under plain builds. Exercises the race-prone seams: many plain threads
// dispatching to one global pool, concurrent forest fits sharing the pool,
// and a supervisor batch where concurrent cells themselves use the pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/supervisor.h"
#include "core/threadpool.h"
#include "core/trace.h"
#include "ml/forest.h"
#include "ml/matrix.h"

namespace sugar::core {
namespace {

ml::Matrix random_matrix(std::size_t rows, std::size_t cols,
                         std::uint64_t seed) {
  ml::Matrix m(rows, cols);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (auto& v : m.data()) v = dist(rng);
  return m;
}

TEST(TsanStress, ConcurrentGlobalPoolCallers) {
  set_global_threads(4);
  std::vector<std::thread> callers;
  std::atomic<bool> failed{false};
  for (int c = 0; c < 8; ++c) {
    callers.emplace_back([&failed] {
      for (int round = 0; round < 20; ++round) {
        std::atomic<std::size_t> total{0};
        global_pool().parallel_for(0, 311, 7,
                                   [&](std::size_t lo, std::size_t hi) {
                                     total.fetch_add(hi - lo);
                                   });
        if (total.load() != 311) failed.store(true);
      }
    });
  }
  for (auto& t : callers) t.join();
  set_global_threads(0);
  EXPECT_FALSE(failed.load());
}

TEST(TsanStress, ConcurrentForestFitsBitIdentical) {
  set_global_threads(4);
  const ml::Matrix x = random_matrix(200, 10, 7);
  std::vector<int> y(x.rows());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 3);

  std::vector<std::vector<int>> preds(6);
  std::vector<std::thread> fits;
  for (std::size_t c = 0; c < preds.size(); ++c) {
    fits.emplace_back([&, c] {
      ml::ForestConfig cfg;
      cfg.num_trees = 10;
      cfg.seed = 5;
      ml::RandomForest rf(cfg);
      rf.fit(x, y, 3);
      preds[c] = rf.predict(x);
    });
  }
  for (auto& t : fits) t.join();
  set_global_threads(0);
  for (std::size_t c = 1; c < preds.size(); ++c)
    EXPECT_EQ(preds[c], preds[0]) << "fit " << c;
}

TEST(TsanStress, SupervisorParallelCellsUsingPool) {
  set_global_threads(4);
  const auto dir = std::filesystem::temp_directory_path() /
                   ("sugar_tsan_stress_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  SupervisorConfig cfg;
  cfg.bench_name = "tsan_stress";
  cfg.quiet = true;
  cfg.backoff_base_s = 0;
  cfg.cell_timeout_s = 120;
  cfg.max_parallel_cells = 8;
  cfg.json_path = (dir / "BENCH_tsan_stress.json").string();
  RunSupervisor sup(std::move(cfg));

  const ml::Matrix a = random_matrix(48, 64, 1);
  const ml::Matrix b = random_matrix(64, 32, 2);
  const ml::Matrix expect = ml::matmul(a, b);

  std::vector<CellSpec> specs;
  std::vector<RunSupervisor::CellFn> fns;
  for (int i = 0; i < 16; ++i) {
    specs.push_back({"tsan_stress", "cell" + std::to_string(i), "matmul",
                     generic_cell_key({"tsan", std::to_string(i)})});
    fns.push_back([&a, &b, &expect](CellContext&) {
      // Each concurrent cell dispatches to the shared pool; the pool's
      // re-entrancy guard degrades contended calls to inline serial runs,
      // which must still be bit-identical.
      ml::Matrix c = ml::matmul(a, b);
      CellSummary s;
      s.accuracy = c.data() == expect.data() ? 1.0 : 0.0;
      return s;
    });
  }
  auto outcomes = sup.run_cells(specs, fns);
  set_global_threads(0);

  ASSERT_EQ(outcomes.size(), 16u);
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.ok());
    EXPECT_EQ(o.summary.accuracy, 1.0);
  }
  EXPECT_TRUE(sup.finalize());
  EXPECT_TRUE(std::filesystem::exists(dir / "BENCH_tsan_stress.json"));
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// TraceConcurrent*: the observability substrate under contention. Span and
// counter emission from many threads while snapshot readers run
// concurrently — the seams TSan must see clean (per-thread state mutexes,
// the counter atomics, registry interning).

TEST(TraceConcurrent, EmittersAndSnapshottersRace) {
  trace::set_mode(trace::Mode::kSpans);
  trace::reset();
  set_global_threads(4);

  std::atomic<bool> stop{false};
  // Reader thread: continuously snapshots while emitters run.
  std::thread reader([&stop] {
    while (!stop.load()) {
      auto stats = trace::phase_stats();
      auto evs = trace::events();
      auto ctrs = trace::counters_snapshot();
      (void)trace::dropped_events();
      (void)trace::open_span_count();
      if (!stats.empty() && !evs.empty() && !ctrs.empty()) {
        // touch the copies so nothing is optimized away
        volatile std::size_t sink = stats.size() + evs.size() + ctrs.size();
        (void)sink;
      }
    }
  });

  std::vector<std::thread> emitters;
  for (int t = 0; t < 6; ++t) {
    emitters.emplace_back([t] {
      trace::set_thread_label("stress-emitter-" + std::to_string(t));
      for (int round = 0; round < 200; ++round) {
        SUGAR_TRACE_SPAN("stress.outer");
        SUGAR_TRACE_COUNT("stress.rounds", 1);
        {
          SUGAR_TRACE_SPAN("stress.inner");
          global_pool().parallel_for(0, 64, 8,
                                     [](std::size_t lo, std::size_t hi) {
                                       SUGAR_TRACE_SPAN("stress.block");
                                       SUGAR_TRACE_COUNT("stress.blocks",
                                                         hi - lo);
                                     });
        }
      }
    });
  }
  for (auto& t : emitters) t.join();
  stop.store(true);
  reader.join();
  set_global_threads(0);

  EXPECT_EQ(trace::open_span_count(), 0u);
  EXPECT_EQ(trace::counter("stress.rounds").value(), 6u * 200u);
  EXPECT_EQ(trace::counter("stress.blocks").value(), 6u * 200u * 64u);
  trace::set_mode(trace::Mode::kOff);
  trace::reset();
}

TEST(TraceConcurrent, SupervisorParallelCellsEmitSpans) {
  trace::set_mode(trace::Mode::kSpans);
  trace::reset();
  set_global_threads(4);
  const auto dir = std::filesystem::temp_directory_path() /
                   ("sugar_tsan_trace_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  SupervisorConfig cfg;
  cfg.bench_name = "tsan_trace";
  cfg.quiet = true;
  cfg.backoff_base_s = 0;
  cfg.cell_timeout_s = 120;
  cfg.max_parallel_cells = 6;
  cfg.json_path = (dir / "BENCH_tsan_trace.json").string();
  cfg.trace_path = (dir / "trace.json").string();
  RunSupervisor sup(std::move(cfg));

  const ml::Matrix a = random_matrix(48, 64, 3);
  const ml::Matrix b = random_matrix(64, 32, 4);

  std::vector<CellSpec> specs;
  std::vector<RunSupervisor::CellFn> fns;
  for (int i = 0; i < 12; ++i) {
    specs.push_back({"tsan_trace", "cell" + std::to_string(i), "matmul",
                     generic_cell_key({"tsan_trace", std::to_string(i)})});
    fns.push_back([&a, &b](CellContext&) {
      // Concurrent cells: the per-cell counter-delta snapshots in
      // process_cell race against every other cell's emission.
      SUGAR_TRACE_SPAN("stress.cell");
      ml::Matrix c = ml::matmul(a, b);  // bumps ml.gemm_flops
      CellSummary s;
      s.accuracy = c.size() > 0 ? 1.0 : 0.0;
      return s;
    });
  }
  auto outcomes = sup.run_cells(specs, fns);
  set_global_threads(0);

  for (const auto& o : outcomes) EXPECT_TRUE(o.ok());
  EXPECT_EQ(trace::counter("supervisor.cells_ok").value(), 12u);
  EXPECT_TRUE(sup.finalize());
  EXPECT_TRUE(std::filesystem::exists(dir / "trace.json"));
  std::filesystem::remove_all(dir);
  trace::set_mode(trace::Mode::kOff);
  trace::reset();
}

}  // namespace
}  // namespace sugar::core
