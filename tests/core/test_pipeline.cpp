// End-to-end integration tests: a miniature BenchmarkEnv drives full
// scenarios through dataset generation, cleaning, splitting, pre-training,
// downstream training and evaluation.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/report.h"

namespace sugar::core {
namespace {

EnvConfig tiny_config() {
  EnvConfig cfg;
  cfg.seed = 13;
  cfg.flows_per_class_iscx = 5;
  cfg.flows_per_class_ustc = 6;
  cfg.flows_per_class_tls = 3;
  cfg.backbone_flows = 60;
  cfg.downstream_epochs = 6;
  cfg.max_train_packets = 2000;
  cfg.max_test_packets = 1000;
  cfg.max_train_packets_deep = 1600;
  cfg.max_test_packets_deep = 1000;
  cfg.pretrain_epochs = 4;
  cfg.pretrain_max_samples = 1600;
  return cfg;
}

class PipelineTest : public ::testing::Test {
 protected:
  BenchmarkEnv env{tiny_config()};
};

TEST_F(PipelineTest, TaskDatasetsCachedAndLabelled) {
  const auto& a = env.task_dataset(dataset::TaskId::VpnBinary);
  const auto& b = env.task_dataset(dataset::TaskId::VpnBinary);
  EXPECT_EQ(&a, &b) << "task datasets are cached";
  EXPECT_EQ(a.num_classes, 2);
  EXPECT_GT(a.size(), 100u);

  const auto& report = env.cleaning_report(dataset::SourceDataset::IscxVpn);
  EXPECT_GT(report.removed_spurious_total(), 0u);
}

TEST_F(PipelineTest, PacketScenarioRunsAndAuditsClean) {
  ScenarioOptions opts;
  opts.split = dataset::SplitPolicy::PerFlow;
  opts.frozen = true;
  auto r = run_packet_scenario(env, dataset::TaskId::UstcBinary,
                               replearn::ModelKind::NetMamba, opts);
  EXPECT_GT(r.n_train, 0u);
  EXPECT_GT(r.n_test, 0u);
  EXPECT_TRUE(r.audit.clean());
  EXPECT_GE(r.metrics.accuracy, 0.0);
  EXPECT_LE(r.metrics.accuracy, 1.0);
  EXPECT_GT(r.train_seconds, 0.0);
  // Every scenario surfaces the source trace's ingestion health.
  EXPECT_GT(r.ingest.source_packets, 0u);
  EXPECT_EQ(r.ingest.malformed_frames, 0u) << "synthetic traces parse cleanly";
  EXPECT_GT(r.ingest.spurious_removed, 0u);
}

TEST_F(PipelineTest, PerPacketScenarioAuditsLeaky) {
  ScenarioOptions opts;
  opts.split = dataset::SplitPolicy::PerPacket;
  opts.frozen = true;
  auto r = run_packet_scenario(env, dataset::TaskId::UstcBinary,
                               replearn::ModelKind::NetMamba, opts);
  EXPECT_FALSE(r.audit.clean());
  EXPECT_GT(r.audit.leaked_test_packets, 0u);
}

TEST_F(PipelineTest, BinaryTaskIsEasyEvenFrozen) {
  // USTC-binary: malware vs benign stays solid for all models (Table 3's
  // one consistent column).
  ScenarioOptions opts;
  opts.split = dataset::SplitPolicy::PerFlow;
  opts.frozen = true;
  auto r = run_packet_scenario(env, dataset::TaskId::UstcBinary,
                               replearn::ModelKind::PcapEncoder, opts);
  // At this miniature scale "easy" means clearly above chance; the bench
  // binaries at full scale reach ~100% as in the paper.
  EXPECT_GT(r.metrics.accuracy, 0.6);
}

TEST_F(PipelineTest, EmbeddingExportForPurity) {
  ScenarioOptions opts;
  opts.split = dataset::SplitPolicy::PerFlow;
  opts.frozen = true;
  opts.export_embeddings = 200;
  auto r = run_packet_scenario(env, dataset::TaskId::VpnBinary,
                               replearn::ModelKind::NetMamba, opts);
  ASSERT_TRUE(r.embeddings.has_value());
  EXPECT_LE(r.embeddings->rows(), 200u);
  EXPECT_EQ(r.embeddings->rows(), r.embedding_labels.size());
  auto purity = purity_of(r);
  EXPECT_GE(purity.mean_purity, 0.0);
  EXPECT_LE(purity.mean_purity, 1.0);
}

TEST_F(PipelineTest, AblationOptionsChangeResults) {
  ScenarioOptions base;
  base.split = dataset::SplitPolicy::PerFlow;
  base.frozen = true;
  auto r1 = run_packet_scenario(env, dataset::TaskId::UstcBinary,
                                replearn::ModelKind::PcapEncoder, base);

  ScenarioOptions ablated = base;
  ablated.train_ablation.zero_header = true;
  ablated.test_ablation.zero_header = true;
  auto r2 = run_packet_scenario(env, dataset::TaskId::UstcBinary,
                                replearn::ModelKind::PcapEncoder, ablated);
  // A header-only encoder with zeroed headers cannot beat the intact one.
  EXPECT_LE(r2.metrics.accuracy, r1.metrics.accuracy + 0.05);
}

TEST_F(PipelineTest, FlowScenarioRuns) {
  ScenarioOptions opts;
  opts.frozen = true;
  auto r = run_flow_scenario(env, dataset::TaskId::UstcApp,
                             replearn::ModelKind::NetMamba, opts, 5);
  EXPECT_GT(r.n_train, 0u);
  EXPECT_GT(r.n_test, 0u);
}

TEST_F(PipelineTest, FlowScenarioPcapEncoderMajorityVote) {
  ScenarioOptions opts;
  opts.frozen = true;
  auto r = run_flow_scenario(env, dataset::TaskId::UstcBinary,
                             replearn::ModelKind::PcapEncoder, opts, 5);
  EXPECT_GT(r.n_test, 0u);
  EXPECT_GT(r.metrics.accuracy, 0.6);
}

TEST_F(PipelineTest, ShallowScenarioWithImportance) {
  ScenarioOptions opts;
  opts.split = dataset::SplitPolicy::PerFlow;
  auto r = run_shallow_scenario(env, dataset::TaskId::UstcApp,
                                ShallowKind::RandomForest, true, opts);
  EXPECT_GT(r.metrics.accuracy, 0.3);
  ASSERT_EQ(r.feature_importance.size(), r.feature_names.size());
  double sum = 0;
  for (double v : r.feature_importance) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST_F(PipelineTest, ShallowKindsAllRun) {
  ScenarioOptions opts;
  opts.split = dataset::SplitPolicy::PerFlow;
  for (auto kind : {ShallowKind::XgboostStyle, ShallowKind::LightGbmStyle,
                    ShallowKind::Mlp}) {
    auto r = run_shallow_scenario(env, dataset::TaskId::UstcBinary, kind, true, opts);
    EXPECT_GT(r.metrics.accuracy, 0.6) << to_string(kind);
  }
}

TEST_F(PipelineTest, PretrainedBundlesAreIndependentCopies) {
  auto a = env.pretrained(replearn::ModelKind::NetMamba, replearn::TaskMode::Packet);
  auto b = env.pretrained(replearn::ModelKind::NetMamba, replearn::TaskMode::Packet);
  EXPECT_NE(a.encoder.get(), b.encoder.get());
  // Same pre-trained weights: same embeddings.
  ml::Matrix x(3, a.encoder->input_dim(), 0.25f);
  EXPECT_EQ(a.encoder->embed(x, false).data(), b.encoder->embed(x, false).data());
}

TEST_F(PipelineTest, FlowScenarioEmptyPartitionRaisesTypedError) {
  // No flow in the tiny trace reaches a million packets, so the flow
  // runner's partition is empty — a typed RunError, not a silent zero row.
  ScenarioOptions opts;
  opts.frozen = true;
  try {
    run_flow_scenario(env, dataset::TaskId::VpnApp, replearn::ModelKind::NetMamba,
                      opts, /*min_flow_len=*/1000000);
    FAIL() << "expected RunError(kEmptyPartition)";
  } catch (const RunError& e) {
    EXPECT_EQ(e.kind(), RunErrorKind::kEmptyPartition);
    EXPECT_NE(std::string(e.what()).find("1000000"), std::string::npos);
  }
}

TEST_F(PipelineTest, PreCancelledTokenAbortsScenario) {
  // A watchdog that has already fired must unwind the scenario with
  // CancelledError before any training epoch completes.
  ml::CancelToken token;
  token.cancel();
  ScenarioOptions opts;
  opts.split = dataset::SplitPolicy::PerFlow;
  opts.frozen = true;
  opts.cancel = &token;
  EXPECT_THROW(run_packet_scenario(env, dataset::TaskId::UstcBinary,
                                   replearn::ModelKind::NetMamba, opts),
               ml::CancelledError);
}

TEST_F(PipelineTest, PreCancelledTokenAbortsShallowScenario) {
  ml::CancelToken token;
  token.cancel();
  ScenarioOptions opts;
  opts.split = dataset::SplitPolicy::PerFlow;
  opts.cancel = &token;
  EXPECT_THROW(run_shallow_scenario(env, dataset::TaskId::UstcBinary,
                                    ShallowKind::RandomForest, true, opts),
               ml::CancelledError);
}

TEST(Report, MarkdownTableFormat) {
  MarkdownTable t{{"A", "B"}};
  t.add_row({"1", "2"});
  auto s = t.to_string();
  EXPECT_NE(s.find("| A | B |"), std::string::npos);
  EXPECT_NE(s.find("|---|---|"), std::string::npos);
  EXPECT_NE(s.find("| 1 | 2 |"), std::string::npos);
  EXPECT_EQ(MarkdownTable::pct(0.1234), "12.3");
  EXPECT_EQ(MarkdownTable::num(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace sugar::core
