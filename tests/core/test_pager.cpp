// Tests for the bounded page cache (core/pager.h): miss/hit accounting,
// LRU eviction under a byte budget, pin semantics (pinned pages are never
// evicted), failed-load retry, prefetch servicing, per-file drop, and a
// concurrent storm (PagerTsan.*) that the TSan configuration sweeps for
// data races.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/pager.h"

namespace sugar::core {
namespace {

/// Deterministic page content: a pure function of the key, as the loader
/// contract requires.
std::vector<std::uint8_t> page_bytes(PageKey key, std::size_t size = 100) {
  std::vector<std::uint8_t> out(size);
  for (std::size_t i = 0; i < size; ++i)
    out[i] = static_cast<std::uint8_t>(key.file_id * 31 + key.page_no * 7 + i);
  return out;
}

PageCache::Loader counting_loader(PageKey key, std::atomic<int>& calls,
                                  std::size_t size = 100) {
  return [key, &calls, size](std::vector<std::uint8_t>& out, std::string&) {
    calls.fetch_add(1);
    out = page_bytes(key, size);
    return true;
  };
}

/// A loader that must not run — the page is expected to be resident.
PageCache::Loader poison_loader() {
  return [](std::vector<std::uint8_t>&, std::string& err) {
    ADD_FAILURE() << "loader ran for a page that should have been resident";
    err = "poison";
    return false;
  };
}

TEST(PageCache, MissLoadsOnceThenHits) {
  PageCache cache(1 << 20, 1);
  std::atomic<int> calls{0};
  const PageKey key{1, 0};
  auto pin = cache.get(key, counting_loader(key, calls));
  ASSERT_TRUE(pin);
  EXPECT_EQ(pin.size(), 100u);
  EXPECT_EQ(pin.data()[5], page_bytes(key)[5]);
  auto pin2 = cache.get(key, poison_loader());
  ASSERT_TRUE(pin2);
  EXPECT_EQ(calls.load(), 1);
  const auto st = cache.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.resident_pages, 1u);
  EXPECT_EQ(st.resident_bytes, 100u);
}

TEST(PageCache, EvictsLeastRecentlyUsedUnderBudget) {
  // Single shard so the whole budget is one LRU list: 250 bytes holds two
  // 100-byte pages, never three.
  PageCache cache(250, 1);
  std::atomic<int> calls{0};
  for (std::uint64_t p = 0; p < 3; ++p) {
    const PageKey key{1, p};
    cache.get(key, counting_loader(key, calls));
  }
  auto st = cache.stats();
  EXPECT_LE(st.resident_bytes, 250u);
  EXPECT_GE(st.evictions, 1u);
  // Page 0 was the LRU victim: getting it again must reload.
  const int before = calls.load();
  cache.get(PageKey{1, 0}, counting_loader(PageKey{1, 0}, calls));
  EXPECT_EQ(calls.load(), before + 1);
  // Page 2 (most recent) is still resident.
  auto pin = cache.get(PageKey{1, 2}, poison_loader());
  EXPECT_TRUE(pin);
}

TEST(PageCache, PinnedPageIsNeverEvicted) {
  PageCache cache(250, 1);
  std::atomic<int> calls{0};
  const PageKey pinned_key{1, 0};
  auto pin = cache.get(pinned_key, counting_loader(pinned_key, calls));
  ASSERT_TRUE(pin);
  // Blow well past the budget; everything unpinned turns over.
  for (std::uint64_t p = 1; p < 8; ++p)
    cache.get(PageKey{1, p}, counting_loader(PageKey{1, p}, calls));
  // The pinned page must still be served without a reload.
  auto again = cache.get(pinned_key, poison_loader());
  ASSERT_TRUE(again);
  EXPECT_EQ(again.data()[3], page_bytes(pinned_key)[3]);
  // Once unpinned, the page becomes evictable again.
  pin.reset();
  again.reset();
  for (std::uint64_t p = 8; p < 16; ++p)
    cache.get(PageKey{1, p}, counting_loader(PageKey{1, p}, calls));
  const int before = calls.load();
  cache.get(pinned_key, counting_loader(pinned_key, calls));
  EXPECT_EQ(calls.load(), before + 1);
}

TEST(PageCache, FailedLoadReportsErrorAndRetries) {
  PageCache cache(1 << 20, 1);
  int attempts = 0;
  const PageKey key{1, 0};
  auto flaky = [&](std::vector<std::uint8_t>& out, std::string& err) {
    if (++attempts == 1) {
      err = "[crc] injected";
      return false;
    }
    out = page_bytes(key);
    return true;
  };
  std::string error;
  auto pin = cache.get(key, flaky, &error);
  EXPECT_FALSE(pin);
  EXPECT_EQ(error, "[crc] injected");
  // The failed slot was erased, so the next get retries the load.
  pin = cache.get(key, flaky, &error);
  ASSERT_TRUE(pin);
  EXPECT_EQ(attempts, 2);
}

TEST(PageCache, PrefetchServicesALaterGetAsAHit) {
  PageCache cache(1 << 20, 1);
  std::atomic<int> calls{0};
  const PageKey key{1, 0};
  cache.prefetch(key, counting_loader(key, calls));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (cache.stats().prefetch_loaded == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(cache.stats().prefetch_loaded, 1u);
  auto pin = cache.get(key, poison_loader());
  ASSERT_TRUE(pin);
  EXPECT_EQ(calls.load(), 1);
  EXPECT_GE(cache.stats().hits, 1u);
}

TEST(PageCache, DropFileRemovesOnlyThatFilesPages) {
  PageCache cache(1 << 20, 1);
  std::atomic<int> calls{0};
  const PageKey a{1, 0}, b{2, 0};
  cache.get(a, counting_loader(a, calls));
  cache.get(b, counting_loader(b, calls));
  cache.drop_file(1);
  // File 2's page survives; file 1's must reload.
  auto pin = cache.get(b, poison_loader());
  EXPECT_TRUE(pin);
  const int before = calls.load();
  cache.get(a, counting_loader(a, calls));
  EXPECT_EQ(calls.load(), before + 1);
}

TEST(PageCache, HitRateStaysInsideUnitInterval) {
  PageCache cache(1 << 20, 1);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 1.0);  // vacuous: no traffic
  std::atomic<int> calls{0};
  for (std::uint64_t p = 0; p < 4; ++p)
    for (int rep = 0; rep < 3; ++rep)
      cache.get(PageKey{1, p}, counting_loader(PageKey{1, p}, calls));
  const double rate = cache.stats().hit_rate();
  EXPECT_GE(rate, 0.0);
  EXPECT_LE(rate, 1.0);
  EXPECT_DOUBLE_EQ(rate, 8.0 / 12.0);
}

TEST(PageCache, FileIdsAreProcessUnique) {
  const std::uint64_t a = next_page_file_id();
  const std::uint64_t b = next_page_file_id();
  EXPECT_NE(a, b);
}

TEST(PageCache, PeakRssIsPositive) {
  EXPECT_GT(peak_rss_bytes(), 0u);
}

// Concurrent storm: readers hammer a small keyspace through a tight budget
// (constant churn) while prefetches race the demand loads and a dropper
// invalidates one file — every returned pin must carry the key's exact
// bytes. TSan sweeps this for races; plain builds assert the data.
TEST(PagerTsan, ConcurrentStormServesExactBytes) {
  PageCache cache(4096, 4);  // ~10 pages resident out of 64
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  std::atomic<bool> corrupt{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &cache, &corrupt] {
      std::uint64_t state = static_cast<std::uint64_t>(t) + 1;
      for (int i = 0; i < kIters; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const PageKey key{1 + (state >> 33) % 2, (state >> 17) % 32};
        auto loader = [key](std::vector<std::uint8_t>& out, std::string&) {
          out = page_bytes(key, 400);
          return true;
        };
        if (i % 7 == 0) cache.prefetch(key, loader);
        auto pin = cache.get(key, loader);
        if (!pin || pin.size() != 400 ||
            pin.data()[i % 400] != page_bytes(key, 400)[i % 400])
          corrupt.store(true);
        if (i % 31 == 0) cache.drop_file(2);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_FALSE(corrupt.load());
  const auto st = cache.stats();
  EXPECT_GE(st.evictions, 1u);
  EXPECT_LE(st.hit_rate(), 1.0);
}

}  // namespace
}  // namespace sugar::core
