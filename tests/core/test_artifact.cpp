#include "core/artifact.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/chaos.h"

namespace sugar::core {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("sugar_artifact_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  fs::path dir_;
};

TEST(Json, BuildAndDumpPreservesInsertionOrder) {
  Json j = Json::object();
  j.set("zeta", Json(1));
  j.set("alpha", Json("x"));
  j.set("flag", Json(true));
  EXPECT_EQ(j.dump(), R"({"zeta":1,"alpha":"x","flag":true})");
}

TEST(Json, RoundTripsThroughParse) {
  Json j = Json::object();
  j.set("name", Json("tls120"));
  j.set("accuracy", Json(0.875));
  j.set("count", Json(std::size_t{42}));
  Json arr = Json::array();
  arr.push(Json(1));
  arr.push(Json::object().set("nested", Json(false)));
  j.set("cells", arr);

  auto parsed = Json::parse(j.dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dump(), j.dump());
  const Json* cells = parsed->find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_EQ(cells->items().size(), 2u);
  EXPECT_EQ(cells->items()[1].find("nested")->bool_or(true), false);
}

TEST(Json, EscapesControlCharactersAndQuotes) {
  Json j = Json::object();
  j.set("msg", Json(std::string("a\"b\\c\n\t") + '\x01'));
  std::string dumped = j.dump();
  EXPECT_NE(dumped.find(R"(\")"), std::string::npos);
  EXPECT_NE(dumped.find(R"(\n)"), std::string::npos);
  EXPECT_NE(dumped.find("\\u0001"), std::string::npos);
  auto parsed = Json::parse(dumped);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("msg")->string_or(""), j.find("msg")->string_or("!"));
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  Json j = Json::object();
  j.set("bad", Json(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_EQ(j.dump(), R"({"bad":null})");
  EXPECT_TRUE(Json::parse(j.dump()).has_value());
}

TEST(Json, ParseRejectsMalformedAndTrailingGarbage) {
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse(R"({"a":})").has_value());
  EXPECT_FALSE(Json::parse(R"({"a":1} trailing)").has_value());
  EXPECT_FALSE(Json::parse("").has_value());
  EXPECT_FALSE(Json::parse("nul").has_value());
}

using ArtifactFiles = TempDir;

TEST_F(ArtifactFiles, AtomicWriteCreatesFileAndLeavesNoTemp) {
  auto target = dir_ / "out.json";
  std::string error;
  ASSERT_TRUE(atomic_write_file(target.string(), "{\"ok\":true}\n", &error)) << error;
  EXPECT_EQ(read_file(target), "{\"ok\":true}\n");
  // temp-then-rename: no sibling temp file survives the write.
  std::size_t entries = 0;
  for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir_)) ++entries;
  EXPECT_EQ(entries, 1u);
}

TEST_F(ArtifactFiles, AtomicWriteFailureLeavesTargetIntact) {
  auto target = dir_ / "out.json";
  std::string error;
  ASSERT_TRUE(atomic_write_file(target.string(), "original", &error));

  // Writing into a non-existent directory must fail without touching the
  // original target.
  auto bad = dir_ / "missing_subdir" / "out.json";
  EXPECT_FALSE(atomic_write_file(bad.string(), "new", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(read_file(target), "original");
}

TEST_F(ArtifactFiles, AtomicWriteThroughInjectedIoFaults) {
  auto target = dir_ / "out.json";
  std::string error;
  ASSERT_TRUE(atomic_write_file(target.string(), "original", &error));

  // Disk full at the temp-write step: the committed target is untouched.
  {
    ChaosConfig cfg;
    cfg.enabled = true;
    cfg.seed = 1;
    cfg.with(ChaosSite::kIoWriteFail, 1.0);
    ChaosInjector chaos(cfg);
    ChaosIo io(chaos);
    error.clear();
    EXPECT_FALSE(atomic_write_file(target.string(), "new", &error, &io));
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(read_file(target), "original");
  }

  // Rename (commit) failure: the target keeps its previous content — the
  // whole point of temp-then-rename.
  {
    ChaosConfig cfg;
    cfg.enabled = true;
    cfg.seed = 1;
    cfg.with(ChaosSite::kIoRenameFail, 1.0);
    ChaosInjector chaos(cfg);
    ChaosIo io(chaos);
    error.clear();
    EXPECT_FALSE(atomic_write_file(target.string(), "new", &error, &io));
    EXPECT_EQ(read_file(target), "original");
  }

  // A clean injected run behaves exactly like the real filesystem.
  {
    ChaosConfig cfg;  // enabled but all probabilities zero
    cfg.enabled = true;
    cfg.seed = 1;
    ChaosInjector chaos(cfg);
    ChaosIo io(chaos);
    EXPECT_TRUE(atomic_write_file(target.string(), "new", &error, &io));
    EXPECT_EQ(read_file(target), "new");
  }
}

TEST_F(ArtifactFiles, LoadJsonlSkipsTornTrailingLine) {
  auto path = dir_ / "journal.jsonl";
  {
    std::ofstream out(path, std::ios::binary);
    out << R"({"key":"a","status":"ok"})" << "\n";
    out << R"({"key":"b","status":"ok"})" << "\n";
    out << R"({"key":"c","stat)";  // torn mid-write
  }
  std::size_t skipped = 0;
  auto entries = load_jsonl(path.string(), &skipped);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(skipped, 1u);
  EXPECT_EQ(entries[0].find("key")->string_or(""), "a");
  EXPECT_EQ(entries[1].find("key")->string_or(""), "b");
}

TEST_F(ArtifactFiles, LoadJsonlMissingFileIsEmptyNotFatal) {
  std::size_t skipped = 7;
  auto entries = load_jsonl((dir_ / "nope.jsonl").string(), &skipped);
  EXPECT_TRUE(entries.empty());
  EXPECT_EQ(skipped, 0u);
}

TEST(Fingerprint, Fnv1a64MatchesReferenceVector) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(hex64(0xdeadbeefull), "00000000deadbeef");
}

}  // namespace
}  // namespace sugar::core
