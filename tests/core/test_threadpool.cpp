// Tests for the deterministic thread pool: exact block coverage, partition
// math, exception propagation, bit-identical reductions at any thread
// count, re-entrancy degradation, and the SUGAR_THREADS env knob.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/threadpool.h"

namespace sugar::core {
namespace {

/// setenv/unsetenv with restore-on-destruction, so tests cannot leak a
/// SUGAR_THREADS value into each other.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old) saved_ = old;
    had_ = old != nullptr;
    if (value)
      ::setenv(name, value, 1);
    else
      ::unsetenv(name);
  }
  ~ScopedEnv() {
    if (had_)
      ::setenv(name_, saved_.c_str(), 1);
    else
      ::unsetenv(name_);
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(ThreadPool, CoversRangeExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    ThreadPool pool(threads);
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(0, n, 13, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
  }
}

TEST(ThreadPool, RemainderPartition) {
  // 103 elements at grain 8: 12 full blocks + one 7-element remainder, and
  // the block boundaries must be identical regardless of thread count.
  EXPECT_EQ(ThreadPool::block_count(0, 103, 8), 13u);
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::set<std::pair<std::size_t, std::size_t>> blocks;
    pool.parallel_for(0, 103, 8, [&](std::size_t lo, std::size_t hi) {
      std::lock_guard<std::mutex> lock(mu);
      blocks.insert({lo, hi});
    });
    ASSERT_EQ(blocks.size(), 13u);
    std::size_t expect_lo = 0;
    for (const auto& [lo, hi] : blocks) {
      EXPECT_EQ(lo, expect_lo);
      EXPECT_EQ(hi, std::min<std::size_t>(lo + 8, 103));
      expect_lo = hi;
    }
    EXPECT_EQ(expect_lo, 103u);
  }
}

TEST(ThreadPool, BlockCountMath) {
  EXPECT_EQ(ThreadPool::block_count(0, 0, 8), 0u);
  EXPECT_EQ(ThreadPool::block_count(5, 5, 8), 0u);
  EXPECT_EQ(ThreadPool::block_count(7, 5, 8), 0u);  // inverted range
  EXPECT_EQ(ThreadPool::block_count(0, 1, 8), 1u);
  EXPECT_EQ(ThreadPool::block_count(0, 8, 8), 1u);
  EXPECT_EQ(ThreadPool::block_count(0, 9, 8), 2u);
  EXPECT_EQ(ThreadPool::block_count(0, 64, 0), 64u);  // grain 0 -> 1
  EXPECT_EQ(ThreadPool::block_count(10, 20, 3), 4u);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(10, 10, 4, [&](std::size_t, std::size_t) { ran = true; });
  pool.parallel_for(10, 3, 4, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100, 1,
                        [&](std::size_t lo, std::size_t) {
                          if (lo == 37) throw std::runtime_error("block 37");
                        }),
      std::runtime_error);
  // The pool must still be usable after a throwing job.
  std::atomic<std::size_t> count{0};
  pool.parallel_for(0, 100, 1, [&](std::size_t lo, std::size_t hi) {
    count.fetch_add(hi - lo);
  });
  EXPECT_EQ(count.load(), 100u);
}

TEST(ThreadPool, ReduceBitIdenticalAcrossThreadCounts) {
  // A float sum whose result depends on association order: identical
  // partials-in-block-order reduction must give the same bits everywhere.
  std::vector<float> v(10'001);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = 1.0f / static_cast<float>(i + 1);

  auto run = [&](std::size_t threads) {
    ThreadPool pool(threads);
    return pool.parallel_reduce(
        std::size_t{0}, v.size(), 64, 0.0f,
        [&](std::size_t lo, std::size_t hi) {
          float s = 0.0f;
          for (std::size_t i = lo; i < hi; ++i) s += v[i];
          return s;
        },
        [](float a, float b) { return a + b; });
  };
  const float r1 = run(1);
  EXPECT_EQ(r1, run(2));
  EXPECT_EQ(r1, run(7));
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<std::size_t> inner_total{0};
  pool.parallel_for(0, 8, 1, [&](std::size_t, std::size_t) {
    // Re-entrant dispatch from a worker must not deadlock; it degrades to
    // an inline serial run with the same block partition.
    pool.parallel_for(0, 10, 3, [&](std::size_t lo, std::size_t hi) {
      inner_total.fetch_add(hi - lo);
    });
  });
  EXPECT_EQ(inner_total.load(), 80u);
}

TEST(ThreadPool, ConcurrentCallersFromPlainThreads) {
  // Several non-pool threads dispatching to one pool at once: each call
  // must still cover its range exactly (one runs on the pool, the rest
  // degrade to inline serial runs).
  ThreadPool pool(4);
  std::vector<std::thread> callers;
  std::vector<std::size_t> sums(6, 0);
  for (std::size_t c = 0; c < sums.size(); ++c) {
    callers.emplace_back([&pool, &sums, c] {
      std::atomic<std::size_t> total{0};
      pool.parallel_for(0, 500, 7, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) total.fetch_add(i);
      });
      sums[c] = total.load();
    });
  }
  for (auto& t : callers) t.join();
  const std::size_t expect = 500 * 499 / 2;
  for (std::size_t s : sums) EXPECT_EQ(s, expect);
}

TEST(ThreadPool, ThreadsFromEnvParsing) {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  {
    ScopedEnv env("SUGAR_THREADS", "7");
    EXPECT_EQ(threads_from_env(), 7u);
  }
  {
    ScopedEnv env("SUGAR_THREADS", nullptr);
    EXPECT_EQ(threads_from_env(), hw);
  }
  // Strict whole-string parse: malformed values warn and fall back.
  for (const char* bad : {"abc", "4x", "", " 4", "-2", "0"}) {
    ScopedEnv env("SUGAR_THREADS", bad);
    EXPECT_EQ(threads_from_env(), hw) << "value: '" << bad << "'";
  }
  {
    ScopedEnv env("SUGAR_THREADS", "100000");  // clamped
    EXPECT_EQ(threads_from_env(), 512u);
  }
}

TEST(ThreadPool, SetGlobalThreads) {
  set_global_threads(3);
  EXPECT_EQ(global_thread_count(), 3u);
  EXPECT_EQ(global_pool().thread_count(), 3u);
  std::atomic<std::size_t> count{0};
  global_pool().parallel_for(0, 50, 4, [&](std::size_t lo, std::size_t hi) {
    count.fetch_add(hi - lo);
  });
  EXPECT_EQ(count.load(), 50u);
  // Restore the env-derived width for whatever test runs next.
  set_global_threads(0);
  EXPECT_EQ(global_thread_count(), threads_from_env());
}

}  // namespace
}  // namespace sugar::core
