// Property tests for the observability substrate (core/trace.h): strict
// mode parsing, zero-effect in off mode, per-phase aggregation, retained
// span timelines, and — the core property — that fuzzed randomized span
// trees emitted from pool workers at several thread counts always produce
// a well-formed timeline: balanced open/close, nested-or-disjoint
// same-thread intervals, and depths consistent with containment.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/threadpool.h"
#include "core/trace.h"

namespace sugar::core::trace {
namespace {

/// Every trace test starts from a clean registry and leaves the process in
/// the default off mode, so tests cannot leak trace state into each other
/// (or into the supervisor tests that share this binary).
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_mode(Mode::kOff);
    reset();
  }
  void TearDown() override {
    set_mode(Mode::kOff);
    reset();
  }

  static const PhaseStat* find_phase(const std::vector<PhaseStat>& stats,
                                     const std::string& name) {
    for (const auto& s : stats)
      if (s.name == name) return &s;
    return nullptr;
  }
};

TEST_F(TraceTest, ParseModeIsStrict) {
  ASSERT_TRUE(parse_mode("off").has_value());
  EXPECT_EQ(*parse_mode("off"), Mode::kOff);
  ASSERT_TRUE(parse_mode("summary").has_value());
  EXPECT_EQ(*parse_mode("summary"), Mode::kSummary);
  ASSERT_TRUE(parse_mode("spans").has_value());
  EXPECT_EQ(*parse_mode("spans"), Mode::kSpans);
  for (const char* bad :
       {"", "Off", "OFF", "span", "spanss", " spans", "spans ", "1", "on"}) {
    EXPECT_FALSE(parse_mode(bad).has_value()) << "value: '" << bad << "'";
  }
}

TEST_F(TraceTest, ModeNames) {
  EXPECT_STREQ(mode_name(Mode::kOff), "off");
  EXPECT_STREQ(mode_name(Mode::kSummary), "summary");
  EXPECT_STREQ(mode_name(Mode::kSpans), "spans");
}

TEST_F(TraceTest, OffModeRecordsNothing) {
  ASSERT_FALSE(enabled());
  {
    SUGAR_TRACE_SPAN("test.off_span");
    SUGAR_TRACE_COUNT("test.off_counter", 7);
  }
  EXPECT_EQ(find_phase(phase_stats(), "test.off_span"), nullptr);
  EXPECT_TRUE(events().empty());
  // The counter macro never even interned the name.
  for (const auto& c : counters_snapshot())
    EXPECT_NE(c.name, "test.off_counter");
}

TEST_F(TraceTest, SummaryAggregatesWithoutEvents) {
  set_mode(Mode::kSummary);
  ASSERT_TRUE(enabled());
  for (int i = 0; i < 3; ++i) {
    SUGAR_TRACE_SPAN("test.summary_span");
    SUGAR_TRACE_COUNT("test.summary_counter", 2);
  }
  const PhaseStat* s = find_phase(phase_stats(), "test.summary_span");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 3u);
  EXPECT_TRUE(events().empty()) << "summary mode must not retain events";
  EXPECT_EQ(counter("test.summary_counter").value(), 6u);
}

TEST_F(TraceTest, SpansRetainNestedTimeline) {
  set_mode(Mode::kSpans);
  {
    SUGAR_TRACE_SPAN("test.outer");
    {
      SUGAR_TRACE_SPAN("test.inner");
    }
    {
      SUGAR_TRACE_SPAN("test.inner");
    }
  }
  EXPECT_EQ(open_span_count(), 0u);
  auto evs = events();
  ASSERT_EQ(evs.size(), 3u);
  std::map<std::string, int> count;
  for (const auto& e : evs) ++count[e.name];
  EXPECT_EQ(count["test.outer"], 1);
  EXPECT_EQ(count["test.inner"], 2);
  for (const auto& e : evs) {
    if (e.name == "test.outer")
      EXPECT_EQ(e.depth, 0u);
    else
      EXPECT_EQ(e.depth, 1u);
  }
  // The outer span's interval contains both inner ones.
  const auto& outer = *std::find_if(evs.begin(), evs.end(), [](const SpanEvent& e) {
    return e.name == "test.outer";
  });
  for (const auto& e : evs) {
    if (e.name != "test.inner") continue;
    EXPECT_GE(e.begin_ns, outer.begin_ns);
    EXPECT_LE(e.begin_ns + e.dur_ns, outer.begin_ns + outer.dur_ns);
  }
}

TEST_F(TraceTest, CountersAreMonotoneWithStableAddresses) {
  set_mode(Mode::kSummary);
  Counter& c = counter("test.stable");
  EXPECT_EQ(c.value(), 0u);
  std::uint64_t prev = 0;
  for (int i = 1; i <= 10; ++i) {
    c.add(static_cast<std::uint64_t>(i));
    EXPECT_GT(c.value(), prev) << "counter must be strictly monotone under add";
    prev = c.value();
  }
  EXPECT_EQ(c.value(), 55u);
  // reset() zeroes the value but keeps the registry node: the same
  // reference keeps working (this is what the macro's static caching
  // relies on).
  reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&counter("test.stable"), &c);
  c.add(3);
  EXPECT_EQ(counter("test.stable").value(), 3u);
}

TEST_F(TraceTest, SnapshotIsSortedAndKeepsZeroCounters) {
  set_mode(Mode::kSummary);
  counter("test.zzz").add(1);
  counter("test.aaa");  // interned but never bumped
  auto snap = counters_snapshot();
  EXPECT_TRUE(std::is_sorted(
      snap.begin(), snap.end(),
      [](const CounterValue& a, const CounterValue& b) { return a.name < b.name; }));
  bool saw_zero = false;
  for (const auto& c : snap)
    if (c.name == "test.aaa") {
      saw_zero = true;
      EXPECT_EQ(c.value, 0u);
    }
  EXPECT_TRUE(saw_zero);
}

TEST_F(TraceTest, RetentionCapCountsDroppedEvents) {
  set_mode(Mode::kSpans);
  // One thread's cap is 65536 retained events; overshoot it.
  constexpr std::size_t kEmit = 70'000;
  for (std::size_t i = 0; i < kEmit; ++i) {
    SUGAR_TRACE_SPAN("test.capped");
  }
  EXPECT_GE(dropped_events(), kEmit - 65'536);
  const PhaseStat* s = find_phase(phase_stats(), "test.capped");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, kEmit) << "aggregates must keep counting past the cap";
  std::size_t retained = 0;
  for (const auto& e : events())
    if (e.name == "test.capped") ++retained;
  EXPECT_LE(retained, 65'536u);
  EXPECT_GT(retained, 0u);
}

TEST_F(TraceTest, ResetClearsEventsAggregatesAndEpoch) {
  set_mode(Mode::kSpans);
  {
    SUGAR_TRACE_SPAN("test.pre_reset");
  }
  ASSERT_FALSE(events().empty());
  reset();
  EXPECT_TRUE(events().empty());
  EXPECT_EQ(find_phase(phase_stats(), "test.pre_reset"), nullptr);
  EXPECT_EQ(dropped_events(), 0u);
  {
    SUGAR_TRACE_SPAN("test.post_reset");
  }
  auto evs = events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].name, "test.post_reset");
}

TEST_F(TraceTest, ThreadLabelsAppearOnEvents) {
  set_mode(Mode::kSpans);
  set_thread_label("test-main");
  {
    SUGAR_TRACE_SPAN("test.labeled");
  }
  auto evs = events();
  ASSERT_FALSE(evs.empty());
  bool found = false;
  for (const auto& e : evs)
    if (e.name == "test.labeled") {
      found = true;
      EXPECT_EQ(e.thread_label, "test-main");
    }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// The fuzz property: randomized span trees emitted concurrently from pool
// workers must always yield a well-formed timeline.

/// Emits a deterministic pseudo-random span tree (recursion depth <= 4,
/// fan-out <= 3) and returns the number of spans emitted.
std::size_t emit_random_tree(std::mt19937& rng, int depth) {
  std::size_t emitted = 1;
  SUGAR_TRACE_SPAN(("fuzz.d" + std::to_string(depth)).c_str());
  SUGAR_TRACE_COUNT("fuzz.spans_emitted", 1);
  if (depth >= 4) return emitted;
  std::uniform_int_distribution<int> fanout(0, 3);
  const int kids = fanout(rng);
  for (int k = 0; k < kids; ++k) emitted += emit_random_tree(rng, depth + 1);
  return emitted;
}

/// Well-formedness of one thread's events: every pair of intervals is
/// nested or disjoint, and every nested (depth > 0) event is contained in
/// some event of strictly smaller depth.
void check_thread_timeline(const std::vector<SpanEvent>& evs) {
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const auto b1 = evs[i].begin_ns, e1 = evs[i].begin_ns + evs[i].dur_ns;
    for (std::size_t j = i + 1; j < evs.size(); ++j) {
      const auto b2 = evs[j].begin_ns, e2 = evs[j].begin_ns + evs[j].dur_ns;
      const bool disjoint = e1 <= b2 || e2 <= b1;
      const bool nested = (b1 <= b2 && e2 <= e1) || (b2 <= b1 && e1 <= e2);
      ASSERT_TRUE(disjoint || nested)
          << "overlapping non-nested spans " << evs[i].name << " ["
          << b1 << "," << e1 << ") and " << evs[j].name << " [" << b2 << ","
          << e2 << ")";
    }
    if (evs[i].depth > 0) {
      bool contained = false;
      for (std::size_t j = 0; j < evs.size() && !contained; ++j) {
        if (j == i || evs[j].depth >= evs[i].depth) continue;
        const auto b2 = evs[j].begin_ns, e2 = evs[j].begin_ns + evs[j].dur_ns;
        contained = b2 <= b1 && e1 <= e2;
      }
      ASSERT_TRUE(contained)
          << "depth-" << evs[i].depth << " span " << evs[i].name
          << " not contained in any shallower span";
    }
  }
}

TEST_F(TraceTest, FuzzedSpanTreesAreWellFormedAcrossThreadCounts) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    set_mode(Mode::kOff);
    reset();
    set_mode(Mode::kSpans);
    core::set_global_threads(threads);

    std::atomic<std::size_t> emitted{0};
    core::global_pool().parallel_for(
        0, 48, 1, [&](std::size_t lo, std::size_t) {
          // Seeded by block index: the tree shape is deterministic per
          // block regardless of which worker runs it.
          std::mt19937 rng(static_cast<std::mt19937::result_type>(lo * 7919 + 1));
          emitted.fetch_add(emit_random_tree(rng, 0));
        });

    EXPECT_EQ(open_span_count(), 0u) << "threads " << threads;
    EXPECT_EQ(counter("fuzz.spans_emitted").value(), emitted.load());

    auto evs = events();
    ASSERT_EQ(evs.size(), emitted.load()) << "threads " << threads;
    std::map<std::uint64_t, std::vector<SpanEvent>> by_thread;
    for (const auto& e : evs) by_thread[e.thread].push_back(e);
    for (const auto& [tid, tevs] : by_thread) {
      (void)tid;
      check_thread_timeline(tevs);
      // events() contract: sorted by begin within a thread.
      for (std::size_t i = 1; i < tevs.size(); ++i)
        ASSERT_GE(tevs[i].begin_ns, tevs[i - 1].begin_ns);
    }
  }
  core::set_global_threads(0);
}

TEST_F(TraceTest, PoolWorkersCarryTheirLabels) {
  set_mode(Mode::kSpans);
  core::set_global_threads(3);
  // The submitting thread also claims blocks, so a single dispatch could in
  // principle finish before a worker wakes; the 1ms block body plus a few
  // attempts makes a worker-executed block practically certain.
  bool saw_worker_label = false;
  for (int attempt = 0; attempt < 5 && !saw_worker_label; ++attempt) {
    core::global_pool().parallel_for(0, 12, 1, [&](std::size_t, std::size_t) {
      SUGAR_TRACE_SPAN("fuzz.labeled_worker");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
    for (const auto& e : events())
      if (e.name == "fuzz.labeled_worker" &&
          e.thread_label.rfind("pool-worker-", 0) == 0)
        saw_worker_label = true;
  }
  EXPECT_TRUE(saw_worker_label);
  core::set_global_threads(0);
}

}  // namespace
}  // namespace sugar::core::trace
