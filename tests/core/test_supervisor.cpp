#include "core/supervisor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "ml/guard.h"

namespace sugar::core {
namespace {

namespace fs = std::filesystem;

CellSummary ok_summary(double accuracy = 0.5, double macro_f1 = 0.25) {
  CellSummary s;
  s.accuracy = accuracy;
  s.macro_f1 = macro_f1;
  return s;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("sugar_supervisor_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  SupervisorConfig config(const std::string& name = "test") {
    SupervisorConfig cfg;
    cfg.bench_name = name;
    cfg.json_path = (dir_ / ("BENCH_" + name + ".json")).string();
    cfg.quiet = true;
    cfg.backoff_base_s = 0;  // retries back off instantly in tests
    return cfg;
  }

  fs::path dir_;
};

TEST_F(SupervisorTest, OkCellJournalsAndFinalizeWritesValidArtifact) {
  auto cfg = config();
  RunSupervisor sup(cfg);
  auto outcome = sup.run_cell({"t", "row", "col", ""},
                              [](CellContext&) { return ok_summary(); });
  EXPECT_EQ(outcome.status, CellStatus::kOk);
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_TRUE(sup.finalize());

  auto doc = Json::parse(read_file(cfg.json_path));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("bench")->string_or(""), "test");
  EXPECT_EQ(doc->find("health")->find("ok")->number_or(0), 1);
  ASSERT_EQ(doc->find("cells")->items().size(), 1u);
  EXPECT_EQ(doc->find("cells")->items()[0].find("status")->string_or(""), "ok");

  std::size_t torn = 0;
  auto journal = load_jsonl(cfg.json_path + ".journal.jsonl", &torn);
  ASSERT_EQ(journal.size(), 1u);
  EXPECT_EQ(torn, 0u);
  EXPECT_EQ(journal[0].find("status")->string_or(""), "ok");
}

TEST_F(SupervisorTest, WatchdogCancelsCooperativelyHangingCell) {
  auto cfg = config();
  cfg.cell_timeout_s = 0.2;
  RunSupervisor sup(cfg);

  auto t0 = std::chrono::steady_clock::now();
  auto outcome = sup.run_cell({"t", "hang", "c", ""}, [](CellContext& ctx) {
    // A cooperative hang: spins forever but polls the watchdog token the
    // way the real epoch loops do.
    for (;;) {
      ml::throw_if_cancelled(ctx.cancel, "test-hang");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return ok_summary();
  });
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();

  EXPECT_EQ(outcome.status, CellStatus::kFailed);
  EXPECT_EQ(outcome.error, RunErrorKind::kTimeout);
  EXPECT_EQ(outcome.attempts, 1);  // timeouts are not retried
  EXPECT_NE(outcome.message.find("deadline"), std::string::npos);
  EXPECT_LT(elapsed, 5.0);  // unwound promptly, not stuck forever
  EXPECT_TRUE(sup.finalize());
}

TEST_F(SupervisorTest, DivergenceRetriesWithPerturbedSeedAndHalvedLr) {
  RunSupervisor sup(config());
  int calls = 0;
  auto outcome = sup.run_cell({"t", "diverge", "c", ""}, [&](CellContext& ctx) {
    ++calls;
    if (ctx.tweak.attempt == 0) {
      EXPECT_EQ(ctx.tweak.seed_bump, 0u);
      EXPECT_DOUBLE_EQ(ctx.tweak.lr_scale, 1.0);
      throw ml::DivergenceError("loss went NaN");
    }
    // The retry decorrelates the seed and halves the learning rate.
    EXPECT_NE(ctx.tweak.seed_bump, 0u);
    EXPECT_DOUBLE_EQ(ctx.tweak.lr_scale, 0.5);
    ScenarioOptions opts;
    opts.seed = 5;
    ctx.apply(opts);
    EXPECT_NE(opts.seed, 5u);
    EXPECT_DOUBLE_EQ(opts.lr_scale, 0.5);
    EXPECT_EQ(opts.cancel, ctx.cancel);
    return ok_summary();
  });
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(outcome.status, CellStatus::kOk);
  EXPECT_EQ(outcome.attempts, 2);
  EXPECT_EQ(sup.health().retried, 1);
}

TEST_F(SupervisorTest, DivergenceRetriesAreBounded) {
  auto cfg = config();
  cfg.max_retries = 2;
  RunSupervisor sup(cfg);
  int calls = 0;
  auto outcome = sup.run_cell({"t", "always-nan", "c", ""}, [&](CellContext&) {
    ++calls;
    throw ml::DivergenceError("always diverges");
    return ok_summary();
  });
  EXPECT_EQ(calls, 3);  // initial attempt + 2 retries
  EXPECT_EQ(outcome.status, CellStatus::kFailed);
  EXPECT_EQ(outcome.error, RunErrorKind::kDivergence);
  EXPECT_EQ(outcome.attempts, 3);
}

TEST_F(SupervisorTest, DeterministicErrorsAreNotRetried) {
  RunSupervisor sup(config());
  int empty_calls = 0, internal_calls = 0;

  auto empty = sup.run_cell({"t", "empty", "c", ""}, [&](CellContext&) {
    ++empty_calls;
    throw RunError(RunErrorKind::kEmptyPartition, "no samples");
    return ok_summary();
  });
  EXPECT_EQ(empty.error, RunErrorKind::kEmptyPartition);
  EXPECT_EQ(empty_calls, 1);

  auto internal = sup.run_cell({"t", "boom", "c", ""}, [&](CellContext&) {
    ++internal_calls;
    throw std::runtime_error("unexpected");
    return ok_summary();
  });
  EXPECT_EQ(internal.error, RunErrorKind::kInternal);
  EXPECT_EQ(internal_calls, 1);

  auto invariant = sup.run_cell({"t", "inv", "c", ""}, [&](CellContext&) {
    ml::check_internal(false, "shape mismatch");
    return ok_summary();
  });
  EXPECT_EQ(invariant.error, RunErrorKind::kInternal);
  EXPECT_EQ(sup.health().failed, 3);
}

TEST_F(SupervisorTest, ResumeSkipsOkCellsAndRecomputesFailedOnes) {
  auto cfg = config();
  {
    RunSupervisor sup(cfg);
    sup.run_cell({"t", "good", "c", "key-good"},
                 [](CellContext&) { return ok_summary(0.9, 0.8); });
    sup.run_cell({"t", "bad", "c", "key-bad"}, [](CellContext&) -> CellSummary {
      throw std::runtime_error("first run fails");
    });
    EXPECT_TRUE(sup.finalize());
  }

  auto cfg2 = cfg;
  cfg2.resume = true;
  RunSupervisor sup(cfg2);
  bool good_recomputed = false;
  auto good = sup.run_cell({"t", "good", "c", "key-good"}, [&](CellContext&) {
    good_recomputed = true;
    return ok_summary();
  });
  auto bad = sup.run_cell({"t", "bad", "c", "key-bad"},
                          [](CellContext&) { return ok_summary(0.4, 0.3); });

  EXPECT_FALSE(good_recomputed);  // journaled ok cell: skipped
  EXPECT_EQ(good.status, CellStatus::kOkFromJournal);
  EXPECT_DOUBLE_EQ(good.summary.accuracy, 0.9);  // summary restored
  EXPECT_EQ(bad.status, CellStatus::kOk);        // failed cell: recomputed
  EXPECT_EQ(sup.health().from_journal, 1);
  EXPECT_TRUE(sup.finalize());
}

TEST_F(SupervisorTest, FormatCellRendersOkAndFailed) {
  CellOutcome ok;
  ok.status = CellStatus::kOk;
  ok.summary = ok_summary(0.5, 0.25);
  EXPECT_EQ(RunSupervisor::format_cell(ok), "50.0 / 25.0");
  EXPECT_EQ(RunSupervisor::format_cell(ok, "custom"), "custom");

  CellOutcome failed;
  failed.status = CellStatus::kFailed;
  failed.error = RunErrorKind::kTimeout;
  EXPECT_EQ(RunSupervisor::format_cell(failed), "FAILED(timeout)");
  failed.error = RunErrorKind::kEmptyPartition;
  EXPECT_EQ(RunSupervisor::format_cell(failed, "x"), "FAILED(empty-partition)");
}

TEST_F(SupervisorTest, FinalizeLeavesNoTempFiles) {
  RunSupervisor sup(config());
  sup.run_cell({"t", "r", "c", ""}, [](CellContext&) { return ok_summary(); });
  EXPECT_TRUE(sup.finalize());
  // Only the artifact and the journal remain — no .tmp from the
  // temp-then-rename writes.
  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    ++entries;
    EXPECT_EQ(entry.path().string().find(".tmp"), std::string::npos)
        << entry.path();
  }
  EXPECT_EQ(entries, 2u);
}

// The acceptance scenario from the issue: a grid where one cell throws, one
// diverges on every attempt, and one hangs; the run must still complete,
// render FAILED for exactly those cells, write a valid artifact, and a
// resumed run must recompute only the failed cells.
TEST_F(SupervisorTest, MixedFailureGridDegradesGracefullyAndResumes) {
  auto cfg = config("grid");
  cfg.cell_timeout_s = 0.2;
  cfg.max_retries = 1;

  const std::vector<std::string> rows{"m1", "m2", "m3"};
  const std::vector<std::string> cols{"taskA", "taskB"};
  auto cell_fn = [](const std::string& row,
                    const std::string& col) -> RunSupervisor::CellFn {
    return [row, col](CellContext& ctx) {
      if (row == "m1" && col == "taskB") throw std::runtime_error("boom");
      if (row == "m2" && col == "taskA")
        throw ml::DivergenceError("NaN at epoch 0");
      if (row == "m3" && col == "taskB")
        for (;;) {
          ml::throw_if_cancelled(ctx.cancel, "grid-hang");
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      return ok_summary(0.7, 0.6);
    };
  };

  std::vector<std::vector<std::string>> rendered;
  {
    RunSupervisor sup(cfg);
    for (const auto& row : rows) {
      std::vector<std::string> line{row};
      for (const auto& col : cols) {
        auto outcome = sup.run_cell(
            {"grid", row, col, generic_cell_key({"grid", row, col})},
            cell_fn(row, col));
        line.push_back(RunSupervisor::format_cell(outcome));
      }
      rendered.push_back(std::move(line));
    }
    EXPECT_EQ(sup.health().cells, 6);
    EXPECT_EQ(sup.health().ok, 3);
    EXPECT_EQ(sup.health().failed, 3);
    EXPECT_TRUE(sup.finalize());
  }

  // Every row rendered; FAILED shows up for exactly the three bad cells.
  ASSERT_EQ(rendered.size(), 3u);
  EXPECT_EQ(rendered[0][1], "70.0 / 60.0");
  EXPECT_EQ(rendered[0][2], "FAILED(internal)");
  EXPECT_EQ(rendered[1][1], "FAILED(divergence)");
  EXPECT_EQ(rendered[1][2], "70.0 / 60.0");
  EXPECT_EQ(rendered[2][1], "70.0 / 60.0");
  EXPECT_EQ(rendered[2][2], "FAILED(timeout)");

  // The artifact survived the failures and is valid, complete JSON.
  auto doc = Json::parse(read_file(cfg.json_path));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("cells")->items().size(), 6u);
  EXPECT_EQ(doc->find("health")->find("failed")->number_or(0), 3);

  // Resume: ok cells come from the journal; only failed cells recompute.
  auto cfg2 = cfg;
  cfg2.resume = true;
  RunSupervisor sup(cfg2);
  int recomputed = 0;
  for (const auto& row : rows)
    for (const auto& col : cols) {
      auto outcome = sup.run_cell(
          {"grid", row, col, generic_cell_key({"grid", row, col})},
          [&](CellContext&) {
            ++recomputed;
            return ok_summary(0.9, 0.9);
          });
      EXPECT_TRUE(outcome.ok()) << row << "/" << col;
    }
  EXPECT_EQ(recomputed, 3);  // exactly the previously-failed cells
  EXPECT_EQ(sup.health().from_journal, 3);
  EXPECT_EQ(sup.health().failed, 0);
  EXPECT_TRUE(sup.finalize());
}

TEST_F(SupervisorTest, RunCellsParallelMatchesSequentialArtifact) {
  // The same 8-cell batch run sequentially and at max_parallel_cells=4 must
  // produce identical cells[] (submission order) and identical health, even
  // though completion order differs under concurrency.
  auto make_batch = [](std::vector<CellSpec>& specs,
                       std::vector<RunSupervisor::CellFn>& fns) {
    for (int i = 0; i < 8; ++i) {
      specs.push_back({"batch", "r" + std::to_string(i), "c",
                       generic_cell_key({"batch", std::to_string(i)})});
      fns.push_back([i](CellContext&) -> CellSummary {
        // Later cells finish first under concurrency.
        std::this_thread::sleep_for(std::chrono::milliseconds(2 * (8 - i)));
        if (i == 3) throw std::runtime_error("cell 3 fails");
        return ok_summary(0.1 * i, 0.05 * i);
      });
    }
  };

  auto run_with = [&](int parallel, const std::string& name) {
    auto cfg = config(name);
    cfg.max_parallel_cells = parallel;
    RunSupervisor sup(cfg);
    std::vector<CellSpec> specs;
    std::vector<RunSupervisor::CellFn> fns;
    make_batch(specs, fns);
    auto outcomes = sup.run_cells(specs, fns);
    EXPECT_TRUE(sup.finalize());
    return std::make_pair(std::move(outcomes), cfg.json_path);
  };

  auto [seq, seq_path] = run_with(1, "seq");
  auto [par, par_path] = run_with(4, "par");

  ASSERT_EQ(seq.size(), 8u);
  ASSERT_EQ(par.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(par[i].ok(), seq[i].ok()) << "cell " << i;
    EXPECT_DOUBLE_EQ(par[i].summary.accuracy, seq[i].summary.accuracy);
  }

  auto seq_doc = Json::parse(read_file(seq_path));
  auto par_doc = Json::parse(read_file(par_path));
  ASSERT_TRUE(seq_doc && par_doc);
  const auto& seq_cells = seq_doc->find("cells")->items();
  const auto& par_cells = par_doc->find("cells")->items();
  ASSERT_EQ(par_cells.size(), seq_cells.size());
  for (std::size_t i = 0; i < seq_cells.size(); ++i) {
    // Submission-order commit: row labels line up cell-for-cell.
    EXPECT_EQ(par_cells[i].find("row")->string_or("x"),
              seq_cells[i].find("row")->string_or("y"));
    EXPECT_EQ(par_cells[i].find("status")->string_or("x"),
              seq_cells[i].find("status")->string_or("y"));
  }
  for (const char* field : {"ok", "failed", "cells"})
    EXPECT_EQ(par_doc->find("health")->find(field)->number_or(-1),
              seq_doc->find("health")->find(field)->number_or(-2))
        << field;
}

TEST_F(SupervisorTest, ConcurrentJournalReplaysCleanly) {
  // A journal written by concurrent cells must be line-clean (no torn or
  // interleaved appends) and fully replayable by a resumed run.
  auto cfg = config("cjournal");
  cfg.max_parallel_cells = 6;
  {
    RunSupervisor sup(cfg);
    std::vector<CellSpec> specs;
    std::vector<RunSupervisor::CellFn> fns;
    for (int i = 0; i < 12; ++i) {
      specs.push_back({"cjournal", "r" + std::to_string(i), "c",
                       generic_cell_key({"cjournal", std::to_string(i)})});
      fns.push_back(
          [i](CellContext&) { return ok_summary(0.01 * i, 0.01 * i); });
    }
    auto outcomes = sup.run_cells(specs, fns);
    for (const auto& o : outcomes) EXPECT_TRUE(o.ok());
    EXPECT_TRUE(sup.finalize());
  }

  std::size_t torn = 0;
  auto journal = load_jsonl(cfg.json_path + ".journal.jsonl", &torn);
  EXPECT_EQ(torn, 0u);
  EXPECT_EQ(journal.size(), 12u);

  auto cfg2 = cfg;
  cfg2.resume = true;
  RunSupervisor sup(cfg2);
  int recomputed = 0;
  for (int i = 0; i < 12; ++i) {
    auto outcome =
        sup.run_cell({"cjournal", "r" + std::to_string(i), "c",
                      generic_cell_key({"cjournal", std::to_string(i)})},
                     [&](CellContext&) {
                       ++recomputed;
                       return ok_summary();
                     });
    EXPECT_EQ(outcome.status, CellStatus::kOkFromJournal) << i;
    EXPECT_DOUBLE_EQ(outcome.summary.accuracy, 0.01 * i);
  }
  EXPECT_EQ(recomputed, 0);
  EXPECT_EQ(sup.health().from_journal, 12);
  EXPECT_TRUE(sup.finalize());
}

TEST_F(SupervisorTest, ArtifactRecordsSubstrateConfigAndWallSeconds) {
  auto cfg = config("wall");
  cfg.max_parallel_cells = 3;
  RunSupervisor sup(cfg);
  sup.run_cell({"wall", "r", "c", ""}, [](CellContext&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return ok_summary();
  });
  EXPECT_TRUE(sup.finalize());

  auto doc = Json::parse(read_file(cfg.json_path));
  ASSERT_TRUE(doc.has_value());
  EXPECT_GE(doc->find("schema_version")->number_or(0), 2);
  const Json* config_obj = doc->find("config");
  ASSERT_NE(config_obj, nullptr);
  EXPECT_GE(config_obj->find("threads")->number_or(0), 1);
  EXPECT_EQ(config_obj->find("parallel_cells")->number_or(0), 3);
  const auto& cells = doc->find("cells")->items();
  ASSERT_EQ(cells.size(), 1u);
  const Json* wall = cells[0].find("wall_seconds");
  ASSERT_NE(wall, nullptr);
  EXPECT_GE(wall->number_or(-1), 0.005 - 1e-9);
}

TEST(BenchCli, ParsesStrictFlagsAndRejectsMalformedOnes) {
  std::string error;
  {
    const char* argv[] = {"bench", "--json", "out.json", "--cell-timeout-s",
                          "2.5",   "--max-retries", "0"};
    auto cfg = parse_bench_cli("t", 7, argv, error);
    ASSERT_TRUE(cfg.has_value()) << error;
    EXPECT_EQ(cfg->json_path, "out.json");
    EXPECT_EQ(cfg->journal_path, "out.json.journal.jsonl");
    EXPECT_DOUBLE_EQ(cfg->cell_timeout_s, 2.5);
    EXPECT_EQ(cfg->max_retries, 0);
    EXPECT_FALSE(cfg->resume);
  }
  {
    const char* argv[] = {"bench", "--resume", "j.jsonl"};
    auto cfg = parse_bench_cli("t", 3, argv, error);
    ASSERT_TRUE(cfg.has_value());
    EXPECT_TRUE(cfg->resume);
    EXPECT_EQ(cfg->journal_path, "j.jsonl");
    EXPECT_EQ(cfg->json_path, "BENCH_t.json");  // default artifact name
  }
  {
    // Whole-string parsing: "2x" is malformed, not 2.
    const char* argv[] = {"bench", "--cell-timeout-s", "2x"};
    EXPECT_FALSE(parse_bench_cli("t", 3, argv, error).has_value());
    EXPECT_NE(error.find("--cell-timeout-s"), std::string::npos);
  }
  {
    const char* argv[] = {"bench", "--cell-timeout-s", "-1"};
    EXPECT_FALSE(parse_bench_cli("t", 3, argv, error).has_value());
  }
  {
    const char* argv[] = {"bench", "--json"};
    EXPECT_FALSE(parse_bench_cli("t", 2, argv, error).has_value());
    EXPECT_NE(error.find("missing value"), std::string::npos);
  }
  {
    const char* argv[] = {"bench", "--wat"};
    EXPECT_FALSE(parse_bench_cli("t", 2, argv, error).has_value());
    EXPECT_NE(error.find("unknown flag"), std::string::npos);
  }
  {
    const char* argv[] = {"bench", "--parallel-cells", "4"};
    auto cfg = parse_bench_cli("t", 3, argv, error);
    ASSERT_TRUE(cfg.has_value()) << error;
    EXPECT_EQ(cfg->max_parallel_cells, 4);
  }
  {
    // Default stays fully sequential.
    const char* argv[] = {"bench"};
    auto cfg = parse_bench_cli("t", 1, argv, error);
    ASSERT_TRUE(cfg.has_value());
    EXPECT_EQ(cfg->max_parallel_cells, 1);
  }
  for (const char* bad : {"0", "-3", "2x", "abc"}) {
    const char* argv[] = {"bench", "--parallel-cells", bad};
    EXPECT_FALSE(parse_bench_cli("t", 3, argv, error).has_value())
        << "value: " << bad;
    EXPECT_NE(error.find("--parallel-cells"), std::string::npos);
  }
}

TEST(CellKeys, ScenarioKeyCoversResultAffectingOptionsOnly) {
  ScenarioOptions a;
  ScenarioOptions b = a;
  EXPECT_EQ(scenario_cell_key(dataset::TaskId::Tls120, "m", a),
            scenario_cell_key(dataset::TaskId::Tls120, "m", b));

  // Runtime knobs (supervisor-injected) must not change the fingerprint...
  b.lr_scale = 0.5;
  ml::CancelToken token;
  b.cancel = &token;
  EXPECT_EQ(scenario_cell_key(dataset::TaskId::Tls120, "m", a),
            scenario_cell_key(dataset::TaskId::Tls120, "m", b));

  // ...while every identity-bearing field does.
  ScenarioOptions c = a;
  c.seed = 6;
  EXPECT_NE(scenario_cell_key(dataset::TaskId::Tls120, "m", a),
            scenario_cell_key(dataset::TaskId::Tls120, "m", c));
  ScenarioOptions d = a;
  d.frozen = !d.frozen;
  EXPECT_NE(scenario_cell_key(dataset::TaskId::Tls120, "m", a),
            scenario_cell_key(dataset::TaskId::Tls120, "m", d));
  EXPECT_NE(scenario_cell_key(dataset::TaskId::Tls120, "m", a),
            scenario_cell_key(dataset::TaskId::VpnApp, "m", a));
  EXPECT_NE(scenario_cell_key(dataset::TaskId::Tls120, "m", a),
            scenario_cell_key(dataset::TaskId::Tls120, "m2", a));
}

TEST(CellKeys, ScenarioKeyCoversVariantAndPerturbation) {
  const auto key = [](const ScenarioOptions& o) {
    return scenario_cell_key(dataset::TaskId::VpnApp, "m", o);
  };
  ScenarioOptions base;
  const std::string base_key = key(base);

  // Identity variants and a zero perturbation leave the key at its legacy
  // form — checked-in goldens fingerprint cells with that shape.
  ScenarioOptions same = base;
  same.train_variant = trafficgen::TraceVariant{};
  same.test_variant = trafficgen::TraceVariant{};
  same.perturb = dataset::PerturbSpec{};
  EXPECT_EQ(key(same), base_key);
  EXPECT_EQ(base_key.find(";var_train="), std::string::npos);
  EXPECT_EQ(base_key.find(";perturb="), std::string::npos);

  // Every scenario-diversity knob must move the fingerprint.
  ScenarioOptions drift = base;
  drift.test_variant.drift_epoch = 2;
  EXPECT_NE(key(drift), base_key);
  ScenarioOptions fam = base;
  fam.train_variant.family = 1;
  EXPECT_NE(key(fam), base_key);
  EXPECT_NE(key(fam), key(drift));
  ScenarioOptions quic = base;
  quic.test_variant.quic_fraction = 0.5;
  EXPECT_NE(key(quic), base_key);
  ScenarioOptions imb = base;
  imb.train_variant.imbalance_gamma = 0.7;
  EXPECT_NE(key(imb), base_key);
  ScenarioOptions pert = base;
  pert.perturb.ttl_jitter = 8;
  EXPECT_NE(key(pert), base_key);
  ScenarioOptions pert2 = pert;
  pert2.perturb.window_jitter = 4096;
  EXPECT_NE(key(pert2), key(pert));

  // Train/test variants are fingerprinted separately: swapping the sides
  // is a different cell.
  ScenarioOptions ab = base;
  ab.test_variant.family = 1;
  ScenarioOptions ba = base;
  ba.train_variant.family = 1;
  EXPECT_NE(key(ab), key(ba));
}

// A changed perturbation (or variant) config must NOT resume from a
// checkpointed cell that ran under the old config: the journal fingerprint
// includes both, so the supervisor recomputes instead of serving stale
// results.
TEST_F(SupervisorTest, ChangedPerturbationInvalidatesJournaledCells) {
  auto cfg = config();
  ScenarioOptions clean;
  ScenarioOptions jittered;
  jittered.perturb.ttl_jitter = 8;
  jittered.perturb.window_jitter = 4096;
  const auto task = dataset::TaskId::VpnApp;
  {
    RunSupervisor sup(cfg);
    sup.run_cell({"t", "m", "clean", scenario_cell_key(task, "m", clean)},
                 [](CellContext&) { return ok_summary(0.9, 0.8); });
    EXPECT_TRUE(sup.finalize());
  }

  auto cfg2 = cfg;
  cfg2.resume = true;
  RunSupervisor sup(cfg2);
  // Identical config: served from the journal.
  bool recomputed = false;
  auto cached = sup.run_cell({"t", "m", "clean", scenario_cell_key(task, "m", clean)},
                             [&](CellContext&) {
                               recomputed = true;
                               return ok_summary(0.1, 0.1);
                             });
  EXPECT_FALSE(recomputed);
  EXPECT_EQ(cached.status, CellStatus::kOkFromJournal);

  // Same table/row/col but a perturbation now applies: must recompute.
  auto fresh = sup.run_cell({"t", "m", "clean", scenario_cell_key(task, "m", jittered)},
                            [](CellContext&) { return ok_summary(0.4, 0.3); });
  EXPECT_EQ(fresh.status, CellStatus::kOk);
  EXPECT_DOUBLE_EQ(fresh.summary.accuracy, 0.4);

  // And a drifted test variant is a third, distinct cell.
  ScenarioOptions drifted;
  drifted.test_variant.drift_epoch = 3;
  auto drift_cell = sup.run_cell(
      {"t", "m", "clean", scenario_cell_key(task, "m", drifted)},
      [](CellContext&) { return ok_summary(0.2, 0.2); });
  EXPECT_EQ(drift_cell.status, CellStatus::kOk);
  EXPECT_TRUE(sup.finalize());
}

}  // namespace
}  // namespace sugar::core
