#include <gtest/gtest.h>

#include <cstdlib>

#include "core/env.h"

namespace sugar::core {
namespace {

TEST(EnvConfig, ReadsScaleFromEnvironment) {
  ::setenv("SUGAR_SCALE", "0.5", 1);
  ::setenv("SUGAR_EPOCHS", "3", 1);
  ::setenv("SUGAR_SEED", "99", 1);
  auto cfg = EnvConfig::from_env();
  EnvConfig def;
  EXPECT_EQ(cfg.flows_per_class_tls, std::max<std::size_t>(2, def.flows_per_class_tls / 2));
  EXPECT_EQ(cfg.downstream_epochs, 3);
  EXPECT_EQ(cfg.seed, 99u);
  ::unsetenv("SUGAR_SCALE");
  ::unsetenv("SUGAR_EPOCHS");
  ::unsetenv("SUGAR_SEED");
}

TEST(EnvConfig, IgnoresInvalidValues) {
  ::setenv("SUGAR_SCALE", "not-a-number", 1);
  ::setenv("SUGAR_EPOCHS", "-5", 1);
  auto cfg = EnvConfig::from_env();
  EnvConfig def;
  EXPECT_EQ(cfg.flows_per_class_tls, def.flows_per_class_tls);
  EXPECT_EQ(cfg.downstream_epochs, def.downstream_epochs);
  ::unsetenv("SUGAR_SCALE");
  ::unsetenv("SUGAR_EPOCHS");
}

TEST(EnvConfig, RejectsTrailingGarbageStrictly) {
  // atoi-style parsing would read "12" out of "12x"; the strict parser
  // refuses the whole value and keeps the default instead.
  ::setenv("SUGAR_EPOCHS", "12x", 1);
  ::setenv("SUGAR_SEED", "99abc", 1);
  ::setenv("SUGAR_SCALE", "1.5qq", 1);
  auto cfg = EnvConfig::from_env();
  EnvConfig def;
  EXPECT_EQ(cfg.downstream_epochs, def.downstream_epochs);
  EXPECT_EQ(cfg.seed, def.seed);
  EXPECT_EQ(cfg.flows_per_class_tls, def.flows_per_class_tls);
  ::unsetenv("SUGAR_EPOCHS");
  ::unsetenv("SUGAR_SEED");
  ::unsetenv("SUGAR_SCALE");
}

TEST(BenchmarkEnv, CleaningReportsPerSource) {
  EnvConfig cfg;
  cfg.flows_per_class_iscx = 3;
  cfg.flows_per_class_ustc = 3;
  cfg.flows_per_class_tls = 2;
  cfg.backbone_flows = 20;
  BenchmarkEnv env(cfg);

  const auto& iscx = env.cleaning_report(dataset::SourceDataset::IscxVpn);
  EXPECT_NEAR(iscx.removed_spurious_fraction(), cfg.iscx_spurious, 0.04);
  const auto& ustc = env.cleaning_report(dataset::SourceDataset::UstcTfc);
  EXPECT_NEAR(ustc.removed_spurious_fraction(), cfg.ustc_spurious, 0.05);
  const auto& cstn = env.cleaning_report(dataset::SourceDataset::CstnTls);
  EXPECT_EQ(cstn.removed_spurious_total(), 0u) << "CSTN ships pre-cleaned";
}

TEST(BenchmarkEnv, BackboneCachedAndUnlabeled) {
  EnvConfig cfg;
  cfg.backbone_flows = 25;
  BenchmarkEnv env(cfg);
  const auto& a = env.backbone();
  const auto& b = env.backbone();
  EXPECT_EQ(&a, &b);
  EXPECT_GT(a.size(), 100u);
  for (int l : a.label) EXPECT_EQ(l, 0);
}

TEST(BenchmarkEnv, SeedChangesData) {
  EnvConfig c1;
  c1.flows_per_class_tls = 2;
  EnvConfig c2 = c1;
  c2.seed = 2;
  BenchmarkEnv e1(c1), e2(c2);
  const auto& d1 = e1.task_dataset(dataset::TaskId::Tls120);
  const auto& d2 = e2.task_dataset(dataset::TaskId::Tls120);
  bool identical = d1.size() == d2.size();
  if (identical)
    for (std::size_t i = 0; i < d1.size() && identical; ++i)
      identical = d1.packets[i].data == d2.packets[i].data;
  EXPECT_FALSE(identical);
}

}  // namespace
}  // namespace sugar::core
