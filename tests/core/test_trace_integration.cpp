// Integration coverage for the trace wiring: the supervisor's schema-4
// artifact (trace section, per-cell counter deltas, chrome trace file),
// the off-mode guarantee that artifacts stay schema 2 with no trace keys,
// the --trace CLI flag, and an end-to-end tiny-scale shallow scenario that
// must light up the expected span names and counter keys across env ->
// dataset -> pipeline -> ml.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/env.h"
#include "core/pipeline.h"
#include "core/supervisor.h"
#include "core/trace.h"

namespace sugar::core {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

CellSummary ok_summary() {
  CellSummary s;
  s.accuracy = 0.5;
  s.macro_f1 = 0.25;
  return s;
}

/// Trace-clean fixture with a per-test temp dir: every test starts with an
/// empty registry in off mode and cannot leak a mode into later tests.
class TraceIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::set_mode(trace::Mode::kOff);
    trace::reset();
    dir_ = fs::temp_directory_path() /
           ("sugar_trace_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    trace::set_mode(trace::Mode::kOff);
    trace::reset();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  SupervisorConfig config(const std::string& name) {
    SupervisorConfig cfg;
    cfg.bench_name = name;
    cfg.json_path = (dir_ / ("BENCH_" + name + ".json")).string();
    cfg.quiet = true;
    cfg.backoff_base_s = 0;
    return cfg;
  }

  static std::map<std::string, trace::PhaseStat> phases_by_name() {
    std::map<std::string, trace::PhaseStat> out;
    for (auto& s : trace::phase_stats()) out[s.name] = s;
    return out;
  }

  static std::map<std::string, std::uint64_t> counters_by_name() {
    std::map<std::string, std::uint64_t> out;
    for (auto& c : trace::counters_snapshot()) out[c.name] = c.value;
    return out;
  }

  fs::path dir_;
};

TEST_F(TraceIntegrationTest, OffModeArtifactStaysSchema2WithNoTraceKeys) {
  auto cfg = config("off");
  RunSupervisor sup(cfg);
  auto outcome =
      sup.run_cell({"off", "r", "c", ""}, [](CellContext&) { return ok_summary(); });
  EXPECT_TRUE(outcome.ok());
  EXPECT_TRUE(sup.finalize());

  auto doc = Json::parse(read_file(cfg.json_path));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("schema_version")->number_or(0), 2);
  EXPECT_EQ(doc->find("trace"), nullptr);
  for (const Json& cell : doc->find("cells")->items())
    EXPECT_EQ(cell.find("trace"), nullptr);
}

TEST_F(TraceIntegrationTest, TracePathForcesSpansAndWritesSchema4PlusChrome) {
  auto cfg = config("traced");
  cfg.trace_path = (dir_ / "trace.json").string();
  RunSupervisor sup(cfg);
  EXPECT_EQ(trace::mode(), trace::Mode::kSpans)
      << "a trace_path must force spans mode";

  std::vector<CellSpec> specs;
  std::vector<RunSupervisor::CellFn> fns;
  for (int i = 0; i < 3; ++i) {
    specs.push_back({"traced", "r" + std::to_string(i), "c",
                     generic_cell_key({"traced", std::to_string(i)})});
    fns.push_back([](CellContext&) {
      SUGAR_TRACE_SPAN("test.cell_body");
      SUGAR_TRACE_COUNT("test.cell_work", 11);
      return ok_summary();
    });
  }
  auto outcomes = sup.run_cells(specs, fns);
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.ok());
    // Per-cell counter deltas were captured (at least test.cell_work moved).
    bool saw_work = false;
    for (const Json& d : o.trace_counters.items())
      if (d.find("name")->string_or("") == "test.cell_work") {
        saw_work = true;
        EXPECT_GE(d.find("delta")->number_or(0), 11);
      }
    EXPECT_TRUE(saw_work);
  }
  EXPECT_TRUE(sup.finalize());

  auto doc = Json::parse(read_file(cfg.json_path));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("schema_version")->number_or(0), 4);
  const Json* trace_sec = doc->find("trace");
  ASSERT_NE(trace_sec, nullptr);
  EXPECT_EQ(trace_sec->find("mode")->string_or(""), "spans");

  std::vector<std::string> phase_names;
  for (const Json& p : trace_sec->find("phases")->items())
    phase_names.push_back(p.find("name")->string_or(""));
  EXPECT_NE(std::find(phase_names.begin(), phase_names.end(), "supervisor.cell"),
            phase_names.end());
  EXPECT_NE(std::find(phase_names.begin(), phase_names.end(), "test.cell_body"),
            phase_names.end());

  std::map<std::string, double> counter_values;
  for (const Json& c : trace_sec->find("counters")->items())
    counter_values[c.find("name")->string_or("")] = c.find("value")->number_or(-1);
  EXPECT_EQ(counter_values["supervisor.cells_started"], 3);
  EXPECT_EQ(counter_values["supervisor.cells_ok"], 3);
  EXPECT_EQ(counter_values["test.cell_work"], 33);

  for (const Json& cell : doc->find("cells")->items()) {
    const Json* cell_trace = cell.find("trace");
    ASSERT_NE(cell_trace, nullptr);
    ASSERT_NE(cell_trace->find("counters"), nullptr);
    EXPECT_TRUE(cell_trace->find("counters")->is_array());
  }

  // The chrome trace landed beside the artifact and is loadable JSON with
  // complete events.
  auto chrome = Json::parse(read_file(cfg.trace_path));
  ASSERT_TRUE(chrome.has_value());
  const Json* events = chrome->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  std::size_t complete = 0;
  bool saw_cell_span = false;
  for (const Json& e : events->items()) {
    if (e.find("ph")->string_or("") != "X") continue;
    ++complete;
    EXPECT_GE(e.find("ts")->number_or(-1), 0);
    EXPECT_GE(e.find("dur")->number_or(-1), 0);
    if (e.find("name")->string_or("") == "supervisor.cell") saw_cell_span = true;
  }
  EXPECT_GE(complete, 6u);  // >= 3 supervisor.cell + 3 test.cell_body
  EXPECT_TRUE(saw_cell_span);
}

TEST_F(TraceIntegrationTest, FailedCellsCountIntoTheFailureCounter) {
  auto cfg = config("tracefail");
  cfg.trace_path = (dir_ / "trace.json").string();
  cfg.max_retries = 0;
  RunSupervisor sup(cfg);
  sup.run_cell({"tracefail", "bad", "c", ""}, [](CellContext&) -> CellSummary {
    throw std::runtime_error("boom");
  });
  auto counters = counters_by_name();
  EXPECT_EQ(counters["supervisor.cells_started"], 1u);
  EXPECT_EQ(counters["supervisor.cells_failed"], 1u);
  EXPECT_EQ(counters["supervisor.cells_ok"], 0u);
  EXPECT_TRUE(sup.finalize());
}

TEST_F(TraceIntegrationTest, ParseBenchCliAcceptsTraceFlag) {
  std::string error;
  {
    const char* argv[] = {"bench", "--trace", "out_trace.json"};
    auto cfg = parse_bench_cli("t", 3, argv, error);
    ASSERT_TRUE(cfg.has_value()) << error;
    EXPECT_EQ(cfg->trace_path, "out_trace.json");
  }
  {
    const char* argv[] = {"bench", "--trace"};
    EXPECT_FALSE(parse_bench_cli("t", 2, argv, error).has_value());
    EXPECT_NE(error.find("--trace"), std::string::npos);
  }
  {
    const char* argv[] = {"bench"};
    auto cfg = parse_bench_cli("t", 1, argv, error);
    ASSERT_TRUE(cfg.has_value());
    EXPECT_TRUE(cfg->trace_path.empty());
  }
}

// The end-to-end check: a tiny 2-class-ish shallow scenario must light up
// the span taxonomy documented in DESIGN.md §12 across every layer it
// crosses — env generation, cleaning, split + audit, featurization, the
// train/eval phase, and the forest kernels — plus the hot-path counters.
TEST_F(TraceIntegrationTest, EndToEndShallowScenarioEmitsTaxonomySpans) {
  trace::set_mode(trace::Mode::kSpans);

  EnvConfig ec;
  ec.seed = 1;
  ec.flows_per_class_iscx = 3;
  ec.backbone_flows = 4;
  ec.max_train_packets = 400;
  ec.max_test_packets = 200;
  BenchmarkEnv env(ec);

  ScenarioOptions opts;
  opts.split = dataset::SplitPolicy::PerFlow;
  opts.seed = 1;
  auto result = run_shallow_scenario(env, dataset::TaskId::VpnBinary,
                                     ShallowKind::RandomForest, true, opts);
  EXPECT_GT(result.metrics.accuracy, 0.0);

  auto phases = phases_by_name();
  for (const char* span :
       {"env.generate_dataset", "dataset.clean_trace", "dataset.split",
        "dataset.audit_split", "pipeline.partition", "pipeline.featurize",
        "pipeline.train_eval", "featurize.header", "ml.forest.fit",
        "ml.forest.predict"}) {
    ASSERT_TRUE(phases.count(span)) << "missing span: " << span;
    EXPECT_GE(phases[span].count, 1u) << span;
  }
  // Nested spans can never out-wall their parent phase.
  EXPECT_LE(phases["ml.forest.fit"].wall_ns, phases["pipeline.train_eval"].wall_ns);

  auto counters = counters_by_name();
  for (const char* ctr : {"clean.packets_in", "clean.bytes_parsed",
                          "featurize.packets", "ml.trees_fit",
                          "audit.test_probes"}) {
    ASSERT_TRUE(counters.count(ctr)) << "missing counter: " << ctr;
  }
  EXPECT_GT(counters["clean.packets_in"], 0u);
  EXPECT_GT(counters["featurize.packets"], 0u);
  EXPECT_GT(counters["ml.trees_fit"], 0u);

  // Balanced RAII: nothing left open after the scenario returned.
  EXPECT_EQ(trace::open_span_count(), 0u);
}

TEST_F(TraceIntegrationTest, SummaryModeScenarioKeepsAggregatesOnly) {
  trace::set_mode(trace::Mode::kSummary);

  EnvConfig ec;
  ec.seed = 2;
  ec.flows_per_class_iscx = 3;
  BenchmarkEnv env(ec);
  ScenarioOptions opts;
  opts.seed = 2;
  auto result = run_shallow_scenario(env, dataset::TaskId::VpnBinary,
                                     ShallowKind::RandomForest, true, opts);
  EXPECT_GT(result.metrics.accuracy, 0.0);

  EXPECT_FALSE(trace::phase_stats().empty());
  EXPECT_TRUE(trace::events().empty())
      << "summary mode must not retain timeline events";
}

}  // namespace
}  // namespace sugar::core
