// LatencyHistogram bucket geometry and saturation, plus the ServeCounters
// value-vector round trip the snapshot codec depends on. The bucket
// boundaries are pinned explicitly: bucket b holds [2^(b-1), 2^b), so a
// refactor that shifts the mapping (and silently reshapes every latency
// percentile in the artifact record) fails here first.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "serve/stats.h"

namespace sugar::serve {
namespace {

constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();

TEST(LatencyHistogram, BucketBoundariesArePowersOfTwo) {
  // Bucket 0 is [0, 1); every later bucket b is [2^(b-1), 2^b).
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1), 1u);
  for (std::size_t b = 1; b < 63; ++b) {
    const std::uint64_t lo = std::uint64_t{1} << (b - 1);
    const std::uint64_t hi = (std::uint64_t{1} << b) - 1;
    EXPECT_EQ(LatencyHistogram::bucket_of(lo), b) << "lower edge of " << b;
    EXPECT_EQ(LatencyHistogram::bucket_of(hi), b) << "upper edge of " << b;
    EXPECT_EQ(LatencyHistogram::bucket_of(hi + 1), b + 1) << "past " << b;
  }
}

TEST(LatencyHistogram, TopBucketAbsorbsEverything) {
  EXPECT_EQ(LatencyHistogram::bucket_of(std::uint64_t{1} << 63),
            LatencyHistogram::kBuckets - 1);
  EXPECT_EQ(LatencyHistogram::bucket_of(kMax), LatencyHistogram::kBuckets - 1);
}

TEST(LatencyHistogram, RecordLandsInItsBucket) {
  LatencyHistogram h;
  h.record(0);
  h.record(1);
  h.record(1023);   // bucket 10
  h.record(1024);   // bucket 11
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(10), 1u);
  EXPECT_EQ(h.bucket_count(11), 1u);
}

TEST(LatencyHistogram, RecordSaturatesAtTop) {
  LatencyHistogram h;
  std::array<std::uint64_t, LatencyHistogram::kBuckets> counts{};
  counts[3] = kMax;
  h.restore(counts);
  EXPECT_EQ(h.bucket_count(3), kMax);
  EXPECT_EQ(h.count(), kMax);
  h.record(5);  // bucket 3 again: both the bucket and the total must pin
  EXPECT_EQ(h.bucket_count(3), kMax);
  EXPECT_EQ(h.count(), kMax);
}

TEST(LatencyHistogram, MergeSaturatesPerBucket) {
  LatencyHistogram a, b;
  std::array<std::uint64_t, LatencyHistogram::kBuckets> counts{};
  counts[7] = kMax - 1;
  a.restore(counts);
  b.record(100);  // bucket 7
  b.record(100);
  a.merge(b);
  EXPECT_EQ(a.bucket_count(7), kMax);
  EXPECT_EQ(a.count(), kMax);
}

TEST(LatencyHistogram, RestoreRecomputesTotalSaturating) {
  LatencyHistogram h;
  std::array<std::uint64_t, LatencyHistogram::kBuckets> counts{};
  counts[0] = kMax;
  counts[1] = 17;  // sum would wrap; total must clamp instead
  h.restore(counts);
  EXPECT_EQ(h.count(), kMax);
  EXPECT_EQ(h.bucket_count(1), 17u);
}

TEST(ServeCounters, ValuesRoundTrip) {
  ServeCounters c;
  c.packets_offered = 10;
  c.flows_created = 3;
  c.watchdog_quarantines = 2;
  c.fallback_classified = 5;
  ServeCounters restored;
  ASSERT_TRUE(restored.from_values(c.to_values()));
  EXPECT_TRUE(c.monotone_le(restored) && restored.monotone_le(c));
  EXPECT_EQ(restored.watchdog_quarantines, 2u);
  EXPECT_EQ(restored.fallback_classified, 5u);
}

TEST(ServeCounters, FromValuesRejectsWrongArity) {
  ServeCounters c;
  auto values = c.to_values();
  values.pop_back();
  EXPECT_FALSE(c.from_values(values));
  values.push_back(0);
  values.push_back(0);
  EXPECT_FALSE(c.from_values(values));
}

}  // namespace
}  // namespace sugar::serve
