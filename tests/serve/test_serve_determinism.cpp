// Determinism contract of the online engine: the same packet stream under
// the same offer()/pump() schedule must yield identical per-flow verdict
// sequences and identical eviction/shed counters at SUGAR_THREADS = 1, 2
// and 7 (an odd width catches remainder-partition bugs). Shard assignment
// is a pure function of the flow key and eviction runs on stream virtual
// time, so only the latency histogram may vary across widths — checked
// both in a calm regime and under overload with the shed ladder engaged.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/threadpool.h"
#include "net/fault.h"
#include "serve/engine.h"
#include "trafficgen/datasets.h"

namespace sugar::serve {
namespace {

/// Rebuilds the global pool at a given width for the test body, then
/// restores the env-derived width so later tests see the default substrate.
class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n) { core::set_global_threads(n); }
  ~ScopedThreads() { core::set_global_threads(0); }
};

const std::size_t kWidths[] = {1, 2, 7};

std::vector<net::Packet> sample_stream(double spurious) {
  trafficgen::GenOptions opts;
  opts.seed = 2026;
  opts.flows_per_class = 3;
  opts.spurious_fraction = spurious;
  return trafficgen::generate_iscx_vpn(opts).packets;
}

std::shared_ptr<const FlowClassifier> parity_classifier() {
  FlowFeatureConfig fcfg;
  const std::size_t dim = flow_feature_dim(fcfg);
  // Label depends on the feature vector so a single out-of-order or
  // misattributed packet flips the verdict.
  return std::make_shared<HeuristicClassifier>(dim, 4, [dim](const float* f) {
    float acc = 0.0f;
    for (std::size_t d = 0; d < dim; ++d) acc += f[d];
    return static_cast<int>(static_cast<std::uint64_t>(acc) % 4);
  });
}

std::string describe(const Verdict& v) {
  std::ostringstream os;
  os << std::string(reinterpret_cast<const char*>(&v.key), sizeof v.key)
     << '|' << v.label << '|' << v.packets << '|' << v.feature_packets << '|'
     << to_string(v.reason) << '|' << v.first_ts_usec << '|' << v.last_ts_usec;
  return os.str();
}

struct RunResult {
  std::vector<std::string> verdicts;
  ServeCounters counters;
  std::uint64_t current_flows = 0;
  std::uint64_t peak_flows = 0;
  std::uint64_t peak_queue_depth = 0;
};

bool counters_equal(const ServeCounters& a, const ServeCounters& b) {
  return a.monotone_le(b) && b.monotone_le(a);
}

/// Offers packets per round from the deterministic `per_round(round)`
/// schedule, then pumps once, until the stream is consumed; offer()
/// rejections are part of the deterministic record (queue depth is itself
/// a pure function of the schedule).
using Schedule = std::function<std::size_t(std::size_t round)>;

RunResult run_stream(const std::vector<net::Packet>& stream,
                     const ServeConfig& cfg, const Schedule& per_round,
                     std::size_t width) {
  ScopedThreads threads(width);
  ServeEngine engine(cfg, parity_classifier());
  std::size_t i = 0;
  for (std::size_t round = 0; i < stream.size(); ++round) {
    const std::size_t n = per_round(round);
    for (std::size_t k = 0; k < n && i < stream.size(); ++k, ++i)
      engine.offer(stream[i]);  // full queue => counted rejection, move on
    engine.pump();
  }
  engine.drain();
  engine.flush();

  RunResult out;
  for (const auto& v : engine.take_verdicts()) out.verdicts.push_back(describe(v));
  const ServeStats stats = engine.stats();
  out.counters = stats.counters;
  out.current_flows = stats.gauges.current_flows;
  out.peak_flows = stats.gauges.peak_flows;
  out.peak_queue_depth = stats.gauges.peak_queue_depth;
  return out;
}

void expect_same(const RunResult& ref, const RunResult& got, std::size_t width) {
  EXPECT_TRUE(counters_equal(ref.counters, got.counters))
      << "counters differ at width " << width;
  EXPECT_EQ(ref.current_flows, got.current_flows) << "width " << width;
  EXPECT_EQ(ref.peak_flows, got.peak_flows) << "width " << width;
  EXPECT_EQ(ref.peak_queue_depth, got.peak_queue_depth) << "width " << width;
  ASSERT_EQ(ref.verdicts.size(), got.verdicts.size()) << "width " << width;
  for (std::size_t i = 0; i < ref.verdicts.size(); ++i)
    ASSERT_EQ(ref.verdicts[i], got.verdicts[i])
        << "verdict " << i << " differs at width " << width;
}

ServeConfig calm_config() {
  ServeConfig cfg;
  cfg.table.shards = 4;
  cfg.table.max_flows = 512;
  cfg.queue_capacity = 1024;
  cfg.batch_size = 64;
  cfg.record_verdicts = true;
  return cfg;
}

const Schedule kSteady64 = [](std::size_t) { return std::size_t{64}; };
const Schedule kSteady48 = [](std::size_t) { return std::size_t{48}; };

TEST(ServeDeterminism, CalmStreamSameVerdictsAtAllWidths) {
  const auto stream = sample_stream(/*spurious=*/0.05);
  const auto ref = run_stream(stream, calm_config(), kSteady64, 1);
  ASSERT_FALSE(ref.verdicts.empty());
  EXPECT_GT(ref.counters.classified_at_n, 0u);
  for (const std::size_t width : kWidths)
    expect_same(ref, run_stream(stream, calm_config(), kSteady64, width), width);
}

TEST(ServeDeterminism, OverloadShedLadderSameCountsAtAllWidths) {
  const auto stream = sample_stream(/*spurious=*/0.05);
  ServeConfig cfg = calm_config();
  cfg.table.shards = 2;
  cfg.table.max_flows = 16;     // tiny table: ladder stages 2/3 engage
  cfg.queue_capacity = 96;      // small queue: offer() rejections too
  cfg.batch_size = 32;
  cfg.idle_timeout_usec = 3'600'000'000ull;  // keep the table full
  cfg.table_hi = 0.5;  // the tiny stream only carries ~20 distinct flows;
  cfg.table_lo = 0.25; // low watermarks make stages 2/3 reachable
  // Warm-up rounds below the queue watermark fill the tiny table (stage 2
  // early-classify engages on occupancy); then a sustained 5x burst
  // overflows the queue (offer() rejections, stages 1/3).
  const Schedule schedule = [](std::size_t round) {
    return std::size_t{round < 8 ? 24u : 160u};
  };
  const auto ref = run_stream(stream, cfg, schedule, 1);
  EXPECT_GT(ref.counters.shed_stage_enters, 0u);
  EXPECT_GT(ref.counters.packets_rejected, 0u);
  EXPECT_GT(ref.counters.evicted_early + ref.counters.evicted_sampled, 0u);
  for (const std::size_t width : kWidths)
    expect_same(ref, run_stream(stream, cfg, schedule, width), width);
}

TEST(ServeDeterminism, FaultedStreamsStayDeterministic) {
  const auto base = sample_stream(/*spurious=*/0.05);
  for (auto fault : {net::SequenceFault::ReorderWindow,
                     net::SequenceFault::DuplicateDelivery,
                     net::SequenceFault::TruncateMidFlow}) {
    net::FaultInjector inj(31);
    const auto stream = inj.mutate_sequence(base, fault);
    const auto ref = run_stream(stream, calm_config(), kSteady48, 1);
    for (const std::size_t width : kWidths)
      expect_same(ref, run_stream(stream, calm_config(), kSteady48, width), width);
  }
}

}  // namespace
}  // namespace sugar::serve
