// ShardedFlowTable unit tests: admission and the hard capacity bound,
// feature accumulation freezing at classify_at, LRU ordering under the
// idle / ready / tail eviction sweeps, and the bytes_cap() arithmetic the
// memory-bound story rests on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/flow_table.h"

namespace sugar::serve {
namespace {

net::FlowKey make_key(std::uint16_t n) {
  net::FlowKey key;
  key.a_ip.bytes[14] = static_cast<std::uint8_t>(n >> 8);
  key.a_ip.bytes[15] = static_cast<std::uint8_t>(n & 0xFF);
  key.b_ip.bytes[15] = 1;
  key.a_port = n;
  key.b_port = 443;
  key.proto = 6;
  return key;
}

FlowTableConfig small_config() {
  FlowTableConfig cfg;
  cfg.shards = 1;  // single shard: LRU order fully observable
  cfg.max_flows = 4;
  cfg.feature_dim = 3;
  cfg.classify_at = 2;
  return cfg;
}

TEST(FlowTable, CreateTouchAndFeatureFreeze) {
  ShardedFlowTable table(small_config());
  const auto key = make_key(1);
  const float f1[3] = {1, 2, 3}, f2[3] = {10, 20, 30}, f3[3] = {100, 200, 300};

  auto r1 = table.touch(0, key, 1000, f1, true);
  EXPECT_EQ(r1.status, ShardedFlowTable::TouchStatus::kCreated);
  EXPECT_FALSE(r1.ready);

  auto r2 = table.touch(0, key, 2000, f2, true);
  EXPECT_EQ(r2.status, ShardedFlowTable::TouchStatus::kExisting);
  EXPECT_TRUE(r2.ready);  // hit classify_at = 2

  // Third packet arrives after the freeze: counted, not accumulated.
  auto r3 = table.touch(0, key, 3000, f3, true);
  EXPECT_FALSE(r3.ready);

  const FlowView v = table.view(0, r3.slot);
  EXPECT_EQ(v.packets, 3u);
  EXPECT_EQ(v.feature_packets, 2u);
  EXPECT_EQ(v.first_ts_usec, 1000u);
  EXPECT_EQ(v.last_ts_usec, 3000u);
  EXPECT_FLOAT_EQ(v.feature_sum[0], 11.0f);
  EXPECT_FLOAT_EQ(v.feature_sum[1], 22.0f);
  EXPECT_FLOAT_EQ(v.feature_sum[2], 33.0f);
}

TEST(FlowTable, AdmissionControlAndHardBound) {
  ShardedFlowTable table(small_config());
  for (std::uint16_t i = 0; i < 4; ++i)
    EXPECT_EQ(table.touch(0, make_key(i), i, nullptr, true).status,
              ShardedFlowTable::TouchStatus::kCreated);
  EXPECT_EQ(table.live(0), 4u);

  // At capacity: a new flow is refused, an existing one still progresses.
  EXPECT_EQ(table.touch(0, make_key(9), 10, nullptr, true).status,
            ShardedFlowTable::TouchStatus::kFull);
  EXPECT_EQ(table.touch(0, make_key(0), 11, nullptr, true).status,
            ShardedFlowTable::TouchStatus::kExisting);

  // admit_new = false (shed ladder): unknown keys refused regardless.
  EXPECT_EQ(table.touch(0, make_key(10), 12, nullptr, false).status,
            ShardedFlowTable::TouchStatus::kNotAdmitted);
  EXPECT_EQ(table.live(0), 4u);
}

TEST(FlowTable, IdleEvictionWalksColdTail) {
  ShardedFlowTable table(small_config());
  table.touch(0, make_key(1), 1000, nullptr, true);
  table.touch(0, make_key(2), 5000, nullptr, true);
  table.touch(0, make_key(3), 9000, nullptr, true);

  std::vector<std::uint64_t> evicted;
  // Idle threshold 3000 at now=9000: flows last seen <= 6000 expire.
  auto n = table.evict_idle(0, 9000, 3000,
                            [&](const FlowView& v) { evicted.push_back(v.last_ts_usec); });
  EXPECT_EQ(n, 2u);
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_EQ(evicted[0], 1000u);  // coldest first
  EXPECT_EQ(evicted[1], 5000u);
  EXPECT_EQ(table.live(0), 1u);

  // Touching a flow rescues it from the tail.
  table.touch(0, make_key(3), 9500, nullptr, true);
  EXPECT_EQ(table.evict_idle(0, 12000, 3000, nullptr), 0u);
}

TEST(FlowTable, ReadyEvictionSkipsShortFlows) {
  auto cfg = small_config();
  cfg.classify_at = 8;
  ShardedFlowTable table(cfg);
  const float f[3] = {1, 1, 1};
  // Flow 1: 3 packets (eligible at min_packets=2); flow 2: 1 packet.
  for (int i = 0; i < 3; ++i) table.touch(0, make_key(1), 100 + i, f, true);
  table.touch(0, make_key(2), 200, f, true);

  std::vector<std::uint32_t> evicted;
  auto n = table.evict_ready(0, /*target_live=*/0, /*min_packets=*/2,
                             /*max_scan=*/16,
                             [&](const FlowView& v) { evicted.push_back(v.packets); });
  EXPECT_EQ(n, 1u);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 3u);  // only the classifiable flow went
  EXPECT_EQ(table.live(0), 1u);
}

TEST(FlowTable, TailEvictionAndFlush) {
  ShardedFlowTable table(small_config());
  for (std::uint16_t i = 0; i < 3; ++i)
    table.touch(0, make_key(i), i * 100, nullptr, true);

  std::uint64_t first_evicted = 0;
  EXPECT_TRUE(table.evict_tail(
      0, [&](const FlowView& v) { first_evicted = v.first_ts_usec; }));
  EXPECT_EQ(first_evicted, 0u);  // coldest flow

  EXPECT_EQ(table.evict_all(0, nullptr), 2u);
  EXPECT_EQ(table.live(0), 0u);
  EXPECT_FALSE(table.evict_tail(0, nullptr));
}

TEST(FlowTable, SlotRecyclingAfterEviction) {
  ShardedFlowTable table(small_config());
  const float f[3] = {5, 5, 5};
  for (int round = 0; round < 10; ++round) {
    for (std::uint16_t i = 0; i < 4; ++i)
      table.touch(0, make_key(static_cast<std::uint16_t>(round * 16 + i)),
                  round, f, true);
    EXPECT_EQ(table.live(0), 4u);
    table.evict_all(0, nullptr);
  }
  // Recycled slots must come back zeroed.
  auto r = table.touch(0, make_key(999), 1, f, true);
  const FlowView v = table.view(0, r.slot);
  EXPECT_EQ(v.packets, 1u);
  EXPECT_FLOAT_EQ(v.feature_sum[0], 5.0f);
  EXPECT_FALSE(v.classified);
}

TEST(FlowTable, ShardOfIsPureFunctionOfKey) {
  FlowTableConfig cfg;
  cfg.shards = 7;
  cfg.max_flows = 70;
  ShardedFlowTable table(cfg);
  for (std::uint16_t i = 0; i < 100; ++i) {
    const auto key = make_key(i);
    const std::size_t s = table.shard_of(key);
    EXPECT_LT(s, table.shard_count());
    EXPECT_EQ(s, table.shard_of(key));  // stable
  }
}

TEST(FlowTable, BytesCapBoundsResidency) {
  FlowTableConfig cfg;
  cfg.shards = 4;
  cfg.max_flows = 64;
  cfg.feature_dim = 10;
  ShardedFlowTable table(cfg);
  EXPECT_GT(table.bytes_per_flow(), 10 * sizeof(float));
  EXPECT_EQ(table.bytes_cap(),
            table.shard_count() * table.shard_capacity() * table.bytes_per_flow());
  EXPECT_EQ(table.bytes_resident(), 0u);

  const std::vector<float> f(10, 1.0f);
  for (std::uint16_t i = 0; i < 200; ++i) {
    const auto key = make_key(i);
    table.touch(table.shard_of(key), key, i, f.data(), true);
    EXPECT_LE(table.bytes_resident(), table.bytes_cap());
  }
  EXPECT_LE(table.live_total(), cfg.max_flows + table.shard_count());
}

TEST(FlowTable, MarkClassifiedSuppressesReadiness) {
  ShardedFlowTable table(small_config());
  const float f[3] = {1, 1, 1};
  auto r1 = table.touch(0, make_key(1), 1, f, true);
  auto r2 = table.touch(0, make_key(1), 2, f, true);
  EXPECT_TRUE(r2.ready);
  table.mark_classified(0, r2.slot);
  EXPECT_TRUE(table.view(0, r1.slot).classified);
}

}  // namespace
}  // namespace sugar::serve
