// Concurrency stress for the serve engine, intended for a TSan build
// (-DSUGAR_SANITIZE=thread; `ctest -L tsan`) but also correct — and run —
// under plain builds. Exercises the race-prone seams: many producer
// threads hammering offer() against the pump loop, stats() snapshotters
// reading mid-round, an external evictor sweeping idle flows, and verdict
// harvesting — all while the shard workers run on the shared pool.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/threadpool.h"
#include "serve/engine.h"
#include "trafficgen/datasets.h"

namespace sugar::serve {
namespace {

std::vector<net::Packet> sample_stream() {
  trafficgen::GenOptions opts;
  opts.seed = 404;
  opts.flows_per_class = 3;
  opts.spurious_fraction = 0.05;
  return trafficgen::generate_iscx_vpn(opts).packets;
}

std::shared_ptr<const FlowClassifier> zero_classifier() {
  FlowFeatureConfig fcfg;
  return std::make_shared<HeuristicClassifier>(
      flow_feature_dim(fcfg), 2, [](const float*) { return 0; });
}

ServeConfig stress_config() {
  ServeConfig cfg;
  cfg.table.shards = 4;
  cfg.table.max_flows = 64;  // tight: eviction paths run concurrently
  cfg.queue_capacity = 256;
  cfg.batch_size = 64;
  cfg.record_verdicts = true;
  cfg.max_recorded_verdicts = 1 << 12;
  cfg.watchdog_timeout_s = 30;  // watchdog thread active but quiet
  return cfg;
}

// Producers offering packets vs the pump loop vs stats snapshotters vs an
// idle evictor vs a verdict harvester: the full concurrent surface of the
// engine, checked for data races (TSan) and for the accounting identity
// packets_offered == packets_rejected + packets_processed at quiesce.
TEST(ServeStress, ProducersPumpSnapshotsAndEvictor) {
  core::set_global_threads(4);
  const auto stream = sample_stream();
  ServeEngine engine(stress_config(), zero_classifier());

  constexpr int kProducers = 4;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> offered{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int round = 0; round < 6; ++round) {
        for (std::size_t i = p; i < stream.size(); i += kProducers) {
          engine.offer(stream[i]);
          offered.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::thread pumper([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (engine.pump() == 0) std::this_thread::yield();
    }
    engine.drain();
  });

  std::thread snapshotter([&] {
    ServeCounters prev;
    while (!done.load(std::memory_order_acquire)) {
      const ServeStats stats = engine.stats();
      ASSERT_TRUE(prev.monotone_le(stats.counters));
      prev = stats.counters;
      ASSERT_LE(stats.gauges.table_bytes, stats.gauges.table_bytes_cap);
      std::this_thread::yield();
    }
  });

  std::thread evictor([&] {
    std::uint64_t now = 0;
    while (!done.load(std::memory_order_acquire)) {
      now += 500'000;
      engine.evict_idle_now(now);
      std::this_thread::yield();
    }
  });

  std::thread harvester([&] {
    std::size_t harvested = 0;
    while (!done.load(std::memory_order_acquire)) {
      harvested += engine.take_verdicts().size();
      std::this_thread::yield();
    }
  });

  for (auto& t : producers) t.join();
  // Producers finished: let the pump drain the residue, then quiesce.
  done.store(true, std::memory_order_release);
  pumper.join();
  snapshotter.join();
  evictor.join();
  harvester.join();
  engine.flush();

  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.counters.packets_offered, offered.load());
  EXPECT_EQ(stats.counters.packets_offered,
            stats.counters.packets_rejected + stats.counters.packets_processed);
  EXPECT_EQ(stats.gauges.current_flows, 0u);
  EXPECT_EQ(stats.counters.watchdog_stalls, 0u);
  core::set_global_threads(0);
}

// Concurrent offer() against destruction-adjacent teardown: engines built
// and torn down repeatedly while a watchdog thread is live must not race
// in the dtor path.
TEST(ServeStress, RepeatedEngineLifecycleWithWatchdog) {
  core::set_global_threads(2);
  const auto stream = sample_stream();
  for (int round = 0; round < 8; ++round) {
    ServeConfig cfg = stress_config();
    cfg.watchdog_timeout_s = 0.05;  // fast watchdog ticks during teardown
    ServeEngine engine(cfg, zero_classifier());
    for (std::size_t i = 0; i < stream.size() && i < 512; ++i)
      engine.offer(stream[i]);
    engine.pump();
  }  // dtor joins the watchdog with work still queued
  core::set_global_threads(0);
}

}  // namespace
}  // namespace sugar::serve
